// Runtime specialization: the top rung of the engine ladder below hand
// kernels (docs/CODEGEN.md). A (LinkedPlan, LinkedMac) pair is rendered
// to C (emit_linked_c), compiled with the system C compiler into a shared
// object, and dlopen'd as a drop-in backend — the SpComp/Bernoulli move
// of generating the specialized executor instead of interpreting the
// plan, applied at runtime.
//
// Observability contract (docs/OBSERVABILITY.md): a SpecializedKernel run
// books bitwise-identical executor.* counter deltas, fan-out histogram
// samples and per-level RunStats to a serial LinkedRunner::run(mac) of
// the same pair, and produces bitwise-identical output values. The
// generated code returns raw totals; the host flushes them into the same
// registry objects the linked engine feeds.
//
// Everything degrades gracefully: when the plan has a shape emission does
// not cover, the toolchain is missing, or the platform cannot dlopen,
// ok() is false and note() says why — callers fall back to the linked
// engine (bench_table2_executor --engine=specialized does exactly this
// and reports the fallback in its output).
#pragma once

#include <string>
#include <vector>

#include "compiler/emit_standalone.hpp"
#include "compiler/link.hpp"
#include "support/dynlib.hpp"

namespace bernoulli::compiler {

/// Whether a (Plan, Query) pair is eligible for specialized codegen, and
/// why (not) — the EXPLAIN footer. Eligible iff every level enumerates (no
/// merge joins), every driver level exposes a flat EnumSpec, and every
/// probe lowers to a flat SearchSpec with no sparse fill-in. The value
/// arrays are a property of the statement, not the plan, so they are
/// checked at kernel-build time instead.
struct SpecializeLegality {
  bool ok = false;
  std::string note;
};
SpecializeLegality plan_specialize_legality(const Plan& plan,
                                            const relation::Query& q);

/// One specialized kernel: emits, compiles and loads at construction;
/// run() executes the loaded code and flushes linked-engine-identical
/// observability. Borrows the plan and mac (and, through them, the views
/// and their arrays) — all must outlive the kernel. The temporary build
/// directory is removed on destruction.
class SpecializedKernel {
 public:
  SpecializedKernel(const LinkedPlan& lp, const LinkedMac& mac);
  ~SpecializedKernel();

  SpecializedKernel(const SpecializedKernel&) = delete;
  SpecializedKernel& operator=(const SpecializedKernel&) = delete;

  /// False when emission was refused, the toolchain/dlopen is unavailable,
  /// or the compile failed; note() carries the reason for EXPLAIN-style
  /// reporting and run() must not be called.
  bool ok() const { return fn_ != nullptr; }
  const std::string& note() const { return note_; }

  /// The generated C translation unit (empty when emission was refused).
  const std::string& source() const { return emission_.source; }

  /// One run: bitwise-identical outputs, counters, histograms and stats
  /// to LinkedRunner::run(mac) on the same pair.
  void run(RunStats* stats = nullptr);

 private:
  using KernelFn = int (*)(const index_t* const*, const value_t* const*,
                           value_t* const*, long long*, long long*,
                           long long*, long long*, long long*, int);

  const LinkedPlan& lp_;
  LinkedEmission emission_;
  std::string note_;
  std::string dir_;  // temp build dir; removed in the destructor
  support::DynLib lib_;
  KernelFn fn_ = nullptr;
  // Per-run counter scratch, zeroed before each call.
  std::vector<long long> ctr_;
  std::vector<long long> lvl_enum_;
  std::vector<long long> lvl_prod_;
  std::vector<long long> fanout_;
  std::vector<long long> lvl_ns_;  // 3 slots/level: raw_ns, samples, work
};

}  // namespace bernoulli::compiler
