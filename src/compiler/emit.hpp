// C code emission: renders a Plan as the specialized C program the
// Bernoulli compiler would generate (the final step of the pipeline; see
// DESIGN.md §3 item 3 for why the text is emitted rather than compiled at
// runtime in this reproduction).
#pragma once

#include <string>

#include "compiler/plan.hpp"

namespace bernoulli::compiler {

/// Describes the innermost statement for emission purposes.
struct EmitStatement {
  index_t target_rel = 0;             // Query::relations index
  std::vector<index_t> factor_rels;   // multiplied value fields
  value_t scale = 1.0;
};

/// Emits a complete C function body for the plan: one loop per level
/// (enumeration loops, 2-way merge loops as two-finger whiles, probes as
/// search statements), with the multiply-accumulate statement innermost.
std::string emit_c(const Plan& plan, const relation::Query& q,
                   const EmitStatement& stmt,
                   const std::string& function_name = "computed_kernel");

}  // namespace bernoulli::compiler
