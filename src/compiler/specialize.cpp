#include "compiler/specialize.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>

#include "support/counters.hpp"
#include "support/error.hpp"
#include "support/histogram.hpp"
#include "support/metrics.hpp"
#include "support/profile.hpp"
#include "support/trace.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define BERNOULLI_HAVE_MKDTEMP 1
#include <unistd.h>
#endif

namespace bernoulli::compiler {

namespace {

// The generated kernel's exported name. RTLD_LOCAL keeps each loaded
// kernel's symbols private, so reusing one name across kernels is fine.
constexpr const char* kSymbol = "bernoulli_specialized_kernel";

bool have_cc() {
  return std::system("cc --version > /dev/null 2>&1") == 0;
}

// cc flags: -ffp-contract=off forbids fused multiply-add contraction so
// the generated arithmetic matches the engines' separate mul/add sequence
// bitwise (the C++ build runs uncontracted on the x86-64 baseline).
std::string compile_command(const std::string& dir) {
  return "cc -O2 -fPIC -shared -ffp-contract=off -o " + dir + "/kernel.so " +
         dir + "/kernel.c 2> " + dir + "/cc.log";
}

}  // namespace

SpecializeLegality plan_specialize_legality(const Plan& plan,
                                            const relation::Query& q) {
  SpecializeLegality leg;
  const LinkedPlan lp = link_plan(plan, q);
  auto rel_name = [&](index_t rel) -> std::string {
    return q.relations[static_cast<std::size_t>(rel)].view->name();
  };
  if (lp.levels.empty()) {
    leg.note = "plan has no levels";
    return leg;
  }
  for (std::size_t d = 0; d < lp.levels.size(); ++d) {
    const LinkedLevel& lv = lp.levels[d];
    if (lv.method == JoinMethod::kMerge) {
      leg.note = "level " + std::to_string(d) +
                 " merges " + std::to_string(lv.drivers.size()) +
                 " drivers; codegen covers enumerate-only plans";
      return leg;
    }
    if (lv.drivers[0].level->enum_spec().kind ==
        relation::EnumSpec::Kind::kNone) {
      leg.note = rel_name(lv.drivers[0].rel) +
                 " has no flat enumeration shape at level " +
                 std::to_string(d);
      return leg;
    }
    for (const LinkedProbe& pr : lv.probes) {
      if (pr.insert_on_miss) {
        leg.note = rel_name(pr.access.rel) +
                   " inserts on miss (sparse fill-in grows storage mid-run)";
        return leg;
      }
      if (pr.search.kind == relation::SearchSpec::Kind::kVirtual) {
        leg.note = rel_name(pr.access.rel) + " probes through a virtual "
                   "search (no flat lowering)";
        return leg;
      }
    }
  }
  leg.ok = true;
  leg.note = "every level enumerates a flat shape and every probe lowers "
             "to inline checks or binary searches";
  return leg;
}

SpecializedKernel::SpecializedKernel(const LinkedPlan& lp,
                                     const LinkedMac& mac)
    : lp_(lp) {
  emission_ = emit_linked_c(lp, mac, kSymbol);
  if (!emission_.ok) {
    note_ = emission_.note;
    return;
  }
  if (!support::DynLib::available()) {
    note_ = "dynamic loading unavailable on this platform";
    return;
  }
#ifndef BERNOULLI_HAVE_MKDTEMP
  note_ = "no temporary-directory support on this platform";
  return;
#else
  if (!have_cc()) {
    note_ = "no C toolchain (cc not found)";
    return;
  }
  char tmpl[] = "/tmp/bernoulli-spec-XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    note_ = "could not create a temporary build directory";
    return;
  }
  dir_ = tmpl;
  {
    std::ofstream src(dir_ + "/kernel.c");
    src << emission_.source;
    if (!src) {
      note_ = "could not write the generated source";
      return;
    }
  }
  if (std::system(compile_command(dir_).c_str()) != 0) {
    note_ = "cc failed to compile the generated kernel (see " + dir_ +
            "/cc.log)";
    return;
  }
  if (!lib_.open(dir_ + "/kernel.so")) {
    note_ = "dlopen failed: " + lib_.error();
    return;
  }
  void* addr = lib_.symbol(emission_.symbol);
  if (addr == nullptr) {
    note_ = "dlsym failed: " + lib_.error();
    return;
  }
  fn_ = reinterpret_cast<KernelFn>(addr);
  note_ = "compiled and loaded " + dir_ + "/kernel.so";
  ctr_.assign(3, 0);
  lvl_enum_.assign(emission_.num_levels, 0);
  lvl_prod_.assign(emission_.num_levels, 0);
  fanout_.assign(
      emission_.num_levels *
          static_cast<std::size_t>(support::Log2Histogram::kBuckets),
      0);
  lvl_ns_.assign(emission_.num_levels * 3, 0);
#endif
}

SpecializedKernel::~SpecializedKernel() {
  lib_.close();
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);  // best-effort cleanup
  }
}

void SpecializedKernel::run(RunStats* stats) {
  BERNOULLI_CHECK_MSG(fn_ != nullptr,
                      "specialized kernel not loaded: " << note_);
  const auto wall_t0 = std::chrono::steady_clock::now();
  const bool tracing = support::trace_enabled();
  RunStats local;
  RunStats* st = stats ? stats : (tracing ? &local : nullptr);
  double t0 = 0;
  std::unique_ptr<support::TraceSpan> span;
  if (tracing) {
    span = std::make_unique<support::TraceSpan>("execute", "compiler");
    t0 = support::trace_now_us();
  }

  std::fill(ctr_.begin(), ctr_.end(), 0);
  std::fill(lvl_enum_.begin(), lvl_enum_.end(), 0);
  std::fill(lvl_prod_.begin(), lvl_prod_.end(), 0);
  std::fill(fanout_.begin(), fanout_.end(), 0);
  std::fill(lvl_ns_.begin(), lvl_ns_.end(), 0);
  const bool profiling = support::profiling_enabled();
  const int rc =
      fn_(emission_.int_args.data(), emission_.const_args.data(),
          emission_.out_args.data(), ctr_.data(), lvl_enum_.data(),
          lvl_prod_.data(), fanout_.data(), lvl_ns_.data(),
          profiling ? 1 : 0);
  BERNOULLI_CHECK_MSG(rc == 0,
                      "specialized kernel hit a non-filtering probe miss");

  // Flush exactly what the linked engine flushes: executor.* counters by
  // the same names, per-level fan-out buckets with representative values,
  // and per-level RunStats. Merge/fill-in counters stay untouched — the
  // emitter refuses those shapes.
  long long enumerated = 0;
  for (const long long e : lvl_enum_) enumerated += e;
  // Same serving-metric names and booking discipline as the linked
  // engine's flush: one latency sample per run, the identical integer
  // nanoseconds into the histogram and the execute.wall_ns rate.
  const long long wall_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_t0)
          .count();
  // The whole flush group (latency sample through the fan-out replay)
  // commits under the observability commit lock; held to function end —
  // everything after it is part of this run's booking.
  const std::unique_lock<std::mutex> commit = support::metrics_commit_lock();
  support::metric_latency("execute.latency").record_ns(wall_ns);
  support::metric_rate("execute.wall_ns").add(wall_ns);
  support::time_counter("executor.wall_seconds")
      .add(static_cast<double>(wall_ns) * 1e-9);
  if (lp_.footprint.exact) {
    support::metric_rate("execute.model_bytes").add(lp_.footprint.total_bytes());
    support::metric_rate("execute.model_flops").add(lp_.footprint.flops);
  }
  if (profiling) {
    // Host half of the lvl_ns ABI (docs/CODEGEN.md): compensate each
    // level's sampled bracket time, extrapolate to all invocations,
    // enforce that inclusive time never exceeds the parent's, and commit
    // self = incl[d] - incl[d+1] under the emitter's drain-kind
    // attribution. The raw slots carry the derived values, so the
    // self/inclusive invariant holds by construction for this engine.
    const int L = static_cast<int>(
        std::min(emission_.num_levels,
                 static_cast<std::size_t>(support::kProfileMaxLevels)));
    const long long timer = support::profile_timer_cost_ns();
    long long incl[support::kProfileMaxLevels] = {};
    for (int d = 0; d < L; ++d) {
      const long long raw = lvl_ns_[3 * static_cast<std::size_t>(d)];
      const long long samp = lvl_ns_[3 * static_cast<std::size_t>(d) + 1];
      if (samp <= 0) continue;
      const long long comp = std::max(0LL, raw - samp * timer);
      const long long invocations =
          d == 0 ? 1 : lvl_prod_[static_cast<std::size_t>(d - 1)];
      incl[d] = static_cast<long long>(static_cast<double>(comp) /
                                       static_cast<double>(samp) *
                                       static_cast<double>(invocations));
    }
    incl[0] = std::min(incl[0], wall_ns);
    for (int d = 1; d < L; ++d) incl[d] = std::min(incl[d], incl[d - 1]);
    support::ProfileFlush f;
    f.levels = L;
    f.wall_ns = wall_ns;
    for (int d = 0; d < L; ++d) {
      const int kind = emission_.level_kinds[static_cast<std::size_t>(d)];
      const long long self = incl[d] - (d + 1 < L ? incl[d + 1] : 0);
      f.self_ns[d][kind] = self;
      f.raw_ns[d][kind] = self;
      f.raw_incl_ns[d] = incl[d];
      f.samples[d][kind] = lvl_ns_[3 * static_cast<std::size_t>(d) + 1];
      f.work[d][kind] = lvl_prod_[static_cast<std::size_t>(d)];
    }
    support::profile_commit(f);
  }
  support::counter("executor.runs").add(1);
  support::counter("executor.tuples").add(ctr_[0]);
  support::counter("executor.enumerated").add(enumerated);
  support::counter("executor.probe_hits").add(ctr_[1]);
  support::counter("executor.probe_misses").add(ctr_[2]);
  constexpr int kB = support::Log2Histogram::kBuckets;
  for (std::size_t d = 0; d < emission_.num_levels; ++d) {
    for (int b = 0; b < kB; ++b) {
      const long long n =
          fanout_[d * static_cast<std::size_t>(kB) +
                  static_cast<std::size_t>(b)];
      if (n == 0) continue;
      lp_.levels[d].fanout->add(b == 0 ? 0 : (1LL << (b - 1)), n);
    }
  }
  if (st) {
    st->tuples = ctr_[0];
    st->levels.assign(emission_.num_levels, LevelRunStats{});
    for (std::size_t d = 0; d < emission_.num_levels; ++d) {
      st->levels[d].enumerated = lvl_enum_[d];
      st->levels[d].produced = lvl_prod_[d];
    }
  }
  if (tracing) {
    const double t1 = support::trace_now_us();
    detail::emit_join_spans(*lp_.plan, *st, t0, t1);
    span.reset();
  }
}

}  // namespace bernoulli::compiler
