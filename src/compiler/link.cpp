#include "compiler/link.hpp"

#include <algorithm>
#include <string>

#include "support/error.hpp"
#include "support/histogram.hpp"

namespace bernoulli::compiler {

using relation::Query;

namespace {

int find_var_slot(const Query& q, const std::string& v) {
  auto it = std::find(q.vars.begin(), q.vars.end(), v);
  BERNOULLI_CHECK_MSG(it != q.vars.end(), "unbound variable " << v);
  return static_cast<int>(it - q.vars.begin());
}

}  // namespace

LinkedPlan link_plan(const Plan& plan, const Query& q) {
  q.validate();

  LinkedPlan lp;
  lp.plan = &plan;
  lp.query = &q;

  // Flat position-slot layout: one slot per (relation, depth), relations
  // laid out consecutively. Replaces the interpreter's vector-of-vectors.
  std::vector<int> pos_ofs(q.relations.size(), 0);
  int slots = 0;
  for (std::size_t r = 0; r < q.relations.size(); ++r) {
    pos_ofs[r] = slots;
    slots += static_cast<int>(q.relations[r].vars.size());
  }
  lp.pos_slots = slots;
  lp.leaf_slot.resize(q.relations.size());
  for (std::size_t r = 0; r < q.relations.size(); ++r)
    lp.leaf_slot[r] =
        pos_ofs[r] + static_cast<int>(q.relations[r].vars.size()) - 1;

  auto lower_access = [&](const Access& a) {
    const auto& rel = q.relations[static_cast<std::size_t>(a.rel)];
    BERNOULLI_CHECK(a.depth >= 0 &&
                    a.depth < static_cast<index_t>(rel.vars.size()));
    LinkedAccess la;
    la.level = &rel.view->level(a.depth);
    la.rel = a.rel;
    la.depth = a.depth;
    la.pos_slot =
        pos_ofs[static_cast<std::size_t>(a.rel)] + static_cast<int>(a.depth);
    la.parent_slot = a.depth == 0 ? -1 : la.pos_slot - 1;
    return la;
  };

  lp.levels.reserve(plan.levels.size());
  for (std::size_t d = 0; d < plan.levels.size(); ++d) {
    const PlanLevel& pl = plan.levels[d];
    LinkedLevel ll;
    ll.method = pl.method;
    ll.var_slot = find_var_slot(q, pl.var);
    BERNOULLI_CHECK_MSG(!pl.drivers.empty(),
                        "plan level " << pl.var << " has no drivers");
    if (pl.method == JoinMethod::kEnumerate)
      BERNOULLI_CHECK(pl.drivers.size() == 1);
    for (const Access& a : pl.drivers) ll.drivers.push_back(lower_access(a));
    for (const Access& a : pl.probes) {
      const auto& rel = q.relations[static_cast<std::size_t>(a.rel)];
      LinkedProbe pr;
      pr.access = lower_access(a);
      pr.search = pr.access.level->search_spec();
      pr.var_slot =
          find_var_slot(q, rel.vars[static_cast<std::size_t>(a.depth)]);
      pr.filters = rel.filters;
      pr.insert_on_miss = rel.writes && pr.access.level->insertable();
      // Insertable levels grow their arrays mid-run, so a flat spec
      // captured now could dangle after the first fill-in. Probe those
      // through the virtual method, which always sees current storage.
      if (pr.insert_on_miss) pr.search = relation::SearchSpec{};
      ll.probes.push_back(pr);
    }
    ll.fanout =
        &support::histogram("executor.fanout.level" + std::to_string(d));
    lp.levels.push_back(std::move(ll));
  }
  ParallelLegality leg = plan_parallel_legality(plan, q);
  lp.parallel_ok = leg.ok;
  lp.parallel_note = std::move(leg.note);
  return lp;
}

ParallelLegality plan_parallel_legality(const Plan& plan, const Query& q) {
  if (plan.levels.empty())
    return {false, "plan has no levels"};
  const PlanLevel& outer = plan.levels[0];
  if (outer.method == JoinMethod::kMerge)
    return {false, "outer level " + outer.var +
                       " is a merge join (chunking the k-finger sweep "
                       "would change merge_steps)"};
  // Scan every access the plan touches for mid-run mutation or stateful
  // virtual search; either makes concurrent frames unsafe.
  auto scan_access = [&](const Access& a) -> std::string {
    const auto& rel = q.relations[static_cast<std::size_t>(a.rel)];
    const relation::IndexLevel& level = rel.view->level(a.depth);
    const std::string var = rel.vars[static_cast<std::size_t>(a.depth)];
    if (rel.writes && level.insertable())
      return rel.view->name() + " inserts on miss at " + var +
             " (fill-in grows shared storage)";
    return "";
  };
  auto scan_probe = [&](const Access& a) -> std::string {
    if (std::string why = scan_access(a); !why.empty()) return why;
    const auto& rel = q.relations[static_cast<std::size_t>(a.rel)];
    const relation::IndexLevel& level = rel.view->level(a.depth);
    if (level.search_spec().kind == relation::SearchSpec::Kind::kVirtual)
      return rel.view->name() + " probes " +
             rel.vars[static_cast<std::size_t>(a.depth)] +
             " through a stateful virtual search";
    return "";
  };
  for (const PlanLevel& pl : plan.levels) {
    for (const Access& a : pl.drivers)
      if (std::string why = scan_access(a); !why.empty()) return {false, why};
    for (const Access& a : pl.probes)
      if (std::string why = scan_probe(a); !why.empty()) return {false, why};
  }
  // Disjoint output rows: every written relation must bind the outer
  // variable at its root level, so distinct outer bindings land in
  // disjoint storage segments and no cross-thread reduction is needed.
  for (const auto& rel : q.relations) {
    if (!rel.writes) continue;
    if (rel.vars.empty() || rel.vars[0] != outer.var)
      return {false, "output " + rel.view->name() +
                         " rows are not partitioned by the outer variable " +
                         outer.var};
  }
  return {true, "outer level " + outer.var +
                    " chunked across threads (disjoint output rows)"};
}

LinkedMac link_mac(const Query& q, index_t target_rel,
                   const std::vector<index_t>& factor_rels, value_t scale) {
  BERNOULLI_CHECK(target_rel >= 0 &&
                  target_rel < static_cast<index_t>(q.relations.size()));
  LinkedMac mac;
  mac.target = q.relations[static_cast<std::size_t>(target_rel)].view;
  BERNOULLI_CHECK(mac.target->writable());
  mac.target_slot = static_cast<std::size_t>(target_rel);
  mac.target_data = mac.target->value_array_mut();
  mac.scale = scale;
  for (index_t f : factor_rels) {
    BERNOULLI_CHECK(f >= 0 && f < static_cast<index_t>(q.relations.size()));
    LinkedMac::Factor fac;
    fac.view = q.relations[static_cast<std::size_t>(f)].view;
    fac.slot = static_cast<std::size_t>(f);
    fac.data = fac.view->value_array();
    mac.factors.push_back(fac);
  }
  return mac;
}

LinkedRunner::LinkedRunner(LinkedPlan lp) : lp_(std::move(lp)) {
  const Query& q = *lp_.query;
  vars_.assign(q.vars.size(), -1);
  pos_.assign(static_cast<std::size_t>(lp_.pos_slots), -1);
  leaf_.assign(q.relations.size(), -1);
  frames_.resize(lp_.levels.size());
  fanout_local_.resize(lp_.levels.size());
  for (std::size_t d = 0; d < lp_.levels.size(); ++d) {
    frames_[d].cursors.resize(lp_.levels[d].drivers.size());
    frames_[d].bufs.resize(lp_.levels[d].drivers.size());
    fanout_local_[d].assign(support::Log2Histogram::kBuckets, 0);
  }
}

}  // namespace bernoulli::compiler
