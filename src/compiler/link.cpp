#include "compiler/link.hpp"

#include <algorithm>
#include <numeric>
#include <string>
#include <string_view>

#include "compiler/explain.hpp"
#include "support/error.hpp"
#include "support/histogram.hpp"

namespace bernoulli::compiler {

using relation::Query;

namespace {

int find_var_slot(const Query& q, const std::string& v) {
  auto it = std::find(q.vars.begin(), q.vars.end(), v);
  BERNOULLI_CHECK_MSG(it != q.vars.end(), "unbound variable " << v);
  return static_cast<int>(it - q.vars.begin());
}

// Link-time index range of everything a level can enumerate — the same
// whole-structure scan the specializing emitter uses for its always-hit
// probe proofs (emit_standalone.cpp). O(nnz) once at link time, i.e.
// inspector-phase work. mx < mn means the level enumerates nothing.
struct IndexRange {
  index_t mn = 0;
  index_t mx = -1;
};

IndexRange scan_index_range(const index_t* a, index_t n) {
  IndexRange r;
  if (a == nullptr || n <= 0) return r;
  r.mn = r.mx = a[0];
  for (index_t k = 1; k < n; ++k) {
    r.mn = std::min(r.mn, a[k]);
    r.mx = std::max(r.mx, a[k]);
  }
  return r;
}

IndexRange enum_index_range(const relation::EnumSpec& es) {
  using Kind = relation::EnumSpec::Kind;
  switch (es.kind) {
    case Kind::kDense: {
      IndexRange r;
      if (es.extent > 0) {
        r.mn = 0;
        r.mx = es.extent - 1;
      }
      return r;
    }
    case Kind::kSegmented:
    case Kind::kList:
    case Kind::kStrided:
    case Kind::kOffsets:
      return scan_index_range(es.ind, es.ind_len);
    case Kind::kBlocked: {
      // ind holds block columns; each expands to lanes
      // [ind[b]*c, ind[b]*c + c - 1].
      IndexRange r = scan_index_range(es.ind, es.ind_len);
      if (r.mx >= r.mn) {
        r.mn = r.mn * es.block_c;
        r.mx = r.mx * es.block_c + es.block_c - 1;
      }
      return r;
    }
    case Kind::kSliced:
      // Scans the whole lane-major array including padding slots; padding
      // holds column 0, which can only widen the range toward 0 — a safe
      // over-approximation for the in-window proofs below.
      return scan_index_range(es.ind, es.ind_len);
    case Kind::kFunction:
      return scan_index_range(es.map, es.map_len);
    case Kind::kNone:
      break;
  }
  return {};
}

// Link-time always-hit proof for one enumerate level: every probe lowers
// to pure arithmetic (identity/affine), never inserts, and the driver's
// whole enumerable index range provably lands inside every probe's
// accepting window. The bulk leaf drain then skips its per-invocation
// min/max scan of the cursor range.
bool prove_all_hit(const LinkedLevel& ll) {
  if (ll.method != JoinMethod::kEnumerate || ll.drivers.size() != 1)
    return false;
  const relation::EnumSpec es = ll.drivers[0].level->enum_spec();
  if (es.kind == relation::EnumSpec::Kind::kNone) return false;
  const IndexRange r = enum_index_range(es);
  for (const LinkedProbe& pr : ll.probes) {
    if (pr.insert_on_miss) return false;
    if (pr.search.kind != relation::SearchSpec::Kind::kIdentity &&
        pr.search.kind != relation::SearchSpec::Kind::kAffine)
      return false;
    if (r.mx >= r.mn && (r.mn < 0 || r.mx >= pr.search.extent)) return false;
  }
  return true;
}

}  // namespace

LinkedPlan link_plan(const Plan& plan, const Query& q) {
  q.validate();

  LinkedPlan lp;
  lp.plan = &plan;
  lp.query = &q;

  // Flat position-slot layout: one slot per (relation, depth), relations
  // laid out consecutively. Replaces the interpreter's vector-of-vectors.
  std::vector<int> pos_ofs(q.relations.size(), 0);
  int slots = 0;
  for (std::size_t r = 0; r < q.relations.size(); ++r) {
    pos_ofs[r] = slots;
    slots += static_cast<int>(q.relations[r].vars.size());
  }
  lp.pos_slots = slots;
  lp.leaf_slot.resize(q.relations.size());
  for (std::size_t r = 0; r < q.relations.size(); ++r)
    lp.leaf_slot[r] =
        pos_ofs[r] + static_cast<int>(q.relations[r].vars.size()) - 1;

  auto lower_access = [&](const Access& a) {
    const auto& rel = q.relations[static_cast<std::size_t>(a.rel)];
    BERNOULLI_CHECK(a.depth >= 0 &&
                    a.depth < static_cast<index_t>(rel.vars.size()));
    LinkedAccess la;
    la.level = &rel.view->level(a.depth);
    la.desc = la.level->describe();
    la.rel = a.rel;
    la.depth = a.depth;
    la.pos_slot =
        pos_ofs[static_cast<std::size_t>(a.rel)] + static_cast<int>(a.depth);
    la.parent_slot = a.depth == 0 ? -1 : la.pos_slot - 1;
    return la;
  };

  lp.levels.reserve(plan.levels.size());
  for (std::size_t d = 0; d < plan.levels.size(); ++d) {
    const PlanLevel& pl = plan.levels[d];
    LinkedLevel ll;
    ll.method = pl.method;
    ll.var_slot = find_var_slot(q, pl.var);
    BERNOULLI_CHECK_MSG(!pl.drivers.empty(),
                        "plan level " << pl.var << " has no drivers");
    if (pl.method == JoinMethod::kEnumerate)
      BERNOULLI_CHECK(pl.drivers.size() == 1);
    for (const Access& a : pl.drivers) ll.drivers.push_back(lower_access(a));
    for (const Access& a : pl.probes) {
      const auto& rel = q.relations[static_cast<std::size_t>(a.rel)];
      LinkedProbe pr;
      pr.access = lower_access(a);
      pr.search = pr.access.level->search_spec();
      pr.var_slot =
          find_var_slot(q, rel.vars[static_cast<std::size_t>(a.depth)]);
      pr.filters = rel.filters;
      pr.insert_on_miss = rel.writes && pr.access.level->insertable();
      // Insertable levels grow their arrays mid-run, so a flat spec
      // captured now could dangle after the first fill-in. Probe those
      // through the virtual method, which always sees current storage.
      if (pr.insert_on_miss) pr.search = relation::SearchSpec{};
      ll.probes.push_back(pr);
    }
    ll.fanout =
        &support::histogram("executor.fanout.level" + std::to_string(d));
    ll.proved_all_hit = prove_all_hit(ll);
    lp.levels.push_back(std::move(ll));
  }
  // Blocked levels group block_r consecutive parent bindings into one
  // block row; when such a level hangs directly off the outer variable,
  // thread chunks are rounded up to block_r so no block row's rows split
  // across threads (shared ptr/ind/vals segments stay thread-local).
  // Sliced levels likewise align chunks to the sorting window sigma so
  // every thread chunk starts on a window boundary and the chunk-wide
  // sliced drain (exec_linked.cpp) engages under threading exactly as it
  // does serially.
  if (!plan.levels.empty()) {
    for (const LinkedLevel& ll : lp.levels)
      for (const LinkedAccess& a : ll.drivers) {
        if (a.depth == 0) continue;
        const auto& rel = q.relations[static_cast<std::size_t>(a.rel)];
        if (rel.vars[static_cast<std::size_t>(a.depth) - 1] !=
            plan.levels[0].var)
          continue;
        if (a.desc.kind == relation::LevelDescriptor::Kind::kBlocked)
          lp.chunk_align = std::max(lp.chunk_align, a.desc.block_r);
        else if (a.desc.kind == relation::LevelDescriptor::Kind::kSliced &&
                 a.desc.sigma > 0)
          lp.chunk_align = std::lcm(lp.chunk_align, a.desc.sigma);
      }
  }
  ParallelLegality leg = plan_parallel_legality(plan, q);
  lp.parallel_ok = leg.ok;
  lp.parallel_note = std::move(leg.note);
  lp.footprint = derive_footprint(plan, q);
  return lp;
}

std::uint64_t plan_fingerprint(const Plan& plan, const relation::Query& q) {
  // FNV-1a 64 over the EXPLAIN document (join order/methods, access paths,
  // level descriptors — everything structural the linker consumes) plus
  // each relation's view name, bound variables and access role. EXPLAIN is
  // deterministic for a given pair, so equal inputs hash equal across
  // processes and runs.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    h ^= 0xFFu;  // field separator: "ab"+"c" must not collide with "a"+"bc"
    h *= 1099511628211ULL;
  };
  mix(explain_json(plan, q, 0));
  for (const auto& rel : q.relations) {
    mix(rel.view->name());
    for (const std::string& v : rel.vars) mix(v);
    mix(rel.writes ? "w" : (rel.filters ? "f" : "r"));
  }
  return h;
}

PlanFootprint derive_footprint(const Plan& plan, const Query& q) {
  PlanFootprint fp;
  fp.operands.reserve(q.relations.size());
  for (const auto& rel : q.relations)
    fp.operands.push_back({rel.view->name(), 0, 0});

  auto inexact = [&](std::string why) {
    fp = PlanFootprint{};
    for (const auto& rel : q.relations)
      fp.operands.push_back({rel.view->name(), 0, 0});
    fp.note = std::move(why);
    return fp;
  };

  constexpr long long szi = static_cast<long long>(sizeof(index_t));
  constexpr long long szv = static_cast<long long>(sizeof(value_t));

  // Walk the plan levels tracking `produced`, the number of times the next
  // level's frame opens (= tuples surviving this level). Exactness needs
  // every enumeration count to be a static function of the specs, which is
  // the same discipline as the bulk-drain proof: flat enumerate levels,
  // always-hit arithmetic probes, segment levels invoked once per parent.
  // (rel, depth) pairs bound by a DRIVER are recorded so segmented /
  // per-parent-count levels can require once-per-parent coverage (a parent
  // bound by a probe could repeat or skip segments).
  std::vector<std::vector<bool>> driver_bound(q.relations.size());
  for (std::size_t r = 0; r < q.relations.size(); ++r)
    driver_bound[r].assign(q.relations[r].vars.size(), false);

  long long produced = 1;  // root invocation
  for (std::size_t d = 0; d < plan.levels.size(); ++d) {
    const PlanLevel& pl = plan.levels[d];
    const long long parents = produced;  // frames opening this level
    if (pl.method != JoinMethod::kEnumerate)
      return inexact("level " + pl.var +
                     " is a merge join (enumeration count is data-dependent "
                     "on finger interleaving)");
    const Access& a = pl.drivers[0];
    const auto& rel = q.relations[static_cast<std::size_t>(a.rel)];
    const relation::EnumSpec es = rel.view->level(a.depth).enum_spec();
    PlanFootprint::Operand& op = fp.operands[static_cast<std::size_t>(a.rel)];
    const bool root_parent = a.depth == 0;
    const bool parent_covered =
        root_parent ||
        driver_bound[static_cast<std::size_t>(a.rel)]
                    [static_cast<std::size_t>(a.depth) - 1];
    long long enumerated = 0;
    switch (es.kind) {
      case relation::EnumSpec::Kind::kNone:
        return inexact(rel.view->name() + " level " + pl.var +
                       " has no flat enumeration spec");
      case relation::EnumSpec::Kind::kDense:
        enumerated = produced * es.extent;
        break;
      case relation::EnumSpec::Kind::kList:
        enumerated = produced * es.extent;
        op.index_bytes += enumerated * szi;  // ind[p] per element
        break;
      case relation::EnumSpec::Kind::kFunction:
        enumerated = produced;               // the single child
        op.index_bytes += produced * szi;    // map[parent] per invocation
        break;
      case relation::EnumSpec::Kind::kSegmented: {
        if (root_parent) {
          if (es.ptr_len < 2)
            return inexact(rel.view->name() + " segmented level " + pl.var +
                           " has an empty ptr array");
          enumerated = produced * (es.ptr[1] - es.ptr[0]);
        } else {
          if (!parent_covered || produced != es.ptr_len - 1)
            return inexact(rel.view->name() + " segmented level " + pl.var +
                           " is not invoked exactly once per segment");
          enumerated = es.ptr[es.ptr_len - 1] - es.ptr[0];
        }
        op.index_bytes += enumerated * szi;      // ind[p] per element
        op.index_bytes += 2 * produced * szi;    // segment bounds
        break;
      }
      case relation::EnumSpec::Kind::kStrided:
      case relation::EnumSpec::Kind::kOffsets: {
        long long count = 0;
        if (root_parent) {
          if (es.len_len < 1)
            return inexact(rel.view->name() + " level " + pl.var +
                           " has an empty len array");
          count = produced * es.len[0];
        } else {
          if (!parent_covered || produced != es.len_len)
            return inexact(rel.view->name() + " level " + pl.var +
                           " is not invoked exactly once per parent");
          for (index_t p = 0; p < es.len_len; ++p) count += es.len[p];
        }
        enumerated = count;
        op.index_bytes += produced * szi;    // len[parent] per invocation
        op.index_bytes += enumerated * szi;  // ind[pos] per element
        if (es.kind == relation::EnumSpec::Kind::kOffsets)
          op.index_bytes += enumerated * szi;  // off[k] per element
        break;
      }
      case relation::EnumSpec::Kind::kBlocked: {
        // Block rows group block_r parents; each parent row re-walks its
        // block row's (ptr[br+1]-ptr[br]) blocks, c lanes per block. Fill
        // zeros inside stored blocks ARE enumerated, so no padding here.
        if (es.ptr_len < 2)
          return inexact(rel.view->name() + " blocked level " + pl.var +
                         " has an empty block ptr array");
        if (root_parent) {
          enumerated =
              produced * (es.ptr[1] - es.ptr[0]) * es.block_c;
        } else {
          if (!parent_covered ||
              produced != static_cast<long long>(es.block_r) *
                              (es.ptr_len - 1))
            return inexact(rel.view->name() + " blocked level " + pl.var +
                           " is not invoked once per row of every block row");
          enumerated = static_cast<long long>(es.ptr[es.ptr_len - 1] -
                                              es.ptr[0]) *
                       es.block_r * es.block_c;
        }
        op.index_bytes += 2 * produced * szi;    // block-row bounds
        op.index_bytes += enumerated * szi;      // ind[b] per lane visit
        break;
      }
      case relation::EnumSpec::Kind::kSliced: {
        // Chunk-sliced (SELL-C-σ): each parent row walks len[parent]
        // lane-strided slots starting at off[parent]. Padding lanes past a
        // row's length are stored but never enumerated — booked as
        // padding_bytes, not traffic.
        long long count = 0;
        if (root_parent) {
          if (es.len_len < 1)
            return inexact(rel.view->name() + " sliced level " + pl.var +
                           " has an empty len array");
          count = produced * es.len[0];
        } else {
          if (!parent_covered || produced != es.len_len)
            return inexact(rel.view->name() + " sliced level " + pl.var +
                           " is not invoked exactly once per row");
          for (index_t p = 0; p < es.len_len; ++p) count += es.len[p];
          fp.padding_bytes += (es.ind_len - count) * (szi + szv);
        }
        enumerated = count;
        op.index_bytes += produced * szi;    // len[parent] per invocation
        op.index_bytes += produced * szi;    // off[parent] per invocation
        op.index_bytes += enumerated * szi;  // ind[pos] per element
        break;
      }
    }
    driver_bound[static_cast<std::size_t>(a.rel)]
                [static_cast<std::size_t>(a.depth)] = true;
    for (const Access& pa : pl.probes) {
      const auto& prel = q.relations[static_cast<std::size_t>(pa.rel)];
      const relation::IndexLevel& plevel = prel.view->level(pa.depth);
      const relation::SearchSpec ss = plevel.search_spec();
      if (prel.writes && plevel.insertable())
        return inexact(prel.view->name() +
                       " inserts on miss (fill-in count is data-dependent)");
      if (ss.kind != relation::SearchSpec::Kind::kIdentity &&
          ss.kind != relation::SearchSpec::Kind::kAffine)
        return inexact(prel.view->name() + " probe at " + pl.var +
                       " is not an always-hit arithmetic search");
      if (prel.filters) {
        // A filtering identity/affine probe rejects indices outside
        // [0, ss.extent) — data-dependent in general, but exact when the
        // driver's whole index range provably fits the accepting window
        // (the iteration-space relation I always filters, so CSR/CCS SpMV
        // depends on this proof).
        const IndexRange r = enum_index_range(es);
        if (r.mx >= r.mn && (r.mn < 0 || r.mx >= ss.extent))
          return inexact(prel.view->name() + " filter at " + pl.var +
                         " may reject (driver enumerates [" +
                         std::to_string(r.mn) + ", " + std::to_string(r.mx) +
                         "], probe accepts [0, " + std::to_string(ss.extent) +
                         "))");
      }
      // Identity/affine probes are pure arithmetic: no index bytes.
      //
      // A single frame enumerating a dense range [0, extent) and probing
      // an identity level of the same extent visits each position exactly
      // once — the bijection a driver would give. Mark the probed
      // (rel, depth) covered so a segmented child below it can still prove
      // once-per-segment (CSR/CCS SpMV drives rows from the iteration
      // space and identity-probes the matrix's row level).
      if (parents == 1 && ss.kind == relation::SearchSpec::Kind::kIdentity &&
          es.kind == relation::EnumSpec::Kind::kDense &&
          es.extent == ss.extent)
        driver_bound[static_cast<std::size_t>(pa.rel)]
                    [static_cast<std::size_t>(pa.depth)] = true;
    }
    produced = enumerated;
  }
  fp.leaf_tuples = produced;

  // Value traffic and flops for the multiply-accumulate statement: each
  // read operand with values streams one value per leaf tuple; a written
  // operand is read-modify-write (2x). The iteration-space relation I has
  // no values (RelationView::has_value) and contributes nothing.
  long long writes = 0;
  long long reads = 0;
  for (std::size_t r = 0; r < q.relations.size(); ++r) {
    const auto& rel = q.relations[r];
    if (!rel.view->has_value()) continue;
    if (rel.writes) {
      fp.operands[r].value_bytes = 2 * fp.leaf_tuples * szv;
      ++writes;
    } else {
      fp.operands[r].value_bytes = fp.leaf_tuples * szv;
      ++reads;
    }
  }
  // Per leaf tuple: one multiply + one add per written target, plus one
  // extra multiply per factor beyond the first two value operands.
  fp.flops = 2 * fp.leaf_tuples * writes +
             std::max(0LL, reads - 2) * fp.leaf_tuples;
  fp.exact = true;
  fp.note = "exact: " + std::to_string(plan.levels.size()) + " flat levels, " +
            std::to_string(fp.leaf_tuples) + " leaf tuples";
  return fp;
}

ParallelLegality plan_parallel_legality(const Plan& plan, const Query& q) {
  if (plan.levels.empty())
    return {false, "plan has no levels"};
  const PlanLevel& outer = plan.levels[0];
  if (outer.method == JoinMethod::kMerge)
    return {false, "outer level " + outer.var +
                       " is a merge join (chunking the k-finger sweep "
                       "would change merge_steps)"};
  // Scan every access the plan touches for mid-run mutation or stateful
  // virtual search; either makes concurrent frames unsafe.
  auto scan_access = [&](const Access& a) -> std::string {
    const auto& rel = q.relations[static_cast<std::size_t>(a.rel)];
    const relation::IndexLevel& level = rel.view->level(a.depth);
    const std::string var = rel.vars[static_cast<std::size_t>(a.depth)];
    if (rel.writes && level.insertable())
      return rel.view->name() + " inserts on miss at " + var +
             " (fill-in grows shared storage)";
    return "";
  };
  auto scan_probe = [&](const Access& a) -> std::string {
    if (std::string why = scan_access(a); !why.empty()) return why;
    const auto& rel = q.relations[static_cast<std::size_t>(a.rel)];
    const relation::IndexLevel& level = rel.view->level(a.depth);
    if (level.search_spec().kind == relation::SearchSpec::Kind::kVirtual)
      return rel.view->name() + " probes " +
             rel.vars[static_cast<std::size_t>(a.depth)] +
             " through a stateful virtual search";
    return "";
  };
  for (const PlanLevel& pl : plan.levels) {
    for (const Access& a : pl.drivers)
      if (std::string why = scan_access(a); !why.empty()) return {false, why};
    for (const Access& a : pl.probes)
      if (std::string why = scan_probe(a); !why.empty()) return {false, why};
  }
  // Disjoint output rows: every written relation must bind the outer
  // variable at its root level, so distinct outer bindings land in
  // disjoint storage segments and no cross-thread reduction is needed.
  for (const auto& rel : q.relations) {
    if (!rel.writes) continue;
    if (rel.vars.empty() || rel.vars[0] != outer.var)
      return {false, "output " + rel.view->name() +
                         " rows are not partitioned by the outer variable " +
                         outer.var};
  }
  return {true, "outer level " + outer.var +
                    " chunked across threads (disjoint output rows)"};
}

LinkedMac link_mac(const Query& q, index_t target_rel,
                   const std::vector<index_t>& factor_rels, value_t scale) {
  BERNOULLI_CHECK(target_rel >= 0 &&
                  target_rel < static_cast<index_t>(q.relations.size()));
  LinkedMac mac;
  mac.target = q.relations[static_cast<std::size_t>(target_rel)].view;
  BERNOULLI_CHECK(mac.target->writable());
  mac.target_slot = static_cast<std::size_t>(target_rel);
  mac.target_data = mac.target->value_array_mut();
  mac.scale = scale;
  for (index_t f : factor_rels) {
    BERNOULLI_CHECK(f >= 0 && f < static_cast<index_t>(q.relations.size()));
    LinkedMac::Factor fac;
    fac.view = q.relations[static_cast<std::size_t>(f)].view;
    fac.slot = static_cast<std::size_t>(f);
    fac.data = fac.view->value_array();
    mac.factors.push_back(fac);
  }
  return mac;
}

LinkedRunner::LinkedRunner(LinkedPlan lp) : lp_(std::move(lp)) {
  const Query& q = *lp_.query;
  vars_.assign(q.vars.size(), -1);
  pos_.assign(static_cast<std::size_t>(lp_.pos_slots), -1);
  leaf_.assign(q.relations.size(), -1);
  frames_.resize(lp_.levels.size());
  fanout_local_.resize(lp_.levels.size());
  for (std::size_t d = 0; d < lp_.levels.size(); ++d) {
    frames_[d].cursors.resize(lp_.levels[d].drivers.size());
    frames_[d].bufs.resize(lp_.levels[d].drivers.size());
    fanout_local_[d].assign(support::Log2Histogram::kBuckets, 0);
  }
}

}  // namespace bernoulli::compiler
