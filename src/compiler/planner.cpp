#include "compiler/planner.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "support/error.hpp"
#include "support/trace.hpp"

namespace bernoulli::compiler {

using relation::Query;
using relation::SearchCost;

namespace {

double probe_cost(const relation::IndexLevel& level) {
  switch (level.properties().search_cost) {
    case SearchCost::kConstant: return 1.0;
    case SearchCost::kLog: return 4.0;
    case SearchCost::kLinear: return level.expected_size();
  }
  return level.expected_size();
}

// Extent of a variable: the size of the densest level that binds it —
// needed to turn a probe's expected hit count into a selectivity.
double var_extent(const Query& q, const std::string& var) {
  double extent = 1.0;
  for (const auto& r : q.relations) {
    for (std::size_t d = 0; d < r.vars.size(); ++d) {
      if (r.vars[d] != var) continue;
      const auto& level = r.view->level(static_cast<index_t>(d));
      if (level.properties().dense)
        extent = std::max(extent, level.expected_size());
    }
  }
  return extent;
}

// Per-order planning state: how many hierarchy levels of each relation are
// already resolved, and (for order-free relations) which depths are done.
struct RelState {
  index_t next_depth = 0;                // order-bound progress
  std::vector<bool> resolved;            // order-free per-depth flags
};

}  // namespace

std::optional<Plan> plan_order(const Query& q,
                               const std::vector<std::string>& order,
                               bool allow_merge) {
  const std::size_t nrel = q.relations.size();
  std::vector<RelState> st(nrel);
  for (std::size_t r = 0; r < nrel; ++r)
    st[r].resolved.assign(q.relations[r].vars.size(), false);

  Plan plan;
  double card_in = 1.0;
  plan.total_cost = 0.0;

  auto is_resolvable_at = [&](std::size_t r, const std::string& var)
      -> std::optional<index_t> {
    const auto& rel = q.relations[r];
    if (rel.order_free) {
      for (std::size_t d = 0; d < rel.vars.size(); ++d)
        if (!st[r].resolved[d] && rel.vars[d] == var)
          return static_cast<index_t>(d);
      return std::nullopt;
    }
    auto d = st[r].next_depth;
    if (d < static_cast<index_t>(rel.vars.size()) &&
        rel.vars[static_cast<std::size_t>(d)] == var)
      return d;
    return std::nullopt;
  };

  auto mark_resolved = [&](std::size_t r, index_t depth) {
    if (q.relations[r].order_free) {
      st[r].resolved[static_cast<std::size_t>(depth)] = true;
    } else {
      BERNOULLI_CHECK(st[r].next_depth == depth);
      ++st[r].next_depth;
    }
  };

  std::vector<bool> bound_var(order.size(), false);
  auto var_is_bound = [&](const std::string& v) -> bool {
    for (std::size_t i = 0; i < order.size(); ++i)
      if (order[i] == v) return bound_var[i];
    return false;
  };

  for (std::size_t vi = 0; vi < order.size(); ++vi) {
    const std::string& var = order[vi];
    // One "cost" span per join level costed, nested under the "plan" span:
    // the trace shows exactly which (order, level) combinations the
    // planner priced and what each estimate came out to.
    support::TraceSpan cost_span("cost", "planner");
    cost_span.arg("var", var);
    PlanLevel level;
    level.var = var;

    // Candidates whose current level binds `var`.
    std::vector<Access> candidates;
    for (std::size_t r = 0; r < nrel; ++r)
      if (auto d = is_resolvable_at(r, var))
        candidates.push_back({static_cast<index_t>(r), *d});
    if (candidates.empty()) return std::nullopt;  // order infeasible

    // Only relations that constrain the iteration may DRIVE it: filters
    // (their stored set is the predicate), or dense levels that span the
    // variable's full extent (they enumerate everything). A non-filtering
    // sparse relation — e.g. a sparse accumulator output — would wrongly
    // restrict the iteration to its current contents (empty, before the
    // first run); an undersized dense output would silently truncate it.
    std::vector<Access> driver_candidates;
    const double extent_here = var_extent(q, var);
    for (const Access& a : candidates) {
      const auto& rel = q.relations[static_cast<std::size_t>(a.rel)];
      const auto& lvl = rel.view->level(a.depth);
      if (rel.filters ||
          (lvl.properties().dense && lvl.expected_size() >= extent_here))
        driver_candidates.push_back(a);
    }
    if (driver_candidates.empty()) return std::nullopt;

    auto level_of = [&](const Access& a) -> const relation::IndexLevel& {
      return q.relations[static_cast<std::size_t>(a.rel)].view->level(a.depth);
    };
    auto filters = [&](const Access& a) {
      return q.relations[static_cast<std::size_t>(a.rel)].filters;
    };

    // Merge policy: co-enumerate the sorted *sparse* filtering candidates
    // when there are at least two; their intersection is the binding set.
    // Dense levels are excluded — probing a dense level is O(1) and never
    // rejects, so dragging it through a merge only adds scan cost.
    std::vector<Access> merge_set;
    if (allow_merge) {
      for (const Access& a : driver_candidates)
        if (filters(a) && level_of(a).properties().sorted &&
            !level_of(a).properties().dense)
          merge_set.push_back(a);
    }

    double enum_cost = 0.0;
    double iterations = 0.0;
    if (merge_set.size() >= 2) {
      level.method = JoinMethod::kMerge;
      level.drivers = merge_set;
      double min_size = std::numeric_limits<double>::infinity();
      for (const Access& a : merge_set) {
        enum_cost += level_of(a).expected_size();
        min_size = std::min(min_size, level_of(a).expected_size());
      }
      iterations = min_size;
    } else {
      level.method = JoinMethod::kEnumerate;
      // Cheapest eligible candidate drives; filtering candidates are
      // preferred via their (typically much smaller) expected size.
      const Access* best = &driver_candidates[0];
      for (const Access& a : driver_candidates)
        if (level_of(a).expected_size() < level_of(*best).expected_size())
          best = &a;
      level.drivers = {*best};
      enum_cost = level_of(*best).expected_size();
      iterations = enum_cost;
    }
    for (const Access& a : level.drivers) mark_resolved(a.rel, a.depth);

    // Probes run once per *surviving* driver binding: E_driver times for a
    // plain enumeration, but only min-size times after a merge (the merge
    // itself discards non-matches).
    const double probe_invocations = iterations;
    double probes_cost = 0.0;
    const double extent = var_extent(q, var);
    for (const Access& a : candidates) {
      bool driven = std::any_of(level.drivers.begin(), level.drivers.end(),
                                [&](const Access& d) {
                                  return d.rel == a.rel && d.depth == a.depth;
                                });
      if (driven) continue;
      level.probes.push_back(a);
      mark_resolved(a.rel, a.depth);
      probes_cost += probe_cost(level_of(a));
      if (filters(a))
        iterations *= std::min(1.0, level_of(a).expected_size() / extent);
    }

    // Cascade: resolve levels whose variable is already bound (bound in an
    // earlier level or just now) — e.g. CCS's row level once i and j are
    // both bound.
    bound_var[vi] = true;
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (std::size_t r = 0; r < nrel; ++r) {
        const auto& rel = q.relations[r];
        for (std::size_t d = 0; d < rel.vars.size(); ++d) {
          auto dep = is_resolvable_at(r, rel.vars[d]);
          if (!dep || *dep != static_cast<index_t>(d)) continue;
          if (!var_is_bound(rel.vars[d])) continue;
          if (rel.vars[d] == var) continue;  // handled above
          Access a{static_cast<index_t>(r), static_cast<index_t>(d)};
          level.probes.push_back(a);
          mark_resolved(a.rel, a.depth);
          const auto& lv = level_of(a);
          probes_cost += probe_cost(lv);
          if (rel.filters)
            iterations *= std::min(
                1.0, lv.expected_size() / var_extent(q, rel.vars[d]));
          progressed = true;
        }
      }
    }

    level.est_iterations = std::max(iterations, 0.0);
    level.est_cost = enum_cost + probe_invocations * probes_cost;
    plan.total_cost += card_in * level.est_cost;
    card_in *= std::max(level.est_iterations, 1e-9);
    cost_span.arg("method",
                  level.method == JoinMethod::kMerge ? "merge" : "enumerate")
        .arg("est_cost", level.est_cost)
        .arg("est_iterations", level.est_iterations);
    plan.levels.push_back(std::move(level));
  }

  // Every relation must be fully resolved by the innermost level.
  for (std::size_t r = 0; r < nrel; ++r) {
    const auto& rel = q.relations[r];
    if (rel.order_free) {
      for (bool done : st[r].resolved)
        if (!done) return std::nullopt;
    } else if (st[r].next_depth != static_cast<index_t>(rel.vars.size())) {
      return std::nullopt;
    }
  }
  return plan;
}

Plan plan_query(const Query& q, const PlannerOptions& opts) {
  q.validate();
  support::TraceSpan span("plan", "planner");

  std::vector<std::vector<std::string>> orders;
  if (opts.force_order) {
    orders.push_back(*opts.force_order);
  } else {
    std::vector<std::string> order = q.vars;
    std::sort(order.begin(), order.end());
    do {
      orders.push_back(order);
    } while (std::next_permutation(order.begin(), order.end()));
  }

  std::optional<Plan> best;
  for (const auto& order : orders) {
    for (bool merge : opts.allow_merge ? std::vector<bool>{true, false}
                                       : std::vector<bool>{false}) {
      auto p = plan_order(q, order, merge);
      if (p && (!best || p->total_cost < best->total_cost)) best = std::move(p);
    }
  }
  BERNOULLI_CHECK_MSG(best.has_value(), "no feasible join order for query");
  span.arg("orders_tried", static_cast<long long>(orders.size()))
      .arg("levels", static_cast<long long>(best->levels.size()))
      .arg("chosen_cost", best->total_cost);
  return *best;
}

std::string Plan::describe(const relation::Query& q) const {
  std::ostringstream os;
  for (const auto& level : levels) {
    os << "for " << level.var << ": ";
    if (level.method == JoinMethod::kMerge) {
      os << "merge-join(";
      for (std::size_t i = 0; i < level.drivers.size(); ++i) {
        if (i) os << ", ";
        os << q.relations[static_cast<std::size_t>(level.drivers[i].rel)]
                  .view->name();
      }
      os << ")";
    } else {
      os << "enumerate "
         << q.relations[static_cast<std::size_t>(level.drivers[0].rel)]
                .view->name();
    }
    for (const auto& p : level.probes)
      os << ", probe "
         << q.relations[static_cast<std::size_t>(p.rel)].view->name() << "["
         << q.relations[static_cast<std::size_t>(p.rel)].vars[
                static_cast<std::size_t>(p.depth)]
         << "]";
    os << "\n";
  }
  return os.str();
}

}  // namespace bernoulli::compiler
