// The compiler front end (paper §2): the user writes the DENSE loop nest —
//
//   DO i = 1, N
//     DO j = 1, N
//       Y(i) = Y(i) + A(i,j) * X(j)
//
// declares which arrays are sparse and how each is stored, and the
// compiler produces the sparse program: it extracts the relational query,
// computes the sparsity predicate (Bik & Wijshoff's rule: sparse arrays in
// multiplicative positions filter the iteration), plans the joins, and
// yields a runnable/emittable kernel.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>

#include "compiler/emit.hpp"
#include "compiler/executor.hpp"
#include "compiler/link.hpp"
#include "compiler/planner.hpp"
#include "formats/bsr.hpp"
#include "formats/ccs.hpp"
#include "formats/coo.hpp"
#include "formats/csr.hpp"
#include "formats/dense.hpp"
#include "formats/ell.hpp"
#include "formats/sell.hpp"
#include "formats/sparse_vector.hpp"

namespace bernoulli::compiler {

/// An array reference in the loop body, e.g. A(i, j). For matrices the
/// convention is (row var, column var) regardless of storage; the binding
/// knows how storage hierarchy maps onto these positions.
struct ArrayRef {
  std::string array;
  std::vector<std::string> vars;
};

/// The single-statement DOANY body: target += scale * PRODUCT(factors).
/// This sum-of-products form covers the paper's kernels (matrix-vector and
/// matrix-matrix products, scalings, accumulations).
struct Statement {
  ArrayRef target;
  std::vector<ArrayRef> factors;
  value_t scale = 1.0;
};

struct Loop {
  std::string var;
  index_t extent = 0;  // iteration range [0, extent)
};

struct LoopNest {
  std::vector<Loop> loops;
  Statement body;
};

/// Maps array names to relation views plus the metadata the extractor
/// needs: whether the array is sparse (participates in the sparsity
/// predicate) and how hierarchy levels map to reference positions.
/// The Bindings object OWNS the views it creates and must outlive any
/// kernel compiled against it.
class Bindings {
 public:
  Bindings() = default;
  Bindings(Bindings&&) = default;
  Bindings& operator=(Bindings&&) = default;

  void bind_csr(const std::string& name, const formats::Csr& m);
  void bind_ccs(const std::string& name, const formats::Ccs& m);
  void bind_coo(const std::string& name, const formats::Coo& m);
  void bind_ell(const std::string& name, const formats::Ell& m);
  void bind_bsr(const std::string& name, const formats::Bsr& m);
  void bind_sell(const std::string& name, const formats::Sell& m);
  void bind_dense_matrix(const std::string& name, formats::Dense& m);
  void bind_dense_vector(const std::string& name, VectorView v);
  void bind_dense_vector(const std::string& name, ConstVectorView v);
  void bind_sparse_vector(const std::string& name,
                          const formats::SparseVector& v);

  /// Escape hatch for user-defined formats: `level_to_ref[d]` gives the
  /// reference position bound by hierarchy level d. The view is not owned.
  void bind_view(const std::string& name, relation::RelationView* view,
                 std::vector<index_t> level_to_ref, bool sparse);

  struct Entry {
    relation::RelationView* view = nullptr;
    std::vector<index_t> level_to_ref;
    bool sparse = false;
  };
  const Entry& lookup(const std::string& name) const;

 private:
  std::map<std::string, Entry> entries_;
  std::vector<std::unique_ptr<relation::RelationView>> owned_;
};

/// A compiled kernel: query + plan + statement, ready to interpret or to
/// render as C. References views owned by the Bindings it was compiled
/// from.
class CompiledKernel {
 public:
  CompiledKernel() = default;
  // The lazily-built linked program borrows this object's plan_/query_, so
  // copies and moves must not share or carry the source's cache. Dropping
  // it silently would make the first run() after a copy/move pay a hidden
  // re-link (and, worse, mutate a const kernel from what looks like a
  // steady-state call), so when the source was already linked the cache is
  // re-established eagerly against this object's own plan_/query_.
  //
  // Concurrency (PR 10): run() may be in flight on another thread while a
  // copy is taken, so the source's linked_ cache is only ever read under
  // its cache mutex — the copy looks at null-ness alone and re-links
  // against its OWN plan_/query_, never the source's in-flux runner state.
  // Moves and assignments REPLACE storage a concurrent run borrows, which
  // no lock can make safe; they enforce a cheap ownership check instead
  // (active_runs() == 0, std::terminate via the noexcept boundary on
  // violation — a dangling runner would be memory corruption, not an
  // error state).
  CompiledKernel(const CompiledKernel& o)
      : query_(o.query_), plan_(o.plan_), stmt_(o.stmt_),
        interval_(o.interval_) {
    if (o.linked_snapshot() != nullptr) relink();
  }
  CompiledKernel(CompiledKernel&& o) noexcept
      : query_(std::move(o.query_)), plan_(std::move(o.plan_)),
        stmt_(std::move(o.stmt_)), interval_(std::move(o.interval_)) {
    o.check_idle("moved from");
    const bool had = o.linked_snapshot() != nullptr;
    o.reset_linked();
    if (had) relink_noexcept();
  }
  CompiledKernel& operator=(const CompiledKernel& o) {
    if (this != &o) {
      check_idle("reassigned");
      query_ = o.query_;
      plan_ = o.plan_;
      stmt_ = o.stmt_;
      interval_ = o.interval_;
      reset_linked();
      if (o.linked_snapshot() != nullptr) relink();
    }
    return *this;
  }
  CompiledKernel& operator=(CompiledKernel&& o) noexcept {
    if (this != &o) {
      check_idle("reassigned");
      o.check_idle("moved from");
      query_ = std::move(o.query_);
      plan_ = std::move(o.plan_);
      stmt_ = std::move(o.stmt_);
      interval_ = std::move(o.interval_);
      const bool had = o.linked_snapshot() != nullptr;
      reset_linked();
      o.reset_linked();
      if (had) relink_noexcept();
    }
    return *this;
  }

  /// Executes the kernel through the linked cursor engine. The plan is
  /// linked on the first run and the linked program (runner scratch, the
  /// lowered multiply-accumulate) is cached, so solver loops that call
  /// run() per iteration pay name resolution and allocation once.
  ///
  /// Thread-safe against concurrent run() and copy-from on the same
  /// kernel: the cached program is claimed with an atomic in-use flag;
  /// a contended run falls back to a private one-shot program (correct,
  /// just not amortized). Concurrent writes to the TARGET storage are
  /// still the caller's problem, exactly as for two serial runs.
  void run() const;

  /// Number of run() calls currently in flight (the ownership check moves
  /// and assignments enforce).
  int active_runs() const {
    return active_runs_.load(std::memory_order_acquire);
  }

  /// The C program the compiler generates for this plan.
  std::string emit(const std::string& function_name = "computed_kernel") const;

  /// Join-order / join-method summary.
  std::string describe_plan() const;

  /// Full EXPLAIN of the chosen plan: join order, join algorithm per
  /// level, access-method properties and cost estimates (see
  /// compiler/explain.hpp). Text tree and JSON forms.
  std::string explain() const;
  std::string explain_json(int indent = 0) const;

  const Plan& plan() const { return plan_; }
  const relation::Query& query() const { return query_; }

 private:
  friend CompiledKernel compile(const LoopNest&, const Bindings&,
                                const PlannerOptions&);
  relation::Query query_;
  Plan plan_;
  EmitStatement stmt_;
  // The iteration-space relation is synthesized by compile() and owned by
  // the kernel (other views belong to the Bindings).
  std::shared_ptr<relation::RelationView> interval_;
  struct LinkedProgram {
    LinkedRunner runner;
    LinkedMac mac;
    // Claimed by run() for the duration of one execution; a second run
    // arriving while set builds a private program instead of racing on
    // the shared runner scratch. The atomic makes the struct non-movable,
    // hence the explicit constructor for make_shared.
    std::atomic<bool> in_use{false};
    LinkedProgram(LinkedRunner r, LinkedMac m)
        : runner(std::move(r)), mac(std::move(m)) {}
  };
  // Rebuilds linked_ against this object's plan_/query_. relink_noexcept
  // swallows failures (move operations are noexcept); run() re-links
  // lazily in that case.
  void relink() const;
  void relink_noexcept() const noexcept;
  std::shared_ptr<LinkedProgram> build_program() const;
  // The only sanctioned reads/writes of linked_ — it is shared mutable
  // state between run() (lazy build) and copy/move (cache probe).
  std::shared_ptr<LinkedProgram> linked_snapshot() const {
    std::lock_guard<std::mutex> lk(link_mu_);
    return linked_;
  }
  void reset_linked() const {
    std::lock_guard<std::mutex> lk(link_mu_);
    linked_.reset();
  }
  // Terminates (through the noexcept move boundary) when a move or
  // assignment would rip storage out from under an in-flight run.
  void check_idle(const char* what) const;
  mutable std::shared_ptr<LinkedProgram> linked_;  // built on first run()
  mutable std::mutex link_mu_;                     // guards linked_
  mutable std::atomic<int> active_runs_{0};
};

/// The compiler pipeline: extract query -> sparsity predicate -> plan.
CompiledKernel compile(const LoopNest& nest, const Bindings& bindings,
                       const PlannerOptions& opts = {});

}  // namespace bernoulli::compiler
