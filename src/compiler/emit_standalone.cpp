#include "compiler/emit_standalone.hpp"

#include <sstream>

#include "support/error.hpp"

namespace bernoulli::compiler {

std::string emit_standalone_c(const std::string& kernel_code,
                              const std::string& kernel_name,
                              const std::vector<CIntArray>& int_arrays,
                              const std::vector<CDoubleArray>& double_arrays,
                              const std::string& print_array,
                              std::size_t print_count) {
  BERNOULLI_CHECK(!kernel_name.empty() && !print_array.empty());
  std::ostringstream os;
  os << "/* standalone program assembled around Bernoulli-generated code */\n"
     << "#include <stdio.h>\n\n"
     << "/* sorted-segment search used by compressed access methods */\n"
     << "static int binsearch(const int* ind, int lo, int hi, int key) {\n"
     << "  const int end = hi;\n"
     << "  while (lo < hi) {\n"
     << "    int mid = lo + (hi - lo) / 2;\n"
     << "    if (ind[mid] < key) lo = mid + 1; else hi = mid;\n"
     << "  }\n"
     << "  /* lo == first position >= key within the original segment */\n"
     << "  return (lo < end && ind[lo] == key) ? lo : -1;\n"
     << "}\n\n";

  for (const auto& a : int_arrays) {
    BERNOULLI_CHECK_MSG(!a.data.empty(), a.name << " is empty");
    os << "static const int " << a.name << "[" << a.data.size() << "] = {";
    for (std::size_t k = 0; k < a.data.size(); ++k)
      os << (k ? "," : "") << a.data[k];
    os << "};\n";
  }
  for (const auto& a : double_arrays) {
    BERNOULLI_CHECK_MSG(!a.data.empty(), a.name << " is empty");
    os << "static double " << a.name << "[" << a.data.size() << "] = {";
    os.precision(17);
    for (std::size_t k = 0; k < a.data.size(); ++k)
      os << (k ? "," : "") << a.data[k];
    os << "};\n";
  }

  os << '\n' << kernel_code << '\n';

  os << "int main(void) {\n"
     << "  " << kernel_name << "();\n"
     << "  for (int i = 0; i < " << print_count << "; ++i)\n"
     << "    printf(\"%.17g\\n\", " << print_array << "[i]);\n"
     << "  return 0;\n"
     << "}\n";
  return os.str();
}

}  // namespace bernoulli::compiler
