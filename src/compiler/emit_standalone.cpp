#include "compiler/emit_standalone.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"
#include "support/histogram.hpp"
#include "support/profile.hpp"

namespace bernoulli::compiler {

std::string emit_standalone_c(const std::string& kernel_code,
                              const std::string& kernel_name,
                              const std::vector<CIntArray>& int_arrays,
                              const std::vector<CDoubleArray>& double_arrays,
                              const std::string& print_array,
                              std::size_t print_count) {
  BERNOULLI_CHECK(!kernel_name.empty() && !print_array.empty());
  std::ostringstream os;
  os << "/* standalone program assembled around Bernoulli-generated code */\n"
     << "#include <stdio.h>\n\n"
     << "/* sorted-segment search used by compressed access methods */\n"
     << "static int binsearch(const int* ind, int lo, int hi, int key) {\n"
     << "  const int end = hi;\n"
     << "  while (lo < hi) {\n"
     << "    int mid = lo + (hi - lo) / 2;\n"
     << "    if (ind[mid] < key) lo = mid + 1; else hi = mid;\n"
     << "  }\n"
     << "  /* lo == first position >= key within the original segment */\n"
     << "  return (lo < end && ind[lo] == key) ? lo : -1;\n"
     << "}\n\n";

  for (const auto& a : int_arrays) {
    BERNOULLI_CHECK_MSG(!a.data.empty(), a.name << " is empty");
    os << "static const int " << a.name << "[" << a.data.size() << "] = {";
    for (std::size_t k = 0; k < a.data.size(); ++k)
      os << (k ? "," : "") << a.data[k];
    os << "};\n";
  }
  for (const auto& a : double_arrays) {
    BERNOULLI_CHECK_MSG(!a.data.empty(), a.name << " is empty");
    os << "static double " << a.name << "[" << a.data.size() << "] = {";
    os.precision(17);
    for (std::size_t k = 0; k < a.data.size(); ++k)
      os << (k ? "," : "") << a.data[k];
    os << "};\n";
  }

  os << '\n' << kernel_code << '\n';

  os << "int main(void) {\n"
     << "  " << kernel_name << "();\n"
     << "  for (int i = 0; i < " << print_count << "; ++i)\n"
     << "    printf(\"%.17g\\n\", " << print_array << "[i]);\n"
     << "  return 0;\n"
     << "}\n";
  return os.str();
}

namespace {

// Runtime arrays the generated code references, deduplicated by pointer
// and named after their slot in the corresponding argument vector.
struct ArgPool {
  std::vector<const index_t*> ints;
  std::vector<const value_t*> consts;
  std::vector<value_t*> outs;

  std::string int_name(const index_t* p) {
    for (std::size_t i = 0; i < ints.size(); ++i)
      if (ints[i] == p) return "I" + std::to_string(i);
    ints.push_back(p);
    return "I" + std::to_string(ints.size() - 1);
  }
  std::string const_name(const value_t* p) {
    for (std::size_t i = 0; i < consts.size(); ++i)
      if (consts[i] == p) return "D" + std::to_string(i);
    consts.push_back(p);
    return "D" + std::to_string(consts.size() - 1);
  }
  std::string out_name(value_t* p) {
    for (std::size_t i = 0; i < outs.size(); ++i)
      if (outs[i] == p) return "W" + std::to_string(i);
    outs.push_back(p);
    return "W" + std::to_string(outs.size() - 1);
  }
};

// Emission-time index range of everything a level can enumerate, for
// always-hit probe proofs. mx < mn means the level enumerates nothing
// (vacuously in any range).
struct IndexRange {
  index_t mn = 0;
  index_t mx = -1;
};

IndexRange scan_range(const index_t* a, index_t n) {
  IndexRange r;
  if (a == nullptr || n <= 0) return r;
  r.mn = r.mx = a[0];
  for (index_t k = 1; k < n; ++k) {
    r.mn = std::min(r.mn, a[k]);
    r.mx = std::max(r.mx, a[k]);
  }
  return r;
}

IndexRange enum_index_range(const relation::EnumSpec& es) {
  using Kind = relation::EnumSpec::Kind;
  switch (es.kind) {
    case Kind::kDense: {
      IndexRange r;
      if (es.extent > 0) {
        r.mn = 0;
        r.mx = es.extent - 1;
      }
      return r;
    }
    case Kind::kSegmented:
    case Kind::kList:
    case Kind::kStrided:
    case Kind::kOffsets:
      return scan_range(es.ind, es.ind_len);
    case Kind::kBlocked: {
      // ind holds block columns; each expands to block_c lanes.
      IndexRange r = scan_range(es.ind, es.ind_len);
      if (r.mx >= r.mn) {
        r.mn = r.mn * es.block_c;
        r.mx = r.mx * es.block_c + es.block_c - 1;
      }
      return r;
    }
    case Kind::kSliced:
      // Whole lane-major array including padding (padding holds column 0,
      // which only widens the range toward 0 — safe for the proofs).
      return scan_range(es.ind, es.ind_len);
    case Kind::kFunction:
      return scan_range(es.map, es.map_len);
    case Kind::kNone:
      break;
  }
  return {};
}

// parent*stride + k, with the degenerate forms collapsed.
std::string affine_expr(const std::string& parent, index_t stride,
                        const std::string& k) {
  if (stride == 0 || parent == "0") return k;
  return parent + " * " + std::to_string(stride) + " + " + k;
}

std::string pvar(int slot) { return "p" + std::to_string(slot); }
std::string vvar(int slot) { return "v" + std::to_string(slot); }

std::string parent_expr(int parent_slot) {
  return parent_slot < 0 ? "0" : pvar(parent_slot);
}

}  // namespace

LinkedEmission emit_linked_c(const LinkedPlan& lp, const LinkedMac& mac,
                             const std::string& symbol) {
  BERNOULLI_CHECK(!symbol.empty());
  LinkedEmission out;
  out.symbol = symbol;
  out.num_levels = lp.levels.size();
  auto refuse = [&](const std::string& note) {
    out.ok = false;
    out.note = note;
    return out;
  };
  auto rel_name = [&](index_t rel) -> std::string {
    return lp.query->relations[static_cast<std::size_t>(rel)].view->name();
  };

  if (lp.levels.empty()) return refuse("plan has no levels");
  if (mac.target_data.empty())
    return refuse(mac.target->name() + " exposes no flat value array");
  for (const LinkedMac::Factor& f : mac.factors)
    if (f.data.empty())
      return refuse(f.view->name() + " exposes no flat value array");

  std::vector<relation::EnumSpec> specs;
  for (std::size_t d = 0; d < lp.levels.size(); ++d) {
    const LinkedLevel& lv = lp.levels[d];
    if (lv.method != JoinMethod::kEnumerate)
      return refuse("level " + std::to_string(d) +
                    " is a merge join; specialization covers enumerate-only "
                    "plans");
    const relation::EnumSpec es = lv.drivers[0].level->enum_spec();
    if (es.kind == relation::EnumSpec::Kind::kNone)
      return refuse(rel_name(lv.drivers[0].rel) +
                    " has no flat enumeration shape at level " +
                    std::to_string(d));
    for (const LinkedProbe& pr : lv.probes) {
      if (pr.insert_on_miss)
        return refuse(rel_name(pr.access.rel) +
                      " inserts on miss (sparse fill-in)");
      if (pr.search.kind == relation::SearchSpec::Kind::kVirtual)
        return refuse(rel_name(pr.access.rel) +
                      " probes through a virtual search");
    }
    specs.push_back(es);
  }

  // Drain-kind attribution per level for the host's profile commit: the
  // leaf loop is the moral equivalent of a linked-engine bulk drain
  // (blocked/sliced for those storages), everything above is per-tuple.
  for (std::size_t d = 0; d < specs.size(); ++d) {
    int kind = support::kProfTuple;
    if (d + 1 == specs.size()) {
      using EKind = relation::EnumSpec::Kind;
      kind = specs[d].kind == EKind::kBlocked  ? support::kProfBlocked
             : specs[d].kind == EKind::kSliced ? support::kProfSliced
                                               : support::kProfBulk;
    }
    out.level_kinds.push_back(kind);
  }

  ArgPool pool;
  std::ostringstream body;
  bool need_binsearch = false;
  int indent = 1;
  auto line = [&](const std::string& s) {
    for (int i = 0; i < indent; ++i) body << "  ";
    body << s << '\n';
  };

  for (std::size_t d = 0; d < lp.levels.size(); ++d) {
    const LinkedLevel& lv = lp.levels[d];
    const relation::EnumSpec& es = specs[d];
    const std::string D = std::to_string(d);
    const std::string en = "en" + D;
    const std::string prn = "prn" + D;
    const std::string P = parent_expr(lv.drivers[0].parent_slot);
    const std::string p = pvar(lv.drivers[0].pos_slot);
    const std::string v = vvar(lv.var_slot);
    const std::string k = "k" + D;

    line("{  /* level " + D + ": enumerate " +
         rel_name(lv.drivers[0].rel) + " */");
    ++indent;
    line("long long " + en + " = 0, " + prn + " = 0;");
    // Per-level time attribution (the lvl_ns ABI slots, docs/CODEGEN.md):
    // level 0 brackets the whole kernel exactly; deeper levels bracket
    // whole invocations, sampled on the outer enumeration counter so the
    // probes' `continue` paths cannot skip a close.
    if (d == 0) {
      line("const int pon0 = prof;");
    } else {
      line("const int pon" + D + " = prof && en0 % " +
           std::to_string(support::kProfileSampleEvery) + " == 1;");
    }
    line("const long long pns" + D + " = pon" + D + " ? now_ns() : 0;");
    using EKind = relation::EnumSpec::Kind;
    switch (es.kind) {
      case EKind::kDense:
        line("for (int " + k + " = 0; " + k + " < " +
             std::to_string(es.extent) + "; ++" + k + ") {");
        ++indent;
        line("++" + en + ";");
        line("const int " + v + " = " + k + ";");
        line("const int " + p + " = " + affine_expr(P, es.stride, k) + ";");
        break;
      case EKind::kSegmented: {
        const std::string ptr = pool.int_name(es.ptr);
        const std::string ind_a = pool.int_name(es.ind);
        line("for (int " + p + " = " + ptr + "[" + P + "]; " + p + " < " +
             ptr + "[" + P + " + 1]; ++" + p + ") {");
        ++indent;
        line("++" + en + ";");
        line("const int " + v + " = " + ind_a + "[" + p + "];");
        break;
      }
      case EKind::kList: {
        const std::string ind_a = pool.int_name(es.ind);
        line("for (int " + p + " = 0; " + p + " < " +
             std::to_string(es.extent) + "; ++" + p + ") {");
        ++indent;
        line("++" + en + ";");
        line("const int " + v + " = " + ind_a + "[" + p + "];");
        break;
      }
      case EKind::kFunction: {
        const std::string map = pool.int_name(es.map);
        // A single child; the loop form keeps `continue` meaningful for
        // filtering probes.
        line("for (int " + k + " = 0; " + k + " < 1; ++" + k + ") {");
        ++indent;
        line("++" + en + ";");
        line("const int " + v + " = " + map + "[" + P + "];");
        line("const int " + p + " = " + P + ";");
        break;
      }
      case EKind::kStrided: {
        const std::string ind_a = pool.int_name(es.ind);
        const std::string len = pool.int_name(es.len);
        line("for (int " + k + " = 0; " + k + " < " + len + "[" + P +
             "]; ++" + k + ") {");
        ++indent;
        line("++" + en + ";");
        line("const int " + p + " = " + P + " + " + k + " * " +
             std::to_string(es.stride) + ";");
        line("const int " + v + " = " + ind_a + "[" + p + "];");
        break;
      }
      case EKind::kOffsets: {
        const std::string ind_a = pool.int_name(es.ind);
        const std::string off = pool.int_name(es.off);
        const std::string len = pool.int_name(es.len);
        line("for (int " + k + " = 0; " + k + " < " + len + "[" + P +
             "]; ++" + k + ") {");
        ++indent;
        line("++" + en + ";");
        line("const int " + p + " = " + off + "[" + k + "] + " + P + ";");
        line("const int " + v + " = " + ind_a + "[" + p + "];");
        break;
      }
      case EKind::kBlocked: {
        // One block row per parent row: the block loop walks the stored
        // blocks, the lane loop has a literal trip count (block_c), which
        // cc -O2 fully unrolls. The lane body is the loop's compound
        // statement, so the level's single closing brace closes both.
        const std::string ptr = pool.int_name(es.ptr);
        const std::string ind_a = pool.int_name(es.ind);
        const std::string rs = std::to_string(es.block_r);
        const std::string cs = std::to_string(es.block_c);
        const std::string rc = std::to_string(es.block_r * es.block_c);
        const std::string b = "b" + D;
        const std::string cc = "cc" + D;
        line("const int br" + D + " = " + P + " / " + rs + ";");
        line("const int ro" + D + " = (" + P + " % " + rs + ") * " + cs +
             ";");
        line("for (int " + b + " = " + ptr + "[br" + D + "]; " + b + " < " +
             ptr + "[br" + D + " + 1]; ++" + b + ")");
        line("for (int " + cc + " = 0; " + cc + " < " + cs + "; ++" + cc +
             ") {");
        ++indent;
        line("++" + en + ";");
        line("const int " + v + " = " + ind_a + "[" + b + "] * " + cs +
             " + " + cc + ";");
        line("const int " + p + " = " + b + " * " + rc + " + ro" + D +
             " + " + cc + ";");
        break;
      }
      case EKind::kSliced: {
        // len[]-bounded lane walk: padding slots past a row's length are
        // never touched, so the emitted kernel books the same counters as
        // the engines.
        const std::string ind_a = pool.int_name(es.ind);
        const std::string off = pool.int_name(es.off);
        const std::string len = pool.int_name(es.len);
        line("const int sb" + D + " = " + off + "[" + P + "];");
        line("for (int " + k + " = 0; " + k + " < " + len + "[" + P +
             "]; ++" + k + ") {");
        ++indent;
        line("++" + en + ";");
        line("const int " + p + " = sb" + D + " + " + k + " * " +
             std::to_string(es.stride) + ";");
        line("const int " + v + " = " + ind_a + "[" + p + "];");
        break;
      }
      case EKind::kNone:
        break;  // rejected above
    }

    const IndexRange er = enum_index_range(es);
    for (const LinkedProbe& pr : lv.probes) {
      const std::string pv = vvar(pr.var_slot);
      const std::string pp = parent_expr(pr.access.parent_slot);
      const std::string ps = pvar(pr.access.pos_slot);
      const std::string miss =
          pr.filters ? "{ ++misses; continue; }" : "return 1;";
      // Always-hit proof: the probe checks 0 <= idx < extent and the idx
      // it sees is this level's variable, whose full enumerated range was
      // scanned at emission time.
      const bool own_var = pr.var_slot == lv.var_slot;
      const bool proved = own_var && er.mn >= 0 &&
                          (er.mx < er.mn || er.mx < pr.search.extent);
      using SKind = relation::SearchSpec::Kind;
      switch (pr.search.kind) {
        case SKind::kIdentity:
          if (proved) {
            line("const int " + ps + " = " + pv +
                 ";  /* proved in [0, " +
                 std::to_string(pr.search.extent) + ") */");
          } else {
            line("if (" + pv + " < 0 || " + pv + " >= " +
                 std::to_string(pr.search.extent) + ") " + miss);
            line("const int " + ps + " = " + pv + ";");
          }
          break;
        case SKind::kAffine: {
          const std::string pos =
              affine_expr(pp, pr.search.stride, pv);
          if (proved) {
            line("const int " + ps + " = " + pos +
                 ";  /* proved in [0, " +
                 std::to_string(pr.search.extent) + ") */");
          } else {
            line("if (" + pv + " < 0 || " + pv + " >= " +
                 std::to_string(pr.search.extent) + ") " + miss);
            line("const int " + ps + " = " + pos + ";");
          }
          break;
        }
        case SKind::kSegmentBinary: {
          need_binsearch = true;
          const std::string ptr = pool.int_name(pr.search.ptr);
          const std::string ind_a = pool.int_name(pr.search.ind);
          line("const int " + ps + " = binsearch(" + ind_a + ", " + ptr +
               "[" + pp + "], " + ptr + "[" + pp + " + 1], " + pv + ");");
          line("if (" + ps + " < 0) " + miss);
          break;
        }
        case SKind::kListBinary: {
          need_binsearch = true;
          const std::string ind_a = pool.int_name(pr.search.ind);
          line("const int " + ps + " = binsearch(" + ind_a + ", 0, " +
               std::to_string(pr.search.extent) + ", " + pv + ");");
          line("if (" + ps + " < 0) " + miss);
          break;
        }
        case SKind::kFunction: {
          const std::string map = pool.int_name(pr.search.map);
          line("if (" + map + "[" + pp + "] != " + pv + ") " + miss);
          line("const int " + ps + " = " + pp + ";");
          break;
        }
        case SKind::kVirtual:
          break;  // rejected above
      }
      line("++hits;");
    }
    line("++" + prn + ";");
  }

  // Leaf body: the multiply-accumulate in the engines' exact operation
  // order (scale first, factors left to right, one store).
  line("++tuples;");
  {
    std::ostringstream sc;
    sc.precision(17);
    sc << mac.scale;
    line("double prod = " + sc.str() + ";");
  }
  for (const LinkedMac::Factor& f : mac.factors) {
    const std::string da = pool.const_name(f.data.data());
    line("prod *= " + da + "[" +
         pvar(lp.leaf_slot[static_cast<std::size_t>(f.slot)]) + "];");
  }
  {
    const std::string wa = pool.out_name(mac.target_data.data());
    line(wa + "[" +
         pvar(lp.leaf_slot[static_cast<std::size_t>(mac.target_slot)]) +
         "] += prod;");
  }

  // Close the loops innermost-out, booking each level's invocation totals
  // and its one fan-out sample — the linked engine's close_frame.
  for (std::size_t d = lp.levels.size(); d-- > 0;) {
    const std::string D = std::to_string(d);
    --indent;
    line("}");
    line("if (pon" + D + ") { lvl_ns[" + std::to_string(3 * d) +
         "] += now_ns() - pns" + D + "; ++lvl_ns[" +
         std::to_string(3 * d + 1) + "]; lvl_ns[" +
         std::to_string(3 * d + 2) + "] += prn" + D + "; }");
    line("lvl_enum[" + D + "] += en" + D + ";");
    line("lvl_prod[" + D + "] += prn" + D + ";");
    line("++fanout[" + D + " * " +
         std::to_string(support::Log2Histogram::kBuckets) +
         " + bucket_of(prn" + D + ")];");
    --indent;
    line("}");
  }
  line("ctr[0] += tuples;");
  line("ctr[1] += hits;");
  line("ctr[2] += misses;");
  line("return 0;");

  std::ostringstream os;
  os << "/* kernel specialized at runtime from a linked plan; arrays are\n"
     << " * passed by the host, counters replicate the linked engine's\n"
     << " * bookkeeping (see compiler/specialize.hpp) */\n"
     << "#include <time.h>\n\n"
     << "static long long now_ns(void) {\n"
     << "  struct timespec ts;\n"
     << "  clock_gettime(CLOCK_MONOTONIC, &ts);\n"
     << "  return (long long)ts.tv_sec * 1000000000LL + ts.tv_nsec;\n"
     << "}\n\n"
     << "static int bucket_of(long long v) {\n"
     << "  if (v <= 0) return 0;\n"
     << "  int k = 1;\n"
     << "  while (k < " << (support::Log2Histogram::kBuckets - 1)
     << " && v >= (1LL << k)) ++k;\n"
     << "  return k;\n"
     << "}\n\n";
  if (need_binsearch) {
    os << "static int binsearch(const int* ind, int lo, int hi, int key) {\n"
       << "  const int end = hi;\n"
       << "  while (lo < hi) {\n"
       << "    int mid = lo + (hi - lo) / 2;\n"
       << "    if (ind[mid] < key) lo = mid + 1; else hi = mid;\n"
       << "  }\n"
       << "  return (lo < end && ind[lo] == key) ? lo : -1;\n"
       << "}\n\n";
  }
  os << "int " << symbol
     << "(const int** ia, const double** da, double** wa,\n"
     << "    long long* ctr, long long* lvl_enum, long long* lvl_prod,\n"
     << "    long long* fanout, long long* lvl_ns, int prof) {\n"
     << "  (void)ia; (void)da; (void)wa; (void)lvl_ns; (void)prof;\n";
  for (std::size_t i = 0; i < pool.ints.size(); ++i)
    os << "  const int* const I" << i << " = ia[" << i << "];\n";
  for (std::size_t i = 0; i < pool.consts.size(); ++i)
    os << "  const double* const D" << i << " = da[" << i << "];\n";
  for (std::size_t i = 0; i < pool.outs.size(); ++i)
    os << "  double* const W" << i << " = wa[" << i << "];\n";
  os << "  long long tuples = 0, hits = 0, misses = 0;\n"
     << body.str() << "}\n";

  out.ok = true;
  out.source = os.str();
  out.int_args = pool.ints;
  out.const_args = pool.consts;
  out.out_args = pool.outs;
  return out;
}

}  // namespace bernoulli::compiler
