// Execution plans: the planner's output and the executor/emitter's input.
//
// A plan is a nest of levels, one per loop variable in the chosen order.
// Each level names a join method for binding that variable:
//   - kEnumerate: one relation level drives by enumeration, the rest of the
//     relations that reach this variable are probed (index nested loop);
//   - kMerge: two or more sorted relation levels are co-enumerated with a
//     multi-way merge join, remaining relations are probed.
// Probes of *filtering* relations reject iterations on miss — this is how
// the sparsity predicate sigma_P executes. Probes of non-filtering
// relations (dense reads, outputs) always hit and merely resolve positions.
#pragma once

#include <string>
#include <vector>

#include "relation/query.hpp"

namespace bernoulli::compiler {

/// One relation-level binding inside a plan level.
struct Access {
  index_t rel = 0;    // index into Query::relations
  index_t depth = 0;  // hierarchy depth of that relation resolved here
};

enum class JoinMethod {
  kEnumerate,  // single driver enumeration + probes
  kMerge,      // multi-way sorted merge + probes
};

struct PlanLevel {
  std::string var;
  JoinMethod method = JoinMethod::kEnumerate;

  /// kEnumerate: exactly one entry. kMerge: 2+ entries, all sorted.
  std::vector<Access> drivers;

  /// Resolved by search after `var` is bound; filtering probes reject on
  /// miss. Ordered so that cascaded resolutions (a relation whose deeper
  /// level variable was bound earlier) come out right.
  std::vector<Access> probes;

  double est_iterations = 0.0;  // estimated successful bindings of `var`
  double est_cost = 0.0;        // estimated work at this level (per outer iter)
};

struct Plan {
  std::vector<PlanLevel> levels;
  double total_cost = 0.0;

  /// Human-readable plan summary (join order + methods), used in tests and
  /// by the quickstart example.
  std::string describe(const relation::Query& q) const;
};

}  // namespace bernoulli::compiler
