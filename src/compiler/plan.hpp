// Execution plans: the planner's output and the executor/emitter's input.
//
// A plan is a nest of levels, one per loop variable in the chosen order.
// Each level names a join method for binding that variable:
//   - kEnumerate: one relation level drives by enumeration, the rest of the
//     relations that reach this variable are probed (index nested loop);
//   - kMerge: two or more sorted relation levels are co-enumerated with a
//     multi-way merge join, remaining relations are probed.
// Probes of *filtering* relations reject iterations on miss — this is how
// the sparsity predicate sigma_P executes. Probes of non-filtering
// relations (dense reads, outputs) always hit and merely resolve positions.
//
// Cost model conventions (what the planner optimizes and what EXPLAIN
// prints — see compiler/explain.hpp):
//   - est_iterations: expected number of successful bindings of the
//     level's variable PER ITERATION of the enclosing level. For an
//     enumerate level it is the driver's expected_size() discounted by
//     filtering probes' hit probability; for a merge level it is the
//     expected intersection size of the drivers.
//   - est_cost: expected work at this level per enclosing iteration —
//     enumeration/merge steps plus one search per probe, each weighted by
//     the access method's SearchCost (O(1)/O(log n)/O(n)).
//   - total_cost: est_cost folded through the nest outermost-in,
//     total = sum_k ( est_cost_k * prod_{j<k} est_iterations_j ), i.e. an
//     absolute estimate for the whole kernel, comparable across plans.
// The planner enumerates legal variable orders (respecting order-bound
// storage hierarchies) and keeps the plan with the smallest total_cost.
//
// A Plan is purely structural: it holds relation INDICES into the Query
// it was planned from, never views or data pointers, so it can outlive
// rebinding and be rendered (describe/explain) without touching storage.
#pragma once

#include <string>
#include <vector>

#include "relation/query.hpp"

namespace bernoulli::compiler {

/// One relation-level binding inside a plan level.
struct Access {
  index_t rel = 0;    // index into Query::relations
  index_t depth = 0;  // hierarchy depth of that relation resolved here
};

enum class JoinMethod {
  kEnumerate,  // single driver enumeration + probes
  kMerge,      // multi-way sorted merge + probes
};

struct PlanLevel {
  std::string var;
  JoinMethod method = JoinMethod::kEnumerate;

  /// kEnumerate: exactly one entry. kMerge: 2+ entries, all sorted.
  std::vector<Access> drivers;

  /// Resolved by search after `var` is bound; filtering probes reject on
  /// miss. Ordered so that cascaded resolutions (a relation whose deeper
  /// level variable was bound earlier) come out right.
  std::vector<Access> probes;

  double est_iterations = 0.0;  // estimated successful bindings of `var`
  double est_cost = 0.0;        // estimated work at this level (per outer iter)
};

struct Plan {
  std::vector<PlanLevel> levels;
  double total_cost = 0.0;

  /// Human-readable plan summary (join order + methods), used in tests and
  /// by the quickstart example.
  std::string describe(const relation::Query& q) const;
};

}  // namespace bernoulli::compiler
