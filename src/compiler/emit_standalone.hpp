// Standalone C program emission: wraps the kernel text emit() produces
// into a complete, compilable C translation unit — the referenced arrays
// baked in as initializers, a binsearch helper, and a main() that runs the
// kernel and prints the output array. Tests compile the result with the
// system C compiler and diff its output against the plan interpreter, so
// the generated code is demonstrably real, not pseudocode.
#pragma once

#include <string>
#include <vector>

#include "compiler/link.hpp"
#include "support/types.hpp"

namespace bernoulli::compiler {

/// One array the generated kernel references, serialized into the program
/// as a global initializer. The names must match the identifiers the
/// kernel text uses (A_ROWPTR, A_COLIND, A_VALS, X, Y, ...).
struct CIntArray {
  std::string name;
  std::vector<index_t> data;
};

struct CDoubleArray {
  std::string name;
  Vector data;
};

/// Renders the full program: helpers + array definitions + `kernel_code`
/// (a complete function definition named `kernel_name`) + a main() that
/// calls it and prints `print_array` (one value per line, %.17g).
std::string emit_standalone_c(const std::string& kernel_code,
                              const std::string& kernel_name,
                              const std::vector<CIntArray>& int_arrays,
                              const std::vector<CDoubleArray>& double_arrays,
                              const std::string& print_array,
                              std::size_t print_count);

/// A (LinkedPlan, LinkedMac) pair rendered as one compilable C translation
/// unit — the input to the runtime-specialization backend
/// (compiler/specialize.hpp). Unlike emit_standalone_c, the arrays are NOT
/// baked in: the generated function takes them as runtime pointer
/// arguments (int_args/const_args/out_args give the argument order), so
/// one emitted kernel reruns against live data with no re-emission.
///
/// The exported symbol has C signature
///
///   int SYMBOL(const int** ia, const double** da, double** wa,
///              long long* ctr, long long* lvl_enum, long long* lvl_prod,
///              long long* fanout, long long* lvl_ns, int prof);
///
/// and returns 0 on success or 1 when a non-filtering probe misses (the
/// condition the engines treat as a checked runtime error). ctr receives
/// {tuples, probe_hits, probe_misses}; lvl_enum/lvl_prod receive per-level
/// enumerated/produced totals; fanout receives num_levels * 40 log2
/// buckets, one histogram sample per level invocation — exactly the
/// observability the linked engine books, so the host can flush identical
/// executor.* deltas.
///
/// lvl_ns is the per-level time-attribution block (docs/CODEGEN.md): 3
/// slots per level {raw_ns, samples, work}, written only when `prof` is
/// nonzero. Level 0 books one exact whole-kernel bracket; deeper levels
/// book whole invocations sampled every kProfileSampleEvery-th outer
/// binding. The host (compiler/specialize.cpp) compensates, extrapolates
/// and commits the same `bernoulli.profile.v1` shape the other engines
/// flush, using `level_kinds` for the drain-kind attribution.
struct LinkedEmission {
  bool ok = false;
  std::string note;    // why emission was refused (ok == false)
  std::string source;  // the full C translation unit
  std::string symbol;
  std::vector<const index_t*> int_args;   // ia[] in argument order
  std::vector<const value_t*> const_args;  // da[]
  std::vector<value_t*> out_args;          // wa[]
  std::size_t num_levels = 0;
  std::vector<int> level_kinds;  // support::kProf* drain kind per level
};

/// Emits C for the pair, or refuses with a note when the plan uses a shape
/// specialization does not cover: merge levels, virtual probes or
/// enumerations (no flat SearchSpec/EnumSpec), sparse fill-in, or operands
/// without flat value arrays. The emission borrows the plan's arrays; it
/// is valid only while the views behind `lp` stay alive and unmoved.
LinkedEmission emit_linked_c(const LinkedPlan& lp, const LinkedMac& mac,
                             const std::string& symbol);

}  // namespace bernoulli::compiler
