// Standalone C program emission: wraps the kernel text emit() produces
// into a complete, compilable C translation unit — the referenced arrays
// baked in as initializers, a binsearch helper, and a main() that runs the
// kernel and prints the output array. Tests compile the result with the
// system C compiler and diff its output against the plan interpreter, so
// the generated code is demonstrably real, not pseudocode.
#pragma once

#include <string>
#include <vector>

#include "support/types.hpp"

namespace bernoulli::compiler {

/// One array the generated kernel references, serialized into the program
/// as a global initializer. The names must match the identifiers the
/// kernel text uses (A_ROWPTR, A_COLIND, A_VALS, X, Y, ...).
struct CIntArray {
  std::string name;
  std::vector<index_t> data;
};

struct CDoubleArray {
  std::string name;
  Vector data;
};

/// Renders the full program: helpers + array definitions + `kernel_code`
/// (a complete function definition named `kernel_name`) + a main() that
/// calls it and prints `print_array` (one value per line, %.17g).
std::string emit_standalone_c(const std::string& kernel_code,
                              const std::string& kernel_name,
                              const std::vector<CIntArray>& int_arrays,
                              const std::vector<CDoubleArray>& double_arrays,
                              const std::string& print_array,
                              std::size_t print_count);

}  // namespace bernoulli::compiler
