// Plan linking: lower a validated (Plan, Query) pair ONCE into a flat,
// slot-addressed program the cursor executor (exec_linked.cpp) can run
// with no name lookups, no per-element virtual dispatch and no allocation
// inside the data loop.
//
// The interpreter in executor.cpp re-resolves everything per run and per
// tuple: variable names to slots, accesses to IndexLevel objects, probes
// through virtual search, enumeration through std::function callbacks.
// Linking is the inspector/executor split applied to our own executor —
// the same specialize-then-run move TACO-style format abstraction makes
// ahead of the data loop: resolve the access-method hierarchy into flat
// op records first, then run a tight loop over raw arrays.
//
// A LinkedPlan BORROWS the Plan, the Query and the views behind it; all
// must stay alive and unmoved while the linked plan runs. Call sites that
// execute the same plan repeatedly (CompiledKernel::run, the distributed
// kernels that re-run one local plan per solver iteration) hold a
// LinkedRunner so linking and scratch allocation happen once, not per
// iteration.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "compiler/executor.hpp"
#include "relation/cursor.hpp"
#include "support/profile.hpp"

namespace bernoulli::support {
class Log2Histogram;
}

namespace bernoulli::compiler {

/// A driver access, fully resolved: the concrete level plus flat slot
/// indices for its own and its parent's positions.
struct LinkedAccess {
  const relation::IndexLevel* level = nullptr;
  index_t rel = 0;    // index into Query::relations (diagnostics)
  index_t depth = 0;  // hierarchy depth (diagnostics)
  int pos_slot = 0;   // flat position-array slot this access writes
  int parent_slot = -1;  // slot holding the parent position; -1 = root (0)
  // Level descriptor captured at link time. Non-opaque descriptors let the
  // runner open cursors by switching on the kind directly — zero virtual
  // calls per frame open (opaque levels fall back to the buffered adapter).
  relation::LevelDescriptor desc;
};

/// A probe access: the driver fields plus the lowered search method and
/// the slot of the (already bound) variable that feeds the search.
struct LinkedProbe {
  LinkedAccess access;
  relation::SearchSpec search;
  int var_slot = 0;
  bool filters = false;         // miss rejects the iteration
  bool insert_on_miss = false;  // written + insertable: sparse fill-in
};

struct LinkedLevel {
  JoinMethod method = JoinMethod::kEnumerate;
  int var_slot = 0;
  std::vector<LinkedAccess> drivers;  // 1 for enumerate, 2+ for merge
  std::vector<LinkedProbe> probes;
  support::Log2Histogram* fanout = nullptr;  // executor.fanout.level<d>
  // Link-time always-hit proof: every probe at this level is an identity /
  // affine search with no insert-on-miss, and the driver's whole index
  // range provably lands inside every probe's accepting window. When true
  // the bulk leaf drain skips its per-invocation min/max range scan.
  bool proved_all_hit = false;
};

/// Static data-movement footprint of one plan, derived at link time from
/// the same flat cursor specs the bulk-drain proof uses: how many index
/// and value bytes ONE run(LinkedMac) execution touches per operand, and
/// how many FLOPs it performs, assuming every probe hits (the exactness
/// conditions below). This is the numerator/denominator pair the roofline
/// section of a run report needs (arithmetic intensity = flops / bytes).
///
/// `exact` is true only when the walk could prove the totals: every level
/// enumerates a flat EnumSpec, every probe is an always-hit identity or
/// affine search with no filtering and no fill-in, and segmented /
/// per-parent-count levels are invoked exactly once per parent segment.
/// When false, `note` says which condition failed and the totals are 0 —
/// callers must not report a roofline from an inexact footprint.
struct PlanFootprint {
  struct Operand {
    std::string name;          // RelationView::name()
    long long index_bytes = 0; // ptr/ind/off/len/map array bytes read
    long long value_bytes = 0; // value array bytes (written operands: 2x)
  };
  std::vector<Operand> operands;  // one per query relation, in order
  long long leaf_tuples = 0;      // surviving leaf bindings per run
  long long flops = 0;            // multiply-accumulate flops per run
  // Slack bytes a padded layout (SELL-C-σ lanes) stores but never
  // enumerates: storage overhead, excluded from index/value traffic.
  long long padding_bytes = 0;
  bool exact = false;
  std::string note;

  long long index_bytes() const {
    long long total = 0;
    for (const Operand& o : operands) total += o.index_bytes;
    return total;
  }
  long long value_bytes() const {
    long long total = 0;
    for (const Operand& o : operands) total += o.value_bytes;
    return total;
  }
  long long total_bytes() const { return index_bytes() + value_bytes(); }
};

struct LinkedPlan {
  std::vector<LinkedLevel> levels;
  std::vector<int> leaf_slot;  // per relation: slot of its deepest position
  int pos_slots = 0;           // flat position array size
  const Plan* plan = nullptr;            // borrowed (trace labels)
  const relation::Query* query = nullptr;  // borrowed (diagnostics, arity)
  // Link-time parallelizability verdict for the outermost level (see
  // plan_parallel_legality): when false, ParallelRunner runs serially and
  // parallel_note says why (also surfaced by EXPLAIN).
  bool parallel_ok = false;
  std::string parallel_note;
  // Thread-chunk alignment for the outer variable: when the plan walks a
  // blocked level whose block rows group `chunk_align` consecutive outer
  // bindings, chunk boundaries must fall on multiples of it so no block
  // row straddles two threads; when it walks a sliced level, chunks align
  // to the sorting window sigma so whole windows stay thread-local and
  // the chunk-wide sliced drain can engage. 1 = no constraint.
  index_t chunk_align = 1;
  // Static per-run data-movement model (see PlanFootprint). Derived by
  // link_plan; feeds execute.model_bytes / execute.model_flops metrics and
  // the roofline section of run reports.
  PlanFootprint footprint;
};

/// Validates `q` and lowers the pair. The result borrows both arguments.
LinkedPlan link_plan(const Plan& plan, const relation::Query& q);

/// Structural fingerprint of a (Plan, Query) pair: a stable FNV-1a hash
/// over the plan's EXPLAIN document plus each relation's view name,
/// variable binding and access role. Two pairs with equal fingerprints
/// link to the same program STRUCTURE — join order and methods, access
/// paths, level descriptors and format kinds (all of which EXPLAIN
/// renders). Deliberately excluded: storage identity and contents — a
/// cache key layers those on top (the KernelServer appends the concrete
/// array identity and the distribution tag; see docs/SERVING.md).
std::uint64_t plan_fingerprint(const Plan& plan, const relation::Query& q);

/// Whether the outermost plan level may be chunked across threads, and
/// why (not). Legal iff the outer level is an enumerate (a chunked
/// k-finger merge would change merge_steps), no access anywhere inserts
/// on miss (fill-in grows shared storage mid-run), no probe goes through
/// a stateful virtual search (e.g. the lazily built hash index), and
/// every written relation binds the outer variable at its root level —
/// distinct outer bindings then touch disjoint output rows, so any chunk
/// assignment reproduces the serial result bitwise with no reduction.
struct ParallelLegality {
  bool ok = false;
  std::string note;
};
ParallelLegality plan_parallel_legality(const Plan& plan,
                                        const relation::Query& q);

/// Walks the plan's flat cursor specs and derives the static data-movement
/// footprint link_plan attaches to the LinkedPlan. Exposed for tests (the
/// differential footprint test cross-checks leaf_tuples and bytes against
/// measured executor.* counters).
PlanFootprint derive_footprint(const Plan& plan, const relation::Query& q);

/// The multiply-accumulate statement, lowered: relation slots resolved and
/// raw value arrays captured where the views expose them (empty spans fall
/// back to the virtual value accessors — e.g. sparse accumulators, whose
/// storage grows mid-run).
struct LinkedMac {
  relation::RelationView* target = nullptr;
  std::size_t target_slot = 0;
  std::span<value_t> target_data;  // empty: use target->value_add
  value_t scale = 1.0;
  struct Factor {
    const relation::RelationView* view = nullptr;
    std::size_t slot = 0;
    std::span<const value_t> data;  // empty: use view->value_at
  };
  std::vector<Factor> factors;
};

LinkedMac link_mac(const relation::Query& q, index_t target_rel,
                   const std::vector<index_t>& factor_rels,
                   value_t scale = 1.0);

/// Process-wide toggle for the bulk leaf-range drain (exec_linked.cpp):
/// when the leaf level of a run(LinkedMac) plan enumerates a flat cursor
/// range and every leaf probe provably hits, the whole range streams
/// through one tight multiply-accumulate loop instead of per-element
/// probe resolution. Outputs, executor.* counter deltas, fan-out
/// histograms and per-level stats are bitwise-identical either way (the
/// differential sweep in tests/exec_linked_test.cpp enforces it); the
/// toggle exists so tests and ablations can compare the two paths.
/// Default: enabled.
void set_bulk_drain(bool enabled);
bool bulk_drain_enabled();

/// Runs a LinkedPlan. Owns all executor scratch (frames, cursor buffers,
/// merge state, local counter blocks), reused across runs — after the
/// first run of a given plan, steady state performs no heap allocation.
/// Observability is batched: executor.* counters and fan-out histograms
/// are accumulated in plain locals and flushed once per run, preserving
/// the exact totals the interpreter books per event.
class LinkedRunner {
 public:
  explicit LinkedRunner(LinkedPlan lp);

  const LinkedPlan& linked() const { return lp_; }

  /// One run, invoking `action` per surviving tuple (interpreter-identical
  /// results, counters and per-level stats).
  void run(const Action& action, RunStats* stats = nullptr);

  /// One run of a lowered multiply-accumulate statement — the fast path
  /// that also skips the per-tuple std::function and virtual value access.
  void run(const LinkedMac& mac, RunStats* stats = nullptr);

  /// One run's observability delta — exactly what flush() books into the
  /// executor.* counters and the per-level fan-out histograms, captured as
  /// plain numbers. The KernelServer records one of these from a cached
  /// plan's first run and REPLAYS it (times k, under the metrics commit
  /// lock) when a batched multi-vector sweep stands in for k engine runs,
  /// so counters and histograms reconcile exactly with the unbatched path.
  struct FlushDelta {
    long long tuples = 0;
    long long enumerated = 0;
    long long merge_steps = 0;
    long long probe_hits = 0;
    long long probe_misses = 0;
    long long fill_ins = 0;
    long long merge_segment_bytes = 0;
    /// Per-level fan-out bucket counts, kBuckets wide per level
    /// (support/histogram.hpp); bucket b's representative value is
    /// 0 for b == 0, else 1 << (b - 1).
    std::vector<std::vector<long long>> fanout;
  };

  /// Installs (nullptr clears) a capture target the next flush fills
  /// before booking. The captured run still books its own group normally —
  /// capture is observation, not redirection.
  void set_flush_capture(FlushDelta* capture) { capture_ = capture; }

 private:
  struct Frame {
    std::vector<relation::Cursor> cursors;     // one per driver
    std::vector<relation::CursorBuffer> bufs;  // per-driver fallback scratch
    long long seg_bytes = 0;      // merge: summed segment bytes at open
    bool advance_pending = false;  // merge: fingers sit on the last match
    long long inv_enumerated = 0;
    long long inv_produced = 0;
  };

  struct LocalCounters {
    long long tuples = 0;
    long long enumerated = 0;
    long long merge_steps = 0;
    long long probe_hits = 0;
    long long probe_misses = 0;
    long long fill_ins = 0;
    long long merge_segment_bytes = 0;
  };

  template <class Sink>
  void run_impl(Sink&& sink, RunStats* stats);

  // Shared body of the serial run and the parallel chunk run: iterates
  // the level stack over outer-cursor offsets [chunk_begin, chunk_begin +
  // chunk_count) (chunk_count < 0 = the whole range), accumulating into
  // caller-owned locals without flushing. In chunk mode (see
  // chunk_outer_produced_) the level-0 fan-out sample is withheld so the
  // coordinator can book ONE merged sample per run, exactly like serial.
  template <class Sink>
  void run_span(Sink&& sink, LocalCounters& c, RunStats* stats,
                index_t chunk_begin, index_t chunk_count);

  // Innermost-level fast path: produces every binding of an enumerate leaf
  // frame in one tight loop (cursor kind dispatched once per invocation,
  // not per element) and fires the sink inline, instead of re-entering the
  // level state machine per element. `prof_time` brackets the invocation
  // with one timestamp pair (set inside sampled profiler brackets only).
  template <class Sink>
  void drain_enumerate_leaf(std::size_t d, LocalCounters& c, Sink&& sink,
                            bool prof_time);

  void open_frame(std::size_t d);
  void close_frame(std::size_t d, LocalCounters& c, RunStats* stats);
  bool next_binding(std::size_t d, LocalCounters& c);
  bool resolve_probes(const LinkedLevel& lv, LocalCounters& c);
  // Flushes the per-run local counters into the registries and books the
  // run's serving metrics (execute.latency / execute.wall_ns and, when the
  // footprint is exact, execute.model_bytes / execute.model_flops) from
  // `wall_ns`, the measured wall time of this run. The parallel runner
  // times the whole fan-out and flushes ONCE through the coordinator, so
  // serial and threaded runs book the same number of samples.
  void flush(const LocalCounters& c, RunStats* stats, long long wall_ns);

  // --- Bulk leaf-range drain (run(LinkedMac) only) -------------------
  // One mac operand's leaf position, classified against the leaf level:
  // constant across the drain (bound at an outer level), the driver's own
  // position, or derived from the bound index through an identity/affine
  // probe. Resolved once per run; the per-invocation bases (kConst slot
  // reads, kAffine parent*stride) are refreshed inside try_bulk.
  struct BulkOp {
    enum class Src : unsigned char { kConst, kDriver, kIdentity, kAffine };
    Src src = Src::kConst;
    const value_t* data = nullptr;  // factor value array (target: unused)
    std::size_t slot = 0;           // kConst: pos_ slot read per invocation
    index_t stride = 0;             // kAffine
    int parent_slot = -1;           // kAffine
    // Per-invocation flattened form: pos = base + mp*driver_pos + mi*idx.
    index_t base = 0;
    index_t mp = 0;
    index_t mi = 0;
  };
  // The run(LinkedMac) sink: per-element multiply-accumulate plus the
  // try_bulk hook drain_enumerate_leaf detects. Defined in exec_linked.cpp
  // (local to the engine); ParallelRunner builds one per worker.
  struct MacSink;
  // Classifies the mac against the leaf level and fills bulk_* members.
  void prepare_bulk(const LinkedMac& mac);
  // Classifies the whole plan for the chunk-wide sliced drain (a two-
  // level dense-rows x sliced-leaf mac with proved all-hit probes and a
  // register-cacheable target) and fills chunk_* members.
  void prepare_chunk(const LinkedMac& mac);

  LinkedPlan lp_;
  std::vector<index_t> vars_;
  std::vector<index_t> pos_;
  std::vector<index_t> leaf_;
  std::vector<Frame> frames_;
  // run(LinkedMac) scratch: each operand's resolved leaf position slot.
  // Member (not a local) so repeated runs reuse the capacity.
  std::vector<std::size_t> mac_pslots_;
  // Bulk-drain plan (prepare_bulk): factor operand forms in factor order,
  // the target's form, and the two eligibility verdicts. Members so
  // steady-state runs allocate nothing.
  std::vector<BulkOp> bulk_ops_;
  BulkOp bulk_target_;
  bool bulk_ok_ = false;      // leaf level + operands admit bulk drains
  bool bulk_acc_ok_ = false;  // target constant and alias-free: cache it
  // --- Chunk-wide sliced drain (run(LinkedMac) only) -----------------
  // When a two-level plan enumerates dense rows over a sliced (SELL-C-σ)
  // leaf, whole σ-row windows drain in storage order as per-chunk
  // unit-stride lane passes (padded lanes retire as a suffix of the
  // descending-length lane order), instead of one lane-strided walk per
  // row. Per-row accumulation order is unchanged — one private register
  // per lane, ascending k — so results, counters, fan-out histograms and
  // per-level stats are identical to the per-row path.
  bool chunk_ok_ = false;
  index_t chunk_c_ = 0;      // lanes per chunk (SELL C)
  index_t chunk_sigma_ = 0;  // sorting window (a multiple of C)
  const index_t* chunk_off_ = nullptr;  // per-row storage base
  const index_t* chunk_len_ = nullptr;  // per-row live length
  const index_t* chunk_ind_ = nullptr;  // lane-interleaved column ids
  // Window scratch (slot = row - window start), reused across windows.
  std::vector<index_t> chunk_ord_;   // window slots in storage order
  std::vector<index_t> chunk_base_;  // per-slot storage base
  std::vector<index_t> chunk_lens_;  // per-slot live length
  std::vector<index_t> chunk_tpos_;  // per-slot target position
  std::vector<value_t> chunk_acc_;   // per-lane accumulators
  // Per-level local fan-out buckets, flushed to the registry histograms
  // once per run (kBuckets wide, see support/histogram.hpp).
  std::vector<std::vector<long long>> fanout_local_;
  // Chunk mode (set by ParallelRunner): close_frame(0) adds the outer
  // level's produced count here instead of booking a fan-out sample per
  // chunk — the serial engine books exactly one sample per run.
  long long* chunk_outer_produced_ = nullptr;
  // Per-run time-attribution scratch (support/profile.hpp): exact per-
  // (level, drain-kind) work counts plus sampled level-transition
  // intervals, flushed once per run by flush(). The ParallelRunner merges
  // worker shards into the coordinator's scratch before its single flush,
  // so work counts stay bitwise serial-identical for any thread count.
  support::ProfileScratch prof_;
  // Outer-binding counter driving the sampling gate (every
  // kProfileSampleEvery-th outer binding opens a timing bracket).
  long long prof_outer_ = 0;
  // Optional per-run delta capture target (set_flush_capture); filled by
  // flush() before it books, then left installed for the next run.
  FlushDelta* capture_ = nullptr;

  friend class ParallelRunner;
};

/// Runs a LinkedPlan across the shared thread pool by chunking the
/// outermost enumerate level: a deterministic chunk grid over the outer
/// cursor range, pulled guided-style by `threads` workers, each with its
/// own LinkedRunner (scratch, counters, fan-out shards, trace buffer).
/// Shards merge once per run into the same registry objects the serial
/// engine feeds, so executor.* deltas, fan-out histograms and per-level
/// stats are EXACTLY the serial engine's, for any thread count.
///
/// When the plan is not parallelizable (see plan_parallel_legality) or
/// threads <= 1 every run delegates to a single serial LinkedRunner —
/// same results, no pool involvement. Callers of run(Action) must pass an
/// action that is safe to invoke concurrently for distinct outer
/// bindings; run(LinkedMac) is safe whenever the plan is parallel-legal
/// (disjoint output rows).
class ParallelRunner {
 public:
  ParallelRunner(LinkedPlan lp, int threads);

  const LinkedPlan& linked() const { return workers_.front()->linked(); }
  int threads() const { return threads_; }
  /// True when runs actually fan out (legal plan and threads > 1).
  bool parallel() const { return parallel_; }

  void run(const Action& action, RunStats* stats = nullptr);
  void run(const LinkedMac& mac, RunStats* stats = nullptr);

 private:
  template <class MakeSink>
  void run_parallel(MakeSink&& make_sink, RunStats* stats);

  int threads_ = 1;
  bool parallel_ = false;
  // workers_[0] doubles as the serial fallback runner.
  std::vector<std::unique_ptr<LinkedRunner>> workers_;
};

/// One-shot parallel execution of a (Plan, Query) pair — links, runs the
/// action across `threads` workers (serial fallback applies), discards
/// the program. Repeated runs should hold a ParallelRunner instead.
void execute_parallel(const Plan& plan, const relation::Query& q,
                      const Action& action, int threads);

}  // namespace bernoulli::compiler
