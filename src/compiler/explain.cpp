#include "compiler/explain.hpp"

#include <cstdio>
#include <sstream>

#include "compiler/link.hpp"
#include "compiler/specialize.hpp"
#include "support/json_writer.hpp"

namespace bernoulli::compiler {

using relation::Query;
using relation::SearchCost;

namespace {

const char* search_cost_text(SearchCost c) {
  switch (c) {
    case SearchCost::kConstant: return "O(1)";
    case SearchCost::kLog: return "O(log n)";
    case SearchCost::kLinear: return "O(n)";
  }
  return "?";
}

const char* search_cost_json(SearchCost c) {
  switch (c) {
    case SearchCost::kConstant: return "const";
    case SearchCost::kLog: return "log";
    case SearchCost::kLinear: return "linear";
  }
  return "?";
}

const char* method_name(JoinMethod m) {
  return m == JoinMethod::kMerge ? "merge" : "enumerate";
}

// %.6g keeps estimates readable (they are products of expected sizes, not
// precise quantities) and stable across platforms.
std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

struct AccessInfo {
  const relation::BoundRelation* rel;
  const relation::IndexLevel* level;
  std::string var;
};

AccessInfo access_info(const Query& q, const Access& a) {
  const auto& rel = q.relations[static_cast<std::size_t>(a.rel)];
  return {&rel, &rel.view->level(a.depth),
          rel.vars[static_cast<std::size_t>(a.depth)]};
}

// One text line for an access:
//   A[0] binds i  (sorted, search O(log n), E[n]=5.2, filters)
std::string access_text(const Query& q, const Access& a) {
  AccessInfo info = access_info(q, a);
  const auto props = info.level->properties();
  std::ostringstream os;
  os << info.rel->view->name() << "[" << a.depth << "] binds " << info.var
     << "  (";
  if (props.dense) os << "dense, ";
  if (props.sorted) os << "sorted, ";
  os << "search " << search_cost_text(props.search_cost) << ", E[n]="
     << num(info.level->expected_size());
  if (info.rel->filters) os << ", filters";
  if (info.rel->writes) os << ", writes";
  if (info.rel->order_free) os << ", order-free";
  os << ")";
  return os.str();
}

void access_json(support::JsonWriter& w, const Query& q, const Access& a) {
  AccessInfo info = access_info(q, a);
  const auto props = info.level->properties();
  w.begin_object();
  w.key("relation").value(info.rel->view->name());
  w.key("rel").value(static_cast<long long>(a.rel));
  w.key("depth").value(static_cast<long long>(a.depth));
  w.key("var").value(info.var);
  w.key("sorted").value(props.sorted);
  w.key("dense").value(props.dense);
  w.key("search").value(search_cost_json(props.search_cost));
  w.key("expected_size").value(info.level->expected_size());
  w.key("filters").value(info.rel->filters);
  w.key("writes").value(info.rel->writes);
  w.end_object();
}

}  // namespace

std::string explain(const Plan& plan, const Query& q) {
  std::ostringstream os;
  os << "plan: " << plan.levels.size() << " level"
     << (plan.levels.size() == 1 ? "" : "s") << ", est. total cost "
     << num(plan.total_cost) << "\n";
  for (const auto& level : plan.levels) {
    os << "for " << level.var << ": " << method_name(level.method);
    if (level.method == JoinMethod::kMerge)
      os << "-join of " << level.drivers.size();
    os << "\n";
    for (const auto& d : level.drivers)
      os << "  driver " << access_text(q, d) << "\n";
    for (const auto& p : level.probes)
      os << "  probe  " << access_text(q, p) << "\n";
    os << "  est " << num(level.est_iterations) << " binding"
       << (level.est_iterations == 1.0 ? "" : "s") << ", cost "
       << num(level.est_cost) << " per outer iteration\n";
  }
  const ParallelLegality leg = plan_parallel_legality(plan, q);
  os << "parallel: " << (leg.ok ? "" : "serial fallback — ") << leg.note
     << "\n";
  const SpecializeLegality spec = plan_specialize_legality(plan, q);
  os << "specialize: " << (spec.ok ? "" : "linked fallback — ") << spec.note
     << "\n";
  // Per-level storage descriptors of the driving access methods — the
  // shapes the cursor lowering switches on (blocked 4x4, sliced C=8 ...).
  for (std::size_t d = 0; d < plan.levels.size(); ++d) {
    const Access& a = plan.levels[d].drivers[0];
    const auto& rel = q.relations[static_cast<std::size_t>(a.rel)];
    os << "level " << d << ": "
       << relation::descriptor_text(rel.view->level(a.depth).describe())
       << "\n";
  }
  return os.str();
}

std::string explain_json(const Plan& plan, const Query& q, int indent) {
  support::JsonWriter w(indent);
  w.begin_object();
  w.key("schema").value("bernoulli.explain.v1");
  w.key("total_cost").value(plan.total_cost);
  w.key("levels").begin_array();
  for (const auto& level : plan.levels) {
    w.begin_object();
    w.key("var").value(level.var);
    w.key("method").value(method_name(level.method));
    w.key("est_iterations").value(level.est_iterations);
    w.key("est_cost").value(level.est_cost);
    w.key("drivers").begin_array();
    for (const auto& d : level.drivers) access_json(w, q, d);
    w.end_array();
    w.key("probes").begin_array();
    for (const auto& p : level.probes) access_json(w, q, p);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  const ParallelLegality leg = plan_parallel_legality(plan, q);
  w.key("parallel").begin_object();
  w.key("ok").value(leg.ok);
  w.key("note").value(leg.note);
  w.end_object();
  const SpecializeLegality spec = plan_specialize_legality(plan, q);
  w.key("specialize").begin_object();
  w.key("ok").value(spec.ok);
  w.key("note").value(spec.note);
  w.end_object();
  w.key("descriptors").begin_array();
  for (const auto& level : plan.levels) {
    const Access& a = level.drivers[0];
    const auto& rel = q.relations[static_cast<std::size_t>(a.rel)];
    w.value(
        relation::descriptor_text(rel.view->level(a.depth).describe()));
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace bernoulli::compiler
