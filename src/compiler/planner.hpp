// The query planner (paper §2, and [14] "A relational approach to sparse
// matrix compilation").
//
// Given a query, the planner explores loop-variable orders, and for each
// order decides per level which relation drives (enumeration), whether
// sorted filtering relations should be merge-joined, and which relations
// are probed via their search methods. A cost model built purely from the
// access-method *properties* (expected sizes, sortedness, search cost)
// ranks the alternatives — the planner never looks at the underlying
// arrays, which is what keeps the format set open.
#pragma once

#include <optional>

#include "compiler/plan.hpp"

namespace bernoulli::compiler {

struct PlannerOptions {
  /// When false the planner never emits merge joins (ablation knob used by
  /// bench_ablation_joins).
  bool allow_merge = true;

  /// When set, only this variable order is considered (useful in tests).
  std::optional<std::vector<std::string>> force_order;
};

/// Builds the cheapest feasible plan. Throws when no variable order is
/// feasible (cannot happen for queries that include an iteration-space
/// relation, which is order-free).
Plan plan_query(const relation::Query& q, const PlannerOptions& opts = {});

/// Plans one specific variable order; nullopt when infeasible.
std::optional<Plan> plan_order(const relation::Query& q,
                               const std::vector<std::string>& order,
                               bool allow_merge);

}  // namespace bernoulli::compiler
