// EXPLAIN for execution plans (the observability layer's front door).
//
// Renders what the planner decided and why: the chosen join order, the
// join algorithm at every level, each access with the access-method
// PROPERTIES the cost model consumed (sortedness, denseness, search-cost
// class, expected size), and the per-level cardinality/cost estimates.
// Two forms:
//   - explain():      an indented text tree for humans (quickstart,
//                     docs/ARCHITECTURE.md transcripts);
//   - explain_json(): a machine-readable document for reports and
//                     regression tests (schema "bernoulli.explain.v1",
//                     locked by tests/explain_test.cpp).
//
// The estimates printed here are exactly Plan::est_iterations/est_cost —
// EXPLAIN never recomputes costs, so what it shows is what the planner
// ranked. Pair with support/counters.hpp snapshots to compare estimates
// against measured probe/merge/tuple counts.
#pragma once

#include <string>

#include "compiler/plan.hpp"

namespace bernoulli::compiler {

/// Human-readable plan tree. One block per level, outermost first.
std::string explain(const Plan& plan, const relation::Query& q);

/// JSON rendering of the same information. `indent` > 0 pretty-prints.
std::string explain_json(const Plan& plan, const relation::Query& q,
                         int indent = 0);

}  // namespace bernoulli::compiler
