#include "compiler/executor.hpp"

#include <algorithm>
#include <chrono>
#include <optional>

#include "support/counters.hpp"
#include "support/error.hpp"
#include "support/histogram.hpp"
#include "support/json_writer.hpp"
#include "support/metrics.hpp"
#include "support/profile.hpp"
#include "support/trace.hpp"

namespace bernoulli::compiler {

using relation::Query;

namespace {

// Interpreter event counters (support/counters.hpp). Registered once;
// per-event cost is a relaxed atomic add. The linked engine
// (exec_linked.cpp) resolves the same names, so both feed one ledger.
struct ExecCounters {
  support::Counter& runs = support::counter("executor.runs");
  support::Counter& tuples = support::counter("executor.tuples");
  support::Counter& enumerated = support::counter("executor.enumerated");
  support::Counter& merge_steps = support::counter("executor.merge_steps");
  support::Counter& probe_hits = support::counter("executor.probe_hits");
  support::Counter& probe_misses = support::counter("executor.probe_misses");
  support::Counter& fill_ins = support::counter("executor.fill_ins");
  support::Counter& merge_segment_bytes =
      support::counter("executor.merge_segment_bytes");
};

ExecCounters& exec_counters() {
  static ExecCounters c;
  return c;
}

class Interpreter {
 public:
  Interpreter(const Plan& plan, const Query& q, const Action& action)
      : plan_(plan), q_(q), action_(action) {
    var_value_.assign(q.vars.size(), -1);
    pos_.resize(q.relations.size());
    for (std::size_t r = 0; r < q.relations.size(); ++r)
      pos_[r].assign(q.relations[r].vars.size(), -1);
    // Per-level fan-out histograms (bindings produced per invocation of a
    // join level) — one registry lookup per run, one atomic add per level
    // invocation in the hot loop.
    fanout_.reserve(plan.levels.size());
    for (std::size_t d = 0; d < plan.levels.size(); ++d)
      fanout_.push_back(&support::histogram("executor.fanout.level" +
                                            std::to_string(d)));
    produced_.assign(plan.levels.size(), 0);
    enumerated_.assign(plan.levels.size(), 0);
    // Name resolution happens here, once per run — not in the data loop.
    // (var_slot used to run a linear string scan per probe per tuple.)
    level_slot_.reserve(plan.levels.size());
    probe_slots_.resize(plan.levels.size());
    for (std::size_t d = 0; d < plan.levels.size(); ++d) {
      const PlanLevel& lv = plan.levels[d];
      level_slot_.push_back(var_slot(lv.var));
      probe_slots_[d].reserve(lv.probes.size());
      for (const Access& a : lv.probes) {
        const auto& rel = q.relations[static_cast<std::size_t>(a.rel)];
        probe_slots_[d].push_back(
            var_slot(rel.vars[static_cast<std::size_t>(a.depth)]));
      }
    }
    // Merge scratch is per plan depth (merge levels can nest, so one shared
    // buffer would be clobbered by recursion) and owned by the interpreter:
    // segments keep their capacity across invocations instead of
    // reallocating per call.
    merge_scratch_.resize(plan.levels.size());
    prof_on_ = support::profiling_enabled();
    if (prof_on_) {
      prof_.levels = static_cast<int>(
          std::min(plan.levels.size(),
                   static_cast<std::size_t>(support::kProfileMaxLevels)));
      prof_clock_.begin(&prof_);
      prof_kind_.reserve(plan.levels.size());
      for (const PlanLevel& lv : plan.levels)
        prof_kind_.push_back(lv.method == JoinMethod::kMerge
                                 ? support::kProfMerge
                                 : support::kProfTuple);
    }
  }

  void run() { level(0); }

  long long tuples() const { return tuples_; }
  const support::ProfileScratch& profile_scratch() const { return prof_; }
  long long produced(std::size_t d) const {
    return produced_[d];
  }
  long long enumerated(std::size_t d) const {
    return enumerated_[d];
  }

 private:
  index_t parent_pos(const Access& a) const {
    return a.depth == 0
               ? 0
               : pos_[static_cast<std::size_t>(a.rel)]
                     [static_cast<std::size_t>(a.depth) - 1];
  }

  const relation::IndexLevel& level_of(const Access& a) const {
    return q_.relations[static_cast<std::size_t>(a.rel)].view->level(a.depth);
  }

  std::size_t var_slot(const std::string& v) const {
    auto it = std::find(q_.vars.begin(), q_.vars.end(), v);
    BERNOULLI_CHECK(it != q_.vars.end());
    return static_cast<std::size_t>(it - q_.vars.begin());
  }

  void set_pos(const Access& a, index_t p) {
    pos_[static_cast<std::size_t>(a.rel)][static_cast<std::size_t>(a.depth)] =
        p;
  }

  // Resolves the probes of plan level d once its variable is bound; returns
  // false when a filtering probe misses (iteration rejected). A missed
  // probe of a WRITTEN relation with an insertable level creates the entry
  // instead — sparse-output fill-in.
  bool resolve_probes(std::size_t d, const PlanLevel& lv) {
    ExecCounters& ctr = exec_counters();
    for (std::size_t i = 0; i < lv.probes.size(); ++i) {
      const Access& a = lv.probes[i];
      const auto& rel = q_.relations[static_cast<std::size_t>(a.rel)];
      index_t idx = var_value_[probe_slots_[d][i]];
      const relation::IndexLevel& lvl = level_of(a);
      index_t p = lvl.search(parent_pos(a), idx);
      if (p < 0) {
        ctr.probe_misses.add();
        if (rel.filters) return false;
        if (rel.writes && lvl.insertable()) {
          ctr.fill_ins.add();
          // const_cast is confined to here: insertion is the one mutating
          // access-method operation, and only output relations reach it.
          p = const_cast<relation::IndexLevel&>(lvl).insert(parent_pos(a),
                                                            idx);
        } else {
          BERNOULLI_CHECK_MSG(false,
                              rel.view->name()
                                  << " missed a non-filtering probe at "
                                  << rel.vars[static_cast<std::size_t>(a.depth)]
                                  << " = " << idx);
        }
      } else {
        ctr.probe_hits.add();
      }
      set_pos(a, p);
    }
    return true;
  }

  void level(std::size_t d) {
    ExecCounters& ctr = exec_counters();
    if (d == plan_.levels.size()) {
      ctr.tuples.add();
      ++tuples_;
      Env env{var_value_, leaf_positions()};
      action_(env);
      return;
    }
    const PlanLevel& lv = plan_.levels[d];
    const std::size_t slot = level_slot_[d];
    // Sampled switch-clock (support/profile.hpp): every K-th level-1
    // invocation — one per outer binding — opens a bracket; within it the
    // recursion books one segment per level transition. A bracket stays
    // open past its level-1 invocation so the trailing segment (the outer
    // level's enumeration work up to the next binding) is booked to
    // level 0 when the next level-1 invocation arrives.
    bool prof_opened = false;
    if (prof_on_) {
      if (d == 1) {
        if (prof_clock_.active()) {
          prof_clock_.leave(0, prof_kind_[0], 1);
          prof_clock_.close();
        }
        prof_opened = prof_clock_.maybe_open();
      } else if (d > 1 && prof_clock_.active()) {
        prof_clock_.enter(static_cast<int>(d), prof_kind_[d - 1]);
      }
    }
    // Bindings this invocation enumerated / passed on — one fan-out
    // histogram sample per invocation, per-level totals for the trace.
    long long inv_enumerated = 0;
    long long inv_produced = 0;

    if (lv.method == JoinMethod::kEnumerate) {
      const Access& drv = lv.drivers[0];
      level_of(drv).enumerate(parent_pos(drv), [&](index_t idx, index_t p) {
        ctr.enumerated.add();
        ++inv_enumerated;
        var_value_[slot] = idx;
        set_pos(drv, p);
        if (resolve_probes(d, lv)) {
          ++inv_produced;
          level(d + 1);
        }
        return true;
      });
    } else {
      // Multi-way merge join: materialize each driver's sorted segment and
      // intersect with a k-finger sweep. Segment buffers live in the
      // per-depth scratch, cleared (capacity kept) per invocation.
      const std::size_t k = lv.drivers.size();
      auto& segments_ = merge_scratch_[d];
      segments_.resize(k);
      long long seg_bytes = 0;
      for (std::size_t s = 0; s < k; ++s) {
        segments_[s].clear();
        level_of(lv.drivers[s])
            .enumerate(parent_pos(lv.drivers[s]),
                       [&](index_t idx, index_t p) {
                         ctr.enumerated.add();
                         ++inv_enumerated;
                         segments_[s].emplace_back(idx, p);
                         return true;
                       });
        seg_bytes += static_cast<long long>(segments_[s].size()) *
                     static_cast<long long>(sizeof(segments_[s][0]));
      }
      ctr.merge_segment_bytes.add(seg_bytes);
      std::vector<std::size_t> finger(k, 0);
      while (true) {
        ctr.merge_steps.add();
        bool done = false;
        index_t target = -1;
        for (std::size_t s = 0; s < k; ++s) {
          if (finger[s] >= segments_[s].size()) {
            done = true;
            break;
          }
          target = std::max(target, segments_[s][finger[s]].first);
        }
        if (done) break;
        bool all_match = true;
        for (std::size_t s = 0; s < k; ++s) {
          while (finger[s] < segments_[s].size() &&
                 segments_[s][finger[s]].first < target)
            ++finger[s];
          if (finger[s] >= segments_[s].size()) {
            all_match = false;
            done = true;
            break;
          }
          if (segments_[s][finger[s]].first != target) all_match = false;
        }
        if (done) break;
        if (all_match) {
          var_value_[slot] = target;
          for (std::size_t s = 0; s < k; ++s)
            set_pos(lv.drivers[s], segments_[s][finger[s]].second);
          if (resolve_probes(d, lv)) {
            ++inv_produced;
            level(d + 1);
          }
          for (std::size_t s = 0; s < k; ++s) ++finger[s];
        }
      }
    }
    fanout_[d]->add(inv_produced);
    produced_[d] += inv_produced;
    enumerated_[d] += inv_enumerated;
    if (prof_on_) {
      prof_.add_work(static_cast<int>(d), prof_kind_[d], inv_produced);
      if (prof_opened) {
        // d == 1 here; the bracket stays open for the trailing level-0
        // segment (closed at the next outer binding, dropped at run end).
        prof_clock_.leave(1, prof_kind_[d], inv_produced);
      } else if (d > 1 && prof_clock_.active()) {
        prof_clock_.leave(static_cast<int>(d), prof_kind_[d], inv_produced);
      }
    }
  }

  std::vector<index_t> leaf_buffer_;
  std::span<const index_t> leaf_positions() {
    leaf_buffer_.resize(q_.relations.size());
    for (std::size_t r = 0; r < q_.relations.size(); ++r)
      leaf_buffer_[r] = pos_[r].back();
    return leaf_buffer_;
  }

  const Plan& plan_;
  const Query& q_;
  const Action& action_;
  std::vector<index_t> var_value_;
  std::vector<std::vector<index_t>> pos_;
  std::vector<support::Log2Histogram*> fanout_;  // one per plan level
  std::vector<long long> produced_;
  std::vector<long long> enumerated_;
  std::vector<std::size_t> level_slot_;              // var slot per level
  std::vector<std::vector<std::size_t>> probe_slots_;  // per level, per probe
  std::vector<std::vector<std::vector<std::pair<index_t, index_t>>>>
      merge_scratch_;  // per depth, per driver
  long long tuples_ = 0;
  support::ProfileScratch prof_;   // per-level attribution, flushed per run
  support::ProfileClock prof_clock_;
  std::vector<int> prof_kind_;     // tuple/merge kind per plan level
  bool prof_on_ = false;
};

}  // namespace

namespace detail {

void emit_join_spans(const Plan& plan, const RunStats& stats, double t0,
                     double t1) {
  // One nested span per join level, carrying the tuple counts the run
  // actually saw. Both engines interleave levels (recursion / explicit
  // stack), so a level has no contiguous real interval; each span is drawn
  // over the whole execute window, shrunk by depth so the viewer nests
  // them.
  const support::TraceTrack track = support::trace_track();
  const double width = t1 - t0;
  const double step = width / (2.0 * static_cast<double>(plan.levels.size()) +
                               2.0);
  for (std::size_t d = 0; d < plan.levels.size(); ++d) {
    const PlanLevel& lv = plan.levels[d];
    support::JsonWriter args;
    args.begin_object();
    args.key("var").value(lv.var);
    args.key("method").value(lv.method == JoinMethod::kMerge ? "merge"
                                                             : "enumerate");
    args.key("enumerated").value(stats.levels[d].enumerated);
    args.key("produced").value(stats.levels[d].produced);
    args.end_object();
    const double inset = step * static_cast<double>(d + 1);
    support::trace_emit_complete("join " + lv.var, "compiler", t0 + inset,
                                 std::max(width - 2.0 * inset, 0.0),
                                 track.pid, track.tid, args.str());
  }
}

}  // namespace detail

void execute_interpreted(const Plan& plan, const Query& q,
                         const Action& action, RunStats* stats) {
  q.validate();
  exec_counters().runs.add();
  const auto wall_t0 = std::chrono::steady_clock::now();
  Interpreter interp(plan, q, action);
  const bool tracing = support::trace_enabled();
  double t0 = 0.0;
  std::optional<support::TraceSpan> span;
  if (tracing) {
    span.emplace("execute", "compiler");
    t0 = support::trace_now_us();
  }
  interp.run();
  // Serving metrics, one sample per run at the same site as executor.runs
  // (same names as the linked/specialized engines' flush, so the latency
  // histogram count reconciles with the runs counter for any engine).
  const long long wall_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_t0)
          .count();
  {
    // One atomic group under the observability commit lock: a concurrent
    // snapshot must not see the latency sample without the wall_ns delta.
    const std::unique_lock<std::mutex> commit =
        support::metrics_commit_lock();
    support::metric_latency("execute.latency").record_ns(wall_ns);
    support::metric_rate("execute.wall_ns").add(wall_ns);
    support::time_counter("executor.wall_seconds")
        .add(static_cast<double>(wall_ns) * 1e-9);
    support::profile_flush(interp.profile_scratch(), wall_ns);
  }
  RunStats local;
  RunStats* st = (stats || tracing) ? (stats ? stats : &local) : nullptr;
  if (st) {
    st->tuples = interp.tuples();
    st->levels.assign(plan.levels.size(), LevelRunStats{});
    for (std::size_t d = 0; d < plan.levels.size(); ++d) {
      st->levels[d].enumerated = interp.enumerated(d);
      st->levels[d].produced = interp.produced(d);
    }
  }
  if (tracing) {
    const double t1 = support::trace_now_us();
    detail::emit_join_spans(plan, *st, t0, t1);
  }
}

Action multiply_accumulate(const Query& q, index_t target_rel,
                           std::vector<index_t> factor_rels, value_t scale) {
  BERNOULLI_CHECK(target_rel >= 0 &&
                  target_rel < static_cast<index_t>(q.relations.size()));
  relation::RelationView* target =
      q.relations[static_cast<std::size_t>(target_rel)].view;
  BERNOULLI_CHECK(target->writable());
  std::vector<relation::RelationView*> factors;
  for (index_t f : factor_rels) {
    BERNOULLI_CHECK(f >= 0 && f < static_cast<index_t>(q.relations.size()));
    factors.push_back(q.relations[static_cast<std::size_t>(f)].view);
  }
  std::vector<std::size_t> factor_slots(factor_rels.begin(), factor_rels.end());
  return [target, target_slot = static_cast<std::size_t>(target_rel), factors,
          factor_slots, scale](const Env& env) {
    value_t prod = scale;
    for (std::size_t k = 0; k < factors.size(); ++k)
      prod *= factors[k]->value_at(env.leaf_pos[factor_slots[k]]);
    target->value_add(env.leaf_pos[target_slot], prod);
  };
}

}  // namespace bernoulli::compiler
