#include "compiler/loopnest.hpp"

#include <algorithm>

#include "compiler/explain.hpp"
#include "relation/array_views.hpp"
#include "relation/bsr_view.hpp"
#include "relation/ell_view.hpp"
#include "relation/sell_view.hpp"
#include "relation/sparse_vector_view.hpp"
#include "support/error.hpp"

namespace bernoulli::compiler {

using relation::BoundRelation;
using relation::Query;

void Bindings::bind_csr(const std::string& name, const formats::Csr& m) {
  owned_.push_back(std::make_unique<relation::CsrView>(name, m));
  entries_[name] = {owned_.back().get(), {0, 1}, /*sparse=*/true};
}

void Bindings::bind_ccs(const std::string& name, const formats::Ccs& m) {
  owned_.push_back(std::make_unique<relation::CcsView>(name, m));
  // CCS binds the column first: hierarchy level 0 is reference position 1.
  entries_[name] = {owned_.back().get(), {1, 0}, /*sparse=*/true};
}

void Bindings::bind_coo(const std::string& name, const formats::Coo& m) {
  owned_.push_back(std::make_unique<relation::CooView>(name, m));
  entries_[name] = {owned_.back().get(), {0, 1}, /*sparse=*/true};
}

void Bindings::bind_ell(const std::string& name, const formats::Ell& m) {
  owned_.push_back(std::make_unique<relation::EllView>(name, m));
  entries_[name] = {owned_.back().get(), {0, 1}, /*sparse=*/true};
}

void Bindings::bind_bsr(const std::string& name, const formats::Bsr& m) {
  owned_.push_back(std::make_unique<relation::BsrView>(name, m));
  entries_[name] = {owned_.back().get(), {0, 1}, /*sparse=*/true};
}

void Bindings::bind_sell(const std::string& name, const formats::Sell& m) {
  owned_.push_back(std::make_unique<relation::SellView>(name, m));
  entries_[name] = {owned_.back().get(), {0, 1}, /*sparse=*/true};
}

void Bindings::bind_dense_matrix(const std::string& name, formats::Dense& m) {
  owned_.push_back(std::make_unique<relation::DenseMatrixView>(name, m));
  entries_[name] = {owned_.back().get(), {0, 1}, /*sparse=*/false};
}

void Bindings::bind_dense_vector(const std::string& name, VectorView v) {
  owned_.push_back(std::make_unique<relation::DenseVectorView>(name, v));
  entries_[name] = {owned_.back().get(), {0}, /*sparse=*/false};
}

void Bindings::bind_dense_vector(const std::string& name, ConstVectorView v) {
  owned_.push_back(std::make_unique<relation::DenseVectorView>(name, v));
  entries_[name] = {owned_.back().get(), {0}, /*sparse=*/false};
}

void Bindings::bind_sparse_vector(const std::string& name,
                                  const formats::SparseVector& v) {
  owned_.push_back(std::make_unique<relation::SparseVectorView>(name, v));
  entries_[name] = {owned_.back().get(), {0}, /*sparse=*/true};
}

void Bindings::bind_view(const std::string& name, relation::RelationView* view,
                         std::vector<index_t> level_to_ref, bool sparse) {
  BERNOULLI_CHECK(view != nullptr);
  entries_[name] = {view, std::move(level_to_ref), sparse};
}

const Bindings::Entry& Bindings::lookup(const std::string& name) const {
  auto it = entries_.find(name);
  BERNOULLI_CHECK_MSG(it != entries_.end(), "array " << name << " is unbound");
  return it->second;
}

namespace {

// Adds one array reference to the query; returns its relation slot.
index_t add_relation(Query& q, const Bindings& bindings, const ArrayRef& ref,
                     bool writes, bool filters) {
  const auto& entry = bindings.lookup(ref.array);
  BERNOULLI_CHECK_MSG(
      entry.level_to_ref.size() == ref.vars.size(),
      ref.array << " referenced with " << ref.vars.size()
                << " subscripts but bound with "
                << entry.level_to_ref.size());
  BoundRelation rel;
  rel.view = entry.view;
  rel.vars.resize(ref.vars.size());
  for (std::size_t d = 0; d < ref.vars.size(); ++d)
    rel.vars[d] = ref.vars[static_cast<std::size_t>(entry.level_to_ref[d])];
  rel.filters = filters;
  rel.writes = writes;
  q.relations.push_back(std::move(rel));
  return static_cast<index_t>(q.relations.size()) - 1;
}

}  // namespace

CompiledKernel compile(const LoopNest& nest, const Bindings& bindings,
                       const PlannerOptions& opts) {
  BERNOULLI_CHECK_MSG(!nest.loops.empty(), "loop nest has no loops");
  BERNOULLI_CHECK_MSG(!nest.body.factors.empty(),
                      "statement has no factors");

  CompiledKernel kernel;
  Query& q = kernel.query_;
  for (const auto& loop : nest.loops) q.vars.push_back(loop.var);

  // The iteration-space relation I(i, j, ...) carries the loop bounds and
  // is order-free (its levels are an unconstrained cross product).
  {
    std::vector<index_t> extents;
    for (const auto& loop : nest.loops) extents.push_back(loop.extent);
    kernel.interval_ =
        std::make_unique<relation::IntervalView>("I", std::move(extents));
    BoundRelation rel;
    rel.view = kernel.interval_.get();
    rel.vars = q.vars;
    rel.filters = true;  // loop bounds always constrain
    rel.order_free = true;
    q.relations.push_back(std::move(rel));
  }

  // Sparsity predicate (paper Eq. 3, computed with Bik & Wijshoff's rule):
  // a sparse array in a multiplicative position annihilates the update, so
  // it filters; the accumulation target never filters.
  kernel.stmt_.target_rel = add_relation(q, bindings, nest.body.target,
                                         /*writes=*/true, /*filters=*/false);
  kernel.stmt_.scale = nest.body.scale;
  for (const auto& f : nest.body.factors) {
    bool sparse = bindings.lookup(f.array).sparse;
    kernel.stmt_.factor_rels.push_back(
        add_relation(q, bindings, f, /*writes=*/false, /*filters=*/sparse));
  }

  kernel.plan_ = plan_query(q, opts);
  return kernel;
}

std::shared_ptr<CompiledKernel::LinkedProgram> CompiledKernel::build_program()
    const {
  return std::make_shared<LinkedProgram>(
      LinkedRunner(link_plan(plan_, query_)),
      link_mac(query_, stmt_.target_rel, stmt_.factor_rels, stmt_.scale));
}

void CompiledKernel::relink() const {
  // Build outside the lock (linking is the expensive part), publish under
  // it — linked_ is read concurrently by copies and runs.
  std::shared_ptr<LinkedProgram> built = build_program();
  std::lock_guard<std::mutex> lk(link_mu_);
  linked_ = std::move(built);
}

void CompiledKernel::relink_noexcept() const noexcept {
  try {
    relink();
  } catch (...) {
    reset_linked();
  }
}

void CompiledKernel::check_idle(const char* what) const {
  BERNOULLI_CHECK_MSG(
      active_runs_.load(std::memory_order_acquire) == 0,
      "CompiledKernel " << what << " while a run() is in flight; the "
      "linked program borrows this kernel's plan/query storage");
}

void CompiledKernel::run() const {
  std::shared_ptr<LinkedProgram> sp = linked_snapshot();
  if (!sp) {
    std::shared_ptr<LinkedProgram> built = build_program();
    std::lock_guard<std::mutex> lk(link_mu_);
    if (!linked_) linked_ = std::move(built);
    sp = linked_;
  }
  active_runs_.fetch_add(1, std::memory_order_acq_rel);
  // Claim the cached program; a contended second run gets a private
  // one-shot program instead of racing on the shared runner scratch.
  const bool claimed = !sp->in_use.exchange(true, std::memory_order_acquire);
  if (!claimed) sp = build_program();
  try {
    sp->runner.run(sp->mac);
  } catch (...) {
    if (claimed) sp->in_use.store(false, std::memory_order_release);
    active_runs_.fetch_sub(1, std::memory_order_acq_rel);
    throw;
  }
  if (claimed) sp->in_use.store(false, std::memory_order_release);
  active_runs_.fetch_sub(1, std::memory_order_acq_rel);
}

std::string CompiledKernel::emit(const std::string& function_name) const {
  return emit_c(plan_, query_, stmt_, function_name);
}

std::string CompiledKernel::describe_plan() const {
  return plan_.describe(query_);
}

std::string CompiledKernel::explain() const {
  return compiler::explain(plan_, query_);
}

std::string CompiledKernel::explain_json(int indent) const {
  return compiler::explain_json(plan_, query_, indent);
}

}  // namespace bernoulli::compiler
