// The linked cursor executor: runs a LinkedPlan with an explicit level
// stack, pull-style cursors and batched observability.
//
// Engine contract (enforced by tests/exec_linked_test.cpp): for any
// (Plan, Query) the interpreter accepts, this engine produces bitwise-
// identical results, identical executor.* counter deltas and identical
// per-level enumerated/produced totals. The differences are purely
// mechanical:
//   - iteration pulls through flat Cursors (one virtual begin_cursor per
//     level invocation) instead of pushing through EnumFn std::functions
//     (one virtual dispatch + one std::function call per element);
//   - probes run lowered SearchSpecs (inline bounds checks / binary
//     searches over raw arrays) instead of virtual search calls;
//   - the merge join streams its drivers with a k-finger sweep over live
//     cursors instead of materializing every segment first — same step
//     count, same enumerated totals (unconsumed elements are accounted at
//     frame close; every cursor knows its extent), no allocation;
//   - counters and fan-out histograms accumulate in plain locals and
//     flush once per run instead of one relaxed-atomic add per event.
//
// ParallelRunner (bottom of this file) workshares the outermost
// enumerate level across the shared thread pool when the link-time
// legality check passed (LinkedPlan::parallel_ok): a deterministic chunk
// grid over the outer cursor range, per-worker runners with private
// scratch and counter/fan-out shards, merged and flushed once per run so
// observability stays exact — same executor.* deltas, same histogram
// samples, same trace span totals as a serial run, for any thread count.
#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "compiler/link.hpp"
#include "support/counters.hpp"
#include "support/error.hpp"
#include "support/histogram.hpp"
#include "support/json_writer.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace bernoulli::compiler {

namespace {

// Same registry names as the interpreter (executor.cpp) — by-name lookup
// yields the same Counter objects, so the two engines feed one ledger.
struct LinkedCounters {
  support::Counter& runs = support::counter("executor.runs");
  support::Counter& tuples = support::counter("executor.tuples");
  support::Counter& enumerated = support::counter("executor.enumerated");
  support::Counter& merge_steps = support::counter("executor.merge_steps");
  support::Counter& probe_hits = support::counter("executor.probe_hits");
  support::Counter& probe_misses = support::counter("executor.probe_misses");
  support::Counter& fill_ins = support::counter("executor.fill_ins");
  support::Counter& merge_segment_bytes =
      support::counter("executor.merge_segment_bytes");
};

LinkedCounters& linked_counters() {
  static LinkedCounters c;
  return c;
}

index_t bin_search(const index_t* ind, index_t lo, index_t hi, index_t idx) {
  const index_t* first = ind + lo;
  const index_t* last = ind + hi;
  const index_t* it = std::lower_bound(first, last, idx);
  if (it != last && *it == idx) return static_cast<index_t>(it - ind);
  return -1;
}

}  // namespace

bool LinkedRunner::resolve_probes(const LinkedLevel& lv, LocalCounters& c) {
  for (const LinkedProbe& pr : lv.probes) {
    const index_t idx = vars_[static_cast<std::size_t>(pr.var_slot)];
    const index_t parent =
        pr.access.parent_slot < 0
            ? 0
            : pos_[static_cast<std::size_t>(pr.access.parent_slot)];
    index_t p = -1;
    const relation::SearchSpec& s = pr.search;
    switch (s.kind) {
      case relation::SearchSpec::Kind::kIdentity:
        p = (idx >= 0 && idx < s.extent) ? idx : -1;
        break;
      case relation::SearchSpec::Kind::kAffine:
        p = (idx >= 0 && idx < s.extent) ? parent * s.stride + idx : -1;
        break;
      case relation::SearchSpec::Kind::kSegmentBinary:
        p = bin_search(s.ind, s.ptr[parent], s.ptr[parent + 1], idx);
        break;
      case relation::SearchSpec::Kind::kListBinary:
        p = bin_search(s.ind, 0, s.extent, idx);
        break;
      case relation::SearchSpec::Kind::kFunction:
        p = s.map[parent] == idx ? parent : -1;
        break;
      case relation::SearchSpec::Kind::kVirtual:
        p = pr.access.level->search(parent, idx);
        break;
    }
    if (p < 0) {
      ++c.probe_misses;
      if (pr.filters) return false;
      if (pr.insert_on_miss) {
        ++c.fill_ins;
        // Same confinement as the interpreter: insertion is the one
        // mutating access-method operation, reached only by outputs.
        p = const_cast<relation::IndexLevel&>(*pr.access.level)
                .insert(parent, idx);
      } else {
        const auto& rel =
            lp_.query->relations[static_cast<std::size_t>(pr.access.rel)];
        BERNOULLI_CHECK_MSG(
            false, rel.view->name()
                       << " missed a non-filtering probe at "
                       << rel.vars[static_cast<std::size_t>(pr.access.depth)]
                       << " = " << idx);
      }
    } else {
      ++c.probe_hits;
    }
    pos_[static_cast<std::size_t>(pr.access.pos_slot)] = p;
  }
  return true;
}

void LinkedRunner::open_frame(std::size_t d) {
  Frame& f = frames_[d];
  const LinkedLevel& lv = lp_.levels[d];
  f.inv_enumerated = 0;
  f.inv_produced = 0;
  f.advance_pending = false;
  f.seg_bytes = 0;
  for (std::size_t s = 0; s < lv.drivers.size(); ++s) {
    const LinkedAccess& a = lv.drivers[s];
    const index_t parent =
        a.parent_slot < 0 ? 0 : pos_[static_cast<std::size_t>(a.parent_slot)];
    a.level->begin_cursor(parent, f.cursors[s], f.bufs[s]);
  }
  if (lv.method == JoinMethod::kMerge) {
    // What the interpreter would materialize for this invocation (and what
    // the kBuffered fallbacks may actually have materialized into bufs).
    for (const relation::Cursor& cur : f.cursors)
      f.seg_bytes += static_cast<long long>(cur.remaining()) *
                     static_cast<long long>(sizeof(relation::IndexPos));
  }
}

bool LinkedRunner::next_binding(std::size_t d, LocalCounters& c) {
  Frame& f = frames_[d];
  const LinkedLevel& lv = lp_.levels[d];

  if (lv.method == JoinMethod::kEnumerate) {
    relation::Cursor& cur = f.cursors[0];
    const std::size_t pos_slot =
        static_cast<std::size_t>(lv.drivers[0].pos_slot);
    const std::size_t var_slot = static_cast<std::size_t>(lv.var_slot);
    while (cur.valid()) {
      ++f.inv_enumerated;
      vars_[var_slot] = cur.index();
      pos_[pos_slot] = cur.pos();
      cur.advance();
      if (resolve_probes(lv, c)) {
        ++f.inv_produced;
        return true;
      }
    }
    return false;
  }

  // Multi-way merge join, streamed: the interpreter's k-finger sweep with
  // cursors as the fingers. advance_pending replays its advance-all-
  // fingers-after-a-match step when the caller pulls the next binding.
  const std::size_t k = lv.drivers.size();
  if (f.advance_pending) {
    f.advance_pending = false;
    for (std::size_t s = 0; s < k; ++s) {
      f.cursors[s].advance();
      ++f.inv_enumerated;
    }
  }
  while (true) {
    ++c.merge_steps;
    bool done = false;
    index_t target = -1;
    for (std::size_t s = 0; s < k; ++s) {
      if (!f.cursors[s].valid()) {
        done = true;
        break;
      }
      target = std::max(target, f.cursors[s].index());
    }
    if (done) return false;
    bool all_match = true;
    for (std::size_t s = 0; s < k; ++s) {
      relation::Cursor& cur = f.cursors[s];
      while (cur.valid() && cur.index() < target) {
        cur.advance();
        ++f.inv_enumerated;
      }
      if (!cur.valid()) {
        all_match = false;
        done = true;
        break;
      }
      if (cur.index() != target) all_match = false;
    }
    if (done) return false;
    if (all_match) {
      vars_[static_cast<std::size_t>(lv.var_slot)] = target;
      for (std::size_t s = 0; s < k; ++s)
        pos_[static_cast<std::size_t>(lv.drivers[s].pos_slot)] =
            f.cursors[s].pos();
      if (resolve_probes(lv, c)) {
        ++f.inv_produced;
        f.advance_pending = true;
        return true;
      }
      for (std::size_t s = 0; s < k; ++s) {
        f.cursors[s].advance();
        ++f.inv_enumerated;
      }
    }
  }
}

void LinkedRunner::close_frame(std::size_t d, LocalCounters& c,
                               RunStats* stats) {
  Frame& f = frames_[d];
  const LinkedLevel& lv = lp_.levels[d];
  if (lv.method == JoinMethod::kMerge) {
    // Streaming stops at the first exhausted driver; the interpreter's
    // materialization counted every segment element. Cursors know their
    // extent, so the unconsumed tails reconcile the totals exactly.
    for (const relation::Cursor& cur : f.cursors)
      f.inv_enumerated += cur.remaining();
    c.merge_segment_bytes += f.seg_bytes;
  }
  c.enumerated += f.inv_enumerated;
  if (d == 0 && chunk_outer_produced_ != nullptr) {
    // Chunk mode: the serial engine books ONE level-0 fan-out sample per
    // run (one outer invocation), so per-chunk samples would inflate the
    // histogram total. Hand the count to the coordinator instead.
    *chunk_outer_produced_ += f.inv_produced;
  } else {
    ++fanout_local_[d][static_cast<std::size_t>(
        support::Log2Histogram::bucket_of(f.inv_produced))];
  }
  if (stats) {
    stats->levels[d].enumerated += f.inv_enumerated;
    stats->levels[d].produced += f.inv_produced;
  }
}

void LinkedRunner::flush(const LocalCounters& c, RunStats* stats) {
  LinkedCounters& ctr = linked_counters();
  ctr.runs.add(1);
  ctr.tuples.add(c.tuples);
  ctr.enumerated.add(c.enumerated);
  ctr.merge_steps.add(c.merge_steps);
  ctr.probe_hits.add(c.probe_hits);
  ctr.probe_misses.add(c.probe_misses);
  ctr.fill_ins.add(c.fill_ins);
  ctr.merge_segment_bytes.add(c.merge_segment_bytes);
  for (std::size_t d = 0; d < fanout_local_.size(); ++d) {
    for (int b = 0; b < support::Log2Histogram::kBuckets; ++b) {
      long long& n = fanout_local_[d][static_cast<std::size_t>(b)];
      if (n == 0) continue;
      // Bucket b's representative value: bucket_of(rep) == b.
      lp_.levels[d].fanout->add(b == 0 ? 0 : (1LL << (b - 1)), n);
      n = 0;
    }
  }
  if (stats) stats->tuples = c.tuples;
}

template <class Sink>
void LinkedRunner::drain_enumerate_leaf(std::size_t d, LocalCounters& c,
                                        Sink&& sink) {
  Frame& f = frames_[d];
  const LinkedLevel& lv = lp_.levels[d];
  relation::Cursor& cur = f.cursors[0];
  const std::size_t pos_slot =
      static_cast<std::size_t>(lv.drivers[0].pos_slot);
  const std::size_t var_slot = static_cast<std::size_t>(lv.var_slot);
  long long produced = 0;

  // One cursor-kind dispatch for the whole invocation; the loop bodies are
  // the Cursor accessors inlined, with the hot fields held in locals.
  auto drain = [&](auto index_of, auto pos_of) {
    const index_t end = cur.end;
    f.inv_enumerated += cur.remaining();
    for (index_t k = cur.cur; k < end; ++k) {
      vars_[var_slot] = index_of(k);
      pos_[pos_slot] = pos_of(k);
      if (resolve_probes(lv, c)) {
        ++produced;
        ++c.tuples;
        sink();
      }
    }
    cur.cur = end;
  };
  switch (cur.kind) {
    case relation::Cursor::Kind::kDenseRange: {
      const index_t base = cur.base;
      drain([](index_t k) { return k; },
            [base](index_t k) { return base + k; });
      break;
    }
    case relation::Cursor::Kind::kIndArray: {
      const index_t* ind = cur.ind;
      drain([ind](index_t k) { return ind[k]; },
            [](index_t k) { return k; });
      break;
    }
    case relation::Cursor::Kind::kBuffered: {
      const relation::IndexPos* buf = cur.buf;
      drain([buf](index_t k) { return buf[k].idx; },
            [buf](index_t k) { return buf[k].pos; });
      break;
    }
    default:
      while (cur.valid()) {
        ++f.inv_enumerated;
        vars_[var_slot] = cur.index();
        pos_[pos_slot] = cur.pos();
        cur.advance();
        if (resolve_probes(lv, c)) {
          ++produced;
          ++c.tuples;
          sink();
        }
      }
      break;
  }
  f.inv_produced += produced;
}

template <class Sink>
void LinkedRunner::run_impl(Sink&& sink, RunStats* stats) {
  LocalCounters c;
  const std::size_t L = lp_.levels.size();
  if (stats) {
    stats->tuples = 0;
    stats->levels.assign(L, LevelRunStats{});
  }
  if (L == 0) {
    ++c.tuples;
    sink();
    flush(c, stats);
    return;
  }
  run_span(sink, c, stats, 0, -1);
  flush(c, stats);
}

template <class Sink>
void LinkedRunner::run_span(Sink&& sink, LocalCounters& c, RunStats* stats,
                            index_t chunk_begin, index_t chunk_count) {
  std::fill(vars_.begin(), vars_.end(), static_cast<index_t>(-1));
  std::fill(pos_.begin(), pos_.end(), static_cast<index_t>(-1));

  const std::size_t leaf = lp_.levels.size() - 1;
  std::size_t d = 0;
  open_frame(0);
  if (chunk_count >= 0) {
    // Clamp the outer cursor onto this chunk's offsets. Every cursor kind
    // iterates cur in [cur, end), so clamping the two counters restricts
    // any driver — dense ranges, ind arrays, buffered fallbacks — to the
    // same deterministic slice regardless of which worker pulls it.
    relation::Cursor& cur = frames_[0].cursors[0];
    const index_t lo = std::min<index_t>(cur.end, cur.cur + chunk_begin);
    const index_t hi = std::min<index_t>(cur.end, lo + chunk_count);
    cur.cur = lo;
    cur.end = hi;
  }
  while (true) {
    if (d == leaf && lp_.levels[d].method == JoinMethod::kEnumerate) {
      drain_enumerate_leaf(d, c, sink);
      close_frame(d, c, stats);
      if (d == 0) break;
      --d;
    } else if (next_binding(d, c)) {
      if (d == leaf) {
        ++c.tuples;
        sink();
      } else {
        ++d;
        open_frame(d);
      }
    } else {
      close_frame(d, c, stats);
      if (d == 0) break;
      --d;
    }
  }
}

namespace {

// Trace emission identical to the interpreter path — same span names, same
// per-level args — so the trace-reconciliation checks hold on either
// engine. The spans are synthetic intervals nested by depth (levels
// interleave; no level has a contiguous real interval).
template <class Body>
void traced(const LinkedPlan& lp, RunStats* stats, const Body& body) {
  if (!support::trace_enabled()) {
    body(stats);
    return;
  }
  RunStats local;
  RunStats* st = stats ? stats : &local;
  support::TraceSpan span("execute", "compiler");
  const double t0 = support::trace_now_us();
  body(st);
  const double t1 = support::trace_now_us();
  detail::emit_join_spans(*lp.plan, *st, t0, t1);
}

}  // namespace

void LinkedRunner::run(const Action& action, RunStats* stats) {
  traced(lp_, stats, [&](RunStats* st) {
    run_impl(
        [&] {
          // Actions see the per-relation leaf positions through Env; the
          // gather lives here so the mac fast path below can skip it.
          for (std::size_t r = 0; r < leaf_.size(); ++r)
            leaf_[r] = pos_[static_cast<std::size_t>(lp_.leaf_slot[r])];
          Env env{vars_, leaf_};
          action(env);
        },
        st);
  });
}

void LinkedRunner::run(const LinkedMac& mac, RunStats* stats) {
  // Resolve each operand's leaf position slot once per run: the sink reads
  // pos_ directly and skips the per-tuple leaf_ gather entirely.
  mac_pslots_.clear();
  for (const LinkedMac::Factor& f : mac.factors)
    mac_pslots_.push_back(static_cast<std::size_t>(lp_.leaf_slot[f.slot]));
  const std::size_t tslot =
      static_cast<std::size_t>(lp_.leaf_slot[mac.target_slot]);
  traced(lp_, stats, [&](RunStats* st) {
    run_impl(
        [&] {
          value_t prod = mac.scale;
          for (std::size_t i = 0; i < mac.factors.size(); ++i) {
            const LinkedMac::Factor& f = mac.factors[i];
            const index_t p = pos_[mac_pslots_[i]];
            prod *= f.data.empty() ? f.view->value_at(p)
                                   : f.data[static_cast<std::size_t>(p)];
          }
          const index_t tp = pos_[tslot];
          if (mac.target_data.empty())
            mac.target->value_add(tp, prod);
          else
            mac.target_data[static_cast<std::size_t>(tp)] += prod;
        },
        st);
  });
}

void execute(const Plan& plan, const relation::Query& q,
             const Action& action) {
  LinkedRunner runner(link_plan(plan, q));
  runner.run(action);
}

// ---- Parallel outer-level worksharing ---------------------------------

ParallelRunner::ParallelRunner(LinkedPlan lp, int threads)
    : threads_(std::max(1, threads)) {
  parallel_ = threads_ > 1 && lp.parallel_ok;
  const int nworkers = parallel_ ? threads_ : 1;
  workers_.reserve(static_cast<std::size_t>(nworkers));
  for (int w = 0; w < nworkers; ++w)
    workers_.push_back(std::make_unique<LinkedRunner>(lp));
  if (parallel_) support::shared_pool(threads_);  // spawn once, not per run
}

// The coordinator: deterministic chunk grid over the outer cursor range,
// guided assignment (workers pull the next chunk off one atomic), shards
// merged and flushed ONCE — counters, fan-out histograms, stats and the
// trace all reconcile exactly with a serial run of the same plan.
template <class MakeSink>
void ParallelRunner::run_parallel(MakeSink&& make_sink, RunStats* stats) {
  LinkedRunner& r0 = *workers_.front();
  const std::size_t L = r0.lp_.levels.size();
  traced(r0.lp_, stats, [&](RunStats* st) {
    // The outer extent, probed once: every worker's level-0 cursor opens
    // on the same root parent, so worker 0's view of the range is THE
    // range the chunk grid must cover.
    index_t extent = 0;
    {
      const LinkedAccess& a = r0.lp_.levels[0].drivers[0];
      relation::Cursor cur;
      relation::CursorBuffer buf;
      a.level->begin_cursor(0, cur, buf);
      extent = cur.remaining();
    }
    // Chunk grid: fixed size, independent of which worker runs what, a
    // few chunks per worker so uneven rows still balance.
    const index_t chunk =
        std::max<index_t>(1, (extent + threads_ * 4 - 1) /
                                 std::max(1, threads_ * 4));

    struct WorkerState {
      LinkedRunner::LocalCounters c;
      RunStats stats;
      long long outer_produced = 0;
      long long chunks = 0;
    };
    std::vector<WorkerState> states(workers_.size());
    std::atomic<index_t> next{0};
    const bool tracing = support::trace_enabled();

    support::shared_pool(threads_).run_slots(
        threads_, [&](int slot) {
          LinkedRunner& r = *workers_[static_cast<std::size_t>(slot)];
          WorkerState& ws = states[static_cast<std::size_t>(slot)];
          ws.stats.levels.assign(L, LevelRunStats{});
          r.chunk_outer_produced_ = &ws.outer_produced;
          auto sink = make_sink(r);
          std::unique_ptr<support::TraceSpan> span;
          if (tracing) {
            support::trace_name_thread(
                1, support::trace_track().tid,
                "exec worker " + std::to_string(slot));
            span = std::make_unique<support::TraceSpan>("execute.worker",
                                                        "compiler");
          }
          while (true) {
            const index_t k = next.fetch_add(1, std::memory_order_relaxed);
            const index_t begin = k * chunk;
            if (begin >= extent) break;
            r.run_span(sink, ws.c, &ws.stats, begin, chunk);
            ++ws.chunks;
          }
          r.chunk_outer_produced_ = nullptr;
          if (span)
            span->arg("chunks", ws.chunks).arg("tuples", ws.c.tuples);
        });

    // Merge the shards: plain sums for counters and per-level stats, a
    // bucket-wise sum for the deeper fan-out shards, and the withheld
    // level-0 counts folded into the single per-run sample serial books.
    LinkedRunner::LocalCounters total;
    long long outer_produced = 0;
    RunStats merged;
    merged.levels.assign(L, LevelRunStats{});
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      const WorkerState& ws = states[w];
      total.tuples += ws.c.tuples;
      total.enumerated += ws.c.enumerated;
      total.merge_steps += ws.c.merge_steps;
      total.probe_hits += ws.c.probe_hits;
      total.probe_misses += ws.c.probe_misses;
      total.fill_ins += ws.c.fill_ins;
      total.merge_segment_bytes += ws.c.merge_segment_bytes;
      outer_produced += ws.outer_produced;
      for (std::size_t d = 0; d < L; ++d) {
        merged.levels[d].enumerated += ws.stats.levels[d].enumerated;
        merged.levels[d].produced += ws.stats.levels[d].produced;
      }
      if (w != 0) {
        for (std::size_t d = 0; d < L; ++d)
          for (std::size_t b = 0; b < r0.fanout_local_[d].size(); ++b)
            r0.fanout_local_[d][b] += workers_[w]->fanout_local_[d][b];
        for (auto& buckets : workers_[w]->fanout_local_)
          std::fill(buckets.begin(), buckets.end(), 0);
      }
    }
    ++r0.fanout_local_[0][static_cast<std::size_t>(
        support::Log2Histogram::bucket_of(outer_produced))];
    r0.flush(total, nullptr);
    if (st) {
      st->tuples = total.tuples;
      st->levels = std::move(merged.levels);
    }
  });
}

void ParallelRunner::run(const Action& action, RunStats* stats) {
  if (!parallel_) {
    workers_.front()->run(action, stats);
    return;
  }
  run_parallel(
      [&](LinkedRunner& r) {
        return [&] {
          for (std::size_t rel = 0; rel < r.leaf_.size(); ++rel)
            r.leaf_[rel] =
                r.pos_[static_cast<std::size_t>(r.lp_.leaf_slot[rel])];
          Env env{r.vars_, r.leaf_};
          action(env);
        };
      },
      stats);
}

void ParallelRunner::run(const LinkedMac& mac, RunStats* stats) {
  if (!parallel_) {
    workers_.front()->run(mac, stats);
    return;
  }
  run_parallel(
      [&](LinkedRunner& r) {
        // Per-worker copy of the serial mac fast path: operand leaf slots
        // resolved once per run, pos_ read directly per tuple.
        std::vector<std::size_t> pslots;
        for (const LinkedMac::Factor& f : mac.factors)
          pslots.push_back(static_cast<std::size_t>(r.lp_.leaf_slot[f.slot]));
        const std::size_t tslot =
            static_cast<std::size_t>(r.lp_.leaf_slot[mac.target_slot]);
        return [&r, &mac, pslots = std::move(pslots), tslot] {
          value_t prod = mac.scale;
          for (std::size_t i = 0; i < mac.factors.size(); ++i) {
            const LinkedMac::Factor& f = mac.factors[i];
            const index_t p = r.pos_[pslots[i]];
            prod *= f.data.empty() ? f.view->value_at(p)
                                   : f.data[static_cast<std::size_t>(p)];
          }
          const index_t tp = r.pos_[tslot];
          if (mac.target_data.empty())
            mac.target->value_add(tp, prod);
          else
            mac.target_data[static_cast<std::size_t>(tp)] += prod;
        };
      },
      stats);
}

void execute_parallel(const Plan& plan, const relation::Query& q,
                      const Action& action, int threads) {
  ParallelRunner runner(link_plan(plan, q), threads);
  runner.run(action);
}

}  // namespace bernoulli::compiler
