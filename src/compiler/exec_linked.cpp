// The linked cursor executor: runs a LinkedPlan with an explicit level
// stack, pull-style cursors and batched observability.
//
// Engine contract (enforced by tests/exec_linked_test.cpp): for any
// (Plan, Query) the interpreter accepts, this engine produces bitwise-
// identical results, identical executor.* counter deltas and identical
// per-level enumerated/produced totals. The differences are purely
// mechanical:
//   - iteration pulls through flat Cursors (one virtual begin_cursor per
//     level invocation) instead of pushing through EnumFn std::functions
//     (one virtual dispatch + one std::function call per element);
//   - probes run lowered SearchSpecs (inline bounds checks / binary
//     searches over raw arrays) instead of virtual search calls;
//   - the merge join streams its drivers with a k-finger sweep over live
//     cursors instead of materializing every segment first — same step
//     count, same enumerated totals (unconsumed elements are accounted at
//     frame close; every cursor knows its extent), no allocation;
//   - counters and fan-out histograms accumulate in plain locals and
//     flush once per run instead of one relaxed-atomic add per event.
//
// ParallelRunner (bottom of this file) workshares the outermost
// enumerate level across the shared thread pool when the link-time
// legality check passed (LinkedPlan::parallel_ok): a deterministic chunk
// grid over the outer cursor range, per-worker runners with private
// scratch and counter/fan-out shards, merged and flushed once per run so
// observability stays exact — same executor.* deltas, same histogram
// samples, same trace span totals as a serial run, for any thread count.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "compiler/link.hpp"
#include "support/counters.hpp"
#include "support/error.hpp"
#include "support/histogram.hpp"
#include "support/json_writer.hpp"
#include "support/metrics.hpp"
#include "support/profile.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace bernoulli::compiler {

namespace {

// Same registry names as the interpreter (executor.cpp) — by-name lookup
// yields the same Counter objects, so the two engines feed one ledger.
struct LinkedCounters {
  support::Counter& runs = support::counter("executor.runs");
  support::Counter& tuples = support::counter("executor.tuples");
  support::Counter& enumerated = support::counter("executor.enumerated");
  support::Counter& merge_steps = support::counter("executor.merge_steps");
  support::Counter& probe_hits = support::counter("executor.probe_hits");
  support::Counter& probe_misses = support::counter("executor.probe_misses");
  support::Counter& fill_ins = support::counter("executor.fill_ins");
  support::Counter& merge_segment_bytes =
      support::counter("executor.merge_segment_bytes");
};

LinkedCounters& linked_counters() {
  static LinkedCounters c;
  return c;
}

// Serving-era metrics, booked once per run at the same flush site as the
// executor.* counters so the two ledgers reconcile: latency histogram
// count == executor.runs delta, histogram sum == execute.wall_ns (the same
// integer nanoseconds recorded into both). Same names across the
// interpreter, linked, threaded and specialized engines.
struct ServeMetrics {
  support::LatencyHistogram& latency =
      support::metric_latency("execute.latency");
  support::MetricRate& wall_ns = support::metric_rate("execute.wall_ns");
  support::MetricRate& model_bytes =
      support::metric_rate("execute.model_bytes");
  support::MetricRate& model_flops =
      support::metric_rate("execute.model_flops");
  support::TimeCounter& wall_seconds =
      support::time_counter("executor.wall_seconds");
};

ServeMetrics& serve_metrics() {
  static ServeMetrics m;
  return m;
}

long long wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

index_t bin_search(const index_t* ind, index_t lo, index_t hi, index_t idx) {
  const index_t* first = ind + lo;
  const index_t* last = ind + hi;
  const index_t* it = std::lower_bound(first, last, idx);
  if (it != last && *it == idx) return static_cast<index_t>(it - ind);
  return -1;
}

std::atomic<bool> g_bulk_drain{true};

// Half-open value ranges [a, a+an) and [b, b+bn) overlap. std::less gives
// the pointer comparison a defined total order across unrelated arrays.
bool ranges_overlap(const value_t* a, std::size_t an, const value_t* b,
                    std::size_t bn) {
  if (an == 0 || bn == 0) return false;
  std::less<const value_t*> lt;
  return !(lt(a + an - 1, b) || lt(b + bn - 1, a));
}

}  // namespace

void set_bulk_drain(bool enabled) {
  g_bulk_drain.store(enabled, std::memory_order_relaxed);
}

bool bulk_drain_enabled() {
  return g_bulk_drain.load(std::memory_order_relaxed);
}

bool LinkedRunner::resolve_probes(const LinkedLevel& lv, LocalCounters& c) {
  for (const LinkedProbe& pr : lv.probes) {
    const index_t idx = vars_[static_cast<std::size_t>(pr.var_slot)];
    const index_t parent =
        pr.access.parent_slot < 0
            ? 0
            : pos_[static_cast<std::size_t>(pr.access.parent_slot)];
    index_t p = -1;
    const relation::SearchSpec& s = pr.search;
    switch (s.kind) {
      case relation::SearchSpec::Kind::kIdentity:
        p = (idx >= 0 && idx < s.extent) ? idx : -1;
        break;
      case relation::SearchSpec::Kind::kAffine:
        p = (idx >= 0 && idx < s.extent) ? parent * s.stride + idx : -1;
        break;
      case relation::SearchSpec::Kind::kSegmentBinary:
        p = bin_search(s.ind, s.ptr[parent], s.ptr[parent + 1], idx);
        break;
      case relation::SearchSpec::Kind::kListBinary:
        p = bin_search(s.ind, 0, s.extent, idx);
        break;
      case relation::SearchSpec::Kind::kFunction:
        p = s.map[parent] == idx ? parent : -1;
        break;
      case relation::SearchSpec::Kind::kVirtual:
        p = pr.access.level->search(parent, idx);
        break;
    }
    if (p < 0) {
      ++c.probe_misses;
      if (pr.filters) return false;
      if (pr.insert_on_miss) {
        ++c.fill_ins;
        // Same confinement as the interpreter: insertion is the one
        // mutating access-method operation, reached only by outputs.
        p = const_cast<relation::IndexLevel&>(*pr.access.level)
                .insert(parent, idx);
      } else {
        const auto& rel =
            lp_.query->relations[static_cast<std::size_t>(pr.access.rel)];
        BERNOULLI_CHECK_MSG(
            false, rel.view->name()
                       << " missed a non-filtering probe at "
                       << rel.vars[static_cast<std::size_t>(pr.access.depth)]
                       << " = " << idx);
      }
    } else {
      ++c.probe_hits;
    }
    pos_[static_cast<std::size_t>(pr.access.pos_slot)] = p;
  }
  return true;
}

void LinkedRunner::open_frame(std::size_t d) {
  Frame& f = frames_[d];
  const LinkedLevel& lv = lp_.levels[d];
  f.inv_enumerated = 0;
  f.inv_produced = 0;
  f.advance_pending = false;
  f.seg_bytes = 0;
  for (std::size_t s = 0; s < lv.drivers.size(); ++s) {
    const LinkedAccess& a = lv.drivers[s];
    const index_t parent =
        a.parent_slot < 0 ? 0 : pos_[static_cast<std::size_t>(a.parent_slot)];
    // The descriptor was captured at link time, so non-opaque levels open
    // with zero virtual calls; opaque levels (spa accumulators, hash
    // stores) go through the buffered adapter as before.
    if (a.desc.kind != relation::LevelDescriptor::Kind::kOpaque)
      relation::descriptor_cursor(a.desc, parent, f.cursors[s]);
    else
      a.level->begin_cursor(parent, f.cursors[s], f.bufs[s]);
  }
  if (lv.method == JoinMethod::kMerge) {
    // What the interpreter would materialize for this invocation (and what
    // the kBuffered fallbacks may actually have materialized into bufs).
    for (const relation::Cursor& cur : f.cursors)
      f.seg_bytes += static_cast<long long>(cur.remaining()) *
                     static_cast<long long>(sizeof(relation::IndexPos));
  }
}

bool LinkedRunner::next_binding(std::size_t d, LocalCounters& c) {
  Frame& f = frames_[d];
  const LinkedLevel& lv = lp_.levels[d];

  if (lv.method == JoinMethod::kEnumerate) {
    relation::Cursor& cur = f.cursors[0];
    const std::size_t pos_slot =
        static_cast<std::size_t>(lv.drivers[0].pos_slot);
    const std::size_t var_slot = static_cast<std::size_t>(lv.var_slot);
    while (cur.valid()) {
      ++f.inv_enumerated;
      vars_[var_slot] = cur.index();
      pos_[pos_slot] = cur.pos();
      cur.advance();
      if (resolve_probes(lv, c)) {
        ++f.inv_produced;
        return true;
      }
    }
    return false;
  }

  // Multi-way merge join, streamed: the interpreter's k-finger sweep with
  // cursors as the fingers. advance_pending replays its advance-all-
  // fingers-after-a-match step when the caller pulls the next binding.
  const std::size_t k = lv.drivers.size();
  if (f.advance_pending) {
    f.advance_pending = false;
    for (std::size_t s = 0; s < k; ++s) {
      f.cursors[s].advance();
      ++f.inv_enumerated;
    }
  }
  while (true) {
    ++c.merge_steps;
    bool done = false;
    index_t target = -1;
    for (std::size_t s = 0; s < k; ++s) {
      if (!f.cursors[s].valid()) {
        done = true;
        break;
      }
      target = std::max(target, f.cursors[s].index());
    }
    if (done) return false;
    bool all_match = true;
    for (std::size_t s = 0; s < k; ++s) {
      relation::Cursor& cur = f.cursors[s];
      while (cur.valid() && cur.index() < target) {
        cur.advance();
        ++f.inv_enumerated;
      }
      if (!cur.valid()) {
        all_match = false;
        done = true;
        break;
      }
      if (cur.index() != target) all_match = false;
    }
    if (done) return false;
    if (all_match) {
      vars_[static_cast<std::size_t>(lv.var_slot)] = target;
      for (std::size_t s = 0; s < k; ++s)
        pos_[static_cast<std::size_t>(lv.drivers[s].pos_slot)] =
            f.cursors[s].pos();
      if (resolve_probes(lv, c)) {
        ++f.inv_produced;
        f.advance_pending = true;
        return true;
      }
      for (std::size_t s = 0; s < k; ++s) {
        f.cursors[s].advance();
        ++f.inv_enumerated;
      }
    }
  }
}

void LinkedRunner::close_frame(std::size_t d, LocalCounters& c,
                               RunStats* stats) {
  Frame& f = frames_[d];
  const LinkedLevel& lv = lp_.levels[d];
  if (lv.method == JoinMethod::kMerge) {
    // Streaming stops at the first exhausted driver; the interpreter's
    // materialization counted every segment element. Cursors know their
    // extent, so the unconsumed tails reconcile the totals exactly.
    for (const relation::Cursor& cur : f.cursors)
      f.inv_enumerated += cur.remaining();
    c.merge_segment_bytes += f.seg_bytes;
  }
  c.enumerated += f.inv_enumerated;
  if (d == 0 && chunk_outer_produced_ != nullptr) {
    // Chunk mode: the serial engine books ONE level-0 fan-out sample per
    // run (one outer invocation), so per-chunk samples would inflate the
    // histogram total. Hand the count to the coordinator instead.
    *chunk_outer_produced_ += f.inv_produced;
  } else {
    ++fanout_local_[d][static_cast<std::size_t>(
        support::Log2Histogram::bucket_of(f.inv_produced))];
  }
  if (stats) {
    stats->levels[d].enumerated += f.inv_enumerated;
    stats->levels[d].produced += f.inv_produced;
  }
}

void LinkedRunner::flush(const LocalCounters& c, RunStats* stats,
                         long long wall_ns) {
  if (capture_ != nullptr) {
    capture_->tuples = c.tuples;
    capture_->enumerated = c.enumerated;
    capture_->merge_steps = c.merge_steps;
    capture_->probe_hits = c.probe_hits;
    capture_->probe_misses = c.probe_misses;
    capture_->fill_ins = c.fill_ins;
    capture_->merge_segment_bytes = c.merge_segment_bytes;
    capture_->fanout = fanout_local_;  // copy BEFORE booking zeroes it
  }
  // The whole group below — latency sample, wall_ns, counters, fan-out,
  // profile — commits under the observability commit lock so a concurrent
  // metrics_snapshot() can never see half of this run (the
  // execute.latency.sum_ns == execute.wall_ns invariant).
  const std::unique_lock<std::mutex> commit = support::metrics_commit_lock();
  ServeMetrics& m = serve_metrics();
  m.latency.record_ns(wall_ns);
  m.wall_ns.add(wall_ns);
  m.wall_seconds.add(static_cast<double>(wall_ns) * 1e-9);
  if (lp_.footprint.exact) {
    m.model_bytes.add(lp_.footprint.total_bytes());
    m.model_flops.add(lp_.footprint.flops);
  }
  LinkedCounters& ctr = linked_counters();
  ctr.runs.add(1);
  ctr.tuples.add(c.tuples);
  ctr.enumerated.add(c.enumerated);
  ctr.merge_steps.add(c.merge_steps);
  ctr.probe_hits.add(c.probe_hits);
  ctr.probe_misses.add(c.probe_misses);
  ctr.fill_ins.add(c.fill_ins);
  ctr.merge_segment_bytes.add(c.merge_segment_bytes);
  for (std::size_t d = 0; d < fanout_local_.size(); ++d) {
    for (int b = 0; b < support::Log2Histogram::kBuckets; ++b) {
      long long& n = fanout_local_[d][static_cast<std::size_t>(b)];
      if (n == 0) continue;
      // Bucket b's representative value: bucket_of(rep) == b.
      lp_.levels[d].fanout->add(b == 0 ? 0 : (1LL << (b - 1)), n);
      n = 0;
    }
  }
  if (stats) stats->tuples = c.tuples;
  // Per-level time attribution rides the same once-per-run flush; the
  // scratch is zero unless profiling was enabled during the run.
  if (prof_.any()) {
    support::profile_flush(prof_, wall_ns);
    prof_.reset(0);
  }
}

// Classifies the mac operands against the leaf level so try_bulk (below)
// can stream whole cursor ranges. Bulk drains engage only when:
//   - the leaf level is an enumerate (drain_enumerate_leaf's precondition);
//   - every leaf probe is an identity/affine bounds check (no binary
//     searches, no virtual probes, no fill-in inserts) — those are the
//     probes whose all-hit outcome is provable from an index range;
//   - the target and every factor expose flat value arrays (no virtual
//     value access mid-loop).
// Everything else falls back to the per-element path, which stays the
// ground truth the bulk path must reproduce bitwise.
void LinkedRunner::prepare_bulk(const LinkedMac& mac) {
  bulk_ok_ = false;
  bulk_acc_ok_ = false;
  bulk_ops_.clear();
  if (lp_.levels.empty()) return;
  const std::size_t leaf = lp_.levels.size() - 1;
  const LinkedLevel& lv = lp_.levels[leaf];
  if (lv.method != JoinMethod::kEnumerate) return;
  for (const LinkedProbe& pr : lv.probes) {
    if (pr.insert_on_miss) return;
    if (pr.search.kind != relation::SearchSpec::Kind::kIdentity &&
        pr.search.kind != relation::SearchSpec::Kind::kAffine)
      return;
  }
  if (mac.target_data.empty()) return;
  for (const LinkedMac::Factor& f : mac.factors)
    if (f.data.empty()) return;

  const int driver_slot = lv.drivers[0].pos_slot;
  auto classify = [&](std::size_t rel_slot) {
    BulkOp op;
    const int s = lp_.leaf_slot[rel_slot];
    if (s == driver_slot) {
      op.src = BulkOp::Src::kDriver;
      return op;
    }
    for (const LinkedProbe& pr : lv.probes) {
      if (pr.access.pos_slot != s) continue;
      if (pr.search.kind == relation::SearchSpec::Kind::kIdentity) {
        op.src = BulkOp::Src::kIdentity;
      } else {
        op.src = BulkOp::Src::kAffine;
        op.stride = pr.search.stride;
        op.parent_slot = pr.access.parent_slot;
      }
      return op;
    }
    // Bound at an outer level: constant for the whole drain.
    op.src = BulkOp::Src::kConst;
    op.slot = static_cast<std::size_t>(s);
    return op;
  };

  bulk_target_ = classify(mac.target_slot);
  for (const LinkedMac::Factor& f : mac.factors) {
    BulkOp op = classify(f.slot);
    op.data = f.data.data();
    bulk_ops_.push_back(op);
  }
  bulk_ok_ = true;
  // The accumulator register cache is only safe when the target element is
  // fixed for the whole drain AND no factor can read the target storage
  // mid-loop (the deferred store would then be observable).
  bulk_acc_ok_ = bulk_target_.src == BulkOp::Src::kConst;
  for (const LinkedMac::Factor& f : mac.factors)
    if (ranges_overlap(mac.target_data.data(), mac.target_data.size(),
                       f.data.data(), f.data.size()))
      bulk_acc_ok_ = false;
}

// Classifies the whole plan for the chunk-wide sliced drain. It engages
// only for the shape where storage-order windows are provably equivalent
// to the per-row walk:
//   - two enumerate levels, one driver each: dense rows over a sliced
//     (SELL-C-sigma) leaf;
//   - the leaf qualifies for register-accumulated bulk drains with
//     exactly two factors, each reading pos (the driver's values) or idx
//     (a dense operand) directly — no per-row affine/const rebasing;
//   - every probe at BOTH levels is proved all-hit at link time and none
//     inserts, so window pre-resolution cannot miss or mutate storage.
// Everything else keeps the per-row path, which stays the ground truth
// the window drain must reproduce bitwise.
void LinkedRunner::prepare_chunk(const LinkedMac& mac) {
  (void)mac;
  chunk_ok_ = false;
  if (!bulk_ok_ || !bulk_acc_ok_) return;
  if (lp_.levels.size() != 2) return;
  const LinkedLevel& l0 = lp_.levels[0];
  const LinkedLevel& l1 = lp_.levels[1];
  if (l0.method != JoinMethod::kEnumerate ||
      l1.method != JoinMethod::kEnumerate)
    return;
  if (l0.drivers.size() != 1 || l1.drivers.size() != 1) return;
  if (!l0.probes.empty() && !l0.proved_all_hit) return;
  if (!l1.probes.empty() && !l1.proved_all_hit) return;
  for (const LinkedProbe& pr : l0.probes)
    if (pr.insert_on_miss) return;
  const relation::LevelDescriptor& d0 = l0.drivers[0].desc;
  const relation::LevelDescriptor& d1 = l1.drivers[0].desc;
  if (d0.kind != relation::LevelDescriptor::Kind::kDense) return;
  if (d1.kind != relation::LevelDescriptor::Kind::kSliced) return;
  if (d1.chunk <= 0 || d1.sigma <= 0 || d1.sigma % d1.chunk != 0) return;
  if (bulk_ops_.size() != 2) return;
  for (const BulkOp& o : bulk_ops_)
    if (o.src != BulkOp::Src::kDriver && o.src != BulkOp::Src::kIdentity)
      return;
  chunk_c_ = d1.chunk;
  chunk_sigma_ = d1.sigma;
  chunk_off_ = d1.off;
  chunk_len_ = d1.len;
  chunk_ind_ = d1.ind;
  chunk_ok_ = true;
}

// The run(LinkedMac) sink. operator() is the per-element multiply-
// accumulate (unchanged semantics); try_bulk is the hook
// drain_enumerate_leaf offers a whole leaf invocation to. A local class
// cannot befriend templates, so this lives at class scope with full
// access to the runner internals.
struct LinkedRunner::MacSink {
  LinkedRunner& r;
  const LinkedMac& mac;
  std::size_t tslot;

  void operator()() const {
    value_t prod = mac.scale;
    for (std::size_t i = 0; i < mac.factors.size(); ++i) {
      const LinkedMac::Factor& f = mac.factors[i];
      const index_t p = r.pos_[r.mac_pslots_[i]];
      prod *= f.data.empty() ? f.view->value_at(p)
                             : f.data[static_cast<std::size_t>(p)];
    }
    const index_t tp = r.pos_[tslot];
    if (mac.target_data.empty())
      mac.target->value_add(tp, prod);
    else
      mac.target_data[static_cast<std::size_t>(tp)] += prod;
  }

  // Streams the whole remaining cursor range of leaf invocation `d` as one
  // fused loop, booking counters/stats in bulk. Returns false (nothing
  // consumed, nothing booked) when the invocation is not provably all-hit,
  // so the caller's per-element path keeps exact miss semantics.
  bool try_bulk(std::size_t d, LocalCounters& c) const {
    if (!r.bulk_ok_ || !bulk_drain_enabled()) return false;
    Frame& f = r.frames_[d];
    const LinkedLevel& lv = r.lp_.levels[d];
    relation::Cursor& cur = f.cursors[0];
    if (cur.remaining() <= 0) return false;

    // All-hit window check: identity/affine probes hit iff
    // 0 <= idx < extent, so range membership of [mn, mx] settles every
    // element of an invocation.
    auto probes_hit = [&](index_t mn, index_t mx) {
      for (const LinkedProbe& pr : lv.probes)
        if (mn < 0 || mx >= pr.search.extent) return false;
      return true;
    };

    // Book the invocation in bulk: every element enumerates, hits every
    // probe, and produces — identical totals to the per-element path in
    // any order, because no element misses.
    auto book = [&](long long n) {
      f.inv_enumerated += n;
      f.inv_produced += n;
      c.tuples += n;
      c.probe_hits += n * static_cast<long long>(lv.probes.size());
    };

    // Flatten each operand to pos = base + mp*driver_pos + mi*idx for
    // this invocation (kConst slots and affine parents are fixed here).
    auto refresh = [&](BulkOp& o) {
      switch (o.src) {
        case BulkOp::Src::kConst:
          o.base = r.pos_[o.slot];
          o.mp = 0;
          o.mi = 0;
          break;
        case BulkOp::Src::kDriver:
          o.base = 0;
          o.mp = 1;
          o.mi = 0;
          break;
        case BulkOp::Src::kIdentity:
          o.base = 0;
          o.mp = 0;
          o.mi = 1;
          break;
        case BulkOp::Src::kAffine:
          o.base = (o.parent_slot < 0
                        ? 0
                        : r.pos_[static_cast<std::size_t>(o.parent_slot)]) *
                   o.stride;
          o.mp = 0;
          o.mi = 1;
          break;
      }
    };
    auto refresh_ops = [&] {
      refresh(r.bulk_target_);
      for (BulkOp& o : r.bulk_ops_) refresh(o);
    };

    value_t* const td = mac.target_data.data();
    const value_t scale = mac.scale;
    const std::size_t nf = r.bulk_ops_.size();
    auto prod_of = [&](index_t idx, index_t pos) {
      value_t prod = scale;
      for (std::size_t i = 0; i < nf; ++i) {
        const BulkOp& o = r.bulk_ops_[i];
        prod *= o.data[o.base + o.mp * pos + o.mi * idx];
      }
      return prod;
    };

    auto bulk = [&](auto index_of, auto pos_of, bool ascending) -> bool {
      const index_t k0 = cur.cur;
      const index_t k1 = cur.end;
      // proved_all_hit settled the window at link time from the level's
      // whole enumerable range; only unproved levels pay the per-
      // invocation min/max scan.
      if (!lv.probes.empty() && !lv.proved_all_hit) {
        index_t mn, mx;
        if (ascending) {
          mn = index_of(k0);
          mx = index_of(k1 - 1);
        } else {
          mn = mx = index_of(k0);
          for (index_t k = k0 + 1; k < k1; ++k) {
            const index_t v = index_of(k);
            mn = std::min(mn, v);
            mx = std::max(mx, v);
          }
        }
        if (!probes_hit(mn, mx)) return false;
      }

      book(k1 - k0);
      refresh_ops();

      const BulkOp& t = r.bulk_target_;
      if (r.bulk_acc_ok_) {
        // Same addition sequence into the same element, accumulated in a
        // register: bitwise-identical to the per-element stores.
        value_t acc = td[t.base];
        if (nf == 2) {
          const BulkOp o0 = r.bulk_ops_[0];
          const BulkOp o1 = r.bulk_ops_[1];
          for (index_t k = k0; k < k1; ++k) {
            const index_t idx = index_of(k);
            const index_t pos = pos_of(k);
            value_t prod = scale;
            prod *= o0.data[o0.base + o0.mp * pos + o0.mi * idx];
            prod *= o1.data[o1.base + o1.mp * pos + o1.mi * idx];
            acc += prod;
          }
        } else {
          for (index_t k = k0; k < k1; ++k)
            acc += prod_of(index_of(k), pos_of(k));
        }
        td[t.base] = acc;
      } else {
        for (index_t k = k0; k < k1; ++k) {
          const index_t idx = index_of(k);
          const index_t pos = pos_of(k);
          td[t.base + t.mp * pos + t.mi * idx] += prod_of(idx, pos);
        }
      }
      cur.cur = k1;
      return true;
    };

    switch (cur.kind) {
      case relation::Cursor::Kind::kDenseRange: {
        const index_t base = cur.base;
        return bulk([](index_t k) { return k; },
                    [base](index_t k) { return base + k; },
                    /*ascending=*/true);
      }
      case relation::Cursor::Kind::kIndArray: {
        const index_t* ind = cur.ind;
        return bulk([ind](index_t k) { return ind[k]; },
                    [](index_t k) { return k; },
                    /*ascending=*/false);
      }
      case relation::Cursor::Kind::kStrided: {
        const index_t* ind = cur.ind;
        const index_t base = cur.base;
        const index_t stride = cur.stride;
        return bulk([=](index_t k) { return ind[base + k * stride]; },
                    [=](index_t k) { return base + k * stride; },
                    /*ascending=*/false);
      }
      case relation::Cursor::Kind::kOffsets: {
        const index_t* ind = cur.ind;
        const index_t* off = cur.off;
        const index_t base = cur.base;
        return bulk([=](index_t k) { return ind[off[k] + base]; },
                    [=](index_t k) { return off[k] + base; },
                    /*ascending=*/false);
      }
      case relation::Cursor::Kind::kBuffered: {
        const relation::IndexPos* buf = cur.buf;
        return bulk([buf](index_t k) { return buf[k].idx; },
                    [buf](index_t k) { return buf[k].pos; },
                    /*ascending=*/false);
      }
      case relation::Cursor::Kind::kBlocked: {
        // Register-blocked micro-kernel: one block-column load and one
        // position base per r×c block instead of a div/mod per lane. The
        // lane walk handles an arbitrary k0/k1 (a chunked outer range can
        // hand us a partial first or last block).
        const index_t* ind = cur.ind;
        const index_t ebase = cur.base;
        const index_t c0 = cur.stride;  // block width (lanes per block)
        const index_t bsz = cur.bsz;
        const index_t rofs = cur.rofs;
        const index_t k0 = cur.cur;
        const index_t k1 = cur.end;
        if (!lv.probes.empty() && !lv.proved_all_hit) {
          // Conservative lane window from the block columns this range
          // touches: every lane of block b lies in [ind[b]*c, ind[b]*c+c).
          const index_t b0 = ebase + k0 / c0;
          const index_t bN = ebase + (k1 - 1) / c0;
          index_t mnb = ind[b0];
          index_t mxb = ind[b0];
          for (index_t b = b0 + 1; b <= bN; ++b) {
            mnb = std::min(mnb, ind[b]);
            mxb = std::max(mxb, ind[b]);
          }
          if (!probes_hit(mnb * c0, mxb * c0 + c0 - 1)) return false;
        }
        book(k1 - k0);
        refresh_ops();
        const BulkOp& t = r.bulk_target_;
        if (r.bulk_acc_ok_ && nf == 2) {
          const BulkOp o0 = r.bulk_ops_[0];
          const BulkOp o1 = r.bulk_ops_[1];
          value_t acc = td[t.base];
          index_t k = k0;
          while (k < k1) {
            const index_t b = ebase + k / c0;
            const index_t cc0 = k % c0;
            const index_t cc1 = std::min<index_t>(c0, cc0 + (k1 - k));
            const index_t jb = ind[b] * c0;   // first lane index of block
            const index_t pb = b * bsz + rofs;  // this row's value base
            for (index_t cc = cc0; cc < cc1; ++cc) {
              const index_t idx = jb + cc;
              const index_t pos = pb + cc;
              value_t prod = scale;
              prod *= o0.data[o0.base + o0.mp * pos + o0.mi * idx];
              prod *= o1.data[o1.base + o1.mp * pos + o1.mi * idx];
              acc += prod;
            }
            k += cc1 - cc0;
          }
          td[t.base] = acc;
        } else {
          index_t k = k0;
          while (k < k1) {
            const index_t b = ebase + k / c0;
            const index_t cc0 = k % c0;
            const index_t cc1 = std::min<index_t>(c0, cc0 + (k1 - k));
            const index_t jb = ind[b] * c0;
            const index_t pb = b * bsz + rofs;
            for (index_t cc = cc0; cc < cc1; ++cc) {
              const index_t idx = jb + cc;
              const index_t pos = pb + cc;
              td[t.base + t.mp * pos + t.mi * idx] += prod_of(idx, pos);
            }
            k += cc1 - cc0;
          }
        }
        cur.cur = k1;
        return true;
      }
      case relation::Cursor::Kind::kSingleton:
        return false;  // one element: the per-element path is already tight
    }
    return false;
  }

  // Chunk-wide sliced drain: run_span offers the open level-0 frame
  // whenever the engine sits at the outer level. Consumes whole sigma-
  // aligned windows of outer rows, draining each storage chunk with ONE
  // unit-stride pass over its padded lane-interleaved storage instead of
  // a lane-strided walk per row. Padded lanes are never touched: within a
  // chunk the lanes are stored longest-first, so lanes retire as a suffix
  // while k ascends. Each lane accumulates its row in ascending k into a
  // private register — bitwise-identical stores to the per-row drains —
  // and rows are pre-resolved per window, so every counter, fan-out
  // sample and per-level stat books exactly what the per-row path books,
  // merely reordered across rows (all order-invariant totals). Rows it
  // does not consume — an unaligned thread-chunk prefix, the tail, a
  // window whose chunk shape does not verify — are left untouched for
  // the per-row path.
  void try_chunk(LocalCounters& c, RunStats* st) const {
    if (!r.chunk_ok_ || !bulk_drain_enabled()) return;
    Frame& f0 = r.frames_[0];
    relation::Cursor& cur = f0.cursors[0];
    const index_t cw = r.chunk_c_;
    const index_t sigma = r.chunk_sigma_;
    if (cur.cur % sigma != 0 || cur.end - cur.cur < sigma) return;
    const index_t* off = r.chunk_off_;
    const index_t* len = r.chunk_len_;
    const index_t* ind = r.chunk_ind_;
    const LinkedLevel& lv0 = r.lp_.levels[0];
    const LinkedLevel& lv1 = r.lp_.levels[1];
    const std::size_t pos0 =
        static_cast<std::size_t>(lv0.drivers[0].pos_slot);
    const std::size_t var0 = static_cast<std::size_t>(lv0.var_slot);
    const std::size_t pslot =
        static_cast<std::size_t>(lv1.drivers[0].parent_slot);
    const long long nprobes1 = static_cast<long long>(lv1.probes.size());
    value_t* const td = mac.target_data.data();
    const value_t scale = mac.scale;
    // Factor forms are parent-independent here (prepare_chunk rejected
    // kConst/kAffine), so flatten once: pos-sourced (driver values) or
    // idx-sourced (dense operand).
    auto flat = [](const BulkOp& o) {
      BulkOp f = o;
      f.base = 0;
      f.mp = o.src == BulkOp::Src::kDriver ? 1 : 0;
      f.mi = o.src == BulkOp::Src::kIdentity ? 1 : 0;
      return f;
    };
    const BulkOp o0 = flat(r.bulk_ops_[0]);
    const BulkOp o1 = flat(r.bulk_ops_[1]);

    auto& ord = r.chunk_ord_;
    auto& rbase = r.chunk_base_;
    auto& rlen = r.chunk_lens_;
    auto& tpos = r.chunk_tpos_;
    auto& acc = r.chunk_acc_;
    const std::size_t S = static_cast<std::size_t>(sigma);
    ord.resize(S);
    rbase.resize(S);
    rlen.resize(S);
    tpos.resize(S);
    acc.resize(static_cast<std::size_t>(cw));

    // Sliced drains book ONE exact interval per invocation (covering every
    // window it consumes) — no sampling needed: two stamps amortize over
    // sigma rows of work. Outer rows consumed here also count as level-0
    // work so per-level work totals match the per-row path.
    const bool prof = support::profiling_enabled();
    const long long prof_t0 = prof ? support::profile_now_ns() : 0;
    const long long prof_w0 = prof ? c.tuples : 0;
    long long prof_rows = 0;
    const auto prof_book = [&] {
      if (!prof || prof_rows == 0) return;
      const long long w = c.tuples - prof_w0;
      r.prof_.add_work(0, support::kProfTuple, prof_rows);
      r.prof_.add_work(1, support::kProfSliced, w);
      r.prof_.book_ns(1, support::kProfSliced,
                      support::profile_now_ns() - prof_t0, w);
    };

    while (cur.cur % sigma == 0 && cur.end - cur.cur >= sigma) {
      const index_t w0 = cur.cur;
      // Pre-resolve the window's rows before booking any frame state: a
      // filtered row or an unverifiable chunk shape restores the counter
      // snapshot and leaves the whole window to the per-row path.
      const LocalCounters saved = c;
      bool ok = true;
      for (index_t s = 0; s < sigma; ++s) {
        const index_t row = w0 + s;
        r.vars_[var0] = row;
        r.pos_[pos0] = cur.base + row;
        if (!r.resolve_probes(lv0, c)) {
          ok = false;
          break;
        }
        const index_t prow = r.pos_[pslot];
        const std::size_t us = static_cast<std::size_t>(s);
        ord[us] = s;
        rbase[us] = off[prow];
        rlen[us] = len[prow];
        tpos[us] = r.pos_[tslot];
      }
      // Storage order: ascending per-row base recovers (chunk, lane).
      // Insertion sort — sigma is small.
      for (index_t a = 1; ok && a < sigma; ++a) {
        const index_t v = ord[static_cast<std::size_t>(a)];
        index_t b = a;
        for (; b > 0 && rbase[static_cast<std::size_t>(
                            ord[static_cast<std::size_t>(b - 1)])] >
                            rbase[static_cast<std::size_t>(v)];
             --b)
          ord[static_cast<std::size_t>(b)] =
              ord[static_cast<std::size_t>(b - 1)];
        ord[static_cast<std::size_t>(b)] = v;
      }
      // Verify the shape this drain assumes: each storage-order group of
      // cw rows shares one chunk (lane bases contiguous) and lane lengths
      // never increase, so padded lanes retire as a suffix.
      auto slot = [&](index_t j) {
        return static_cast<std::size_t>(ord[static_cast<std::size_t>(j)]);
      };
      for (index_t j = 0; ok && j < sigma; j += cw) {
        const index_t cb = rbase[slot(j)];
        for (index_t lane = 0; lane < cw; ++lane) {
          if (rbase[slot(j + lane)] != cb + lane ||
              (lane > 0 &&
               rlen[slot(j + lane)] > rlen[slot(j + lane - 1)])) {
            ok = false;
            break;
          }
        }
      }
      if (!ok) {
        c = saved;
        prof_book();
        return;
      }

      // Book the window: per row, exactly what next_binding plus a
      // per-row bulk drain book (probe hits already counted above).
      f0.inv_enumerated += sigma;
      f0.inv_produced += sigma;
      for (std::size_t us = 0; us < S; ++us) {
        const long long n = rlen[us];
        c.tuples += n;
        c.enumerated += n;
        c.probe_hits += n * nprobes1;
        ++r.fanout_local_[1][static_cast<std::size_t>(
            support::Log2Histogram::bucket_of(n))];
        if (st) {
          st->levels[1].enumerated += n;
          st->levels[1].produced += n;
        }
      }
      // One unit-stride pass per chunk over its padded storage.
      for (index_t j = 0; j < sigma; j += cw) {
        const index_t cb = rbase[slot(j)];
        for (index_t lane = 0; lane < cw; ++lane)
          acc[static_cast<std::size_t>(lane)] = td[tpos[slot(j + lane)]];
        const index_t kmax = rlen[slot(j)];
        index_t active = cw;
        for (index_t k = 0; k < kmax; ++k) {
          while (active > 0 && rlen[slot(j + active - 1)] <= k) --active;
          const index_t p = cb + k * cw;
          for (index_t lane = 0; lane < active; ++lane) {
            const index_t pp = p + lane;
            const index_t idx = ind[pp];
            value_t prod = scale;
            prod *= o0.data[o0.mp * pp + o0.mi * idx];
            prod *= o1.data[o1.mp * pp + o1.mi * idx];
            acc[static_cast<std::size_t>(lane)] += prod;
          }
        }
        for (index_t lane = 0; lane < cw; ++lane)
          td[tpos[slot(j + lane)]] = acc[static_cast<std::size_t>(lane)];
      }
      cur.cur += sigma;
      prof_rows += sigma;
    }
    prof_book();
  }
};

template <class Sink>
void LinkedRunner::drain_enumerate_leaf(std::size_t d, LocalCounters& c,
                                        Sink&& sink, bool prof_time) {
  // Drain-kind attribution: the whole invocation books one work count (and,
  // inside a sampled bracket, one timestamp pair — never per tuple) under
  // the kind that actually drained it.
  const bool profiling = support::profiling_enabled();
  const long long prof_w0 = profiling ? c.tuples : 0;
  const long long prof_t0 = prof_time ? support::profile_now_ns() : 0;
  if constexpr (requires { sink.try_bulk(d, c); }) {
    const bool blocked =
        frames_[d].cursors[0].kind == relation::Cursor::Kind::kBlocked;
    if (sink.try_bulk(d, c)) {
      if (profiling) {
        const int kind =
            blocked ? support::kProfBlocked : support::kProfBulk;
        const long long w = c.tuples - prof_w0;
        prof_.add_work(static_cast<int>(d), kind, w);
        if (prof_time)
          prof_.book_ns(static_cast<int>(d), kind,
                        support::profile_now_ns() - prof_t0, w);
      }
      return;
    }
  }
  Frame& f = frames_[d];
  const LinkedLevel& lv = lp_.levels[d];
  relation::Cursor& cur = f.cursors[0];
  const std::size_t pos_slot =
      static_cast<std::size_t>(lv.drivers[0].pos_slot);
  const std::size_t var_slot = static_cast<std::size_t>(lv.var_slot);
  long long produced = 0;

  // One cursor-kind dispatch for the whole invocation; the loop bodies are
  // the Cursor accessors inlined, with the hot fields held in locals.
  auto drain = [&](auto index_of, auto pos_of) {
    const index_t end = cur.end;
    f.inv_enumerated += cur.remaining();
    for (index_t k = cur.cur; k < end; ++k) {
      vars_[var_slot] = index_of(k);
      pos_[pos_slot] = pos_of(k);
      if (resolve_probes(lv, c)) {
        ++produced;
        ++c.tuples;
        sink();
      }
    }
    cur.cur = end;
  };
  switch (cur.kind) {
    case relation::Cursor::Kind::kDenseRange: {
      const index_t base = cur.base;
      drain([](index_t k) { return k; },
            [base](index_t k) { return base + k; });
      break;
    }
    case relation::Cursor::Kind::kIndArray: {
      const index_t* ind = cur.ind;
      drain([ind](index_t k) { return ind[k]; },
            [](index_t k) { return k; });
      break;
    }
    case relation::Cursor::Kind::kBuffered: {
      const relation::IndexPos* buf = cur.buf;
      drain([buf](index_t k) { return buf[k].idx; },
            [buf](index_t k) { return buf[k].pos; });
      break;
    }
    default:
      while (cur.valid()) {
        ++f.inv_enumerated;
        vars_[var_slot] = cur.index();
        pos_[pos_slot] = cur.pos();
        cur.advance();
        if (resolve_probes(lv, c)) {
          ++produced;
          ++c.tuples;
          sink();
        }
      }
      break;
  }
  f.inv_produced += produced;
  if (profiling) {
    prof_.add_work(static_cast<int>(d), support::kProfTuple, produced);
    if (prof_time)
      prof_.book_ns(static_cast<int>(d), support::kProfTuple,
                    support::profile_now_ns() - prof_t0, produced);
  }
}

template <class Sink>
void LinkedRunner::run_impl(Sink&& sink, RunStats* stats) {
  LocalCounters c;
  const long long t0 = wall_now_ns();
  const std::size_t L = lp_.levels.size();
  if (support::profiling_enabled())
    prof_.levels = static_cast<int>(
        std::min<std::size_t>(L, support::kProfileMaxLevels));
  if (stats) {
    stats->tuples = 0;
    stats->levels.assign(L, LevelRunStats{});
  }
  if (L == 0) {
    ++c.tuples;
    sink();
    flush(c, stats, wall_now_ns() - t0);
    return;
  }
  run_span(sink, c, stats, 0, -1);
  flush(c, stats, wall_now_ns() - t0);
}

template <class Sink>
void LinkedRunner::run_span(Sink&& sink, LocalCounters& c, RunStats* stats,
                            index_t chunk_begin, index_t chunk_count) {
  std::fill(vars_.begin(), vars_.end(), static_cast<index_t>(-1));
  std::fill(pos_.begin(), pos_.end(), static_cast<index_t>(-1));

  const std::size_t leaf = lp_.levels.size() - 1;
  std::size_t d = 0;
  open_frame(0);
  if (chunk_count >= 0) {
    // Clamp the outer cursor onto this chunk's offsets. Every cursor kind
    // iterates cur in [cur, end), so clamping the two counters restricts
    // any driver — dense ranges, ind arrays, buffered fallbacks — to the
    // same deterministic slice regardless of which worker pulls it.
    relation::Cursor& cur = frames_[0].cursors[0];
    const index_t lo = std::min<index_t>(cur.end, cur.cur + chunk_begin);
    const index_t hi = std::min<index_t>(cur.end, lo + chunk_count);
    cur.cur = lo;
    cur.end = hi;
  }
  // Sampled switch-clock (support/profile.hpp): every kProfileSampleEvery-th
  // outer binding opens a timing bracket; inside a bracket, one timestamp
  // per level TRANSITION books the elapsed segment to the level the engine
  // was executing (self time; book_ns also feeds every enclosing level's
  // inclusive slot). Leaf drains bracket the whole invocation. Work counts
  // are always on while profiling so the flush can extrapolate sampled
  // nanoseconds by the exact work ratio.
  const bool prof_on = support::profiling_enabled();
  bool prof_bracket = false;
  long long prof_last = 0;
  const auto prof_kind_of = [this](std::size_t lvl) {
    return lp_.levels[lvl].method == JoinMethod::kMerge
               ? support::kProfMerge
               : support::kProfTuple;
  };
  while (true) {
    // At the outer level, offer any whole sliced windows to the chunk-
    // wide drain first (no-op unless prepare_chunk engaged and the
    // cursor sits on a window boundary with a full window left).
    if constexpr (requires { sink.try_chunk(c, stats); }) {
      if (d == 0) sink.try_chunk(c, stats);
    }
    if (d == leaf && lp_.levels[d].method == JoinMethod::kEnumerate) {
      if (prof_bracket) {
        // Segment since the last transition: this level's frame setup.
        const long long t = support::profile_now_ns();
        prof_.book_ns(static_cast<int>(d), prof_kind_of(d), t - prof_last,
                      0);
      }
      // A single-level plan drains the whole run in one invocation —
      // bracket it exactly rather than sampling.
      drain_enumerate_leaf(d, c, sink,
                           prof_bracket || (prof_on && leaf == 0));
      if (prof_bracket) prof_last = support::profile_now_ns();
      close_frame(d, c, stats);
      if (d == 0) break;
      --d;
    } else if (next_binding(d, c)) {
      if (prof_on) {
        prof_.add_work(static_cast<int>(d), prof_kind_of(d), 1);
        if (d == 0) {
          // Outer-binding boundary: close the open bracket (the trailing
          // segment covers this binding's enumeration) and open a new one
          // every kProfileSampleEvery-th binding.
          if (prof_bracket) {
            const long long t = support::profile_now_ns();
            prof_.book_ns(0, prof_kind_of(0), t - prof_last, 1);
            prof_bracket = false;
          }
          if (prof_outer_++ % support::kProfileSampleEvery == 0) {
            prof_bracket = true;
            prof_last = support::profile_now_ns();
          }
        } else if (prof_bracket && d != leaf) {
          // Descending: the segment was level-d enumeration + probes.
          const long long t = support::profile_now_ns();
          prof_.book_ns(static_cast<int>(d), prof_kind_of(d),
                        t - prof_last, 1);
          prof_last = t;
        }
        // Per-tuple leaf bindings take no stamp; their time books at the
        // frame close below.
      }
      if (d == leaf) {
        ++c.tuples;
        sink();
      } else {
        ++d;
        open_frame(d);
      }
    } else {
      if (prof_bracket) {
        const long long t = support::profile_now_ns();
        prof_.book_ns(static_cast<int>(d), prof_kind_of(d), t - prof_last,
                      0);
        prof_last = t;
        if (d == 0) prof_bracket = false;
      }
      close_frame(d, c, stats);
      if (d == 0) break;
      --d;
    }
  }
}

namespace {

// Trace emission identical to the interpreter path — same span names, same
// per-level args — so the trace-reconciliation checks hold on either
// engine. The spans are synthetic intervals nested by depth (levels
// interleave; no level has a contiguous real interval).
template <class Body>
void traced(const LinkedPlan& lp, RunStats* stats, const Body& body) {
  if (!support::trace_enabled()) {
    body(stats);
    return;
  }
  RunStats local;
  RunStats* st = stats ? stats : &local;
  support::TraceSpan span("execute", "compiler");
  const double t0 = support::trace_now_us();
  body(st);
  const double t1 = support::trace_now_us();
  detail::emit_join_spans(*lp.plan, *st, t0, t1);
}

}  // namespace

void LinkedRunner::run(const Action& action, RunStats* stats) {
  traced(lp_, stats, [&](RunStats* st) {
    run_impl(
        [&] {
          // Actions see the per-relation leaf positions through Env; the
          // gather lives here so the mac fast path below can skip it.
          for (std::size_t r = 0; r < leaf_.size(); ++r)
            leaf_[r] = pos_[static_cast<std::size_t>(lp_.leaf_slot[r])];
          Env env{vars_, leaf_};
          action(env);
        },
        st);
  });
}

void LinkedRunner::run(const LinkedMac& mac, RunStats* stats) {
  // Resolve each operand's leaf position slot once per run: the sink reads
  // pos_ directly and skips the per-tuple leaf_ gather entirely.
  mac_pslots_.clear();
  for (const LinkedMac::Factor& f : mac.factors)
    mac_pslots_.push_back(static_cast<std::size_t>(lp_.leaf_slot[f.slot]));
  const std::size_t tslot =
      static_cast<std::size_t>(lp_.leaf_slot[mac.target_slot]);
  prepare_bulk(mac);
  prepare_chunk(mac);
  traced(lp_, stats, [&](RunStats* st) {
    run_impl(MacSink{*this, mac, tslot}, st);
  });
}

void execute(const Plan& plan, const relation::Query& q,
             const Action& action) {
  LinkedRunner runner(link_plan(plan, q));
  runner.run(action);
}

// ---- Parallel outer-level worksharing ---------------------------------

ParallelRunner::ParallelRunner(LinkedPlan lp, int threads)
    : threads_(std::max(1, threads)) {
  parallel_ = threads_ > 1 && lp.parallel_ok;
  const int nworkers = parallel_ ? threads_ : 1;
  workers_.reserve(static_cast<std::size_t>(nworkers));
  for (int w = 0; w < nworkers; ++w)
    workers_.push_back(std::make_unique<LinkedRunner>(lp));
  if (parallel_) support::shared_pool(threads_);  // spawn once, not per run
}

// The coordinator: deterministic chunk grid over the outer cursor range,
// guided assignment (workers pull the next chunk off one atomic), shards
// merged and flushed ONCE — counters, fan-out histograms, stats and the
// trace all reconcile exactly with a serial run of the same plan.
template <class MakeSink>
void ParallelRunner::run_parallel(MakeSink&& make_sink, RunStats* stats) {
  LinkedRunner& r0 = *workers_.front();
  const std::size_t L = r0.lp_.levels.size();
  traced(r0.lp_, stats, [&](RunStats* st) {
    // One latency sample per run covering the whole fan-out, booked by the
    // coordinator's single flush — same sample count as a serial run.
    const long long t0 = wall_now_ns();
    // The outer extent, probed once: every worker's level-0 cursor opens
    // on the same root parent, so worker 0's view of the range is THE
    // range the chunk grid must cover.
    index_t extent = 0;
    {
      const LinkedAccess& a = r0.lp_.levels[0].drivers[0];
      relation::Cursor cur;
      relation::CursorBuffer buf;
      a.level->begin_cursor(0, cur, buf);
      extent = cur.remaining();
    }
    // Chunk grid: fixed size, independent of which worker runs what, a
    // few chunks per worker so uneven rows still balance. Blocked levels
    // round the chunk up to a whole number of block rows so one thread
    // owns each block row's ptr/ind/vals segment (chunk_align = 1
    // otherwise).
    index_t chunk =
        std::max<index_t>(1, (extent + threads_ * 4 - 1) /
                                 std::max(1, threads_ * 4));
    const index_t align = r0.lp_.chunk_align;
    if (align > 1) chunk = ((chunk + align - 1) / align) * align;

    struct WorkerState {
      LinkedRunner::LocalCounters c;
      RunStats stats;
      long long outer_produced = 0;
      long long chunks = 0;
    };
    std::vector<WorkerState> states(workers_.size());
    std::atomic<index_t> next{0};
    const bool tracing = support::trace_enabled();

    support::shared_pool(threads_).run_slots(
        threads_, [&](int slot) {
          LinkedRunner& r = *workers_[static_cast<std::size_t>(slot)];
          WorkerState& ws = states[static_cast<std::size_t>(slot)];
          ws.stats.levels.assign(L, LevelRunStats{});
          r.chunk_outer_produced_ = &ws.outer_produced;
          if (support::profiling_enabled())
            r.prof_.levels = static_cast<int>(
                std::min<std::size_t>(L, support::kProfileMaxLevels));
          auto sink = make_sink(r);
          std::unique_ptr<support::TraceSpan> span;
          if (tracing) {
            support::trace_name_thread(
                1, support::trace_track().tid,
                "exec worker " + std::to_string(slot));
            span = std::make_unique<support::TraceSpan>("execute.worker",
                                                        "compiler");
          }
          while (true) {
            const index_t k = next.fetch_add(1, std::memory_order_relaxed);
            const index_t begin = k * chunk;
            if (begin >= extent) break;
            r.run_span(sink, ws.c, &ws.stats, begin, chunk);
            ++ws.chunks;
          }
          r.chunk_outer_produced_ = nullptr;
          if (span)
            span->arg("chunks", ws.chunks).arg("tuples", ws.c.tuples);
        });

    // Merge the shards: plain sums for counters and per-level stats, a
    // bucket-wise sum for the deeper fan-out shards, and the withheld
    // level-0 counts folded into the single per-run sample serial books.
    LinkedRunner::LocalCounters total;
    long long outer_produced = 0;
    RunStats merged;
    merged.levels.assign(L, LevelRunStats{});
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      const WorkerState& ws = states[w];
      total.tuples += ws.c.tuples;
      total.enumerated += ws.c.enumerated;
      total.merge_steps += ws.c.merge_steps;
      total.probe_hits += ws.c.probe_hits;
      total.probe_misses += ws.c.probe_misses;
      total.fill_ins += ws.c.fill_ins;
      total.merge_segment_bytes += ws.c.merge_segment_bytes;
      outer_produced += ws.outer_produced;
      for (std::size_t d = 0; d < L; ++d) {
        merged.levels[d].enumerated += ws.stats.levels[d].enumerated;
        merged.levels[d].produced += ws.stats.levels[d].produced;
      }
      if (w != 0) {
        for (std::size_t d = 0; d < L; ++d)
          for (std::size_t b = 0; b < r0.fanout_local_[d].size(); ++b)
            r0.fanout_local_[d][b] += workers_[w]->fanout_local_[d][b];
        for (auto& buckets : workers_[w]->fanout_local_)
          std::fill(buckets.begin(), buckets.end(), 0);
        // Profile shards merge exactly like the counter shards: plain
        // sums into the coordinator's scratch, flushed once below.
        r0.prof_.merge(workers_[w]->prof_);
        workers_[w]->prof_.reset(0);
      }
    }
    ++r0.fanout_local_[0][static_cast<std::size_t>(
        support::Log2Histogram::bucket_of(outer_produced))];
    r0.flush(total, nullptr, wall_now_ns() - t0);
    if (st) {
      st->tuples = total.tuples;
      st->levels = std::move(merged.levels);
    }
  });
}

void ParallelRunner::run(const Action& action, RunStats* stats) {
  if (!parallel_) {
    workers_.front()->run(action, stats);
    return;
  }
  run_parallel(
      [&](LinkedRunner& r) {
        return [&] {
          for (std::size_t rel = 0; rel < r.leaf_.size(); ++rel)
            r.leaf_[rel] =
                r.pos_[static_cast<std::size_t>(r.lp_.leaf_slot[rel])];
          Env env{r.vars_, r.leaf_};
          action(env);
        };
      },
      stats);
}

void ParallelRunner::run(const LinkedMac& mac, RunStats* stats) {
  if (!parallel_) {
    workers_.front()->run(mac, stats);
    return;
  }
  run_parallel(
      [&](LinkedRunner& r) {
        // Per-worker copy of the serial mac fast path: operand leaf slots
        // and the bulk-drain plan resolved once per run per worker.
        r.mac_pslots_.clear();
        for (const LinkedMac::Factor& f : mac.factors)
          r.mac_pslots_.push_back(
              static_cast<std::size_t>(r.lp_.leaf_slot[f.slot]));
        const std::size_t tslot =
            static_cast<std::size_t>(r.lp_.leaf_slot[mac.target_slot]);
        r.prepare_bulk(mac);
        r.prepare_chunk(mac);
        return LinkedRunner::MacSink{r, mac, tslot};
      },
      stats);
}

void execute_parallel(const Plan& plan, const relation::Query& q,
                      const Action& action, int threads) {
  ParallelRunner runner(link_plan(plan, q), threads);
  runner.run(action);
}

}  // namespace bernoulli::compiler
