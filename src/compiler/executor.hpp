// Plan execution: the reference interpreter and the linked cursor engine.
//
// The interpreter is the compiler's reference semantics — every
// specialized kernel and every emitted program must compute exactly what
// the interpreter computes. Since the linking stage (compiler/link.hpp)
// landed, `execute()` routes through link+run: the plan is lowered once
// into a LinkedPlan (names -> slots, accesses -> flat cursor/search
// records) and run by the cursor executor in exec_linked.cpp. The
// tree-walking interpreter stays available as `execute_interpreted` for
// differential testing; both engines produce bitwise-identical results
// and identical executor.* counters.
#pragma once

#include <functional>

#include "compiler/plan.hpp"

namespace bernoulli::compiler {

/// Bindings visible to the innermost action.
struct Env {
  /// Value of each loop variable, indexed like Query::vars.
  std::span<const index_t> var_value;

  /// Leaf (deepest-level) position of each relation, indexed like
  /// Query::relations; addresses the relation's value field.
  std::span<const index_t> leaf_pos;
};

using Action = std::function<void(const Env&)>;

/// Per-plan-level work totals of one run (what the trace spans and the
/// differential tests consume).
struct LevelRunStats {
  long long enumerated = 0;  // candidate bindings the level's drivers saw
  long long produced = 0;    // bindings that survived the probes
};

struct RunStats {
  long long tuples = 0;  // action invocations
  std::vector<LevelRunStats> levels;
};

/// Runs the plan, invoking `action` once per surviving iteration (i.e. per
/// tuple of Q_sparse). Positions for every relation are fully resolved when
/// the action fires. Links the plan and runs the cursor executor; use
/// LinkedRunner (compiler/link.hpp) directly to amortize the linking over
/// repeated runs.
void execute(const Plan& plan, const relation::Query& q, const Action& action);

/// The original tree-walking interpreter (push callbacks, recursion).
/// Kept as the differential-testing reference for the linked engine.
void execute_interpreted(const Plan& plan, const relation::Query& q,
                         const Action& action, RunStats* stats = nullptr);

/// Convenience action: target.value += scale * PRODUCT(factor values) — the
/// sum-of-products statement form that covers the paper's DOANY kernels.
Action multiply_accumulate(const relation::Query& q, index_t target_rel,
                           std::vector<index_t> factor_rels,
                           value_t scale = 1.0);

namespace detail {
/// Shared trace helper: emits the per-level "join <var>" spans (synthetic
/// nested intervals over [t0_us, t1_us]) from one run's stats. Both
/// engines call this so traces are engine-independent.
void emit_join_spans(const Plan& plan, const RunStats& stats, double t0_us,
                     double t1_us);
}  // namespace detail

}  // namespace bernoulli::compiler
