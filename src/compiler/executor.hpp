// Plan interpreter: evaluates a Plan against live relation views.
//
// The interpreter is the compiler's reference semantics — every
// specialized kernel and every emitted program must compute exactly what
// the interpreter computes. Benchmarks use the kernel library; tests
// cross-check the two.
#pragma once

#include <functional>

#include "compiler/plan.hpp"

namespace bernoulli::compiler {

/// Bindings visible to the innermost action.
struct Env {
  /// Value of each loop variable, indexed like Query::vars.
  std::span<const index_t> var_value;

  /// Leaf (deepest-level) position of each relation, indexed like
  /// Query::relations; addresses the relation's value field.
  std::span<const index_t> leaf_pos;
};

using Action = std::function<void(const Env&)>;

/// Runs the plan, invoking `action` once per surviving iteration (i.e. per
/// tuple of Q_sparse). Positions for every relation are fully resolved when
/// the action fires.
void execute(const Plan& plan, const relation::Query& q, const Action& action);

/// Convenience action: target.value += scale * PRODUCT(factor values) — the
/// sum-of-products statement form that covers the paper's DOANY kernels.
Action multiply_accumulate(const relation::Query& q, index_t target_rel,
                           std::vector<index_t> factor_rels,
                           value_t scale = 1.0);

}  // namespace bernoulli::compiler
