// Pipeline-wide runtime counters (the observability layer).
//
// A process-global registry of named monotonic counters, threaded through
// the join executor (probes, merge steps, tuples), the relation views
// (hash probes, accumulator fill-ins), the communication schedules and the
// simulated machine (per-phase messages/bytes/virtual time). Counter
// lookups are mutex-protected, but the returned Counter& is stable for the
// life of the process, so hot paths pay one lookup (function-local static)
// and then a relaxed atomic add per event.
//
// Phases: instrumented communication and virtual-time counters are split
// by a per-thread PHASE TAG ("main" by default; the inspector/executor
// paths scope it to "inspector"/"executor"), which is what lets a bench
// attribute traffic to the inspector vs. the executor and reconcile the
// split against runtime::CommStats totals.
#pragma once

#include <atomic>
#include <map>
#include <string>
#include <string_view>

namespace bernoulli::support {

/// Monotonic event counter. Relaxed atomics: totals are exact, ordering
/// between counters is not promised.
class Counter {
 public:
  void add(long long delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  long long value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long long> v_{0};
};

/// Accumulated seconds (virtual or wall); same contract as Counter.
class TimeCounter {
 public:
  void add(double seconds) { v_.fetch_add(seconds, std::memory_order_relaxed); }
  double seconds() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Registry lookup; registers the counter on first use. The reference
/// stays valid for the life of the process.
Counter& counter(const std::string& name);
TimeCounter& time_counter(const std::string& name);

struct CountersSnapshot {
  std::map<std::string, long long> counts;
  std::map<std::string, double> seconds;
};

/// Snapshot of every registered counter (zero-valued ones included).
CountersSnapshot counters_snapshot();

/// Zeroes every registered counter. Registered names (and addresses)
/// survive the reset — tests use reset + run + snapshot.
void counters_reset();

/// Renders a snapshot as an aligned text block. Deterministic: one line
/// per counter, sorted by name (count counters first, then time counters),
/// two spaces of padding to the widest included name. `skip_zero` filters
/// zero-valued counters — with a long-lived registry most names are noise
/// for any single run, so reports pass true.
std::string counters_text(bool skip_zero = false);

/// JSON object {"counts": {...}, "seconds": {...}}, sorted by name.
std::string counters_json(int indent = 0);

/// Per-thread phase tag, prepended as "comm.<phase>." / "vtime.<phase>."
/// by the instrumented communication layer. Defaults to "main". The tag
/// can ONLY be changed through PhaseScope: an exception-safe RAII scope is
/// the one shape that cannot leak a phase past its region (a manual
/// set/restore pair would stick on an early return or a throw, silently
/// mis-attributing every later counter).
const std::string& counter_phase();

/// RAII phase scope: installs `phase` for this thread, restores the
/// previous phase on destruction (including unwinding).
class PhaseScope {
 public:
  explicit PhaseScope(std::string phase);
  ~PhaseScope();
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  std::string saved_;
};

/// Phase-qualified lookups: counter("comm." + phase() + "." + suffix).
Counter& phase_counter(std::string_view family, std::string_view suffix);
TimeCounter& phase_time_counter(std::string_view family,
                                std::string_view suffix);

}  // namespace bernoulli::support
