// Timers.
//
// WallTimer measures elapsed real time; ThreadCpuTimer measures CPU time
// consumed by the calling thread only. The simulated distributed runtime
// (src/runtime) charges compute segments with ThreadCpuTimer so that
// per-rank "virtual time" is insensitive to how the host OS interleaves the
// rank threads on a small number of cores.
#pragma once

#include <ctime>

#include <chrono>

namespace bernoulli {

class WallTimer {
 public:
  WallTimer() { reset(); }

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

class ThreadCpuTimer {
 public:
  ThreadCpuTimer() { reset(); }

  void reset() { start_ = now(); }

  /// CPU seconds consumed by this thread since construction/reset.
  double seconds() const { return now() - start_; }

  static double now() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
  }

 private:
  double start_ = 0.0;
};

}  // namespace bernoulli
