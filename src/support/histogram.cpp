#include "support/histogram.hpp"

#include <deque>
#include <mutex>
#include <sstream>

#include "support/json_writer.hpp"

namespace bernoulli::support {

namespace {

// Leaked on purpose, same policy as the counter registry.
struct Registry {
  std::mutex mu;
  std::map<std::string, Log2Histogram*> by_name;
  std::deque<Log2Histogram> storage;
};

Registry& reg() {
  static Registry* r = new Registry();
  return *r;
}

}  // namespace

std::string Log2Histogram::bucket_label(int i) {
  if (i == 0) return "0";
  if (i == 1) return "1";
  long long lo = 1LL << (i - 1);
  if (i == kBuckets - 1) return std::to_string(lo) + "+";
  long long hi = (1LL << i) - 1;
  return std::to_string(lo) + "-" + std::to_string(hi);
}

Log2Histogram& histogram(const std::string& name) {
  auto& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  auto it = r.by_name.find(name);
  if (it != r.by_name.end()) return *it->second;
  r.storage.emplace_back();
  r.by_name.emplace(name, &r.storage.back());
  return r.storage.back();
}

std::map<std::string, std::vector<long long>> histograms_snapshot() {
  std::map<std::string, std::vector<long long>> snap;
  auto& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  for (const auto& [name, h] : r.by_name) {
    std::vector<long long> buckets(Log2Histogram::kBuckets);
    for (int i = 0; i < Log2Histogram::kBuckets; ++i)
      buckets[static_cast<std::size_t>(i)] = h->bucket(i);
    snap.emplace(name, std::move(buckets));
  }
  return snap;
}

void histograms_reset() {
  auto& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  for (auto& [name, h] : r.by_name) h->reset();
}

std::string histograms_text(bool include_empty) {
  auto snap = histograms_snapshot();
  std::ostringstream os;
  for (const auto& [name, buckets] : snap) {
    long long total = 0;
    for (long long c : buckets) total += c;
    if (total == 0 && !include_empty) continue;
    os << name << "  (" << total << " samples)\n";
    for (int i = 0; i < Log2Histogram::kBuckets; ++i) {
      long long c = buckets[static_cast<std::size_t>(i)];
      if (c == 0) continue;
      std::string label = Log2Histogram::bucket_label(i);
      os << "  " << label << std::string(16 - std::min<std::size_t>(
                                             16, label.size()), ' ')
         << c << "\n";
    }
  }
  if (os.str().empty()) os << "(no histogram samples)\n";
  return os.str();
}

std::string histograms_json(int indent) {
  auto snap = histograms_snapshot();
  JsonWriter w(indent);
  w.begin_object();
  for (const auto& [name, buckets] : snap) {
    long long total = 0;
    for (long long c : buckets) total += c;
    if (total == 0) continue;
    w.key(name).begin_object();
    w.key("buckets").begin_array();
    for (int i = 0; i < Log2Histogram::kBuckets; ++i) {
      long long c = buckets[static_cast<std::size_t>(i)];
      if (c == 0) continue;
      w.begin_object();
      w.key("range").value(Log2Histogram::bucket_label(i));
      w.key("count").value(c);
      w.end_object();
    }
    w.end_array();
    w.key("total").value(total);
    w.end_object();
  }
  w.end_object();
  return w.str();
}

}  // namespace bernoulli::support
