#include "support/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#include "support/error.hpp"
#include "support/histogram.hpp"

namespace bernoulli::support {

namespace {

struct TraceEvent {
  std::string name;
  const char* cat = "";
  char ph = 'X';        // X / i / C / s / f / M
  double ts = 0.0;      // microseconds
  double dur = 0.0;     // X only
  int pid = 1;
  int tid = 0;
  long long id = -1;    // flow id; -1 = none
  std::string args;     // pre-rendered JSON object; empty = none
};

// Leaked on purpose (same policy as the counter registry): thread-local
// pointers into the registry stay valid for the whole process lifetime
// even if threads outlive static destruction order.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
};

struct Registry {
  std::mutex mu;
  std::vector<ThreadBuffer*> buffers;
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_comm_enabled{false};
std::atomic<long long> g_flow_id{1};
std::atomic<int> g_next_pid{100};  // 1 is the host; machines start at 100
std::atomic<int> g_next_host_tid{1};
std::atomic<long long> g_wall_t0_ns{0};

struct Tls {
  ThreadBuffer* buf = nullptr;
  TraceTrack track{1, 0};
  bool tid_assigned = false;
  std::function<double()> clock;  // empty = wall clock
};

thread_local Tls t_tls;

long long steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ThreadBuffer& my_buffer() {
  if (t_tls.buf == nullptr) {
    t_tls.buf = new ThreadBuffer();
    auto& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    r.buffers.push_back(t_tls.buf);
  }
  return *t_tls.buf;
}

TraceTrack my_track() {
  if (!t_tls.tid_assigned) {
    t_tls.track.pid = 1;
    t_tls.track.tid = g_next_host_tid.fetch_add(1);
    t_tls.tid_assigned = true;
  }
  return t_tls.track;
}

void record(TraceEvent ev) {
  ThreadBuffer& b = my_buffer();
  std::lock_guard<std::mutex> lk(b.mu);
  b.events.push_back(std::move(ev));
}

// ---- comm matrix state -------------------------------------------------

struct CommCell {
  long long messages = 0;
  long long bytes = 0;
};

struct CommState {
  std::mutex mu;
  std::map<std::pair<int, int>, CommCell> cells;
};

CommState& comm_state() {
  static CommState* s = new CommState();
  return *s;
}

}  // namespace

bool trace_enabled() { return g_enabled.load(std::memory_order_relaxed); }

void trace_start() {
  auto& r = registry();
  {
    std::lock_guard<std::mutex> lk(r.mu);
    for (ThreadBuffer* b : r.buffers) {
      std::lock_guard<std::mutex> blk(b->mu);
      b->events.clear();
    }
  }
  comm_record_start();
  g_wall_t0_ns.store(steady_now_ns());
  g_enabled.store(true, std::memory_order_relaxed);
}

void trace_stop() { g_enabled.store(false, std::memory_order_relaxed); }

bool comm_record_enabled() {
  return g_comm_enabled.load(std::memory_order_relaxed);
}

void comm_record_start() {
  auto& s = comm_state();
  {
    std::lock_guard<std::mutex> lk(s.mu);
    s.cells.clear();
  }
  g_comm_enabled.store(true, std::memory_order_relaxed);
}

void comm_record_stop() {
  g_comm_enabled.store(false, std::memory_order_relaxed);
}

TraceTrack trace_track() { return my_track(); }

double trace_now_us() {
  if (t_tls.clock) return t_tls.clock();
  return static_cast<double>(steady_now_ns() - g_wall_t0_ns.load()) * 1e-3;
}

TraceTrackScope::TraceTrackScope(int pid, int tid,
                                 std::function<double()> now_us)
    : saved_track_(my_track()), saved_clock_(std::move(t_tls.clock)) {
  t_tls.track = {pid, tid};
  t_tls.tid_assigned = true;
  t_tls.clock = std::move(now_us);
}

TraceTrackScope::~TraceTrackScope() {
  t_tls.track = saved_track_;
  t_tls.clock = std::move(saved_clock_);
}

int trace_register_process(const std::string& name) {
  int pid = g_next_pid.fetch_add(1);
  if (trace_enabled()) {
    JsonWriter args;
    args.begin_object().key("name").value(name).end_object();
    TraceEvent ev;
    ev.name = "process_name";
    ev.cat = "__metadata";
    ev.ph = 'M';
    ev.pid = pid;
    ev.tid = 0;
    ev.args = args.str();
    record(std::move(ev));
  }
  return pid;
}

void trace_name_thread(int pid, int tid, const std::string& name) {
  if (!trace_enabled()) return;
  JsonWriter args;
  args.begin_object().key("name").value(name).end_object();
  TraceEvent ev;
  ev.name = "thread_name";
  ev.cat = "__metadata";
  ev.ph = 'M';
  ev.pid = pid;
  ev.tid = tid;
  ev.args = args.str();
  record(std::move(ev));
}

TraceSpan::TraceSpan(std::string name, const char* cat)
    : active_(trace_enabled()), name_(std::move(name)), cat_(cat) {
  if (active_) t0_ = trace_now_us();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  double t1 = trace_now_us();
  TraceEvent ev;
  ev.name = std::move(name_);
  ev.cat = cat_;
  ev.ph = 'X';
  ev.ts = t0_;
  ev.dur = std::max(0.0, t1 - t0_);
  TraceTrack tr = my_track();
  ev.pid = tr.pid;
  ev.tid = tr.tid;
  if (nargs_ > 0) {
    args_.end_object();
    ev.args = args_.str();
  }
  record(std::move(ev));
}

TraceSpan& TraceSpan::arg(std::string_view key, long long v) {
  if (!active_) return *this;
  if (nargs_++ == 0) args_.begin_object();
  args_.key(key).value(v);
  return *this;
}

TraceSpan& TraceSpan::arg(std::string_view key, double v) {
  if (!active_) return *this;
  if (nargs_++ == 0) args_.begin_object();
  args_.key(key).value(v);
  return *this;
}

TraceSpan& TraceSpan::arg(std::string_view key, std::string_view v) {
  if (!active_) return *this;
  if (nargs_++ == 0) args_.begin_object();
  args_.key(key).value(v);
  return *this;
}

void TraceSpan::flow_out(long long id) {
  if (!active_) return;
  TraceTrack tr = my_track();
  trace_emit_flow(/*start=*/true, id, trace_now_us(), tr.pid, tr.tid);
}

void trace_instant(std::string name, const char* cat,
                   std::string args_json) {
  if (!trace_enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.cat = cat;
  ev.ph = 'i';
  ev.ts = trace_now_us();
  TraceTrack tr = my_track();
  ev.pid = tr.pid;
  ev.tid = tr.tid;
  ev.args = std::move(args_json);
  record(std::move(ev));
}

void trace_counter(std::string name, double value) {
  if (!trace_enabled()) return;
  TraceTrack tr = my_track();
  trace_emit_counter(std::move(name), value, trace_now_us(), tr.pid, tr.tid);
}

long long trace_new_flow_id() { return g_flow_id.fetch_add(1); }

void trace_emit_complete(std::string name, const char* cat, double ts_us,
                         double dur_us, int pid, int tid,
                         std::string args_json) {
  if (!trace_enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.cat = cat;
  ev.ph = 'X';
  ev.ts = ts_us;
  ev.dur = std::max(0.0, dur_us);
  ev.pid = pid;
  ev.tid = tid;
  ev.args = std::move(args_json);
  record(std::move(ev));
}

void trace_emit_flow(bool start, long long id, double ts_us, int pid,
                     int tid) {
  if (!trace_enabled()) return;
  TraceEvent ev;
  ev.name = "msg";
  ev.cat = "comm";
  ev.ph = start ? 's' : 'f';
  ev.ts = ts_us;
  ev.pid = pid;
  ev.tid = tid;
  ev.id = id;
  record(std::move(ev));
}

void trace_emit_counter(std::string name, double value, double ts_us,
                        int pid, int tid) {
  if (!trace_enabled()) return;
  JsonWriter args;
  args.begin_object().key("value").value(value).end_object();
  TraceEvent ev;
  ev.name = std::move(name);
  ev.cat = "counter";
  ev.ph = 'C';
  ev.ts = ts_us;
  ev.pid = pid;
  ev.tid = tid;
  ev.args = args.str();
  record(std::move(ev));
}

std::string trace_json(int indent) {
  // Snapshot every buffer, then order: metadata first, then by timestamp
  // (Perfetto tolerates unsorted input, but sorted output is stable and
  // diff-friendly).
  std::vector<TraceEvent> all;
  {
    auto& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    for (ThreadBuffer* b : r.buffers) {
      std::lock_guard<std::mutex> blk(b->mu);
      all.insert(all.end(), b->events.begin(), b->events.end());
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if ((a.ph == 'M') != (b.ph == 'M')) return a.ph == 'M';
                     return a.ts < b.ts;
                   });

  JsonWriter w(indent);
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const TraceEvent& ev : all) {
    w.begin_object();
    w.key("name").value(ev.name);
    w.key("cat").value(ev.cat);
    w.key("ph").value(std::string_view(&ev.ph, 1));
    w.key("ts").value(ev.ts);
    if (ev.ph == 'X') w.key("dur").value(ev.dur);
    w.key("pid").value(ev.pid);
    w.key("tid").value(ev.tid);
    if (ev.id >= 0) w.key("id").value(ev.id);
    // Flow ends bind to the enclosing slice at their timestamp.
    if (ev.ph == 'f') w.key("bp").value("e");
    if (!ev.args.empty()) w.key("args").raw(ev.args);
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit").value("ms");
  w.key("bernoulli").begin_object();
  w.key("schema").value("bernoulli.trace.v1");
  w.key("comm_matrix").raw(comm_matrix_json());
  w.key("histograms").raw(histograms_json());
  w.end_object();
  w.end_object();
  return w.str();
}

void trace_write(const std::string& path, int indent) {
  std::ofstream out(path);
  BERNOULLI_CHECK_MSG(out.good(), "cannot open trace file " << path);
  out << trace_json(indent) << "\n";
  BERNOULLI_CHECK_MSG(out.good(), "failed writing trace file " << path);
}

void comm_matrix_record(int src, int dst, long long bytes) {
  auto& s = comm_state();
  std::lock_guard<std::mutex> lk(s.mu);
  CommCell& c = s.cells[{src, dst}];
  ++c.messages;
  c.bytes += bytes;
}

CommMatrixSnapshot comm_matrix_snapshot() {
  CommMatrixSnapshot snap;
  auto& s = comm_state();
  std::lock_guard<std::mutex> lk(s.mu);
  for (const auto& [key, cell] : s.cells)
    snap.nprocs = std::max(snap.nprocs,
                           std::max(key.first, key.second) + 1);
  snap.messages.assign(
      static_cast<std::size_t>(snap.nprocs) * snap.nprocs, 0);
  snap.bytes.assign(static_cast<std::size_t>(snap.nprocs) * snap.nprocs, 0);
  for (const auto& [key, cell] : s.cells) {
    auto idx = static_cast<std::size_t>(key.first * snap.nprocs + key.second);
    snap.messages[idx] = cell.messages;
    snap.bytes[idx] = cell.bytes;
    snap.total_messages += cell.messages;
    snap.total_bytes += cell.bytes;
  }
  return snap;
}

std::string comm_matrix_text() {
  CommMatrixSnapshot snap = comm_matrix_snapshot();
  std::ostringstream os;
  if (snap.nprocs == 0) {
    os << "communication matrix: no point-to-point messages recorded\n";
    return os.str();
  }
  const int P = snap.nprocs;
  auto matrix = [&](const char* title,
                    const std::vector<long long>& cells) {
    // Column width: widest cell or sum.
    std::size_t width = 7;
    for (long long v : cells)
      width = std::max(width, std::to_string(v).size());
    std::vector<long long> colsum(static_cast<std::size_t>(P), 0);
    os << title << " (rows = src, cols = dst):\n";
    os << "  src\\dst";
    for (int q = 0; q < P; ++q) {
      std::string h = std::to_string(q);
      os << "  " << std::string(width - h.size(), ' ') << h;
    }
    os << "      sum\n";
    for (int r = 0; r < P; ++r) {
      std::string h = std::to_string(r);
      os << "  " << std::string(7 - std::min<std::size_t>(7, h.size()), ' ')
         << h;
      long long rowsum = 0;
      for (int q = 0; q < P; ++q) {
        long long v = cells[static_cast<std::size_t>(r * P + q)];
        rowsum += v;
        colsum[static_cast<std::size_t>(q)] += v;
        std::string cell = std::to_string(v);
        os << "  " << std::string(width - cell.size(), ' ') << cell;
      }
      std::string s = std::to_string(rowsum);
      os << "  " << std::string(7 - std::min<std::size_t>(7, s.size()), ' ')
         << s << "\n";
    }
    os << "      sum";
    long long total = 0;
    for (int q = 0; q < P; ++q) {
      total += colsum[static_cast<std::size_t>(q)];
      std::string s = std::to_string(colsum[static_cast<std::size_t>(q)]);
      os << "  " << std::string(width - s.size(), ' ') << s;
    }
    std::string s = std::to_string(total);
    os << "  " << std::string(7 - std::min<std::size_t>(7, s.size()), ' ')
       << s << "\n";
  };
  matrix("messages", snap.messages);
  os << "\n";
  matrix("bytes", snap.bytes);
  os << "\ntotal: " << snap.total_messages << " messages, "
     << snap.total_bytes << " bytes\n";
  return os.str();
}

std::string comm_matrix_json(int indent) {
  CommMatrixSnapshot snap = comm_matrix_snapshot();
  JsonWriter w(indent);
  w.begin_object();
  w.key("nprocs").value(snap.nprocs);
  auto rows = [&](const std::vector<long long>& cells) {
    w.begin_array();
    for (int r = 0; r < snap.nprocs; ++r) {
      w.begin_array();
      for (int q = 0; q < snap.nprocs; ++q)
        w.value(cells[static_cast<std::size_t>(r * snap.nprocs + q)]);
      w.end_array();
    }
    w.end_array();
  };
  w.key("messages");
  rows(snap.messages);
  w.key("bytes");
  rows(snap.bytes);
  w.key("total_messages").value(snap.total_messages);
  w.key("total_bytes").value(snap.total_bytes);
  w.end_object();
  return w.str();
}

}  // namespace bernoulli::support
