// Per-level time attribution: the fifth observability layer.
//
// The counters say how much join work a run did, the metrics registry says
// how long runs take in distribution — this layer says WHERE the time went:
// which plan level, under which drain kind (per-tuple, merge, bulk, blocked,
// sliced), plus coarse phase attribution (inspector / exchange / compute) on
// the distributed path. One schema covers every engine rung: the interpreter
// and the linked engine feed a per-runner `ProfileScratch` flushed once per
// run; the specialized `.so` backend reports per-level `lvl_ns` slots across
// its ABI and the host commits the same shape (`docs/CODEGEN.md`).
//
// The overhead model (documented in docs/OBSERVABILITY.md):
//
//  - WORK counts — one plain array increment per binding / one per drained
//    range — are exact and always on while profiling is enabled. They are
//    integer sums of per-event contributions, so a serial run and a
//    `--threads=N` run produce bitwise-identical work counts (the same
//    shard-and-merge discipline as the counter registry).
//  - TIME is *sampled*: every `kProfileSampleEvery`-th outer-level binding
//    opens a bracket; inside a bracket the engine takes one steady_clock
//    stamp per level transition (never per tuple) and books the elapsed
//    segment to the level it was executing. Bulk/blocked/sliced drains book
//    one interval per drained range. At flush, the calibrated timer cost is
//    subtracted per sample and the sampled nanoseconds are extrapolated by
//    the exact work ratio (`work / sampled_work`). Sampling keeps the
//    profiler under the 2% wall budget asserted by tests/profile_test.cpp;
//    the price is that ns values are estimates and — unlike the work
//    counts — not bitwise-reproducible across thread counts (chunk
//    boundaries reset the sampling phase).
//  - Inclusive time is accumulated alongside self time: every sampled
//    segment booked to level d is also added to the inclusive slot of every
//    level on the current stack (depth <= 3 in practice), so the raw
//    sampled values obey `incl[d] == sum_kind self[d][*] + incl[d+1]`
//    exactly — the invariant tests/profile_test.cpp asserts to catch
//    shard-merge and flush bugs.
//
// Surfaces: `profile_json()` (schema `bernoulli.profile.v1`, embedded in
// run reports), `profile_collapsed()` (collapsed-stack flamegraph lines,
// `plan;level0;...;level<d>;<kind> <self_ns>`, loadable in speedscope /
// flamegraph.pl), and `analysis/attribution.hpp` for tables and diffs.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bernoulli::support {

// ---------------------------------------------------------------------------
// Kinds, phases, limits
// ---------------------------------------------------------------------------

/// Drain kinds a level's time can be attributed to. kProfTuple is the
/// per-tuple cursor path (and all non-leaf enumeration), kProfMerge the
/// k-finger merge join, the other three the bulk leaf-range drains.
enum : int {
  kProfTuple = 0,
  kProfMerge,
  kProfBulk,
  kProfBlocked,
  kProfSliced,
  kProfKinds
};

/// Distributed-path phases (exact, unsampled intervals).
enum : int {
  kProfPhaseInspector = 0,
  kProfPhaseExchange,
  kProfPhaseCompute,
  kProfPhases
};

const char* profile_kind_name(int kind);    // "tuple", "merge", ...
const char* profile_phase_name(int phase);  // "inspector", ...

/// Deepest plan level the profiler attributes individually. Plans here are
/// 2-3 levels; anything deeper clamps into the last slot.
inline constexpr int kProfileMaxLevels = 8;

/// Sampling period: every K-th outer-level binding is time-bracketed.
inline constexpr long long kProfileSampleEvery = 64;

// ---------------------------------------------------------------------------
// Global switch + timer calibration
// ---------------------------------------------------------------------------

/// Process-wide profiling toggle (mirrors `set_bulk_drain`). Off by
/// default: every instrumentation site is gated on one relaxed load.
void set_profiling(bool on);
bool profiling_enabled();

/// Monotonic nanoseconds (steady_clock) — the profiler's one clock.
long long profile_now_ns();

/// Measured cost of one profile_now_ns() call, calibrated once per process
/// on first use and subtracted per sample at flush time.
long long profile_timer_cost_ns();

// ---------------------------------------------------------------------------
// Per-runner scratch
// ---------------------------------------------------------------------------

/// Plain per-run accumulator — no atomics; lives in the runner (or one per
/// ParallelRunner worker, merged before the single flush).
struct ProfileScratch {
  int levels = 0;
  long long work[kProfileMaxLevels][kProfKinds] = {};
  long long sampled_work[kProfileMaxLevels][kProfKinds] = {};
  long long sampled_ns[kProfileMaxLevels][kProfKinds] = {};
  long long samples[kProfileMaxLevels][kProfKinds] = {};
  long long incl_ns[kProfileMaxLevels] = {};

  void reset(int num_levels);
  void merge(const ProfileScratch& other);
  bool any() const;

  static int clamp_level(int level) {
    return level < 0 ? 0
                     : (level >= kProfileMaxLevels ? kProfileMaxLevels - 1
                                                   : level);
  }

  /// Exact event count (always on while profiling): bindings for
  /// tuple/merge kinds, drained elements for bulk/blocked/sliced.
  void add_work(int level, int kind, long long n) {
    work[clamp_level(level)][kind] += n;
  }

  /// Sampled-bracket segment: self time at (level, kind), inclusive time
  /// on every enclosing level. `work_in_segment` feeds the extrapolation
  /// denominator.
  void book_ns(int level, int kind, long long ns, long long work_in_segment) {
    const int d = clamp_level(level);
    sampled_ns[d][kind] += ns;
    samples[d][kind] += 1;
    sampled_work[d][kind] += work_in_segment;
    for (int up = 0; up <= d; ++up) incl_ns[up] += ns;
  }
};

// ---------------------------------------------------------------------------
// Flush: compensate, extrapolate, commit
// ---------------------------------------------------------------------------

/// What one run commits to the global profile registry. `self_ns` holds the
/// compensated + extrapolated estimates; the raw sampled values ride along
/// so the self/inclusive invariant stays checkable after the merge.
struct ProfileFlush {
  int levels = 0;
  long long self_ns[kProfileMaxLevels][kProfKinds] = {};
  long long work[kProfileMaxLevels][kProfKinds] = {};
  long long samples[kProfileMaxLevels][kProfKinds] = {};
  long long raw_ns[kProfileMaxLevels][kProfKinds] = {};
  long long raw_incl_ns[kProfileMaxLevels] = {};
  long long wall_ns = 0;
};

/// Compensation + extrapolation of a scratch block:
///   comp = max(0, sampled_ns - samples * timer_cost)
///   self = comp * work / sampled_work   (comp when never sampled)
ProfileFlush profile_estimate(const ProfileScratch& s, long long wall_ns);

/// Adds a flush into the global registry (one mutex acquisition per run).
void profile_commit(const ProfileFlush& f);

/// profile_commit(profile_estimate(s, wall_ns)) — the once-per-run flush
/// the engines call; a no-op when the scratch saw no work.
void profile_flush(const ProfileScratch& s, long long wall_ns);

/// Exact phase interval on the distributed path.
void profile_phase_add(int phase, long long ns);

/// RAII phase bracket; books nothing when profiling is off.
class ProfilePhaseScope {
 public:
  explicit ProfilePhaseScope(int phase);
  ~ProfilePhaseScope();
  ProfilePhaseScope(const ProfilePhaseScope&) = delete;
  ProfilePhaseScope& operator=(const ProfilePhaseScope&) = delete;

 private:
  int phase_;
  long long t0_;
  bool on_;
};

// ---------------------------------------------------------------------------
// ProfileClock — switch-clock for the recursive interpreter
// ---------------------------------------------------------------------------

/// Bracketed switch-clock over a recursion: `maybe_open(level)` samples
/// every K-th invocation of the outer-binding level; while open, `enter`
/// books the elapsed segment to the parent level and `leave` to the level
/// being left, so each level accumulates self time with one stamp per
/// transition. The linked engine open-codes the same discipline in its
/// flat level-stack loop.
class ProfileClock {
 public:
  void begin(ProfileScratch* scratch) {
    scratch_ = scratch;
    open_ = false;
    outer_ = 0;
  }
  bool active() const { return open_; }

  /// Every kProfileSampleEvery-th call opens a bracket (stamp only).
  bool maybe_open() {
    if (outer_++ % kProfileSampleEvery != 0) return false;
    open_ = true;
    last_ = profile_now_ns();
    return true;
  }

  /// Entering level `d` from its parent: the segment since the last stamp
  /// was parent work.
  void enter(int d, int parent_kind) {
    const long long t = profile_now_ns();
    if (d > 0) scratch_->book_ns(d - 1, parent_kind, t - last_, 0);
    last_ = t;
  }

  /// Leaving level `d`: the segment since the last stamp was level-d work.
  void leave(int d, int kind, long long work_in_segment) {
    const long long t = profile_now_ns();
    scratch_->book_ns(d, kind, t - last_, work_in_segment);
    last_ = t;
  }

  /// Ends the bracket after the final leave().
  void close() { open_ = false; }

 private:
  ProfileScratch* scratch_ = nullptr;
  long long last_ = 0;
  long long outer_ = 0;
  bool open_ = false;
};

// ---------------------------------------------------------------------------
// Registry snapshot + exports
// ---------------------------------------------------------------------------

struct ProfileSnapshot {
  int levels = 0;
  long long self_ns[kProfileMaxLevels][kProfKinds] = {};
  long long work[kProfileMaxLevels][kProfKinds] = {};
  long long samples[kProfileMaxLevels][kProfKinds] = {};
  long long raw_ns[kProfileMaxLevels][kProfKinds] = {};
  long long raw_incl_ns[kProfileMaxLevels] = {};
  long long phase_ns[kProfPhases] = {};
  long long phase_calls[kProfPhases] = {};
  long long runs = 0;
  long long wall_ns = 0;
  long long timer_cost_ns = 0;

  /// Estimated self time of one level summed over kinds.
  long long level_self_ns(int level) const;
  /// Estimated inclusive time: this level's self plus everything deeper.
  long long level_incl_ns(int level) const;
  /// Sum of every level's self time (reconciled against execute.wall_ns
  /// by `bench_table2_executor --check` and tests/profile_test.cpp).
  long long total_self_ns() const;
  /// Exact work at one level summed over kinds.
  long long level_work(int level) const;
};

ProfileSnapshot profile_snapshot();
void profile_reset();

/// The registry as a `bernoulli.profile.v1` JSON document (embedded in run
/// reports as `profile_registry`; "{}" when nothing was profiled).
std::string profile_json();

/// Collapsed-stack flamegraph lines from the current registry:
///   plan;level0;...;level<d>;<kind> <self_ns>
/// with phases as `plan;<phase> <ns>`. Empty string when nothing profiled.
std::string profile_collapsed();

/// Parses collapsed-stack text back into (frames, count) pairs; returns
/// false on any malformed line. The round-trip partner of
/// profile_collapsed(), locked by tests/profile_test.cpp.
bool profile_parse_collapsed(
    std::string_view text,
    std::vector<std::pair<std::string, long long>>* out);

}  // namespace bernoulli::support
