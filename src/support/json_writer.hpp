// Minimal dependency-free JSON writer for observability output (EXPLAIN
// plans, counter snapshots, bench reports).
//
// The writer is a streaming builder: begin_object()/begin_array() open a
// container, key() names the next member, value() emits a scalar, and
// end_object()/end_array() close. Commas and quoting are handled
// automatically; strings are escaped per RFC 8259. Numbers are rendered
// with enough precision to round-trip a double; non-finite values become
// null (JSON has no representation for them).
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace bernoulli::support {

class JsonWriter {
 public:
  /// `indent` > 0 pretty-prints with that many spaces per nesting level;
  /// 0 emits compact single-line JSON.
  explicit JsonWriter(int indent = 0) : indent_(indent) {}

  JsonWriter& begin_object() {
    open_value();
    out_ += '{';
    stack_.push_back({/*array=*/false, /*empty=*/true});
    return *this;
  }

  JsonWriter& end_object() {
    BERNOULLI_CHECK(!stack_.empty() && !stack_.back().array);
    close_container('}');
    return *this;
  }

  JsonWriter& begin_array() {
    open_value();
    out_ += '[';
    stack_.push_back({/*array=*/true, /*empty=*/true});
    return *this;
  }

  JsonWriter& end_array() {
    BERNOULLI_CHECK(!stack_.empty() && stack_.back().array);
    close_container(']');
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    BERNOULLI_CHECK(!stack_.empty() && !stack_.back().array && !have_key_);
    separate();
    quote(k);
    out_ += indent_ > 0 ? ": " : ":";
    have_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view s) {
    open_value();
    quote(s);
    return *this;
  }
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b) {
    open_value();
    out_ += b ? "true" : "false";
    return *this;
  }
  JsonWriter& value(long long v) {
    open_value();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(double v) {
    open_value();
    if (!std::isfinite(v)) {
      out_ += "null";
      return *this;
    }
    // Shortest representation that round-trips; integers print bare.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    for (int prec = 1; prec < 17; ++prec) {
      char tight[32];
      std::snprintf(tight, sizeof(tight), "%.*g", prec, v);
      std::sscanf(tight, "%lf", &parsed);
      if (parsed == v) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        break;
      }
    }
    out_ += buf;
    return *this;
  }

  /// Splices a pre-rendered JSON document in value position (e.g. the
  /// output of another JsonWriter). The caller vouches for its validity;
  /// compact splices stay compact inside a pretty-printed parent.
  JsonWriter& raw(std::string_view json) {
    open_value();
    out_ += json;
    return *this;
  }

  /// The completed document. All containers must be closed.
  std::string str() const {
    BERNOULLI_CHECK_MSG(stack_.empty(), "unclosed JSON container");
    return out_;
  }

 private:
  struct Frame {
    bool array;
    bool empty;
  };

  void separate() {
    if (!stack_.back().empty) out_ += ',';
    stack_.back().empty = false;
    newline();
  }

  // Positions the cursor for a value: after a key inside an object, or as
  // the next element of an array / the document root.
  void open_value() {
    if (!stack_.empty() && !stack_.back().array) {
      BERNOULLI_CHECK_MSG(have_key_, "object member needs key() first");
      have_key_ = false;
      return;
    }
    if (!stack_.empty()) separate();
  }

  void close_container(char c) {
    bool was_empty = stack_.back().empty;
    stack_.pop_back();
    if (!was_empty) newline();
    out_ += c;
  }

  void newline() {
    if (indent_ <= 0) return;
    out_ += '\n';
    out_.append(static_cast<std::size_t>(indent_) * stack_.size(), ' ');
  }

  void quote(std::string_view s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\b': out_ += "\\b"; break;
        case '\f': out_ += "\\f"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  int indent_;
  std::string out_;
  std::vector<Frame> stack_;
  bool have_key_ = false;
};

}  // namespace bernoulli::support
