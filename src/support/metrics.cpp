#include "support/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <deque>
#include <fstream>
#include <mutex>
#include <sstream>

#include "support/json_writer.hpp"

namespace bernoulli::support {

namespace {

// Leaked on purpose, like the counter registry: worker threads may outlive
// static-destruction order, and a leaked registry keeps every returned
// reference valid for the whole process lifetime.
template <typename T>
struct Registry {
  std::mutex mu;
  std::map<std::string, T*> by_name;
  std::deque<T> storage;

  T& get(const std::string& name) {
    std::lock_guard<std::mutex> lk(mu);
    auto it = by_name.find(name);
    if (it != by_name.end()) return *it->second;
    storage.emplace_back();
    by_name.emplace(name, &storage.back());
    return storage.back();
  }
};

Registry<MetricRate>& rate_registry() {
  static Registry<MetricRate>* r = new Registry<MetricRate>();
  return *r;
}

Registry<MetricGauge>& gauge_registry() {
  static Registry<MetricGauge>* r = new Registry<MetricGauge>();
  return *r;
}

Registry<LatencyHistogram>& latency_registry() {
  static Registry<LatencyHistogram>* r = new Registry<LatencyHistogram>();
  return *r;
}

// `a.b.c` -> `a_b_c`: Prometheus metric names allow [a-zA-Z0-9_:] only.
std::string prom_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string prom_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

int metric_shard() {
  static std::atomic<int> next{0};
  thread_local const int shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

int LatencyHistogram::bucket_of(long long ns) {
  if (ns < 0) ns = 0;
  if (ns < kLinearBuckets) return static_cast<int>(ns);
  // Power-of-two group k = floor(log2 ns) >= 4, split into kSubBuckets
  // equal sub-ranges addressed by the two bits below the leading bit.
  const int k = std::bit_width(static_cast<unsigned long long>(ns)) - 1;
  const int sub = static_cast<int>((ns >> (k - 2)) & 3);
  const int b = kLinearBuckets + (k - 4) * kSubBuckets + sub;
  return std::min(b, kBuckets - 1);
}

long long LatencyHistogram::bucket_lower(int b) {
  if (b < kLinearBuckets) return b;
  const int g = b - kLinearBuckets;
  const int k = 4 + g / kSubBuckets;
  const int sub = g % kSubBuckets;
  return (1LL << k) + static_cast<long long>(sub) * (1LL << (k - 2));
}

long long LatencyHistogram::bucket_upper(int b) {
  if (b >= kBuckets - 1) return LLONG_MAX;
  return bucket_lower(b + 1) - 1;
}

void LatencyHistogram::record_ns(long long ns) {
  if (ns < 0) ns = 0;
  Shard& s = shards_[metric_shard()];
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(ns, std::memory_order_relaxed);
  s.buckets[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
  // Relaxed CAS min/max: no fetch_min in the standard library.
  long long cur = s.min.load(std::memory_order_relaxed);
  while (ns < cur &&
         !s.min.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
  cur = s.max.load(std::memory_order_relaxed);
  while (ns > cur &&
         !s.max.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
}

LatencySnapshot LatencyHistogram::snapshot() const {
  LatencySnapshot snap;
  snap.buckets.assign(kBuckets, 0);
  long long mn = LLONG_MAX;
  long long mx = LLONG_MIN;
  // Fixed shard order; every merged quantity is an integer sum or min/max,
  // so the result is independent of which thread recorded into which shard.
  for (const Shard& s : shards_) {
    snap.count += s.count.load(std::memory_order_relaxed);
    snap.sum_ns += s.sum.load(std::memory_order_relaxed);
    mn = std::min(mn, s.min.load(std::memory_order_relaxed));
    mx = std::max(mx, s.max.load(std::memory_order_relaxed));
    for (int b = 0; b < kBuckets; ++b)
      snap.buckets[static_cast<std::size_t>(b)] +=
          s.buckets[b].load(std::memory_order_relaxed);
  }
  snap.min_ns = snap.count == 0 ? 0 : mn;
  snap.max_ns = snap.count == 0 ? 0 : mx;
  return snap;
}

void LatencyHistogram::reset() {
  for (Shard& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.min.store(LLONG_MAX, std::memory_order_relaxed);
    s.max.store(LLONG_MIN, std::memory_order_relaxed);
    for (int b = 0; b < kBuckets; ++b)
      s.buckets[b].store(0, std::memory_order_relaxed);
  }
}

long long LatencySnapshot::quantile_ns(double q) const {
  if (count == 0) return 0;
  const long long want = static_cast<long long>(
      std::ceil(std::clamp(q, 0.0, 1.0) * static_cast<double>(count)));
  const long long rank = std::clamp(want, 1LL, count);
  long long cum = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cum += buckets[b];
    if (cum >= rank)
      return std::clamp(LatencyHistogram::bucket_upper(static_cast<int>(b)),
                        min_ns, max_ns);
  }
  return max_ns;
}

MetricRate& metric_rate(const std::string& name) {
  return rate_registry().get(name);
}

MetricGauge& metric_gauge(const std::string& name) {
  return gauge_registry().get(name);
}

LatencyHistogram& metric_latency(const std::string& name) {
  return latency_registry().get(name);
}

std::mutex& metrics_commit_mutex() {
  // Leaked like the registries: flush sites may run during late shutdown.
  static std::mutex* mu = new std::mutex();
  return *mu;
}

MetricsSnapshot metrics_snapshot() {
  MetricsSnapshot snap;
  const std::unique_lock<std::mutex> commit = metrics_commit_lock();
  {
    auto& r = rate_registry();
    std::lock_guard<std::mutex> lk(r.mu);
    for (const auto& [name, m] : r.by_name) snap.rates[name] = m->value();
  }
  {
    auto& r = gauge_registry();
    std::lock_guard<std::mutex> lk(r.mu);
    for (const auto& [name, m] : r.by_name) snap.gauges[name] = m->value();
  }
  {
    auto& r = latency_registry();
    std::lock_guard<std::mutex> lk(r.mu);
    for (const auto& [name, m] : r.by_name)
      snap.latencies[name] = m->snapshot();
  }
  return snap;
}

void metrics_reset() {
  const std::unique_lock<std::mutex> commit = metrics_commit_lock();
  {
    auto& r = rate_registry();
    std::lock_guard<std::mutex> lk(r.mu);
    for (auto& [name, m] : r.by_name) m->reset();
  }
  {
    auto& r = gauge_registry();
    std::lock_guard<std::mutex> lk(r.mu);
    for (auto& [name, m] : r.by_name) m->reset();
  }
  {
    auto& r = latency_registry();
    std::lock_guard<std::mutex> lk(r.mu);
    for (auto& [name, m] : r.by_name) m->reset();
  }
}

std::string metrics_json(int indent) {
  MetricsSnapshot snap = metrics_snapshot();
  JsonWriter w(indent);
  w.begin_object();
  w.key("schema").value("bernoulli.metrics.v1");
  w.key("rates").begin_object();
  for (const auto& [name, v] : snap.rates) w.key(name).value(v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : snap.gauges) w.key(name).value(v);
  w.end_object();
  w.key("latency").begin_object();
  for (const auto& [name, h] : snap.latencies) {
    w.key(name).begin_object();
    w.key("count").value(h.count);
    w.key("sum_ns").value(h.sum_ns);
    w.key("min_ns").value(h.min_ns);
    w.key("max_ns").value(h.max_ns);
    w.key("mean_ns").value(h.mean_ns());
    w.key("p50_ns").value(h.p50_ns());
    w.key("p95_ns").value(h.p95_ns());
    w.key("p99_ns").value(h.p99_ns());
    w.key("buckets").begin_array();
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      w.begin_array();
      w.value(LatencyHistogram::bucket_lower(static_cast<int>(b)));
      w.value(h.buckets[b]);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

std::string metrics_prometheus_text() {
  MetricsSnapshot snap = metrics_snapshot();
  std::ostringstream os;
  for (const auto& [name, v] : snap.rates) {
    const std::string p = "bernoulli_" + prom_name(name) + "_total";
    os << "# TYPE " << p << " counter\n" << p << " " << v << "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string p = "bernoulli_" + prom_name(name);
    os << "# TYPE " << p << " gauge\n" << p << " " << prom_double(v) << "\n";
  }
  for (const auto& [name, h] : snap.latencies) {
    // Prometheus histograms are conventionally in seconds; `le` bounds are
    // the exact integer-ns bucket uppers scaled down.
    std::string base = prom_name(name);
    // "execute.latency" -> bernoulli_execute_latency_seconds
    const std::string p = "bernoulli_" + base + "_seconds";
    os << "# TYPE " << p << " histogram\n";
    long long cum = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      cum += h.buckets[b];
      const long long upper =
          LatencyHistogram::bucket_upper(static_cast<int>(b));
      os << p << "_bucket{le=\"";
      if (upper == LLONG_MAX)
        os << "+Inf";
      else
        os << prom_double(static_cast<double>(upper) / 1e9);
      os << "\"} " << cum << "\n";
    }
    os << p << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    os << p << "_sum " << prom_double(static_cast<double>(h.sum_ns) / 1e9)
       << "\n";
    os << p << "_count " << h.count << "\n";
  }
  return os.str();
}

bool metrics_write_prometheus(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << metrics_prometheus_text();
  return static_cast<bool>(out);
}

std::string metrics_text(bool skip_zero) {
  MetricsSnapshot snap = metrics_snapshot();
  std::size_t width = 0;
  for (const auto& [name, v] : snap.rates)
    if (!skip_zero || v != 0) width = std::max(width, name.size());
  for (const auto& [name, v] : snap.gauges)
    if (!skip_zero || v != 0.0) width = std::max(width, name.size());
  for (const auto& [name, h] : snap.latencies)
    if (!skip_zero || h.count != 0) width = std::max(width, name.size());
  std::ostringstream os;
  for (const auto& [name, v] : snap.rates) {
    if (skip_zero && v == 0) continue;
    os << name << std::string(width - name.size() + 2, ' ') << v << "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    if (skip_zero && v == 0.0) continue;
    os << name << std::string(width - name.size() + 2, ' ') << v << "\n";
  }
  for (const auto& [name, h] : snap.latencies) {
    if (skip_zero && h.count == 0) continue;
    os << name << std::string(width - name.size() + 2, ' ') << "count="
       << h.count << " sum=" << h.sum_ns << "ns p50=" << h.p50_ns()
       << "ns p95=" << h.p95_ns() << "ns p99=" << h.p99_ns()
       << "ns max=" << h.max_ns << "ns\n";
  }
  return os.str();
}

}  // namespace bernoulli::support
