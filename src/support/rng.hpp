// Deterministic pseudo-random number generation for workload generators.
//
// SplitMix64 is small, fast and has well-understood statistical quality; we
// avoid std::mt19937 in generators so that matrix suites are reproducible
// byte-for-byte across standard-library implementations.
#pragma once

#include <cstdint>

#include "support/types.hpp"

namespace bernoulli {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  index_t next_index(index_t bound) {
    return static_cast<index_t>(next_below(static_cast<std::uint64_t>(bound)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

 private:
  std::uint64_t state_;
};

}  // namespace bernoulli
