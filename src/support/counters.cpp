#include "support/counters.hpp"

#include <deque>
#include <mutex>
#include <sstream>

#include "support/json_writer.hpp"
#include "support/metrics.hpp"

namespace bernoulli::support {

namespace {

// Leaked on purpose: counters are incremented from rank threads that may
// outlive static-destruction order in exotic shutdown paths; a leaked
// registry makes every Counter& valid for the whole process lifetime.
template <typename T>
struct Registry {
  std::mutex mu;
  std::map<std::string, T*> by_name;
  std::deque<T> storage;

  T& get(const std::string& name) {
    std::lock_guard<std::mutex> lk(mu);
    auto it = by_name.find(name);
    if (it != by_name.end()) return *it->second;
    storage.emplace_back();
    by_name.emplace(name, &storage.back());
    return storage.back();
  }
};

Registry<Counter>& count_registry() {
  static Registry<Counter>* r = new Registry<Counter>();
  return *r;
}

Registry<TimeCounter>& time_registry() {
  static Registry<TimeCounter>* r = new Registry<TimeCounter>();
  return *r;
}

thread_local std::string t_phase = "main";

}  // namespace

Counter& counter(const std::string& name) {
  return count_registry().get(name);
}

TimeCounter& time_counter(const std::string& name) {
  return time_registry().get(name);
}

CountersSnapshot counters_snapshot() {
  CountersSnapshot snap;
  // Under the observability commit lock (metrics.hpp): counters are booked
  // as part of per-run flush groups, and a snapshot must not observe half
  // of one run's group.
  const std::unique_lock<std::mutex> commit = metrics_commit_lock();
  {
    auto& r = count_registry();
    std::lock_guard<std::mutex> lk(r.mu);
    for (const auto& [name, c] : r.by_name) snap.counts[name] = c->value();
  }
  {
    auto& r = time_registry();
    std::lock_guard<std::mutex> lk(r.mu);
    for (const auto& [name, c] : r.by_name) snap.seconds[name] = c->seconds();
  }
  return snap;
}

void counters_reset() {
  const std::unique_lock<std::mutex> commit = metrics_commit_lock();
  {
    auto& r = count_registry();
    std::lock_guard<std::mutex> lk(r.mu);
    for (auto& [name, c] : r.by_name) c->reset();
  }
  {
    auto& r = time_registry();
    std::lock_guard<std::mutex> lk(r.mu);
    for (auto& [name, c] : r.by_name) c->reset();
  }
}

std::string counters_text(bool skip_zero) {
  CountersSnapshot snap = counters_snapshot();
  // Width over the counters that will actually print, so filtering zeros
  // cannot change the alignment of what remains.
  std::size_t width = 0;
  for (const auto& [name, v] : snap.counts)
    if (!skip_zero || v != 0) width = std::max(width, name.size());
  for (const auto& [name, v] : snap.seconds)
    if (!skip_zero || v != 0.0) width = std::max(width, name.size());
  std::ostringstream os;
  for (const auto& [name, v] : snap.counts) {
    if (skip_zero && v == 0) continue;
    os << name << std::string(width - name.size() + 2, ' ') << v << "\n";
  }
  os.setf(std::ios::scientific);
  os.precision(3);
  for (const auto& [name, v] : snap.seconds) {
    if (skip_zero && v == 0.0) continue;
    os << name << std::string(width - name.size() + 2, ' ') << v << " s\n";
  }
  return os.str();
}

std::string counters_json(int indent) {
  CountersSnapshot snap = counters_snapshot();
  JsonWriter w(indent);
  w.begin_object();
  w.key("counts").begin_object();
  for (const auto& [name, v] : snap.counts) w.key(name).value(v);
  w.end_object();
  w.key("seconds").begin_object();
  for (const auto& [name, v] : snap.seconds) w.key(name).value(v);
  w.end_object();
  w.end_object();
  return w.str();
}

const std::string& counter_phase() { return t_phase; }

PhaseScope::PhaseScope(std::string phase) : saved_(t_phase) {
  t_phase = std::move(phase);
}

PhaseScope::~PhaseScope() { t_phase = std::move(saved_); }

Counter& phase_counter(std::string_view family, std::string_view suffix) {
  std::string name;
  name.reserve(family.size() + t_phase.size() + suffix.size() + 2);
  name.append(family).append(".").append(t_phase).append(".").append(suffix);
  return counter(name);
}

TimeCounter& phase_time_counter(std::string_view family,
                                std::string_view suffix) {
  std::string name;
  name.reserve(family.size() + t_phase.size() + suffix.size() + 2);
  name.append(family).append(".").append(t_phase).append(".").append(suffix);
  return time_counter(name);
}

}  // namespace bernoulli::support
