#include "support/dynlib.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define BERNOULLI_HAVE_DLOPEN 1
#include <dlfcn.h>
#endif

namespace bernoulli::support {

DynLib::~DynLib() { close(); }

DynLib::DynLib(DynLib&& other) noexcept
    : handle_(other.handle_), error_(std::move(other.error_)) {
  other.handle_ = nullptr;
}

DynLib& DynLib::operator=(DynLib&& other) noexcept {
  if (this != &other) {
    close();
    handle_ = other.handle_;
    error_ = std::move(other.error_);
    other.handle_ = nullptr;
  }
  return *this;
}

bool DynLib::available() {
#ifdef BERNOULLI_HAVE_DLOPEN
  return true;
#else
  return false;
#endif
}

bool DynLib::open(const std::string& path) {
  close();
#ifdef BERNOULLI_HAVE_DLOPEN
  handle_ = ::dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle_ == nullptr) {
    const char* msg = ::dlerror();
    error_ = msg != nullptr ? msg : "dlopen failed";
    return false;
  }
  error_.clear();
  return true;
#else
  error_ = "dynamic loading unavailable on this platform";
  (void)path;
  return false;
#endif
}

void* DynLib::symbol(const std::string& name) {
#ifdef BERNOULLI_HAVE_DLOPEN
  if (handle_ == nullptr) {
    error_ = "library not open";
    return nullptr;
  }
  ::dlerror();  // clear stale state: a symbol may legitimately be null
  void* addr = ::dlsym(handle_, name.c_str());
  const char* msg = ::dlerror();
  if (msg != nullptr) {
    error_ = msg;
    return nullptr;
  }
  return addr;
#else
  error_ = "dynamic loading unavailable on this platform";
  (void)name;
  return nullptr;
#endif
}

void DynLib::close() {
#ifdef BERNOULLI_HAVE_DLOPEN
  if (handle_ != nullptr) ::dlclose(handle_);
#endif
  handle_ = nullptr;
}

}  // namespace bernoulli::support
