// Plain-text table formatting for benchmark harnesses.
//
// Every bench binary reproduces one of the paper's tables; TextTable keeps
// the printed output aligned and diff-friendly so EXPERIMENTS.md can quote
// it verbatim.
#pragma once

#include <string>
#include <vector>

namespace bernoulli {

class TextTable {
 public:
  /// Starts a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Begins a new row; subsequent add() calls fill its cells left to right.
  void new_row();

  void add(std::string cell);
  void add(double v, int precision = 2);
  void add(long long v);
  void add(int v) { add(static_cast<long long>(v)); }

  /// Renders the table with a header underline and right-aligned numbers.
  std::string str() const;

  std::size_t rows() const { return cells_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

}  // namespace bernoulli
