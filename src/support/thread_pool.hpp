// A small reusable worker pool for shared-memory parallel execution
// (the linked executor's outer-level worksharing, threaded bench
// kernels). Deliberately minimal: one job at a time, slot-indexed fork/
// join, no task queue — the executor brings its own chunk scheduler and
// only needs "run body(slot) on N threads and wait".
//
// Threads are lazily spawned and kept for the life of the process (same
// leak-on-purpose policy as the counter registry), so steady-state
// parallel runs pay no thread creation. Each pool thread is an ordinary
// host thread to the tracing layer: it gets its own (pid 1, tid) track
// on first use, which is what tags per-worker TraceSpans.
#pragma once

#include <functional>
#include <memory>

namespace bernoulli::support {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 is fine; grow later with ensure()).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const;

  /// Grows the pool to at least `threads` workers (never shrinks).
  void ensure(int threads);

  /// Invokes body(slot) once for every slot in [0, nslots) on the pool
  /// threads and blocks until all slots returned. Slots may outnumber
  /// threads (a thread then runs several slots back to back). Jobs are
  /// serialized: concurrent run_slots calls queue on an internal mutex.
  /// Re-entrant calls from inside a pool thread are detected (thread-local
  /// flag) and degrade to running every slot inline on the caller — same
  /// fork/join contract, no nested parallelism, no deadlock.
  /// The first exception thrown by a body is rethrown here after the
  /// remaining slots finish.
  void run_slots(int nslots, const std::function<void(int)>& body);

  /// True when the calling thread is a pool worker (of ANY ThreadPool —
  /// the flag is per-thread, not per-pool). This is the predicate
  /// run_slots uses for its inline-fallback path; exposed so servers can
  /// pick dispatch strategies without forking a doomed nested job.
  static bool on_pool_thread();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Process-wide shared pool, grown on demand to `min_threads`. All
/// executor and bench worksharing goes through this instance so repeated
/// runs (and nested benchmark reps) reuse one set of threads.
ThreadPool& shared_pool(int min_threads = 0);

}  // namespace bernoulli::support
