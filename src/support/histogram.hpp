// Fixed-bucket log2 histograms for the observability layer.
//
// A Log2Histogram counts non-negative samples into buckets
//   [0], [1], [2,3], [4,7], ..., [2^(k-1), 2^k - 1], ...
// with the last bucket absorbing everything larger. Buckets are relaxed
// atomics (same contract as support::Counter): totals are exact, cheap
// enough to stay always-on in hot paths — one add per event, no locks.
//
// The registry mirrors support/counters.hpp: histogram(name) registers on
// first use and returns a reference that stays valid for the life of the
// process. The machine feeds "comm.message_bytes" (payload size of every
// modeled point-to-point message) and the plan interpreter feeds
// "executor.fanout.level<d>" (bindings produced per invocation of join
// level d) — the two distributions the paper's overhead analysis turns on.
#pragma once

#include <atomic>
#include <map>
#include <string>
#include <vector>

namespace bernoulli::support {

class Log2Histogram {
 public:
  /// Bucket 0 holds value 0; bucket k in [1, 38] holds [2^(k-1), 2^k);
  /// the last bucket (39) is open-ended and absorbs every value >= 2^38.
  static constexpr int kBuckets = 40;

  void add(long long value, long long count = 1) {
    buckets_[static_cast<std::size_t>(bucket_of(value))].fetch_add(
        count, std::memory_order_relaxed);
  }

  long long bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }

  long long total() const {
    long long t = 0;
    for (const auto& b : buckets_) t += b.load(std::memory_order_relaxed);
    return t;
  }

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

  /// Bucket index of a value (negative values clamp to bucket 0).
  static int bucket_of(long long value) {
    if (value <= 0) return 0;
    int k = 1;
    while (k < kBuckets - 1 && value >= (1LL << k)) ++k;
    return k;
  }

  /// Human-readable bucket range: "0", "1", "2-3", "4-7", ...
  static std::string bucket_label(int i);

 private:
  std::atomic<long long> buckets_[kBuckets] = {};
};

/// Registry lookup; registers on first use. The reference stays valid for
/// the life of the process.
Log2Histogram& histogram(const std::string& name);

/// Bucket counts of every registered histogram, sorted by name.
std::map<std::string, std::vector<long long>> histograms_snapshot();

/// Zeroes every registered histogram (names survive, like counters).
void histograms_reset();

/// Aligned text block; histograms with zero total are skipped unless
/// `include_empty`. Deterministic: sorted by name, fixed bucket labels.
std::string histograms_text(bool include_empty = false);

/// JSON object {name: {"buckets": [{"range": "2-3", "count": n}, ...],
/// "total": n}, ...}; empty buckets are elided.
std::string histograms_json(int indent = 0);

}  // namespace bernoulli::support
