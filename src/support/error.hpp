// Error handling helpers.
//
// Library invariants are enforced with BERNOULLI_CHECK, which throws
// bernoulli::Error (derived from std::runtime_error) with the failing
// expression and location. Checks guard API misuse and data-structure
// invariants; they are always on — sparse-format corruption is far more
// expensive to debug than the branch is to execute.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace bernoulli {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace bernoulli

/// Throws bernoulli::Error when `expr` is false. Extra stream-style message
/// may be appended: BERNOULLI_CHECK(i < n) << is illegal; use the _MSG form.
#define BERNOULLI_CHECK(expr)                                             \
  do {                                                                    \
    if (!(expr))                                                          \
      ::bernoulli::detail::check_failed(#expr, __FILE__, __LINE__, "");   \
  } while (0)

#define BERNOULLI_CHECK_MSG(expr, msg)                                    \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream os_;                                             \
      os_ << msg;                                                         \
      ::bernoulli::detail::check_failed(#expr, __FILE__, __LINE__,        \
                                        os_.str());                       \
    }                                                                     \
  } while (0)
