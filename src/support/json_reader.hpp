// Minimal dependency-free JSON parser — the validating counterpart of
// json_writer.hpp. Used by tests and tools to round-trip the documents the
// observability layer emits (EXPLAIN JSON, counter snapshots, Chrome
// trace files) and assert their structure.
//
// Strictness: RFC 8259 grammar (no comments, no trailing commas, no bare
// NaN/Infinity), \uXXXX escapes decoded to UTF-8 including surrogate
// pairs, one value per document with only whitespace after it. Errors
// throw support::Error with line, column and byte offset (computed by
// rescanning — errors are the cold path). Not built for speed — the
// writer is the hot path; this is the checker.
#pragma once

#include <cmath>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace bernoulli::support {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                            // arrays
  std::vector<std::pair<std::string, JsonValue>> members;  // objects

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : members)
      if (k == key) return &v;
    return nullptr;
  }

  /// Convenience accessors that assert the type.
  const std::string& as_string() const {
    BERNOULLI_CHECK_MSG(type == Type::kString, "JSON value is not a string");
    return str;
  }
  double as_number() const {
    BERNOULLI_CHECK_MSG(type == Type::kNumber, "JSON value is not a number");
    return number;
  }
};

namespace json_detail {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    check(pos_ == text_.size(), "trailing characters after JSON value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 256;

  void check(bool ok, const char* what) const {
    if (ok) return;
    // 1-based line/column of pos_, by rescanning (errors are cold).
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    BERNOULLI_CHECK_MSG(false, "JSON parse error at line " << line
                                                           << " column " << col
                                                           << " (byte " << pos_
                                                           << "): " << what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    check(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c, const char* what) {
    check(pos_ < text_.size() && text_[pos_] == c, what);
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    check(depth < kMaxDepth, "nesting too deep");
    skip_ws();
    char c = peek();
    JsonValue v;
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"':
        v.type = JsonValue::Type::kString;
        v.str = parse_string();
        return v;
      case 't':
        check(consume_literal("true"), "bad literal");
        v.type = JsonValue::Type::kBool;
        v.boolean = true;
        return v;
      case 'f':
        check(consume_literal("false"), "bad literal");
        v.type = JsonValue::Type::kBool;
        v.boolean = false;
        return v;
      case 'n':
        check(consume_literal("null"), "bad literal");
        v.type = JsonValue::Type::kNull;
        return v;
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{', "expected '{'");
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      check(peek() == '"', "expected object key");
      std::string key = parse_string();
      skip_ws();
      expect(':', "expected ':' after key");
      v.members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}', "expected ',' or '}'");
      return v;
    }
  }

  JsonValue parse_array(int depth) {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[', "expected '['");
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']', "expected ',' or ']'");
      return v;
    }
  }

  unsigned parse_hex4() {
    check(pos_ + 4 <= text_.size(), "truncated \\u escape");
    unsigned value = 0;
    for (int k = 0; k < 4; ++k) {
      char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9')
        value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        value |= static_cast<unsigned>(c - 'A' + 10);
      else
        check(false, "bad hex digit in \\u escape");
    }
    return value;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"', "expected '\"'");
    std::string out;
    while (true) {
      check(pos_ < text_.size(), "unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;  // point the diagnostic at the offending byte
        check(false, "raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      check(pos_ < text_.size(), "truncated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            check(pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                      text_[pos_ + 1] == 'u',
                  "unpaired high surrogate");
            pos_ += 2;
            unsigned lo = parse_hex4();
            check(lo >= 0xDC00 && lo <= 0xDFFF, "bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else {
            check(!(cp >= 0xDC00 && cp <= 0xDFFF),
                  "unpaired low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          --pos_;  // point the diagnostic at the bad escape character
          check(false, "bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    check(pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9',
          "expected a digit");
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      check(pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9',
            "expected a digit after '.'");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      check(pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9',
            "expected a digit in exponent");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    std::string digits(text_.substr(start, pos_ - start));
    v.number = std::strtod(digits.c_str(), nullptr);
    check(std::isfinite(v.number), "number out of double range");
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace json_detail

/// Parses one JSON document; throws support::Error on any violation.
inline JsonValue json_parse(std::string_view text) {
  return json_detail::Parser(text).parse_document();
}

}  // namespace bernoulli::support
