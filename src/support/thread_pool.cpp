#include "support/thread_pool.hpp"

#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "support/error.hpp"

namespace bernoulli::support {

namespace {
// Backstop against runaway ensure() arguments; far above any sensible
// worker count for this executor.
constexpr int kMaxThreads = 256;

// Set for the lifetime of every pool worker thread. run_slots consults it
// to detect re-entrant invocation: a pool thread that forked a nested job
// would block on job_mu while the job holding job_mu waits for that very
// thread — a deadlock. The flag is per-thread, so it costs one TLS read
// on the fast path and nothing else.
thread_local bool tl_in_pool_worker = false;
}  // namespace

struct ThreadPool::Impl {
  std::mutex job_mu;  // serializes run_slots callers

  std::mutex mu;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  std::vector<std::thread> threads;
  bool stop = false;

  // Current job (valid while body != nullptr). Workers pull slot indices
  // from `next`; the caller waits until `done` reaches `nslots`. All job
  // state — including slot hand-out — is guarded by `mu`: a worker that
  // woke late for job G must observe that `generation` moved on and NOT
  // pull a slot, or it would invoke job G's already-destroyed body with
  // job G+1's slot (and corrupt G+1's `done` count). Slot acquisition is
  // once per worker chunk, so the lock is cold.
  const std::function<void(int)>* body = nullptr;
  std::uint64_t generation = 0;
  int nslots = 0;
  int next = 0;
  int done = 0;
  std::exception_ptr error;

  void worker() {
    tl_in_pool_worker = true;
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(int)>* job = nullptr;
      {
        std::unique_lock<std::mutex> lk(mu);
        cv_work.wait(lk, [&] {
          return stop || (body != nullptr && generation != seen);
        });
        if (stop) return;
        seen = generation;
        job = body;
      }
      for (;;) {
        int slot;
        {
          std::lock_guard<std::mutex> lk(mu);
          // The job may have completed (and a new one started) between
          // our last slot and this re-check; only touch state that is
          // still ours.
          if (generation != seen || body == nullptr || next >= nslots)
            break;
          slot = next++;
        }
        std::exception_ptr err;
        try {
          (*job)(slot);
        } catch (...) {
          err = std::current_exception();
        }
        std::lock_guard<std::mutex> lk(mu);
        if (generation != seen) break;  // paranoia; cannot complete a
                                        // stale job past this point
        if (err && !error) error = err;
        if (++done == nslots) cv_done.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(int threads) : impl_(std::make_unique<Impl>()) {
  ensure(threads);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv_work.notify_all();
  for (std::thread& t : impl_->threads) t.join();
}

int ThreadPool::size() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return static_cast<int>(impl_->threads.size());
}

void ThreadPool::ensure(int threads) {
  BERNOULLI_CHECK_MSG(threads <= kMaxThreads,
                      "thread pool size " << threads << " exceeds the "
                                          << kMaxThreads << " backstop");
  std::lock_guard<std::mutex> lk(impl_->mu);
  while (static_cast<int>(impl_->threads.size()) < threads)
    impl_->threads.emplace_back([impl = impl_.get()] { impl->worker(); });
}

bool ThreadPool::on_pool_thread() { return tl_in_pool_worker; }

void ThreadPool::run_slots(int nslots, const std::function<void(int)>& body) {
  if (nslots <= 0) return;
  if (tl_in_pool_worker) {
    // Re-entrant fork from a pool worker: the outer job holds job_mu and
    // is waiting for THIS thread, so queuing a nested job can never make
    // progress. Degrade to running every slot inline on the caller — the
    // fork/join contract (all slots run, first exception rethrown after
    // the rest finish) is preserved, just without extra parallelism.
    std::exception_ptr error;
    for (int slot = 0; slot < nslots; ++slot) {
      try {
        body(slot);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }
  ensure(1);  // a job needs at least one worker to make progress
  std::lock_guard<std::mutex> job_lk(impl_->job_mu);
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->body = &body;
    impl_->nslots = nslots;
    impl_->next = 0;
    impl_->done = 0;
    impl_->error = nullptr;
    ++impl_->generation;
  }
  impl_->cv_work.notify_all();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lk(impl_->mu);
    impl_->cv_done.wait(lk, [&] { return impl_->done == impl_->nslots; });
    impl_->body = nullptr;
    error = impl_->error;
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool& shared_pool(int min_threads) {
  // Leaked on purpose: worker threads may still be parked in cv_work when
  // static destructors run; joining them at exit is not worth the races.
  static ThreadPool* pool = new ThreadPool(0);
  pool->ensure(min_threads);
  return *pool;
}

}  // namespace bernoulli::support
