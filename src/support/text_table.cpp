#include "support/text_table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/error.hpp"

namespace bernoulli {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  BERNOULLI_CHECK(!headers_.empty());
}

void TextTable::new_row() { cells_.emplace_back(); }

void TextTable::add(std::string cell) {
  BERNOULLI_CHECK_MSG(!cells_.empty(), "call new_row() before add()");
  BERNOULLI_CHECK_MSG(cells_.back().size() < headers_.size(),
                      "row has more cells than headers");
  cells_.back().push_back(std::move(cell));
}

void TextTable::add(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  add(os.str());
}

void TextTable::add(long long v) { add(std::to_string(v)); }

std::string TextTable::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : cells_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row, bool left_first) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << (c == 0 ? "" : "  ");
      if (c == 0 && left_first)
        os << std::left << std::setw(static_cast<int>(width[c])) << cell;
      else
        os << std::right << std::setw(static_cast<int>(width[c])) << cell;
    }
    os << '\n';
  };

  emit_row(headers_, /*left_first=*/true);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c == 0 ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& row : cells_) emit_row(row, /*left_first=*/true);
  return os.str();
}

}  // namespace bernoulli
