// Serving-era metrics: rates, gauges, and latency histograms.
//
// A second process-global registry next to the counter registry
// (counters.hpp), for the numbers a *server* needs rather than the numbers
// a *compiler* needs: how long did each execute take (distribution, not
// just total), how many model-bytes did it move, what is the current
// residual. Three metric kinds:
//
//   MetricRate       monotonic long long, like Counter but thread-sharded
//   MetricGauge      last-write-wins double (e.g. cg.residual)
//   LatencyHistogram fixed-bucket log-linear histogram over integer
//                    nanoseconds with exact count/sum/min/max and
//                    deterministic p50/p95/p99
//
// Shard-and-flush discipline: every recording path books into the calling
// thread's shard with one relaxed atomic op — no locks, no contention on
// the hot path — and snapshots merge the shards in fixed shard order.
// Because every merged quantity is an integer sum (or min/max), the merge
// is order-independent: a serial run and a `--threads=N` run that record
// the same multiset of values produce bitwise-identical snapshots. This is
// the same discipline as the ParallelRunner counter shards, extended to
// distributions.
//
// Latencies are recorded as integer NANOSECONDS (llround of seconds), so
// histogram sums reconcile exactly against the `execute.wall_ns` rate
// booked at the same site: hist.sum_ns == rate by construction, asserted
// in tests and by bench `--check`.
//
// Bucket layout (HDR-style log-linear, 164 buckets):
//   values 0..15         one bucket each (buckets 0..15)
//   values >= 16         4 sub-buckets per power-of-two group,
//                        groups 2^4..2^40 (buckets 16..163; ~40 min cap,
//                        larger values clamp into the last bucket)
// Relative quantile error is bounded by the sub-bucket width (< 1/4 of
// the value); percentiles are additionally clamped to the exact observed
// [min, max], so single-value and uniform-value histograms report exact
// percentiles.
#pragma once

#include <atomic>
#include <climits>
#include <cmath>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace bernoulli::support {

/// Number of shards per metric. Threads map onto shards round-robin; two
/// threads sharing a shard stay correct (atomics), just contended.
inline constexpr int kMetricShards = 16;

/// Stable per-thread shard id in [0, kMetricShards).
int metric_shard();

/// Monotonic rate, thread-sharded. Totals are exact; value() merges the
/// shards in fixed order (integer sums: order-independent).
class MetricRate {
 public:
  void add(long long delta = 1) {
    shards_[metric_shard()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  long long value() const {
    long long total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<long long> v{0};
  };
  Shard shards_[kMetricShards];
};

/// Last-write-wins instantaneous value (e.g. the current CG residual).
class MetricGauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Merged view of one LatencyHistogram. Percentiles are a deterministic
/// function of the merged buckets, clamped to the exact observed min/max.
struct LatencySnapshot {
  long long count = 0;
  long long sum_ns = 0;
  long long min_ns = 0;
  long long max_ns = 0;
  std::vector<long long> buckets;  // size LatencyHistogram::kBuckets

  double mean_ns() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum_ns) / static_cast<double>(count);
  }
  /// q in [0, 1]. Walks the cumulative bucket counts to the ceil(q*count)-th
  /// recorded value and reports that bucket's upper bound, clamped to the
  /// exact [min_ns, max_ns]. Deterministic; 0 when empty.
  long long quantile_ns(double q) const;
  long long p50_ns() const { return quantile_ns(0.50); }
  long long p95_ns() const { return quantile_ns(0.95); }
  long long p99_ns() const { return quantile_ns(0.99); }
};

/// Fixed-bucket latency histogram over integer nanoseconds. record_ns is
/// one shard lookup plus five relaxed atomic ops; snapshot() merges.
class LatencyHistogram {
 public:
  static constexpr int kLinearBuckets = 16;  // values 0..15, exact
  static constexpr int kSubBuckets = 4;      // per power-of-two group
  static constexpr int kMaxPow = 40;         // last group covers 2^40..2^41
  static constexpr int kBuckets =
      kLinearBuckets + (kMaxPow - 4 + 1) * kSubBuckets;  // 164

  /// Bucket index for a value (negatives clamp to 0, huge values to the
  /// last bucket).
  static int bucket_of(long long ns);
  /// Smallest value mapping to bucket b.
  static long long bucket_lower(int b);
  /// Largest value mapping to bucket b (LLONG_MAX for the last bucket).
  static long long bucket_upper(int b);

  void record_ns(long long ns);
  void record_seconds(double seconds) {
    record_ns(std::llround(seconds * 1e9));
  }

  LatencySnapshot snapshot() const;
  void reset();

 private:
  struct alignas(64) Shard {
    std::atomic<long long> count{0};
    std::atomic<long long> sum{0};
    std::atomic<long long> min{LLONG_MAX};
    std::atomic<long long> max{LLONG_MIN};
    std::atomic<long long> buckets[kBuckets] = {};
  };
  Shard shards_[kMetricShards];
};

/// Registry lookups; register on first use, references stay valid for the
/// life of the process (same leaked-registry contract as counter()).
MetricRate& metric_rate(const std::string& name);
MetricGauge& metric_gauge(const std::string& name);
LatencyHistogram& metric_latency(const std::string& name);

struct MetricsSnapshot {
  std::map<std::string, long long> rates;
  std::map<std::string, double> gauges;
  std::map<std::string, LatencySnapshot> latencies;
};

/// The process-wide observability COMMIT lock. Individual metric and
/// counter updates are atomic, but a per-run flush books a GROUP of them
/// (one latency sample, the matching execute.wall_ns delta, the
/// executor.* counters, the fan-out buckets) that must appear all-or-
/// nothing to readers: a snapshot taken between two bookings of the same
/// run would observe a torn state where
/// execute.latency.sum_ns != execute.wall_ns. Every per-run flush site
/// (linked, interpreted, specialized, server batches) holds this lock for
/// the duration of its group booking, and metrics_snapshot()/
/// counters_snapshot() hold it while merging — so snapshots only ever see
/// whole runs. The hot path (recording inside a run) never touches it;
/// only the once-per-run commit and the readers do.
std::mutex& metrics_commit_mutex();

/// RAII convenience over metrics_commit_mutex().
inline std::unique_lock<std::mutex> metrics_commit_lock() {
  return std::unique_lock<std::mutex>(metrics_commit_mutex());
}

/// Snapshot of every registered metric (zero-valued ones included), taken
/// under the commit lock so concurrent per-run flushes appear atomic.
MetricsSnapshot metrics_snapshot();

/// Zeroes every registered metric; names and addresses survive.
void metrics_reset();

/// `bernoulli.metrics.v1` JSON document:
///   {"schema": "bernoulli.metrics.v1",
///    "rates": {name: value, ...},
///    "gauges": {name: value, ...},
///    "latency": {name: {"count", "sum_ns", "min_ns", "max_ns", "mean_ns",
///                       "p50_ns", "p95_ns", "p99_ns",
///                       "buckets": [[lower_ns, count], ...]}, ...}}
/// Bucket pairs list only non-zero buckets, sorted by lower bound.
std::string metrics_json(int indent = 0);

/// Prometheus text exposition (counter / gauge / histogram families,
/// names sanitized `a.b.c` -> `bernoulli_a_b_c`, histogram `le` labels in
/// seconds). Each family carries `# TYPE`; ends with a trailing newline.
std::string metrics_prometheus_text();

/// Writes metrics_prometheus_text() to `path`; false on I/O failure.
bool metrics_write_prometheus(const std::string& path);

/// Aligned text block for humans (rates, then gauges, then latency
/// summaries), sorted by name. `skip_zero` elides empty metrics.
std::string metrics_text(bool skip_zero = true);

}  // namespace bernoulli::support
