// Minimal RAII wrapper over dlopen/dlsym/dlclose, for loading runtime-
// specialized kernels (compiler/specialize.hpp). On platforms without
// <dlfcn.h> the wrapper compiles but available() is false and open()
// always fails with a note — callers fall back to the linked engine.
#pragma once

#include <string>

namespace bernoulli::support {

class DynLib {
 public:
  DynLib() = default;
  ~DynLib();

  DynLib(const DynLib&) = delete;
  DynLib& operator=(const DynLib&) = delete;
  DynLib(DynLib&& other) noexcept;
  DynLib& operator=(DynLib&& other) noexcept;

  /// Whether this build can load shared objects at all.
  static bool available();

  /// Loads `path` (RTLD_NOW | RTLD_LOCAL). On failure returns false and
  /// leaves the loader's message in error().
  bool open(const std::string& path);

  /// Resolves `name` to a function/object address, or nullptr (error()
  /// explains). Valid only while the library stays open.
  void* symbol(const std::string& name);

  void close();
  bool is_open() const { return handle_ != nullptr; }
  const std::string& error() const { return error_; }

 private:
  void* handle_ = nullptr;
  std::string error_;
};

}  // namespace bernoulli::support
