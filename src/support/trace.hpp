// Span tracing: per-thread virtual/wall timelines exported as Chrome
// trace-event JSON (load the file in Perfetto / chrome://tracing).
//
// The tracer is a process-global registry of per-thread event buffers.
// Each thread appends to its own buffer under its own (uncontended) mutex,
// so recording never blocks on another thread; export locks every buffer
// once and merges. Tracing is OFF by default — every entry point checks
// one relaxed atomic and returns, so instrumented hot paths stay free
// until a bench passes --trace.
//
// Tracks. Every event lands on a (pid, tid) track. Host threads default to
// pid 1 ("host", wall-clock microseconds since trace_start()). The
// simulated machine registers a fresh pid per runtime::Machine::run and
// lays each rank on its own tid with timestamps in VIRTUAL microseconds —
// the per-rank timeline a dedicated-node MPI profiler would show. A
// TraceTrackScope installs the (pid, tid) pair and the clock for the
// current thread; RAII restores the previous track.
//
// Event kinds (Chrome trace-event phases):
//   TraceSpan            RAII "X" complete event; nestable; carries args
//   trace_instant        "i" instant on the current track
//   trace_counter        "C" counter sample (Perfetto draws a step graph)
//   trace_emit_*         explicit-timestamp variants for code (the
//                        simulated machine) that computes its own clock
//   flow events          "s"/"f" pairs with a shared id: Perfetto draws
//                        the arrow from the matching send span to the
//                        recv span across rank tracks
//
// Alongside the raw trace the module accumulates a communication matrix:
// per (src, dst) message/byte totals fed by runtime::Process::send_bytes
// from exactly the call sites that book runtime::CommStats and the
// comm.<phase>.* counters, so matrix row/column sums reconcile exactly
// with both (asserted by tests/trace_test.cpp and the --trace benches).
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "support/json_writer.hpp"

namespace bernoulli::support {

// ---- global switches --------------------------------------------------

/// True between trace_start() and trace_stop().
bool trace_enabled();

/// Clears all buffers, resets the wall-clock origin and the comm matrix,
/// and enables recording. Also enables comm-matrix recording.
void trace_start();

/// Stops recording; buffered events stay available for export.
void trace_stop();

/// Comm-matrix recording is independent of full tracing (--comm-matrix
/// without --trace): start clears and enables, stop disables.
bool comm_record_enabled();
void comm_record_start();
void comm_record_stop();

// ---- tracks and clocks ------------------------------------------------

struct TraceTrack {
  int pid = 1;  // pid 1 = "host" (wall time)
  int tid = 0;  // assigned per host thread; rank number on machine pids
};

/// The current thread's track.
TraceTrack trace_track();

/// Microseconds on the current thread's clock: wall time since
/// trace_start() by default, or whatever TraceTrackScope installed.
double trace_now_us();

/// Installs (pid, tid) and an optional clock for the current thread;
/// restores the previous track and clock on destruction.
class TraceTrackScope {
 public:
  TraceTrackScope(int pid, int tid, std::function<double()> now_us = {});
  ~TraceTrackScope();
  TraceTrackScope(const TraceTrackScope&) = delete;
  TraceTrackScope& operator=(const TraceTrackScope&) = delete;

 private:
  TraceTrack saved_track_;
  std::function<double()> saved_clock_;
};

/// Allocates a fresh pid (metadata event names the process group in the
/// viewer). The simulated machine calls this once per run.
int trace_register_process(const std::string& name);

/// Names a (pid, tid) track ("rank 3").
void trace_name_thread(int pid, int tid, const std::string& name);

// ---- recording --------------------------------------------------------

/// RAII span: records a complete ("X") event on the current thread's
/// track from construction to destruction. Args attach as the event's
/// "args" object; add them any time before destruction.
class TraceSpan {
 public:
  explicit TraceSpan(std::string name, const char* cat = "app");
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  TraceSpan& arg(std::string_view key, long long v);
  TraceSpan& arg(std::string_view key, int v) {
    return arg(key, static_cast<long long>(v));
  }
  TraceSpan& arg(std::string_view key, double v);
  TraceSpan& arg(std::string_view key, std::string_view v);

  /// Emits a flow-start ("s") event bound to this span at the current
  /// clock position; the matching trace_emit_flow(false, id, ...) draws
  /// the arrow.
  void flow_out(long long id);

 private:
  bool active_ = false;
  std::string name_;
  const char* cat_ = "";
  double t0_ = 0.0;
  JsonWriter args_;
  int nargs_ = 0;
};

/// Instant ("i") event on the current track. `args_json`, when non-empty,
/// must be a complete JSON object (use JsonWriter).
void trace_instant(std::string name, const char* cat,
                   std::string args_json = "");

/// Counter ("C") sample on the current track.
void trace_counter(std::string name, double value);

/// Fresh process-unique id for a send->recv flow pair.
long long trace_new_flow_id();

// Explicit-timestamp emitters for code that computes its own timeline
// (the simulated machine's virtual clocks). Timestamps are microseconds.
void trace_emit_complete(std::string name, const char* cat, double ts_us,
                         double dur_us, int pid, int tid,
                         std::string args_json = "");
void trace_emit_flow(bool start, long long id, double ts_us, int pid,
                     int tid);
void trace_emit_counter(std::string name, double value, double ts_us,
                        int pid, int tid);

// ---- export -----------------------------------------------------------

/// The whole trace as a Chrome trace-event JSON document:
///   {"traceEvents": [...], "displayTimeUnit": "ms",
///    "bernoulli": {"comm_matrix": ..., "histograms": ...}}
/// Perfetto ignores the extra top-level keys; the derived reports ride
/// along in the same file.
std::string trace_json(int indent = 0);

/// Writes trace_json() to `path`.
void trace_write(const std::string& path, int indent = 0);

// ---- communication matrix ---------------------------------------------

/// Books one point-to-point message on the (src, dst) cell. Called by the
/// simulated machine for every non-self send while recording is enabled.
void comm_matrix_record(int src, int dst, long long bytes);

struct CommMatrixSnapshot {
  int nprocs = 0;  // 1 + max rank seen; 0 when nothing was recorded
  std::vector<long long> messages;  // nprocs*nprocs, row-major [src][dst]
  std::vector<long long> bytes;
  long long total_messages = 0;
  long long total_bytes = 0;

  long long messages_at(int src, int dst) const {
    return messages[static_cast<std::size_t>(src * nprocs + dst)];
  }
  long long bytes_at(int src, int dst) const {
    return bytes[static_cast<std::size_t>(src * nprocs + dst)];
  }
};

CommMatrixSnapshot comm_matrix_snapshot();

/// Text rendering: one bytes matrix, one messages matrix, row/col sums.
std::string comm_matrix_text();

/// JSON object {"nprocs": P, "messages": [[..]], "bytes": [[..]],
/// "total_messages": n, "total_bytes": n}.
std::string comm_matrix_json(int indent = 0);

}  // namespace bernoulli::support
