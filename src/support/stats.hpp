// Small statistics accumulator used by benchmark harnesses (best-of-k
// timing, message-count summaries).
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

namespace bernoulli {

class RunningStats {
 public:
  void add(double x) {
    ++n_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    // Welford's online mean/variance update.
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  long long count() const { return n_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double mean() const { return mean_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }

 private:
  long long n_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace bernoulli
