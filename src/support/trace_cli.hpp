// Command-line glue for the observability flags the benches and examples
// share: --trace=<file> (write the Chrome trace-event JSON),
// --comm-matrix (print the nprocs x nprocs message/byte matrix), and
// --report=<file> (write a bernoulli.run.v1 run report — the flag is
// parsed here so every bench spells it identically; the report itself is
// assembled by the bench via analysis/report.hpp AFTER obs_end()).
//
// Deprecated aliases, kept so existing scripts keep working (each warns
// once on stderr): the literal spelling --report=json is the PR-1 stdout
// report (any other value is a run-report file path), and --exec-json=
// is the PR-3 exec-snapshot writer. When both the alias and an explicit
// --report=<file> appear, the explicit file wins in either flag order —
// callers must dispatch on legacy_report_stdout(), not legacy_report_json.
//
// obs_end() is deliberately strict: given the CommStats totals the caller
// gathered over every machine run inside the recording window, the comm
// matrix, the "send" span args inside the exported trace, and the
// comm.<phase>.* counter registry must all equal them EXACTLY — they are
// fed from the single booking site in runtime::Process::send_bytes, and a
// mismatch means double-booking or a dropped event, so it aborts loudly.
// Every traced bench run is thereby a reconciliation test.
#pragma once

#include <cstring>
#include <iostream>
#include <set>
#include <string>

#include "support/counters.hpp"
#include "support/error.hpp"
#include "support/json_reader.hpp"
#include "support/trace.hpp"

namespace bernoulli::support {

struct ObsOptions {
  std::string trace_path;    // --trace=<file>; empty = no trace
  bool comm_matrix = false;  // --comm-matrix
  std::string report_path;   // --report=<file>; empty = no run report
  bool legacy_report_json = false;  // deprecated --report=json (stdout)
  bool active() const {
    return !trace_path.empty() || comm_matrix || !report_path.empty();
  }
  /// True when the deprecated stdout report should run. An explicit
  /// --report=<file> wins over the alias regardless of flag order: the
  /// alias only takes effect when no file report was requested.
  bool legacy_report_stdout() const {
    return legacy_report_json && report_path.empty();
  }
  /// Run reports embed a critical path, so requesting one records spans
  /// too (in memory only; nothing hits disk unless --trace asked).
  bool tracing() const {
    return !trace_path.empty() || !report_path.empty();
  }
};

/// Warns once per deprecated spelling (process-wide).
inline void warn_deprecated_flag(const char* old_spelling,
                                 const char* use_instead) {
  static std::set<std::string>* warned = new std::set<std::string>();
  if (warned->insert(old_spelling).second)
    std::cerr << "warning: " << old_spelling << " is deprecated; use "
              << use_instead << "\n";
}

/// Consumes one argv entry; returns false when it is not an
/// observability flag (so the caller can keep its own parsing).
inline bool obs_parse_flag(const char* arg, ObsOptions& o) {
  if (std::strncmp(arg, "--trace=", 8) == 0) {
    o.trace_path = arg + 8;
    return true;
  }
  if (std::strcmp(arg, "--comm-matrix") == 0) {
    o.comm_matrix = true;
    return true;
  }
  if (std::strcmp(arg, "--report=json") == 0) {
    warn_deprecated_flag("--report=json",
                         "--report=<file> (bernoulli.run.v1)");
    o.legacy_report_json = true;
    return true;
  }
  if (std::strncmp(arg, "--report=", 9) == 0) {
    o.report_path = arg + 9;
    return true;
  }
  return false;
}

/// Starts recording. Resets the counter registry so obs_end can reconcile
/// comm.* against exactly the machine runs inside the window.
inline void obs_begin(const ObsOptions& o) {
  if (!o.active()) return;
  counters_reset();
  if (o.tracing())
    trace_start();  // implies comm-matrix recording
  else
    comm_record_start();
}

/// Stops recording, writes/prints the artifacts, and asserts the
/// reconciliation invariant described above.
inline void obs_end(const ObsOptions& o, long long commstats_messages,
                    long long commstats_bytes) {
  if (!o.active()) return;
  trace_stop();
  comm_record_stop();

  CommMatrixSnapshot mat = comm_matrix_snapshot();
  BERNOULLI_CHECK_MSG(mat.total_messages == commstats_messages &&
                          mat.total_bytes == commstats_bytes,
                      "comm matrix (" << mat.total_messages << " msgs, "
                                      << mat.total_bytes
                                      << " bytes) != CommStats ("
                                      << commstats_messages << " msgs, "
                                      << commstats_bytes << " bytes)");

  long long counter_messages = 0;
  long long counter_bytes = 0;
  auto snap = counters_snapshot();
  for (const auto& [name, v] : snap.counts) {
    if (!name.starts_with("comm.")) continue;
    if (name.ends_with(".messages")) counter_messages += v;
    if (name.ends_with(".bytes")) counter_bytes += v;
  }
  BERNOULLI_CHECK_MSG(counter_messages == commstats_messages &&
                          counter_bytes == commstats_bytes,
                      "comm.<phase>.* counters ("
                          << counter_messages << " msgs, " << counter_bytes
                          << " bytes) != CommStats (" << commstats_messages
                          << " msgs, " << commstats_bytes << " bytes)");

  if (o.tracing()) {
    // Reconcile the EXPORT, not internal state: parse the document that
    // will hit the disk (or feed the run report's critical path) and sum
    // the "send" span byte args.
    std::string json = trace_json();
    JsonValue doc = json_parse(json);
    long long span_messages = 0;
    long long span_bytes = 0;
    for (const JsonValue& ev : doc.find("traceEvents")->items) {
      if (ev.find("ph")->as_string() == "X" &&
          ev.find("name")->as_string() == "send") {
        ++span_messages;
        span_bytes += static_cast<long long>(
            ev.find("args")->find("bytes")->as_number());
      }
    }
    BERNOULLI_CHECK_MSG(span_messages == commstats_messages &&
                            span_bytes == commstats_bytes,
                        "trace send spans (" << span_messages << " msgs, "
                                             << span_bytes
                                             << " bytes) != CommStats ("
                                             << commstats_messages
                                             << " msgs, " << commstats_bytes
                                             << " bytes)");
    if (!o.trace_path.empty()) {
      trace_write(o.trace_path);
      std::cerr << "trace: " << o.trace_path << " ("
                << doc.find("traceEvents")->items.size() << " events, "
                << span_messages
                << " sends reconciled against CommStats; open in "
                   "ui.perfetto.dev)\n";
    }
  }

  if (o.comm_matrix) std::cout << "\n" << comm_matrix_text();
}

}  // namespace bernoulli::support
