// Fundamental scalar types used throughout the Bernoulli library.
//
// The paper's formats index with 32-bit integers (Fortran INTEGER); we keep
// that choice for storage arrays but use std::size_t for container sizes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace bernoulli {

/// Array/row/column index type used inside sparse storage arrays.
using index_t = std::int32_t;

/// Numeric value type of matrix and vector entries.
using value_t = double;

/// A (row, column, value) triple; the unit of the Coordinate format and the
/// exchange currency between all formats.
struct Triplet {
  index_t row = 0;
  index_t col = 0;
  value_t val = 0.0;

  friend bool operator==(const Triplet&, const Triplet&) = default;
};

/// Dense vector of matrix values.
using Vector = std::vector<value_t>;

/// Read-only view over a dense vector.
using ConstVectorView = std::span<const value_t>;

/// Mutable view over a dense vector.
using VectorView = std::span<value_t>;

}  // namespace bernoulli
