#include "support/profile.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>

#include "support/json_writer.hpp"

namespace bernoulli::support {

namespace {

std::atomic<bool> g_profiling{false};

const char* const kKindNames[kProfKinds] = {"tuple", "merge", "bulk",
                                            "blocked", "sliced"};
const char* const kPhaseNames[kProfPhases] = {"inspector", "exchange",
                                              "compute"};

// The global profile registry. Flushes are once per run and snapshots are
// cold, so a mutex (not sharded atomics) is the right tool — and it keeps
// the self/inclusive raw values coherent, which relaxed per-field atomics
// would not.
struct ProfileRegistry {
  std::mutex mu;
  int levels = 0;
  long long self_ns[kProfileMaxLevels][kProfKinds] = {};
  long long work[kProfileMaxLevels][kProfKinds] = {};
  long long samples[kProfileMaxLevels][kProfKinds] = {};
  long long raw_ns[kProfileMaxLevels][kProfKinds] = {};
  long long raw_incl_ns[kProfileMaxLevels] = {};
  long long phase_ns[kProfPhases] = {};
  long long phase_calls[kProfPhases] = {};
  long long runs = 0;
  long long wall_ns = 0;
};

ProfileRegistry& registry() {
  static ProfileRegistry* r = new ProfileRegistry();  // leaked: outlive exit
  return *r;
}

long long calibrate_timer_cost() {
  // Cost of one profile_now_ns() call: time a tight loop of calls, best of
  // three passes so a scheduler hiccup cannot inflate the compensation
  // constant (over-compensation would clamp small levels to zero).
  constexpr int kCalls = 4096;
  long long best = 1 << 30;
  for (int pass = 0; pass < 3; ++pass) {
    const long long t0 = profile_now_ns();
    long long sink = 0;
    for (int i = 0; i < kCalls; ++i) sink += profile_now_ns();
    const long long t1 = profile_now_ns();
    if (sink == 0) std::abort();  // defeat dead-code elimination
    const long long per = (t1 - t0) / kCalls;
    if (per < best) best = per;
  }
  return best < 0 ? 0 : best;
}

}  // namespace

const char* profile_kind_name(int kind) {
  return (kind >= 0 && kind < kProfKinds) ? kKindNames[kind] : "?";
}

const char* profile_phase_name(int phase) {
  return (phase >= 0 && phase < kProfPhases) ? kPhaseNames[phase] : "?";
}

void set_profiling(bool on) {
  if (on) (void)profile_timer_cost_ns();  // calibrate before the first run
  g_profiling.store(on, std::memory_order_relaxed);
}

bool profiling_enabled() {
  return g_profiling.load(std::memory_order_relaxed);
}

long long profile_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

long long profile_timer_cost_ns() {
  static const long long cost = calibrate_timer_cost();
  return cost;
}

// ---------------------------------------------------------------------------
// ProfileScratch
// ---------------------------------------------------------------------------

void ProfileScratch::reset(int num_levels) {
  levels = num_levels < 0 ? 0
           : num_levels > kProfileMaxLevels ? kProfileMaxLevels
                                            : num_levels;
  for (int d = 0; d < kProfileMaxLevels; ++d) {
    incl_ns[d] = 0;
    for (int k = 0; k < kProfKinds; ++k) {
      work[d][k] = 0;
      sampled_work[d][k] = 0;
      sampled_ns[d][k] = 0;
      samples[d][k] = 0;
    }
  }
}

void ProfileScratch::merge(const ProfileScratch& other) {
  if (other.levels > levels) levels = other.levels;
  for (int d = 0; d < kProfileMaxLevels; ++d) {
    incl_ns[d] += other.incl_ns[d];
    for (int k = 0; k < kProfKinds; ++k) {
      work[d][k] += other.work[d][k];
      sampled_work[d][k] += other.sampled_work[d][k];
      sampled_ns[d][k] += other.sampled_ns[d][k];
      samples[d][k] += other.samples[d][k];
    }
  }
}

bool ProfileScratch::any() const {
  for (int d = 0; d < kProfileMaxLevels; ++d)
    for (int k = 0; k < kProfKinds; ++k)
      if (work[d][k] != 0 || samples[d][k] != 0) return true;
  return false;
}

// ---------------------------------------------------------------------------
// Estimation + commit
// ---------------------------------------------------------------------------

ProfileFlush profile_estimate(const ProfileScratch& s, long long wall_ns) {
  const long long timer_cost = profile_timer_cost_ns();
  ProfileFlush f;
  f.levels = s.levels;
  f.wall_ns = wall_ns;
  for (int d = 0; d < kProfileMaxLevels; ++d) {
    f.raw_incl_ns[d] = s.incl_ns[d];
    for (int k = 0; k < kProfKinds; ++k) {
      f.work[d][k] = s.work[d][k];
      f.samples[d][k] = s.samples[d][k];
      f.raw_ns[d][k] = s.sampled_ns[d][k];
      long long comp = s.sampled_ns[d][k] - s.samples[d][k] * timer_cost;
      if (comp < 0) comp = 0;
      // Extrapolate by the exact work ratio when the segments carried work
      // counts; segments booked without work (pure transitions) scale by
      // the sampling period instead.
      long long est = comp;
      if (s.sampled_work[d][k] > 0 && s.work[d][k] > 0) {
        est = static_cast<long long>(
            static_cast<double>(comp) *
            (static_cast<double>(s.work[d][k]) /
             static_cast<double>(s.sampled_work[d][k])));
      } else if (s.samples[d][k] > 0) {
        est = comp * kProfileSampleEvery;
      }
      f.self_ns[d][k] = est;
    }
  }
  // The extrapolated total can overshoot a short run's wall clock (the
  // sampled bindings may be the expensive ones); clamp proportionally so
  // "% of run" stays meaningful.
  if (wall_ns > 0) {
    long long total = 0;
    for (int d = 0; d < kProfileMaxLevels; ++d)
      for (int k = 0; k < kProfKinds; ++k) total += f.self_ns[d][k];
    if (total > wall_ns) {
      const double scale =
          static_cast<double>(wall_ns) / static_cast<double>(total);
      for (int d = 0; d < kProfileMaxLevels; ++d)
        for (int k = 0; k < kProfKinds; ++k)
          f.self_ns[d][k] = static_cast<long long>(
              static_cast<double>(f.self_ns[d][k]) * scale);
    }
  }
  return f;
}

void profile_commit(const ProfileFlush& f) {
  ProfileRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (f.levels > r.levels) r.levels = f.levels;
  for (int d = 0; d < kProfileMaxLevels; ++d) {
    r.raw_incl_ns[d] += f.raw_incl_ns[d];
    for (int k = 0; k < kProfKinds; ++k) {
      r.self_ns[d][k] += f.self_ns[d][k];
      r.work[d][k] += f.work[d][k];
      r.samples[d][k] += f.samples[d][k];
      r.raw_ns[d][k] += f.raw_ns[d][k];
    }
  }
  r.runs += 1;
  r.wall_ns += f.wall_ns;
}

void profile_flush(const ProfileScratch& s, long long wall_ns) {
  if (!s.any()) return;
  profile_commit(profile_estimate(s, wall_ns));
}

void profile_phase_add(int phase, long long ns) {
  if (phase < 0 || phase >= kProfPhases) return;
  ProfileRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.phase_ns[phase] += ns < 0 ? 0 : ns;
  r.phase_calls[phase] += 1;
}

ProfilePhaseScope::ProfilePhaseScope(int phase)
    : phase_(phase), t0_(0), on_(profiling_enabled()) {
  if (on_) t0_ = profile_now_ns();
}

ProfilePhaseScope::~ProfilePhaseScope() {
  if (on_) profile_phase_add(phase_, profile_now_ns() - t0_);
}

// ---------------------------------------------------------------------------
// Snapshot + reset
// ---------------------------------------------------------------------------

long long ProfileSnapshot::level_self_ns(int level) const {
  if (level < 0 || level >= kProfileMaxLevels) return 0;
  long long total = 0;
  for (int k = 0; k < kProfKinds; ++k) total += self_ns[level][k];
  return total;
}

long long ProfileSnapshot::level_incl_ns(int level) const {
  long long total = 0;
  for (int d = level; d < kProfileMaxLevels; ++d)
    if (d >= 0) total += level_self_ns(d);
  return total;
}

long long ProfileSnapshot::total_self_ns() const { return level_incl_ns(0); }

long long ProfileSnapshot::level_work(int level) const {
  if (level < 0 || level >= kProfileMaxLevels) return 0;
  long long total = 0;
  for (int k = 0; k < kProfKinds; ++k) total += work[level][k];
  return total;
}

ProfileSnapshot profile_snapshot() {
  ProfileRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ProfileSnapshot s;
  s.levels = r.levels;
  for (int d = 0; d < kProfileMaxLevels; ++d) {
    s.raw_incl_ns[d] = r.raw_incl_ns[d];
    for (int k = 0; k < kProfKinds; ++k) {
      s.self_ns[d][k] = r.self_ns[d][k];
      s.work[d][k] = r.work[d][k];
      s.samples[d][k] = r.samples[d][k];
      s.raw_ns[d][k] = r.raw_ns[d][k];
    }
  }
  for (int p = 0; p < kProfPhases; ++p) {
    s.phase_ns[p] = r.phase_ns[p];
    s.phase_calls[p] = r.phase_calls[p];
  }
  s.runs = r.runs;
  s.wall_ns = r.wall_ns;
  s.timer_cost_ns = profile_timer_cost_ns();
  return s;
}

void profile_reset() {
  ProfileRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.levels = 0;
  for (int d = 0; d < kProfileMaxLevels; ++d) {
    r.raw_incl_ns[d] = 0;
    for (int k = 0; k < kProfKinds; ++k) {
      r.self_ns[d][k] = 0;
      r.work[d][k] = 0;
      r.samples[d][k] = 0;
      r.raw_ns[d][k] = 0;
    }
  }
  for (int p = 0; p < kProfPhases; ++p) {
    r.phase_ns[p] = 0;
    r.phase_calls[p] = 0;
  }
  r.runs = 0;
  r.wall_ns = 0;
}

// ---------------------------------------------------------------------------
// Exports
// ---------------------------------------------------------------------------

std::string profile_json() {
  const ProfileSnapshot s = profile_snapshot();
  bool any_phase = false;
  for (int p = 0; p < kProfPhases; ++p)
    if (s.phase_calls[p] != 0) any_phase = true;
  if (s.runs == 0 && !any_phase) return "{}";

  JsonWriter w;
  w.begin_object();
  w.key("schema").value("bernoulli.profile.v1");
  w.key("runs").value(s.runs);
  w.key("wall_ns").value(s.wall_ns);
  w.key("total_self_ns").value(s.total_self_ns());
  w.key("timer_cost_ns").value(s.timer_cost_ns);
  w.key("sample_every").value(kProfileSampleEvery);
  w.key("levels").begin_array();
  for (int d = 0; d < s.levels && d < kProfileMaxLevels; ++d) {
    w.begin_object();
    w.key("level").value(d);
    w.key("self_ns").value(s.level_self_ns(d));
    w.key("incl_ns").value(s.level_incl_ns(d));
    w.key("work").value(s.level_work(d));
    w.key("raw_incl_ns").value(s.raw_incl_ns[d]);
    w.key("kinds").begin_array();
    for (int k = 0; k < kProfKinds; ++k) {
      if (s.work[d][k] == 0 && s.samples[d][k] == 0) continue;
      w.begin_object();
      w.key("kind").value(profile_kind_name(k));
      w.key("self_ns").value(s.self_ns[d][k]);
      w.key("work").value(s.work[d][k]);
      w.key("samples").value(s.samples[d][k]);
      w.key("raw_ns").value(s.raw_ns[d][k]);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("phases").begin_array();
  for (int p = 0; p < kProfPhases; ++p) {
    if (s.phase_calls[p] == 0) continue;
    w.begin_object();
    w.key("phase").value(profile_phase_name(p));
    w.key("ns").value(s.phase_ns[p]);
    w.key("calls").value(s.phase_calls[p]);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string profile_collapsed() {
  const ProfileSnapshot s = profile_snapshot();
  std::string out;
  for (int d = 0; d < s.levels && d < kProfileMaxLevels; ++d) {
    for (int k = 0; k < kProfKinds; ++k) {
      if (s.self_ns[d][k] == 0 && s.work[d][k] == 0) continue;
      std::string stack = "plan";
      for (int up = 0; up <= d; ++up)
        stack += ";level" + std::to_string(up);
      stack += ';';
      stack += profile_kind_name(k);
      out += stack + ' ' + std::to_string(s.self_ns[d][k]) + '\n';
    }
  }
  for (int p = 0; p < kProfPhases; ++p) {
    if (s.phase_calls[p] == 0) continue;
    out += std::string("plan;") + profile_phase_name(p) + ' ' +
           std::to_string(s.phase_ns[p]) + '\n';
  }
  return out;
}

bool profile_parse_collapsed(
    std::string_view text,
    std::vector<std::pair<std::string, long long>>* out) {
  out->clear();
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string_view::npos || sp == 0 || sp + 1 >= line.size())
      return false;
    const std::string_view frames = line.substr(0, sp);
    const std::string_view count = line.substr(sp + 1);
    long long value = 0;
    for (char c : count) {
      if (c < '0' || c > '9') return false;
      value = value * 10 + (c - '0');
    }
    out->emplace_back(std::string(frames), value);
  }
  return true;
}

}  // namespace bernoulli::support
