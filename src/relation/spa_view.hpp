// Sparse accumulator (SPA) output view: a WRITABLE, INSERTABLE relation
// C(i, j, c) for computations whose result is itself sparse — the fill-in
// case ("expand/scatter" in Bik & Wijshoff's framework). The executor
// probes C at (i, j); on a miss the slot is created on the fly, so
//   DO i / DO k / DO j:  C(i,j) += A(i,k) * B(k,j)
// with sparse A, B and SPA C computes a sparse product whose structure is
// discovered during execution. harvest() extracts the accumulated result
// as a canonical COO matrix.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "formats/coo.hpp"
#include "relation/view.hpp"

namespace bernoulli::relation {

class SpaView final : public RelationView {
 public:
  SpaView(std::string name, index_t rows, index_t cols);
  ~SpaView() override;

  std::string name() const override { return name_; }
  index_t arity() const override { return 2; }
  const IndexLevel& level(index_t depth) const override;
  bool has_value() const override { return true; }
  value_t value_at(index_t pos) const override;
  bool writable() const override { return true; }
  void value_add(index_t pos, value_t delta) override;
  void value_set(index_t pos, value_t v) override;
  std::string value_expr(const std::string& pos) const override;

  /// Stored (inserted) entries so far.
  index_t nnz() const { return static_cast<index_t>(vals_.size()); }

  /// The accumulated matrix, canonicalized. Entries whose value is exactly
  /// 0.0 are kept — the structure is the join of the input structures.
  formats::Coo harvest() const;

  /// Drops all entries (reuse across runs).
  void clear();

 private:
  friend class SpaColLevel;
  std::string name_;
  index_t rows_ = 0;
  index_t cols_ = 0;
  // Per-row hash of column -> slot; values and (row, col) per slot.
  std::vector<std::unordered_map<index_t, index_t>> row_slots_;
  std::vector<value_t> vals_;
  std::vector<index_t> slot_row_;
  std::vector<index_t> slot_col_;
  std::unique_ptr<IndexLevel> rows_level_;
  std::unique_ptr<IndexLevel> cols_level_;
};

}  // namespace bernoulli::relation
