// Relation view over SELL-C-sigma storage: A(i, j, a) with hierarchy
// I -> (J, V), enumerated per ORIGINAL row (the i index is the user's row
// number; the sigma-window length sort only moves where slots live).
//
// Like BsrView this is a textual format spec handed to GenericFormatView —
//
//   format A {
//     level i: dense(rows);
//     level j: sliced(chunk=C, sigma=S, base=ROWBASE, len=ROWLEN,
//                     ind=COLIND) sorted;
//     value VALS;
//   }
//
// — one level spec, no cursor backend. Padding lanes sit beyond every
// row's ROWLEN, so they are never enumerated and cannot perturb outputs
// or counters.
#pragma once

#include <memory>

#include "formats/sell.hpp"
#include "relation/format_spec.hpp"

namespace bernoulli::relation {

class SellView final : public RelationView {
 public:
  SellView(std::string name, const formats::Sell& m);
  ~SellView() override;

  std::string name() const override;
  index_t arity() const override;
  const IndexLevel& level(index_t depth) const override;
  bool has_value() const override;
  value_t value_at(index_t pos) const override;
  std::string value_expr(const std::string& pos) const override;
  std::span<const value_t> value_array() const override;

 private:
  FormatArrays arrays_;
  std::unique_ptr<GenericFormatView> inner_;
};

}  // namespace bernoulli::relation
