#include "relation/format_spec.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "support/error.hpp"

namespace bernoulli::relation {

namespace {

// ---------------------------------------------------------------- levels
// Generic level implementations parameterized by user arrays. These mirror
// the built-in views' levels but carry the user's array names for honest
// code emission.

class GDenseLevel final : public IndexLevel {
 public:
  explicit GDenseLevel(index_t extent) : extent_(extent) {}

  LevelProperties properties() const override {
    return {true, true, SearchCost::kConstant};
  }
  void enumerate(index_t, const EnumFn& fn) const override {
    for (index_t i = 0; i < extent_; ++i)
      if (!fn(i, i)) return;
  }
  index_t search(index_t, index_t index) const override {
    return index >= 0 && index < extent_ ? index : -1;
  }
  double expected_size() const override { return static_cast<double>(extent_); }
  std::string emit_enumerate(const std::string&, const std::string& idx,
                             const std::string& pos) const override {
    return "for (int " + idx + " = 0; " + idx + " < " +
           std::to_string(extent_) + "; ++" + idx + ") { const int " + pos +
           " = " + idx + ";";
  }
  std::string emit_search(const std::string&, const std::string& idx,
                          const std::string& pos) const override {
    return "const int " + pos + " = " + idx + ";  /* dense: O(1) */";
  }

 private:
  index_t extent_;
};

class GCompressedLevel final : public IndexLevel {
 public:
  GCompressedLevel(std::span<const index_t> ptr, std::span<const index_t> ind,
                   bool sorted, std::string ptr_name, std::string ind_name)
      : ptr_(ptr),
        ind_(ind),
        sorted_(sorted),
        ptr_name_(std::move(ptr_name)),
        ind_name_(std::move(ind_name)) {}

  LevelProperties properties() const override {
    return {sorted_, false, sorted_ ? SearchCost::kLog : SearchCost::kLinear};
  }
  void enumerate(index_t parent, const EnumFn& fn) const override {
    const index_t end = ptr_[static_cast<std::size_t>(parent) + 1];
    for (index_t k = ptr_[static_cast<std::size_t>(parent)]; k < end; ++k)
      if (!fn(ind_[static_cast<std::size_t>(k)], k)) return;
  }
  index_t search(index_t parent, index_t index) const override {
    const index_t begin = ptr_[static_cast<std::size_t>(parent)];
    const index_t end = ptr_[static_cast<std::size_t>(parent) + 1];
    if (sorted_) {
      const index_t* lo = ind_.data() + begin;
      const index_t* hi = ind_.data() + end;
      const index_t* it = std::lower_bound(lo, hi, index);
      if (it != hi && *it == index)
        return static_cast<index_t>(it - ind_.data());
      return -1;
    }
    for (index_t k = begin; k < end; ++k)
      if (ind_[static_cast<std::size_t>(k)] == index) return k;
    return -1;
  }
  double expected_size() const override {
    return ptr_.size() > 1 ? static_cast<double>(ind_.size()) /
                                 static_cast<double>(ptr_.size() - 1)
                           : 0.0;
  }
  std::string emit_enumerate(const std::string& parent, const std::string& idx,
                             const std::string& pos) const override {
    return "for (int " + pos + " = " + ptr_name_ + "[" + parent + "]; " +
           pos + " < " + ptr_name_ + "[" + parent + " + 1]; ++" + pos +
           ") { const int " + idx + " = " + ind_name_ + "[" + pos + "];";
  }
  std::string emit_search(const std::string& parent, const std::string& idx,
                          const std::string& pos) const override {
    const char* fn = sorted_ ? "binsearch" : "scan";
    return "const int " + pos + " = " + fn + "(" + ind_name_ + ", " +
           ptr_name_ + "[" + parent + "], " + ptr_name_ + "[" + parent +
           " + 1], " + idx + "); if (" + pos + " < 0) continue;";
  }

 private:
  std::span<const index_t> ptr_;
  std::span<const index_t> ind_;
  bool sorted_;
  std::string ptr_name_;
  std::string ind_name_;
};

class GListLevel final : public IndexLevel {
 public:
  GListLevel(std::span<const index_t> list, bool sorted, std::string name)
      : list_(list), sorted_(sorted), name_(std::move(name)) {}

  LevelProperties properties() const override {
    return {sorted_, false, sorted_ ? SearchCost::kLog : SearchCost::kLinear};
  }
  void enumerate(index_t, const EnumFn& fn) const override {
    for (std::size_t k = 0; k < list_.size(); ++k)
      if (!fn(list_[k], static_cast<index_t>(k))) return;
  }
  index_t search(index_t, index_t index) const override {
    if (sorted_) {
      auto it = std::lower_bound(list_.begin(), list_.end(), index);
      if (it != list_.end() && *it == index)
        return static_cast<index_t>(it - list_.begin());
      return -1;
    }
    for (std::size_t k = 0; k < list_.size(); ++k)
      if (list_[k] == index) return static_cast<index_t>(k);
    return -1;
  }
  double expected_size() const override {
    return static_cast<double>(list_.size());
  }
  std::string emit_enumerate(const std::string&, const std::string& idx,
                             const std::string& pos) const override {
    return "for (int " + pos + " = 0; " + pos + " < " +
           std::to_string(list_.size()) + "; ++" + pos + ") { const int " +
           idx + " = " + name_ + "[" + pos + "];";
  }
  std::string emit_search(const std::string&, const std::string& idx,
                          const std::string& pos) const override {
    const char* fn = sorted_ ? "binsearch" : "scan";
    return "const int " + pos + " = " + std::string(fn) + "(" + name_ +
           ", 0, " + std::to_string(list_.size()) + ", " + idx + "); if (" +
           pos + " < 0) continue;";
  }

 private:
  std::span<const index_t> list_;
  bool sorted_;
  std::string name_;
};

class GFunctionLevel final : public IndexLevel {
 public:
  GFunctionLevel(std::span<const index_t> map, std::string name)
      : map_(map), name_(std::move(name)) {}

  LevelProperties properties() const override {
    return {true, false, SearchCost::kConstant};
  }
  void enumerate(index_t parent, const EnumFn& fn) const override {
    fn(map_[static_cast<std::size_t>(parent)], parent);
  }
  index_t search(index_t parent, index_t index) const override {
    return map_[static_cast<std::size_t>(parent)] == index ? parent : -1;
  }
  double expected_size() const override { return 1.0; }
  std::string emit_enumerate(const std::string& parent, const std::string& idx,
                             const std::string& pos) const override {
    return "{ const int " + idx + " = " + name_ + "[" + parent +
           "]; const int " + pos + " = " + parent + ";";
  }
  std::string emit_search(const std::string& parent, const std::string& idx,
                          const std::string& pos) const override {
    return "if (" + name_ + "[" + parent + "] != " + idx +
           ") continue; const int " + pos + " = " + parent + ";";
  }

 private:
  std::span<const index_t> map_;
  std::string name_;
};

// ---------------------------------------------------------------- parser

struct Token {
  std::string text;
  int line;
};

std::vector<Token> tokenize(const std::string& spec) {
  std::vector<Token> out;
  std::string cur;
  int line = 1;
  auto flush = [&] {
    if (!cur.empty()) {
      out.push_back({cur, line});
      cur.clear();
    }
  };
  for (char c : spec) {
    if (c == '\n') {
      flush();
      ++line;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      flush();
    } else if (c == '{' || c == '}' || c == '(' || c == ')' || c == ':' ||
               c == ';' || c == ',' || c == '=') {
      flush();
      out.push_back({std::string(1, c), line});
    } else {
      cur.push_back(c);
    }
  }
  flush();
  return out;
}

class Parser {
 public:
  explicit Parser(const std::string& spec) : tokens_(tokenize(spec)) {}

  const Token& peek() const {
    BERNOULLI_CHECK_MSG(pos_ < tokens_.size(), "format spec ended early");
    return tokens_[pos_];
  }
  Token next() {
    Token t = peek();
    ++pos_;
    return t;
  }
  void expect(const std::string& text) {
    Token t = next();
    BERNOULLI_CHECK_MSG(t.text == text, "format spec line "
                                            << t.line << ": expected '"
                                            << text << "', got '" << t.text
                                            << "'");
  }
  bool done() const { return pos_ >= tokens_.size(); }

 private:
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

bool peek_is(Parser& p, const std::string& word) {
  return !p.done() && p.peek().text == word;
}

// `sorted` is the default; `unsorted` demotes search to linear and keeps
// the level out of merge joins.
bool parse_sortedness(Parser& p) {
  if (!p.done() && p.peek().text == "sorted") {
    p.next();
    return true;
  }
  if (!p.done() && p.peek().text == "unsorted") {
    p.next();
    return false;
  }
  return true;
}

std::span<const index_t> lookup_index(const FormatArrays& arrays,
                                      const std::string& name, int line) {
  auto it = arrays.index_arrays.find(name);
  BERNOULLI_CHECK_MSG(it != arrays.index_arrays.end(),
                      "format spec line " << line << ": unknown index array '"
                                          << name << "'");
  return it->second;
}

}  // namespace

GenericFormatView::~GenericFormatView() = default;

GenericFormatView::GenericFormatView(const std::string& spec,
                                     const FormatArrays& arrays) {
  Parser p(spec);
  p.expect("format");
  name_ = p.next().text;
  p.expect("{");

  while (peek_is(p, "level")) {
    p.expect("level");
    level_vars_.push_back(p.next().text);
    p.expect(":");
    Token kind = p.next();
    if (kind.text == "dense") {
      p.expect("(");
      Token n = p.next();
      p.expect(")");
      index_t extent = 0;
      try {
        extent = static_cast<index_t>(std::stol(n.text));
      } catch (...) {
        BERNOULLI_CHECK_MSG(false, "format spec line "
                                       << n.line << ": dense() needs a number");
      }
      levels_.push_back(std::make_unique<GDenseLevel>(extent));
    } else if (kind.text == "compressed") {
      p.expect("(");
      p.expect("ptr");
      p.expect("=");
      Token ptr = p.next();
      p.expect(",");
      p.expect("ind");
      p.expect("=");
      Token ind = p.next();
      p.expect(")");
      bool sorted = parse_sortedness(p);
      auto ptr_span = lookup_index(arrays, ptr.text, ptr.line);
      auto ind_span = lookup_index(arrays, ind.text, ind.line);
      BERNOULLI_CHECK_MSG(!ptr_span.empty(),
                          "format spec line " << ptr.line
                                              << ": empty ptr array");
      levels_.push_back(std::make_unique<GCompressedLevel>(
          ptr_span, ind_span, sorted, ptr.text, ind.text));
    } else if (kind.text == "list") {
      p.expect("(");
      p.expect("ind");
      p.expect("=");
      Token ind = p.next();
      p.expect(")");
      bool sorted = parse_sortedness(p);
      levels_.push_back(std::make_unique<GListLevel>(
          lookup_index(arrays, ind.text, ind.line), sorted, ind.text));
    } else if (kind.text == "function") {
      p.expect("(");
      p.expect("map");
      p.expect("=");
      Token map = p.next();
      p.expect(")");
      levels_.push_back(std::make_unique<GFunctionLevel>(
          lookup_index(arrays, map.text, map.line), map.text));
    } else {
      BERNOULLI_CHECK_MSG(false, "format spec line "
                                     << kind.line << ": unknown level kind '"
                                     << kind.text << "'");
    }
    p.expect(";");
  }

  if (peek_is(p, "value")) {
    p.expect("value");
    Token v = p.next();
    auto it = arrays.value_arrays.find(v.text);
    BERNOULLI_CHECK_MSG(it != arrays.value_arrays.end(),
                        "format spec line " << v.line
                                            << ": unknown value array '"
                                            << v.text << "'");
    value_array_ = v.text;
    values_ = it->second;
    p.expect(";");
  }
  p.expect("}");
  BERNOULLI_CHECK_MSG(!levels_.empty(), "format spec declares no levels");
}

const IndexLevel& GenericFormatView::level(index_t depth) const {
  BERNOULLI_CHECK(depth >= 0 && depth < arity());
  return *levels_[static_cast<std::size_t>(depth)];
}

value_t GenericFormatView::value_at(index_t pos) const {
  BERNOULLI_CHECK_MSG(has_value(), name_ << " declares no value array");
  BERNOULLI_CHECK(pos >= 0 &&
                  pos < static_cast<index_t>(values_.size()));
  return values_[static_cast<std::size_t>(pos)];
}

std::string GenericFormatView::value_expr(const std::string& pos) const {
  return value_array_ + "[" + pos + "]";
}

}  // namespace bernoulli::relation
