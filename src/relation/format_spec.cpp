#include "relation/format_spec.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "support/error.hpp"

namespace bernoulli::relation {

namespace {

// ---------------------------------------------------------------- levels
// Generic level implementations parameterized by user arrays. These mirror
// the built-in views' levels but carry the user's array names for honest
// code emission.

class GDenseLevel final : public IndexLevel {
 public:
  explicit GDenseLevel(index_t extent) : extent_(extent) {}

  LevelProperties properties() const override {
    return {true, true, SearchCost::kConstant};
  }
  void enumerate(index_t, const EnumFn& fn) const override {
    for (index_t i = 0; i < extent_; ++i)
      if (!fn(i, i)) return;
  }
  index_t search(index_t, index_t index) const override {
    return index >= 0 && index < extent_ ? index : -1;
  }
  double expected_size() const override { return static_cast<double>(extent_); }
  LevelDescriptor describe() const override {
    LevelDescriptor d;
    d.kind = LevelDescriptor::Kind::kDense;
    d.extent = extent_;
    return d;
  }
  std::string emit_enumerate(const std::string&, const std::string& idx,
                             const std::string& pos) const override {
    return "for (int " + idx + " = 0; " + idx + " < " +
           std::to_string(extent_) + "; ++" + idx + ") { const int " + pos +
           " = " + idx + ";";
  }
  std::string emit_search(const std::string&, const std::string& idx,
                          const std::string& pos) const override {
    return "const int " + pos + " = " + idx + ";  /* dense: O(1) */";
  }

 private:
  index_t extent_;
};

class GCompressedLevel final : public IndexLevel {
 public:
  GCompressedLevel(std::span<const index_t> ptr, std::span<const index_t> ind,
                   bool sorted, std::string ptr_name, std::string ind_name)
      : ptr_(ptr),
        ind_(ind),
        sorted_(sorted),
        ptr_name_(std::move(ptr_name)),
        ind_name_(std::move(ind_name)) {}

  LevelProperties properties() const override {
    return {sorted_, false, sorted_ ? SearchCost::kLog : SearchCost::kLinear};
  }
  void enumerate(index_t parent, const EnumFn& fn) const override {
    const index_t end = ptr_[static_cast<std::size_t>(parent) + 1];
    for (index_t k = ptr_[static_cast<std::size_t>(parent)]; k < end; ++k)
      if (!fn(ind_[static_cast<std::size_t>(k)], k)) return;
  }
  index_t search(index_t parent, index_t index) const override {
    const index_t begin = ptr_[static_cast<std::size_t>(parent)];
    const index_t end = ptr_[static_cast<std::size_t>(parent) + 1];
    if (sorted_) {
      const index_t* lo = ind_.data() + begin;
      const index_t* hi = ind_.data() + end;
      const index_t* it = std::lower_bound(lo, hi, index);
      if (it != hi && *it == index)
        return static_cast<index_t>(it - ind_.data());
      return -1;
    }
    for (index_t k = begin; k < end; ++k)
      if (ind_[static_cast<std::size_t>(k)] == index) return k;
    return -1;
  }
  double expected_size() const override {
    return ptr_.size() > 1 ? static_cast<double>(ind_.size()) /
                                 static_cast<double>(ptr_.size() - 1)
                           : 0.0;
  }
  LevelDescriptor describe() const override {
    LevelDescriptor d;
    d.kind = LevelDescriptor::Kind::kCompressed;
    d.sorted = sorted_;
    d.ptr = ptr_.data();
    d.ptr_len = static_cast<index_t>(ptr_.size());
    d.ind = ind_.data();
    d.ind_len = static_cast<index_t>(ind_.size());
    return d;
  }
  std::string emit_enumerate(const std::string& parent, const std::string& idx,
                             const std::string& pos) const override {
    return "for (int " + pos + " = " + ptr_name_ + "[" + parent + "]; " +
           pos + " < " + ptr_name_ + "[" + parent + " + 1]; ++" + pos +
           ") { const int " + idx + " = " + ind_name_ + "[" + pos + "];";
  }
  std::string emit_search(const std::string& parent, const std::string& idx,
                          const std::string& pos) const override {
    const char* fn = sorted_ ? "binsearch" : "scan";
    return "const int " + pos + " = " + fn + "(" + ind_name_ + ", " +
           ptr_name_ + "[" + parent + "], " + ptr_name_ + "[" + parent +
           " + 1], " + idx + "); if (" + pos + " < 0) continue;";
  }

 private:
  std::span<const index_t> ptr_;
  std::span<const index_t> ind_;
  bool sorted_;
  std::string ptr_name_;
  std::string ind_name_;
};

class GListLevel final : public IndexLevel {
 public:
  GListLevel(std::span<const index_t> list, bool sorted, std::string name)
      : list_(list), sorted_(sorted), name_(std::move(name)) {}

  LevelProperties properties() const override {
    return {sorted_, false, sorted_ ? SearchCost::kLog : SearchCost::kLinear};
  }
  void enumerate(index_t, const EnumFn& fn) const override {
    for (std::size_t k = 0; k < list_.size(); ++k)
      if (!fn(list_[k], static_cast<index_t>(k))) return;
  }
  index_t search(index_t, index_t index) const override {
    if (sorted_) {
      auto it = std::lower_bound(list_.begin(), list_.end(), index);
      if (it != list_.end() && *it == index)
        return static_cast<index_t>(it - list_.begin());
      return -1;
    }
    for (std::size_t k = 0; k < list_.size(); ++k)
      if (list_[k] == index) return static_cast<index_t>(k);
    return -1;
  }
  double expected_size() const override {
    return static_cast<double>(list_.size());
  }
  LevelDescriptor describe() const override {
    LevelDescriptor d;
    d.kind = LevelDescriptor::Kind::kList;
    d.sorted = sorted_;
    d.ind = list_.data();
    d.ind_len = static_cast<index_t>(list_.size());
    return d;
  }
  std::string emit_enumerate(const std::string&, const std::string& idx,
                             const std::string& pos) const override {
    return "for (int " + pos + " = 0; " + pos + " < " +
           std::to_string(list_.size()) + "; ++" + pos + ") { const int " +
           idx + " = " + name_ + "[" + pos + "];";
  }
  std::string emit_search(const std::string&, const std::string& idx,
                          const std::string& pos) const override {
    const char* fn = sorted_ ? "binsearch" : "scan";
    return "const int " + pos + " = " + std::string(fn) + "(" + name_ +
           ", 0, " + std::to_string(list_.size()) + ", " + idx + "); if (" +
           pos + " < 0) continue;";
  }

 private:
  std::span<const index_t> list_;
  bool sorted_;
  std::string name_;
};

class GFunctionLevel final : public IndexLevel {
 public:
  GFunctionLevel(std::span<const index_t> map, std::string name)
      : map_(map), name_(std::move(name)) {}

  LevelProperties properties() const override {
    return {true, false, SearchCost::kConstant};
  }
  void enumerate(index_t parent, const EnumFn& fn) const override {
    fn(map_[static_cast<std::size_t>(parent)], parent);
  }
  index_t search(index_t parent, index_t index) const override {
    return map_[static_cast<std::size_t>(parent)] == index ? parent : -1;
  }
  double expected_size() const override { return 1.0; }
  LevelDescriptor describe() const override {
    LevelDescriptor d;
    d.kind = LevelDescriptor::Kind::kSingleton;
    d.map = map_.data();
    d.map_len = static_cast<index_t>(map_.size());
    return d;
  }
  std::string emit_enumerate(const std::string& parent, const std::string& idx,
                             const std::string& pos) const override {
    return "{ const int " + idx + " = " + name_ + "[" + parent +
           "]; const int " + pos + " = " + parent + ";";
  }
  std::string emit_search(const std::string& parent, const std::string& idx,
                          const std::string& pos) const override {
    return "if (" + name_ + "[" + parent + "] != " + idx +
           ") continue; const int " + pos + " = " + parent + ";";
  }

 private:
  std::span<const index_t> map_;
  std::string name_;
};

// blocked(r=R, c=C, ptr=P, ind=I): BCSR block rows. The parent is a
// SCALAR row index i; block row i/R owns blocks P[i/R] .. P[i/R + 1]);
// block b stores an R x C dense tile at value offset b*R*C, so row i's
// lane of block b contributes C children: idx = I[b]*C + cc at
// pos = b*R*C + (i%R)*C + cc. Fill zeros inside a stored tile ARE
// enumerated — that is the format's bargain for register-blocked drains.
class GBlockedLevel final : public IndexLevel {
 public:
  GBlockedLevel(std::span<const index_t> ptr, std::span<const index_t> ind,
                index_t r, index_t c, bool sorted, std::string ptr_name,
                std::string ind_name)
      : ptr_(ptr),
        ind_(ind),
        r_(r),
        c_(c),
        sorted_(sorted),
        ptr_name_(std::move(ptr_name)),
        ind_name_(std::move(ind_name)) {}

  LevelProperties properties() const override {
    return {sorted_, false, sorted_ ? SearchCost::kLog : SearchCost::kLinear};
  }
  void enumerate(index_t parent, const EnumFn& fn) const override {
    const index_t br = parent / r_;
    const index_t rofs = (parent % r_) * c_;
    const index_t bsz = r_ * c_;
    const index_t end = ptr_[static_cast<std::size_t>(br) + 1];
    for (index_t b = ptr_[static_cast<std::size_t>(br)]; b < end; ++b) {
      const index_t jb = ind_[static_cast<std::size_t>(b)] * c_;
      const index_t pb = b * bsz + rofs;
      for (index_t cc = 0; cc < c_; ++cc)
        if (!fn(jb + cc, pb + cc)) return;
    }
  }
  index_t search(index_t parent, index_t index) const override {
    if (index < 0) return -1;
    const index_t br = parent / r_;
    const index_t jb = index / c_;
    const index_t cc = index % c_;
    const index_t lo = ptr_[static_cast<std::size_t>(br)];
    const index_t hi = ptr_[static_cast<std::size_t>(br) + 1];
    auto hit = [&](index_t b) {
      return b * r_ * c_ + (parent % r_) * c_ + cc;
    };
    if (sorted_) {
      const index_t* it =
          std::lower_bound(ind_.data() + lo, ind_.data() + hi, jb);
      if (it != ind_.data() + hi && *it == jb)
        return hit(static_cast<index_t>(it - ind_.data()));
      return -1;
    }
    for (index_t b = lo; b < hi; ++b)
      if (ind_[static_cast<std::size_t>(b)] == jb) return hit(b);
    return -1;
  }
  double expected_size() const override {
    return ptr_.size() > 1 ? static_cast<double>(ind_.size()) * c_ /
                                 static_cast<double>(ptr_.size() - 1)
                           : 0.0;
  }
  LevelDescriptor describe() const override {
    LevelDescriptor d;
    d.kind = LevelDescriptor::Kind::kBlocked;
    d.sorted = sorted_;
    d.ptr = ptr_.data();
    d.ptr_len = static_cast<index_t>(ptr_.size());
    d.ind = ind_.data();
    d.ind_len = static_cast<index_t>(ind_.size());
    d.block_r = r_;
    d.block_c = c_;
    return d;
  }
  std::string emit_enumerate(const std::string& parent, const std::string& idx,
                             const std::string& pos) const override {
    const std::string r = std::to_string(r_), c = std::to_string(c_);
    const std::string rc = std::to_string(r_ * c_);
    return "for (int b = " + ptr_name_ + "[" + parent + " / " + r + "]; b < " +
           ptr_name_ + "[" + parent + " / " + r + " + 1]; ++b) for (int cc = " +
           "0; cc < " + c + "; ++cc) { const int " + pos + " = b * " + rc +
           " + (" + parent + " % " + r + ") * " + c + " + cc; const int " +
           idx + " = " + ind_name_ + "[b] * " + c + " + cc;";
  }
  std::string emit_search(const std::string& parent, const std::string& idx,
                          const std::string& pos) const override {
    const char* fn = sorted_ ? "binsearch" : "scan";
    return "const int b_ = " + std::string(fn) + "(" + ind_name_ + ", " +
           ptr_name_ + "[" + parent + " / " + std::to_string(r_) + "], " +
           ptr_name_ + "[" + parent + " / " + std::to_string(r_) + " + 1], " +
           idx + " / " + std::to_string(c_) + "); if (b_ < 0) continue; " +
           "const int " + pos + " = b_ * " + std::to_string(r_ * c_) + " + (" +
           parent + " % " + std::to_string(r_) + ") * " + std::to_string(c_) +
           " + " + idx + " % " + std::to_string(c_) + ";";
  }

 private:
  std::span<const index_t> ptr_;
  std::span<const index_t> ind_;
  index_t r_;
  index_t c_;
  bool sorted_;
  std::string ptr_name_;
  std::string ind_name_;
};

// sliced(chunk=C, sigma=S, base=B, len=L, ind=I): SELL-C-sigma. Rows are
// gathered into chunks of C lanes (sorted by length inside sigma-row
// windows); entry k of row i sits at pos = B[i] + k*C for k in
// [0, L[i]). Padding lanes beyond L[i] are never enumerated, so slack
// cannot perturb outputs or counters.
class GSlicedLevel final : public IndexLevel {
 public:
  GSlicedLevel(std::span<const index_t> base, std::span<const index_t> len,
               std::span<const index_t> ind, index_t chunk, index_t sigma,
               bool sorted, std::string base_name, std::string len_name,
               std::string ind_name)
      : base_(base),
        len_(len),
        ind_(ind),
        chunk_(chunk),
        sigma_(sigma),
        sorted_(sorted),
        base_name_(std::move(base_name)),
        len_name_(std::move(len_name)),
        ind_name_(std::move(ind_name)) {
    long long total = 0;
    for (index_t l : len_) total += l;
    avg_ = len_.empty() ? 0.0
                        : static_cast<double>(total) /
                              static_cast<double>(len_.size());
  }

  LevelProperties properties() const override {
    return {sorted_, false, SearchCost::kLinear};
  }
  void enumerate(index_t parent, const EnumFn& fn) const override {
    const index_t b = base_[static_cast<std::size_t>(parent)];
    const index_t n = len_[static_cast<std::size_t>(parent)];
    for (index_t k = 0; k < n; ++k) {
      const index_t pos = b + k * chunk_;
      if (!fn(ind_[static_cast<std::size_t>(pos)], pos)) return;
    }
  }
  index_t search(index_t parent, index_t index) const override {
    const index_t b = base_[static_cast<std::size_t>(parent)];
    const index_t n = len_[static_cast<std::size_t>(parent)];
    for (index_t k = 0; k < n; ++k) {
      const index_t pos = b + k * chunk_;
      if (ind_[static_cast<std::size_t>(pos)] == index) return pos;
    }
    return -1;
  }
  double expected_size() const override { return avg_; }
  LevelDescriptor describe() const override {
    LevelDescriptor d;
    d.kind = LevelDescriptor::Kind::kSliced;
    d.sorted = sorted_;
    d.ind = ind_.data();
    d.ind_len = static_cast<index_t>(ind_.size());
    d.off = base_.data();
    d.off_len = static_cast<index_t>(base_.size());
    d.len = len_.data();
    d.len_len = static_cast<index_t>(len_.size());
    d.chunk = chunk_;
    d.sigma = sigma_;
    return d;
  }
  std::string emit_enumerate(const std::string& parent, const std::string& idx,
                             const std::string& pos) const override {
    return "for (int k = 0; k < " + len_name_ + "[" + parent +
           "]; ++k) { const int " + pos + " = " + base_name_ + "[" + parent +
           "] + k * " + std::to_string(chunk_) + "; const int " + idx +
           " = " + ind_name_ + "[" + pos + "];";
  }
  std::string emit_search(const std::string& parent, const std::string& idx,
                          const std::string& pos) const override {
    return "const int " + pos + " = sell_scan(" + ind_name_ + ", " +
           base_name_ + "[" + parent + "], " + len_name_ + "[" + parent +
           "], " + std::to_string(chunk_) + ", " + idx + "); if (" + pos +
           " < 0) continue;";
  }

 private:
  std::span<const index_t> base_;
  std::span<const index_t> len_;
  std::span<const index_t> ind_;
  index_t chunk_;
  index_t sigma_;
  bool sorted_;
  double avg_;
  std::string base_name_;
  std::string len_name_;
  std::string ind_name_;
};

// ---------------------------------------------------------------- parser

struct Token {
  std::string text;
  int line;
};

std::vector<Token> tokenize(const std::string& spec) {
  std::vector<Token> out;
  std::string cur;
  int line = 1;
  auto flush = [&] {
    if (!cur.empty()) {
      out.push_back({cur, line});
      cur.clear();
    }
  };
  for (char c : spec) {
    if (c == '\n') {
      flush();
      ++line;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      flush();
    } else if (c == '{' || c == '}' || c == '(' || c == ')' || c == ':' ||
               c == ';' || c == ',' || c == '=') {
      flush();
      out.push_back({std::string(1, c), line});
    } else {
      cur.push_back(c);
    }
  }
  flush();
  return out;
}

class Parser {
 public:
  explicit Parser(const std::string& spec) : tokens_(tokenize(spec)) {}

  const Token& peek() const {
    BERNOULLI_CHECK_MSG(pos_ < tokens_.size(), "format spec ended early");
    return tokens_[pos_];
  }
  Token next() {
    Token t = peek();
    ++pos_;
    return t;
  }
  void expect(const std::string& text) {
    Token t = next();
    BERNOULLI_CHECK_MSG(t.text == text, "format spec line "
                                            << t.line << ": expected '"
                                            << text << "', got '" << t.text
                                            << "'");
  }
  bool done() const { return pos_ >= tokens_.size(); }

 private:
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

bool peek_is(Parser& p, const std::string& word) {
  return !p.done() && p.peek().text == word;
}

// `sorted` is the default; `unsorted` demotes search to linear and keeps
// the level out of merge joins.
bool parse_sortedness(Parser& p) {
  if (!p.done() && p.peek().text == "sorted") {
    p.next();
    return true;
  }
  if (!p.done() && p.peek().text == "unsorted") {
    p.next();
    return false;
  }
  return true;
}

std::span<const index_t> lookup_index(const FormatArrays& arrays,
                                      const std::string& name, int line) {
  auto it = arrays.index_arrays.find(name);
  BERNOULLI_CHECK_MSG(it != arrays.index_arrays.end(),
                      "format spec line " << line << ": unknown index array '"
                                          << name << "'");
  return it->second;
}

index_t parse_number(const Token& t, const char* what) {
  try {
    return static_cast<index_t>(std::stol(t.text));
  } catch (...) {
    BERNOULLI_CHECK_MSG(false, "format spec line " << t.line << ": " << what
                                                   << " needs a number");
  }
  return 0;
}

// One `key=value` pair of a parenthesized parameter list, with the `,`
// separator before every pair but the first.
Token parse_kv(Parser& p, const char* key, bool first) {
  if (!first) p.expect(",");
  p.expect(key);
  p.expect("=");
  return p.next();
}

}  // namespace

GenericFormatView::~GenericFormatView() = default;

GenericFormatView::GenericFormatView(const std::string& spec,
                                     const FormatArrays& arrays) {
  Parser p(spec);
  p.expect("format");
  name_ = p.next().text;
  p.expect("{");

  while (peek_is(p, "level")) {
    p.expect("level");
    level_vars_.push_back(p.next().text);
    p.expect(":");
    Token kind = p.next();
    if (kind.text == "dense") {
      p.expect("(");
      Token n = p.next();
      p.expect(")");
      index_t extent = 0;
      try {
        extent = static_cast<index_t>(std::stol(n.text));
      } catch (...) {
        BERNOULLI_CHECK_MSG(false, "format spec line "
                                       << n.line << ": dense() needs a number");
      }
      levels_.push_back(std::make_unique<GDenseLevel>(extent));
    } else if (kind.text == "compressed") {
      p.expect("(");
      p.expect("ptr");
      p.expect("=");
      Token ptr = p.next();
      p.expect(",");
      p.expect("ind");
      p.expect("=");
      Token ind = p.next();
      p.expect(")");
      bool sorted = parse_sortedness(p);
      auto ptr_span = lookup_index(arrays, ptr.text, ptr.line);
      auto ind_span = lookup_index(arrays, ind.text, ind.line);
      BERNOULLI_CHECK_MSG(!ptr_span.empty(),
                          "format spec line " << ptr.line
                                              << ": empty ptr array");
      levels_.push_back(std::make_unique<GCompressedLevel>(
          ptr_span, ind_span, sorted, ptr.text, ind.text));
    } else if (kind.text == "list") {
      p.expect("(");
      p.expect("ind");
      p.expect("=");
      Token ind = p.next();
      p.expect(")");
      bool sorted = parse_sortedness(p);
      levels_.push_back(std::make_unique<GListLevel>(
          lookup_index(arrays, ind.text, ind.line), sorted, ind.text));
    } else if (kind.text == "function") {
      p.expect("(");
      p.expect("map");
      p.expect("=");
      Token map = p.next();
      p.expect(")");
      levels_.push_back(std::make_unique<GFunctionLevel>(
          lookup_index(arrays, map.text, map.line), map.text));
    } else if (kind.text == "blocked") {
      p.expect("(");
      Token rt = parse_kv(p, "r", /*first=*/true);
      Token ct = parse_kv(p, "c", /*first=*/false);
      Token ptr = parse_kv(p, "ptr", /*first=*/false);
      Token ind = parse_kv(p, "ind", /*first=*/false);
      p.expect(")");
      bool sorted = parse_sortedness(p);
      const index_t r = parse_number(rt, "blocked() r");
      const index_t c = parse_number(ct, "blocked() c");
      BERNOULLI_CHECK_MSG(r > 0 && c > 0,
                          "format spec line "
                              << rt.line
                              << ": blocked() needs positive block dims, got r="
                              << r << " c=" << c);
      auto ptr_span = lookup_index(arrays, ptr.text, ptr.line);
      auto ind_span = lookup_index(arrays, ind.text, ind.line);
      BERNOULLI_CHECK_MSG(!ptr_span.empty(), "format spec line "
                                                 << ptr.line
                                                 << ": empty ptr array");
      if (!levels_.empty()) {
        // The scalar-row parent level must tile exactly into block rows.
        const LevelDescriptor pd = levels_.back()->describe();
        const index_t rows = r * static_cast<index_t>(ptr_span.size() - 1);
        BERNOULLI_CHECK_MSG(
            pd.kind != LevelDescriptor::Kind::kDense || pd.extent == rows,
            "format spec line " << rt.line << ": blocked(r=" << r
                                << ") covers " << rows << " rows but parent "
                                << "level is dense(" << pd.extent << ")");
      }
      levels_.push_back(std::make_unique<GBlockedLevel>(
          ptr_span, ind_span, r, c, sorted, ptr.text, ind.text));
    } else if (kind.text == "sliced") {
      p.expect("(");
      Token chunk_t = parse_kv(p, "chunk", /*first=*/true);
      Token sigma_t = parse_kv(p, "sigma", /*first=*/false);
      Token base = parse_kv(p, "base", /*first=*/false);
      Token len = parse_kv(p, "len", /*first=*/false);
      Token ind = parse_kv(p, "ind", /*first=*/false);
      p.expect(")");
      bool sorted = parse_sortedness(p);
      const index_t chunk = parse_number(chunk_t, "sliced() chunk");
      const index_t sigma = parse_number(sigma_t, "sliced() sigma");
      BERNOULLI_CHECK_MSG(chunk > 0, "format spec line "
                                         << chunk_t.line
                                         << ": sliced() needs a positive "
                                         << "chunk, got " << chunk);
      BERNOULLI_CHECK_MSG(sigma > 0 && sigma % chunk == 0,
                          "format spec line "
                              << sigma_t.line << ": sliced() sigma must be a "
                              << "positive multiple of chunk, got sigma="
                              << sigma << " chunk=" << chunk);
      auto base_span = lookup_index(arrays, base.text, base.line);
      auto len_span = lookup_index(arrays, len.text, len.line);
      auto ind_span = lookup_index(arrays, ind.text, ind.line);
      BERNOULLI_CHECK_MSG(base_span.size() == len_span.size(),
                          "format spec line "
                              << base.line << ": sliced() base and len must "
                              << "have one entry per row (|" << base.text
                              << "|=" << base_span.size() << ", |" << len.text
                              << "|=" << len_span.size() << ")");
      levels_.push_back(std::make_unique<GSlicedLevel>(
          base_span, len_span, ind_span, chunk, sigma, sorted, base.text,
          len.text, ind.text));
    } else {
      BERNOULLI_CHECK_MSG(false, "format spec line "
                                     << kind.line << ": unknown level kind '"
                                     << kind.text << "'");
    }
    p.expect(";");
  }

  if (peek_is(p, "value")) {
    p.expect("value");
    Token v = p.next();
    auto it = arrays.value_arrays.find(v.text);
    BERNOULLI_CHECK_MSG(it != arrays.value_arrays.end(),
                        "format spec line " << v.line
                                            << ": unknown value array '"
                                            << v.text << "'");
    value_array_ = v.text;
    values_ = it->second;
    p.expect(";");
  }
  p.expect("}");
  BERNOULLI_CHECK_MSG(!levels_.empty(), "format spec declares no levels");
}

const IndexLevel& GenericFormatView::level(index_t depth) const {
  BERNOULLI_CHECK(depth >= 0 && depth < arity());
  return *levels_[static_cast<std::size_t>(depth)];
}

value_t GenericFormatView::value_at(index_t pos) const {
  BERNOULLI_CHECK_MSG(has_value(), name_ << " declares no value array");
  BERNOULLI_CHECK(pos >= 0 &&
                  pos < static_cast<index_t>(values_.size()));
  return values_[static_cast<std::size_t>(pos)];
}

std::string GenericFormatView::value_expr(const std::string& pos) const {
  return value_array_ + "[" + pos + "]";
}

}  // namespace bernoulli::relation
