#include "relation/jds_view.hpp"

#include "support/error.hpp"

namespace bernoulli::relation {

namespace {

class JdsRowLevel final : public IndexLevel {
 public:
  explicit JdsRowLevel(index_t rows) : rows_(rows) {}

  LevelProperties properties() const override {
    return {/*sorted=*/true, /*dense=*/true, SearchCost::kConstant};
  }

  void enumerate(index_t, const EnumFn& fn) const override {
    for (index_t ip = 0; ip < rows_; ++ip)
      if (!fn(ip, ip)) return;
  }

  index_t search(index_t, index_t index) const override {
    return index >= 0 && index < rows_ ? index : -1;
  }

  double expected_size() const override { return static_cast<double>(rows_); }

  LevelDescriptor describe() const override {
    LevelDescriptor d;
    d.kind = LevelDescriptor::Kind::kDense;
    d.extent = rows_;
    return d;
  }

  std::string emit_enumerate(const std::string&, const std::string& idx,
                             const std::string& pos) const override {
    return "for (int " + idx + " = 0; " + idx + " < " +
           std::to_string(rows_) + "; ++" + idx + ") { const int " + pos +
           " = " + idx + ";";
  }

  std::string emit_search(const std::string&, const std::string& idx,
                          const std::string& pos) const override {
    return "const int " + pos + " = " + idx + ";  /* dense: O(1) */";
  }

 private:
  index_t rows_;
};

class JdsColLevel final : public IndexLevel {
 public:
  JdsColLevel(const formats::Jds& m, std::span<const index_t> rowlen,
              std::string name)
      : m_(m), rowlen_(rowlen), name_(std::move(name)) {}

  LevelProperties properties() const override {
    // Entries of a permuted row come from consecutive jagged diagonals;
    // they are in the row's original CSR order, hence sorted by column.
    return {/*sorted=*/true, /*dense=*/false, SearchCost::kLinear};
  }

  void enumerate(index_t parent, const EnumFn& fn) const override {
    auto jdptr = m_.jdptr();
    const index_t len = rowlen_[static_cast<std::size_t>(parent)];
    for (index_t k = 0; k < len; ++k) {
      index_t pos = jdptr[static_cast<std::size_t>(k)] + parent;
      if (!fn(m_.colind()[static_cast<std::size_t>(pos)], pos)) return;
    }
  }

  index_t search(index_t parent, index_t index) const override {
    auto jdptr = m_.jdptr();
    const index_t len = rowlen_[static_cast<std::size_t>(parent)];
    for (index_t k = 0; k < len; ++k) {
      index_t pos = jdptr[static_cast<std::size_t>(k)] + parent;
      if (m_.colind()[static_cast<std::size_t>(pos)] == index) return pos;
    }
    return -1;
  }

  double expected_size() const override {
    return m_.rows() > 0 ? static_cast<double>(m_.nnz()) / m_.rows() : 0.0;
  }

  // The k-th entry of permuted row i' sits at jdptr[k] + i': an offset-
  // list walk over COLIND with off = jdptr, base = parent.
  LevelDescriptor describe() const override {
    LevelDescriptor d;
    d.kind = LevelDescriptor::Kind::kOffsets;
    d.ind = m_.colind().data();
    d.ind_len = static_cast<index_t>(m_.colind().size());
    d.off = m_.jdptr().data();
    d.off_len = static_cast<index_t>(m_.jdptr().size());
    d.len = rowlen_.data();
    d.len_len = static_cast<index_t>(rowlen_.size());
    return d;
  }

  std::string emit_enumerate(const std::string& parent, const std::string& idx,
                             const std::string& pos) const override {
    return "for (int k = 0; k < " + name_ + "_ROWLEN[" + parent +
           "]; ++k) { const int " + pos + " = " + name_ + "_JDPTR[k] + " +
           parent + "; const int " + idx + " = " + name_ + "_COLIND[" + pos +
           "];";
  }

  std::string emit_search(const std::string& parent, const std::string& idx,
                          const std::string& pos) const override {
    return "const int " + pos + " = jds_scan(" + name_ + ", " + parent +
           ", " + idx + "); if (" + pos + " < 0) continue;";
  }

 private:
  const formats::Jds& m_;
  std::span<const index_t> rowlen_;
  std::string name_;
};

}  // namespace

JdsView::JdsView(std::string name, const formats::Jds& m)
    : name_(std::move(name)), m_(m) {
  // Per-permuted-row entry count: row ip has entries on every jagged
  // diagonal long enough to reach it.
  rowlen_.assign(static_cast<std::size_t>(m.rows()), 0);
  auto jdptr = m.jdptr();
  for (index_t k = 0; k < m.num_jdiags(); ++k) {
    index_t len = jdptr[static_cast<std::size_t>(k) + 1] -
                  jdptr[static_cast<std::size_t>(k)];
    for (index_t ip = 0; ip < len; ++ip)
      ++rowlen_[static_cast<std::size_t>(ip)];
  }
  rows_ = std::make_unique<JdsRowLevel>(m.rows());
  cols_ = std::make_unique<JdsColLevel>(m_, rowlen_, name_);
}

const IndexLevel& JdsView::level(index_t depth) const {
  BERNOULLI_CHECK(depth == 0 || depth == 1);
  return depth == 0 ? *rows_ : *cols_;
}

value_t JdsView::value_at(index_t pos) const {
  return m_.vals()[static_cast<std::size_t>(pos)];
}

std::string JdsView::value_expr(const std::string& pos) const {
  return name_ + "_VALS[" + pos + "]";
}

std::span<const value_t> JdsView::value_array() const { return m_.vals(); }

std::vector<index_t> JdsView::original_to_permuted() const {
  return {m_.iperm().begin(), m_.iperm().end()};
}

}  // namespace bernoulli::relation
