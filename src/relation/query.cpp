#include "relation/query.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace bernoulli::relation {

void Query::validate() const {
  BERNOULLI_CHECK_MSG(!vars.empty(), "query has no loop variables");
  for (std::size_t i = 0; i < vars.size(); ++i)
    for (std::size_t j = i + 1; j < vars.size(); ++j)
      BERNOULLI_CHECK_MSG(vars[i] != vars[j],
                          "duplicate loop variable " << vars[i]);

  std::vector<bool> covered(vars.size(), false);
  for (const auto& r : relations) {
    BERNOULLI_CHECK(r.view != nullptr);
    BERNOULLI_CHECK_MSG(
        static_cast<index_t>(r.vars.size()) == r.view->arity(),
        r.view->name() << ": bound " << r.vars.size() << " vars but arity is "
                       << r.view->arity());
    for (const auto& v : r.vars) {
      auto it = std::find(vars.begin(), vars.end(), v);
      BERNOULLI_CHECK_MSG(it != vars.end(),
                          r.view->name() << " binds unknown variable " << v);
      covered[static_cast<std::size_t>(it - vars.begin())] = true;
    }
    if (r.writes)
      BERNOULLI_CHECK_MSG(r.view->writable(),
                          r.view->name() << " is written but not writable");
  }
  for (std::size_t i = 0; i < vars.size(); ++i)
    BERNOULLI_CHECK_MSG(covered[i],
                        "variable " << vars[i] << " bound by no relation");
}

}  // namespace bernoulli::relation
