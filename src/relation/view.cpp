#include "relation/view.hpp"

#include "support/error.hpp"

namespace bernoulli::relation {

index_t IndexLevel::insert(index_t, index_t) {
  BERNOULLI_CHECK_MSG(false, "this access method does not support insertion");
  __builtin_unreachable();
}

void IndexLevel::begin_cursor(index_t parent, Cursor& c,
                              CursorBuffer& scratch) const {
  const LevelDescriptor d = describe();
  if (d.kind != LevelDescriptor::Kind::kOpaque) {
    descriptor_cursor(d, parent, c);
    return;
  }
  scratch.clear();
  enumerate(parent, [&](index_t idx, index_t pos) {
    scratch.push_back({idx, pos});
    return true;
  });
  c = Cursor{};
  c.kind = Cursor::Kind::kBuffered;
  c.buf = scratch.data();
  c.cur = 0;
  c.end = static_cast<index_t>(scratch.size());
}

std::string IndexLevel::emit_enumerate(const std::string& parent,
                                       const std::string& idx,
                                       const std::string& pos) const {
  return "for ((" + idx + ", " + pos + ") in level.enumerate(" + parent +
         ")) {";
}

std::string IndexLevel::emit_search(const std::string& parent,
                                    const std::string& idx,
                                    const std::string& pos) const {
  return "int " + pos + " = level.search(" + parent + ", " + idx + "); if (" +
         pos + " < 0) continue;";
}

std::string RelationView::value_expr(const std::string& pos) const {
  return name() + ".value(" + pos + ")";
}

value_t RelationView::value_at(index_t) const {
  BERNOULLI_CHECK_MSG(false, "relation " << name() << " has no value field");
  __builtin_unreachable();
}

void RelationView::value_add(index_t, value_t) {
  BERNOULLI_CHECK_MSG(false, "relation " << name() << " is not writable");
}

void RelationView::value_set(index_t, value_t) {
  BERNOULLI_CHECK_MSG(false, "relation " << name() << " is not writable");
}

}  // namespace bernoulli::relation
