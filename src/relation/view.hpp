// Relations as hierarchical views of array storage (paper §2.1).
//
// A sparse format is described to the compiler by its *access methods*:
// each level of the index hierarchy (e.g. CCS is J -> (I, V)) provides an
// enumeration method and a search method, plus properties (sortedness,
// search cost, denseness) that the planner uses to choose join orders and
// join implementations. The compiler never sees COLP/ROWIND/VALS — only
// these methods — which is what makes the format set extensible.
//
// Runtime protocol: a *position* is an opaque index_t cursor into a level
// (e.g. an offset into VALS). Level d enumerates/searches children of a
// parent position from level d-1 (the root parent position is 0). The
// position at the deepest level addresses the value.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "relation/cursor.hpp"
#include "support/types.hpp"

namespace bernoulli::relation {

/// Cost class of a level's search method, coarsened the way a query
/// optimizer consumes it.
enum class SearchCost {
  kConstant,  // O(1): dense offsets, hash indexes
  kLog,       // O(log n): binary search in a sorted segment
  kLinear,    // O(n): scan
};

struct LevelProperties {
  bool sorted = false;  // enumeration yields ascending indices
  bool dense = false;   // enumeration covers every index of a contiguous range
  SearchCost search_cost = SearchCost::kLinear;
};

/// Visit callback for enumeration: (index value, child position); return
/// false to stop early.
using EnumFn = std::function<bool(index_t index, index_t pos)>;

class IndexLevel {
 public:
  virtual ~IndexLevel() = default;

  virtual LevelProperties properties() const = 0;

  /// Enumerates the (index, position) pairs under `parent`.
  virtual void enumerate(index_t parent, const EnumFn& fn) const = 0;

  /// Position of child with the given index under `parent`, or -1.
  virtual index_t search(index_t parent, index_t index) const = 0;

  /// For insertable levels (sparse accumulators): creates the child and
  /// returns its position. Executors call this when a WRITTEN relation's
  /// probe misses — the fill-in case of sparse outputs. Default: levels
  /// are not insertable.
  virtual bool insertable() const { return false; }
  virtual index_t insert(index_t parent, index_t index);

  /// Estimated number of children of one parent (planner cardinality).
  virtual double expected_size() const = 0;

  // --- Linked-executor hooks (relation/cursor.hpp) -------------------
  // A level declares its storage shape ONCE via describe(); the cursor,
  // search and enumeration lowerings all derive from that descriptor in
  // relation/descriptor.cpp, so a new format is one describe() — not a
  // cursor backend, a search lowering and an emitter case by hand.
  // kOpaque (the default) keeps the fully-virtual fallbacks: cursors
  // materialize enumerate() into a buffer, probes go through search().

  /// Flat storage descriptor, valid for every parent. Default: kOpaque
  /// (no flat shape — stateful or growable storage).
  virtual LevelDescriptor describe() const { return {}; }

  /// Fills `c` with a cursor over the children of `parent`, derived from
  /// describe(). For kOpaque levels the adapter materializes enumerate()
  /// into `scratch` (cleared first) and returns a kBuffered cursor over
  /// it; `scratch` must outlive the cursor's use and is untouched on the
  /// descriptor path.
  void begin_cursor(index_t parent, Cursor& c, CursorBuffer& scratch) const;

  /// Flat search descriptor derived from describe(). kVirtual (probe
  /// through IndexLevel::search) for kOpaque and drive-only shapes.
  SearchSpec search_spec() const { return descriptor_search(describe()); }

  /// Flat enumeration descriptor derived from describe() — what the
  /// specializing code generator compiles into a C loop. kNone for
  /// kOpaque levels (specialization falls back to the linked engine).
  EnumSpec enum_spec() const { return descriptor_enum(describe()); }

  // --- Codegen hooks -------------------------------------------------
  // The compiler's emitter materializes a plan as C-like source; each
  // access method renders its own enumeration loop header and search
  // statement. `parent`, `idx`, `pos` are identifier names to use. The
  // defaults emit generic access-method calls, which is exactly what the
  // Bernoulli compiler falls back to for formats without inlined methods.

  /// A `for (...) {`-style header binding `idx` and `pos`.
  virtual std::string emit_enumerate(const std::string& parent,
                                     const std::string& idx,
                                     const std::string& pos) const;

  /// Statements that bind `pos` from a known `idx`, `continue`-ing on miss.
  virtual std::string emit_search(const std::string& parent,
                                  const std::string& idx,
                                  const std::string& pos) const;
};

/// A relation R(v1, ..., vk [, value]) viewed through its access-method
/// hierarchy. Levels are numbered outermost-first; level d binds index
/// field d of the hierarchy.
class RelationView {
 public:
  virtual ~RelationView() = default;

  virtual std::string name() const = 0;

  /// Number of index fields (hierarchy depth).
  virtual index_t arity() const = 0;

  virtual const IndexLevel& level(index_t depth) const = 0;

  /// Whether the relation carries a value field (sparse matrices and
  /// vectors do; the iteration-space relation I(i,j) does not).
  virtual bool has_value() const { return false; }

  /// Value addressed by the deepest-level position.
  virtual value_t value_at(index_t leaf_pos) const;

  /// Mutable value access for output relations; default: not writable.
  virtual bool writable() const { return false; }
  virtual void value_add(index_t leaf_pos, value_t delta);
  virtual void value_set(index_t leaf_pos, value_t v);

  /// C expression for the value addressed by position identifier `pos`
  /// (codegen hook; default renders a generic accessor call).
  virtual std::string value_expr(const std::string& pos) const;

  /// Raw value storage addressed by leaf positions, when the format keeps
  /// values in one flat array whose address is stable across a run (the
  /// linked executor's fast path — one load instead of a virtual call per
  /// tuple). Empty span: no stable flat array; use value_at/value_add.
  /// Views whose storage can grow mid-run (sparse accumulators) must NOT
  /// expose a raw array.
  virtual std::span<const value_t> value_array() const { return {}; }
  virtual std::span<value_t> value_array_mut() { return {}; }
};

}  // namespace bernoulli::relation
