// Flat cursors: the linked executor's view of an access method.
//
// The interpreter (compiler/executor.cpp) drives enumeration through the
// push-style EnumFn callback — one std::function invocation plus one
// virtual `enumerate` dispatch per element. The linked executor
// (compiler/exec_linked.cpp) instead asks a level ONCE per invocation to
// describe the iteration as a flat Cursor — a tagged record of raw array
// pointers and an affine position rule — and then pulls elements with the
// begin/valid/advance/index/pos protocol below. All per-element work is a
// switch on a small enum over plain loads: no virtual calls, no
// std::function, no allocation inside the data loop.
//
// Formats whose iteration is not one of the flat shapes fall back to the
// default adapter in view.cpp, which materializes `enumerate` into a
// caller-owned buffer once per invocation and iterates that (kBuffered).
//
// SearchSpec is the same idea for the probe side: a flat description of a
// level's search method, valid for every parent, resolved once at link
// time. kVirtual falls back to IndexLevel::search per probe.
#pragma once

#include <string>
#include <vector>

#include "support/types.hpp"

namespace bernoulli::relation {

/// One materialized (index value, child position) pair — the element type
/// of buffered cursors and merge-join segments.
struct IndexPos {
  index_t idx = 0;
  index_t pos = 0;
};

/// Scratch storage a buffered cursor materializes into. Owned by the
/// caller (the executor keeps one per plan level per driver, reused across
/// invocations, so steady-state runs allocate nothing).
using CursorBuffer = std::vector<IndexPos>;

struct Cursor {
  enum class Kind : unsigned char {
    kDenseRange,  // idx = cur,           pos = base + cur
    kIndArray,    // idx = ind[cur],      pos = cur
    kStrided,     // pos = base + cur*stride,  idx = ind[pos]
    kOffsets,     // pos = off[cur] + base,    idx = ind[pos]
    kSingleton,   // the single pair (s_idx, s_pos)
    kBlocked,     // BCSR scalar walk: block b = base + cur/stride holds
                  // lane cc = cur%stride; idx = ind[b]*stride + cc,
                  // pos = b*bsz + rofs + cc (rofs = row-in-block * cols)
    kBuffered,    // idx = buf[cur].idx,  pos = buf[cur].pos
  };

  Kind kind = Kind::kBuffered;
  index_t cur = 0;  // iteration counter, [cur, end)
  index_t end = 0;
  index_t base = 0;
  index_t stride = 1;
  const index_t* ind = nullptr;   // kIndArray / kStrided / kOffsets / kBlocked
  const index_t* off = nullptr;   // kOffsets
  const IndexPos* buf = nullptr;  // kBuffered
  index_t s_idx = 0;              // kSingleton
  index_t s_pos = 0;
  index_t rofs = 0;               // kBlocked: (parent % r) * c
  index_t bsz = 0;                // kBlocked: r * c values per block

  bool valid() const { return cur < end; }
  void advance() { ++cur; }

  /// Elements left, counting the current one (exact for every kind — all
  /// cursors know their extent up front).
  index_t remaining() const { return end - cur; }

  index_t index() const {
    switch (kind) {
      case Kind::kDenseRange: return cur;
      case Kind::kIndArray: return ind[cur];
      case Kind::kStrided: return ind[base + cur * stride];
      case Kind::kOffsets: return ind[off[cur] + base];
      case Kind::kSingleton: return s_idx;
      case Kind::kBlocked:
        return ind[base + cur / stride] * stride + cur % stride;
      case Kind::kBuffered: return buf[cur].idx;
    }
    return -1;
  }

  index_t pos() const {
    switch (kind) {
      case Kind::kDenseRange: return base + cur;
      case Kind::kIndArray: return cur;
      case Kind::kStrided: return base + cur * stride;
      case Kind::kOffsets: return off[cur] + base;
      case Kind::kSingleton: return s_pos;
      case Kind::kBlocked:
        return (base + cur / stride) * bsz + rofs + cur % stride;
      case Kind::kBuffered: return buf[cur].pos;
    }
    return -1;
  }
};

/// Flat description of a level's ENUMERATION method, independent of the
/// parent position — the static counterpart of begin_cursor. Where a
/// Cursor describes one invocation (children of one concrete parent), an
/// EnumSpec describes the iteration RULE for every parent at once: which
/// arrays drive it, how positions derive from the loop counter, and how
/// large the backing arrays are. The specializing code generator
/// (compiler/emit_standalone.hpp) renders each kind as a C for-loop and
/// uses the array extents for whole-structure index scans (always-hit
/// probe proofs). kNone means the level has no flat enumeration shape and
/// specialization must fall back to the linked engine.
struct EnumSpec {
  enum class Kind : unsigned char {
    kNone,       // no flat description: reject specialization
    kDense,      // k in [0, extent):      idx = k, pos = parent*stride + k
    kSegmented,  // p in [ptr[parent], ptr[parent+1]): idx = ind[p], pos = p
    kList,       // p in [0, extent):      idx = ind[p], pos = p
    kFunction,   // the single child:      idx = map[parent], pos = parent
    kStrided,    // k in [0, len[parent]): pos = parent + k*stride,
                 //                        idx = ind[pos]         (ELLPACK)
    kOffsets,    // k in [0, len[parent]): pos = off[k] + parent,
                 //                        idx = ind[pos]         (JDS)
    kBlocked,    // b in [ptr[parent/r], ptr[parent/r+1]), cc in [0, c):
                 //   idx = ind[b]*c + cc,
                 //   pos = b*r*c + (parent%r)*c + cc          (BCSR)
    kSliced,     // k in [0, len[parent]): pos = off[parent] + k*stride,
                 //   idx = ind[pos]                           (SELL-C-σ)
  };

  Kind kind = Kind::kNone;
  index_t extent = 0;  // kDense / kList loop bound
  index_t stride = 0;  // kDense pos stride (0: pos = k) / kStrided stride
                       // kSliced chunk width C
  const index_t* ptr = nullptr;  // kSegmented / kBlocked
  const index_t* ind = nullptr;  // kSegmented / kList / kStrided / kOffsets
                                 // kBlocked / kSliced
  const index_t* off = nullptr;  // kOffsets / kSliced per-parent base
  const index_t* len = nullptr;  // kStrided / kOffsets / kSliced per-parent
                                 // count
  const index_t* map = nullptr;  // kFunction
  index_t block_r = 0;           // kBlocked row dim r
  index_t block_c = 0;           // kBlocked col dim c
  // Element counts of the backing arrays (for baking and for specialize-
  // time min/max scans over every index the structure can enumerate).
  index_t ind_len = 0;
  index_t ptr_len = 0;
  index_t off_len = 0;
  index_t len_len = 0;
  index_t map_len = 0;
};

/// Flat description of a level's search method, independent of the parent
/// position (the arrays backing a level are fixed; only the segment bounds
/// move with the parent). Lowered once per probe at link time.
struct SearchSpec {
  enum class Kind : unsigned char {
    kVirtual,        // fall back to IndexLevel::search
    kIdentity,       // pos = idx                for 0 <= idx < extent
    kAffine,         // pos = parent*stride+idx  for 0 <= idx < extent
    kSegmentBinary,  // binary search ind[ptr[parent] .. ptr[parent+1])
    kListBinary,     // binary search ind[0 .. extent)
    kFunction,       // pos = parent when map[parent] == idx
  };

  Kind kind = Kind::kVirtual;
  index_t extent = 0;             // kIdentity / kAffine / kListBinary
  index_t stride = 0;             // kAffine
  const index_t* ptr = nullptr;   // kSegmentBinary
  const index_t* ind = nullptr;   // kSegmentBinary / kListBinary
  const index_t* map = nullptr;   // kFunction
};

/// One record that captures EVERYTHING the linked engine needs to know
/// about a level: its storage shape plus the raw arrays backing it. A
/// level describes itself ONCE (IndexLevel::describe); the cursor, the
/// search spec and the enum spec are all derived mechanically from the
/// descriptor by the lowering functions below, so adding a format means
/// writing one describe() — not a cursor backend, a search lowering and
/// an emitter case by hand. kOpaque means the level has no flat shape
/// (stateful or growable storage): cursors fall back to the buffered
/// enumerate adapter and probes stay virtual.
struct LevelDescriptor {
  enum class Kind : unsigned char {
    kOpaque,      // no flat description — virtual fallbacks
    kDense,       // contiguous [0, extent); pos = parent*stride + k
    kCompressed,  // CSR-style segments: ptr bounds into ind
    kList,        // one flat sorted/unsorted ind array (sparse vector)
    kSingleton,   // exactly one child: idx = map[parent], pos = parent
    kStrided,     // lane-major ELLPACK: pos = parent + k*stride
    kOffsets,     // diagonal-major JDS: pos = off[k] + parent
    kBlocked,     // BCSR blocked(r, c): ptr/ind over r x c value blocks
    kSliced,      // SELL-C-sigma sliced(C, sigma): per-row base + k*C
  };

  Kind kind = Kind::kOpaque;
  index_t extent = 0;  // kDense / kList / kSingleton domain size
  index_t stride = 0;  // kDense pos multiplier / kStrided lane stride /
                       // kSliced chunk width C
  bool sorted = true;  // enumeration yields ascending indices
  const index_t* ptr = nullptr;  index_t ptr_len = 0;  // kCompressed/kBlocked
  const index_t* ind = nullptr;  index_t ind_len = 0;  // all sparse kinds
  const index_t* off = nullptr;  index_t off_len = 0;  // kOffsets / kSliced
  const index_t* len = nullptr;  index_t len_len = 0;  // per-parent counts
  const index_t* map = nullptr;  index_t map_len = 0;  // kSingleton
  index_t block_r = 0;  // kBlocked
  index_t block_c = 0;  // kBlocked
  index_t chunk = 0;    // kSliced C
  index_t sigma = 0;    // kSliced sorting-window sigma
};

/// Fills `c` with the cursor over the children of `parent`, derived from
/// the descriptor. Must not be called on kOpaque descriptors.
void descriptor_cursor(const LevelDescriptor& d, index_t parent, Cursor& c);

/// The flat search method the descriptor supports (kVirtual when the kind
/// has no arithmetic/binary search form — blocked and sliced levels only
/// ever drive).
SearchSpec descriptor_search(const LevelDescriptor& d);

/// The flat enumeration rule for the specializing code generator (kNone
/// only for kOpaque).
EnumSpec descriptor_enum(const LevelDescriptor& d);

/// Human-readable one-liner for EXPLAIN footers: "dense 64", "compressed",
/// "blocked 4x4", "sliced C=8 sigma=32", ...
std::string descriptor_text(const LevelDescriptor& d);

}  // namespace bernoulli::relation
