// Flat cursors: the linked executor's view of an access method.
//
// The interpreter (compiler/executor.cpp) drives enumeration through the
// push-style EnumFn callback — one std::function invocation plus one
// virtual `enumerate` dispatch per element. The linked executor
// (compiler/exec_linked.cpp) instead asks a level ONCE per invocation to
// describe the iteration as a flat Cursor — a tagged record of raw array
// pointers and an affine position rule — and then pulls elements with the
// begin/valid/advance/index/pos protocol below. All per-element work is a
// switch on a small enum over plain loads: no virtual calls, no
// std::function, no allocation inside the data loop.
//
// Formats whose iteration is not one of the flat shapes fall back to the
// default adapter in view.cpp, which materializes `enumerate` into a
// caller-owned buffer once per invocation and iterates that (kBuffered).
//
// SearchSpec is the same idea for the probe side: a flat description of a
// level's search method, valid for every parent, resolved once at link
// time. kVirtual falls back to IndexLevel::search per probe.
#pragma once

#include <vector>

#include "support/types.hpp"

namespace bernoulli::relation {

/// One materialized (index value, child position) pair — the element type
/// of buffered cursors and merge-join segments.
struct IndexPos {
  index_t idx = 0;
  index_t pos = 0;
};

/// Scratch storage a buffered cursor materializes into. Owned by the
/// caller (the executor keeps one per plan level per driver, reused across
/// invocations, so steady-state runs allocate nothing).
using CursorBuffer = std::vector<IndexPos>;

struct Cursor {
  enum class Kind : unsigned char {
    kDenseRange,  // idx = cur,           pos = base + cur
    kIndArray,    // idx = ind[cur],      pos = cur
    kStrided,     // pos = base + cur*stride,  idx = ind[pos]
    kOffsets,     // pos = off[cur] + base,    idx = ind[pos]
    kSingleton,   // the single pair (s_idx, s_pos)
    kBuffered,    // idx = buf[cur].idx,  pos = buf[cur].pos
  };

  Kind kind = Kind::kBuffered;
  index_t cur = 0;  // iteration counter, [cur, end)
  index_t end = 0;
  index_t base = 0;
  index_t stride = 1;
  const index_t* ind = nullptr;   // kIndArray / kStrided / kOffsets
  const index_t* off = nullptr;   // kOffsets
  const IndexPos* buf = nullptr;  // kBuffered
  index_t s_idx = 0;              // kSingleton
  index_t s_pos = 0;

  bool valid() const { return cur < end; }
  void advance() { ++cur; }

  /// Elements left, counting the current one (exact for every kind — all
  /// cursors know their extent up front).
  index_t remaining() const { return end - cur; }

  index_t index() const {
    switch (kind) {
      case Kind::kDenseRange: return cur;
      case Kind::kIndArray: return ind[cur];
      case Kind::kStrided: return ind[base + cur * stride];
      case Kind::kOffsets: return ind[off[cur] + base];
      case Kind::kSingleton: return s_idx;
      case Kind::kBuffered: return buf[cur].idx;
    }
    return -1;
  }

  index_t pos() const {
    switch (kind) {
      case Kind::kDenseRange: return base + cur;
      case Kind::kIndArray: return cur;
      case Kind::kStrided: return base + cur * stride;
      case Kind::kOffsets: return off[cur] + base;
      case Kind::kSingleton: return s_pos;
      case Kind::kBuffered: return buf[cur].pos;
    }
    return -1;
  }
};

/// Flat description of a level's ENUMERATION method, independent of the
/// parent position — the static counterpart of begin_cursor. Where a
/// Cursor describes one invocation (children of one concrete parent), an
/// EnumSpec describes the iteration RULE for every parent at once: which
/// arrays drive it, how positions derive from the loop counter, and how
/// large the backing arrays are. The specializing code generator
/// (compiler/emit_standalone.hpp) renders each kind as a C for-loop and
/// uses the array extents for whole-structure index scans (always-hit
/// probe proofs). kNone means the level has no flat enumeration shape and
/// specialization must fall back to the linked engine.
struct EnumSpec {
  enum class Kind : unsigned char {
    kNone,       // no flat description: reject specialization
    kDense,      // k in [0, extent):      idx = k, pos = parent*stride + k
    kSegmented,  // p in [ptr[parent], ptr[parent+1]): idx = ind[p], pos = p
    kList,       // p in [0, extent):      idx = ind[p], pos = p
    kFunction,   // the single child:      idx = map[parent], pos = parent
    kStrided,    // k in [0, len[parent]): pos = parent + k*stride,
                 //                        idx = ind[pos]         (ELLPACK)
    kOffsets,    // k in [0, len[parent]): pos = off[k] + parent,
                 //                        idx = ind[pos]         (JDS)
  };

  Kind kind = Kind::kNone;
  index_t extent = 0;  // kDense / kList loop bound
  index_t stride = 0;  // kDense pos stride (0: pos = k) / kStrided stride
  const index_t* ptr = nullptr;  // kSegmented
  const index_t* ind = nullptr;  // kSegmented / kList / kStrided / kOffsets
  const index_t* off = nullptr;  // kOffsets
  const index_t* len = nullptr;  // kStrided / kOffsets per-parent count
  const index_t* map = nullptr;  // kFunction
  // Element counts of the backing arrays (for baking and for specialize-
  // time min/max scans over every index the structure can enumerate).
  index_t ind_len = 0;
  index_t ptr_len = 0;
  index_t off_len = 0;
  index_t len_len = 0;
  index_t map_len = 0;
};

/// Flat description of a level's search method, independent of the parent
/// position (the arrays backing a level are fixed; only the segment bounds
/// move with the parent). Lowered once per probe at link time.
struct SearchSpec {
  enum class Kind : unsigned char {
    kVirtual,        // fall back to IndexLevel::search
    kIdentity,       // pos = idx                for 0 <= idx < extent
    kAffine,         // pos = parent*stride+idx  for 0 <= idx < extent
    kSegmentBinary,  // binary search ind[ptr[parent] .. ptr[parent+1])
    kListBinary,     // binary search ind[0 .. extent)
    kFunction,       // pos = parent when map[parent] == idx
  };

  Kind kind = Kind::kVirtual;
  index_t extent = 0;             // kIdentity / kAffine / kListBinary
  index_t stride = 0;             // kAffine
  const index_t* ptr = nullptr;   // kSegmentBinary
  const index_t* ind = nullptr;   // kSegmentBinary / kListBinary
  const index_t* map = nullptr;   // kFunction
};

}  // namespace bernoulli::relation
