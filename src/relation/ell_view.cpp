#include "relation/ell_view.hpp"

#include "support/error.hpp"

namespace bernoulli::relation {

namespace {

class EllRowLevel final : public IndexLevel {
 public:
  explicit EllRowLevel(index_t rows) : rows_(rows) {}

  LevelProperties properties() const override {
    return {/*sorted=*/true, /*dense=*/true, SearchCost::kConstant};
  }

  void enumerate(index_t, const EnumFn& fn) const override {
    for (index_t i = 0; i < rows_; ++i)
      if (!fn(i, i)) return;
  }

  index_t search(index_t, index_t index) const override {
    return index >= 0 && index < rows_ ? index : -1;
  }

  double expected_size() const override { return static_cast<double>(rows_); }

  LevelDescriptor describe() const override {
    LevelDescriptor d;
    d.kind = LevelDescriptor::Kind::kDense;
    d.extent = rows_;
    return d;
  }

  std::string emit_enumerate(const std::string&, const std::string& idx,
                             const std::string& pos) const override {
    return "for (int " + idx + " = 0; " + idx + " < " +
           std::to_string(rows_) + "; ++" + idx + ") { const int " + pos +
           " = " + idx + ";";
  }

  std::string emit_search(const std::string&, const std::string& idx,
                          const std::string& pos) const override {
    return "const int " + pos + " = " + idx + ";  /* dense: O(1) */";
  }

 private:
  index_t rows_;
};

class EllColLevel final : public IndexLevel {
 public:
  EllColLevel(const formats::Ell& m, std::string name)
      : m_(m), name_(std::move(name)) {}

  LevelProperties properties() const override {
    // Columns are packed in ascending order by from_coo; search walks the
    // strided row, so it is linear (binary search over a stride is
    // possible but ITPACK's Fortran kernels scan).
    return {/*sorted=*/true, /*dense=*/false, SearchCost::kLinear};
  }

  void enumerate(index_t parent, const EnumFn& fn) const override {
    const index_t n = m_.rows();
    const index_t len = m_.rownnz()[static_cast<std::size_t>(parent)];
    for (index_t k = 0; k < len; ++k)
      if (!fn(m_.col_at(parent, k), k * n + parent)) return;
  }

  index_t search(index_t parent, index_t index) const override {
    const index_t n = m_.rows();
    const index_t len = m_.rownnz()[static_cast<std::size_t>(parent)];
    for (index_t k = 0; k < len; ++k)
      if (m_.col_at(parent, k) == index) return k * n + parent;
    return -1;
  }

  double expected_size() const override {
    return m_.rows() > 0 ? static_cast<double>(m_.nnz()) / m_.rows() : 0.0;
  }

  // ELL entries of row i live at column-major slots k*rows + i: a strided
  // walk over COLIND with base = parent, stride = rows. The padding slots
  // beyond rownnz hold column 0 (from_coo zero-fills), so whole-array
  // index scans over COLIND stay within [0, cols).
  LevelDescriptor describe() const override {
    LevelDescriptor d;
    d.kind = LevelDescriptor::Kind::kStrided;
    d.ind = m_.colind().data();
    d.ind_len = static_cast<index_t>(m_.colind().size());
    d.len = m_.rownnz().data();
    d.len_len = static_cast<index_t>(m_.rownnz().size());
    d.stride = m_.rows();
    return d;
  }

  std::string emit_enumerate(const std::string& parent, const std::string& idx,
                             const std::string& pos) const override {
    const std::string n = std::to_string(m_.rows());
    return "for (int k = 0; k < " + name_ + "_ROWNNZ[" + parent +
           "]; ++k) { const int " + pos + " = k * " + n + " + " + parent +
           "; const int " + idx + " = " + name_ + "_COLIND[" + pos + "];";
  }

  std::string emit_search(const std::string& parent, const std::string& idx,
                          const std::string& pos) const override {
    return "const int " + pos + " = ell_scan(" + name_ + ", " + parent +
           ", " + idx + "); if (" + pos + " < 0) continue;";
  }

 private:
  const formats::Ell& m_;
  std::string name_;
};

}  // namespace

EllView::EllView(std::string name, const formats::Ell& m)
    : name_(std::move(name)), m_(m) {
  rows_ = std::make_unique<EllRowLevel>(m.rows());
  cols_ = std::make_unique<EllColLevel>(m, name_);
}

const IndexLevel& EllView::level(index_t depth) const {
  BERNOULLI_CHECK(depth == 0 || depth == 1);
  return depth == 0 ? *rows_ : *cols_;
}

value_t EllView::value_at(index_t pos) const {
  return m_.vals()[static_cast<std::size_t>(pos)];
}

std::string EllView::value_expr(const std::string& pos) const {
  return name_ + "_VALS[" + pos + "]";
}

std::span<const value_t> EllView::value_array() const { return m_.vals(); }

}  // namespace bernoulli::relation
