#include "relation/sell_view.hpp"

#include <string>

namespace bernoulli::relation {

SellView::SellView(std::string name, const formats::Sell& m) {
  const std::string base = name + "_ROWBASE";
  const std::string len = name + "_ROWLEN";
  const std::string ind = name + "_COLIND";
  const std::string vals = name + "_VALS";
  arrays_.index_arrays[base] = {m.rowbase().begin(), m.rowbase().end()};
  arrays_.index_arrays[len] = {m.rowlen().begin(), m.rowlen().end()};
  arrays_.index_arrays[ind] = {m.colind().begin(), m.colind().end()};
  arrays_.value_arrays[vals] = {m.vals().begin(), m.vals().end()};
  inner_ = std::make_unique<GenericFormatView>(
      "format " + name + " {\n"
      "  level i: dense(" + std::to_string(m.rows()) + ");\n"
      "  level j: sliced(chunk=" + std::to_string(m.chunk()) +
      ", sigma=" + std::to_string(m.sigma()) + ", base=" + base +
      ", len=" + len + ", ind=" + ind + ") sorted;\n"
      "  value " + vals + ";\n"
      "}\n",
      arrays_);
}

SellView::~SellView() = default;

std::string SellView::name() const { return inner_->name(); }
index_t SellView::arity() const { return inner_->arity(); }
const IndexLevel& SellView::level(index_t depth) const {
  return inner_->level(depth);
}
bool SellView::has_value() const { return inner_->has_value(); }
value_t SellView::value_at(index_t pos) const { return inner_->value_at(pos); }
std::string SellView::value_expr(const std::string& pos) const {
  return inner_->value_expr(pos);
}
std::span<const value_t> SellView::value_array() const {
  return inner_->value_array();
}

}  // namespace bernoulli::relation
