// Concrete relation views over the storage formats: the "access method"
// definitions the user supplies per format (paper §2.1). Each view adapts
// one format's arrays to the IndexLevel protocol and advertises honest
// properties (CSR's row level is dense and O(1)-searchable; its column
// level is sorted and O(log)-searchable; COO's row level is sorted but not
// dense; a dense vector is both).
#pragma once

#include <memory>

#include "formats/ccs.hpp"
#include "formats/coo.hpp"
#include "formats/csr.hpp"
#include "formats/dense.hpp"
#include "relation/view.hpp"

namespace bernoulli::relation {

/// I(v1, ..., vk): the iteration-space relation — a cross product of dense
/// index intervals [0, extent). Carries no value. Position encoding at
/// every level: the index itself.
class IntervalView final : public RelationView {
 public:
  IntervalView(std::string name, std::vector<index_t> extents);

  std::string name() const override { return name_; }
  index_t arity() const override { return static_cast<index_t>(extents_.size()); }
  const IndexLevel& level(index_t depth) const override;

 private:
  std::string name_;
  std::vector<index_t> extents_;
  std::vector<std::unique_ptr<IndexLevel>> levels_;
};

/// X(j, x): a dense vector. Dense, sorted, O(1) search; writable.
class DenseVectorView final : public RelationView {
 public:
  DenseVectorView(std::string name, VectorView data);
  DenseVectorView(std::string name, ConstVectorView data);

  std::string name() const override { return name_; }
  index_t arity() const override { return 1; }
  const IndexLevel& level(index_t depth) const override;
  bool has_value() const override { return true; }
  value_t value_at(index_t pos) const override;
  bool writable() const override { return writable_; }
  void value_add(index_t pos, value_t delta) override;
  void value_set(index_t pos, value_t v) override;
  std::string value_expr(const std::string& pos) const override;
  std::span<const value_t> value_array() const override { return data_; }
  std::span<value_t> value_array_mut() override { return mutable_data_; }

 private:
  std::string name_;
  ConstVectorView data_;
  VectorView mutable_data_;  // empty when constructed read-only
  bool writable_ = false;    // explicit: a zero-length view is still writable
  std::unique_ptr<IndexLevel> level_;
};

/// A(i, j, a) over CSR storage: hierarchy I -> (J, V).
class CsrView final : public RelationView {
 public:
  CsrView(std::string name, const formats::Csr& m);

  std::string name() const override { return name_; }
  index_t arity() const override { return 2; }
  const IndexLevel& level(index_t depth) const override;
  bool has_value() const override { return true; }
  value_t value_at(index_t pos) const override;
  std::string value_expr(const std::string& pos) const override;
  std::span<const value_t> value_array() const override;

 private:
  std::string name_;
  const formats::Csr& m_;
  std::unique_ptr<IndexLevel> rows_;
  std::unique_ptr<IndexLevel> cols_;
};

/// A(j, i, a) over CCS storage: hierarchy J -> (I, V). Note the hierarchy
/// order: the view binds the COLUMN first.
class CcsView final : public RelationView {
 public:
  CcsView(std::string name, const formats::Ccs& m);

  std::string name() const override { return name_; }
  index_t arity() const override { return 2; }
  const IndexLevel& level(index_t depth) const override;
  bool has_value() const override { return true; }
  value_t value_at(index_t pos) const override;
  std::string value_expr(const std::string& pos) const override;
  std::span<const value_t> value_array() const override;

 private:
  std::string name_;
  const formats::Ccs& m_;
  std::unique_ptr<IndexLevel> cols_;
  std::unique_ptr<IndexLevel> rows_;
};

/// A(i, j, a) over canonical COO storage: the row level enumerates the
/// distinct stored rows (sorted, NOT dense — empty rows are absent), the
/// column level walks the row's run of entries.
class CooView final : public RelationView {
 public:
  CooView(std::string name, const formats::Coo& m);

  std::string name() const override { return name_; }
  index_t arity() const override { return 2; }
  const IndexLevel& level(index_t depth) const override;
  bool has_value() const override { return true; }
  value_t value_at(index_t pos) const override;
  std::string value_expr(const std::string& pos) const override;
  std::span<const value_t> value_array() const override;

 private:
  std::string name_;
  const formats::Coo& m_;
  // rowptr-like run boundaries over the sorted triplets, built once.
  std::vector<index_t> distinct_rows_;
  std::vector<index_t> runptr_;
  std::unique_ptr<IndexLevel> rows_;
  std::unique_ptr<IndexLevel> cols_;
};

/// P(i, i'): a permutation stored as PERM/IPERM arrays (paper §2.2). The
/// first level is dense over i; the second holds exactly the single child
/// i' = perm[i]. Thanks to IPERM the view can also be searched "backwards"
/// via the inverse view below.
class PermutationView final : public RelationView {
 public:
  /// perm[i] = i'. The inverse is derived internally.
  PermutationView(std::string name, std::vector<index_t> perm);

  std::string name() const override { return name_; }
  index_t arity() const override { return 2; }
  const IndexLevel& level(index_t depth) const override;

  std::span<const index_t> perm() const { return perm_; }
  std::span<const index_t> iperm() const { return iperm_; }

 private:
  std::string name_;
  std::vector<index_t> perm_;
  std::vector<index_t> iperm_;
  std::unique_ptr<IndexLevel> outer_;
  std::unique_ptr<IndexLevel> inner_;
};

/// A(i, j, a) over a dense matrix: both levels dense, O(1); writable.
class DenseMatrixView final : public RelationView {
 public:
  DenseMatrixView(std::string name, formats::Dense& m);

  std::string name() const override { return name_; }
  index_t arity() const override { return 2; }
  const IndexLevel& level(index_t depth) const override;
  bool has_value() const override { return true; }
  value_t value_at(index_t pos) const override;
  bool writable() const override { return true; }
  void value_add(index_t pos, value_t delta) override;
  void value_set(index_t pos, value_t v) override;
  std::string value_expr(const std::string& pos) const override;
  std::span<const value_t> value_array() const override;
  std::span<value_t> value_array_mut() override;

 private:
  std::string name_;
  formats::Dense& m_;
  std::unique_ptr<IndexLevel> rows_;
  std::unique_ptr<IndexLevel> cols_;
};

}  // namespace bernoulli::relation
