// Relation view over Jagged Diagonal storage: the paper's running example
// of a format built on an index permutation (§2.2, Eq. 6).
//
// JDS stores A' — the matrix with rows permuted by decreasing length — so
// the view exposes A'(i', j, a) with i' the PERMUTED row index: hierarchy
// I' -> (J, V). Queries over the original row index i compose this view
// with a PermutationView P(i, i') built from the format's own PERM array,
// exactly the paper's
//   Q = sigma_P ( I(i,j) |><| X(j,x) |><| Y(i,y) |><| P(i,i') |><| A'(i',j,a) ).
//
// Row i' has jds.jdptr-many strided entries: the k-th is at offset
// jdptr[k] + i' while k < rowlen(i'). Enumeration follows that stride;
// search is linear (JDS has no better row search — an honest property the
// planner must work around).
#pragma once

#include <memory>

#include "formats/jds.hpp"
#include "relation/view.hpp"

namespace bernoulli::relation {

class JdsView final : public RelationView {
 public:
  JdsView(std::string name, const formats::Jds& m);

  std::string name() const override { return name_; }
  index_t arity() const override { return 2; }
  const IndexLevel& level(index_t depth) const override;
  bool has_value() const override { return true; }
  value_t value_at(index_t pos) const override;
  std::string value_expr(const std::string& pos) const override;
  std::span<const value_t> value_array() const override;

  /// The original-row -> permuted-row map (IPERM), ready to build the
  /// companion PermutationView P(i, i') for Eq. 6 queries.
  std::vector<index_t> original_to_permuted() const;

 private:
  std::string name_;
  const formats::Jds& m_;
  std::vector<index_t> rowlen_;  // entries per permuted row
  std::unique_ptr<IndexLevel> rows_;
  std::unique_ptr<IndexLevel> cols_;
};

}  // namespace bernoulli::relation
