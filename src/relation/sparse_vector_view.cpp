#include "relation/sparse_vector_view.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace bernoulli::relation {

namespace {

class SparseVectorLevel final : public IndexLevel {
 public:
  SparseVectorLevel(std::span<const index_t> ind, std::string name)
      : ind_(ind), name_(std::move(name)) {}

  LevelProperties properties() const override {
    return {/*sorted=*/true, /*dense=*/false, SearchCost::kLog};
  }

  void enumerate(index_t, const EnumFn& fn) const override {
    for (std::size_t k = 0; k < ind_.size(); ++k)
      if (!fn(ind_[k], static_cast<index_t>(k))) return;
  }

  index_t search(index_t, index_t index) const override {
    auto it = std::lower_bound(ind_.begin(), ind_.end(), index);
    if (it != ind_.end() && *it == index)
      return static_cast<index_t>(it - ind_.begin());
    return -1;
  }

  double expected_size() const override {
    return static_cast<double>(ind_.size());
  }

  LevelDescriptor describe() const override {
    LevelDescriptor d;
    d.kind = LevelDescriptor::Kind::kList;
    d.ind = ind_.data();
    d.ind_len = static_cast<index_t>(ind_.size());
    return d;
  }

  std::string emit_enumerate(const std::string&, const std::string& idx,
                             const std::string& pos) const override {
    return "for (int " + pos + " = 0; " + pos + " < " +
           std::to_string(ind_.size()) + "; ++" + pos + ") { const int " +
           idx + " = " + name_ + "_IND[" + pos + "];";
  }

  std::string emit_search(const std::string&, const std::string& idx,
                          const std::string& pos) const override {
    return "const int " + pos + " = binsearch(" + name_ + "_IND, 0, " +
           std::to_string(ind_.size()) + ", " + idx + "); if (" + pos +
           " < 0) continue;";
  }

 private:
  std::span<const index_t> ind_;
  std::string name_;
};

}  // namespace

SparseVectorView::SparseVectorView(std::string name,
                                   const formats::SparseVector& v)
    : name_(std::move(name)), v_(v) {
  level_ = std::make_unique<SparseVectorLevel>(v.ind(), name_);
}

const IndexLevel& SparseVectorView::level(index_t depth) const {
  BERNOULLI_CHECK(depth == 0);
  return *level_;
}

value_t SparseVectorView::value_at(index_t pos) const {
  return v_.vals()[static_cast<std::size_t>(pos)];
}

std::string SparseVectorView::value_expr(const std::string& pos) const {
  return name_ + "_VALS[" + pos + "]";
}

std::span<const value_t> SparseVectorView::value_array() const {
  return v_.vals();
}

}  // namespace bernoulli::relation
