// Declarative format specifications — the paper's mechanism for teaching
// the compiler NEW storage formats without touching it ([13], §2.1: "the
// programmer must provide methods to search and enumerate the indices at
// that level, and must specify the properties of these methods").
//
// A GenericFormatView is built from a textual spec plus the user's raw
// arrays. Example — CSR described from scratch:
//
//   format A {
//     level i: dense(6);
//     level j: compressed(ptr=ROWPTR, ind=COLIND) sorted;
//     value VALS;
//   }
//
// Level kinds:
//   dense(N)                      — interval [0, N), position == index
//   compressed(ptr=P, ind=I)      — segment I[P[parent] .. P[parent+1])
//   list(ind=I)                   — root-level sorted index list
//   function(map=M)               — single child M[parent] (permutations)
//   blocked(r=R, c=C, ptr=P, ind=I)
//                                 — BCSR: block row parent/R owns blocks
//                                   P[parent/R] .. P[parent/R + 1]); block
//                                   b is an R x C value tile at offset
//                                   b*R*C, so row parent sees children
//                                   idx = I[b]*C + cc at
//                                   pos = b*R*C + (parent%R)*C + cc
//   sliced(chunk=C, sigma=S, base=B, len=L, ind=I)
//                                 — SELL-C-σ: entry k of row parent sits
//                                   at pos = B[parent] + k*C for
//                                   k in [0, L[parent]); padding lanes
//                                   are never enumerated
// Modifiers: `sorted` / `unsorted` (sparse levels; unsorted levels get
// linear search and are excluded from merge joins).
//
// The resulting view plugs into Bindings::bind_view and from there into
// the ordinary compile/plan/run/emit pipeline — the whole point: the
// planner consumes only the advertised properties.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "relation/view.hpp"

namespace bernoulli::relation {

/// Named integer and value arrays the spec's levels reference. The arrays
/// must outlive the view.
struct FormatArrays {
  std::map<std::string, std::vector<index_t>> index_arrays;
  std::map<std::string, Vector> value_arrays;
};

class GenericFormatView final : public RelationView {
 public:
  /// Parses `spec` and wires the levels to `arrays`. Throws
  /// bernoulli::Error with a line-anchored message on syntax errors,
  /// unknown array names, or structurally impossible specs.
  GenericFormatView(const std::string& spec, const FormatArrays& arrays);
  ~GenericFormatView() override;

  std::string name() const override { return name_; }
  index_t arity() const override {
    return static_cast<index_t>(levels_.size());
  }
  const IndexLevel& level(index_t depth) const override;
  bool has_value() const override { return !value_array_.empty(); }
  value_t value_at(index_t pos) const override;
  std::string value_expr(const std::string& pos) const override;

  /// The user's value array is flat and address-stable for the view's
  /// lifetime, so the linked engine's bulk drains and the specializer can
  /// address it directly.
  std::span<const value_t> value_array() const override { return values_; }

  /// Loop-variable name declared for each level, in hierarchy order
  /// ("level i: ..." declares "i"). Useful for building Bindings
  /// level_to_ref mappings.
  const std::vector<std::string>& level_vars() const { return level_vars_; }

 private:
  std::string name_;
  std::string value_array_;
  ConstVectorView values_;
  std::vector<std::string> level_vars_;
  std::vector<std::unique_ptr<IndexLevel>> levels_;
};

}  // namespace bernoulli::relation
