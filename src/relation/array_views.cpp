#include "relation/array_views.hpp"

#include <algorithm>
#include <utility>

#include "support/error.hpp"

namespace bernoulli::relation {

namespace {

/// Dense interval [0, extent): index == position.
class DenseIntervalLevel final : public IndexLevel {
 public:
  explicit DenseIntervalLevel(index_t extent) : extent_(extent) {}

  LevelProperties properties() const override {
    return {/*sorted=*/true, /*dense=*/true, SearchCost::kConstant};
  }

  void enumerate(index_t, const EnumFn& fn) const override {
    for (index_t i = 0; i < extent_; ++i)
      if (!fn(i, i)) return;
  }

  index_t search(index_t, index_t index) const override {
    return index >= 0 && index < extent_ ? index : -1;
  }

  double expected_size() const override { return static_cast<double>(extent_); }

  LevelDescriptor describe() const override {
    LevelDescriptor d;
    d.kind = LevelDescriptor::Kind::kDense;
    d.extent = extent_;
    d.stride = 0;  // pos = k for every parent
    return d;
  }

  std::string emit_enumerate(const std::string&, const std::string& idx,
                             const std::string& pos) const override {
    return "for (int " + idx + " = 0; " + idx + " < " +
           std::to_string(extent_) + "; ++" + idx + ") { const int " + pos +
           " = " + idx + ";";
  }

  std::string emit_search(const std::string&, const std::string& idx,
                          const std::string& pos) const override {
    return "const int " + pos + " = " + idx + ";  /* dense: O(1) */";
  }

 private:
  index_t extent_;
};

/// Segment level over (ptr, ind) compressed arrays: children of parent p
/// are indices ind[ptr[p] .. ptr[p+1]-1] at positions equal to the offsets.
/// Sorted within the segment; binary search.
class CompressedLevel final : public IndexLevel {
 public:
  CompressedLevel(std::span<const index_t> ptr, std::span<const index_t> ind,
                  double expected, std::string ptr_name, std::string ind_name)
      : ptr_(ptr),
        ind_(ind),
        expected_(expected),
        ptr_name_(std::move(ptr_name)),
        ind_name_(std::move(ind_name)) {}

  LevelProperties properties() const override {
    return {/*sorted=*/true, /*dense=*/false, SearchCost::kLog};
  }

  void enumerate(index_t parent, const EnumFn& fn) const override {
    const index_t end = ptr_[static_cast<std::size_t>(parent) + 1];
    for (index_t k = ptr_[static_cast<std::size_t>(parent)]; k < end; ++k)
      if (!fn(ind_[static_cast<std::size_t>(k)], k)) return;
  }

  index_t search(index_t parent, index_t index) const override {
    const index_t* begin = ind_.data() + ptr_[static_cast<std::size_t>(parent)];
    const index_t* end = ind_.data() + ptr_[static_cast<std::size_t>(parent) + 1];
    const index_t* it = std::lower_bound(begin, end, index);
    if (it != end && *it == index)
      return static_cast<index_t>(it - ind_.data());
    return -1;
  }

  double expected_size() const override { return expected_; }

  LevelDescriptor describe() const override {
    LevelDescriptor d;
    d.kind = LevelDescriptor::Kind::kCompressed;
    d.ptr = ptr_.data();
    d.ptr_len = static_cast<index_t>(ptr_.size());
    d.ind = ind_.data();
    d.ind_len = static_cast<index_t>(ind_.size());
    return d;
  }

  std::string emit_enumerate(const std::string& parent, const std::string& idx,
                             const std::string& pos) const override {
    return "for (int " + pos + " = " + ptr_name_ + "[" + parent + "]; " + pos +
           " < " + ptr_name_ + "[" + parent + " + 1]; ++" + pos +
           ") { const int " + idx + " = " + ind_name_ + "[" + pos + "];";
  }

  std::string emit_search(const std::string& parent, const std::string& idx,
                          const std::string& pos) const override {
    return "const int " + pos + " = binsearch(" + ind_name_ + ", " +
           ptr_name_ + "[" + parent + "], " + ptr_name_ + "[" + parent +
           " + 1], " + idx + "); if (" + pos + " < 0) continue;";
  }

 private:
  std::span<const index_t> ptr_;
  std::span<const index_t> ind_;
  double expected_;
  std::string ptr_name_;
  std::string ind_name_;
};

/// Sorted list of distinct indices (e.g. the stored rows of a COO matrix):
/// position = list offset.
class SortedListLevel final : public IndexLevel {
 public:
  SortedListLevel(std::span<const index_t> list, std::string list_name)
      : list_(list), list_name_(std::move(list_name)) {}

  LevelProperties properties() const override {
    return {/*sorted=*/true, /*dense=*/false, SearchCost::kLog};
  }

  void enumerate(index_t, const EnumFn& fn) const override {
    for (std::size_t k = 0; k < list_.size(); ++k)
      if (!fn(list_[k], static_cast<index_t>(k))) return;
  }

  index_t search(index_t, index_t index) const override {
    auto it = std::lower_bound(list_.begin(), list_.end(), index);
    if (it != list_.end() && *it == index)
      return static_cast<index_t>(it - list_.begin());
    return -1;
  }

  double expected_size() const override {
    return static_cast<double>(list_.size());
  }

  LevelDescriptor describe() const override {
    LevelDescriptor d;
    d.kind = LevelDescriptor::Kind::kList;
    d.ind = list_.data();
    d.ind_len = static_cast<index_t>(list_.size());
    return d;
  }

  std::string emit_enumerate(const std::string&, const std::string& idx,
                             const std::string& pos) const override {
    return "for (int " + pos + " = 0; " + pos + " < " +
           std::to_string(list_.size()) + "; ++" + pos + ") { const int " +
           idx + " = " + list_name_ + "[" + pos + "];";
  }

  std::string emit_search(const std::string&, const std::string& idx,
                          const std::string& pos) const override {
    return "const int " + pos + " = binsearch(" + list_name_ + ", 0, " +
           std::to_string(list_.size()) + ", " + idx + "); if (" + pos +
           " < 0) continue;";
  }

 private:
  std::span<const index_t> list_;
  std::string list_name_;
};

/// Functional single-child level: parent position p has exactly one child
/// with index f(p) (used by the permutation view).
class FunctionLevel final : public IndexLevel {
 public:
  FunctionLevel(std::span<const index_t> map, std::string map_name)
      : map_(map), map_name_(std::move(map_name)) {}

  LevelProperties properties() const override {
    // A single child is trivially sorted; search is a comparison.
    return {/*sorted=*/true, /*dense=*/false, SearchCost::kConstant};
  }

  void enumerate(index_t parent, const EnumFn& fn) const override {
    fn(map_[static_cast<std::size_t>(parent)], parent);
  }

  index_t search(index_t parent, index_t index) const override {
    return map_[static_cast<std::size_t>(parent)] == index ? parent : -1;
  }

  double expected_size() const override { return 1.0; }

  LevelDescriptor describe() const override {
    LevelDescriptor d;
    d.kind = LevelDescriptor::Kind::kSingleton;
    d.map = map_.data();
    d.map_len = static_cast<index_t>(map_.size());
    return d;
  }

  std::string emit_enumerate(const std::string& parent, const std::string& idx,
                             const std::string& pos) const override {
    return "{ const int " + idx + " = " + map_name_ + "[" + parent +
           "]; const int " + pos + " = " + parent + ";";
  }

  std::string emit_search(const std::string& parent, const std::string& idx,
                          const std::string& pos) const override {
    return "if (" + map_name_ + "[" + parent + "] != " + idx +
           ") continue; const int " + pos + " = " + parent + ";";
  }

 private:
  std::span<const index_t> map_;
  std::string map_name_;
};

/// Inner level of a dense matrix: children of row i are all columns; the
/// leaf position encodes i*cols + j.
class DenseMatrixInnerLevel final : public IndexLevel {
 public:
  explicit DenseMatrixInnerLevel(index_t cols) : cols_(cols) {}

  LevelProperties properties() const override {
    return {/*sorted=*/true, /*dense=*/true, SearchCost::kConstant};
  }

  void enumerate(index_t parent, const EnumFn& fn) const override {
    const index_t base = parent * cols_;
    for (index_t j = 0; j < cols_; ++j)
      if (!fn(j, base + j)) return;
  }

  index_t search(index_t parent, index_t index) const override {
    return index >= 0 && index < cols_ ? parent * cols_ + index : -1;
  }

  double expected_size() const override { return static_cast<double>(cols_); }

  LevelDescriptor describe() const override {
    LevelDescriptor d;
    d.kind = LevelDescriptor::Kind::kDense;
    d.extent = cols_;
    d.stride = cols_;  // pos = parent*cols + k
    return d;
  }

  std::string emit_enumerate(const std::string& parent, const std::string& idx,
                             const std::string& pos) const override {
    return "for (int " + idx + " = 0; " + idx + " < " +
           std::to_string(cols_) + "; ++" + idx + ") { const int " + pos +
           " = " + parent + " * " + std::to_string(cols_) + " + " + idx + ";";
  }

  std::string emit_search(const std::string& parent, const std::string& idx,
                          const std::string& pos) const override {
    return "const int " + pos + " = " + parent + " * " +
           std::to_string(cols_) + " + " + idx + ";  /* dense: O(1) */";
  }

 private:
  index_t cols_;
};

}  // namespace

// ---------------------------------------------------------------- Interval

IntervalView::IntervalView(std::string name, std::vector<index_t> extents)
    : name_(std::move(name)), extents_(std::move(extents)) {
  BERNOULLI_CHECK(!extents_.empty());
  for (index_t e : extents_) {
    BERNOULLI_CHECK(e >= 0);
    levels_.push_back(std::make_unique<DenseIntervalLevel>(e));
  }
}

const IndexLevel& IntervalView::level(index_t depth) const {
  BERNOULLI_CHECK(depth >= 0 && depth < arity());
  return *levels_[static_cast<std::size_t>(depth)];
}

// ------------------------------------------------------------ Dense vector

DenseVectorView::DenseVectorView(std::string name, VectorView data)
    : name_(std::move(name)),
      data_(data),
      mutable_data_(data),
      writable_(true),
      level_(std::make_unique<DenseIntervalLevel>(
          static_cast<index_t>(data.size()))) {}

DenseVectorView::DenseVectorView(std::string name, ConstVectorView data)
    : name_(std::move(name)),
      data_(data),
      level_(std::make_unique<DenseIntervalLevel>(
          static_cast<index_t>(data.size()))) {}

const IndexLevel& DenseVectorView::level(index_t depth) const {
  BERNOULLI_CHECK(depth == 0);
  return *level_;
}

value_t DenseVectorView::value_at(index_t pos) const {
  return data_[static_cast<std::size_t>(pos)];
}

void DenseVectorView::value_add(index_t pos, value_t delta) {
  BERNOULLI_CHECK_MSG(writable(), name_ << " is read-only");
  mutable_data_[static_cast<std::size_t>(pos)] += delta;
}

void DenseVectorView::value_set(index_t pos, value_t v) {
  BERNOULLI_CHECK_MSG(writable(), name_ << " is read-only");
  mutable_data_[static_cast<std::size_t>(pos)] = v;
}

std::string DenseVectorView::value_expr(const std::string& pos) const {
  return name_ + "[" + pos + "]";
}

// -------------------------------------------------------------------- CSR

CsrView::CsrView(std::string name, const formats::Csr& m)
    : name_(std::move(name)), m_(m) {
  rows_ = std::make_unique<DenseIntervalLevel>(m.rows());
  double avg = m.rows() > 0 ? static_cast<double>(m.nnz()) / m.rows() : 0.0;
  cols_ = std::make_unique<CompressedLevel>(m.rowptr(), m.colind(), avg,
                                            name_ + "_ROWPTR",
                                            name_ + "_COLIND");
}

const IndexLevel& CsrView::level(index_t depth) const {
  BERNOULLI_CHECK(depth == 0 || depth == 1);
  return depth == 0 ? *rows_ : *cols_;
}

value_t CsrView::value_at(index_t pos) const {
  return m_.vals()[static_cast<std::size_t>(pos)];
}

std::string CsrView::value_expr(const std::string& pos) const {
  return name_ + "_VALS[" + pos + "]";
}

std::span<const value_t> CsrView::value_array() const { return m_.vals(); }

// -------------------------------------------------------------------- CCS

CcsView::CcsView(std::string name, const formats::Ccs& m)
    : name_(std::move(name)), m_(m) {
  cols_ = std::make_unique<DenseIntervalLevel>(m.cols());
  double avg = m.cols() > 0 ? static_cast<double>(m.nnz()) / m.cols() : 0.0;
  rows_ = std::make_unique<CompressedLevel>(m.colp(), m.rowind(), avg,
                                            name_ + "_COLP",
                                            name_ + "_ROWIND");
}

const IndexLevel& CcsView::level(index_t depth) const {
  BERNOULLI_CHECK(depth == 0 || depth == 1);
  return depth == 0 ? *cols_ : *rows_;
}

value_t CcsView::value_at(index_t pos) const {
  return m_.vals()[static_cast<std::size_t>(pos)];
}

std::string CcsView::value_expr(const std::string& pos) const {
  return name_ + "_VALS[" + pos + "]";
}

std::span<const value_t> CcsView::value_array() const { return m_.vals(); }

// -------------------------------------------------------------------- COO

CooView::CooView(std::string name, const formats::Coo& m)
    : name_(std::move(name)), m_(m) {
  auto rowind = m.rowind();
  runptr_.push_back(0);
  for (index_t k = 0; k < m.nnz(); ++k) {
    if (distinct_rows_.empty() || distinct_rows_.back() != rowind[k]) {
      if (!distinct_rows_.empty()) runptr_.push_back(k);
      distinct_rows_.push_back(rowind[k]);
    }
  }
  runptr_.push_back(m.nnz());
  if (distinct_rows_.empty()) runptr_ = {0};
  // Level 0 positions are offsets into distinct_rows_; level 1 positions
  // are entry offsets (runptr_ segments over colind).
  rows_ = std::make_unique<SortedListLevel>(distinct_rows_, name_ + "_ROWS");
  double avg = distinct_rows_.empty()
                   ? 0.0
                   : static_cast<double>(m.nnz()) /
                         static_cast<double>(distinct_rows_.size());
  cols_ = std::make_unique<CompressedLevel>(runptr_, m.colind(), avg,
                                            name_ + "_RUNPTR",
                                            name_ + "_COLIND");
}

const IndexLevel& CooView::level(index_t depth) const {
  BERNOULLI_CHECK(depth == 0 || depth == 1);
  return depth == 0 ? *rows_ : *cols_;
}

value_t CooView::value_at(index_t pos) const {
  return m_.vals()[static_cast<std::size_t>(pos)];
}

std::string CooView::value_expr(const std::string& pos) const {
  return name_ + "_VALS[" + pos + "]";
}

std::span<const value_t> CooView::value_array() const { return m_.vals(); }

// ------------------------------------------------------------ Permutation

PermutationView::PermutationView(std::string name, std::vector<index_t> perm)
    : name_(std::move(name)), perm_(std::move(perm)) {
  iperm_.assign(perm_.size(), -1);
  for (std::size_t i = 0; i < perm_.size(); ++i) {
    index_t p = perm_[i];
    BERNOULLI_CHECK(p >= 0 && p < static_cast<index_t>(perm_.size()));
    BERNOULLI_CHECK_MSG(iperm_[static_cast<std::size_t>(p)] == -1,
                        name_ << " is not a permutation");
    iperm_[static_cast<std::size_t>(p)] = static_cast<index_t>(i);
  }
  outer_ = std::make_unique<DenseIntervalLevel>(
      static_cast<index_t>(perm_.size()));
  inner_ = std::make_unique<FunctionLevel>(perm_, name_ + "_PERM");
}

const IndexLevel& PermutationView::level(index_t depth) const {
  BERNOULLI_CHECK(depth == 0 || depth == 1);
  return depth == 0 ? *outer_ : *inner_;
}

// ------------------------------------------------------------ Dense matrix

DenseMatrixView::DenseMatrixView(std::string name, formats::Dense& m)
    : name_(std::move(name)), m_(m) {
  rows_ = std::make_unique<DenseIntervalLevel>(m.rows());
  cols_ = std::make_unique<DenseMatrixInnerLevel>(m.cols());
}

const IndexLevel& DenseMatrixView::level(index_t depth) const {
  BERNOULLI_CHECK(depth == 0 || depth == 1);
  return depth == 0 ? *rows_ : *cols_;
}

value_t DenseMatrixView::value_at(index_t pos) const {
  return m_.data()[static_cast<std::size_t>(pos)];
}

void DenseMatrixView::value_add(index_t pos, value_t delta) {
  m_.data()[static_cast<std::size_t>(pos)] += delta;
}

void DenseMatrixView::value_set(index_t pos, value_t v) {
  m_.data()[static_cast<std::size_t>(pos)] = v;
}

std::string DenseMatrixView::value_expr(const std::string& pos) const {
  return name_ + "[" + pos + "]";
}

std::span<const value_t> DenseMatrixView::value_array() const {
  return std::as_const(m_).data();
}

std::span<value_t> DenseMatrixView::value_array_mut() { return m_.data(); }

}  // namespace bernoulli::relation
