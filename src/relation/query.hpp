// Relational queries over array views (paper §2, Eq. 4):
//
//   Q_sparse = sigma_P ( I(i,j) |><| A(i,j,a) |><| X(j,x) |><| Y(i,y) )
//
// A Query binds each relation's hierarchy levels to loop-variable names and
// records which relations *filter* (appear in the sparsity predicate P) and
// which are written. The planner (src/compiler) turns a Query into an
// executable Plan.
//
// The Query is the compiler's entire knowledge of the data: each relation
// is an opaque RelationView reached only through the access-method
// protocol (enumerate/search per hierarchy level, plus the properties
// sorted/dense/search_cost/expected_size). That is the paper's
// extensibility contract — a new storage format is a new view, never a
// new case in the planner. The flags below (filters/writes/order_free)
// are the only per-relation semantics the planner sees; EXPLAIN
// (compiler/explain.hpp) prints exactly this information per access so a
// plan can be audited against what the planner was told.
#pragma once

#include <string>
#include <vector>

#include "relation/view.hpp"

namespace bernoulli::relation {

struct BoundRelation {
  /// The view; not owned. Must outlive the query and any plan built on it.
  RelationView* view = nullptr;

  /// Loop-variable name bound by each hierarchy level, outermost first;
  /// size must equal view->arity().
  std::vector<std::string> vars;

  /// True when the relation participates in the sparsity predicate — its
  /// stored entries constrain the iteration (NZ(A), NZ(X) in the paper).
  /// Dense reads and outputs do not filter.
  bool filters = false;

  /// True when the computation writes this relation's value field.
  bool writes = false;

  /// True when the relation's hierarchy levels are independent and may be
  /// visited in any order (a cross product of intervals — the iteration
  /// space relation I). Storage-backed relations are order-bound: CCS can
  /// only reach row indices through a column.
  bool order_free = false;
};

struct Query {
  std::vector<BoundRelation> relations;

  /// All loop variables, in source-loop order (used for naming and as the
  /// default order the planner starts from).
  std::vector<std::string> vars;

  /// Throws unless arities match, every variable is bound by at least one
  /// relation, and written relations are writable.
  void validate() const;
};

}  // namespace bernoulli::relation
