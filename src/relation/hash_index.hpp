// Hash-index access-method adapter: the third join implementation the
// relational framework supports ("scatter" in Bik & Wijshoff's terms,
// hash join in database terms).
//
// Wrapping a level replaces its search method with an O(1) hash lookup
// built once per parent (lazily, cached). The planner, which reasons only
// about LevelProperties, then sees SearchCost::kConstant and prefers
// probing the wrapped relation — demonstrating that join implementations
// are swappable without touching the compiler (paper §2.1).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "relation/view.hpp"

namespace bernoulli::relation {

/// Wraps another view; identical hierarchy, but the level at
/// `indexed_depth` searches through a hash index instead of its native
/// method. The underlying view must outlive the wrapper.
class HashIndexedView final : public RelationView {
 public:
  HashIndexedView(const RelationView& base, index_t indexed_depth);
  ~HashIndexedView() override;  // out-of-line: HashedLevel is incomplete here

  std::string name() const override { return base_.name(); }
  index_t arity() const override { return base_.arity(); }
  const IndexLevel& level(index_t depth) const override;
  bool has_value() const override { return base_.has_value(); }
  value_t value_at(index_t pos) const override { return base_.value_at(pos); }
  std::string value_expr(const std::string& pos) const override {
    return base_.value_expr(pos);
  }
  std::span<const value_t> value_array() const override {
    return base_.value_array();
  }

  /// Number of per-parent hash tables materialized so far (for tests).
  std::size_t tables_built() const;

 private:
  class HashedLevel;
  const RelationView& base_;
  index_t indexed_depth_;
  std::unique_ptr<HashedLevel> hashed_;
};

}  // namespace bernoulli::relation
