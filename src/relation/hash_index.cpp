#include "relation/hash_index.hpp"

#include "support/counters.hpp"
#include "support/error.hpp"

namespace bernoulli::relation {

class HashIndexedView::HashedLevel final : public IndexLevel {
 public:
  explicit HashedLevel(const IndexLevel& base) : base_(base) {}

  LevelProperties properties() const override {
    LevelProperties p = base_.properties();
    p.search_cost = SearchCost::kConstant;
    return p;
  }

  void enumerate(index_t parent, const EnumFn& fn) const override {
    base_.enumerate(parent, fn);
  }

  index_t search(index_t parent, index_t index) const override {
    static support::Counter& probes =
        support::counter("relation.hash_index.probes");
    probes.add();
    const auto& table = table_for(parent);
    auto it = table.find(index);
    return it == table.end() ? -1 : it->second;
  }

  double expected_size() const override { return base_.expected_size(); }

  std::string emit_enumerate(const std::string& parent, const std::string& idx,
                             const std::string& pos) const override {
    return base_.emit_enumerate(parent, idx, pos);
  }

  std::string emit_search(const std::string& parent, const std::string& idx,
                          const std::string& pos) const override {
    return "const int " + pos + " = hash_lookup(INDEX[" + parent + "], " +
           idx + "); if (" + pos + " < 0) continue;";
  }

  std::size_t tables_built() const { return tables_.size(); }

 private:
  const std::unordered_map<index_t, index_t>& table_for(index_t parent) const {
    auto it = tables_.find(parent);
    if (it == tables_.end()) {
      static support::Counter& built =
          support::counter("relation.hash_index.tables_built");
      built.add();
      std::unordered_map<index_t, index_t> table;
      base_.enumerate(parent, [&](index_t idx, index_t pos) {
        table.emplace(idx, pos);
        return true;
      });
      it = tables_.emplace(parent, std::move(table)).first;
    }
    return it->second;
  }

  const IndexLevel& base_;
  // Lazily built, cached per parent. Mutable: building an index is a pure
  // optimization invisible through the interface.
  mutable std::unordered_map<index_t, std::unordered_map<index_t, index_t>>
      tables_;
};

HashIndexedView::~HashIndexedView() = default;

HashIndexedView::HashIndexedView(const RelationView& base,
                                 index_t indexed_depth)
    : base_(base), indexed_depth_(indexed_depth) {
  BERNOULLI_CHECK(indexed_depth >= 0 && indexed_depth < base.arity());
  hashed_ = std::make_unique<HashedLevel>(base.level(indexed_depth));
}

const IndexLevel& HashIndexedView::level(index_t depth) const {
  if (depth == indexed_depth_) return *hashed_;
  return base_.level(depth);
}

std::size_t HashIndexedView::tables_built() const {
  return hashed_->tables_built();
}

}  // namespace bernoulli::relation
