#include "relation/bsr_view.hpp"

#include <string>

namespace bernoulli::relation {

BsrView::BsrView(std::string name, const formats::Bsr& m) {
  const std::string ptr = name + "_BROWPTR";
  const std::string ind = name + "_BCOLIND";
  const std::string vals = name + "_VALS";
  arrays_.index_arrays[ptr] = {m.browptr().begin(), m.browptr().end()};
  arrays_.index_arrays[ind] = {m.bcolind().begin(), m.bcolind().end()};
  arrays_.value_arrays[vals] = {m.vals().begin(), m.vals().end()};
  const std::string b = std::to_string(m.block());
  inner_ = std::make_unique<GenericFormatView>(
      "format " + name + " {\n"
      "  level i: dense(" + std::to_string(m.rows()) + ");\n"
      "  level j: blocked(r=" + b + ", c=" + b + ", ptr=" + ptr +
      ", ind=" + ind + ") sorted;\n"
      "  value " + vals + ";\n"
      "}\n",
      arrays_);
}

BsrView::~BsrView() = default;

std::string BsrView::name() const { return inner_->name(); }
index_t BsrView::arity() const { return inner_->arity(); }
const IndexLevel& BsrView::level(index_t depth) const {
  return inner_->level(depth);
}
bool BsrView::has_value() const { return inner_->has_value(); }
value_t BsrView::value_at(index_t pos) const { return inner_->value_at(pos); }
std::string BsrView::value_expr(const std::string& pos) const {
  return inner_->value_expr(pos);
}
std::span<const value_t> BsrView::value_array() const {
  return inner_->value_array();
}

}  // namespace bernoulli::relation
