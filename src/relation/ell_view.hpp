// Relation view over ITPACK/ELLPACK storage: A(i, j, a) with hierarchy
// I -> (J, V). The row level is dense; the column level enumerates the
// row's real entries (skipping padding via the per-row length), sorted
// because construction packs columns in ascending order. Positions at the
// leaf encode the column-major slot k*rows + i.
#pragma once

#include <memory>

#include "formats/ell.hpp"
#include "relation/view.hpp"

namespace bernoulli::relation {

class EllView final : public RelationView {
 public:
  EllView(std::string name, const formats::Ell& m);

  std::string name() const override { return name_; }
  index_t arity() const override { return 2; }
  const IndexLevel& level(index_t depth) const override;
  bool has_value() const override { return true; }
  value_t value_at(index_t pos) const override;
  std::string value_expr(const std::string& pos) const override;
  std::span<const value_t> value_array() const override;

 private:
  std::string name_;
  const formats::Ell& m_;
  std::unique_ptr<IndexLevel> rows_;
  std::unique_ptr<IndexLevel> cols_;
};

}  // namespace bernoulli::relation
