// Level-kind lowering: LevelDescriptor -> Cursor / SearchSpec / EnumSpec.
//
// Every flat storage shape the engine ladder understands is lowered HERE,
// once, from the descriptor a level returns via IndexLevel::describe().
// The native views (array_views, ell_view, jds_view, sparse_vector_view)
// and the format-spec DSL levels all describe themselves with the same
// vocabulary, so a new format is one describe() — the cursor protocol,
// the probe lowering and the specializer all follow mechanically.
#include <string>

#include "relation/cursor.hpp"
#include "support/error.hpp"

namespace bernoulli::relation {

void descriptor_cursor(const LevelDescriptor& d, index_t parent, Cursor& c) {
  using K = LevelDescriptor::Kind;
  c = Cursor{};
  switch (d.kind) {
    case K::kDense:
      c.kind = Cursor::Kind::kDenseRange;
      c.base = parent * d.stride;
      c.end = d.extent;
      return;
    case K::kCompressed:
      c.kind = Cursor::Kind::kIndArray;
      c.ind = d.ind;
      c.cur = d.ptr[static_cast<std::size_t>(parent)];
      c.end = d.ptr[static_cast<std::size_t>(parent) + 1];
      return;
    case K::kList:
      c.kind = Cursor::Kind::kIndArray;
      c.ind = d.ind;
      c.end = d.ind_len;
      return;
    case K::kSingleton:
      c.kind = Cursor::Kind::kSingleton;
      c.end = 1;
      c.s_idx = d.map[static_cast<std::size_t>(parent)];
      c.s_pos = parent;
      return;
    case K::kStrided:
      c.kind = Cursor::Kind::kStrided;
      c.ind = d.ind;
      c.base = parent;
      c.stride = d.stride;
      c.end = d.len[static_cast<std::size_t>(parent)];
      return;
    case K::kOffsets:
      c.kind = Cursor::Kind::kOffsets;
      c.ind = d.ind;
      c.off = d.off;
      c.base = parent;
      c.end = d.len[static_cast<std::size_t>(parent)];
      return;
    case K::kBlocked: {
      const index_t br = parent / d.block_r;
      c.kind = Cursor::Kind::kBlocked;
      c.ind = d.ind;
      c.base = d.ptr[static_cast<std::size_t>(br)];
      c.stride = d.block_c;
      c.bsz = d.block_r * d.block_c;
      c.rofs = (parent % d.block_r) * d.block_c;
      c.end = (d.ptr[static_cast<std::size_t>(br) + 1] - c.base) * d.block_c;
      return;
    }
    case K::kSliced:
      // SELL-C-sigma needs no cursor kind of its own: within one row the
      // entries sit at base + k*C, which is exactly the strided walk.
      c.kind = Cursor::Kind::kStrided;
      c.ind = d.ind;
      c.base = d.off[static_cast<std::size_t>(parent)];
      c.stride = d.chunk;
      c.end = d.len[static_cast<std::size_t>(parent)];
      return;
    case K::kOpaque: break;
  }
  BERNOULLI_CHECK_MSG(false, "descriptor_cursor on an opaque level");
}

SearchSpec descriptor_search(const LevelDescriptor& d) {
  using K = LevelDescriptor::Kind;
  SearchSpec s;
  switch (d.kind) {
    case K::kDense:
      s.kind = d.stride == 0 ? SearchSpec::Kind::kIdentity
                             : SearchSpec::Kind::kAffine;
      s.extent = d.extent;
      s.stride = d.stride;
      return s;
    case K::kCompressed:
      if (!d.sorted) return s;  // unsorted segments: linear virtual scan
      s.kind = SearchSpec::Kind::kSegmentBinary;
      s.ptr = d.ptr;
      s.ind = d.ind;
      return s;
    case K::kList:
      if (!d.sorted) return s;
      s.kind = SearchSpec::Kind::kListBinary;
      s.ind = d.ind;
      s.extent = d.ind_len;
      return s;
    case K::kSingleton:
      s.kind = SearchSpec::Kind::kFunction;
      s.map = d.map;
      return s;
    // Lane/diagonal/block-major layouts search through the level's own
    // virtual method; in practice they only ever drive.
    case K::kStrided:
    case K::kOffsets:
    case K::kBlocked:
    case K::kSliced:
    case K::kOpaque: return s;
  }
  return s;
}

EnumSpec descriptor_enum(const LevelDescriptor& d) {
  using K = LevelDescriptor::Kind;
  EnumSpec e;
  switch (d.kind) {
    case K::kDense:
      e.kind = EnumSpec::Kind::kDense;
      e.extent = d.extent;
      e.stride = d.stride;
      return e;
    case K::kCompressed:
      e.kind = EnumSpec::Kind::kSegmented;
      e.ptr = d.ptr;
      e.ind = d.ind;
      e.ptr_len = d.ptr_len;
      e.ind_len = d.ind_len;
      return e;
    case K::kList:
      e.kind = EnumSpec::Kind::kList;
      e.ind = d.ind;
      e.extent = d.ind_len;
      e.ind_len = d.ind_len;
      return e;
    case K::kSingleton:
      e.kind = EnumSpec::Kind::kFunction;
      e.map = d.map;
      e.map_len = d.map_len;
      return e;
    case K::kStrided:
      e.kind = EnumSpec::Kind::kStrided;
      e.ind = d.ind;
      e.len = d.len;
      e.stride = d.stride;
      e.ind_len = d.ind_len;
      e.len_len = d.len_len;
      return e;
    case K::kOffsets:
      e.kind = EnumSpec::Kind::kOffsets;
      e.ind = d.ind;
      e.off = d.off;
      e.len = d.len;
      e.ind_len = d.ind_len;
      e.off_len = d.off_len;
      e.len_len = d.len_len;
      return e;
    case K::kBlocked:
      e.kind = EnumSpec::Kind::kBlocked;
      e.ptr = d.ptr;
      e.ind = d.ind;
      e.block_r = d.block_r;
      e.block_c = d.block_c;
      e.ptr_len = d.ptr_len;
      e.ind_len = d.ind_len;
      return e;
    case K::kSliced:
      e.kind = EnumSpec::Kind::kSliced;
      e.ind = d.ind;
      e.off = d.off;
      e.len = d.len;
      e.stride = d.chunk;
      e.ind_len = d.ind_len;
      e.off_len = d.off_len;
      e.len_len = d.len_len;
      return e;
    case K::kOpaque: return e;
  }
  return e;
}

std::string descriptor_text(const LevelDescriptor& d) {
  using K = LevelDescriptor::Kind;
  switch (d.kind) {
    case K::kOpaque: return "opaque";
    case K::kDense: return "dense " + std::to_string(d.extent);
    case K::kCompressed: return "compressed";
    case K::kList: return "list " + std::to_string(d.ind_len);
    case K::kSingleton: return "singleton";
    case K::kStrided: return "strided lanes=" + std::to_string(d.stride);
    case K::kOffsets: return "offsets";
    case K::kBlocked:
      return "blocked " + std::to_string(d.block_r) + "x" +
             std::to_string(d.block_c);
    case K::kSliced:
      return "sliced C=" + std::to_string(d.chunk) + " sigma=" +
             std::to_string(d.sigma);
  }
  return "?";
}

}  // namespace bernoulli::relation
