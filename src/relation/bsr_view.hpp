// Relation view over BSR storage: A(i, j, a) with hierarchy I -> (J, V).
//
// Deliberately NOT a hand-written pair of levels: the view is a textual
// format spec handed to GenericFormatView —
//
//   format A {
//     level i: dense(rows);
//     level j: blocked(r=b, c=b, ptr=BROWPTR, ind=BCOLIND) sorted;
//     value VALS;
//   }
//
// which is the paper's claim made concrete: a new storage format costs
// one level spec, and the descriptor lowering gives it the cursor
// protocol, register-blocked bulk drains, the specializer and EXPLAIN
// for free. Fill zeros inside stored tiles ARE enumerated (that is BCSR's
// bargain), so outputs match CSR bitwise only on block-dense matrices.
#pragma once

#include <memory>

#include "formats/bsr.hpp"
#include "relation/format_spec.hpp"

namespace bernoulli::relation {

class BsrView final : public RelationView {
 public:
  BsrView(std::string name, const formats::Bsr& m);
  ~BsrView() override;

  std::string name() const override;
  index_t arity() const override;
  const IndexLevel& level(index_t depth) const override;
  bool has_value() const override;
  value_t value_at(index_t pos) const override;
  std::string value_expr(const std::string& pos) const override;
  std::span<const value_t> value_array() const override;

 private:
  FormatArrays arrays_;
  std::unique_ptr<GenericFormatView> inner_;
};

}  // namespace bernoulli::relation
