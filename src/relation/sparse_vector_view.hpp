// Relation view over a compressed sparse vector: X(j, x). One level —
// sorted, not dense, O(log) search. Supports the paper's queries with
// sparse X, giving the planner a real merge-join opportunity.
#pragma once

#include <memory>

#include "formats/sparse_vector.hpp"
#include "relation/view.hpp"

namespace bernoulli::relation {

class SparseVectorView final : public RelationView {
 public:
  SparseVectorView(std::string name, const formats::SparseVector& v);

  std::string name() const override { return name_; }
  index_t arity() const override { return 1; }
  const IndexLevel& level(index_t depth) const override;
  bool has_value() const override { return true; }
  value_t value_at(index_t pos) const override;
  std::string value_expr(const std::string& pos) const override;
  std::span<const value_t> value_array() const override;

 private:
  std::string name_;
  const formats::SparseVector& v_;
  std::unique_ptr<IndexLevel> level_;
};

}  // namespace bernoulli::relation
