#include "relation/spa_view.hpp"

#include "support/counters.hpp"
#include "support/error.hpp"

namespace bernoulli::relation {

namespace {

class SpaRowLevel final : public IndexLevel {
 public:
  explicit SpaRowLevel(index_t rows) : rows_(rows) {}

  LevelProperties properties() const override {
    return {true, true, SearchCost::kConstant};
  }
  void enumerate(index_t, const EnumFn& fn) const override {
    for (index_t i = 0; i < rows_; ++i)
      if (!fn(i, i)) return;
  }
  index_t search(index_t, index_t index) const override {
    return index >= 0 && index < rows_ ? index : -1;
  }
  double expected_size() const override { return static_cast<double>(rows_); }

 private:
  index_t rows_;
};

}  // namespace

class SpaColLevel final : public IndexLevel {
 public:
  explicit SpaColLevel(SpaView& owner) : owner_(owner) {}

  LevelProperties properties() const override {
    // Hash storage: O(1) search, unsorted enumeration.
    return {false, false, SearchCost::kConstant};
  }

  void enumerate(index_t parent, const EnumFn& fn) const override {
    for (const auto& [j, slot] :
         owner_.row_slots_[static_cast<std::size_t>(parent)])
      if (!fn(j, slot)) return;
  }

  index_t search(index_t parent, index_t index) const override {
    const auto& row = owner_.row_slots_[static_cast<std::size_t>(parent)];
    auto it = row.find(index);
    return it == row.end() ? -1 : it->second;
  }

  bool insertable() const override { return true; }

  index_t insert(index_t parent, index_t index) override {
    static support::Counter& inserts =
        support::counter("relation.spa.inserts");
    inserts.add();
    BERNOULLI_CHECK(index >= 0 && index < owner_.cols_);
    auto slot = static_cast<index_t>(owner_.vals_.size());
    owner_.vals_.push_back(0.0);
    owner_.slot_row_.push_back(parent);
    owner_.slot_col_.push_back(index);
    owner_.row_slots_[static_cast<std::size_t>(parent)].emplace(index, slot);
    return slot;
  }

  double expected_size() const override {
    return owner_.rows_ > 0
               ? static_cast<double>(owner_.vals_.size()) / owner_.rows_
               : 0.0;
  }

  std::string emit_search(const std::string& parent, const std::string& idx,
                          const std::string& pos) const override {
    return "const int " + pos + " = spa_lookup_or_insert(" + owner_.name_ +
           ", " + parent + ", " + idx + ");";
  }

 private:
  SpaView& owner_;
};

SpaView::SpaView(std::string name, index_t rows, index_t cols)
    : name_(std::move(name)), rows_(rows), cols_(cols) {
  BERNOULLI_CHECK(rows >= 0 && cols >= 0);
  row_slots_.resize(static_cast<std::size_t>(rows));
  rows_level_ = std::make_unique<SpaRowLevel>(rows);
  cols_level_ = std::make_unique<SpaColLevel>(*this);
}

SpaView::~SpaView() = default;

const IndexLevel& SpaView::level(index_t depth) const {
  BERNOULLI_CHECK(depth == 0 || depth == 1);
  return depth == 0 ? *rows_level_ : *cols_level_;
}

value_t SpaView::value_at(index_t pos) const {
  return vals_[static_cast<std::size_t>(pos)];
}

void SpaView::value_add(index_t pos, value_t delta) {
  vals_[static_cast<std::size_t>(pos)] += delta;
}

void SpaView::value_set(index_t pos, value_t v) {
  vals_[static_cast<std::size_t>(pos)] = v;
}

std::string SpaView::value_expr(const std::string& pos) const {
  return name_ + "_VALS[" + pos + "]";
}

formats::Coo SpaView::harvest() const {
  std::vector<Triplet> entries;
  entries.reserve(vals_.size());
  for (std::size_t k = 0; k < vals_.size(); ++k)
    entries.push_back({slot_row_[k], slot_col_[k], vals_[k]});
  return formats::Coo(rows_, cols_, std::move(entries));
}

void SpaView::clear() {
  for (auto& row : row_slots_) row.clear();
  vals_.clear();
  slot_row_.clear();
  slot_col_.clear();
}

}  // namespace bernoulli::relation
