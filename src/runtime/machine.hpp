// Simulated distributed-memory machine (DESIGN.md §3, substitution 1).
//
// The paper ran on an IBM SP-2 under MPI. This host has a single core, so
// instead of real parallel hardware the runtime provides:
//   - P ranks executed as threads with private address spaces by
//     convention (ranks communicate only through messages);
//   - typed point-to-point send/recv with (source, tag) matching, plus
//     barrier / allreduce / alltoallv collectives;
//   - a per-rank VIRTUAL CLOCK: compute is charged with per-thread CPU
//     time (insensitive to OS interleaving), each message is charged
//     latency + bytes/bandwidth, and a receive cannot complete before the
//     sender's virtual send time plus transfer — i.e. proper
//     happens-before propagation of simulated time.
// "Time on P processors" reported by the benches is the maximum virtual
// time over ranks, which is what a dedicated-node MPI run measures.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "support/error.hpp"
#include "support/trace.hpp"
#include "support/types.hpp"

namespace bernoulli::runtime {

/// Message cost model. The defaults are SP-2-class parameters rescaled so
/// that the modeled communication-to-computation balance of the benchmark
/// problems matches the paper's configuration (DESIGN.md §3): the paper's
/// machine paid ~40us latency / ~35 MB/s against ~50 MFLOPS nodes and a
/// 30^3-points-per-processor problem; this host's single core runs the
/// kernels ~40x faster on a ~3x smaller per-processor block, so latency
/// and bandwidth are scaled by the corresponding factors.
struct CostModel {
  double latency_s = 1e-6;        // per-message overhead
  double bytes_per_s = 2e9;       // link bandwidth
  // Node compute peak for roofline accounting (analysis/report.cpp): the
  // paper's ~50 MFLOPS nodes rescaled by the same ~40x host factor as the
  // communication parameters above.
  double flops_per_s = 2e9;

  double charge(std::size_t bytes) const {
    return latency_s + static_cast<double>(bytes) / bytes_per_s;
  }
};

struct CommStats {
  long long messages = 0;   // point-to-point messages sent
  long long bytes = 0;      // payload bytes sent
  long long collectives = 0;

  CommStats& operator+=(const CommStats& o) {
    messages += o.messages;
    bytes += o.bytes;
    collectives += o.collectives;
    return *this;
  }
};

class Machine;

/// Per-rank handle passed to the SPMD function. NOT thread-safe across
/// ranks by design — each rank owns its Process.
class Process {
 public:
  int rank() const { return rank_; }
  int nprocs() const { return nprocs_; }

  /// Sends a copy of `data` to `dst` with the given tag. Self-sends are
  /// allowed (and free of transfer cost).
  template <typename T>
  void send(int dst, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dst, tag,
               {reinterpret_cast<const std::byte*>(data.data()),
                data.size() * sizeof(T)});
  }

  template <typename T>
  void send_value(int dst, int tag, const T& v) {
    send<T>(dst, tag, std::span<const T>(&v, 1));
  }

  /// Blocks until a message with matching (src, tag) arrives.
  template <typename T>
  std::vector<T> recv(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> raw = recv_bytes(src, tag);
    BERNOULLI_CHECK_MSG(raw.size() % sizeof(T) == 0,
                        "message size " << raw.size()
                                        << " not a multiple of element size");
    std::vector<T> out(raw.size() / sizeof(T));
    std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  template <typename T>
  T recv_value(int src, int tag) {
    auto v = recv<T>(src, tag);
    BERNOULLI_CHECK(v.size() == 1);
    return v[0];
  }

  void barrier();

  double allreduce_sum(double x);
  double allreduce_max(double x);
  long long allreduce_sum(long long x);

  /// Personalized all-to-all: out[p] is sent to rank p; returns in[p] =
  /// what rank p sent here. out.size() must equal nprocs().
  template <typename T>
  std::vector<std::vector<T>> alltoallv(const std::vector<std::vector<T>>& out,
                                        int tag) {
    BERNOULLI_CHECK(static_cast<int>(out.size()) == nprocs_);
    support::TraceSpan span("alltoallv", "comm");
    for (int p = 0; p < nprocs_; ++p)
      send<T>(p, tag, std::span<const T>(out[static_cast<std::size_t>(p)]));
    std::vector<std::vector<T>> in(static_cast<std::size_t>(nprocs_));
    for (int p = 0; p < nprocs_; ++p)
      in[static_cast<std::size_t>(p)] = recv<T>(p, tag);
    return in;
  }

  /// Gathers each rank's data on every rank (allgatherv).
  template <typename T>
  std::vector<std::vector<T>> allgatherv(std::span<const T> mine, int tag) {
    std::vector<std::vector<T>> out(static_cast<std::size_t>(nprocs_),
                                    std::vector<T>(mine.begin(), mine.end()));
    return alltoallv(out, tag);
  }

  /// Advances the virtual clock past pending compute and returns it.
  double virtual_time();

  /// Adds explicitly modeled work (used rarely; normal compute is captured
  /// by the thread CPU timer automatically).
  void charge_seconds(double s);

  /// Manual-compute mode: the thread CPU timer stops feeding the virtual
  /// clock; only charge_seconds() and communication costs advance it. Used
  /// by calibrated benchmarks (kernel costs measured solo and charged
  /// deterministically — see bench/common.hpp) where in-situ CPU timing of
  /// many ranks time-sharing one host core is too noisy.
  void set_manual_compute(bool on);

  /// Runs a COMPUTE-ONLY section while holding a machine-wide lock, so
  /// rank threads sharing one host core do not interleave (and
  /// cache-thrash) inside it — per-thread CPU time then reflects the work
  /// a dedicated node would do. The virtual clock is unaffected by the
  /// wait (blocked threads burn no CPU). `fn` MUST NOT communicate:
  /// send/recv/collectives inside a solo section deadlock.
  void solo(const std::function<void()>& fn);

  const CommStats& stats() const { return stats_; }

 private:
  friend class Machine;
  Process(Machine& machine, int rank, int nprocs)
      : machine_(machine), rank_(rank), nprocs_(nprocs) {}

  void send_bytes(int dst, int tag, std::span<const std::byte> data);
  std::vector<std::byte> recv_bytes(int src, int tag);
  void advance_clock();  // fold accrued CPU time into the virtual clock

  struct Reduced {
    double sum = 0.0;
    double max = 0.0;
    double clock = 0.0;
  };
  Reduced reduce_rendezvous(double x, const char* span_name);

  Machine& machine_;
  int rank_;
  int nprocs_;
  double vclock_ = 0.0;
  double cpu_mark_ = 0.0;  // thread CPU time at last advance
  bool manual_compute_ = false;
  // Trace process group for this machine run (-1 = tracing off). Rank
  // timelines are laid out on VIRTUAL time: every send/recv/collective
  // span is emitted with explicit virtual-clock timestamps, and matching
  // send->recv pairs share a flow id so the viewer draws message arrows.
  int trace_pid_ = -1;
  CommStats stats_;
};

class Machine {
 public:
  explicit Machine(int nprocs, CostModel cost = {});

  struct RankReport {
    double virtual_time = 0.0;
    CommStats stats;
  };

  /// Runs `fn` as an SPMD program on all ranks (one thread per rank);
  /// returns per-rank virtual time and communication statistics.
  /// Exceptions thrown by any rank are rethrown after all threads join.
  std::vector<RankReport> run(const std::function<void(Process&)>& fn);

  /// When on, every spawned Process STARTS in manual-compute mode, so the
  /// virtual timeline holds exactly the charges the program issues —
  /// nothing accrues between thread spawn and the body's first statement.
  /// (Calling Process::set_manual_compute(true) inside the body instead
  /// books that setup CPU time first.) Tests that assert span timestamps
  /// bit-for-bit depend on this.
  void set_manual_compute(bool on) { manual_compute_default_ = on; }

  int nprocs() const { return nprocs_; }
  const CostModel& cost() const { return cost_; }

 private:
  friend class Process;

  struct Message {
    std::vector<std::byte> data;
    double arrival = 0.0;  // sender virtual time + transfer charge
    long long flow = -1;   // trace flow id linking send span -> recv span
  };
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::map<std::pair<int, int>, std::deque<Message>> queues;  // (src,tag)
  };

  // Barrier/allreduce rendezvous state. Accumulation fields are reset by
  // the first arriver of a round; the completed round's values are
  // *published* into the result fields before waiters are woken, so a rank
  // racing into the next round cannot clobber what slower ranks read.
  struct Rendezvous {
    std::mutex mu;
    std::condition_variable cv;
    int arrived = 0;
    long long generation = 0;
    double max_clock = 0.0;
    double sum = 0.0;
    double maxv = 0.0;
    double result_sum = 0.0;
    double result_max = 0.0;
    double result_clock = 0.0;
  };

  int nprocs_;
  CostModel cost_;
  bool manual_compute_default_ = false;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  Rendezvous rendezvous_;
  std::mutex solo_mu_;
};

}  // namespace bernoulli::runtime
