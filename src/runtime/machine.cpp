#include "runtime/machine.hpp"

#include <cmath>
#include <optional>
#include <thread>

#include "support/counters.hpp"
#include "support/histogram.hpp"
#include "support/timer.hpp"

namespace bernoulli::runtime {

Machine::Machine(int nprocs, CostModel cost) : nprocs_(nprocs), cost_(cost) {
  BERNOULLI_CHECK(nprocs >= 1);
  mailboxes_.reserve(static_cast<std::size_t>(nprocs));
  for (int p = 0; p < nprocs; ++p)
    mailboxes_.push_back(std::make_unique<Mailbox>());
}

std::vector<Machine::RankReport> Machine::run(
    const std::function<void(Process&)>& fn) {
  std::vector<RankReport> reports(static_cast<std::size_t>(nprocs_));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nprocs_));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nprocs_));

  // One trace process group per machine run; each rank is a track whose
  // clock is the rank's VIRTUAL time, so the exported timeline shows what
  // a dedicated-node MPI profiler would (not host-thread interleaving).
  const int trace_pid =
      support::trace_enabled()
          ? support::trace_register_process("machine P=" +
                                            std::to_string(nprocs_))
          : -1;

  for (int p = 0; p < nprocs_; ++p) {
    threads.emplace_back([&, p] {
      Process proc(*this, p, nprocs_);
      proc.trace_pid_ = trace_pid;
      proc.manual_compute_ = manual_compute_default_;
      proc.cpu_mark_ = ThreadCpuTimer::now();
      {
        std::optional<support::TraceTrackScope> track;
        if (trace_pid >= 0) {
          track.emplace(trace_pid, p,
                        [&proc] { return proc.virtual_time() * 1e6; });
          support::trace_name_thread(trace_pid, p,
                                     "rank " + std::to_string(p));
        }
        try {
          fn(proc);
        } catch (...) {
          errors[static_cast<std::size_t>(p)] = std::current_exception();
        }
      }
      proc.advance_clock();
      reports[static_cast<std::size_t>(p)] = {proc.vclock_, proc.stats_};
    });
  }
  for (auto& t : threads) t.join();
  // Leftover messages (e.g. when a rank died) must not leak into the next
  // run; exceptions surface first.
  for (auto& e : errors)
    if (e) {
      for (auto& mb : mailboxes_) {
        std::lock_guard<std::mutex> lk(mb->mu);
        mb->queues.clear();
      }
      std::rethrow_exception(e);
    }
  for (const auto& mb : mailboxes_) {
    std::lock_guard<std::mutex> lk(mb->mu);
    BERNOULLI_CHECK_MSG(mb->queues.empty() ||
                            [&] {
                              for (const auto& [k, q] : mb->queues)
                                if (!q.empty()) return false;
                              return true;
                            }(),
                        "unconsumed messages left in a mailbox");
  }
  return reports;
}

void Process::advance_clock() {
  double now = ThreadCpuTimer::now();
  if (!manual_compute_) {
    vclock_ += now - cpu_mark_;
    if (now > cpu_mark_)
      support::phase_time_counter("vtime", "compute").add(now - cpu_mark_);
  }
  cpu_mark_ = now;
}

void Process::set_manual_compute(bool on) {
  advance_clock();
  manual_compute_ = on;
}

void Process::solo(const std::function<void()>& fn) {
  // Stop the CPU-time clock while waiting for the lock (mutex waits do not
  // consume CPU, but the mark must be refreshed so the wait interval is
  // not mis-attributed).
  advance_clock();
  std::lock_guard<std::mutex> lk(machine_.solo_mu_);
  cpu_mark_ = ThreadCpuTimer::now();
  fn();
  advance_clock();
}

void Process::charge_seconds(double s) {
  BERNOULLI_CHECK(s >= 0.0);
  vclock_ += s;
  support::phase_time_counter("vtime", "compute").add(s);
}

double Process::virtual_time() {
  advance_clock();
  return vclock_;
}

void Process::send_bytes(int dst, int tag, std::span<const std::byte> data) {
  BERNOULLI_CHECK(dst >= 0 && dst < nprocs_);
  advance_clock();
  const double t_begin = vclock_;
  double transfer = dst == rank_ ? 0.0 : machine_.cost_.charge(data.size());
  vclock_ += dst == rank_ ? 0.0 : machine_.cost_.latency_s;  // send overhead
  Machine::Message msg{{data.begin(), data.end()}, vclock_ + transfer, -1};
  if (dst != rank_) {
    ++stats_.messages;
    stats_.bytes += static_cast<long long>(data.size());
    // Phase-split mirror of CommStats: comm.<phase>.messages/bytes sum to
    // the CommStats totals across ranks (reconciled by bench reports).
    support::phase_counter("comm", "messages").add();
    support::phase_counter("comm", "bytes")
        .add(static_cast<long long>(data.size()));
    support::phase_time_counter("vtime", "comm").add(machine_.cost_.latency_s);
    {
      static support::Log2Histogram& sizes =
          support::histogram("comm.message_bytes");
      sizes.add(static_cast<long long>(data.size()));
    }
    // Single-booking invariant: the comm matrix and the send span are fed
    // from this one site, under the same dst != rank_ condition as
    // CommStats and the comm.* counters, so all four reconcile exactly.
    if (support::comm_record_enabled())
      support::comm_matrix_record(rank_, dst,
                                  static_cast<long long>(data.size()));
    if (trace_pid_ >= 0 && support::trace_enabled()) {
      msg.flow = support::trace_new_flow_id();
      support::JsonWriter args;
      args.begin_object();
      args.key("dst").value(dst);
      args.key("tag").value(tag);
      args.key("bytes").value(static_cast<long long>(data.size()));
      args.end_object();
      support::trace_emit_complete("send", "comm", t_begin * 1e6,
                                   (vclock_ - t_begin) * 1e6, trace_pid_,
                                   rank_, args.str());
      support::trace_emit_flow(/*start=*/true, msg.flow, vclock_ * 1e6,
                               trace_pid_, rank_);
      support::trace_emit_counter("tx bytes",
                                  static_cast<double>(stats_.bytes),
                                  vclock_ * 1e6, trace_pid_, rank_);
    }
  }
  auto& mb = *machine_.mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lk(mb.mu);
    mb.queues[{rank_, tag}].push_back(std::move(msg));
  }
  mb.cv.notify_all();
  // The CPU the mailbox machinery itself burned (locking, copying, waking
  // waiters) is simulation infrastructure, not simulated work: the modeled
  // latency/bandwidth charge above replaces it.
  cpu_mark_ = ThreadCpuTimer::now();
}

std::vector<std::byte> Process::recv_bytes(int src, int tag) {
  BERNOULLI_CHECK(src >= 0 && src < nprocs_);
  advance_clock();  // book the compute that preceded the receive
  const double t_begin = vclock_;
  auto& mb = *machine_.mailboxes_[static_cast<std::size_t>(rank_)];
  Machine::Message msg;
  {
    std::unique_lock<std::mutex> lk(mb.mu);
    auto key = std::make_pair(src, tag);
    mb.cv.wait(lk, [&] {
      auto it = mb.queues.find(key);
      return it != mb.queues.end() && !it->second.empty();
    });
    auto& q = mb.queues[key];
    msg = std::move(q.front());
    q.pop_front();
    if (q.empty()) mb.queues.erase(key);
  }
  // Happens-before: the receive completes no earlier than the message's
  // simulated arrival. The CPU burned inside the wait loop itself
  // (condition-variable wakeup churn) is simulation infrastructure and is
  // discarded; see send_bytes.
  if (msg.arrival > vclock_)
    support::phase_time_counter("vtime", "comm").add(msg.arrival - vclock_);
  vclock_ = std::max(vclock_, msg.arrival);
  cpu_mark_ = ThreadCpuTimer::now();
  if (trace_pid_ >= 0 && support::trace_enabled()) {
    // The recv span covers entry -> message arrival: its width is the
    // virtual time this rank spent waiting on the sender.
    support::JsonWriter args;
    args.begin_object();
    args.key("src").value(src);
    args.key("tag").value(tag);
    args.key("bytes").value(static_cast<long long>(msg.data.size()));
    args.end_object();
    support::trace_emit_complete("recv", "comm", t_begin * 1e6,
                                 (vclock_ - t_begin) * 1e6, trace_pid_,
                                 rank_, args.str());
    if (msg.flow >= 0)
      support::trace_emit_flow(/*start=*/false, msg.flow, vclock_ * 1e6,
                               trace_pid_, rank_);
  }
  return std::move(msg.data);
}

namespace {

// Tree-collective cost: ceil(log2 P) message rounds.
double collective_charge(const CostModel& cost, int nprocs,
                         std::size_t bytes) {
  int rounds = 0;
  for (int span = 1; span < nprocs; span *= 2) ++rounds;
  return static_cast<double>(rounds) * cost.charge(bytes);
}

}  // namespace

void Process::barrier() {
  reduce_rendezvous(0.0, "barrier");
}

namespace {

struct ReduceResult {
  double sum;
  double max;
  double clock;
};

}  // namespace

// Shared rendezvous: accumulates (sum, max, clock) across all ranks and
// publishes the completed round's results before waking waiters.
double Process::allreduce_sum(double x) {
  return reduce_rendezvous(x, "allreduce_sum").sum;
}

double Process::allreduce_max(double x) {
  return reduce_rendezvous(x, "allreduce_max").max;
}

Process::Reduced Process::reduce_rendezvous(double x, const char* span_name) {
  advance_clock();
  ++stats_.collectives;
  support::phase_counter("comm", "collectives").add();
  const double entered = vclock_;
  auto& r = machine_.rendezvous_;
  Reduced out{};
  {
    std::unique_lock<std::mutex> lk(r.mu);
    long long gen = r.generation;
    if (r.arrived == 0) {
      r.sum = 0.0;
      r.maxv = -std::numeric_limits<double>::infinity();
      r.max_clock = 0.0;
    }
    r.sum += x;
    r.maxv = std::max(r.maxv, x);
    r.max_clock = std::max(r.max_clock, vclock_);
    if (++r.arrived == nprocs_) {
      r.result_sum = r.sum;
      r.result_max = r.maxv;
      r.result_clock = r.max_clock;
      r.arrived = 0;
      ++r.generation;
      r.cv.notify_all();
    } else {
      r.cv.wait(lk, [&] { return r.generation != gen; });
    }
    out.sum = r.result_sum;
    out.max = r.result_max;
    out.clock = r.result_clock;
  }
  vclock_ =
      out.clock + collective_charge(machine_.cost_, nprocs_, sizeof(double));
  if (vclock_ > entered)
    support::phase_time_counter("vtime", "comm").add(vclock_ - entered);
  cpu_mark_ = ThreadCpuTimer::now();
  if (trace_pid_ >= 0 && support::trace_enabled())
    // Span width = wait for the slowest rank + the modeled tree rounds.
    support::trace_emit_complete(span_name, "comm", entered * 1e6,
                                 (vclock_ - entered) * 1e6, trace_pid_,
                                 rank_);
  return out;
}

long long Process::allreduce_sum(long long x) {
  return static_cast<long long>(
      std::llround(allreduce_sum(static_cast<double>(x))));
}

}  // namespace bernoulli::runtime
