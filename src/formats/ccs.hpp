// Compressed Column Storage (CCS, Fig. 1(b) of the paper) and
// Compressed Compressed Column Storage (CCCS, Fig. 1(c)).
//
// CCS: VALS(COLP(j) .. COLP(j+1)-1) holds the non-zero values of column j,
// ROWIND the matching row indices. Hierarchy: J -> (I, V).
//
// CCCS additionally compresses the column dimension: only columns with at
// least one stored entry appear, and COLIND(jc) gives the original column
// index of stored column jc. Hierarchy: J' -> (I, V) with a sorted
// searchable J' -> J translation.
#pragma once

#include <vector>

#include "formats/coo.hpp"
#include "support/types.hpp"

namespace bernoulli::formats {

class Ccs {
 public:
  Ccs() = default;
  Ccs(index_t rows, index_t cols, std::vector<index_t> colp,
      std::vector<index_t> rowind, std::vector<value_t> vals);

  static Ccs from_coo(const Coo& a);
  Coo to_coo() const;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return static_cast<index_t>(vals_.size()); }

  std::span<const index_t> colp() const { return colp_; }
  std::span<const index_t> rowind() const { return rowind_; }
  std::span<const value_t> vals() const { return vals_; }

  std::span<const index_t> col_rows(index_t j) const {
    return {rowind_.data() + colp_[static_cast<std::size_t>(j)],
            static_cast<std::size_t>(colp_[static_cast<std::size_t>(j) + 1] -
                                     colp_[static_cast<std::size_t>(j)])};
  }
  std::span<const value_t> col_vals(index_t j) const {
    return {vals_.data() + colp_[static_cast<std::size_t>(j)],
            static_cast<std::size_t>(colp_[static_cast<std::size_t>(j) + 1] -
                                     colp_[static_cast<std::size_t>(j)])};
  }

  value_t at(index_t i, index_t j) const;
  void validate() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> colp_;    // size cols+1
  std::vector<index_t> rowind_;  // size nnz, sorted within each column
  std::vector<value_t> vals_;
};

class Cccs {
 public:
  Cccs() = default;
  Cccs(index_t rows, index_t cols, std::vector<index_t> colind,
       std::vector<index_t> colp, std::vector<index_t> rowind,
       std::vector<value_t> vals);

  static Cccs from_coo(const Coo& a);
  Coo to_coo() const;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return static_cast<index_t>(vals_.size()); }

  /// Number of stored (non-empty) columns.
  index_t stored_cols() const { return static_cast<index_t>(colind_.size()); }

  std::span<const index_t> colind() const { return colind_; }
  std::span<const index_t> colp() const { return colp_; }
  std::span<const index_t> rowind() const { return rowind_; }
  std::span<const value_t> vals() const { return vals_; }

  std::span<const index_t> stored_col_rows(index_t jc) const {
    return {rowind_.data() + colp_[static_cast<std::size_t>(jc)],
            static_cast<std::size_t>(colp_[static_cast<std::size_t>(jc) + 1] -
                                     colp_[static_cast<std::size_t>(jc)])};
  }
  std::span<const value_t> stored_col_vals(index_t jc) const {
    return {vals_.data() + colp_[static_cast<std::size_t>(jc)],
            static_cast<std::size_t>(colp_[static_cast<std::size_t>(jc) + 1] -
                                     colp_[static_cast<std::size_t>(jc)])};
  }

  /// Stored-column position of original column j, or -1 when column j has
  /// no stored entries. O(log stored_cols).
  index_t find_stored_col(index_t j) const;

  value_t at(index_t i, index_t j) const;
  void validate() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> colind_;  // original index of each stored column
  std::vector<index_t> colp_;    // size stored_cols+1
  std::vector<index_t> rowind_;
  std::vector<value_t> vals_;
};

void spmv(const Ccs& a, ConstVectorView x, VectorView y);
void spmv_add(const Ccs& a, ConstVectorView x, VectorView y);
void spmv(const Cccs& a, ConstVectorView x, VectorView y);
void spmv_add(const Cccs& a, ConstVectorView x, VectorView y);

}  // namespace bernoulli::formats
