#include "formats/ell.hpp"

#include <algorithm>
#include <numeric>

#include "support/error.hpp"

namespace bernoulli::formats {

Ell::Ell(index_t rows, index_t cols, index_t width, std::vector<index_t> colind,
         std::vector<value_t> vals, std::vector<index_t> rownnz)
    : rows_(rows),
      cols_(cols),
      width_(width),
      colind_(std::move(colind)),
      vals_(std::move(vals)),
      rownnz_(std::move(rownnz)) {
  validate();
}

index_t Ell::nnz() const {
  return std::accumulate(rownnz_.begin(), rownnz_.end(), index_t{0});
}

Ell Ell::from_coo(const Coo& a) {
  std::vector<index_t> len = a.row_lengths();
  index_t width = len.empty() ? 0 : *std::max_element(len.begin(), len.end());
  const auto n = static_cast<std::size_t>(a.rows());
  // Padding: column 0, value 0 — column 0 always exists for non-degenerate
  // matrices and contributes nothing to y.
  std::vector<index_t> colind(n * static_cast<std::size_t>(width), 0);
  std::vector<value_t> vals(n * static_cast<std::size_t>(width), 0.0);

  std::vector<index_t> fill(n, 0);
  auto rowind_in = a.rowind();
  auto colind_in = a.colind();
  auto vals_in = a.vals();
  for (index_t e = 0; e < a.nnz(); ++e) {
    auto i = static_cast<std::size_t>(rowind_in[static_cast<std::size_t>(e)]);
    auto k = static_cast<std::size_t>(fill[i]++);
    colind[k * n + i] = colind_in[static_cast<std::size_t>(e)];
    vals[k * n + i] = vals_in[static_cast<std::size_t>(e)];
  }
  return Ell(a.rows(), a.cols(), width, std::move(colind), std::move(vals),
             std::move(len));
}

Coo Ell::to_coo() const {
  TripletBuilder b(rows_, cols_);
  b.reserve(static_cast<std::size_t>(nnz()));
  for (index_t i = 0; i < rows_; ++i)
    for (index_t k = 0; k < rownnz_[static_cast<std::size_t>(i)]; ++k)
      b.add(i, col_at(i, k), val_at(i, k));
  return std::move(b).build();
}

value_t Ell::at(index_t i, index_t j) const {
  for (index_t k = 0; k < rownnz_[static_cast<std::size_t>(i)]; ++k)
    if (col_at(i, k) == j) return val_at(i, k);
  return 0.0;
}

void Ell::validate() const {
  const auto expect =
      static_cast<std::size_t>(rows_) * static_cast<std::size_t>(width_);
  BERNOULLI_CHECK(colind_.size() == expect);
  BERNOULLI_CHECK(vals_.size() == expect);
  BERNOULLI_CHECK(rownnz_.size() == static_cast<std::size_t>(rows_));
  for (index_t r : rownnz_) BERNOULLI_CHECK(r >= 0 && r <= width_);
  for (index_t c : colind_)
    BERNOULLI_CHECK(c >= 0 && (c < cols_ || (c == 0 && cols_ == 0)));
}

void spmv(const Ell& a, ConstVectorView x, VectorView y) {
  BERNOULLI_CHECK(static_cast<index_t>(x.size()) == a.cols());
  BERNOULLI_CHECK(static_cast<index_t>(y.size()) == a.rows());
  std::fill(y.begin(), y.end(), 0.0);
  spmv_add(a, x, y);
}

void spmv_add(const Ell& a, ConstVectorView x, VectorView y) {
  const auto n = static_cast<std::size_t>(a.rows());
  const index_t width = a.width();
  auto colind = a.colind();
  auto vals = a.vals();
  // Column-major sweep: each pass streams through all rows — the ITPACK
  // vectorization pattern. Padding slots multiply 0 by x[0].
  for (index_t k = 0; k < width; ++k) {
    const index_t* c = colind.data() + static_cast<std::size_t>(k) * n;
    const value_t* v = vals.data() + static_cast<std::size_t>(k) * n;
    for (std::size_t i = 0; i < n; ++i)
      y[i] += v[i] * x[static_cast<std::size_t>(c[i])];
  }
}

}  // namespace bernoulli::formats
