// Skyline (profile/envelope) storage, George & Liu [10] — the classic
// direct-solver format the paper's Diagonal storage re-orients: row i
// stores the contiguous run first(i) .. i of its lower triangle (the
// "profile"). Cholesky factorization fills in ONLY within the profile, so
// a skyline factorizes in place with no symbolic phase — the property
// that made it the workhorse of banded/envelope direct solvers (and why
// RCM, which shrinks the envelope, matters; see workloads/rcm).
#pragma once

#include <vector>

#include "formats/coo.hpp"

namespace bernoulli::formats {

/// Symmetric matrix stored by its lower-triangle envelope.
class Skyline {
 public:
  Skyline() = default;

  /// Builds from a structurally symmetric matrix (values of the lower
  /// triangle are taken; the envelope is the span first-nonzero..diagonal
  /// of each row, interior zeros stored explicitly).
  static Skyline from_coo(const Coo& a);

  /// The symmetric matrix (envelope zeros dropped).
  Coo to_coo() const;

  index_t rows() const { return static_cast<index_t>(first_.size()); }
  /// Stored envelope slots (including interior zeros).
  index_t stored() const { return static_cast<index_t>(vals_.size()); }

  /// First stored column of row i.
  index_t first(index_t i) const { return first_[static_cast<std::size_t>(i)]; }

  value_t at(index_t i, index_t j) const;
  value_t& at_mut(index_t i, index_t j);

  /// y = A x using the symmetric envelope (each stored entry used twice).
  void spmv_sym(ConstVectorView x, VectorView y) const;

  /// In-place Cholesky A = L L^T within the envelope (no fill outside it —
  /// a theorem of envelope methods). Throws on non-positive pivots. After
  /// the call the storage holds L.
  void cholesky_in_place();

  /// Given the factored storage (L), solves L L^T x = b.
  void solve_factored(ConstVectorView b, VectorView x) const;

  void validate() const;

 private:
  std::vector<index_t> first_;  // first stored column per row
  std::vector<index_t> rptr_;   // row start in vals_, size rows+1
  std::vector<value_t> vals_;   // envelope, row-major, diagonal last per row
};

}  // namespace bernoulli::formats
