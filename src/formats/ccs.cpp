#include "formats/ccs.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace bernoulli::formats {

Ccs::Ccs(index_t rows, index_t cols, std::vector<index_t> colp,
         std::vector<index_t> rowind, std::vector<value_t> vals)
    : rows_(rows),
      cols_(cols),
      colp_(std::move(colp)),
      rowind_(std::move(rowind)),
      vals_(std::move(vals)) {
  validate();
}

Ccs Ccs::from_coo(const Coo& a) {
  // Column-major pass over the canonical (row-major) triplets.
  std::vector<index_t> colp(static_cast<std::size_t>(a.cols()) + 1, 0);
  auto rowind_in = a.rowind();
  auto colind_in = a.colind();
  auto vals_in = a.vals();
  for (index_t c : colind_in) ++colp[static_cast<std::size_t>(c) + 1];
  for (std::size_t j = 1; j < colp.size(); ++j) colp[j] += colp[j - 1];

  std::vector<index_t> rowind(vals_in.size());
  std::vector<value_t> vals(vals_in.size());
  std::vector<index_t> next(colp.begin(), colp.end() - 1);
  for (index_t k = 0; k < a.nnz(); ++k) {
    index_t j = colind_in[static_cast<std::size_t>(k)];
    index_t pos = next[static_cast<std::size_t>(j)]++;
    rowind[static_cast<std::size_t>(pos)] = rowind_in[static_cast<std::size_t>(k)];
    vals[static_cast<std::size_t>(pos)] = vals_in[static_cast<std::size_t>(k)];
  }
  return Ccs(a.rows(), a.cols(), std::move(colp), std::move(rowind),
             std::move(vals));
}

Coo Ccs::to_coo() const {
  TripletBuilder b(rows_, cols_);
  b.reserve(vals_.size());
  for (index_t j = 0; j < cols_; ++j) {
    auto rows = col_rows(j);
    auto vals = col_vals(j);
    for (std::size_t k = 0; k < rows.size(); ++k) b.add(rows[k], j, vals[k]);
  }
  return std::move(b).build();
}

value_t Ccs::at(index_t i, index_t j) const {
  auto rows = col_rows(j);
  auto it = std::lower_bound(rows.begin(), rows.end(), i);
  if (it != rows.end() && *it == i)
    return col_vals(j)[static_cast<std::size_t>(it - rows.begin())];
  return 0.0;
}

void Ccs::validate() const {
  BERNOULLI_CHECK(colp_.size() == static_cast<std::size_t>(cols_) + 1);
  BERNOULLI_CHECK(colp_.front() == 0);
  BERNOULLI_CHECK(colp_.back() == static_cast<index_t>(vals_.size()));
  BERNOULLI_CHECK(rowind_.size() == vals_.size());
  for (index_t j = 0; j < cols_; ++j) {
    BERNOULLI_CHECK(colp_[static_cast<std::size_t>(j)] <=
                    colp_[static_cast<std::size_t>(j) + 1]);
    auto rows = col_rows(j);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      BERNOULLI_CHECK(rows[k] >= 0 && rows[k] < rows_);
      if (k > 0) BERNOULLI_CHECK(rows[k - 1] < rows[k]);
    }
  }
}

Cccs::Cccs(index_t rows, index_t cols, std::vector<index_t> colind,
           std::vector<index_t> colp, std::vector<index_t> rowind,
           std::vector<value_t> vals)
    : rows_(rows),
      cols_(cols),
      colind_(std::move(colind)),
      colp_(std::move(colp)),
      rowind_(std::move(rowind)),
      vals_(std::move(vals)) {
  validate();
}

Cccs Cccs::from_coo(const Coo& a) {
  Ccs full = Ccs::from_coo(a);
  std::vector<index_t> colind;
  std::vector<index_t> colp{0};
  std::vector<index_t> rowind;
  std::vector<value_t> vals;
  for (index_t j = 0; j < a.cols(); ++j) {
    auto rows = full.col_rows(j);
    if (rows.empty()) continue;  // zero columns are not stored
    auto cv = full.col_vals(j);
    colind.push_back(j);
    rowind.insert(rowind.end(), rows.begin(), rows.end());
    vals.insert(vals.end(), cv.begin(), cv.end());
    colp.push_back(static_cast<index_t>(rowind.size()));
  }
  return Cccs(a.rows(), a.cols(), std::move(colind), std::move(colp),
              std::move(rowind), std::move(vals));
}

Coo Cccs::to_coo() const {
  TripletBuilder b(rows_, cols_);
  b.reserve(vals_.size());
  for (index_t jc = 0; jc < stored_cols(); ++jc) {
    index_t j = colind_[static_cast<std::size_t>(jc)];
    auto rows = stored_col_rows(jc);
    auto vals = stored_col_vals(jc);
    for (std::size_t k = 0; k < rows.size(); ++k) b.add(rows[k], j, vals[k]);
  }
  return std::move(b).build();
}

index_t Cccs::find_stored_col(index_t j) const {
  auto it = std::lower_bound(colind_.begin(), colind_.end(), j);
  if (it != colind_.end() && *it == j)
    return static_cast<index_t>(it - colind_.begin());
  return -1;
}

value_t Cccs::at(index_t i, index_t j) const {
  index_t jc = find_stored_col(j);
  if (jc < 0) return 0.0;
  auto rows = stored_col_rows(jc);
  auto it = std::lower_bound(rows.begin(), rows.end(), i);
  if (it != rows.end() && *it == i)
    return stored_col_vals(jc)[static_cast<std::size_t>(it - rows.begin())];
  return 0.0;
}

void Cccs::validate() const {
  BERNOULLI_CHECK(colp_.size() == colind_.size() + 1);
  BERNOULLI_CHECK(colp_.front() == 0);
  BERNOULLI_CHECK(colp_.back() == static_cast<index_t>(vals_.size()));
  BERNOULLI_CHECK(rowind_.size() == vals_.size());
  for (std::size_t jc = 0; jc < colind_.size(); ++jc) {
    BERNOULLI_CHECK(colind_[jc] >= 0 && colind_[jc] < cols_);
    if (jc > 0) BERNOULLI_CHECK(colind_[jc - 1] < colind_[jc]);
    // CCCS stores only non-empty columns.
    BERNOULLI_CHECK(colp_[jc] < colp_[jc + 1]);
    auto rows = stored_col_rows(static_cast<index_t>(jc));
    for (std::size_t k = 0; k < rows.size(); ++k) {
      BERNOULLI_CHECK(rows[k] >= 0 && rows[k] < rows_);
      if (k > 0) BERNOULLI_CHECK(rows[k - 1] < rows[k]);
    }
  }
}

void spmv(const Ccs& a, ConstVectorView x, VectorView y) {
  BERNOULLI_CHECK(static_cast<index_t>(x.size()) == a.cols());
  BERNOULLI_CHECK(static_cast<index_t>(y.size()) == a.rows());
  std::fill(y.begin(), y.end(), 0.0);
  spmv_add(a, x, y);
}

void spmv_add(const Ccs& a, ConstVectorView x, VectorView y) {
  const index_t n = a.cols();
  auto colp = a.colp();
  auto rowind = a.rowind();
  auto vals = a.vals();
  for (index_t j = 0; j < n; ++j) {
    const value_t xj = x[static_cast<std::size_t>(j)];
    const index_t end = colp[static_cast<std::size_t>(j) + 1];
    for (index_t k = colp[static_cast<std::size_t>(j)]; k < end; ++k)
      y[static_cast<std::size_t>(rowind[static_cast<std::size_t>(k)])] +=
          vals[static_cast<std::size_t>(k)] * xj;
  }
}

void spmv(const Cccs& a, ConstVectorView x, VectorView y) {
  BERNOULLI_CHECK(static_cast<index_t>(x.size()) == a.cols());
  BERNOULLI_CHECK(static_cast<index_t>(y.size()) == a.rows());
  std::fill(y.begin(), y.end(), 0.0);
  spmv_add(a, x, y);
}

void spmv_add(const Cccs& a, ConstVectorView x, VectorView y) {
  const index_t nc = a.stored_cols();
  auto colind = a.colind();
  auto colp = a.colp();
  auto rowind = a.rowind();
  auto vals = a.vals();
  for (index_t jc = 0; jc < nc; ++jc) {
    const value_t xj = x[static_cast<std::size_t>(colind[static_cast<std::size_t>(jc)])];
    const index_t end = colp[static_cast<std::size_t>(jc) + 1];
    for (index_t k = colp[static_cast<std::size_t>(jc)]; k < end; ++k)
      y[static_cast<std::size_t>(rowind[static_cast<std::size_t>(k)])] +=
          vals[static_cast<std::size_t>(k)] * xj;
  }
}

}  // namespace bernoulli::formats
