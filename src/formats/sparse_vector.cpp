#include "formats/sparse_vector.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace bernoulli::formats {

SparseVector::SparseVector(index_t size,
                           std::vector<std::pair<index_t, value_t>> entries)
    : size_(size) {
  BERNOULLI_CHECK(size >= 0);
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [i, v] : entries) {
    BERNOULLI_CHECK_MSG(i >= 0 && i < size, "index " << i << " out of range");
    if (!ind_.empty() && ind_.back() == i) {
      vals_.back() += v;
    } else {
      ind_.push_back(i);
      vals_.push_back(v);
    }
  }
}

SparseVector SparseVector::from_dense(ConstVectorView x, value_t drop_tol) {
  std::vector<std::pair<index_t, value_t>> entries;
  for (std::size_t i = 0; i < x.size(); ++i)
    if (std::abs(x[i]) > drop_tol)
      entries.emplace_back(static_cast<index_t>(i), x[i]);
  return SparseVector(static_cast<index_t>(x.size()), std::move(entries));
}

Vector SparseVector::to_dense() const {
  Vector out(static_cast<std::size_t>(size_), 0.0);
  for (std::size_t k = 0; k < ind_.size(); ++k)
    out[static_cast<std::size_t>(ind_[k])] = vals_[k];
  return out;
}

value_t SparseVector::at(index_t i) const {
  auto it = std::lower_bound(ind_.begin(), ind_.end(), i);
  if (it != ind_.end() && *it == i)
    return vals_[static_cast<std::size_t>(it - ind_.begin())];
  return 0.0;
}

void SparseVector::validate() const {
  BERNOULLI_CHECK(ind_.size() == vals_.size());
  for (std::size_t k = 0; k < ind_.size(); ++k) {
    BERNOULLI_CHECK(ind_[k] >= 0 && ind_[k] < size_);
    if (k > 0) BERNOULLI_CHECK(ind_[k - 1] < ind_[k]);
  }
}

value_t dot(const SparseVector& a, ConstVectorView x) {
  BERNOULLI_CHECK(static_cast<index_t>(x.size()) == a.size());
  value_t sum = 0.0;
  auto ind = a.ind();
  auto vals = a.vals();
  for (std::size_t k = 0; k < ind.size(); ++k)
    sum += vals[k] * x[static_cast<std::size_t>(ind[k])];
  return sum;
}

value_t dot(const SparseVector& a, const SparseVector& b) {
  BERNOULLI_CHECK(a.size() == b.size());
  value_t sum = 0.0;
  auto ai = a.ind(), bi = b.ind();
  auto av = a.vals(), bv = b.vals();
  std::size_t p = 0, q = 0;
  // Two-finger merge join over the sorted index lists.
  while (p < ai.size() && q < bi.size()) {
    if (ai[p] < bi[q]) {
      ++p;
    } else if (ai[p] > bi[q]) {
      ++q;
    } else {
      sum += av[p] * bv[q];
      ++p;
      ++q;
    }
  }
  return sum;
}

}  // namespace bernoulli::formats
