#include "formats/jds.hpp"

#include <algorithm>
#include <numeric>

#include "formats/csr.hpp"
#include "support/error.hpp"

namespace bernoulli::formats {

Jds::Jds(index_t rows, index_t cols, std::vector<index_t> perm,
         std::vector<index_t> jdptr, std::vector<index_t> colind,
         std::vector<value_t> vals)
    : rows_(rows),
      cols_(cols),
      perm_(std::move(perm)),
      jdptr_(std::move(jdptr)),
      colind_(std::move(colind)),
      vals_(std::move(vals)) {
  iperm_.assign(perm_.size(), 0);
  for (std::size_t ip = 0; ip < perm_.size(); ++ip)
    iperm_[static_cast<std::size_t>(perm_[ip])] = static_cast<index_t>(ip);
  validate();
}

Jds Jds::from_coo(const Coo& a) {
  Csr csr = Csr::from_coo(a);
  std::vector<index_t> len = a.row_lengths();

  // Stable sort rows by decreasing length; stability keeps the permutation
  // deterministic.
  std::vector<index_t> perm(static_cast<std::size_t>(a.rows()));
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [&](index_t x, index_t y) {
    return len[static_cast<std::size_t>(x)] > len[static_cast<std::size_t>(y)];
  });

  index_t maxlen =
      len.empty() ? 0 : len[static_cast<std::size_t>(perm.empty() ? 0 : perm[0])];
  std::vector<index_t> jdptr{0};
  std::vector<index_t> colind;
  std::vector<value_t> vals;
  colind.reserve(static_cast<std::size_t>(a.nnz()));
  vals.reserve(static_cast<std::size_t>(a.nnz()));
  for (index_t k = 0; k < maxlen; ++k) {
    for (index_t ip = 0; ip < a.rows(); ++ip) {
      index_t i = perm[static_cast<std::size_t>(ip)];
      if (len[static_cast<std::size_t>(i)] <= k) break;  // rows sorted by len
      colind.push_back(csr.row_cols(i)[static_cast<std::size_t>(k)]);
      vals.push_back(csr.row_vals(i)[static_cast<std::size_t>(k)]);
    }
    jdptr.push_back(static_cast<index_t>(colind.size()));
  }
  return Jds(a.rows(), a.cols(), std::move(perm), std::move(jdptr),
             std::move(colind), std::move(vals));
}

Coo Jds::to_coo() const {
  TripletBuilder b(rows_, cols_);
  b.reserve(vals_.size());
  for (index_t k = 0; k < num_jdiags(); ++k) {
    const index_t begin = jdptr_[static_cast<std::size_t>(k)];
    const index_t end = jdptr_[static_cast<std::size_t>(k) + 1];
    for (index_t t = begin; t < end; ++t) {
      index_t ip = t - begin;  // permuted row of this slot
      b.add(perm_[static_cast<std::size_t>(ip)],
            colind_[static_cast<std::size_t>(t)],
            vals_[static_cast<std::size_t>(t)]);
    }
  }
  return std::move(b).build();
}

value_t Jds::at(index_t i, index_t j) const {
  index_t ip = iperm_[static_cast<std::size_t>(i)];
  for (index_t k = 0; k < num_jdiags(); ++k) {
    const index_t begin = jdptr_[static_cast<std::size_t>(k)];
    const index_t end = jdptr_[static_cast<std::size_t>(k) + 1];
    if (begin + ip >= end) break;  // row i has fewer than k+1 entries
    if (colind_[static_cast<std::size_t>(begin + ip)] == j)
      return vals_[static_cast<std::size_t>(begin + ip)];
  }
  return 0.0;
}

void Jds::validate() const {
  BERNOULLI_CHECK(perm_.size() == static_cast<std::size_t>(rows_));
  BERNOULLI_CHECK(!jdptr_.empty() && jdptr_.front() == 0);
  BERNOULLI_CHECK(jdptr_.back() == static_cast<index_t>(vals_.size()));
  BERNOULLI_CHECK(colind_.size() == vals_.size());
  std::vector<bool> seen(perm_.size(), false);
  for (index_t p : perm_) {
    BERNOULLI_CHECK(p >= 0 && p < rows_);
    BERNOULLI_CHECK_MSG(!seen[static_cast<std::size_t>(p)],
                        "perm is not a permutation");
    seen[static_cast<std::size_t>(p)] = true;
  }
  index_t prev_len = rows_ + 1;
  for (index_t k = 0; k < num_jdiags(); ++k) {
    index_t len = jdptr_[static_cast<std::size_t>(k) + 1] -
                  jdptr_[static_cast<std::size_t>(k)];
    BERNOULLI_CHECK_MSG(len <= prev_len, "jagged diagonals must shrink");
    BERNOULLI_CHECK(len >= 1 && len <= rows_);
    prev_len = len;
  }
  for (index_t c : colind_) BERNOULLI_CHECK(c >= 0 && c < cols_);
}

void spmv(const Jds& a, ConstVectorView x, VectorView y) {
  BERNOULLI_CHECK(static_cast<index_t>(x.size()) == a.cols());
  BERNOULLI_CHECK(static_cast<index_t>(y.size()) == a.rows());
  std::fill(y.begin(), y.end(), 0.0);
  spmv_add(a, x, y);
}

void spmv_add(const Jds& a, ConstVectorView x, VectorView y) {
  const index_t njd = a.num_jdiags();
  auto perm = a.perm();
  auto jdptr = a.jdptr();
  auto colind = a.colind();
  auto vals = a.vals();
  for (index_t k = 0; k < njd; ++k) {
    const index_t begin = jdptr[static_cast<std::size_t>(k)];
    const index_t end = jdptr[static_cast<std::size_t>(k) + 1];
    // Long unit-stride inner loops over the jagged diagonal — the format's
    // vectorization payoff; y is accessed through the permutation.
    for (index_t t = begin; t < end; ++t)
      y[static_cast<std::size_t>(perm[static_cast<std::size_t>(t - begin)])] +=
          vals[static_cast<std::size_t>(t)] *
          x[static_cast<std::size_t>(colind[static_cast<std::size_t>(t)])];
  }
}

}  // namespace bernoulli::formats
