#include "formats/skyline.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace bernoulli::formats {

Skyline Skyline::from_coo(const Coo& a) {
  BERNOULLI_CHECK(a.rows() == a.cols());
  const index_t n = a.rows();
  Skyline s;
  s.first_.assign(static_cast<std::size_t>(n), 0);
  for (index_t i = 0; i < n; ++i) s.first_[static_cast<std::size_t>(i)] = i;

  auto rowind = a.rowind();
  auto colind = a.colind();
  for (index_t k = 0; k < a.nnz(); ++k) {
    index_t i = rowind[k], j = colind[k];
    if (j <= i)
      s.first_[static_cast<std::size_t>(i)] =
          std::min(s.first_[static_cast<std::size_t>(i)], j);
    else  // structural symmetry: an upper entry implies a lower one
      s.first_[static_cast<std::size_t>(j)] =
          std::min(s.first_[static_cast<std::size_t>(j)], i);
  }
  s.rptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (index_t i = 0; i < n; ++i)
    s.rptr_[static_cast<std::size_t>(i) + 1] =
        s.rptr_[static_cast<std::size_t>(i)] +
        (i - s.first_[static_cast<std::size_t>(i)] + 1);
  s.vals_.assign(static_cast<std::size_t>(s.rptr_.back()), 0.0);

  auto vals = a.vals();
  for (index_t k = 0; k < a.nnz(); ++k) {
    index_t i = rowind[k], j = colind[k];
    if (j <= i) s.at_mut(i, j) = vals[k];
  }
  s.validate();
  return s;
}

Coo Skyline::to_coo() const {
  TripletBuilder b(rows(), rows());
  for (index_t i = 0; i < rows(); ++i) {
    for (index_t j = first(i); j <= i; ++j) {
      value_t v = at(i, j);
      if (v == 0.0) continue;
      b.add(i, j, v);
      if (j != i) b.add(j, i, v);
    }
  }
  return std::move(b).build();
}

value_t Skyline::at(index_t i, index_t j) const {
  BERNOULLI_CHECK(j <= i);
  if (j < first(i)) return 0.0;
  return vals_[static_cast<std::size_t>(
      rptr_[static_cast<std::size_t>(i)] + (j - first(i)))];
}

value_t& Skyline::at_mut(index_t i, index_t j) {
  BERNOULLI_CHECK(j >= first(i) && j <= i);
  return vals_[static_cast<std::size_t>(
      rptr_[static_cast<std::size_t>(i)] + (j - first(i)))];
}

void Skyline::spmv_sym(ConstVectorView x, VectorView y) const {
  const index_t n = rows();
  BERNOULLI_CHECK(static_cast<index_t>(x.size()) == n &&
                  static_cast<index_t>(y.size()) == n);
  std::fill(y.begin(), y.end(), 0.0);
  for (index_t i = 0; i < n; ++i) {
    const value_t* row = vals_.data() + rptr_[static_cast<std::size_t>(i)];
    const index_t f = first(i);
    value_t sum = 0.0;
    for (index_t j = f; j < i; ++j) {
      value_t v = row[static_cast<std::size_t>(j - f)];
      sum += v * x[static_cast<std::size_t>(j)];
      y[static_cast<std::size_t>(j)] += v * x[static_cast<std::size_t>(i)];
    }
    sum += row[static_cast<std::size_t>(i - f)] * x[static_cast<std::size_t>(i)];
    y[static_cast<std::size_t>(i)] += sum;
  }
}

void Skyline::cholesky_in_place() {
  const index_t n = rows();
  for (index_t i = 0; i < n; ++i) {
    const index_t fi = first(i);
    for (index_t j = fi; j < i; ++j) {
      // L(i,j) = (A(i,j) - sum_{k} L(i,k) L(j,k)) / L(j,j), k within both
      // envelopes: max(fi, first(j)) .. j-1.
      value_t sum = at(i, j);
      const index_t lo = std::max(fi, first(j));
      for (index_t k = lo; k < j; ++k) sum -= at(i, k) * at(j, k);
      at_mut(i, j) = sum / at(j, j);
    }
    value_t pivot = at(i, i);
    for (index_t k = fi; k < i; ++k) pivot -= at(i, k) * at(i, k);
    BERNOULLI_CHECK_MSG(pivot > 0.0,
                        "Cholesky breakdown at row " << i << " (pivot "
                                                     << pivot << ")");
    at_mut(i, i) = std::sqrt(pivot);
  }
}

void Skyline::solve_factored(ConstVectorView b, VectorView x) const {
  const index_t n = rows();
  BERNOULLI_CHECK(static_cast<index_t>(b.size()) == n &&
                  static_cast<index_t>(x.size()) == n);
  // Forward: L z = b (z kept in x).
  for (index_t i = 0; i < n; ++i) {
    value_t sum = b[static_cast<std::size_t>(i)];
    for (index_t j = first(i); j < i; ++j)
      sum -= at(i, j) * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = sum / at(i, i);
  }
  // Backward: L^T x = z (column sweep over rows, reverse order).
  for (index_t i = n - 1; i >= 0; --i) {
    x[static_cast<std::size_t>(i)] /= at(i, i);
    const value_t xi = x[static_cast<std::size_t>(i)];
    for (index_t j = first(i); j < i; ++j)
      x[static_cast<std::size_t>(j)] -= at(i, j) * xi;
    if (i == 0) break;
  }
}

void Skyline::validate() const {
  const index_t n = rows();
  BERNOULLI_CHECK(rptr_.size() == static_cast<std::size_t>(n) + 1);
  BERNOULLI_CHECK(rptr_.front() == 0);
  BERNOULLI_CHECK(rptr_.back() == static_cast<index_t>(vals_.size()));
  for (index_t i = 0; i < n; ++i) {
    BERNOULLI_CHECK(first(i) >= 0 && first(i) <= i);
    BERNOULLI_CHECK(rptr_[static_cast<std::size_t>(i) + 1] -
                        rptr_[static_cast<std::size_t>(i)] ==
                    i - first(i) + 1);
  }
}

}  // namespace bernoulli::formats
