#include "formats/dense.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace bernoulli::formats {

Dense Dense::from_coo(const Coo& a) {
  Dense d(a.rows(), a.cols());
  auto rowind = a.rowind();
  auto colind = a.colind();
  auto vals = a.vals();
  for (index_t k = 0; k < a.nnz(); ++k) d.at(rowind[k], colind[k]) = vals[k];
  return d;
}

Coo Dense::to_coo(value_t drop_tol) const {
  TripletBuilder b(rows_, cols_);
  for (index_t i = 0; i < rows_; ++i)
    for (index_t j = 0; j < cols_; ++j)
      if (std::abs(at(i, j)) > drop_tol) b.add(i, j, at(i, j));
  return std::move(b).build();
}

void spmv(const Dense& a, ConstVectorView x, VectorView y) {
  BERNOULLI_CHECK(static_cast<index_t>(x.size()) == a.cols());
  BERNOULLI_CHECK(static_cast<index_t>(y.size()) == a.rows());
  std::fill(y.begin(), y.end(), 0.0);
  spmv_add(a, x, y);
}

void spmv_add(const Dense& a, ConstVectorView x, VectorView y) {
  const index_t m = a.rows(), n = a.cols();
  for (index_t i = 0; i < m; ++i) {
    auto row = a.row(i);
    value_t sum = 0.0;
    for (index_t j = 0; j < n; ++j)
      sum += row[static_cast<std::size_t>(j)] * x[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] += sum;
  }
}

}  // namespace bernoulli::formats
