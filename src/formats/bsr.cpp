#include "formats/bsr.hpp"

#include <algorithm>
#include <map>

#include "support/error.hpp"

namespace bernoulli::formats {

Bsr::Bsr(index_t rows, index_t cols, index_t block,
         std::vector<index_t> browptr, std::vector<index_t> bcolind,
         std::vector<value_t> vals)
    : rows_(rows),
      cols_(cols),
      block_(block),
      browptr_(std::move(browptr)),
      bcolind_(std::move(bcolind)),
      vals_(std::move(vals)) {
  validate();
}

Bsr Bsr::from_coo(const Coo& a, index_t block) {
  BERNOULLI_CHECK(block >= 1);
  BERNOULLI_CHECK_MSG(a.rows() % block == 0 && a.cols() % block == 0,
                      "matrix " << a.rows() << "x" << a.cols()
                                << " not divisible into " << block
                                << "-blocks");
  const index_t brows = a.rows() / block;

  // Pass 1: the set of blocks per block row.
  std::vector<std::vector<index_t>> blocks(static_cast<std::size_t>(brows));
  auto rowind = a.rowind();
  auto colind = a.colind();
  for (index_t k = 0; k < a.nnz(); ++k)
    blocks[static_cast<std::size_t>(rowind[k] / block)].push_back(colind[k] /
                                                                  block);
  std::vector<index_t> browptr{0}, bcolind;
  for (auto& br : blocks) {
    std::sort(br.begin(), br.end());
    br.erase(std::unique(br.begin(), br.end()), br.end());
    bcolind.insert(bcolind.end(), br.begin(), br.end());
    browptr.push_back(static_cast<index_t>(bcolind.size()));
  }

  // Pass 2: scatter values into the block slots.
  std::vector<value_t> vals(bcolind.size() * static_cast<std::size_t>(block) *
                                static_cast<std::size_t>(block),
                            0.0);
  auto avals = a.vals();
  for (index_t k = 0; k < a.nnz(); ++k) {
    const index_t br = rowind[k] / block, bc = colind[k] / block;
    const index_t* begin = bcolind.data() + browptr[static_cast<std::size_t>(br)];
    const index_t* end = bcolind.data() + browptr[static_cast<std::size_t>(br) + 1];
    auto slot = static_cast<std::size_t>(
        std::lower_bound(begin, end, bc) - bcolind.data());
    auto off = slot * static_cast<std::size_t>(block) *
                   static_cast<std::size_t>(block) +
               static_cast<std::size_t>(rowind[k] % block) *
                   static_cast<std::size_t>(block) +
               static_cast<std::size_t>(colind[k] % block);
    vals[off] = avals[static_cast<std::size_t>(k)];
  }
  return Bsr(a.rows(), a.cols(), block, std::move(browptr), std::move(bcolind),
             std::move(vals));
}

Coo Bsr::to_coo() const {
  TripletBuilder b(rows_, cols_);
  const auto bb = static_cast<std::size_t>(block_) *
                  static_cast<std::size_t>(block_);
  for (index_t br = 0; br < block_rows(); ++br) {
    for (index_t s = browptr_[static_cast<std::size_t>(br)];
         s < browptr_[static_cast<std::size_t>(br) + 1]; ++s) {
      const index_t bc = bcolind_[static_cast<std::size_t>(s)];
      const value_t* blk = vals_.data() + static_cast<std::size_t>(s) * bb;
      for (index_t r = 0; r < block_; ++r)
        for (index_t c = 0; c < block_; ++c) {
          value_t v = blk[static_cast<std::size_t>(r * block_ + c)];
          if (v != 0.0) b.add(br * block_ + r, bc * block_ + c, v);
        }
    }
  }
  return std::move(b).build();
}

value_t Bsr::at(index_t i, index_t j) const {
  const index_t br = i / block_, bc = j / block_;
  const index_t* begin = bcolind_.data() + browptr_[static_cast<std::size_t>(br)];
  const index_t* end = bcolind_.data() + browptr_[static_cast<std::size_t>(br) + 1];
  const index_t* it = std::lower_bound(begin, end, bc);
  if (it == end || *it != bc) return 0.0;
  auto slot = static_cast<std::size_t>(it - bcolind_.data());
  return vals_[slot * static_cast<std::size_t>(block_) *
                   static_cast<std::size_t>(block_) +
               static_cast<std::size_t>((i % block_) * block_ + (j % block_))];
}

void Bsr::validate() const {
  BERNOULLI_CHECK(block_ >= 1);
  BERNOULLI_CHECK(rows_ % block_ == 0 && cols_ % block_ == 0);
  BERNOULLI_CHECK(browptr_.size() ==
                  static_cast<std::size_t>(rows_ / block_) + 1);
  BERNOULLI_CHECK(browptr_.front() == 0);
  BERNOULLI_CHECK(browptr_.back() == static_cast<index_t>(bcolind_.size()));
  BERNOULLI_CHECK(vals_.size() == bcolind_.size() *
                                      static_cast<std::size_t>(block_) *
                                      static_cast<std::size_t>(block_));
  for (index_t br = 0; br + 1 < static_cast<index_t>(browptr_.size()); ++br) {
    BERNOULLI_CHECK(browptr_[static_cast<std::size_t>(br)] <=
                    browptr_[static_cast<std::size_t>(br) + 1]);
    for (index_t s = browptr_[static_cast<std::size_t>(br)];
         s < browptr_[static_cast<std::size_t>(br) + 1]; ++s) {
      BERNOULLI_CHECK(bcolind_[static_cast<std::size_t>(s)] >= 0 &&
                      bcolind_[static_cast<std::size_t>(s)] < cols_ / block_);
      if (s > browptr_[static_cast<std::size_t>(br)])
        BERNOULLI_CHECK(bcolind_[static_cast<std::size_t>(s) - 1] <
                        bcolind_[static_cast<std::size_t>(s)]);
    }
  }
}

void spmv(const Bsr& a, ConstVectorView x, VectorView y) {
  BERNOULLI_CHECK(static_cast<index_t>(x.size()) == a.cols());
  BERNOULLI_CHECK(static_cast<index_t>(y.size()) == a.rows());
  std::fill(y.begin(), y.end(), 0.0);
  spmv_add(a, x, y);
}

void spmv_add(const Bsr& a, ConstVectorView x, VectorView y) {
  const index_t b = a.block();
  const auto bb = static_cast<std::size_t>(b) * static_cast<std::size_t>(b);
  auto browptr = a.browptr();
  auto bcolind = a.bcolind();
  auto vals = a.vals();
  for (index_t br = 0; br < a.block_rows(); ++br) {
    value_t* ys = y.data() + static_cast<std::size_t>(br) *
                                 static_cast<std::size_t>(b);
    for (index_t s = browptr[static_cast<std::size_t>(br)];
         s < browptr[static_cast<std::size_t>(br) + 1]; ++s) {
      const value_t* blk = vals.data() + static_cast<std::size_t>(s) * bb;
      const value_t* xs = x.data() +
                          static_cast<std::size_t>(
                              bcolind[static_cast<std::size_t>(s)]) *
                              static_cast<std::size_t>(b);
      // Dense b x b micro-GEMV: no per-entry index loads inside the block.
      for (index_t r = 0; r < b; ++r) {
        value_t sum = 0.0;
        const value_t* row = blk + static_cast<std::size_t>(r * b);
        for (index_t c = 0; c < b; ++c)
          sum += row[static_cast<std::size_t>(c)] *
                 xs[static_cast<std::size_t>(c)];
        ys[static_cast<std::size_t>(r)] += sum;
      }
    }
  }
}

}  // namespace bernoulli::formats
