#include "formats/csr.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace bernoulli::formats {

Csr::Csr(index_t rows, index_t cols, std::vector<index_t> rowptr,
         std::vector<index_t> colind, std::vector<value_t> vals)
    : rows_(rows),
      cols_(cols),
      rowptr_(std::move(rowptr)),
      colind_(std::move(colind)),
      vals_(std::move(vals)) {
  validate();
}

Csr Csr::from_coo(const Coo& a) {
  std::vector<index_t> rowptr(static_cast<std::size_t>(a.rows()) + 1, 0);
  auto rowind = a.rowind();
  for (index_t r : rowind) ++rowptr[static_cast<std::size_t>(r) + 1];
  for (std::size_t i = 1; i < rowptr.size(); ++i) rowptr[i] += rowptr[i - 1];
  // Canonical Coo is already row-major sorted with sorted columns, so the
  // entry arrays can be copied directly.
  std::vector<index_t> colind(a.colind().begin(), a.colind().end());
  std::vector<value_t> vals(a.vals().begin(), a.vals().end());
  return Csr(a.rows(), a.cols(), std::move(rowptr), std::move(colind),
             std::move(vals));
}

Coo Csr::to_coo() const {
  TripletBuilder b(rows_, cols_);
  b.reserve(vals_.size());
  for (index_t i = 0; i < rows_; ++i) {
    auto cols = row_cols(i);
    auto vals = row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) b.add(i, cols[k], vals[k]);
  }
  return std::move(b).build();
}

value_t Csr::at(index_t i, index_t j) const {
  auto cols = row_cols(i);
  auto it = std::lower_bound(cols.begin(), cols.end(), j);
  if (it != cols.end() && *it == j)
    return row_vals(i)[static_cast<std::size_t>(it - cols.begin())];
  return 0.0;
}

void Csr::validate() const {
  BERNOULLI_CHECK(rowptr_.size() == static_cast<std::size_t>(rows_) + 1);
  BERNOULLI_CHECK(rowptr_.front() == 0);
  BERNOULLI_CHECK(rowptr_.back() == static_cast<index_t>(vals_.size()));
  BERNOULLI_CHECK(colind_.size() == vals_.size());
  for (index_t i = 0; i < rows_; ++i) {
    BERNOULLI_CHECK(rowptr_[static_cast<std::size_t>(i)] <=
                    rowptr_[static_cast<std::size_t>(i) + 1]);
    auto cols = row_cols(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      BERNOULLI_CHECK(cols[k] >= 0 && cols[k] < cols_);
      if (k > 0)
        BERNOULLI_CHECK_MSG(cols[k - 1] < cols[k],
                            "row " << i << " columns not strictly sorted");
    }
  }
}

void spmv(const Csr& a, ConstVectorView x, VectorView y) {
  BERNOULLI_CHECK(static_cast<index_t>(x.size()) == a.cols());
  BERNOULLI_CHECK(static_cast<index_t>(y.size()) == a.rows());
  const index_t m = a.rows();
  auto rowptr = a.rowptr();
  auto colind = a.colind();
  auto vals = a.vals();
  for (index_t i = 0; i < m; ++i) {
    value_t sum = 0.0;
    const index_t end = rowptr[static_cast<std::size_t>(i) + 1];
    for (index_t k = rowptr[static_cast<std::size_t>(i)]; k < end; ++k)
      sum += vals[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(colind[static_cast<std::size_t>(k)])];
    y[static_cast<std::size_t>(i)] = sum;
  }
}

void spmv_add(const Csr& a, ConstVectorView x, VectorView y) {
  const index_t m = a.rows();
  auto rowptr = a.rowptr();
  auto colind = a.colind();
  auto vals = a.vals();
  for (index_t i = 0; i < m; ++i) {
    value_t sum = 0.0;
    const index_t end = rowptr[static_cast<std::size_t>(i) + 1];
    for (index_t k = rowptr[static_cast<std::size_t>(i)]; k < end; ++k)
      sum += vals[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(colind[static_cast<std::size_t>(k)])];
    y[static_cast<std::size_t>(i)] += sum;
  }
}

}  // namespace bernoulli::formats
