// Block Sparse Row (BSR) storage — an extension beyond the paper's format
// set: the regular-block cousin of BlockSolve's i-node storage. For
// matrices from multi-dof discretizations (d unknowns per point), every
// stored entry belongs to a dense d x d block, and storing whole blocks
// removes (d^2 - 1)/d^2 of the index metadata and gives the SpMV kernel
// dense micro-GEMVs.
//
// Layout: block rows of size b; BROWPTR/BCOLIND compress the block
// structure exactly like CSR compresses scalars; VALS stores each block's
// b x b values row-major, blocks in BCOLIND order.
#pragma once

#include <vector>

#include "formats/coo.hpp"

namespace bernoulli::formats {

class Bsr {
 public:
  Bsr() = default;
  Bsr(index_t rows, index_t cols, index_t block, std::vector<index_t> browptr,
      std::vector<index_t> bcolind, std::vector<value_t> vals);

  /// Blocks any matrix whose dimensions are multiples of `block`; a block
  /// is stored when it contains at least one stored entry (its missing
  /// positions become explicit zeros).
  static Bsr from_coo(const Coo& a, index_t block);

  /// Exact zeros introduced by block filling are dropped on the way out,
  /// so matrices without stored zeros round-trip.
  Coo to_coo() const;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t block() const { return block_; }
  index_t block_rows() const { return rows_ / block_; }
  index_t num_blocks() const {
    return static_cast<index_t>(bcolind_.size());
  }
  /// Stored values including block-fill zeros.
  index_t stored() const { return static_cast<index_t>(vals_.size()); }

  std::span<const index_t> browptr() const { return browptr_; }
  std::span<const index_t> bcolind() const { return bcolind_; }
  std::span<const value_t> vals() const { return vals_; }

  value_t at(index_t i, index_t j) const;
  void validate() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t block_ = 1;
  std::vector<index_t> browptr_;  // block_rows()+1
  std::vector<index_t> bcolind_;  // block-column of each block, sorted/row
  std::vector<value_t> vals_;     // num_blocks * block^2
};

void spmv(const Bsr& a, ConstVectorView x, VectorView y);
void spmv_add(const Bsr& a, ConstVectorView x, VectorView y);

}  // namespace bernoulli::formats
