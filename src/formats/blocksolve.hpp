// BlockSolve95 storage (paper §1, Fig. 2; Jones & Plassmann [11]).
//
// The matrix is reordered by a clique partition of its node graph and a
// coloring of the contracted graph: unknowns are laid out color by color,
// clique by clique. Storage then splits into
//   - dense diagonal blocks, one per clique (the "black triangles" of
//     Fig. 2(b); we store the full square block), and
//   - the off-diagonal sparse part in i-node storage: runs of consecutive
//     rows with identical column structure hold their values as one dense
//     (rows x cols) block (Fig. 2(c)).
//
// The ordering computation (cliques + coloring) lives in
// workloads/bs_order.*; this header defines the ordering description and
// the storage itself, so the format does not depend on how the ordering
// was obtained.
#pragma once

#include <vector>

#include "formats/coo.hpp"

namespace bernoulli::formats {

/// Result of the BlockSolve reordering: a symmetric permutation of the
/// unknowns plus the clique/color layout in the *new* index space.
struct BsOrdering {
  index_t dof = 1;
  std::vector<index_t> old_to_new;  // unknown permutation
  std::vector<index_t> new_to_old;

  struct CliqueRange {
    index_t first = 0;  // first unknown (new space)
    index_t size = 0;   // unknowns in the clique (nodes * dof)
    index_t color = 0;
  };
  /// Cliques in layout order: colors ascend, ranges are contiguous and
  /// cover [0, n).
  std::vector<CliqueRange> cliques;
  index_t num_colors = 0;
  /// color c covers unknowns [color_ptr[c], color_ptr[c+1]).
  std::vector<index_t> color_ptr;

  index_t rows() const { return static_cast<index_t>(old_to_new.size()); }
  void validate() const;
};

/// The trivial ordering: identity permutation, every unknown its own
/// clique, one color. Useful for tests and as a degenerate baseline.
BsOrdering identity_ordering(index_t n);

class BsMatrix {
 public:
  /// One off-diagonal i-node block: rows [first_row, first_row+num_rows)
  /// share the column structure `cols`; vals is num_rows x cols.size(),
  /// row-major.
  struct InodeBlock {
    index_t first_row = 0;
    index_t num_rows = 0;
    std::vector<index_t> cols;  // new-space columns, sorted
    std::vector<value_t> vals;
  };

  BsMatrix() = default;

  /// Splits the (already assembled) matrix `a` according to `ord`. `a` is
  /// given in the ORIGINAL index space; the storage holds P·A·Pᵀ.
  static BsMatrix build(const Coo& a, BsOrdering ord);

  index_t rows() const { return ord_.rows(); }
  index_t cols() const { return ord_.rows(); }
  index_t nnz() const;

  const BsOrdering& ordering() const { return ord_; }
  std::span<const InodeBlock> inodes() const { return inodes_; }

  /// Dense diagonal block of clique c (size x size, row-major).
  std::span<const value_t> diag_block(index_t c) const;

  /// y = B * x in the PERMUTED space.
  void spmv_permuted(ConstVectorView x, VectorView y) const;

  /// y = A * x in the ORIGINAL space (permutes in and out).
  void spmv_original(ConstVectorView x, VectorView y) const;

  /// The permuted matrix P·A·Pᵀ as canonical COO.
  Coo to_coo_permuted() const;

  /// The original matrix (inverse-permuted round trip).
  Coo to_coo_original() const;

  void validate() const;

 private:
  BsOrdering ord_;
  std::vector<index_t> diag_ptr_;    // per clique, into diag_vals_
  std::vector<value_t> diag_vals_;   // concatenated dense blocks
  std::vector<InodeBlock> inodes_;   // sorted by first_row
};

/// Adapters so BsMatrix slots into the generic spmv() overload set
/// (original index space, like every other format).
void spmv(const BsMatrix& a, ConstVectorView x, VectorView y);
void spmv_add(const BsMatrix& a, ConstVectorView x, VectorView y);

}  // namespace bernoulli::formats
