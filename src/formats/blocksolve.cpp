#include "formats/blocksolve.hpp"

#include <algorithm>
#include <numeric>

#include "formats/csr.hpp"
#include "support/error.hpp"

namespace bernoulli::formats {

void BsOrdering::validate() const {
  const index_t n = rows();
  BERNOULLI_CHECK(new_to_old.size() == old_to_new.size());
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (index_t i = 0; i < n; ++i) {
    index_t o = new_to_old[static_cast<std::size_t>(i)];
    BERNOULLI_CHECK(o >= 0 && o < n);
    BERNOULLI_CHECK_MSG(!seen[static_cast<std::size_t>(o)],
                        "new_to_old is not a permutation");
    seen[static_cast<std::size_t>(o)] = true;
    BERNOULLI_CHECK(old_to_new[static_cast<std::size_t>(o)] == i);
  }
  index_t pos = 0;
  index_t prev_color = 0;
  for (const auto& c : cliques) {
    BERNOULLI_CHECK_MSG(c.first == pos, "clique ranges must tile [0, n)");
    BERNOULLI_CHECK(c.size >= 1);
    BERNOULLI_CHECK(c.color >= prev_color);
    BERNOULLI_CHECK(c.color < num_colors);
    prev_color = c.color;
    pos += c.size;
  }
  BERNOULLI_CHECK(pos == n);
  BERNOULLI_CHECK(color_ptr.size() == static_cast<std::size_t>(num_colors) + 1);
  BERNOULLI_CHECK(color_ptr.front() == 0 && color_ptr.back() == n);
  for (std::size_t c = 0; c + 1 < color_ptr.size(); ++c)
    BERNOULLI_CHECK(color_ptr[c] <= color_ptr[c + 1]);
}

BsOrdering identity_ordering(index_t n) {
  BsOrdering ord;
  ord.dof = 1;
  ord.old_to_new.resize(static_cast<std::size_t>(n));
  std::iota(ord.old_to_new.begin(), ord.old_to_new.end(), 0);
  ord.new_to_old = ord.old_to_new;
  ord.cliques.reserve(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) ord.cliques.push_back({i, 1, 0});
  ord.num_colors = n > 0 ? 1 : 0;
  ord.color_ptr = n > 0 ? std::vector<index_t>{0, n} : std::vector<index_t>{0};
  if (n == 0) ord.color_ptr = {0};
  ord.validate();
  return ord;
}

BsMatrix BsMatrix::build(const Coo& a, BsOrdering ord) {
  BERNOULLI_CHECK(a.rows() == a.cols());
  BERNOULLI_CHECK(a.rows() == ord.rows());
  ord.validate();

  BsMatrix out;
  out.ord_ = std::move(ord);
  const BsOrdering& o = out.ord_;
  const index_t n = a.rows();

  // Permute the matrix into the new space once.
  std::vector<Triplet> perm_entries;
  perm_entries.reserve(static_cast<std::size_t>(a.nnz()));
  {
    auto rowind = a.rowind();
    auto colind = a.colind();
    auto vals = a.vals();
    for (index_t k = 0; k < a.nnz(); ++k)
      perm_entries.push_back(
          {o.old_to_new[static_cast<std::size_t>(rowind[k])],
           o.old_to_new[static_cast<std::size_t>(colind[k])], vals[k]});
  }
  Coo pa(n, n, std::move(perm_entries));
  Csr pcsr = Csr::from_coo(pa);

  // Clique range of each row (new space).
  std::vector<index_t> clique_of_row(static_cast<std::size_t>(n));
  for (std::size_t c = 0; c < o.cliques.size(); ++c)
    for (index_t r = 0; r < o.cliques[c].size; ++r)
      clique_of_row[static_cast<std::size_t>(o.cliques[c].first + r)] =
          static_cast<index_t>(c);

  // Dense diagonal blocks.
  out.diag_ptr_.reserve(o.cliques.size() + 1);
  out.diag_ptr_.push_back(0);
  for (const auto& c : o.cliques) {
    auto base = static_cast<index_t>(out.diag_vals_.size());
    out.diag_vals_.resize(out.diag_vals_.size() +
                              static_cast<std::size_t>(c.size) *
                                  static_cast<std::size_t>(c.size),
                          0.0);
    for (index_t r = 0; r < c.size; ++r) {
      index_t row = c.first + r;
      auto cols = pcsr.row_cols(row);
      auto vals = pcsr.row_vals(row);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        index_t j = cols[k];
        if (j >= c.first && j < c.first + c.size)
          out.diag_vals_[static_cast<std::size_t>(
              base + r * c.size + (j - c.first))] = vals[k];
      }
    }
    out.diag_ptr_.push_back(static_cast<index_t>(out.diag_vals_.size()));
  }

  // Off-diagonal i-node blocks per clique: consecutive rows with identical
  // off-clique column structure.
  for (const auto& c : o.cliques) {
    index_t r = c.first;
    const index_t end = c.first + c.size;
    while (r < end) {
      auto off_cols = [&](index_t row) {
        std::vector<index_t> cols;
        for (index_t j : pcsr.row_cols(row))
          if (j < c.first || j >= c.first + c.size) cols.push_back(j);
        return cols;
      };
      std::vector<index_t> sig = off_cols(r);
      index_t r2 = r + 1;
      while (r2 < end && off_cols(r2) == sig) ++r2;
      if (!sig.empty()) {
        InodeBlock blk;
        blk.first_row = r;
        blk.num_rows = r2 - r;
        blk.cols = sig;
        blk.vals.assign(static_cast<std::size_t>(blk.num_rows) * sig.size(),
                        0.0);
        for (index_t rr = r; rr < r2; ++rr) {
          auto cols = pcsr.row_cols(rr);
          auto vals = pcsr.row_vals(rr);
          std::size_t pos = 0;
          for (std::size_t k = 0; k < cols.size(); ++k) {
            index_t j = cols[k];
            if (j >= c.first && j < c.first + c.size) continue;
            blk.vals[static_cast<std::size_t>(rr - r) * sig.size() + pos] =
                vals[k];
            ++pos;
          }
          BERNOULLI_CHECK(pos == sig.size());
        }
        out.inodes_.push_back(std::move(blk));
      }
      r = r2;
    }
  }
  out.validate();
  return out;
}

index_t BsMatrix::nnz() const {
  std::size_t count = 0;
  for (value_t v : diag_vals_)
    if (v != 0.0) ++count;
  for (const auto& b : inodes_)
    for (value_t v : b.vals)
      if (v != 0.0) ++count;
  return static_cast<index_t>(count);
}

std::span<const value_t> BsMatrix::diag_block(index_t c) const {
  return {diag_vals_.data() + diag_ptr_[static_cast<std::size_t>(c)],
          static_cast<std::size_t>(diag_ptr_[static_cast<std::size_t>(c) + 1] -
                                   diag_ptr_[static_cast<std::size_t>(c)])};
}

void BsMatrix::spmv_permuted(ConstVectorView x, VectorView y) const {
  BERNOULLI_CHECK(static_cast<index_t>(x.size()) == rows());
  BERNOULLI_CHECK(static_cast<index_t>(y.size()) == rows());
  std::fill(y.begin(), y.end(), 0.0);

  // Dense diagonal blocks: small GEMVs on contiguous x/y segments.
  for (std::size_t c = 0; c < ord_.cliques.size(); ++c) {
    const auto& range = ord_.cliques[c];
    auto block = diag_block(static_cast<index_t>(c));
    const value_t* xs = x.data() + range.first;
    value_t* ys = y.data() + range.first;
    for (index_t r = 0; r < range.size; ++r) {
      const value_t* row =
          block.data() + static_cast<std::size_t>(r) *
                             static_cast<std::size_t>(range.size);
      value_t sum = 0.0;
      for (index_t j = 0; j < range.size; ++j)
        sum += row[static_cast<std::size_t>(j)] *
               xs[static_cast<std::size_t>(j)];
      ys[static_cast<std::size_t>(r)] += sum;
    }
  }

  // I-node blocks: gather x over the shared column set once per block,
  // then a dense (num_rows x cols) GEMV — the i-node payoff.
  std::vector<value_t> gathered;
  for (const auto& b : inodes_) {
    gathered.resize(b.cols.size());
    for (std::size_t k = 0; k < b.cols.size(); ++k)
      gathered[k] = x[static_cast<std::size_t>(b.cols[k])];
    for (index_t r = 0; r < b.num_rows; ++r) {
      const value_t* row = b.vals.data() + static_cast<std::size_t>(r) * b.cols.size();
      value_t sum = 0.0;
      for (std::size_t k = 0; k < b.cols.size(); ++k) sum += row[k] * gathered[k];
      y[static_cast<std::size_t>(b.first_row + r)] += sum;
    }
  }
}

void BsMatrix::spmv_original(ConstVectorView x, VectorView y) const {
  const auto n = static_cast<std::size_t>(rows());
  Vector xp(n), yp(n);
  for (std::size_t i = 0; i < n; ++i)
    xp[static_cast<std::size_t>(ord_.old_to_new[i])] = x[i];
  spmv_permuted(xp, yp);
  for (std::size_t i = 0; i < n; ++i)
    y[i] = yp[static_cast<std::size_t>(ord_.old_to_new[i])];
}

Coo BsMatrix::to_coo_permuted() const {
  TripletBuilder b(rows(), cols());
  for (std::size_t c = 0; c < ord_.cliques.size(); ++c) {
    const auto& range = ord_.cliques[c];
    auto block = diag_block(static_cast<index_t>(c));
    for (index_t r = 0; r < range.size; ++r)
      for (index_t j = 0; j < range.size; ++j) {
        value_t v = block[static_cast<std::size_t>(r * range.size + j)];
        if (v != 0.0) b.add(range.first + r, range.first + j, v);
      }
  }
  for (const auto& blk : inodes_)
    for (index_t r = 0; r < blk.num_rows; ++r)
      for (std::size_t k = 0; k < blk.cols.size(); ++k) {
        value_t v = blk.vals[static_cast<std::size_t>(r) * blk.cols.size() + k];
        if (v != 0.0) b.add(blk.first_row + r, blk.cols[k], v);
      }
  return std::move(b).build();
}

Coo BsMatrix::to_coo_original() const {
  Coo pa = to_coo_permuted();
  std::vector<Triplet> entries;
  entries.reserve(static_cast<std::size_t>(pa.nnz()));
  auto rowind = pa.rowind();
  auto colind = pa.colind();
  auto vals = pa.vals();
  for (index_t k = 0; k < pa.nnz(); ++k)
    entries.push_back({ord_.new_to_old[static_cast<std::size_t>(rowind[k])],
                       ord_.new_to_old[static_cast<std::size_t>(colind[k])],
                       vals[k]});
  return Coo(rows(), cols(), std::move(entries));
}

void BsMatrix::validate() const {
  ord_.validate();
  BERNOULLI_CHECK(diag_ptr_.size() == ord_.cliques.size() + 1);
  index_t prev_row = -1;
  for (const auto& b : inodes_) {
    BERNOULLI_CHECK(b.num_rows >= 1);
    BERNOULLI_CHECK(b.first_row > prev_row);
    prev_row = b.first_row + b.num_rows - 1;
    BERNOULLI_CHECK(b.vals.size() ==
                    static_cast<std::size_t>(b.num_rows) * b.cols.size());
    for (std::size_t k = 0; k < b.cols.size(); ++k) {
      BERNOULLI_CHECK(b.cols[k] >= 0 && b.cols[k] < cols());
      if (k > 0) BERNOULLI_CHECK(b.cols[k - 1] < b.cols[k]);
    }
  }
}

void spmv(const BsMatrix& a, ConstVectorView x, VectorView y) {
  a.spmv_original(x, y);
}

void spmv_add(const BsMatrix& a, ConstVectorView x, VectorView y) {
  Vector tmp(y.size());
  a.spmv_original(x, tmp);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += tmp[i];
}

}  // namespace bernoulli::formats
