#include "formats/formats.hpp"

#include <array>

#include "support/error.hpp"

namespace bernoulli::formats {

std::string kind_name(Kind k) {
  switch (k) {
    case Kind::kDense: return "Dense";
    case Kind::kCoo: return "Coordinate";
    case Kind::kCsr: return "CRS";
    case Kind::kCcs: return "CCS";
    case Kind::kCccs: return "CCCS";
    case Kind::kDia: return "Diagonal";
    case Kind::kEll: return "ITPACK";
    case Kind::kJds: return "JDiag";
    case Kind::kBsr: return "BCSR";
    case Kind::kSell: return "SELL-C-s";
  }
  return "?";
}

std::span<const Kind> sparse_kinds() {
  static constexpr std::array<Kind, 9> kinds = {
      Kind::kDia, Kind::kCoo, Kind::kCsr,  Kind::kCcs,
      Kind::kCccs, Kind::kEll, Kind::kJds, Kind::kBsr, Kind::kSell,
  };
  return kinds;
}

namespace {

// Block size for sweeps that only hand us a matrix: the largest small
// power of two dividing both dimensions (block 1 degenerates to CSR with
// per-block metadata, still valid).
index_t default_block(const Coo& a) {
  for (index_t b : {4, 2})
    if (a.rows() % b == 0 && a.cols() % b == 0) return b;
  return 1;
}

}  // namespace

AnyFormat::AnyFormat(Kind kind, const Coo& a) : kind_(kind) {
  switch (kind) {
    case Kind::kDense: m_ = Dense::from_coo(a); break;
    case Kind::kCoo: m_ = a; break;
    case Kind::kCsr: m_ = Csr::from_coo(a); break;
    case Kind::kCcs: m_ = Ccs::from_coo(a); break;
    case Kind::kCccs: m_ = Cccs::from_coo(a); break;
    case Kind::kDia: m_ = Dia::from_coo(a); break;
    case Kind::kEll: m_ = Ell::from_coo(a); break;
    case Kind::kJds: m_ = Jds::from_coo(a); break;
    case Kind::kBsr: m_ = Bsr::from_coo(a, default_block(a)); break;
    case Kind::kSell: m_ = Sell::from_coo(a, /*chunk=*/8, /*sigma=*/32); break;
  }
}

index_t AnyFormat::rows() const {
  return std::visit([](const auto& m) { return m.rows(); }, m_);
}

index_t AnyFormat::cols() const {
  return std::visit([](const auto& m) { return m.cols(); }, m_);
}

Coo AnyFormat::to_coo() const {
  return std::visit(
      [](const auto& m) -> Coo {
        if constexpr (std::is_same_v<std::decay_t<decltype(m)>, Coo>)
          return m;
        else
          return m.to_coo();
      },
      m_);
}

value_t AnyFormat::at(index_t i, index_t j) const {
  return std::visit([&](const auto& m) { return m.at(i, j); }, m_);
}

void AnyFormat::spmv(ConstVectorView x, VectorView y) const {
  std::visit([&](const auto& m) { formats::spmv(m, x, y); }, m_);
}

void AnyFormat::spmv_add(ConstVectorView x, VectorView y) const {
  std::visit([&](const auto& m) { formats::spmv_add(m, x, y); }, m_);
}

std::size_t AnyFormat::storage_bytes() const {
  return std::visit(
      [](const auto& m) -> std::size_t {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Dense>) {
          return m.data().size() * sizeof(value_t);
        } else if constexpr (std::is_same_v<T, Coo>) {
          return m.vals().size() * (sizeof(value_t) + 2 * sizeof(index_t));
        } else if constexpr (std::is_same_v<T, Csr>) {
          return m.vals().size() * (sizeof(value_t) + sizeof(index_t)) +
                 m.rowptr().size() * sizeof(index_t);
        } else if constexpr (std::is_same_v<T, Ccs>) {
          return m.vals().size() * (sizeof(value_t) + sizeof(index_t)) +
                 m.colp().size() * sizeof(index_t);
        } else if constexpr (std::is_same_v<T, Cccs>) {
          return m.vals().size() * (sizeof(value_t) + sizeof(index_t)) +
                 (m.colp().size() + m.colind().size()) * sizeof(index_t);
        } else if constexpr (std::is_same_v<T, Dia>) {
          return m.vals().size() * sizeof(value_t) +
                 (m.offsets().size() + m.first().size() + m.dptr().size()) *
                     sizeof(index_t);
        } else if constexpr (std::is_same_v<T, Ell>) {
          return m.vals().size() * (sizeof(value_t) + sizeof(index_t));
        } else if constexpr (std::is_same_v<T, Bsr>) {
          return m.vals().size() * sizeof(value_t) +
                 (m.browptr().size() + m.bcolind().size()) * sizeof(index_t);
        } else if constexpr (std::is_same_v<T, Sell>) {
          return m.vals().size() * (sizeof(value_t) + sizeof(index_t)) +
                 (m.cptr().size() + m.rowbase().size() + m.rowlen().size()) *
                     sizeof(index_t);
        } else {
          static_assert(std::is_same_v<T, Jds>);
          return m.vals().size() * (sizeof(value_t) + sizeof(index_t)) +
                 (m.perm().size() + m.iperm().size() + m.jdptr().size()) *
                     sizeof(index_t);
        }
      },
      m_);
}

}  // namespace bernoulli::formats
