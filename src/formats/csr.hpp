// Compressed Row Storage (CRS in the paper's Table 1).
//
// The transpose view of CCS: ROWPTR(i) .. ROWPTR(i+1)-1 index the stored
// entries of row i in COLIND/VALS, with column indices sorted inside each
// row. Access-method hierarchy (paper §2.1): I -> (J, V), where I is a
// dense interval with O(1) search and (J, V) is a sorted enumerable
// sequence with O(log) search.
#pragma once

#include <vector>

#include "formats/coo.hpp"
#include "support/types.hpp"

namespace bernoulli::formats {

class Csr {
 public:
  Csr() = default;
  Csr(index_t rows, index_t cols, std::vector<index_t> rowptr,
      std::vector<index_t> colind, std::vector<value_t> vals);

  static Csr from_coo(const Coo& a);
  Coo to_coo() const;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return static_cast<index_t>(vals_.size()); }

  std::span<const index_t> rowptr() const { return rowptr_; }
  std::span<const index_t> colind() const { return colind_; }
  std::span<const value_t> vals() const { return vals_; }
  std::span<value_t> vals() { return vals_; }

  /// Column indices of row i.
  std::span<const index_t> row_cols(index_t i) const {
    return {colind_.data() + rowptr_[static_cast<std::size_t>(i)],
            static_cast<std::size_t>(rowptr_[static_cast<std::size_t>(i) + 1] -
                                     rowptr_[static_cast<std::size_t>(i)])};
  }

  /// Values of row i.
  std::span<const value_t> row_vals(index_t i) const {
    return {vals_.data() + rowptr_[static_cast<std::size_t>(i)],
            static_cast<std::size_t>(rowptr_[static_cast<std::size_t>(i) + 1] -
                                     rowptr_[static_cast<std::size_t>(i)])};
  }

  /// Value at (i, j); 0 when not stored. O(log row length).
  value_t at(index_t i, index_t j) const;

  void validate() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> rowptr_;  // size rows+1
  std::vector<index_t> colind_;  // size nnz, sorted within each row
  std::vector<value_t> vals_;    // size nnz
};

/// y = A * x — the kernel the Bernoulli compiler generates for
/// (dense i-loop) x (CRS row enumeration).
void spmv(const Csr& a, ConstVectorView x, VectorView y);
void spmv_add(const Csr& a, ConstVectorView x, VectorView y);

}  // namespace bernoulli::formats
