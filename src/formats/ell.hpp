// ITPACK / ELLPACK format (the paper's "ITPACK", Appendix A; Kincaid et al.
// Algorithm 586).
//
// Every row is padded to the width of the longest row. Two (rows x width)
// arrays are stored column-major ("jagged column" major), matching the
// Fortran layout of ITPACK 2C: position (i, k) lives at k*rows + i. Padding
// slots use column 0 and value 0, so the kernel needs no branches; a
// per-row length array records where the real entries end (ITPACK derives
// this from its padding convention, which is ambiguous for stored zeros —
// we keep it explicit).
#pragma once

#include <vector>

#include "formats/coo.hpp"
#include "support/types.hpp"

namespace bernoulli::formats {

class Ell {
 public:
  Ell() = default;
  Ell(index_t rows, index_t cols, index_t width, std::vector<index_t> colind,
      std::vector<value_t> vals, std::vector<index_t> rownnz);

  static Ell from_coo(const Coo& a);
  Coo to_coo() const;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t width() const { return width_; }
  /// Stored entries excluding padding.
  index_t nnz() const;
  /// Stored entries including padding (the memory the format touches).
  index_t padded_size() const { return rows_ * width_; }

  std::span<const index_t> colind() const { return colind_; }
  std::span<const value_t> vals() const { return vals_; }
  std::span<const index_t> rownnz() const { return rownnz_; }

  index_t col_at(index_t i, index_t k) const {
    return colind_[static_cast<std::size_t>(k) * static_cast<std::size_t>(rows_) +
                   static_cast<std::size_t>(i)];
  }
  value_t val_at(index_t i, index_t k) const {
    return vals_[static_cast<std::size_t>(k) * static_cast<std::size_t>(rows_) +
                 static_cast<std::size_t>(i)];
  }

  value_t at(index_t i, index_t j) const;
  void validate() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t width_ = 0;
  std::vector<index_t> colind_;  // rows*width, column-major
  std::vector<value_t> vals_;    // rows*width, column-major
  std::vector<index_t> rownnz_;  // real entries per row
};

void spmv(const Ell& a, ConstVectorView x, VectorView y);
void spmv_add(const Ell& a, ConstVectorView x, VectorView y);

}  // namespace bernoulli::formats
