// Jagged Diagonal format (the paper's "JDiag", Saad 1989).
//
// Rows are permuted by decreasing length; the k-th jagged diagonal collects
// the k-th stored entry of every (permuted) row that has one. This is the
// paper's running example of a format involving an index permutation: the
// permutation PERM / IPERM is itself a relation (§2.2).
//
// Layout:
//   perm_[ip]  — original row index of permuted row ip (PERM),
//   iperm_[i]  — permuted position of original row i (IPERM),
//   jdptr_[k]  — start of jagged diagonal k in colind_/vals_; the k-th
//                diagonal has jdptr_[k+1]-jdptr_[k] entries covering
//                permuted rows 0 .. len-1.
#pragma once

#include <vector>

#include "formats/coo.hpp"
#include "support/types.hpp"

namespace bernoulli::formats {

class Jds {
 public:
  Jds() = default;
  Jds(index_t rows, index_t cols, std::vector<index_t> perm,
      std::vector<index_t> jdptr, std::vector<index_t> colind,
      std::vector<value_t> vals);

  static Jds from_coo(const Coo& a);
  Coo to_coo() const;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return static_cast<index_t>(vals_.size()); }
  index_t num_jdiags() const { return static_cast<index_t>(jdptr_.size()) - 1; }

  std::span<const index_t> perm() const { return perm_; }
  std::span<const index_t> iperm() const { return iperm_; }
  std::span<const index_t> jdptr() const { return jdptr_; }
  std::span<const index_t> colind() const { return colind_; }
  std::span<const value_t> vals() const { return vals_; }

  value_t at(index_t i, index_t j) const;
  void validate() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> perm_;    // permuted -> original
  std::vector<index_t> iperm_;   // original -> permuted
  std::vector<index_t> jdptr_;   // num_jdiags+1
  std::vector<index_t> colind_;
  std::vector<value_t> vals_;
};

void spmv(const Jds& a, ConstVectorView x, VectorView y);
void spmv_add(const Jds& a, ConstVectorView x, VectorView y);

}  // namespace bernoulli::formats
