// Dense row-major matrix. Serves as the reference semantics for every
// sparse format (the compiler's input program is the dense loop nest), and
// as the storage for the BlockSolve diagonal clique blocks.
#pragma once

#include <vector>

#include "formats/coo.hpp"
#include "support/types.hpp"

namespace bernoulli::formats {

class Dense {
 public:
  Dense() = default;
  Dense(index_t rows, index_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              0.0) {}

  static Dense from_coo(const Coo& a);
  Coo to_coo(value_t drop_tol = 0.0) const;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }

  value_t& at(index_t i, index_t j) {
    return data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(j)];
  }
  value_t at(index_t i, index_t j) const {
    return data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(j)];
  }

  std::span<const value_t> data() const { return data_; }
  std::span<value_t> data() { return data_; }

  /// Contiguous row i.
  std::span<const value_t> row(index_t i) const {
    return {data_.data() +
                static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_),
            static_cast<std::size_t>(cols_)};
  }

  friend bool operator==(const Dense&, const Dense&) = default;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<value_t> data_;
};

/// y = A * x (dense GEMV; reference for all sparse kernels).
void spmv(const Dense& a, ConstVectorView x, VectorView y);
void spmv_add(const Dense& a, ConstVectorView x, VectorView y);

}  // namespace bernoulli::formats
