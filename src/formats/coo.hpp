// Coordinate (COO) sparse format.
//
// The paper's "Coordinate" format: three parallel arrays ROWIND, COLIND,
// VALS holding one entry per stored non-zero. COO doubles as the exchange
// format between all other formats: every format can be built
// from / lowered to a canonical (row-major sorted, duplicate-free) Coo.
#pragma once

#include <vector>

#include "support/types.hpp"

namespace bernoulli::formats {

class Coo {
 public:
  Coo() = default;

  /// Builds a canonical COO matrix. Entries may arrive in any order and may
  /// contain duplicates; duplicates are summed (the usual FEM assembly
  /// convention). Explicit zeros are kept — a stored zero is still a stored
  /// entry in every format of the paper.
  Coo(index_t rows, index_t cols, std::vector<Triplet> entries);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return static_cast<index_t>(vals_.size()); }

  std::span<const index_t> rowind() const { return rowind_; }
  std::span<const index_t> colind() const { return colind_; }
  std::span<const value_t> vals() const { return vals_; }
  std::span<value_t> vals() { return vals_; }

  /// Value at (i, j); 0 for entries that are not stored. O(log nnz).
  value_t at(index_t i, index_t j) const;

  /// True when (i, j) is a stored entry (even if its value is 0.0).
  bool stored(index_t i, index_t j) const;

  /// Entry list as triplets, in canonical (row, col) order.
  std::vector<Triplet> triplets() const;

  /// Number of stored entries in row i. O(log nnz).
  index_t row_nnz(index_t i) const;

  /// Lengths of all rows.
  std::vector<index_t> row_lengths() const;

  /// Structural transpose (values carried along).
  Coo transposed() const;

  /// True when the matrix equals its transpose, both structurally and in
  /// values (within `tol`).
  bool is_symmetric(value_t tol = 0.0) const;

  /// Throws bernoulli::Error when the canonical-form invariants are broken.
  void validate() const;

  friend bool operator==(const Coo& a, const Coo& b);

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> rowind_;
  std::vector<index_t> colind_;
  std::vector<value_t> vals_;
};

/// Incremental triplet accumulator; the natural API for matrix assembly.
class TripletBuilder {
 public:
  TripletBuilder(index_t rows, index_t cols) : rows_(rows), cols_(cols) {}

  void add(index_t i, index_t j, value_t v) { entries_.push_back({i, j, v}); }

  /// Reserve space for n more entries.
  void reserve(std::size_t n) { entries_.reserve(entries_.size() + n); }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  std::size_t size() const { return entries_.size(); }

  /// Consumes the accumulated entries and produces a canonical Coo.
  Coo build() &&;

 private:
  index_t rows_;
  index_t cols_;
  std::vector<Triplet> entries_;
};

/// y = A * x  (reference COO kernel; what the compiler emits for COO).
void spmv(const Coo& a, ConstVectorView x, VectorView y);

/// y += A * x
void spmv_add(const Coo& a, ConstVectorView x, VectorView y);

}  // namespace bernoulli::formats
