#include "formats/coo.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace bernoulli::formats {

Coo::Coo(index_t rows, index_t cols, std::vector<Triplet> entries)
    : rows_(rows), cols_(cols) {
  BERNOULLI_CHECK(rows >= 0 && cols >= 0);
  std::sort(entries.begin(), entries.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  rowind_.reserve(entries.size());
  colind_.reserve(entries.size());
  vals_.reserve(entries.size());
  for (const Triplet& t : entries) {
    BERNOULLI_CHECK_MSG(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols,
                        "entry (" << t.row << "," << t.col
                                  << ") outside " << rows << "x" << cols);
    if (!vals_.empty() && rowind_.back() == t.row && colind_.back() == t.col) {
      vals_.back() += t.val;  // assembly: duplicates sum
    } else {
      rowind_.push_back(t.row);
      colind_.push_back(t.col);
      vals_.push_back(t.val);
    }
  }
}

namespace {

// Index of the first stored entry with (row, col) >= (i, j), in canonical
// order; returns nnz when none.
index_t lower_bound_entry(std::span<const index_t> rowind,
                          std::span<const index_t> colind, index_t i,
                          index_t j) {
  index_t lo = 0;
  auto hi = static_cast<index_t>(rowind.size());
  while (lo < hi) {
    index_t mid = lo + (hi - lo) / 2;
    bool less = rowind[mid] != i ? rowind[mid] < i : colind[mid] < j;
    if (less)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

}  // namespace

value_t Coo::at(index_t i, index_t j) const {
  index_t k = lower_bound_entry(rowind_, colind_, i, j);
  if (k < nnz() && rowind_[k] == i && colind_[k] == j) return vals_[k];
  return 0.0;
}

bool Coo::stored(index_t i, index_t j) const {
  index_t k = lower_bound_entry(rowind_, colind_, i, j);
  return k < nnz() && rowind_[k] == i && colind_[k] == j;
}

std::vector<Triplet> Coo::triplets() const {
  std::vector<Triplet> out(vals_.size());
  for (std::size_t k = 0; k < vals_.size(); ++k)
    out[k] = {rowind_[k], colind_[k], vals_[k]};
  return out;
}

index_t Coo::row_nnz(index_t i) const {
  index_t lo = lower_bound_entry(rowind_, colind_, i, 0);
  index_t hi = lower_bound_entry(rowind_, colind_, i + 1, 0);
  return hi - lo;
}

std::vector<index_t> Coo::row_lengths() const {
  std::vector<index_t> len(static_cast<std::size_t>(rows_), 0);
  for (index_t r : rowind_) ++len[static_cast<std::size_t>(r)];
  return len;
}

Coo Coo::transposed() const {
  std::vector<Triplet> t;
  t.reserve(vals_.size());
  for (std::size_t k = 0; k < vals_.size(); ++k)
    t.push_back({colind_[k], rowind_[k], vals_[k]});
  return Coo(cols_, rows_, std::move(t));
}

bool Coo::is_symmetric(value_t tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t k = 0; k < vals_.size(); ++k) {
    index_t i = rowind_[k], j = colind_[k];
    if (i == j) continue;
    if (!stored(j, i)) return false;
    value_t d = vals_[k] - at(j, i);
    if (d < -tol || d > tol) return false;
  }
  return true;
}

void Coo::validate() const {
  BERNOULLI_CHECK(rowind_.size() == colind_.size() &&
                  rowind_.size() == vals_.size());
  for (std::size_t k = 0; k < vals_.size(); ++k) {
    BERNOULLI_CHECK(rowind_[k] >= 0 && rowind_[k] < rows_);
    BERNOULLI_CHECK(colind_[k] >= 0 && colind_[k] < cols_);
    if (k > 0) {
      bool ordered = rowind_[k - 1] != rowind_[k]
                         ? rowind_[k - 1] < rowind_[k]
                         : colind_[k - 1] < colind_[k];
      BERNOULLI_CHECK_MSG(ordered, "entries not in canonical order at " << k);
    }
  }
}

bool operator==(const Coo& a, const Coo& b) {
  return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.rowind_ == b.rowind_ &&
         a.colind_ == b.colind_ && a.vals_ == b.vals_;
}

Coo TripletBuilder::build() && {
  return Coo(rows_, cols_, std::move(entries_));
}

void spmv(const Coo& a, ConstVectorView x, VectorView y) {
  BERNOULLI_CHECK(static_cast<index_t>(x.size()) == a.cols());
  BERNOULLI_CHECK(static_cast<index_t>(y.size()) == a.rows());
  std::fill(y.begin(), y.end(), 0.0);
  spmv_add(a, x, y);
}

void spmv_add(const Coo& a, ConstVectorView x, VectorView y) {
  auto rowind = a.rowind();
  auto colind = a.colind();
  auto vals = a.vals();
  const index_t nnz = a.nnz();
  for (index_t k = 0; k < nnz; ++k)
    y[static_cast<std::size_t>(rowind[k])] +=
        vals[k] * x[static_cast<std::size_t>(colind[k])];
}

}  // namespace bernoulli::formats
