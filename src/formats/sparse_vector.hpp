// Compressed sparse vector: sorted index list + values. The paper's
// running query (§2) has both A and X sparse; this is the storage for a
// sparse X, and its relation view enables merge joins against matrix rows.
#pragma once

#include <vector>

#include "support/types.hpp"

namespace bernoulli::formats {

class SparseVector {
 public:
  SparseVector() = default;

  /// Entries may arrive unsorted with duplicates (summed).
  SparseVector(index_t size, std::vector<std::pair<index_t, value_t>> entries);

  /// Compresses a dense vector, dropping entries with |v| <= drop_tol.
  static SparseVector from_dense(ConstVectorView x, value_t drop_tol = 0.0);

  Vector to_dense() const;

  index_t size() const { return size_; }
  index_t nnz() const { return static_cast<index_t>(vals_.size()); }

  std::span<const index_t> ind() const { return ind_; }
  std::span<const value_t> vals() const { return vals_; }

  /// Value at index i (0 when not stored). O(log nnz).
  value_t at(index_t i) const;

  void validate() const;

 private:
  index_t size_ = 0;
  std::vector<index_t> ind_;  // sorted, unique
  std::vector<value_t> vals_;
};

/// dot(a, x) for dense x — the kernel a compiled sparse dot product uses.
value_t dot(const SparseVector& a, ConstVectorView x);

/// dot(a, b) by merge join over the two sorted index lists.
value_t dot(const SparseVector& a, const SparseVector& b);

}  // namespace bernoulli::formats
