#include "formats/dia.hpp"

#include <algorithm>
#include <map>

#include "support/error.hpp"

namespace bernoulli::formats {

Dia::Dia(index_t rows, index_t cols, std::vector<index_t> offsets,
         std::vector<index_t> first, std::vector<index_t> dptr,
         std::vector<value_t> vals)
    : rows_(rows),
      cols_(cols),
      offsets_(std::move(offsets)),
      first_(std::move(first)),
      dptr_(std::move(dptr)),
      vals_(std::move(vals)) {
  validate();
}

Dia Dia::from_coo(const Coo& a) {
  // Pass 1: per-diagonal first/last stored row.
  std::map<index_t, std::pair<index_t, index_t>> extent;  // d -> (first,last)
  auto rowind = a.rowind();
  auto colind = a.colind();
  for (index_t k = 0; k < a.nnz(); ++k) {
    index_t i = rowind[static_cast<std::size_t>(k)];
    index_t d = colind[static_cast<std::size_t>(k)] - i;
    auto [it, inserted] = extent.try_emplace(d, i, i);
    if (!inserted) {
      it->second.first = std::min(it->second.first, i);
      it->second.second = std::max(it->second.second, i);
    }
  }

  std::vector<index_t> offsets, first, dptr{0};
  offsets.reserve(extent.size());
  first.reserve(extent.size());
  for (const auto& [d, fl] : extent) {
    offsets.push_back(d);
    first.push_back(fl.first);
    dptr.push_back(dptr.back() + (fl.second - fl.first + 1));
  }
  std::vector<value_t> vals(static_cast<std::size_t>(dptr.back()), 0.0);

  // Pass 2: scatter values into the skyline slots.
  for (index_t k = 0; k < a.nnz(); ++k) {
    index_t i = rowind[static_cast<std::size_t>(k)];
    index_t d = colind[static_cast<std::size_t>(k)] - i;
    auto pos = static_cast<std::size_t>(
        std::lower_bound(offsets.begin(), offsets.end(), d) - offsets.begin());
    vals[static_cast<std::size_t>(dptr[pos] + (i - first[pos]))] =
        a.vals()[static_cast<std::size_t>(k)];
  }
  return Dia(a.rows(), a.cols(), std::move(offsets), std::move(first),
             std::move(dptr), std::move(vals));
}

Coo Dia::to_coo() const {
  TripletBuilder b(rows_, cols_);
  b.reserve(vals_.size());
  for (index_t k = 0; k < num_diagonals(); ++k) {
    const index_t d = offsets_[static_cast<std::size_t>(k)];
    const index_t f = first_[static_cast<std::size_t>(k)];
    const index_t len = diag_len(k);
    for (index_t t = 0; t < len; ++t) {
      value_t v = vals_[static_cast<std::size_t>(dptr_[static_cast<std::size_t>(k)] + t)];
      // Interior zeros were introduced by the skyline layout, not by the
      // original matrix; dropping them reproduces the source entry set for
      // matrices without explicitly stored zeros.
      if (v != 0.0) b.add(f + t, f + t + d, v);
    }
  }
  return std::move(b).build();
}

value_t Dia::at(index_t i, index_t j) const {
  index_t d = j - i;
  auto it = std::lower_bound(offsets_.begin(), offsets_.end(), d);
  if (it == offsets_.end() || *it != d) return 0.0;
  auto k = static_cast<std::size_t>(it - offsets_.begin());
  index_t t = i - first_[k];
  if (t < 0 || t >= diag_len(static_cast<index_t>(k))) return 0.0;
  return vals_[static_cast<std::size_t>(dptr_[k] + t)];
}

void Dia::validate() const {
  BERNOULLI_CHECK(offsets_.size() == first_.size());
  BERNOULLI_CHECK(dptr_.size() == offsets_.size() + 1);
  BERNOULLI_CHECK(dptr_.empty() || dptr_.front() == 0);
  BERNOULLI_CHECK(dptr_.empty() ||
                  dptr_.back() == static_cast<index_t>(vals_.size()));
  for (std::size_t k = 0; k < offsets_.size(); ++k) {
    if (k > 0) BERNOULLI_CHECK(offsets_[k - 1] < offsets_[k]);
    const index_t d = offsets_[k];
    const index_t f = first_[k];
    const index_t len = dptr_[k + 1] - dptr_[k];
    BERNOULLI_CHECK(len >= 1);
    BERNOULLI_CHECK(f >= 0 && f + len - 1 < rows_);
    BERNOULLI_CHECK(f + d >= 0 && f + len - 1 + d < cols_);
  }
}

void spmv(const Dia& a, ConstVectorView x, VectorView y) {
  BERNOULLI_CHECK(static_cast<index_t>(x.size()) == a.cols());
  BERNOULLI_CHECK(static_cast<index_t>(y.size()) == a.rows());
  std::fill(y.begin(), y.end(), 0.0);
  spmv_add(a, x, y);
}

void spmv_add(const Dia& a, ConstVectorView x, VectorView y) {
  const index_t nd = a.num_diagonals();
  auto offsets = a.offsets();
  auto first = a.first();
  auto dptr = a.dptr();
  auto vals = a.vals();
  for (index_t k = 0; k < nd; ++k) {
    const index_t d = offsets[static_cast<std::size_t>(k)];
    const index_t f = first[static_cast<std::size_t>(k)];
    const index_t len = a.diag_len(k);
    const value_t* v = vals.data() + dptr[static_cast<std::size_t>(k)];
    const value_t* xs = x.data() + f + d;
    value_t* ys = y.data() + f;
    // Unit-stride streaming over the diagonal: the whole point of the
    // format for banded problems.
    for (index_t t = 0; t < len; ++t)
      ys[static_cast<std::size_t>(t)] +=
          v[static_cast<std::size_t>(t)] * xs[static_cast<std::size_t>(t)];
  }
}

}  // namespace bernoulli::formats
