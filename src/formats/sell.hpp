// Sliced ELLPACK (SELL-C-sigma) storage — an extension beyond the paper's
// format set, from the SIMD literature: rows are gathered into chunks of
// C lanes, each chunk padded only to the length of its LONGEST member
// row, and rows are pre-sorted by length (descending, stable) inside
// windows of sigma rows so chunk-mates have similar lengths and padding
// stays small. C matches the vector width; sigma trades reordering
// locality against padding (sigma = rows is JDS-like, sigma = C is
// nearly CSR order).
//
// Layout: chunk ch covers sorted positions [ch*C, (ch+1)*C); CPTR[ch] is
// its value offset; entry k of the row at sorted position p lives at
// CPTR[p/C] + k*C + p%C — lane-major, so advancing k is unit stride
// across the C lanes of a chunk. Per ORIGINAL row i, ROWBASE[i] is its
// lane's first slot and ROWLEN[i] its entry count; padding slots beyond
// ROWLEN hold column 0 / value 0.0 and are never enumerated.
#pragma once

#include <vector>

#include "formats/coo.hpp"

namespace bernoulli::formats {

class Sell {
 public:
  Sell() = default;
  Sell(index_t rows, index_t cols, index_t chunk, index_t sigma,
       std::vector<index_t> cptr, std::vector<index_t> colind,
       std::vector<value_t> vals, std::vector<index_t> rowbase,
       std::vector<index_t> rowlen);

  /// Packs any matrix; `sigma` must be a positive multiple of `chunk`.
  /// A partial last chunk stores length-0 lanes for the missing rows.
  /// Entries of each row keep their ascending-column CSR order.
  static Sell from_coo(const Coo& a, index_t chunk, index_t sigma);

  /// Padding slots are skipped on the way out (they are outside every
  /// row's ROWLEN), so any matrix round-trips exactly.
  Coo to_coo() const;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t chunk() const { return chunk_; }
  index_t sigma() const { return sigma_; }
  index_t num_chunks() const {
    return static_cast<index_t>(cptr_.size()) - 1;
  }
  index_t nnz() const { return nnz_; }
  /// Allocated slots including padding lanes.
  index_t stored() const { return static_cast<index_t>(vals_.size()); }

  std::span<const index_t> cptr() const { return cptr_; }
  std::span<const index_t> colind() const { return colind_; }
  std::span<const value_t> vals() const { return vals_; }
  std::span<const index_t> rowbase() const { return rowbase_; }
  std::span<const index_t> rowlen() const { return rowlen_; }

  value_t at(index_t i, index_t j) const;
  void validate() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t chunk_ = 1;
  index_t sigma_ = 1;
  index_t nnz_ = 0;
  std::vector<index_t> cptr_;     // num_chunks()+1 value offsets
  std::vector<index_t> colind_;   // lane-major slots, padding = 0
  std::vector<value_t> vals_;     // same shape, padding = 0.0
  std::vector<index_t> rowbase_;  // per ORIGINAL row: first slot
  std::vector<index_t> rowlen_;   // per ORIGINAL row: entry count
};

void spmv(const Sell& a, ConstVectorView x, VectorView y);
void spmv_add(const Sell& a, ConstVectorView x, VectorView y);

}  // namespace bernoulli::formats
