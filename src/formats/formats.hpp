// Umbrella header for all sparse formats plus a type-erased AnyFormat used
// by benchmarks and parameterized tests to sweep format x matrix grids.
#pragma once

#include <string>
#include <variant>

#include "formats/bsr.hpp"
#include "formats/ccs.hpp"
#include "formats/coo.hpp"
#include "formats/csr.hpp"
#include "formats/dense.hpp"
#include "formats/dia.hpp"
#include "formats/ell.hpp"
#include "formats/jds.hpp"
#include "formats/sell.hpp"

namespace bernoulli::formats {

enum class Kind {
  kDense,
  kCoo,
  kCsr,
  kCcs,
  kCccs,
  kDia,
  kEll,
  kJds,
  kBsr,
  kSell,
};

/// Short human-readable name matching the paper's Table 1 column headers
/// where applicable.
std::string kind_name(Kind k);

/// All sparse kinds (excludes Dense), in Table 1 column order where the
/// paper lists them.
std::span<const Kind> sparse_kinds();

class AnyFormat {
 public:
  /// Converts a canonical COO matrix into the requested format.
  AnyFormat(Kind kind, const Coo& a);

  Kind kind() const { return kind_; }
  index_t rows() const;
  index_t cols() const;

  /// Lowers back to canonical COO (identity round-trip for every kind).
  Coo to_coo() const;

  value_t at(index_t i, index_t j) const;

  /// y = A * x through the format's tuned kernel.
  void spmv(ConstVectorView x, VectorView y) const;

  /// y += A * x
  void spmv_add(ConstVectorView x, VectorView y) const;

  /// Bytes of storage the format occupies (index + value arrays), used by
  /// the format-comparison benches.
  std::size_t storage_bytes() const;

 private:
  Kind kind_;
  std::variant<Dense, Coo, Csr, Ccs, Cccs, Dia, Ell, Jds, Bsr, Sell> m_;
};

}  // namespace bernoulli::formats
