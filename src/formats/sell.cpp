#include "formats/sell.hpp"

#include <algorithm>
#include <numeric>

#include "support/error.hpp"

namespace bernoulli::formats {

Sell::Sell(index_t rows, index_t cols, index_t chunk, index_t sigma,
           std::vector<index_t> cptr, std::vector<index_t> colind,
           std::vector<value_t> vals, std::vector<index_t> rowbase,
           std::vector<index_t> rowlen)
    : rows_(rows),
      cols_(cols),
      chunk_(chunk),
      sigma_(sigma),
      cptr_(std::move(cptr)),
      colind_(std::move(colind)),
      vals_(std::move(vals)),
      rowbase_(std::move(rowbase)),
      rowlen_(std::move(rowlen)) {
  nnz_ = static_cast<index_t>(
      std::accumulate(rowlen_.begin(), rowlen_.end(), index_t{0}));
  validate();
}

Sell Sell::from_coo(const Coo& a, index_t chunk, index_t sigma) {
  BERNOULLI_CHECK(chunk >= 1);
  BERNOULLI_CHECK_MSG(sigma >= chunk && sigma % chunk == 0,
                      "sigma " << sigma << " must be a positive multiple of "
                               << "the chunk size " << chunk);
  const index_t rows = a.rows();
  auto rowind = a.rowind();
  auto colind = a.colind();
  auto avals = a.vals();

  // Bucket entries per row, preserving the COO's ascending-column order
  // within each row.
  std::vector<std::vector<std::pair<index_t, value_t>>> by_row(
      static_cast<std::size_t>(rows));
  for (index_t k = 0; k < a.nnz(); ++k)
    by_row[static_cast<std::size_t>(rowind[k])].emplace_back(
        colind[k], avals[static_cast<std::size_t>(k)]);

  // Sorted position -> original row: length-descending (stable) inside
  // each sigma-row window.
  std::vector<index_t> order(static_cast<std::size_t>(rows));
  std::iota(order.begin(), order.end(), index_t{0});
  for (index_t w = 0; w < rows; w += sigma) {
    auto begin = order.begin() + w;
    auto end = order.begin() + std::min<index_t>(w + sigma, rows);
    std::stable_sort(begin, end, [&](index_t x, index_t y) {
      return by_row[static_cast<std::size_t>(x)].size() >
             by_row[static_cast<std::size_t>(y)].size();
    });
  }

  // Chunk offsets: each chunk is padded to its longest member row. A
  // partial last chunk still reserves `chunk` lanes (missing lanes have
  // length 0 and are never enumerated).
  const index_t nchunks = rows == 0 ? 0 : (rows + chunk - 1) / chunk;
  std::vector<index_t> cptr{0};
  for (index_t ch = 0; ch < nchunks; ++ch) {
    index_t maxlen = 0;
    const index_t pend = std::min<index_t>((ch + 1) * chunk, rows);
    for (index_t p = ch * chunk; p < pend; ++p)
      maxlen = std::max<index_t>(
          maxlen, static_cast<index_t>(
                      by_row[static_cast<std::size_t>(order
                                                          [static_cast<
                                                              std::size_t>(p)])]
                          .size()));
    cptr.push_back(cptr.back() + maxlen * chunk);
  }

  std::vector<index_t> cind(static_cast<std::size_t>(cptr.back()), 0);
  std::vector<value_t> vals(static_cast<std::size_t>(cptr.back()), 0.0);
  std::vector<index_t> rowbase(static_cast<std::size_t>(rows), 0);
  std::vector<index_t> rowlen(static_cast<std::size_t>(rows), 0);
  for (index_t p = 0; p < rows; ++p) {
    const index_t i = order[static_cast<std::size_t>(p)];
    const index_t base = cptr[static_cast<std::size_t>(p / chunk)] + p % chunk;
    const auto& row = by_row[static_cast<std::size_t>(i)];
    rowbase[static_cast<std::size_t>(i)] = base;
    rowlen[static_cast<std::size_t>(i)] = static_cast<index_t>(row.size());
    for (index_t k = 0; k < static_cast<index_t>(row.size()); ++k) {
      const auto slot = static_cast<std::size_t>(base + k * chunk);
      cind[slot] = row[static_cast<std::size_t>(k)].first;
      vals[slot] = row[static_cast<std::size_t>(k)].second;
    }
  }
  return Sell(rows, a.cols(), chunk, sigma, std::move(cptr), std::move(cind),
              std::move(vals), std::move(rowbase), std::move(rowlen));
}

Coo Sell::to_coo() const {
  TripletBuilder b(rows_, cols_);
  for (index_t i = 0; i < rows_; ++i) {
    const index_t base = rowbase_[static_cast<std::size_t>(i)];
    const index_t len = rowlen_[static_cast<std::size_t>(i)];
    for (index_t k = 0; k < len; ++k) {
      const auto slot = static_cast<std::size_t>(base + k * chunk_);
      b.add(i, colind_[slot], vals_[slot]);
    }
  }
  return std::move(b).build();
}

value_t Sell::at(index_t i, index_t j) const {
  const index_t base = rowbase_[static_cast<std::size_t>(i)];
  const index_t len = rowlen_[static_cast<std::size_t>(i)];
  for (index_t k = 0; k < len; ++k) {
    const auto slot = static_cast<std::size_t>(base + k * chunk_);
    if (colind_[slot] == j) return vals_[slot];
  }
  return 0.0;
}

void Sell::validate() const {
  BERNOULLI_CHECK(chunk_ >= 1);
  BERNOULLI_CHECK(sigma_ >= chunk_ && sigma_ % chunk_ == 0);
  BERNOULLI_CHECK(rowbase_.size() == static_cast<std::size_t>(rows_));
  BERNOULLI_CHECK(rowlen_.size() == static_cast<std::size_t>(rows_));
  BERNOULLI_CHECK(!cptr_.empty() && cptr_.front() == 0);
  BERNOULLI_CHECK(cptr_.back() == static_cast<index_t>(colind_.size()));
  BERNOULLI_CHECK(vals_.size() == colind_.size());
  const index_t nchunks = num_chunks();
  BERNOULLI_CHECK(nchunks == (rows_ == 0 ? 0 : (rows_ + chunk_ - 1) / chunk_));
  for (index_t ch = 0; ch < nchunks; ++ch) {
    const index_t width =
        cptr_[static_cast<std::size_t>(ch) + 1] -
        cptr_[static_cast<std::size_t>(ch)];
    BERNOULLI_CHECK(width >= 0 && width % chunk_ == 0);
  }
  for (index_t i = 0; i < rows_; ++i) {
    const index_t base = rowbase_[static_cast<std::size_t>(i)];
    const index_t len = rowlen_[static_cast<std::size_t>(i)];
    BERNOULLI_CHECK(len >= 0);
    if (len == 0) continue;
    BERNOULLI_CHECK(base >= 0);
    // The row's last slot must stay inside the value array.
    BERNOULLI_CHECK(base + (len - 1) * chunk_ <
                    static_cast<index_t>(colind_.size()));
    for (index_t k = 0; k < len; ++k) {
      const index_t j =
          colind_[static_cast<std::size_t>(base + k * chunk_)];
      BERNOULLI_CHECK(j >= 0 && j < cols_);
    }
  }
}

void spmv(const Sell& a, ConstVectorView x, VectorView y) {
  BERNOULLI_CHECK(static_cast<index_t>(x.size()) == a.cols());
  BERNOULLI_CHECK(static_cast<index_t>(y.size()) == a.rows());
  std::fill(y.begin(), y.end(), 0.0);
  spmv_add(a, x, y);
}

void spmv_add(const Sell& a, ConstVectorView x, VectorView y) {
  const index_t chunk = a.chunk();
  auto rowbase = a.rowbase();
  auto rowlen = a.rowlen();
  auto colind = a.colind();
  auto vals = a.vals();
  // Per ORIGINAL row, ascending k: the FP sum order matches CSR exactly,
  // so results are bitwise-identical to the CSR kernel.
  for (index_t i = 0; i < a.rows(); ++i) {
    const index_t base = rowbase[static_cast<std::size_t>(i)];
    const index_t len = rowlen[static_cast<std::size_t>(i)];
    value_t sum = 0.0;
    for (index_t k = 0; k < len; ++k) {
      const auto slot = static_cast<std::size_t>(base + k * chunk);
      sum += vals[slot] * x[static_cast<std::size_t>(colind[slot])];
    }
    y[static_cast<std::size_t>(i)] += sum;
  }
}

}  // namespace bernoulli::formats
