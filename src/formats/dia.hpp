// Diagonal format (the paper's "Diagonal", Appendix A): a variant of banded
// storage that keeps an arbitrary set of diagonals, and for each diagonal
// stores only the entries between the first and last non-zero — i.e.
// Skyline storage re-oriented along the diagonals.
//
// A diagonal is identified by its offset d = j - i. For each stored
// diagonal k we keep:
//   offset_[k]  — the offset d,
//   first_[k]   — smallest row index i with a stored entry on the diagonal,
//   dptr_[k]    — start of the diagonal's values in vals_ (dptr_ has one
//                 extra trailing entry, like a row pointer).
// vals_ holds, contiguously, positions first_[k] .. last (inclusive) of
// each diagonal, including any interior zeros (they are stored entries).
#pragma once

#include <vector>

#include "formats/coo.hpp"
#include "support/types.hpp"

namespace bernoulli::formats {

class Dia {
 public:
  Dia() = default;
  Dia(index_t rows, index_t cols, std::vector<index_t> offsets,
      std::vector<index_t> first, std::vector<index_t> dptr,
      std::vector<value_t> vals);

  static Dia from_coo(const Coo& a);
  Coo to_coo() const;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }

  /// Number of stored positions (including interior zeros on a diagonal).
  index_t stored() const { return static_cast<index_t>(vals_.size()); }
  index_t num_diagonals() const { return static_cast<index_t>(offsets_.size()); }

  std::span<const index_t> offsets() const { return offsets_; }
  std::span<const index_t> first() const { return first_; }
  std::span<const index_t> dptr() const { return dptr_; }
  std::span<const value_t> vals() const { return vals_; }

  /// Length (number of stored positions) of diagonal k.
  index_t diag_len(index_t k) const {
    return dptr_[static_cast<std::size_t>(k) + 1] -
           dptr_[static_cast<std::size_t>(k)];
  }

  value_t at(index_t i, index_t j) const;
  void validate() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> offsets_;  // sorted ascending, unique
  std::vector<index_t> first_;    // first stored row per diagonal
  std::vector<index_t> dptr_;     // size num_diagonals+1
  std::vector<value_t> vals_;
};

void spmv(const Dia& a, ConstVectorView x, VectorView y);
void spmv_add(const Dia& a, ConstVectorView x, VectorView y);

}  // namespace bernoulli::formats
