// Computes the BlockSolve ordering for a matrix: node graph -> clique
// partition -> contracted-graph coloring -> color-major layout. This is
// the preprocessing the BlockSolve library performs before storing a
// matrix (paper Fig. 2).
#pragma once

#include "formats/blocksolve.hpp"

namespace bernoulli::workloads {

/// `dof` unknowns per discretization point (5 in the paper's experiments);
/// `max_clique` caps the greedy clique size in *nodes*.
formats::BsOrdering blocksolve_ordering(const formats::Coo& a, index_t dof,
                                        index_t max_clique = 8);

}  // namespace bernoulli::workloads
