#include "workloads/bs_order.hpp"

#include <algorithm>
#include <numeric>

#include "support/error.hpp"
#include "workloads/cliques.hpp"
#include "workloads/coloring.hpp"

namespace bernoulli::workloads {

formats::BsOrdering blocksolve_ordering(const formats::Coo& a, index_t dof,
                                        index_t max_clique) {
  NodeGraph g = node_graph_from_matrix(a, dof);
  auto cliques = clique_partition(g, max_clique);
  CliqueColoring coloring = color_cliques(g, cliques);

  // Layout: cliques sorted by (color, first node); nodes keep their clique
  // order; each node contributes its dof consecutive unknowns.
  std::vector<index_t> order(cliques.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](index_t x, index_t y) {
    return coloring.color[static_cast<std::size_t>(x)] <
           coloring.color[static_cast<std::size_t>(y)];
  });

  formats::BsOrdering ord;
  ord.dof = dof;
  ord.num_colors = coloring.num_colors;
  const index_t n = a.rows();
  ord.old_to_new.assign(static_cast<std::size_t>(n), -1);
  ord.new_to_old.assign(static_cast<std::size_t>(n), -1);
  ord.color_ptr.assign(static_cast<std::size_t>(ord.num_colors) + 1, 0);

  index_t next = 0;
  for (index_t c : order) {
    const auto& clique = cliques[static_cast<std::size_t>(c)];
    formats::BsOrdering::CliqueRange range;
    range.first = next;
    range.size = static_cast<index_t>(clique.size()) * dof;
    range.color = coloring.color[static_cast<std::size_t>(c)];
    for (index_t node : clique) {
      for (index_t d = 0; d < dof; ++d) {
        index_t old = node * dof + d;
        ord.old_to_new[static_cast<std::size_t>(old)] = next;
        ord.new_to_old[static_cast<std::size_t>(next)] = old;
        ++next;
      }
    }
    ord.cliques.push_back(range);
    ord.color_ptr[static_cast<std::size_t>(range.color) + 1] = next;
  }
  BERNOULLI_CHECK(next == n);
  // Colors with no cliques (impossible with first-fit, but keep the
  // prefix-fill robust): carry forward boundaries.
  for (std::size_t c = 1; c < ord.color_ptr.size(); ++c)
    ord.color_ptr[c] = std::max(ord.color_ptr[c], ord.color_ptr[c - 1]);
  ord.validate();
  return ord;
}

}  // namespace bernoulli::workloads
