#include "workloads/grid.hpp"

#include <cmath>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace bernoulli::workloads {

namespace {

// Builds the matrix of a point graph with `dof` unknowns per point:
// every undirected point edge (p, q) becomes a dense dof x dof coupling
// block placed symmetrically (B at (p,q), B^T at (q,p)); every point gets a
// dense dof x dof diagonal block made diagonally dominant after all
// couplings are known.
GridMatrix assemble(index_t num_points,
                    const std::vector<std::pair<index_t, index_t>>& edges,
                    index_t dof, std::uint64_t seed) {
  BERNOULLI_CHECK(dof >= 1);
  SplitMix64 rng(seed);
  const index_t n = num_points * dof;
  formats::TripletBuilder b(n, n);

  std::vector<value_t> rowsum(static_cast<std::size_t>(n), 0.0);
  std::vector<value_t> block(static_cast<std::size_t>(dof) *
                             static_cast<std::size_t>(dof));
  for (auto [p, q] : edges) {
    for (auto& v : block) v = rng.next_double(-1.0, 0.0);  // negative couplings
    for (index_t r = 0; r < dof; ++r) {
      for (index_t c = 0; c < dof; ++c) {
        value_t v = block[static_cast<std::size_t>(r) *
                              static_cast<std::size_t>(dof) +
                          static_cast<std::size_t>(c)];
        index_t i = p * dof + r, j = q * dof + c;
        b.add(i, j, v);
        b.add(j, i, v);
        rowsum[static_cast<std::size_t>(i)] += std::abs(v);
        rowsum[static_cast<std::size_t>(j)] += std::abs(v);
      }
    }
  }

  // Dense symmetric diagonal block per point; its own off-diagonal entries
  // also count toward dominance.
  for (index_t p = 0; p < num_points; ++p) {
    for (index_t r = 0; r < dof; ++r) {
      for (index_t c = r + 1; c < dof; ++c) {
        value_t v = rng.next_double(-0.5, 0.0);
        index_t i = p * dof + r, j = p * dof + c;
        b.add(i, j, v);
        b.add(j, i, v);
        rowsum[static_cast<std::size_t>(i)] += std::abs(v);
        rowsum[static_cast<std::size_t>(j)] += std::abs(v);
      }
    }
    for (index_t r = 0; r < dof; ++r) {
      index_t i = p * dof + r;
      b.add(i, i, rowsum[static_cast<std::size_t>(i)] + 1.0);
    }
  }

  GridMatrix out{std::move(b).build(), {num_points, dof, n}};
  return out;
}

}  // namespace

GridMatrix grid2d_5pt(index_t nx, index_t ny, index_t dof, std::uint64_t seed) {
  BERNOULLI_CHECK(nx >= 1 && ny >= 1);
  auto id = [&](index_t x, index_t y) { return x * ny + y; };
  std::vector<std::pair<index_t, index_t>> edges;
  for (index_t x = 0; x < nx; ++x) {
    for (index_t y = 0; y < ny; ++y) {
      if (x + 1 < nx) edges.emplace_back(id(x, y), id(x + 1, y));
      if (y + 1 < ny) edges.emplace_back(id(x, y), id(x, y + 1));
    }
  }
  return assemble(nx * ny, edges, dof, seed);
}

GridMatrix grid2d_9pt(index_t nx, index_t ny, index_t dof, std::uint64_t seed) {
  BERNOULLI_CHECK(nx >= 1 && ny >= 1);
  auto id = [&](index_t x, index_t y) { return x * ny + y; };
  std::vector<std::pair<index_t, index_t>> edges;
  for (index_t x = 0; x < nx; ++x) {
    for (index_t y = 0; y < ny; ++y) {
      if (x + 1 < nx) edges.emplace_back(id(x, y), id(x + 1, y));
      if (y + 1 < ny) edges.emplace_back(id(x, y), id(x, y + 1));
      if (x + 1 < nx && y + 1 < ny)
        edges.emplace_back(id(x, y), id(x + 1, y + 1));
      if (x + 1 < nx && y > 0) edges.emplace_back(id(x, y), id(x + 1, y - 1));
    }
  }
  return assemble(nx * ny, edges, dof, seed);
}

GridMatrix grid3d_7pt(index_t nx, index_t ny, index_t nz, index_t dof,
                      std::uint64_t seed) {
  BERNOULLI_CHECK(nx >= 1 && ny >= 1 && nz >= 1);
  auto id = [&](index_t x, index_t y, index_t z) {
    return (x * ny + y) * nz + z;
  };
  std::vector<std::pair<index_t, index_t>> edges;
  for (index_t x = 0; x < nx; ++x) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t z = 0; z < nz; ++z) {
        if (x + 1 < nx) edges.emplace_back(id(x, y, z), id(x + 1, y, z));
        if (y + 1 < ny) edges.emplace_back(id(x, y, z), id(x, y + 1, z));
        if (z + 1 < nz) edges.emplace_back(id(x, y, z), id(x, y, z + 1));
      }
    }
  }
  return assemble(nx * ny * nz, edges, dof, seed);
}

}  // namespace bernoulli::workloads
