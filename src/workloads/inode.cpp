#include "workloads/inode.hpp"

#include <functional>

#include "support/error.hpp"

namespace bernoulli::workloads {

namespace {

// Column structure of row i with a column filter applied.
std::vector<index_t> filtered_cols(const formats::Csr& a, index_t i,
                                   const std::function<bool(index_t)>& keep) {
  std::vector<index_t> out;
  for (index_t c : a.row_cols(i))
    if (keep(c)) out.push_back(c);
  return out;
}

}  // namespace

std::vector<Inode> find_inodes(const formats::Csr& a) {
  return find_inodes_filtered(a, 0, a.rows(), [](index_t) { return true; });
}

std::vector<Inode> find_inodes_filtered(
    const formats::Csr& a, index_t first, index_t count,
    const std::function<bool(index_t)>& keep_col) {
  BERNOULLI_CHECK(first >= 0 && count >= 0 && first + count <= a.rows());
  std::vector<Inode> out;
  index_t i = first;
  while (i < first + count) {
    std::vector<index_t> sig = filtered_cols(a, i, keep_col);
    index_t j = i + 1;
    while (j < first + count && filtered_cols(a, j, keep_col) == sig) ++j;
    out.push_back({i, j - i});
    i = j;
  }
  return out;
}

}  // namespace bernoulli::workloads
