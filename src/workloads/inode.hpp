// I-node ("identical node") detection — BlockSolve's key structural
// compression (paper Fig. 2(c)): maximal groups of consecutive rows with
// identical column structure, whose values can then be stored as one dense
// (rows x cols) block.
#pragma once

#include <functional>
#include <vector>

#include "formats/csr.hpp"

namespace bernoulli::workloads {

struct Inode {
  index_t first_row = 0;
  index_t num_rows = 0;
};

/// Partitions rows 0..rows-1 into maximal runs of consecutive rows with
/// identical column structure.
std::vector<Inode> find_inodes(const formats::Csr& a);

/// Same, but restricted to the sub-range [first, first+count) of rows and
/// comparing only columns for which `keep_col` returns true (used to group
/// off-diagonal structure while ignoring the clique-diagonal columns).
std::vector<Inode> find_inodes_filtered(
    const formats::Csr& a, index_t first, index_t count,
    const std::function<bool(index_t)>& keep_col);

}  // namespace bernoulli::workloads
