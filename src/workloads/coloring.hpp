// Coloring of the contracted clique graph (paper Fig. 2(b)).
//
// BlockSolve contracts each clique to a vertex, colors the contracted
// graph, and orders the matrix color-by-color: within one color no two
// cliques are adjacent, so their updates are independent — the basis for
// both the parallel partition and the communication structure.
#pragma once

#include <vector>

#include "workloads/cliques.hpp"

namespace bernoulli::workloads {

struct CliqueColoring {
  // Color of each clique (indexed like the `cliques` argument).
  std::vector<index_t> color;
  index_t num_colors = 0;
};

/// Greedy (first-fit) coloring of the contracted graph: cliques c1, c2 are
/// adjacent when any node of c1 is adjacent to any node of c2.
CliqueColoring color_cliques(const NodeGraph& g,
                             const std::vector<std::vector<index_t>>& cliques);

/// Throws unless the coloring is proper on the contracted graph.
void check_coloring(const NodeGraph& g,
                    const std::vector<std::vector<index_t>>& cliques,
                    const CliqueColoring& coloring);

}  // namespace bernoulli::workloads
