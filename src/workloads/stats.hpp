// Matrix structure profiling and format recommendation.
//
// Table 1's lesson is that the best storage format is a function of the
// matrix's STRUCTURE: bandedness favors Diagonal, uniform row lengths
// favor ITPACK, skewed row lengths favor JDiag, dense dof-blocks favor
// block formats. This module measures exactly those structural signals
// and turns them into a recommendation — the human judgment the paper's
// Table 1 encodes, as a reusable heuristic.
#pragma once

#include <string>

#include "formats/coo.hpp"
#include "formats/formats.hpp"

namespace bernoulli::workloads {

struct MatrixProfile {
  index_t rows = 0;
  index_t cols = 0;
  index_t nnz = 0;

  double avg_row = 0.0;
  index_t max_row = 0;
  double row_cv = 0.0;  // coefficient of variation of row lengths

  index_t num_diagonals = 0;   // distinct offsets j - i
  double diagonal_fill = 0.0;  // nnz / (skyline slots the Diagonal format
                               // would store); 1.0 = perfectly banded

  index_t dof_block = 1;  // largest b with a perfect b x b block structure
                          // (bounded search, see detect_dof_block)
  bool structurally_symmetric = false;
};

MatrixProfile profile_matrix(const formats::Coo& a);

/// Largest block size in `candidates` for which every stored entry lies in
/// a fully-alignable b x b block grid AND the average stored block is at
/// least 85% full (true dof couplings are dense blocks). Returns 1 when none qualifies.
index_t detect_dof_block(const formats::Coo& a,
                         std::span<const index_t> candidates);

struct Recommendation {
  formats::Kind kind = formats::Kind::kCsr;
  std::string reason;
};

/// Table-1-informed heuristic:
///   diagonal_fill high          -> Diagonal
///   row_cv tiny                 -> ITPACK
///   row_cv large                -> JDiag
///   otherwise                   -> CRS
/// (Block formats are reported through profile.dof_block; AnyFormat has no
/// parameterized kinds, so the recommendation sticks to Table 1's
/// columns.)
Recommendation recommend_format(const MatrixProfile& p);

}  // namespace bernoulli::workloads
