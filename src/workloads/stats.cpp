#include "workloads/stats.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "support/error.hpp"

namespace bernoulli::workloads {

using formats::Coo;

MatrixProfile profile_matrix(const Coo& a) {
  MatrixProfile p;
  p.rows = a.rows();
  p.cols = a.cols();
  p.nnz = a.nnz();
  if (a.rows() == 0) return p;

  auto len = a.row_lengths();
  p.avg_row = static_cast<double>(a.nnz()) / static_cast<double>(a.rows());
  p.max_row = *std::max_element(len.begin(), len.end());
  double var = 0.0;
  for (index_t l : len) {
    double d = static_cast<double>(l) - p.avg_row;
    var += d * d;
  }
  var /= static_cast<double>(a.rows());
  p.row_cv = p.avg_row > 0 ? std::sqrt(var) / p.avg_row : 0.0;

  // Diagonal skyline accounting: slots = sum over offsets of
  // (last - first + 1).
  std::map<index_t, std::pair<index_t, index_t>> extent;
  auto rowind = a.rowind();
  auto colind = a.colind();
  for (index_t k = 0; k < a.nnz(); ++k) {
    index_t i = rowind[k];
    index_t d = colind[k] - i;
    auto [it, inserted] = extent.try_emplace(d, i, i);
    if (!inserted) {
      it->second.first = std::min(it->second.first, i);
      it->second.second = std::max(it->second.second, i);
    }
  }
  p.num_diagonals = static_cast<index_t>(extent.size());
  long long slots = 0;
  for (const auto& [d, fl] : extent) slots += fl.second - fl.first + 1;
  p.diagonal_fill =
      slots > 0 ? static_cast<double>(a.nnz()) / static_cast<double>(slots)
                : 0.0;

  static constexpr index_t kCandidates[] = {8, 6, 5, 4, 3, 2};
  p.dof_block = detect_dof_block(a, kCandidates);
  p.structurally_symmetric =
      a.rows() == a.cols() && [&] {
        for (index_t k = 0; k < a.nnz(); ++k)
          if (!a.stored(colind[k], rowind[k])) return false;
        return true;
      }();
  return p;
}

index_t detect_dof_block(const Coo& a, std::span<const index_t> candidates) {
  auto rowind = a.rowind();
  auto colind = a.colind();
  for (index_t b : candidates) {
    if (b <= 1 || a.rows() % b != 0 || a.cols() % b != 0) continue;
    // Count distinct stored blocks; require near-dense blocks (>= 85% fill)
    // — true dof couplings are fully dense, while accidental block
    // alignment of scalar stencils plateaus near half fill.
    std::map<std::pair<index_t, index_t>, index_t> blocks;
    for (index_t k = 0; k < a.nnz(); ++k)
      ++blocks[{rowind[k] / b, colind[k] / b}];
    if (blocks.empty()) continue;
    double fill = static_cast<double>(a.nnz()) /
                  (static_cast<double>(blocks.size()) * b * b);
    if (fill >= 0.85) return b;
  }
  return 1;
}

Recommendation recommend_format(const MatrixProfile& p) {
  if (p.diagonal_fill >= 0.6 && p.num_diagonals <= 64) {
    return {formats::Kind::kDia,
            "banded: " + std::to_string(p.num_diagonals) +
                " diagonals with high skyline fill"};
  }
  if (p.row_cv <= 0.25) {
    return {formats::Kind::kEll,
            "uniform row lengths (cv <= 0.25): padding is cheap and the "
            "kernel streams"};
  }
  if (p.row_cv >= 1.0 ||
      (p.avg_row > 0 && static_cast<double>(p.max_row) > 8 * p.avg_row)) {
    return {formats::Kind::kJds,
            "skewed row lengths: jagged diagonals avoid ITPACK padding"};
  }
  return {formats::Kind::kCsr, "irregular general sparsity: CRS default"};
}

}  // namespace bernoulli::workloads
