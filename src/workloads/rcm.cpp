#include "workloads/rcm.hpp"

#include <algorithm>
#include <deque>

#include "formats/csr.hpp"
#include "support/error.hpp"

namespace bernoulli::workloads {

using formats::Coo;
using formats::Csr;

namespace {

// BFS from `start` over the symmetrized structure; returns visit order and
// (via out param) the index of the last level's smallest-degree vertex —
// the pseudo-peripheral heuristic's next candidate.
std::vector<index_t> bfs_levels(const Csr& g, index_t start,
                                std::span<const index_t> degree,
                                const std::vector<bool>& done,
                                index_t* last_level_min_degree) {
  std::vector<index_t> order;
  std::vector<bool> seen(static_cast<std::size_t>(g.rows()), false);
  seen[static_cast<std::size_t>(start)] = true;
  std::vector<index_t> level{start};
  std::vector<index_t> next;
  while (!level.empty()) {
    // Cuthill-McKee visits each level's vertices in increasing degree.
    std::sort(level.begin(), level.end(), [&](index_t a, index_t b) {
      return degree[static_cast<std::size_t>(a)] !=
                     degree[static_cast<std::size_t>(b)]
                 ? degree[static_cast<std::size_t>(a)] <
                       degree[static_cast<std::size_t>(b)]
                 : a < b;
    });
    next.clear();
    for (index_t v : level) {
      order.push_back(v);
      for (index_t u : g.row_cols(v)) {
        if (u == v || seen[static_cast<std::size_t>(u)] ||
            done[static_cast<std::size_t>(u)])
          continue;
        seen[static_cast<std::size_t>(u)] = true;
        next.push_back(u);
      }
    }
    if (next.empty()) break;
    level = next;
  }
  if (last_level_min_degree) {
    index_t best = order.back();
    // `level` holds the final non-empty level.
    for (index_t v : level)
      if (degree[static_cast<std::size_t>(v)] <
          degree[static_cast<std::size_t>(best)])
        best = v;
    *last_level_min_degree = best;
  }
  return order;
}

}  // namespace

std::vector<index_t> rcm_ordering(const Coo& a) {
  BERNOULLI_CHECK(a.rows() == a.cols());
  const index_t n = a.rows();
  // Symmetrize the structure so BFS sees an undirected graph.
  std::vector<Triplet> sym;
  sym.reserve(static_cast<std::size_t>(a.nnz()) * 2);
  auto rowind = a.rowind();
  auto colind = a.colind();
  for (index_t k = 0; k < a.nnz(); ++k) {
    sym.push_back({rowind[k], colind[k], 1.0});
    sym.push_back({colind[k], rowind[k], 1.0});
  }
  Csr g = Csr::from_coo(Coo(n, n, std::move(sym)));

  std::vector<index_t> degree(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    degree[static_cast<std::size_t>(i)] =
        static_cast<index_t>(g.row_cols(i).size());

  std::vector<bool> done(static_cast<std::size_t>(n), false);
  std::vector<index_t> cm;
  cm.reserve(static_cast<std::size_t>(n));
  for (index_t seed = 0; seed < n; ++seed) {
    if (done[static_cast<std::size_t>(seed)]) continue;
    // Pseudo-peripheral start: a few BFS bounces toward an eccentric,
    // low-degree vertex.
    index_t start = seed;
    for (int bounce = 0; bounce < 3; ++bounce) {
      index_t far = start;
      (void)bfs_levels(g, start, degree, done, &far);
      if (far == start) break;
      start = far;
    }
    auto component = bfs_levels(g, start, degree, done, nullptr);
    for (index_t v : component) {
      done[static_cast<std::size_t>(v)] = true;
      cm.push_back(v);
    }
  }
  BERNOULLI_CHECK(static_cast<index_t>(cm.size()) == n);
  std::reverse(cm.begin(), cm.end());  // the "reverse" in RCM
  return cm;
}

Coo permute_symmetric(const Coo& a, std::span<const index_t> new_to_old) {
  BERNOULLI_CHECK(a.rows() == a.cols());
  const index_t n = a.rows();
  BERNOULLI_CHECK(static_cast<index_t>(new_to_old.size()) == n);
  std::vector<index_t> old_to_new(static_cast<std::size_t>(n), -1);
  for (index_t k = 0; k < n; ++k) {
    index_t o = new_to_old[static_cast<std::size_t>(k)];
    BERNOULLI_CHECK(o >= 0 && o < n);
    BERNOULLI_CHECK_MSG(old_to_new[static_cast<std::size_t>(o)] == -1,
                        "not a permutation");
    old_to_new[static_cast<std::size_t>(o)] = k;
  }
  std::vector<Triplet> out;
  out.reserve(static_cast<std::size_t>(a.nnz()));
  auto rowind = a.rowind();
  auto colind = a.colind();
  auto vals = a.vals();
  for (index_t k = 0; k < a.nnz(); ++k)
    out.push_back({old_to_new[static_cast<std::size_t>(rowind[k])],
                   old_to_new[static_cast<std::size_t>(colind[k])], vals[k]});
  return Coo(n, n, std::move(out));
}

index_t bandwidth(const Coo& a) {
  index_t bw = 0;
  auto rowind = a.rowind();
  auto colind = a.colind();
  for (index_t k = 0; k < a.nnz(); ++k)
    bw = std::max(bw, std::abs(rowind[k] - colind[k]));
  return bw;
}

}  // namespace bernoulli::workloads
