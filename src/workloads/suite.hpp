// Synthetic structural analogues of the paper's Table-1 matrix suite.
//
// The original matrices come from the PETSc example set and the Matrix
// Market (Appendix A); neither is redistributable offline, so each entry
// here generates a matrix with matching *structural* parameters —
// dimension, nnz density, bandedness, row-length distribution, block
// structure — which are what drive the per-format SpMV behaviour Table 1
// demonstrates. See DESIGN.md §3 for the per-matrix mapping.
#pragma once

#include <string>
#include <vector>

#include "formats/coo.hpp"

namespace bernoulli::workloads {

struct SuiteMatrix {
  std::string name;        // Table-1 row label
  std::string provenance;  // what the original is / what we generate
  formats::Coo matrix;
  index_t dof = 1;         // unknowns per node (for BlockSolve conversion)
};

/// One matrix by name: small, medium, cfd.1.10, 685_bus, bcsstm27,
/// gr_30_30, memplus, sherman1. Throws on unknown names.
SuiteMatrix suite_matrix(const std::string& name);

/// All eight matrices, in the paper's Table-1 row order.
std::vector<SuiteMatrix> table1_suite();

/// The eight Table-1 names in row order.
std::vector<std::string> table1_names();

}  // namespace bernoulli::workloads
