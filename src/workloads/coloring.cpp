#include "workloads/coloring.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace bernoulli::workloads {

namespace {

// Contracted-graph adjacency: for each clique, the sorted set of adjacent
// cliques.
std::vector<std::vector<index_t>> contracted_adj(
    const NodeGraph& g, const std::vector<std::vector<index_t>>& cliques) {
  std::vector<index_t> clique_of(static_cast<std::size_t>(g.num_nodes), -1);
  for (std::size_t c = 0; c < cliques.size(); ++c)
    for (index_t v : cliques[c])
      clique_of[static_cast<std::size_t>(v)] = static_cast<index_t>(c);

  std::vector<std::vector<index_t>> adj(cliques.size());
  for (index_t v = 0; v < g.num_nodes; ++v) {
    index_t cv = clique_of[static_cast<std::size_t>(v)];
    BERNOULLI_CHECK_MSG(cv >= 0, "node " << v << " not covered by cliques");
    for (index_t u : g.adj[static_cast<std::size_t>(v)]) {
      index_t cu = clique_of[static_cast<std::size_t>(u)];
      if (cu != cv) adj[static_cast<std::size_t>(cv)].push_back(cu);
    }
  }
  for (auto& n : adj) {
    std::sort(n.begin(), n.end());
    n.erase(std::unique(n.begin(), n.end()), n.end());
  }
  return adj;
}

}  // namespace

CliqueColoring color_cliques(const NodeGraph& g,
                             const std::vector<std::vector<index_t>>& cliques) {
  auto adj = contracted_adj(g, cliques);
  CliqueColoring out;
  out.color.assign(cliques.size(), -1);
  std::vector<bool> used;
  for (std::size_t c = 0; c < cliques.size(); ++c) {
    used.assign(adj[c].size() + 1, false);
    for (index_t n : adj[c]) {
      index_t col = out.color[static_cast<std::size_t>(n)];
      if (col >= 0 && col < static_cast<index_t>(used.size()))
        used[static_cast<std::size_t>(col)] = true;
    }
    index_t col = 0;
    while (used[static_cast<std::size_t>(col)]) ++col;
    out.color[c] = col;
    out.num_colors = std::max(out.num_colors, col + 1);
  }
  return out;
}

void check_coloring(const NodeGraph& g,
                    const std::vector<std::vector<index_t>>& cliques,
                    const CliqueColoring& coloring) {
  BERNOULLI_CHECK(coloring.color.size() == cliques.size());
  auto adj = contracted_adj(g, cliques);
  for (std::size_t c = 0; c < cliques.size(); ++c) {
    BERNOULLI_CHECK(coloring.color[c] >= 0 &&
                    coloring.color[c] < coloring.num_colors);
    for (index_t n : adj[c])
      BERNOULLI_CHECK_MSG(
          coloring.color[static_cast<std::size_t>(n)] != coloring.color[c],
          "adjacent cliques " << c << " and " << n << " share color "
                              << coloring.color[c]);
  }
}

}  // namespace bernoulli::workloads
