// Node graphs and clique partitions (BlockSolve's preprocessing, paper
// Fig. 2(a)).
//
// With d degrees of freedom per discretization point, unknowns collapse to
// "nodes" (one per point); BlockSolve partitions the node graph into
// cliques — groups of mutually adjacent nodes — whose induced matrix blocks
// are dense and can be stored and multiplied as dense triangles/blocks.
#pragma once

#include <vector>

#include "formats/coo.hpp"

namespace bernoulli::workloads {

struct NodeGraph {
  index_t num_nodes = 0;
  // Sorted adjacency per node, self-loops excluded.
  std::vector<std::vector<index_t>> adj;

  bool adjacent(index_t a, index_t b) const;
};

/// Collapses a (num_nodes*dof) square matrix to its node graph: nodes p, q
/// are adjacent when any unknown of p couples to any unknown of q.
/// Requires rows == cols and rows % dof == 0.
NodeGraph node_graph_from_matrix(const formats::Coo& a, index_t dof);

/// Greedy clique partition: every node lands in exactly one clique, each
/// clique's nodes are mutually adjacent, clique size is capped by
/// `max_size`. Returns cliques as lists of node ids; deterministic.
std::vector<std::vector<index_t>> clique_partition(const NodeGraph& g,
                                                   index_t max_size);

/// Validates that `cliques` is a partition of g's nodes into mutually
/// adjacent groups; throws otherwise.
void check_clique_partition(const NodeGraph& g,
                            const std::vector<std::vector<index_t>>& cliques);

}  // namespace bernoulli::workloads
