// Structured-grid matrix generators.
//
// The paper's parallel experiments use "synthetic three-dimensional grid
// problems [whose] connectivity corresponds to a 7-point stencil with 5
// degrees of freedom at each discretization point" (§4). grid3d_7pt
// generates exactly that family; the 2-D variants cover the Table-1
// analogues (gr_30_30 etc.).
//
// All generators produce symmetric positive-definite matrices (random
// symmetric couplings, diagonally dominant diagonal blocks) so Conjugate
// Gradient converges on them.
#pragma once

#include <cstdint>

#include "formats/coo.hpp"

namespace bernoulli::workloads {

struct GridMeta {
  index_t num_points = 0;  // discretization points
  index_t dof = 1;         // unknowns per point
  index_t rows = 0;        // num_points * dof
};

struct GridMatrix {
  formats::Coo matrix;
  GridMeta meta;
};

/// 2-D nx x ny grid, 5-point stencil, `dof` unknowns per point.
GridMatrix grid2d_5pt(index_t nx, index_t ny, index_t dof = 1,
                      std::uint64_t seed = 1);

/// 2-D nx x ny grid, 9-point stencil (includes diagonals).
GridMatrix grid2d_9pt(index_t nx, index_t ny, index_t dof = 1,
                      std::uint64_t seed = 1);

/// 3-D nx x ny x nz grid, 7-point stencil, `dof` unknowns per point — the
/// paper's CG workload with dof = 5.
GridMatrix grid3d_7pt(index_t nx, index_t ny, index_t nz, index_t dof = 1,
                      std::uint64_t seed = 1);

}  // namespace bernoulli::workloads
