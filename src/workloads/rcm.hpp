// Reverse Cuthill-McKee ordering (George & Liu, the paper's ref [10]):
// bandwidth-reducing symmetric permutation. Complements the Diagonal
// format — after RCM an irregular matrix's nonzeros cluster near the
// diagonal, so the skyline-along-diagonals storage stops exploding
// (bench_ablation_convert shows the before/after).
#pragma once

#include <vector>

#include "formats/coo.hpp"

namespace bernoulli::workloads {

/// RCM permutation of a square (structurally symmetric) matrix.
/// Returns new_to_old: position k of the new ordering holds old row
/// new_to_old[k]. Components are processed in order of their
/// lowest-numbered vertex, each started from a pseudo-peripheral vertex.
std::vector<index_t> rcm_ordering(const formats::Coo& a);

/// Symmetric permutation: B(i', j') = A(new_to_old[i'], new_to_old[j']).
formats::Coo permute_symmetric(const formats::Coo& a,
                               std::span<const index_t> new_to_old);

/// Bandwidth: max |i - j| over stored entries (0 for diagonal/empty).
index_t bandwidth(const formats::Coo& a);

}  // namespace bernoulli::workloads
