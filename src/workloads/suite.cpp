#include "workloads/suite.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "workloads/grid.hpp"

namespace bernoulli::workloads {

namespace {

using formats::Coo;
using formats::TripletBuilder;

// Symmetrizes an edge list into an SPD matrix (same scheme as grid.cpp but
// over an arbitrary graph).
Coo graph_to_spd(index_t n, const std::vector<std::pair<index_t, index_t>>& edges,
                 std::uint64_t seed) {
  SplitMix64 rng(seed);
  TripletBuilder b(n, n);
  std::vector<value_t> rowsum(static_cast<std::size_t>(n), 0.0);
  for (auto [i, j] : edges) {
    if (i == j) continue;
    value_t v = rng.next_double(-1.0, 0.0);
    b.add(i, j, v);
    b.add(j, i, v);
    rowsum[static_cast<std::size_t>(i)] += std::abs(v);
    rowsum[static_cast<std::size_t>(j)] += std::abs(v);
  }
  for (index_t i = 0; i < n; ++i)
    b.add(i, i, rowsum[static_cast<std::size_t>(i)] + 1.0);
  return std::move(b).build();
}

// 685_bus analogue: power-network graph — a backbone ring plus short-range
// random chords, average degree ~4.4 like the original admittance matrix.
Coo power_network(index_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<std::pair<index_t, index_t>> edges;
  for (index_t i = 0; i < n; ++i) edges.emplace_back(i, (i + 1) % n);
  // ~1.2 extra chords per node, biased to nearby buses (feeders).
  auto extra = static_cast<index_t>(1.2 * static_cast<double>(n));
  for (index_t k = 0; k < extra; ++k) {
    index_t i = rng.next_index(n);
    index_t hop = 2 + rng.next_index(n / 8 + 1);
    index_t j = (i + hop) % n;
    if (i != j) edges.emplace_back(std::min(i, j), std::max(i, j));
  }
  return graph_to_spd(n, edges, seed ^ 0x5eed);
}

// bcsstm27 analogue: structural mass matrix — chains of small dense FEM
// blocks (6 dof per node, element blocks coupling consecutive nodes).
Coo mass_matrix(index_t num_nodes, index_t dof, std::uint64_t seed) {
  std::vector<std::pair<index_t, index_t>> edges;
  for (index_t p = 0; p + 1 < num_nodes; ++p) edges.emplace_back(p, p + 1);
  // The grid assembler handles the dof blocks; reuse it via a 1-D "grid".
  SplitMix64 rng(seed);
  const index_t n = num_nodes * dof;
  TripletBuilder b(n, n);
  std::vector<value_t> rowsum(static_cast<std::size_t>(n), 0.0);
  auto couple = [&](index_t p, index_t q) {
    for (index_t r = 0; r < dof; ++r) {
      for (index_t c = 0; c < dof; ++c) {
        value_t v = rng.next_double(-0.5, 0.0);
        index_t i = p * dof + r, j = q * dof + c;
        b.add(i, j, v);
        b.add(j, i, v);
        rowsum[static_cast<std::size_t>(i)] += std::abs(v);
        rowsum[static_cast<std::size_t>(j)] += std::abs(v);
      }
    }
  };
  for (auto [p, q] : edges) couple(p, q);
  for (index_t p = 0; p < num_nodes; ++p) {
    for (index_t r = 0; r < dof; ++r) {
      for (index_t c = r + 1; c < dof; ++c) {
        value_t v = rng.next_double(-0.3, 0.0);
        index_t i = p * dof + r, j = p * dof + c;
        b.add(i, j, v);
        b.add(j, i, v);
        rowsum[static_cast<std::size_t>(i)] += std::abs(v);
        rowsum[static_cast<std::size_t>(j)] += std::abs(v);
      }
    }
    for (index_t r = 0; r < dof; ++r) {
      index_t i = p * dof + r;
      b.add(i, i, rowsum[static_cast<std::size_t>(i)] + 1.0);
    }
  }
  return std::move(b).build();
}

// memplus analogue: circuit matrix with a strongly skewed row-length
// distribution — a few hub rows (supply rails) touch hundreds of columns,
// most rows have 2-6 entries. This is the workload where fixed-width
// formats (ITPACK) collapse and JDiag shines.
Coo skewed_circuit(index_t n, index_t num_hubs, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<std::pair<index_t, index_t>> edges;
  // Sparse random background, ~2 edges per node.
  for (index_t i = 0; i < n; ++i) {
    index_t deg = 1 + rng.next_index(3);
    for (index_t d = 0; d < deg; ++d) {
      index_t j = rng.next_index(n);
      if (i != j) edges.emplace_back(std::min(i, j), std::max(i, j));
    }
  }
  // Hubs: each connects to ~n/20 random nodes.
  for (index_t h = 0; h < num_hubs; ++h) {
    index_t hub = rng.next_index(n);
    index_t fan = n / 20;
    for (index_t d = 0; d < fan; ++d) {
      index_t j = rng.next_index(n);
      if (hub != j) edges.emplace_back(std::min(hub, j), std::max(hub, j));
    }
  }
  return graph_to_spd(n, edges, seed ^ 0xc1bc);
}

}  // namespace

SuiteMatrix suite_matrix(const std::string& name) {
  if (name == "small") {
    return {name, "PETSc 'small' grid example -> 2-D 5-pt stencil 12x12",
            grid2d_5pt(12, 12, 1, 11).matrix};
  }
  if (name == "medium") {
    return {name, "PETSc 'medium' grid example -> 2-D 5-pt stencil 60x60",
            grid2d_5pt(60, 60, 1, 12).matrix};
  }
  if (name == "cfd.1.10") {
    return {name, "PETSc CFD example -> 3-D 7-pt stencil 10x10x10, 4 dof",
            grid3d_7pt(10, 10, 10, 4, 13).matrix, 4};
  }
  if (name == "685_bus") {
    return {name, "power admittance network -> ring + short chords, n=685",
            power_network(685, 14)};
  }
  if (name == "bcsstm27") {
    return {name, "structural mass matrix -> FEM block chain, 204 nodes x 6 dof",
            mass_matrix(204, 6, 15), 6};
  }
  if (name == "gr_30_30") {
    return {name, "30x30 grid 9-pt Laplacian (generated exactly)",
            grid2d_9pt(30, 30, 1, 16).matrix};
  }
  if (name == "memplus") {
    return {name, "memory-circuit matrix -> skewed rows, n=4000, 12 hub rails",
            skewed_circuit(4000, 12, 17)};
  }
  if (name == "sherman1") {
    return {name, "oil-reservoir 10x10x10 7-pt stencil (generated exactly)",
            grid3d_7pt(10, 10, 10, 1, 18).matrix};
  }
  BERNOULLI_CHECK_MSG(false, "unknown suite matrix: " << name);
  __builtin_unreachable();
}

std::vector<std::string> table1_names() {
  return {"small",    "medium",   "cfd.1.10", "685_bus",
          "bcsstm27", "gr_30_30", "memplus",  "sherman1"};
}

std::vector<SuiteMatrix> table1_suite() {
  std::vector<SuiteMatrix> out;
  for (const auto& name : table1_names()) out.push_back(suite_matrix(name));
  return out;
}

}  // namespace bernoulli::workloads
