#include "workloads/cliques.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace bernoulli::workloads {

bool NodeGraph::adjacent(index_t a, index_t b) const {
  const auto& n = adj[static_cast<std::size_t>(a)];
  return std::binary_search(n.begin(), n.end(), b);
}

NodeGraph node_graph_from_matrix(const formats::Coo& a, index_t dof) {
  BERNOULLI_CHECK(a.rows() == a.cols());
  BERNOULLI_CHECK(dof >= 1 && a.rows() % dof == 0);
  NodeGraph g;
  g.num_nodes = a.rows() / dof;
  g.adj.resize(static_cast<std::size_t>(g.num_nodes));
  auto rowind = a.rowind();
  auto colind = a.colind();
  for (index_t k = 0; k < a.nnz(); ++k) {
    index_t p = rowind[static_cast<std::size_t>(k)] / dof;
    index_t q = colind[static_cast<std::size_t>(k)] / dof;
    if (p != q) {
      g.adj[static_cast<std::size_t>(p)].push_back(q);
      g.adj[static_cast<std::size_t>(q)].push_back(p);
    }
  }
  for (auto& n : g.adj) {
    std::sort(n.begin(), n.end());
    n.erase(std::unique(n.begin(), n.end()), n.end());
  }
  return g;
}

std::vector<std::vector<index_t>> clique_partition(const NodeGraph& g,
                                                   index_t max_size) {
  BERNOULLI_CHECK(max_size >= 1);
  std::vector<bool> assigned(static_cast<std::size_t>(g.num_nodes), false);
  std::vector<std::vector<index_t>> cliques;
  for (index_t v = 0; v < g.num_nodes; ++v) {
    if (assigned[static_cast<std::size_t>(v)]) continue;
    std::vector<index_t> clique{v};
    assigned[static_cast<std::size_t>(v)] = true;
    // Grow greedily among unassigned neighbours of v that are adjacent to
    // every current member.
    for (index_t u : g.adj[static_cast<std::size_t>(v)]) {
      if (static_cast<index_t>(clique.size()) >= max_size) break;
      if (assigned[static_cast<std::size_t>(u)]) continue;
      bool ok = true;
      for (index_t w : clique) {
        if (w != v && !g.adjacent(u, w)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        clique.push_back(u);
        assigned[static_cast<std::size_t>(u)] = true;
      }
    }
    std::sort(clique.begin(), clique.end());
    cliques.push_back(std::move(clique));
  }
  return cliques;
}

void check_clique_partition(const NodeGraph& g,
                            const std::vector<std::vector<index_t>>& cliques) {
  std::vector<int> count(static_cast<std::size_t>(g.num_nodes), 0);
  for (const auto& c : cliques) {
    BERNOULLI_CHECK(!c.empty());
    for (std::size_t a = 0; a < c.size(); ++a) {
      BERNOULLI_CHECK(c[a] >= 0 && c[a] < g.num_nodes);
      ++count[static_cast<std::size_t>(c[a])];
      for (std::size_t b = a + 1; b < c.size(); ++b)
        BERNOULLI_CHECK_MSG(g.adjacent(c[a], c[b]),
                            "clique members " << c[a] << " and " << c[b]
                                              << " are not adjacent");
    }
  }
  for (index_t v = 0; v < g.num_nodes; ++v)
    BERNOULLI_CHECK_MSG(count[static_cast<std::size_t>(v)] == 1,
                        "node " << v << " appears in "
                                << count[static_cast<std::size_t>(v)]
                                << " cliques");
}

}  // namespace bernoulli::workloads
