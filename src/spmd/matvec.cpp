#include "spmd/matvec.hpp"

#include <algorithm>
#include <unordered_map>

#include "compiler/executor.hpp"
#include "compiler/planner.hpp"
#include "distrib/chaos.hpp"
#include "relation/array_views.hpp"
#include "support/counters.hpp"
#include "support/error.hpp"
#include "support/trace.hpp"

namespace bernoulli::spmd {

using distrib::Distribution;
using distrib::OwnerLocal;
using formats::Csr;

std::string variant_name(Variant v) {
  switch (v) {
    case Variant::kBlockSolve: return "BlockSolve";
    case Variant::kBernoulliMixed: return "Bernoulli-Mixed";
    case Variant::kBernoulli: return "Bernoulli";
    case Variant::kIndirectMixed: return "Indirect-Mixed";
    case Variant::kIndirect: return "Indirect";
  }
  return "?";
}

bool variant_uses_chaos(Variant v) {
  return v == Variant::kIndirectMixed || v == Variant::kIndirect;
}

bool variant_is_naive(Variant v) {
  return v == Variant::kBernoulli || v == Variant::kIndirect;
}

namespace {

constexpr int kRequestTag = 9201;

// Local fragment of the (replicated) global matrix: my rows, renumbered to
// local offsets; columns stay global. Pure data layout — every variant
// starts from this, so it is outside the timed inspector window.
Csr extract_fragment(const Csr& a, const Distribution& rows, int me) {
  auto mine = rows.owned_indices(me);
  std::vector<index_t> rowptr{0};
  std::vector<index_t> colind;
  std::vector<value_t> vals;
  for (index_t g : mine) {
    auto cols = a.row_cols(g);
    auto v = a.row_vals(g);
    colind.insert(colind.end(), cols.begin(), cols.end());
    vals.insert(vals.end(), v.begin(), v.end());
    rowptr.push_back(static_cast<index_t>(colind.size()));
  }
  return Csr(static_cast<index_t>(mine.size()), a.cols(), std::move(rowptr),
             std::move(colind), std::move(vals));
}

// Used(p) computed through the RELATIONAL machinery (paper Eq. 21): the
// compiled inspectors evaluate the query
//   Used(j) = pi_j sigma_NZ(A(i', j))
// through the generic plan interpreter — the per-entry interpretive cost
// is the honest price of generated-from-global-spec code.
std::vector<index_t> used_columns_relational(const Csr& frag) {
  relation::CsrView aview("A", frag);
  relation::IntervalView iview("I", {frag.rows(), frag.cols()});
  relation::Query q;
  q.vars = {"i", "j"};
  q.relations.push_back({&iview, {"i", "j"}, true, false, true});
  q.relations.push_back({&aview, {"i", "j"}, true, false, false});

  // Deduplicate by sort+unique: work ~ fragment size, NOT global size —
  // an O(N_global) bitmap would make even the leanest inspector scale with
  // the total problem under weak scaling.
  std::vector<index_t> used;
  compiler::Plan plan = compiler::plan_query(q);
  const std::size_t jslot = 1;  // q.vars order
  compiler::execute(plan, q, [&](const compiler::Env& env) {
    used.push_back(env.var_value[jslot]);
  });
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  return used;
}

// Used(p) the hand-written way: one direct pass over the column indices.
std::vector<index_t> used_columns_direct(const Csr& frag) {
  std::vector<index_t> used(frag.colind().begin(), frag.colind().end());
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  return used;
}

}  // namespace

namespace {

// One pass of the naive (fully data-parallel) kernel: every x reference
// resolves through the global-to-slot translation.
void naive_pass(const formats::Csr& a, std::span<const index_t> xtrans,
                ConstVectorView x_full, VectorView y, bool accumulate) {
  auto rowptr = a.rowptr();
  auto colind = a.colind();
  auto vals = a.vals();
  for (index_t i = 0; i < a.rows(); ++i) {
    value_t sum = 0.0;
    const index_t end = rowptr[static_cast<std::size_t>(i) + 1];
    for (index_t k = rowptr[static_cast<std::size_t>(i)]; k < end; ++k)
      sum += vals[static_cast<std::size_t>(k)] *
             x_full[static_cast<std::size_t>(xtrans[static_cast<std::size_t>(
                 colind[static_cast<std::size_t>(k)])])];
    if (accumulate)
      y[static_cast<std::size_t>(i)] += sum;
    else
      y[static_cast<std::size_t>(i)] = sum;
  }
}

}  // namespace

void DistSpmv::compute_local(ConstVectorView x_full, VectorView y) const {
  if (variant_is_naive(variant))
    naive_pass(a_local, xtrans, x_full, y, /*accumulate=*/false);
  else
    // The local part references only owned x (its width is `owned`).
    spmv(a_local, x_full.first(static_cast<std::size_t>(sched.owned)), y);
}

void DistSpmv::compute_nonlocal(ConstVectorView x_full, VectorView y) const {
  if (variant_is_naive(variant))
    naive_pass(a_nonlocal, xtrans, x_full, y, /*accumulate=*/true);
  else
    spmv_add(a_nonlocal, x_full, y);
}

void DistSpmv::apply(runtime::Process& p, VectorView x_full, VectorView y,
                     int tag) const {
  support::PhaseScope phase("executor");
  support::TraceSpan span("spmv.apply", "spmd");
  span.arg("variant", variant_name(variant));
  BERNOULLI_CHECK(static_cast<index_t>(x_full.size()) == sched.full_size());
  BERNOULLI_CHECK(static_cast<index_t>(y.size()) == sched.owned);

  if (variant == Variant::kBlockSolve) {
    // Hand-written overlap: put the values on the wire, compute the local
    // product while they travel, then finish with the non-local part.
    sched.post(p, x_full, tag);
    compute_local(x_full, y);
    if (charge.local >= 0) p.charge_seconds(charge.local);
    sched.complete(p, x_full, tag);
    compute_nonlocal(x_full, y);
    if (charge.nonlocal >= 0) p.charge_seconds(charge.nonlocal);
    return;
  }

  // Compiler-generated executors (mixed and naive): exchange first, then
  // compute — the paper notes the generated code is "simpler" (no
  // overlap), costing the 2-4% of Table 2.
  sched.exchange(p, x_full, tag);
  compute_local(x_full, y);
  compute_nonlocal(x_full, y);
  if (charge.local >= 0) p.charge_seconds(charge.local + charge.nonlocal);
}

DistSpmv build_dist_spmv(runtime::Process& p, const Csr& a,
                         const Distribution& rows, Variant variant) {
  BERNOULLI_CHECK(a.rows() == a.cols());
  BERNOULLI_CHECK(rows.global_size() == a.rows());
  const int P = p.nprocs();
  const int me = p.rank();
  const index_t N = a.cols();

  DistSpmv out;
  out.variant = variant;
  const bool naive = variant_is_naive(variant);

  // ---- Untimed preparation (matrix assembly / storage layout) ----------
  // The paper's inspector/executor split charges data-structure assembly
  // to matrix setup: the BlockSolve library *stores* A split into local
  // and non-local parts with local indices, and every implementation gets
  // its fragment for free. What Table 3 contrasts is the work needed to
  // build communication sets and index translations.
  Csr frag = extract_fragment(a, rows, me);
  const index_t m = frag.rows();

  auto my_rows = rows.owned_indices(me);
  std::unordered_map<index_t, index_t> my_local;
  my_local.reserve(my_rows.size());
  for (std::size_t k = 0; k < my_rows.size(); ++k)
    my_local.emplace(my_rows[k], static_cast<index_t>(k));
  auto is_mine = [&](index_t j) { return my_local.count(j) != 0; };

  Csr frag_snl;  // mixed variants: the A_SNL storage (global columns)
  if (!naive) {
    // a_local = A_D + A_SL with pre-localized columns (library storage),
    // frag_snl = A_SNL with global columns awaiting translation.
    std::vector<index_t> lp{0}, lc, sp{0}, sc;
    std::vector<value_t> lv, sv;
    for (index_t i = 0; i < m; ++i) {
      auto cols = frag.row_cols(i);
      auto vals = frag.row_vals(i);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        auto mine = my_local.find(cols[k]);
        if (mine != my_local.end()) {
          lc.push_back(mine->second);
          lv.push_back(vals[k]);
        } else {
          sc.push_back(cols[k]);
          sv.push_back(vals[k]);
        }
      }
      lp.push_back(static_cast<index_t>(lc.size()));
      sp.push_back(static_cast<index_t>(sc.size()));
    }
    // Local offsets ascend with global indices inside one owner for every
    // distribution in distrib/, so rows stay sorted; assert via validate.
    out.a_local = Csr(m, m, std::move(lp), std::move(lc), std::move(lv));
    frag_snl = Csr(m, N, std::move(sp), std::move(sc), std::move(sv));
  }

  p.barrier();  // exclude prep skew from the timed window
  support::PhaseScope phase("inspector");
  support::TraceSpan insp_span("inspector", "spmd");
  insp_span.arg("variant", variant_name(variant));
  const double inspector_t0 = p.virtual_time();

  // ---- Inspector proper -------------------------------------------------
  // 1. Used(p): which global x indices must be resolved.
  //    - naive: EVERY referenced index, via the relational query over the
  //      whole fragment (work ~ local problem size);
  //    - Bernoulli-Mixed / Indirect-Mixed: relational query over A_SNL
  //      only (work ~ boundary);
  //    - BlockSolve: direct pass over A_SNL.
  std::vector<index_t> used;
  {
    support::TraceSpan step("inspector.used", "spmd");
    p.solo([&] {
      if (variant == Variant::kBlockSolve) {
        used = used_columns_direct(frag_snl);
      } else if (naive) {
        // The generated fully-data-parallel inspector is also compiled code
        // (kernel-library transcription of the emitted query); what makes
        // it an order of magnitude more expensive than the mixed inspector
        // is its reference VOLUME — it enumerates every reference in the
        // fragment (plus the O(N) translation below), not just A_SNL's.
        used = used_columns_direct(frag);
      } else {
        used = used_columns_relational(frag_snl);
      }
    });
    step.arg("used", static_cast<long long>(used.size()));
  }

  // 2. Ownership of the used indices: local lookups against the
  //    replicated distribution relation, or collective queries against the
  //    Chaos distributed translation table (build + query all-to-alls).
  std::vector<OwnerLocal> owners(used.size());
  {
    support::TraceSpan step("inspector.ownership", "spmd");
    step.arg("chaos", variant_uses_chaos(variant));
    if (variant_uses_chaos(variant)) {
      distrib::ChaosTranslationTable table(p, N, my_rows);
      owners = table.query(p, used);
    } else {
      for (std::size_t k = 0; k < used.size(); ++k)
        owners[k] = rows.owner_local(used[k]);
    }
  }

  // 3. Ghost layout: non-local used indices grouped by owner (ascending
  //    global index within each owner — `used` is already sorted).
  out.sched.nprocs = P;
  out.sched.owned = m;
  out.sched.send_local.assign(static_cast<std::size_t>(P), {});
  out.sched.recv_count.assign(static_cast<std::size_t>(P), 0);
  out.sched.ghost_base.assign(static_cast<std::size_t>(P), 0);

  std::vector<std::vector<index_t>> need(static_cast<std::size_t>(P));
  std::unordered_map<index_t, index_t> slot_of;  // global j -> x_full slot
  {
    support::TraceSpan step("inspector.ghost_layout", "spmd");
    p.solo([&] {
      for (std::size_t k = 0; k < used.size(); ++k) {
        if (owners[k].owner == me) continue;  // naive variants: local j here
        need[static_cast<std::size_t>(owners[k].owner)].push_back(used[k]);
      }
      index_t next_slot = m;
      for (int q = 0; q < P; ++q) {
        out.sched.ghost_base[static_cast<std::size_t>(q)] = next_slot;
        out.sched.recv_count[static_cast<std::size_t>(q)] =
            static_cast<index_t>(need[static_cast<std::size_t>(q)].size());
        for (index_t j : need[static_cast<std::size_t>(q)])
          slot_of.emplace(j, next_slot++);
      }
      out.sched.ghosts = next_slot - m;
    });
    step.arg("ghosts", static_cast<long long>(out.sched.ghosts));
  }

  // 4. Tell each owner what we need (RecvInd -> their send lists).
  {
    support::TraceSpan step("inspector.requests", "spmd");
    auto requests = p.alltoallv(need, kRequestTag);
    p.solo([&] {
      for (int q = 0; q < P; ++q) {
        auto& list = out.sched.send_local[static_cast<std::size_t>(q)];
        list.reserve(requests[static_cast<std::size_t>(q)].size());
        for (index_t j : requests[static_cast<std::size_t>(q)]) {
          auto it = my_local.find(j);
          BERNOULLI_CHECK_MSG(it != my_local.end(),
                              "rank " << q << " requested " << j
                                      << " which rank " << me
                                      << " does not own");
          list.push_back(it->second);
        }
      }
      out.sched.validate();
    });
  }

  // 5. Index-translation application.
  support::TraceSpan translate_step("inspector.translate", "spmd");
  p.solo([&] {
  if (naive) {
    // The fully data-parallel code discovers locality per reference: build
    // the full global->slot translation (O(N) memory and work per rank)
    // and split the three products by looking every column up — the
    // "redundant work to discover that most references are local".
    out.xtrans.assign(static_cast<std::size_t>(N), -1);
    for (index_t j = 0; j < N; ++j) {
      auto mine = my_local.find(j);
      if (mine != my_local.end()) {
        out.xtrans[static_cast<std::size_t>(j)] = mine->second;
      } else {
        auto ghost = slot_of.find(j);
        if (ghost != slot_of.end())
          out.xtrans[static_cast<std::size_t>(j)] = ghost->second;
      }
    }
    std::vector<index_t> lp{0}, lc, np{0}, nc;
    std::vector<value_t> lv, nv;
    for (index_t i = 0; i < m; ++i) {
      auto cols = frag.row_cols(i);
      auto vals = frag.row_vals(i);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        if (is_mine(cols[k])) {
          lc.push_back(cols[k]);
          lv.push_back(vals[k]);
        } else {
          nc.push_back(cols[k]);
          nv.push_back(vals[k]);
        }
      }
      lp.push_back(static_cast<index_t>(lc.size()));
      np.push_back(static_cast<index_t>(nc.size()));
    }
    out.a_local = Csr(m, N, std::move(lp), std::move(lc), std::move(lv));
    out.a_nonlocal = Csr(m, N, std::move(np), std::move(nc), std::move(nv));
  } else {
    // Mixed: only A_SNL's columns are translated (to ghost slots).
    std::vector<index_t> np{0}, nc;
    std::vector<value_t> nv;
    std::vector<std::pair<index_t, value_t>> row;
    for (index_t i = 0; i < m; ++i) {
      auto cols = frag_snl.row_cols(i);
      auto vals = frag_snl.row_vals(i);
      row.clear();
      for (std::size_t k = 0; k < cols.size(); ++k)
        row.emplace_back(slot_of.at(cols[k]), vals[k]);
      // Ghost slots follow (owner, global) order, not global order, so the
      // row is re-sorted to keep the CSR invariant.
      std::sort(row.begin(), row.end());
      for (auto& [c, v] : row) {
        nc.push_back(c);
        nv.push_back(v);
      }
      np.push_back(static_cast<index_t>(nc.size()));
    }
    const index_t width = out.sched.full_size();
    out.a_nonlocal =
        Csr(m, width, std::move(np), std::move(nc), std::move(nv));
  }
  });
  out.inspector_vtime = p.virtual_time() - inspector_t0;
  return out;
}

}  // namespace bernoulli::spmd
