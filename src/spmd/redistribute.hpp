// Redistribution: move a distributed vector between distribution
// relations. The fragmentation equation (paper Eq. 15) makes this a pure
// relational rewrite — join the source fragments with the target IND and
// route; no semantics change, only data placement.
#pragma once

#include "distrib/distribution.hpp"
#include "runtime/machine.hpp"

namespace bernoulli::spmd {

/// Collective. `local_from` holds this rank's slice under `from` (local
/// offset order); returns this rank's slice under `to`. Both distributions
/// must be replicated (ownership computable locally) and describe the same
/// global size.
Vector redistribute(runtime::Process& p, ConstVectorView local_from,
                    const distrib::Distribution& from,
                    const distrib::Distribution& to, int tag);

}  // namespace bernoulli::spmd
