// Distributed sparse x skinny-dense product (multi-RHS SpMV): the second
// core operation the paper names (§6) — one inspector-built schedule
// serves every column of the block, amortizing the communication setup
// across right-hand sides.
#pragma once

#include "formats/dense.hpp"
#include "spmd/matvec.hpp"

namespace bernoulli::spmd {

/// Y = A * X for the distributed matrix behind `a`. X_full is
/// (full_size x width) row-major with owned rows filled and ghost rows as
/// scratch; Y is (local_rows x width). Works for every variant (the naive
/// ones route through xtrans exactly like their SpMV).
void dist_spmm(runtime::Process& p, const DistSpmv& a,
               formats::Dense& x_full, formats::Dense& y, int tag);

/// y = A^T x for the distributed matrix behind `a` (mixed variants only).
/// x_local holds this rank's owned slice of x; y_scratch is a full_size
/// buffer that receives this rank's owned slice of A^T x in its first
/// local_rows entries. Local rows scatter into both owned and ghost-slot
/// columns; the ghost partial sums then travel BACK to their owners
/// through the same schedule (reverse_exchange_add).
void dist_spmv_transpose(runtime::Process& p, const DistSpmv& a,
                         ConstVectorView x_local, VectorView y_scratch,
                         int tag);

}  // namespace bernoulli::spmd
