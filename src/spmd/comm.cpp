#include "spmd/comm.hpp"

#include "support/counters.hpp"
#include "support/error.hpp"
#include "support/profile.hpp"
#include "support/trace.hpp"

namespace bernoulli::spmd {

// Schedule-level counters, split by the caller's counter phase
// (inspector/executor/main). Message and byte counts are booked once, in
// runtime::Process::send_bytes, so they reconcile exactly with
// runtime::CommStats; here we count the schedule OPERATIONS and the
// values they move.

void CommSchedule::post(runtime::Process& p, ConstVectorView x_full,
                        int tag) const {
  BERNOULLI_CHECK(static_cast<index_t>(x_full.size()) == full_size());
  std::vector<value_t> buffer;
  for (int q = 0; q < nprocs; ++q) {
    const auto& list = send_local[static_cast<std::size_t>(q)];
    if (list.empty()) continue;
    buffer.resize(list.size());
    for (std::size_t k = 0; k < list.size(); ++k)
      buffer[k] = x_full[static_cast<std::size_t>(list[k])];
    p.send<value_t>(q, tag, buffer);
  }
}

void CommSchedule::complete(runtime::Process& p, VectorView x_full,
                            int tag) const {
  BERNOULLI_CHECK(static_cast<index_t>(x_full.size()) == full_size());
  for (int q = 0; q < nprocs; ++q) {
    const index_t count = recv_count[static_cast<std::size_t>(q)];
    if (count == 0) continue;
    auto data = p.recv<value_t>(q, tag);
    BERNOULLI_CHECK(static_cast<index_t>(data.size()) == count);
    const index_t base = ghost_base[static_cast<std::size_t>(q)];
    for (index_t k = 0; k < count; ++k)
      x_full[static_cast<std::size_t>(base + k)] =
          data[static_cast<std::size_t>(k)];
  }
}

void CommSchedule::exchange(runtime::Process& p, VectorView x_full,
                            int tag) const {
  support::TraceSpan span("exchange", "comm");
  span.arg("ghosts", static_cast<long long>(ghosts));
  support::ProfilePhaseScope prof(support::kProfPhaseExchange);
  support::phase_counter("comm", "exchanges").add();
  support::phase_counter("comm", "ghost_values").add(ghosts);
  post(p, x_full, tag);
  complete(p, x_full, tag);
}

void CommSchedule::exchange_block(runtime::Process& p, VectorView x_block,
                                  index_t width, int tag) const {
  support::TraceSpan span("exchange_block", "comm");
  span.arg("ghosts", static_cast<long long>(ghosts))
      .arg("width", static_cast<long long>(width));
  support::ProfilePhaseScope prof(support::kProfPhaseExchange);
  support::phase_counter("comm", "exchanges").add();
  support::phase_counter("comm", "ghost_values").add(ghosts * width);
  BERNOULLI_CHECK(width >= 1);
  BERNOULLI_CHECK(static_cast<index_t>(x_block.size()) ==
                  full_size() * width);
  std::vector<value_t> buffer;
  for (int q = 0; q < nprocs; ++q) {
    const auto& list = send_local[static_cast<std::size_t>(q)];
    if (list.empty()) continue;
    buffer.resize(list.size() * static_cast<std::size_t>(width));
    for (std::size_t k = 0; k < list.size(); ++k)
      for (index_t r = 0; r < width; ++r)
        buffer[k * static_cast<std::size_t>(width) +
               static_cast<std::size_t>(r)] =
            x_block[static_cast<std::size_t>(list[k] * width + r)];
    p.send<value_t>(q, tag, buffer);
  }
  for (int q = 0; q < nprocs; ++q) {
    const index_t count = recv_count[static_cast<std::size_t>(q)];
    if (count == 0) continue;
    auto data = p.recv<value_t>(q, tag);
    BERNOULLI_CHECK(static_cast<index_t>(data.size()) == count * width);
    const index_t base = ghost_base[static_cast<std::size_t>(q)];
    for (index_t k = 0; k < count; ++k)
      for (index_t r = 0; r < width; ++r)
        x_block[static_cast<std::size_t>((base + k) * width + r)] =
            data[static_cast<std::size_t>(k * width + r)];
  }
}

void CommSchedule::reverse_exchange_add(runtime::Process& p,
                                        VectorView x_full, int tag) const {
  support::TraceSpan span("reverse_exchange_add", "comm");
  span.arg("ghosts", static_cast<long long>(ghosts));
  support::phase_counter("comm", "reverse_exchanges").add();
  support::phase_counter("comm", "ghost_values").add(ghosts);
  BERNOULLI_CHECK(static_cast<index_t>(x_full.size()) == full_size());
  // Ghost slots -> their owners.
  for (int q = 0; q < nprocs; ++q) {
    const index_t count = recv_count[static_cast<std::size_t>(q)];
    if (count == 0) continue;
    const index_t base = ghost_base[static_cast<std::size_t>(q)];
    p.send<value_t>(q, tag,
                    ConstVectorView(x_full).subspan(
                        static_cast<std::size_t>(base),
                        static_cast<std::size_t>(count)));
  }
  // Owners accumulate into the entries their peers hold ghosts of.
  for (int q = 0; q < nprocs; ++q) {
    const auto& list = send_local[static_cast<std::size_t>(q)];
    if (list.empty()) continue;
    auto data = p.recv<value_t>(q, tag);
    BERNOULLI_CHECK(data.size() == list.size());
    for (std::size_t k = 0; k < list.size(); ++k)
      x_full[static_cast<std::size_t>(list[k])] += data[k];
  }
}

void CommSchedule::validate() const {
  BERNOULLI_CHECK(nprocs >= 1 && owned >= 0 && ghosts >= 0);
  BERNOULLI_CHECK(send_local.size() == static_cast<std::size_t>(nprocs));
  BERNOULLI_CHECK(recv_count.size() == static_cast<std::size_t>(nprocs));
  BERNOULLI_CHECK(ghost_base.size() == static_cast<std::size_t>(nprocs));
  index_t total = 0;
  for (int q = 0; q < nprocs; ++q) {
    for (index_t off : send_local[static_cast<std::size_t>(q)])
      BERNOULLI_CHECK(off >= 0 && off < owned);
    BERNOULLI_CHECK(recv_count[static_cast<std::size_t>(q)] >= 0);
    if (recv_count[static_cast<std::size_t>(q)] > 0) {
      BERNOULLI_CHECK(ghost_base[static_cast<std::size_t>(q)] >= owned);
      BERNOULLI_CHECK(ghost_base[static_cast<std::size_t>(q)] +
                          recv_count[static_cast<std::size_t>(q)] <=
                      full_size());
    }
    total += recv_count[static_cast<std::size_t>(q)];
  }
  BERNOULLI_CHECK(total == ghosts);
}

}  // namespace bernoulli::spmd
