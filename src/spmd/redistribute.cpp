#include "spmd/redistribute.hpp"

#include "support/error.hpp"

namespace bernoulli::spmd {

namespace {

struct Routed {
  index_t dest_local;
  value_t value;
};

}  // namespace

Vector redistribute(runtime::Process& p, ConstVectorView local_from,
                    const distrib::Distribution& from,
                    const distrib::Distribution& to, int tag) {
  BERNOULLI_CHECK(from.global_size() == to.global_size());
  BERNOULLI_CHECK(from.nprocs() == p.nprocs() && to.nprocs() == p.nprocs());
  const int me = p.rank();
  BERNOULLI_CHECK(static_cast<index_t>(local_from.size()) ==
                  from.local_size(me));

  // Route every owned value to its new owner, tagged with its new local
  // offset (the receiver needs no reverse lookup).
  std::vector<std::vector<Routed>> out(static_cast<std::size_t>(p.nprocs()));
  for (index_t k = 0; k < from.local_size(me); ++k) {
    index_t global = from.to_global(me, k);
    auto ol = to.owner_local(global);
    out[static_cast<std::size_t>(ol.owner)].push_back(
        {ol.local, local_from[static_cast<std::size_t>(k)]});
  }
  auto in = p.alltoallv(out, tag);

  Vector result(static_cast<std::size_t>(to.local_size(me)), 0.0);
  std::vector<bool> filled(result.size(), false);
  for (const auto& batch : in) {
    for (const Routed& r : batch) {
      BERNOULLI_CHECK(r.dest_local >= 0 &&
                      r.dest_local < to.local_size(me));
      BERNOULLI_CHECK_MSG(!filled[static_cast<std::size_t>(r.dest_local)],
                          "slot " << r.dest_local << " received twice — "
                                  << "inconsistent distributions");
      filled[static_cast<std::size_t>(r.dest_local)] = true;
      result[static_cast<std::size_t>(r.dest_local)] = r.value;
    }
  }
  for (std::size_t k = 0; k < filled.size(); ++k)
    BERNOULLI_CHECK_MSG(filled[k], "slot " << k << " never received — "
                                           << "inconsistent distributions");
  return result;
}

}  // namespace bernoulli::spmd
