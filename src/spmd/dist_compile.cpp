#include "spmd/dist_compile.hpp"

#include <algorithm>

#include "support/counters.hpp"
#include "support/error.hpp"
#include "support/trace.hpp"

namespace bernoulli::spmd {

using distrib::Distribution;
using formats::Csr;

VectorView DistKernel::x_owned() {
  return VectorView(*x_full_).first(static_cast<std::size_t>(sched_.owned));
}

ConstVectorView DistKernel::y_local() const { return *y_; }

void DistKernel::run(runtime::Process& p, int tag) const {
  support::PhaseScope phase("executor");
  support::TraceSpan span("dist_kernel.run", "spmd");
  std::fill(y_->begin(), y_->end(), 0.0);
  sched_.exchange(p, *x_full_, tag);
  kernel_->run();
}

std::string DistKernel::emit(const std::string& function_name) const {
  return kernel_->emit(function_name);
}

std::string DistKernel::describe_plan() const {
  return kernel_->describe_plan();
}

std::string DistKernel::explain() const { return kernel_->explain(); }

std::string DistKernel::explain_json(int indent) const {
  return kernel_->explain_json(indent);
}

DistKernel compile_dist_matvec(runtime::Process& p, const Csr& a,
                               const Distribution& rows, int build_tag) {
  support::TraceSpan span("compile_dist_matvec", "spmd");
  BERNOULLI_CHECK(a.rows() == a.cols());
  // Reuse the inspector machinery to obtain the localized fragment and
  // the communication schedule (collocation of A and Y on the row
  // distribution is what lets the fragment's rows stay purely local —
  // Eq. 20); then compile the local DENSE program against the fragment.
  DistSpmv built = build_dist_spmv(p, a, rows, Variant::kBernoulliMixed);
  (void)build_tag;

  DistKernel k;
  k.sched_ = built.sched;

  // Fuse the local and non-local parts into one localized fragment: the
  // compiled local query iterates a single A' whose columns address
  // x_full slots directly.
  {
    const index_t m = built.a_local.rows();
    const index_t width = built.sched.full_size();
    std::vector<index_t> ptr{0}, ind;
    std::vector<value_t> vals;
    for (index_t i = 0; i < m; ++i) {
      auto lc = built.a_local.row_cols(i);
      auto lv = built.a_local.row_vals(i);
      auto nc = built.a_nonlocal.row_cols(i);
      auto nv = built.a_nonlocal.row_vals(i);
      // Local columns (< owned) precede ghost slots (>= owned), so the
      // concatenation stays sorted.
      ind.insert(ind.end(), lc.begin(), lc.end());
      vals.insert(vals.end(), lv.begin(), lv.end());
      ind.insert(ind.end(), nc.begin(), nc.end());
      vals.insert(vals.end(), nv.begin(), nv.end());
      ptr.push_back(static_cast<index_t>(ind.size()));
    }
    k.local_ = std::make_shared<Csr>(m, width, std::move(ptr), std::move(ind),
                                     std::move(vals));
  }

  k.x_full_ = std::make_shared<Vector>(
      static_cast<std::size_t>(k.sched_.full_size()), 0.0);
  k.y_ = std::make_shared<Vector>(static_cast<std::size_t>(k.sched_.owned),
                                  0.0);

  // The LOCAL dense program, compiled by the ordinary sequential pipeline.
  k.bindings_ = std::make_shared<compiler::Bindings>();
  k.bindings_->bind_csr("A", *k.local_);
  k.bindings_->bind_dense_vector("X", ConstVectorView(*k.x_full_));
  k.bindings_->bind_dense_vector("Y", VectorView(*k.y_));
  compiler::LoopNest local_nest{
      {{"i", k.local_->rows()}, {"j", k.local_->cols()}},
      {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0},
  };
  k.kernel_ = std::make_shared<compiler::CompiledKernel>(
      compiler::compile(local_nest, *k.bindings_));
  return k;
}

}  // namespace bernoulli::spmd
