// Distributed matrix-vector product: the inspector/executor pairs compared
// in the paper's Tables 2 and 3.
//
// Five variants (paper §4):
//   kBlockSolve      — the hand-written baseline: direct (non-relational)
//                      inspector over the local/non-local split, executor
//                      with communication/computation overlap.
//   kBernoulliMixed  — compiler-generated from the mixed local/global
//                      specification (Eq. 24): relational inspector over
//                      only the non-local part; no overlap.
//   kBernoulli       — compiler-generated from the fully data-parallel
//                      specification (Eq. 23): the inspector translates
//                      EVERY reference to x (work ~ problem size) and the
//                      executor keeps a global->local indirection on every
//                      access, local or not.
//   kIndirectMixed   — the mixed structure, but ownership is resolved
//                      through the Chaos distributed translation table
//                      (build + query are all-to-alls, volume ~ N).
//   kIndirect        — fully data-parallel + Chaos table: worst of both.
//
// All variants compute the same y; they differ exactly where the paper
// says they differ: inspector volume and executor indirection.
#pragma once

#include "distrib/distribution.hpp"
#include "formats/csr.hpp"
#include "spmd/comm.hpp"

namespace bernoulli::spmd {

enum class Variant {
  kBlockSolve,
  kBernoulliMixed,
  kBernoulli,
  kIndirectMixed,
  kIndirect,
};

std::string variant_name(Variant v);

/// Whether the variant resolves ownership through the Chaos distributed
/// translation table (vs. the replicated distribution relation).
bool variant_uses_chaos(Variant v);

/// Whether the variant compiles from the fully data-parallel spec (naive:
/// global translation on every reference).
bool variant_is_naive(Variant v);

/// Executor-ready distributed SpMV state on one rank.
///
/// Both executor families split the matrix into the part referencing
/// owned x and the part referencing ghosts (the compiler generates the
/// same three-product structure either way, per Eq. 23/24). The mixed
/// family pre-localizes column indices into x_full slots; the naive
/// family keeps GLOBAL column indices and resolves every reference
/// through the xtrans indirection at execution time — the paper's
/// "redundant global-to-local translation ... even for the local
/// references to x".
struct DistSpmv {
  Variant variant = Variant::kBernoulliMixed;
  CommSchedule sched;

  formats::Csr a_local;     // entries whose column is owned here
  formats::Csr a_nonlocal;  // entries whose column is non-local

  // Naive executors only: global column -> x_full slot (size = N).
  std::vector<index_t> xtrans;

  /// Calibrated compute charges (seconds) for manual-compute runs; when
  /// local >= 0, apply() charges these to the virtual clock at the points
  /// where the corresponding computation happens.
  struct ComputeCharge {
    double local = -1.0;
    double nonlocal = -1.0;
  };
  ComputeCharge charge;

  /// Virtual seconds the inspector window of build_dist_spmv() consumed on
  /// this rank (communication-set + index-translation construction; matrix
  /// assembly excluded — see the comments in build_dist_spmv).
  double inspector_vtime = 0.0;

  index_t local_rows() const { return sched.owned; }

  /// y = A_local x (pure compute; ghosts not needed).
  void compute_local(ConstVectorView x_full, VectorView y) const;

  /// y += A_nonlocal x (pure compute; ghost region must be filled).
  void compute_nonlocal(ConstVectorView x_full, VectorView y) const;

  /// y = A x. x_full must be laid out per CommSchedule (owned values
  /// filled; ghost region scratch); y has local_rows() entries. Performs
  /// the exchange internally, overlapping when the variant calls for it.
  void apply(runtime::Process& p, VectorView x_full, VectorView y,
             int tag) const;
};

/// Runs the inspector for `variant` and assembles the executor state.
/// Collective over all ranks. `a` is the global matrix in CSR form
/// (replicated for fragment extraction — see DESIGN.md; all modeled
/// communication is for ownership resolution and x values). `rows`
/// distributes rows of A, x and y identically (the aligned case of
/// Eq. 20); the matrix must be square.
DistSpmv build_dist_spmv(runtime::Process& p, const formats::Csr& a,
                         const distrib::Distribution& rows, Variant variant);

}  // namespace bernoulli::spmd
