#include "spmd/spmm.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/trace.hpp"

namespace bernoulli::spmd {

using formats::Csr;
using formats::Dense;

namespace {

// C (+)= A * X with X addressed through an optional global->slot
// translation (naive variants keep global columns).
void block_pass(const Csr& a, std::span<const index_t> xtrans,
                const Dense& x, Dense& c, bool accumulate) {
  const index_t width = x.cols();
  for (index_t i = 0; i < a.rows(); ++i) {
    value_t* crow = c.data().data() + static_cast<std::size_t>(i) *
                                          static_cast<std::size_t>(width);
    if (!accumulate)
      std::fill(crow, crow + width, 0.0);
    auto cols = a.row_cols(i);
    auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      index_t slot = xtrans.empty()
                         ? cols[k]
                         : xtrans[static_cast<std::size_t>(cols[k])];
      const value_t* xrow = x.row(slot).data();
      const value_t av = vals[k];
      for (index_t r = 0; r < width; ++r)
        crow[static_cast<std::size_t>(r)] +=
            av * xrow[static_cast<std::size_t>(r)];
    }
  }
}

}  // namespace

void dist_spmv_transpose(runtime::Process& p, const DistSpmv& a,
                         ConstVectorView x_local, VectorView y_scratch,
                         int tag) {
  support::TraceSpan span("dist_spmv_transpose", "spmd");
  BERNOULLI_CHECK_MSG(!variant_is_naive(a.variant),
                      "transpose executor is generated for the mixed "
                      "(localized-column) storage only");
  const auto owned = static_cast<std::size_t>(a.sched.owned);
  BERNOULLI_CHECK(x_local.size() == owned);
  BERNOULLI_CHECK(static_cast<index_t>(y_scratch.size()) ==
                  a.sched.full_size());
  std::fill(y_scratch.begin(), y_scratch.end(), 0.0);

  // Scatter pass: row i contributes x[i] * A(i, slot) to y[slot], where
  // slots cover owned columns (a_local) and ghost slots (a_nonlocal).
  auto scatter = [&](const Csr& m) {
    for (index_t i = 0; i < m.rows(); ++i) {
      const value_t xi = x_local[static_cast<std::size_t>(i)];
      auto cols = m.row_cols(i);
      auto vals = m.row_vals(i);
      for (std::size_t k = 0; k < cols.size(); ++k)
        y_scratch[static_cast<std::size_t>(cols[k])] += vals[k] * xi;
    }
  };
  scatter(a.a_local);
  scatter(a.a_nonlocal);

  // Ghost partial sums go home and accumulate.
  a.sched.reverse_exchange_add(p, y_scratch, tag);
}

void dist_spmm(runtime::Process& p, const DistSpmv& a, Dense& x_full,
               Dense& y, int tag) {
  support::TraceSpan span("dist_spmm", "spmd");
  const index_t width = x_full.cols();
  BERNOULLI_CHECK(x_full.rows() == a.sched.full_size());
  BERNOULLI_CHECK(y.rows() == a.local_rows() && y.cols() == width);

  a.sched.exchange_block(p, x_full.data(), width, tag);
  std::span<const index_t> trans =
      variant_is_naive(a.variant) ? std::span<const index_t>(a.xtrans)
                                  : std::span<const index_t>();
  block_pass(a.a_local, trans, x_full, y, /*accumulate=*/false);
  block_pass(a.a_nonlocal, trans, x_full, y, /*accumulate=*/true);
}

}  // namespace bernoulli::spmd
