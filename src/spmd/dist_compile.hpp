// Distributed compilation (paper §3.2): from the DENSE data-parallel
// program
//
//   DO i / DO j:  Y(i) += A(i,j) * X(j)
//
// plus distribution relations, generate the SPMD inspector/executor pair:
//   1. exploit collocation — A and Y are distributed by the same rows, so
//      their join on i translates directly to a join of local fragments
//      (Eq. 20);
//   2. compute the communication sets for the non-collocated X with the
//      Used/RecvInd queries (Eq. 21-22) and build the CommSchedule;
//   3. compile the LOCAL query over the localized fragment through the
//      ordinary sequential pipeline (extract -> plan -> run/emit).
//
// This module is the API-level composition of src/compiler and src/spmd:
// the same planner that chooses sequential join orders plans the local
// query; the distributed part only adds fragmentation and communication.
#pragma once

#include <memory>

#include "compiler/loopnest.hpp"
#include "distrib/distribution.hpp"
#include "spmd/matvec.hpp"

namespace bernoulli::spmd {

/// Per-rank compiled distributed matvec kernel: owns the localized
/// fragment, the x buffer (owned + ghost layout), the local y slice, the
/// communication schedule, and the compiled local query.
class DistKernel {
 public:
  /// The owned part of x — fill before each run().
  VectorView x_owned();

  /// This rank's slice of the result.
  ConstVectorView y_local() const;

  /// y = A x: zeroes y, exchanges ghosts, runs the compiled local plan.
  void run(runtime::Process& p, int tag) const;

  const CommSchedule& schedule() const { return sched_; }
  index_t local_rows() const { return sched_.owned; }

  /// The generated C for the LOCAL program (what each node executes
  /// between exchanges).
  std::string emit(const std::string& function_name = "local_kernel") const;
  std::string describe_plan() const;

  /// EXPLAIN of the compiled LOCAL plan (see compiler/explain.hpp).
  std::string explain() const;
  std::string explain_json(int indent = 0) const;

 private:
  friend DistKernel compile_dist_matvec(runtime::Process&,
                                        const formats::Csr&,
                                        const distrib::Distribution&, int);
  CommSchedule sched_;
  // Heap-anchored so views bound at compile time survive moves of the
  // kernel object.
  std::shared_ptr<formats::Csr> local_;   // columns are x_full slots
  std::shared_ptr<Vector> x_full_;
  std::shared_ptr<Vector> y_;
  std::shared_ptr<compiler::Bindings> bindings_;
  std::shared_ptr<compiler::CompiledKernel> kernel_;
};

/// Collective. Compiles Y(i) += A(i,j) * X(j) for row-aligned A, X, Y
/// under `rows` (the global matrix `a` must stay alive only during this
/// call; the kernel keeps its own localized fragment).
DistKernel compile_dist_matvec(runtime::Process& p, const formats::Csr& a,
                               const distrib::Distribution& rows,
                               int build_tag = 9401);

}  // namespace bernoulli::spmd
