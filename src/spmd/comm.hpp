// Communication schedules: the executor-side artifact the inspector
// produces (paper §3.2.3, Eq. 21-22).
//
// Layout convention for the distributed vector x on each rank:
//   x_full[0 .. owned)                — the values this rank owns;
//   x_full[owned .. owned + ghosts)   — ghost slots for non-local values,
//                                       grouped by owning peer in rank
//                                       order (ghost_base[q] is peer q's
//                                       first slot).
// exchange() fills the ghost region: it sends the locally-owned values
// peers asked for and receives this rank's ghosts.
#pragma once

#include <vector>

#include "runtime/machine.hpp"
#include "support/types.hpp"

namespace bernoulli::spmd {

struct CommSchedule {
  int nprocs = 1;
  index_t owned = 0;
  index_t ghosts = 0;

  /// send_local[q]: local offsets of my x values that peer q needs.
  std::vector<std::vector<index_t>> send_local;

  /// recv_count[q]: ghost values arriving from peer q.
  std::vector<index_t> recv_count;

  /// ghost_base[q]: x_full slot of the first ghost owned by peer q.
  std::vector<index_t> ghost_base;

  index_t full_size() const { return owned + ghosts; }

  /// Posts all sends for this exchange (gathers owned values into message
  /// buffers). Split from complete() so executors can overlap computation
  /// with communication the way the BlockSolve library does.
  void post(runtime::Process& p, ConstVectorView x_full, int tag) const;

  /// Receives all ghost values into x_full's ghost region.
  void complete(runtime::Process& p, VectorView x_full, int tag) const;

  /// post + complete back-to-back (the non-overlapping executor).
  void exchange(runtime::Process& p, VectorView x_full, int tag) const;

  /// Multi-vector exchange for SpMM: x_block is (full_size x width)
  /// row-major; whole rows travel, so one schedule serves any number of
  /// right-hand sides (the amortization that makes the skinny-dense
  /// product attractive).
  void exchange_block(runtime::Process& p, VectorView x_block, index_t width,
                      int tag) const;

  /// The REVERSE of exchange(): ghost-region values travel back to their
  /// owners and are ADDED into the owned entries the schedule's send lists
  /// name. This turns a gather schedule into a scatter-add schedule — the
  /// communication pattern of the transpose product y = A^T x on
  /// row-distributed storage.
  void reverse_exchange_add(runtime::Process& p, VectorView x_full,
                            int tag) const;

  void validate() const;
};

}  // namespace bernoulli::spmd
