// Cost-model validation: the planner's estimates vs. what the executor
// measured ("how wrong was the cost model, level by level?").
//
// The paper's thesis stands or falls on the cost model — the planner
// picks join orders by comparing est_iterations/est_cost across candidate
// plans (compiler/plan.hpp documents the conventions). Both execution
// engines book identical per-level measured stats (RunStats: enumerated/
// produced per level, asserted equal by tests/exec_linked_test.cpp), so
// the estimate and the measurement are directly joinable per plan level.
// This module performs that join and scores the result, turning silent
// cost-model drift into a number a test or a CI gate can threshold.
//
// Scoring. Plan::est_iterations is PER ENCLOSING ITERATION, so the
// absolute expected binding count at level d is the product of
// est_iterations through levels 0..d — that is what measured `produced`
// counts. The per-level ratio is (est_cumulative + 1) / (produced + 1)
// (the +1 smooths empty levels), the per-level error is |log2 ratio|
// (symmetric: 2x over- and 2x under-estimation both score 1), and the
// report's error_score is the worst level's error. A correct model on a
// representative input scores well under 1; a planner fed garbage
// statistics scores in the several-bits range (thresholds asserted by
// tests/analysis_test.cpp with a deliberately mis-costed fixture).
//
// A second entry point joins a parsed bernoulli.explain.v1 document
// (compiler/explain.hpp) against the same measurements, so reports can be
// checked offline from artifacts alone.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "compiler/executor.hpp"
#include "compiler/plan.hpp"
#include "support/json_reader.hpp"

namespace bernoulli::analysis {

struct LevelCheck {
  std::string var;
  std::string method;  // "enumerate" | "merge"
  // Estimated (from the plan / EXPLAIN document):
  double est_iterations = 0.0;  // per enclosing iteration
  double est_cost = 0.0;
  double est_produced = 0.0;  // cumulative product: absolute estimate
  // Measured (from RunStats, identical across both engines):
  long long enumerated = 0;
  long long produced = 0;
  double measured_fanout = 0.0;  // produced[d] / max(1, produced[d-1])
  // The join:
  double ratio = 0.0;           // (est_produced + 1) / (produced + 1)
  double abs_log2_error = 0.0;  // |log2 ratio|
};

struct ModelCheckReport {
  std::vector<LevelCheck> levels;  // one per plan level, outermost first
  double error_score = 0.0;        // max abs_log2_error over levels
  double total_cost_est = 0.0;     // the planner's absolute cost estimate
  long long tuples_measured = 0;   // innermost produced count
};

/// Joins a plan's estimates against one run's measured stats. The stats
/// must come from a run of THIS plan (level counts must match).
ModelCheckReport model_check(const compiler::Plan& plan,
                             const compiler::RunStats& stats);

/// Same join from a parsed bernoulli.explain.v1 document, for offline
/// checking of report artifacts.
ModelCheckReport model_check(const support::JsonValue& explain_doc,
                             std::span<const compiler::LevelRunStats> levels,
                             long long tuples);

/// Aligned text table, one row per level, error score last.
std::string model_check_text(const ModelCheckReport& r);

/// JSON object (spliced into bernoulli.run.v1 reports):
///   {"error_score": x, "total_cost_est": c, "tuples_measured": n,
///    "levels": [{"var": ..., "est_produced": ..., "produced": ...,
///                "ratio": ..., "abs_log2_error": ...}, ...]}
std::string model_check_json(const ModelCheckReport& r, int indent = 0);

}  // namespace bernoulli::analysis
