#include "analysis/model_check.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/error.hpp"
#include "support/json_writer.hpp"

namespace bernoulli::analysis {

namespace {

struct LevelEstimate {
  std::string var;
  std::string method;
  double est_iterations = 0.0;
  double est_cost = 0.0;
};

ModelCheckReport join_levels(const std::vector<LevelEstimate>& est,
                             std::span<const compiler::LevelRunStats> meas,
                             double total_cost, long long tuples) {
  BERNOULLI_CHECK_MSG(est.size() == meas.size(),
                      "model check: plan has " << est.size()
                                               << " levels but measured stats"
                                                  " have "
                                               << meas.size());
  ModelCheckReport out;
  out.total_cost_est = total_cost;
  out.tuples_measured = tuples;
  double cumulative = 1.0;
  long long prev_produced = 1;
  for (std::size_t d = 0; d < est.size(); ++d) {
    LevelCheck lc;
    lc.var = est[d].var;
    lc.method = est[d].method;
    lc.est_iterations = est[d].est_iterations;
    lc.est_cost = est[d].est_cost;
    cumulative *= est[d].est_iterations;
    lc.est_produced = cumulative;
    lc.enumerated = meas[d].enumerated;
    lc.produced = meas[d].produced;
    lc.measured_fanout = static_cast<double>(meas[d].produced) /
                         static_cast<double>(std::max<long long>(1,
                                                                 prev_produced));
    prev_produced = meas[d].produced;
    lc.ratio = (lc.est_produced + 1.0) /
               (static_cast<double>(lc.produced) + 1.0);
    lc.abs_log2_error = std::fabs(std::log2(lc.ratio));
    out.error_score = std::max(out.error_score, lc.abs_log2_error);
    out.levels.push_back(std::move(lc));
  }
  return out;
}

}  // namespace

ModelCheckReport model_check(const compiler::Plan& plan,
                             const compiler::RunStats& stats) {
  std::vector<LevelEstimate> est;
  est.reserve(plan.levels.size());
  for (const auto& level : plan.levels)
    est.push_back({level.var,
                   level.method == compiler::JoinMethod::kMerge ? "merge"
                                                                : "enumerate",
                   level.est_iterations, level.est_cost});
  return join_levels(est, stats.levels, plan.total_cost, stats.tuples);
}

ModelCheckReport model_check(const support::JsonValue& explain_doc,
                             std::span<const compiler::LevelRunStats> levels,
                             long long tuples) {
  const support::JsonValue* schema = explain_doc.find("schema");
  BERNOULLI_CHECK_MSG(schema &&
                          schema->as_string() == "bernoulli.explain.v1",
                      "model check: not a bernoulli.explain.v1 document");
  const support::JsonValue* doc_levels = explain_doc.find("levels");
  BERNOULLI_CHECK_MSG(doc_levels && doc_levels->is_array(),
                      "model check: explain document has no levels array");
  std::vector<LevelEstimate> est;
  est.reserve(doc_levels->items.size());
  for (const support::JsonValue& lv : doc_levels->items) {
    LevelEstimate e;
    e.var = lv.find("var")->as_string();
    e.method = lv.find("method")->as_string();
    e.est_iterations = lv.find("est_iterations")->as_number();
    e.est_cost = lv.find("est_cost")->as_number();
    est.push_back(std::move(e));
  }
  const support::JsonValue* total = explain_doc.find("total_cost");
  return join_levels(est, levels, total ? total->as_number() : 0.0, tuples);
}

std::string model_check_text(const ModelCheckReport& r) {
  std::ostringstream os;
  char line[200];
  std::snprintf(line, sizeof(line), "  %-10s %-9s %14s %14s %10s %8s\n",
                "var", "method", "est_produced", "produced", "ratio",
                "|log2|");
  os << line;
  for (const auto& lc : r.levels) {
    std::snprintf(line, sizeof(line),
                  "  %-10s %-9s %14.1f %14lld %10.3f %8.3f\n", lc.var.c_str(),
                  lc.method.c_str(), lc.est_produced, lc.produced, lc.ratio,
                  lc.abs_log2_error);
    os << line;
  }
  std::snprintf(line, sizeof(line),
                "  error score = %.3f bits (worst level), %lld tuples, "
                "est total cost %.1f\n",
                r.error_score, r.tuples_measured, r.total_cost_est);
  os << line;
  return os.str();
}

std::string model_check_json(const ModelCheckReport& r, int indent) {
  support::JsonWriter w(indent);
  w.begin_object();
  w.key("error_score").value(r.error_score);
  w.key("total_cost_est").value(r.total_cost_est);
  w.key("tuples_measured").value(r.tuples_measured);
  w.key("levels").begin_array();
  for (const auto& lc : r.levels) {
    w.begin_object();
    w.key("var").value(lc.var);
    w.key("method").value(lc.method);
    w.key("est_iterations").value(lc.est_iterations);
    w.key("est_cost").value(lc.est_cost);
    w.key("est_produced").value(lc.est_produced);
    w.key("enumerated").value(lc.enumerated);
    w.key("produced").value(lc.produced);
    w.key("measured_fanout").value(lc.measured_fanout);
    w.key("ratio").value(lc.ratio);
    w.key("abs_log2_error").value(lc.abs_log2_error);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace bernoulli::analysis
