#include "analysis/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/attribution.hpp"
#include "support/counters.hpp"
#include "support/error.hpp"
#include "support/histogram.hpp"
#include "support/json_writer.hpp"
#include "support/metrics.hpp"
#include "support/profile.hpp"
#include "support/trace.hpp"

namespace bernoulli::analysis {

RunReport::RunReport(std::string tool) : tool_(std::move(tool)) {}

RunReport::~RunReport() {
  if (observing_) clear_solve_hooks();
}

void RunReport::config(const std::string& key, const std::string& value) {
  config_.emplace_back(key, value);
}

void RunReport::config(const std::string& key, long long value) {
  config_.emplace_back(key, std::to_string(value));
}

void RunReport::metric(const std::string& name, double value) {
  metrics_.emplace_back(name, value);
}

void RunReport::add_plan(const std::string& name, std::string explain_json) {
  plans_.emplace_back(name, std::move(explain_json));
}

void RunReport::add_model_check(const std::string& name,
                                const ModelCheckReport& mc) {
  checks_.emplace_back(name, model_check_json(mc));
}

void RunReport::add_comm_check(const std::string& name, const CommCheck& cc) {
  comm_checks_.emplace_back(name, cc);
}

void RunReport::add_roofline(const RooflineEntry& entry) {
  roofline_.push_back(entry);
}

void RunReport::set_critical_path(const CriticalPathReport& cp) {
  critical_path_json_ = critical_path_json(cp);
}

void RunReport::observe_solves() {
  observing_ = true;
  SolveHooks hooks;
  // Every simulated rank notifies concurrently; the recorder serializes.
  hooks.post = [this](const SolveRecord& rec) {
    std::lock_guard<std::mutex> lk(solves_mu_);
    solves_.push_back(rec);
  };
  set_solve_hooks(std::move(hooks));
}

std::string RunReport::json(int indent) const {
  support::JsonWriter w(indent);
  w.begin_object();
  w.key("schema").value("bernoulli.run.v1");
  w.key("tool").value(tool_);

  w.key("build").begin_object();
#if defined(__VERSION__)
  w.key("compiler").value(__VERSION__);
#else
  w.key("compiler").value("unknown");
#endif
  w.key("standard").value(static_cast<long long>(__cplusplus));
#if defined(NDEBUG)
  w.key("assertions").value(false);
#else
  w.key("assertions").value(true);
#endif
  w.end_object();

  w.key("config").begin_object();
  for (const auto& [k, v] : config_) w.key(k).value(v);
  w.end_object();

  w.key("metrics").begin_object();
  for (const auto& [k, v] : metrics_) w.key(k).value(v);
  w.end_object();

  w.key("plans").begin_object();
  for (const auto& [k, v] : plans_) w.key(k).raw(v);
  w.end_object();

  w.key("model_checks").begin_object();
  for (const auto& [k, v] : checks_) w.key(k).raw(v);
  w.end_object();

  w.key("comm_checks").begin_object();
  for (const auto& [k, cc] : comm_checks_) {
    w.key(k).begin_object();
    w.key("predicted_messages").value(cc.predicted_messages);
    w.key("predicted_bytes").value(cc.predicted_bytes);
    w.key("measured_messages").value(cc.measured_messages);
    w.key("measured_bytes").value(cc.measured_bytes);
    w.key("match").value(cc.match());
    w.end_object();
  }
  w.end_object();

  w.key("roofline").begin_array();
  for (const RooflineEntry& e : roofline_) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("bytes").value(e.bytes);
    w.key("flops").value(e.flops);
    w.key("seconds").value(e.seconds);
    w.key("arithmetic_intensity").value(e.arithmetic_intensity());
    w.key("achieved_bytes_per_s").value(e.achieved_bytes_per_s());
    w.key("achieved_flops_per_s").value(e.achieved_flops_per_s());
    w.key("peak_bytes_per_s").value(e.peak_bytes_per_s);
    w.key("peak_flops_per_s").value(e.peak_flops_per_s);
    w.key("roof_flops_per_s").value(e.roof_flops_per_s());
    w.key("fraction_of_roof").value(e.fraction_of_roof());
    w.key("exact").value(e.exact);
    w.end_object();
  }
  w.end_array();

  {
    std::lock_guard<std::mutex> lk(solves_mu_);
    w.key("solves").begin_array();
    // Deterministic order: ranks finish in arbitrary order, so sort.
    std::vector<const SolveRecord*> sorted;
    sorted.reserve(solves_.size());
    for (const auto& s : solves_) sorted.push_back(&s);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const SolveRecord* a, const SolveRecord* b) {
                       return a->rank < b->rank;
                     });
    for (const SolveRecord* s : sorted) {
      w.begin_object();
      w.key("solver").value(s->solver);
      w.key("rank").value(s->rank);
      w.key("nprocs").value(s->nprocs);
      w.key("iterations").value(s->iterations);
      w.key("residual_norm").value(s->residual_norm);
      w.key("converged").value(s->converged);
      w.key("messages").value(s->messages);
      w.key("bytes").value(s->bytes);
      w.key("vtime_s").value(s->vtime_s);
      w.key("plan");
      if (s->plan_explain_json.empty())
        w.raw("null");
      else
        w.raw(s->plan_explain_json);
      w.end_object();
    }
    w.end_array();
  }

  w.key("critical_path");
  if (critical_path_json_.empty())
    w.raw("null");
  else
    w.raw(critical_path_json_);

  // Registry snapshots, taken now (build the report after obs_end()).
  w.key("comm_matrix").raw(support::comm_matrix_json());
  w.key("histograms").raw(support::histograms_json());
  w.key("counters").raw(support::counters_json());
  // The serving-metrics registry (support/metrics.hpp), embedded as its
  // own schema so metrics-only consumers can lift the block out verbatim.
  w.key("metrics_registry").raw(support::metrics_json());
  // Per-level time attribution (support/profile.hpp): a
  // bernoulli.profile.v1 block when the run profiled, "{}" otherwise —
  // the block `bernoulli_report profile` renders and diffs.
  w.key("profile_registry").raw(support::profile_json());
  w.end_object();

  std::string out = w.str();
  // The report must round-trip: a document we cannot re-read is a bug
  // here, not in the consumer. json_parse throws on any violation.
  support::json_parse(out);
  return out;
}

void RunReport::write(const std::string& path) const {
  std::string doc = json();
  std::ofstream out(path, std::ios::binary);
  BERNOULLI_CHECK_MSG(out.good(), "cannot open report file: " << path);
  out << doc << "\n";
  BERNOULLI_CHECK_MSG(out.good(), "short write to report file: " << path);
  std::cerr << "report: " << path << " (bernoulli.run.v1, " << doc.size()
            << " bytes)\n";
}

// ---- reading / diffing ------------------------------------------------

namespace {

using support::JsonValue;

const std::string& doc_schema(const JsonValue& doc) {
  const JsonValue* schema = doc.find("schema");
  BERNOULLI_CHECK_MSG(schema, "document has no schema field");
  return schema->as_string();
}

}  // namespace

std::map<std::string, double> report_metrics(const JsonValue& doc) {
  std::map<std::string, double> out;
  const std::string& schema = doc_schema(doc);
  if (schema == "bernoulli.run.v1") {
    const JsonValue* metrics = doc.find("metrics");
    BERNOULLI_CHECK_MSG(metrics && metrics->is_object(),
                        "run report has no metrics object");
    for (const auto& [name, v] : metrics->members) out[name] = v.as_number();
    return out;
  }
  if (schema == "bernoulli.bench.exec.v1") {
    // Derive the same metric names the engine benches emit in run.v1
    // reports, so a fresh --report run diffs against the committed
    // BENCH_exec.json snapshot.
    const JsonValue* cases = doc.find("cases");
    BERNOULLI_CHECK_MSG(cases && cases->is_array(),
                        "exec snapshot has no cases array");
    for (const JsonValue& c : cases->items) {
      std::string base = "exec." + c.find("matrix")->as_string() + "." +
                         c.find("format")->as_string();
      if (const JsonValue* engines = c.find("engines"))
        for (const auto& [engine, timing] : engines->members)
          if (const JsonValue* ns = timing.find("ns_per_nnz"))
            out[base + "." + engine + ".ns_per_nnz"] = ns->as_number();
      for (const char* key : {"speedup_linked_over_interpreted",
                              "slowdown_linked_vs_kernel",
                              "slowdown_specialized_vs_kernel",
                              "speedup_linked_threaded_over_serial",
                              "speedup_bcsr_vs_crs_linked",
                              "speedup_sell_vs_crs_linked"})
        if (const JsonValue* v = c.find(key))
          out[base + "." + key] = v->as_number();
    }
    // Optional serving section (bench_serve --exec-json=): every numeric
    // member becomes exec.serve.<key>, same names bench_serve's run.v1
    // report emits, so serve snapshots diff/regress like engine ones.
    if (const JsonValue* serve = doc.find("serve"))
      for (const auto& [key, v] : serve->members)
        if (v.type == JsonValue::Type::kNumber)
          out["exec.serve." + key] = v.as_number();
    return out;
  }
  BERNOULLI_CHECK_MSG(false, "cannot extract metrics from schema '"
                                 << schema << "'");
  return out;
}

DiffResult diff_reports(const JsonValue& base, const JsonValue& current,
                        double tolerance, const std::string& metric_filter) {
  auto mb = report_metrics(base);
  auto mc = report_metrics(current);
  DiffResult out;
  for (const auto& [name, bval] : mb) {
    auto it = mc.find(name);
    if (it == mc.end()) continue;
    if (!metric_filter.empty() &&
        name.find(metric_filter) == std::string::npos)
      continue;
    MetricDiff d;
    d.name = name;
    d.base = bval;
    d.current = it->second;
    d.higher_is_better = name.find("speedup") != std::string::npos;
    const double denom = std::max(std::fabs(bval), 1e-300);
    d.rel_change = d.higher_is_better ? (bval - d.current) / denom
                                      : (d.current - bval) / denom;
    d.regressed = d.rel_change > tolerance;
    out.compared += 1;
    out.regressions += d.regressed ? 1 : 0;
    out.metrics.push_back(std::move(d));
  }
  return out;
}

std::string diff_text(const DiffResult& d, double tolerance,
                      bool only_changed) {
  std::ostringstream os;
  char line[240];
  std::snprintf(line, sizeof(line), "%-55s %12s %12s %9s\n", "metric", "base",
                "current", "change");
  os << line;
  int suppressed = 0;
  for (const auto& m : d.metrics) {
    if (only_changed && !m.regressed &&
        std::fabs(m.rel_change) <= tolerance) {
      ++suppressed;
      continue;
    }
    std::snprintf(line, sizeof(line), "%-55s %12.4g %12.4g %+8.1f%%%s\n",
                  m.name.c_str(), m.base, m.current,
                  100.0 * (m.higher_is_better ? -m.rel_change : m.rel_change),
                  m.regressed ? "  REGRESSED" : "");
    os << line;
  }
  if (suppressed > 0)
    os << "(" << suppressed << " metric(s) within tolerance not shown)\n";
  std::snprintf(line, sizeof(line),
                "%d metrics compared, %d regression(s) at tolerance %.0f%%\n",
                d.compared, d.regressions, 100.0 * tolerance);
  os << line;
  if (d.compared == 0)
    os << "error: the reports share no comparable metrics\n";
  return os.str();
}

// ---- the run ledger ---------------------------------------------------

void ledger_append(const std::string& ledger_path,
                   const std::string& report_json) {
  // Validate before writing: a malformed entry would poison every later
  // trend/regress read of the ledger.
  support::json_parse(report_json);
  std::string line;
  line.reserve(report_json.size());
  for (char c : report_json)
    if (c != '\n' && c != '\r') line += c;
  std::ofstream out(ledger_path, std::ios::binary | std::ios::app);
  BERNOULLI_CHECK_MSG(out.good(), "cannot open ledger: " << ledger_path);
  out << line << "\n";
  BERNOULLI_CHECK_MSG(out.good(), "short write to ledger: " << ledger_path);
}

std::vector<support::JsonValue> ledger_read(const std::string& ledger_path) {
  std::ifstream in(ledger_path, std::ios::binary);
  BERNOULLI_CHECK_MSG(in.good(), "cannot read ledger: " << ledger_path);
  std::vector<support::JsonValue> entries;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      entries.push_back(support::json_parse(line));
    } catch (const std::exception& e) {
      BERNOULLI_CHECK_MSG(false, "ledger " << ledger_path << " line "
                                           << lineno << ": " << e.what());
    }
  }
  return entries;
}

std::string ledger_trend_text(const std::vector<support::JsonValue>& entries,
                              const std::string& metric_filter) {
  std::ostringstream os;
  os << "ledger: " << entries.size() << " entries\n";
  if (entries.empty()) return os.str();
  // Union of matching metric names across entries; a metric absent from an
  // entry prints "-" so trajectories stay column-aligned.
  std::vector<std::map<std::string, double>> per_entry;
  per_entry.reserve(entries.size());
  std::map<std::string, int> names;  // name -> #entries present
  for (const auto& doc : entries) {
    per_entry.push_back(report_metrics(doc));
    for (const auto& [name, v] : per_entry.back())
      if (metric_filter.empty() || name.find(metric_filter) != std::string::npos)
        ++names[name];
  }
  if (names.empty()) {
    os << "no metrics match filter '" << metric_filter << "'\n";
    return os.str();
  }
  for (const auto& [name, present] : names) {
    os << name << ":";
    double first = 0.0, last = 0.0;
    bool have_first = false;
    for (const auto& m : per_entry) {
      auto it = m.find(name);
      if (it == m.end()) {
        os << " -";
        continue;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), " %.4g", it->second);
      os << buf;
      if (!have_first) {
        first = it->second;
        have_first = true;
      }
      last = it->second;
    }
    if (have_first && first != 0.0) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "  (%+.1f%% first->last)",
                    100.0 * (last - first) / std::fabs(first));
      os << buf;
    }
    os << "\n";
  }
  return os.str();
}

namespace {

void render_model_check(std::ostream& os, const std::string& name,
                        const JsonValue& mc) {
  os << "model check: " << name << "\n";
  char line[200];
  std::snprintf(line, sizeof(line), "  %-10s %-9s %14s %14s %10s %8s\n",
                "var", "method", "est_produced", "produced", "ratio",
                "|log2|");
  os << line;
  if (const JsonValue* levels = mc.find("levels"))
    for (const JsonValue& lv : levels->items) {
      std::snprintf(line, sizeof(line),
                    "  %-10s %-9s %14.1f %14lld %10.3f %8.3f\n",
                    lv.find("var")->as_string().c_str(),
                    lv.find("method")->as_string().c_str(),
                    lv.find("est_produced")->as_number(),
                    static_cast<long long>(lv.find("produced")->as_number()),
                    lv.find("ratio")->as_number(),
                    lv.find("abs_log2_error")->as_number());
      os << line;
    }
  std::snprintf(line, sizeof(line), "  error score = %.3f bits\n",
                mc.find("error_score")->as_number());
  os << line;
}

void render_critical_path(std::ostream& os, const JsonValue& cp) {
  const int nprocs = static_cast<int>(cp.find("nprocs")->as_number());
  if (nprocs == 0) {
    os << "critical path: (no machine run recorded)\n";
    return;
  }
  char line[200];
  std::snprintf(line, sizeof(line),
                "critical path: %d ranks, total %.3f us, imbalance "
                "max/mean compute %.3f, idle fraction %.3f\n",
                nprocs, cp.find("total_us")->as_number(),
                cp.find("max_over_mean_compute")->as_number(),
                cp.find("idle_fraction")->as_number());
  os << line;
  std::snprintf(line, sizeof(line), "  %4s %12s %12s %12s %12s %12s\n",
                "rank", "finish_us", "compute_us", "comm_us", "idle_us",
                "slack_us");
  os << line;
  for (const JsonValue& rb : cp.find("ranks")->items) {
    std::snprintf(line, sizeof(line),
                  "  %4d %12.3f %12.3f %12.3f %12.3f %12.3f\n",
                  static_cast<int>(rb.find("rank")->as_number()),
                  rb.find("finish_us")->as_number(),
                  rb.find("compute_us")->as_number(),
                  rb.find("comm_us")->as_number(),
                  rb.find("idle_us")->as_number(),
                  rb.find("slack_us")->as_number());
    os << line;
  }
  const auto& steps = cp.find("steps")->items;
  os << "  path (" << steps.size() << " steps):\n";
  for (const JsonValue& s : steps) {
    std::snprintf(line, sizeof(line), "    [%10.3f, %10.3f] rank %d  %s",
                  s.find("t0_us")->as_number(), s.find("t1_us")->as_number(),
                  static_cast<int>(s.find("rank")->as_number()),
                  s.find("kind")->as_string().c_str());
    os << line;
    if (const JsonValue* from = s.find("from_rank"))
      os << " (rank " << static_cast<int>(from->as_number()) << ")";
    os << "\n";
  }
}

}  // namespace

std::string report_text(const JsonValue& doc) {
  std::ostringstream os;
  const std::string& schema = doc_schema(doc);
  if (schema == "bernoulli.bench.exec.v1") {
    os << "bernoulli.bench.exec.v1 snapshot\n";
    for (const auto& [name, v] : report_metrics(doc)) {
      char line[200];
      std::snprintf(line, sizeof(line), "  %-55s %12.4g\n", name.c_str(), v);
      os << line;
    }
    return os.str();
  }
  BERNOULLI_CHECK_MSG(schema == "bernoulli.run.v1",
                      "cannot render schema '" << schema << "'");
  os << "run report: " << doc.find("tool")->as_string() << "\n";
  if (const JsonValue* build = doc.find("build"))
    if (const JsonValue* cc = build->find("compiler"))
      os << "  build: " << cc->as_string() << "\n";
  if (const JsonValue* config = doc.find("config"))
    for (const auto& [k, v] : config->members)
      os << "  config: " << k << " = " << v.as_string() << "\n";
  os << "\n";

  if (const JsonValue* metrics = doc.find("metrics"))
    if (!metrics->members.empty()) {
      os << "metrics:\n";
      for (const auto& [name, v] : metrics->members) {
        char line[200];
        std::snprintf(line, sizeof(line), "  %-55s %12.6g\n", name.c_str(),
                      v.as_number());
        os << line;
      }
      os << "\n";
    }

  if (const JsonValue* checks = doc.find("model_checks"))
    for (const auto& [name, mc] : checks->members) {
      render_model_check(os, name, mc);
      os << "\n";
    }

  if (const JsonValue* comm = doc.find("comm_checks"))
    for (const auto& [name, cc] : comm->members) {
      os << "comm check: " << name << ": predicted "
         << static_cast<long long>(
                cc.find("predicted_messages")->as_number())
         << " msgs / "
         << static_cast<long long>(cc.find("predicted_bytes")->as_number())
         << " B, measured "
         << static_cast<long long>(cc.find("measured_messages")->as_number())
         << " msgs / "
         << static_cast<long long>(cc.find("measured_bytes")->as_number())
         << " B"
         << (cc.find("match")->boolean ? " (match)" : " (MISMATCH)") << "\n";
    }

  if (const JsonValue* roofline = doc.find("roofline"))
    if (roofline->is_array() && !roofline->items.empty()) {
      os << "roofline (model peaks: "
         << roofline->items[0].find("peak_bytes_per_s")->as_number() / 1e9
         << " GB/s, "
         << roofline->items[0].find("peak_flops_per_s")->as_number() / 1e9
         << " GFLOP/s):\n";
      char line[240];
      std::snprintf(line, sizeof(line), "  %-34s %12s %10s %10s %10s %7s\n",
                    "engine", "bytes", "AI", "GB/s", "GFLOP/s", "roof%");
      os << line;
      for (const JsonValue& e : roofline->items) {
        std::snprintf(
            line, sizeof(line),
            "  %-34s %12lld %10.3f %10.3f %10.3f %6.1f%%%s\n",
            e.find("name")->as_string().c_str(),
            static_cast<long long>(e.find("bytes")->as_number()),
            e.find("arithmetic_intensity")->as_number(),
            e.find("achieved_bytes_per_s")->as_number() / 1e9,
            e.find("achieved_flops_per_s")->as_number() / 1e9,
            100.0 * e.find("fraction_of_roof")->as_number(),
            e.find("exact")->boolean ? "" : "  (inexact)");
        os << line;
      }
      os << "\n";
    }

  if (const JsonValue* solves = doc.find("solves"))
    if (!solves->items.empty()) {
      os << "solves (" << solves->items.size() << " rank-records):\n";
      for (const JsonValue& s : solves->items)
        os << "  rank " << static_cast<int>(s.find("rank")->as_number())
           << "/" << static_cast<int>(s.find("nprocs")->as_number()) << " "
           << s.find("solver")->as_string() << ": "
           << static_cast<int>(s.find("iterations")->as_number())
           << " iters, "
           << static_cast<long long>(s.find("messages")->as_number())
           << " msgs, "
           << static_cast<long long>(s.find("bytes")->as_number())
           << " bytes\n";
      os << "\n";
    }

  if (const JsonValue* cp = doc.find("critical_path"))
    if (cp->is_object()) render_critical_path(os, *cp);

  if (const JsonValue* prof = doc.find("profile_registry"))
    if (profile_block_nonempty(*prof)) os << "\n" << profile_table_text(*prof);
  return os.str();
}

}  // namespace bernoulli::analysis
