// Solver observation hooks: pre/post callbacks around compiled solver
// runs, so a run report can capture per-rank solve records (plan EXPLAIN
// JSON, iterations, residual, comm deltas, virtual time) without the
// solver knowing anything about reports.
//
// solvers::dist_cg_compiled notifies these hooks once per RANK per solve
// (every simulated rank calls the solver collectively), so observers MUST
// be thread-safe — analysis::RunReport::observe_solves() installs a
// mutex-guarded recorder. Hooks are process-global; installing a new pair
// replaces the previous one. When no hooks are installed the notify path
// is one atomic load — solvers stay free.
#pragma once

#include <functional>
#include <string>

namespace bernoulli::analysis {

/// One rank's view of one solve.
struct SolveRecord {
  std::string solver;  // "dist_cg_compiled"
  int rank = 0;
  int nprocs = 0;
  std::string plan_explain_json;  // bernoulli.explain.v1 for the kernel
  // Filled for the post notification:
  int iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
  long long messages = 0;  // CommStats deltas over the solve, this rank
  long long bytes = 0;
  double vtime_s = 0.0;  // virtual time the solve took on this rank
};

struct SolveHooks {
  std::function<void(const SolveRecord&)> pre;   // before the first iteration
  std::function<void(const SolveRecord&)> post;  // after convergence/exit
};

/// Installs (replacing) / removes the process-global hook pair.
void set_solve_hooks(SolveHooks hooks);
void clear_solve_hooks();

/// True when any hook is installed (one relaxed atomic load).
bool solve_hooks_active();

/// Called by instrumented solvers; no-ops when inactive. Callbacks run on
/// the caller's thread (a simulated rank) without any analysis lock held.
void notify_solve_pre(const SolveRecord& rec);
void notify_solve_post(const SolveRecord& rec);

}  // namespace bernoulli::analysis
