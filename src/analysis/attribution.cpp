#include "analysis/attribution.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace bernoulli::analysis {

namespace {

using support::JsonValue;

double num_or(const JsonValue& obj, const char* key, double fallback) {
  const JsonValue* v = obj.find(key);
  if (!v || v->type != JsonValue::Type::kNumber) return fallback;
  return v->number;
}

std::string str_or(const JsonValue& obj, const char* key,
                   const char* fallback) {
  const JsonValue* v = obj.find(key);
  if (!v || v->type != JsonValue::Type::kString) return fallback;
  return v->str;
}

std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

void pad_to(std::string& line, std::size_t col) {
  while (line.size() < col) line += ' ';
}

}  // namespace

bool profile_block_nonempty(const JsonValue& profile) {
  if (!profile.is_object()) return false;
  const JsonValue* schema = profile.find("schema");
  return schema && schema->type == JsonValue::Type::kString &&
         schema->str == "bernoulli.profile.v1";
}

std::string profile_table_text(const JsonValue& profile) {
  if (!profile_block_nonempty(profile)) return "";
  const double runs = num_or(profile, "runs", 0);
  const double wall_ns = num_or(profile, "wall_ns", 0);
  const double total_self = num_or(profile, "total_self_ns", 0);
  const double timer_cost = num_or(profile, "timer_cost_ns", 0);
  const double attributed =
      wall_ns > 0 ? 100.0 * total_self / wall_ns : 0.0;

  std::string out = "per-level time attribution: " +
                    fmt("%.0f", runs) + " runs, wall " +
                    fmt("%.3e", wall_ns * 1e-9) + " s, " +
                    fmt("%.1f", attributed) + "% attributed, timer cost " +
                    fmt("%.0f", timer_cost) + " ns\n";
  out += "  level        self_ns   % run          work    ns/work  kinds\n";

  const JsonValue* levels = profile.find("levels");
  if (levels && levels->is_array()) {
    for (const JsonValue& lvl : levels->items) {
      if (!lvl.is_object()) continue;
      const double d = num_or(lvl, "level", 0);
      const double self_ns = num_or(lvl, "self_ns", 0);
      const double work = num_or(lvl, "work", 0);
      const double pct = wall_ns > 0 ? 100.0 * self_ns / wall_ns : 0.0;
      const double per_work = work > 0 ? self_ns / work : 0.0;

      std::string line = "  level" + fmt("%.0f", d);
      pad_to(line, 9);
      std::string cell = fmt("%.0f", self_ns);
      pad_to(line, 21 - std::min<std::size_t>(cell.size(), 12));
      line += cell;
      cell = fmt("%.1f", pct);
      pad_to(line, 29 - std::min<std::size_t>(cell.size(), 7));
      line += cell;
      cell = fmt("%.0f", work);
      pad_to(line, 43 - std::min<std::size_t>(cell.size(), 13));
      line += cell;
      cell = fmt("%.1f", per_work);
      pad_to(line, 54 - std::min<std::size_t>(cell.size(), 10));
      line += cell;
      line += "  ";

      // Kind mix, largest share of this level's self time first.
      const JsonValue* kinds = lvl.find("kinds");
      std::vector<std::pair<double, std::string>> mix;
      if (kinds && kinds->is_array()) {
        for (const JsonValue& k : kinds->items) {
          if (!k.is_object()) continue;
          mix.emplace_back(num_or(k, "self_ns", 0), str_or(k, "kind", "?"));
        }
      }
      std::stable_sort(mix.begin(), mix.end(),
                       [](const auto& a, const auto& b) {
                         return a.first > b.first;
                       });
      bool first = true;
      for (const auto& [kind_ns, kind_name] : mix) {
        if (!first) line += ", ";
        first = false;
        line += kind_name;
        if (self_ns > 0)
          line += " " + fmt("%.0f", 100.0 * kind_ns / self_ns) + "%";
      }
      if (mix.empty()) line += "-";
      out += line + "\n";
    }
  }

  const JsonValue* phases = profile.find("phases");
  if (phases && phases->is_array() && !phases->items.empty()) {
    std::string line = "  phases: ";
    bool first = true;
    for (const JsonValue& p : phases->items) {
      if (!p.is_object()) continue;
      if (!first) line += ", ";
      first = false;
      line += str_or(p, "phase", "?") + " " +
              fmt("%.3e", num_or(p, "ns", 0) * 1e-9) + " s (" +
              fmt("%.0f", num_or(p, "calls", 0)) + ")";
    }
    out += line + "\n";
  }
  return out;
}

std::vector<std::pair<std::string, double>> profile_flat_metrics(
    const JsonValue& profile) {
  std::vector<std::pair<std::string, double>> out;
  if (!profile_block_nonempty(profile)) return out;
  const JsonValue* levels = profile.find("levels");
  if (levels && levels->is_array()) {
    for (const JsonValue& lvl : levels->items) {
      if (!lvl.is_object()) continue;
      const std::string base =
          "profile.level" + fmt("%.0f", num_or(lvl, "level", 0));
      out.emplace_back(base + ".self_ns", num_or(lvl, "self_ns", 0));
      const JsonValue* kinds = lvl.find("kinds");
      if (!kinds || !kinds->is_array()) continue;
      for (const JsonValue& k : kinds->items) {
        if (!k.is_object()) continue;
        out.emplace_back(base + "." + str_or(k, "kind", "?") + ".self_ns",
                         num_or(k, "self_ns", 0));
      }
    }
  }
  const JsonValue* phases = profile.find("phases");
  if (phases && phases->is_array()) {
    for (const JsonValue& p : phases->items) {
      if (!p.is_object()) continue;
      out.emplace_back("profile.phase." + str_or(p, "phase", "?") + ".ns",
                       num_or(p, "ns", 0));
    }
  }
  return out;
}

std::string profile_diff_text(const JsonValue& base, const JsonValue& next,
                              std::size_t top_n) {
  const auto a = profile_flat_metrics(base);
  const auto b = profile_flat_metrics(next);
  if (a.empty() || b.empty()) return "";

  struct Delta {
    std::string name;
    double base_v;
    double next_v;
  };
  std::vector<Delta> deltas;
  for (const auto& [name, next_v] : b) {
    double base_v = 0.0;
    for (const auto& [bn, bv] : a)
      if (bn == name) {
        base_v = bv;
        break;
      }
    if (next_v != base_v) deltas.push_back({name, base_v, next_v});
  }
  if (deltas.empty()) return "";
  std::stable_sort(deltas.begin(), deltas.end(),
                   [](const Delta& x, const Delta& y) {
                     return std::fabs(x.next_v - x.base_v) >
                            std::fabs(y.next_v - y.base_v);
                   });
  if (deltas.size() > top_n) deltas.resize(top_n);

  std::string out;
  for (const Delta& d : deltas) {
    const double diff = d.next_v - d.base_v;
    std::string line = "  " + d.name;
    pad_to(line, 36);
    line += (diff >= 0 ? "+" : "") + fmt("%.0f", diff) + " ns";
    if (d.base_v > 0)
      line += " (" + std::string(diff >= 0 ? "+" : "") +
              fmt("%.1f", 100.0 * diff / d.base_v) + "%)";
    out += line + "\n";
  }
  return out;
}

}  // namespace bernoulli::analysis
