#include "analysis/critical_path.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "support/error.hpp"
#include "support/json_writer.hpp"
#include "support/trace.hpp"

namespace bernoulli::analysis {

namespace {

using support::JsonValue;

// The machine's primitive comm spans. Wrapper spans (alltoallv, exchange,
// spmv.apply, ...) overlap these on the same rank timeline and must not
// be counted — the primitives alone partition the rank's comm time.
enum class PrimKind { kSend, kRecv, kCollective };

bool primitive_kind(const std::string& name, PrimKind& kind) {
  if (name == "send") {
    kind = PrimKind::kSend;
    return true;
  }
  if (name == "recv") {
    kind = PrimKind::kRecv;
    return true;
  }
  if (name == "barrier" || name == "allreduce_sum" ||
      name == "allreduce_max") {
    kind = PrimKind::kCollective;
    return true;
  }
  return false;
}

struct Prim {
  PrimKind kind = PrimKind::kSend;
  std::string name;
  int rank = 0;
  double t0 = 0.0;
  double t1 = 0.0;
  long long bytes = 0;
  long long flow = -1;  // kRecv: matched flow id, -1 = self/untracked
};

double num_or(const JsonValue& ev, const char* key, double fallback) {
  const JsonValue* v = ev.find(key);
  return v && v->type == JsonValue::Type::kNumber ? v->number : fallback;
}

// Timestamps survive the JSON round trip bit-exactly (17-significant-digit
// writer), so rendezvous ends compare equal; the epsilon only guards
// against a future lossier transport.
constexpr double kTsEps = 5e-7;  // half a nanosecond, in microseconds
constexpr double kBlockEps = 1e-9;

}  // namespace

CriticalPathReport critical_path(const JsonValue& doc, int pid) {
  const JsonValue* events = doc.find("traceEvents");
  BERNOULLI_CHECK_MSG(events && events->is_array(),
                      "not a trace document: missing traceEvents array");

  CriticalPathReport out;

  // Pick the machine run: metadata process_name events carry the
  // registered name; machine pids are allocated monotonically, so the
  // LAST run is the highest machine pid.
  if (pid < 0) {
    for (const JsonValue& ev : events->items) {
      const JsonValue* ph = ev.find("ph");
      const JsonValue* name = ev.find("name");
      if (!ph || !name || ph->as_string() != "M" ||
          name->as_string() != "process_name")
        continue;
      const JsonValue* args = ev.find("args");
      const JsonValue* pname = args ? args->find("name") : nullptr;
      if (!pname || !pname->str.starts_with("machine")) continue;
      pid = std::max(pid, static_cast<int>(num_or(ev, "pid", -1)));
    }
    if (pid < 0) return out;  // no machine run in this trace
  }
  out.pid = pid;

  // Collect the per-rank span set, the comm primitives, and the flow
  // endpoints for that pid.
  std::map<int, double> finish;          // rank -> max span end
  std::vector<Prim> prims;               // all primitives, all ranks
  std::map<long long, std::pair<int, double>> flow_start;  // id -> (rank, ts)
  struct FlowEnd {
    long long id;
    int rank;
    double ts;
  };
  std::vector<FlowEnd> flow_ends;
  int max_tid = -1;

  for (const JsonValue& ev : events->items) {
    if (static_cast<int>(num_or(ev, "pid", -1)) != pid) continue;
    const JsonValue* ph = ev.find("ph");
    if (!ph) continue;
    const std::string& phase = ph->as_string();
    const int tid = static_cast<int>(num_or(ev, "tid", 0));
    if (phase == "M") {
      const JsonValue* name = ev.find("name");
      if (name && name->as_string() == "thread_name")
        max_tid = std::max(max_tid, tid);
      continue;
    }
    if (phase == "s" || phase == "f") {
      const JsonValue* id = ev.find("id");
      if (!id) continue;
      long long fid = static_cast<long long>(id->as_number());
      double ts = num_or(ev, "ts", 0.0);
      if (phase == "s")
        flow_start[fid] = {tid, ts};
      else
        flow_ends.push_back({fid, tid, ts});
      continue;
    }
    if (phase != "X") continue;
    max_tid = std::max(max_tid, tid);
    const double t0 = num_or(ev, "ts", 0.0);
    const double t1 = t0 + num_or(ev, "dur", 0.0);
    double& f = finish[tid];
    f = std::max(f, t1);
    const JsonValue* name = ev.find("name");
    PrimKind kind;
    if (!name || !primitive_kind(name->as_string(), kind)) continue;
    Prim p;
    p.kind = kind;
    p.name = name->as_string();
    p.rank = tid;
    p.t0 = t0;
    p.t1 = t1;
    const JsonValue* args = ev.find("args");
    if (const JsonValue* b = args ? args->find("bytes") : nullptr)
      p.bytes = static_cast<long long>(b->as_number());
    prims.push_back(std::move(p));
  }

  if (max_tid < 0) return out;  // machine registered but ran nothing
  out.nprocs = max_tid + 1;

  // Attach each flow finish to the recv span it terminates: the machine
  // emits the flow-finish event at exactly the recv span's end timestamp
  // on the same rank.
  for (const FlowEnd& fe : flow_ends) {
    Prim* best = nullptr;
    double best_gap = kTsEps;
    for (Prim& p : prims) {
      if (p.kind != PrimKind::kRecv || p.rank != fe.rank || p.flow >= 0)
        continue;
      double gap = std::fabs(p.t1 - fe.ts);
      if (gap <= best_gap) {
        best_gap = gap;
        best = &p;
      }
    }
    if (best) best->flow = fe.id;
  }

  // Per-rank primitive index, time-sorted, plus the breakdown.
  std::vector<std::vector<const Prim*>> by_rank(
      static_cast<std::size_t>(out.nprocs));
  out.ranks.resize(static_cast<std::size_t>(out.nprocs));
  for (int r = 0; r < out.nprocs; ++r) {
    out.ranks[static_cast<std::size_t>(r)].rank = r;
    auto it = finish.find(r);
    out.ranks[static_cast<std::size_t>(r)].finish_us =
        it == finish.end() ? 0.0 : it->second;
  }
  for (const Prim& p : prims) {
    auto& rb = out.ranks[static_cast<std::size_t>(p.rank)];
    const double dur = p.t1 - p.t0;
    switch (p.kind) {
      case PrimKind::kSend:
        rb.send_us += dur;
        ++rb.sent_messages;
        rb.sent_bytes += p.bytes;
        break;
      case PrimKind::kRecv: rb.recv_wait_us += dur; break;
      case PrimKind::kCollective: rb.collective_us += dur; break;
    }
    by_rank[static_cast<std::size_t>(p.rank)].push_back(&p);
  }
  for (auto& v : by_rank)
    std::sort(v.begin(), v.end(),
              [](const Prim* a, const Prim* b) { return a->t1 < b->t1; });

  double sum_compute = 0.0, max_compute = 0.0;
  double sum_idle = 0.0, sum_finish = 0.0;
  for (auto& rb : out.ranks) {
    rb.comm_us = rb.send_us + rb.recv_wait_us + rb.collective_us;
    rb.idle_us = rb.recv_wait_us + rb.collective_us;
    rb.compute_us = std::max(0.0, rb.finish_us - rb.comm_us);
    out.total_us = std::max(out.total_us, rb.finish_us);
    sum_compute += rb.compute_us;
    max_compute = std::max(max_compute, rb.compute_us);
    sum_idle += rb.idle_us;
    sum_finish += rb.finish_us;
  }
  for (auto& rb : out.ranks)
    rb.slack_us = out.total_us - rb.finish_us;
  if (sum_compute > 0.0)
    out.max_over_mean_compute =
        max_compute / (sum_compute / static_cast<double>(out.nprocs));
  if (sum_finish > 0.0) out.idle_fraction = sum_idle / sum_finish;

  // Backward walk from the last-finishing rank. At time t on rank r, the
  // rank was making local progress since the end of its latest BLOCKING
  // primitive (a recv that actually waited, or a collective): record that
  // compute segment, then hop the edge — a recv follows its flow arrow
  // back to the sender's send-completion timestamp; a collective jumps to
  // the slowest arriver (the rendezvous peer with the minimal span,
  // i.e. the rank everyone else waited for). Every hop strictly
  // decreases t, so the walk terminates at t == 0 of some rank.
  int r = 0;
  for (const auto& rb : out.ranks)
    if (rb.finish_us >= out.total_us - kTsEps) r = rb.rank;
  double t = out.total_us;
  std::vector<CriticalStep> steps;
  for (int guard = 0; guard < 1'000'000; ++guard) {
    const Prim* block = nullptr;
    for (const Prim* p : by_rank[static_cast<std::size_t>(r)]) {
      if (p->t1 > t + kTsEps) break;  // sorted by end time
      if (p->t1 - p->t0 <= kBlockEps) continue;  // did not actually wait
      if (p->kind == PrimKind::kSend) continue;  // overhead, not blocking
      if (p->kind == PrimKind::kRecv && p->flow < 0) continue;  // self-send
      block = p;  // latest qualifying so far
    }
    const double seg_start = block ? block->t1 : 0.0;
    if (t - seg_start > kBlockEps)
      steps.push_back({r, seg_start, t, "compute", -1});
    if (!block) break;
    if (block->kind == PrimKind::kRecv) {
      auto it = flow_start.find(block->flow);
      BERNOULLI_CHECK_MSG(it != flow_start.end(),
                          "recv flow " << block->flow
                                       << " has no matching flow start");
      steps.push_back(
          {r, it->second.second, block->t1, "recv", it->second.first});
      r = it->second.first;
      t = it->second.second;
    } else {
      // Rendezvous: all member spans end at the same timestamp; the
      // slowest arriver has the minimal span.
      const Prim* slowest = block;
      for (const Prim& p : prims) {
        if (p.kind != PrimKind::kCollective || p.name != block->name)
          continue;
        if (std::fabs(p.t1 - block->t1) > kTsEps) continue;
        if (p.t1 - p.t0 < slowest->t1 - slowest->t0) slowest = &p;
      }
      steps.push_back({r, slowest->t0, block->t1, block->name, slowest->rank});
      r = slowest->rank;
      t = slowest->t0;
    }
    if (t <= kBlockEps) break;
  }
  std::reverse(steps.begin(), steps.end());
  out.steps = std::move(steps);
  return out;
}

CriticalPathReport critical_path_from_text(const std::string& text,
                                           int pid) {
  return critical_path(support::json_parse(text), pid);
}

CriticalPathReport critical_path_from_file(const std::string& path,
                                           int pid) {
  std::ifstream in(path, std::ios::binary);
  BERNOULLI_CHECK_MSG(in.good(), "cannot open trace file: " << path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return critical_path_from_text(ss.str(), pid);
}

CriticalPathReport critical_path_current(int pid) {
  return critical_path_from_text(support::trace_json(), pid);
}

std::string critical_path_text(const CriticalPathReport& r) {
  std::ostringstream os;
  if (r.nprocs == 0) {
    os << "critical path: no machine run in trace\n";
    return os.str();
  }
  os << "critical path: machine pid " << r.pid << ", " << r.nprocs
     << " ranks, total " << r.total_us << " us (virtual)\n";
  char line[160];
  std::snprintf(line, sizeof(line), "  %4s %12s %12s %12s %12s %12s %8s\n",
                "rank", "finish_us", "compute_us", "comm_us", "idle_us",
                "slack_us", "sent_B");
  os << line;
  for (const auto& rb : r.ranks) {
    std::snprintf(line, sizeof(line),
                  "  %4d %12.3f %12.3f %12.3f %12.3f %12.3f %8lld\n", rb.rank,
                  rb.finish_us, rb.compute_us, rb.comm_us, rb.idle_us,
                  rb.slack_us, rb.sent_bytes);
    os << line;
  }
  std::snprintf(line, sizeof(line),
                "  imbalance max/mean compute = %.3f, idle fraction = %.3f\n",
                r.max_over_mean_compute, r.idle_fraction);
  os << line;
  os << "  path (" << r.steps.size() << " steps):\n";
  for (const auto& s : r.steps) {
    std::snprintf(line, sizeof(line), "    [%10.3f, %10.3f] rank %d  %s",
                  s.t0_us, s.t1_us, s.rank, s.kind.c_str());
    os << line;
    if (s.kind == "recv")
      os << " (message from rank " << s.from_rank << ")";
    else if (s.from_rank >= 0 && s.from_rank != s.rank)
      os << " (waited on rank " << s.from_rank << ")";
    os << "\n";
  }
  return os.str();
}

std::string critical_path_json(const CriticalPathReport& r, int indent) {
  support::JsonWriter w(indent);
  w.begin_object();
  w.key("pid").value(r.pid);
  w.key("nprocs").value(r.nprocs);
  w.key("total_us").value(r.total_us);
  w.key("max_over_mean_compute").value(r.max_over_mean_compute);
  w.key("idle_fraction").value(r.idle_fraction);
  w.key("ranks").begin_array();
  for (const auto& rb : r.ranks) {
    w.begin_object();
    w.key("rank").value(rb.rank);
    w.key("finish_us").value(rb.finish_us);
    w.key("compute_us").value(rb.compute_us);
    w.key("send_us").value(rb.send_us);
    w.key("recv_wait_us").value(rb.recv_wait_us);
    w.key("collective_us").value(rb.collective_us);
    w.key("comm_us").value(rb.comm_us);
    w.key("idle_us").value(rb.idle_us);
    w.key("slack_us").value(rb.slack_us);
    w.key("sent_messages").value(rb.sent_messages);
    w.key("sent_bytes").value(rb.sent_bytes);
    w.end_object();
  }
  w.end_array();
  w.key("steps").begin_array();
  for (const auto& s : r.steps) {
    w.begin_object();
    w.key("rank").value(s.rank);
    w.key("t0_us").value(s.t0_us);
    w.key("t1_us").value(s.t1_us);
    w.key("kind").value(s.kind);
    if (s.from_rank >= 0) w.key("from_rank").value(s.from_rank);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace bernoulli::analysis
