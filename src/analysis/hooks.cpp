#include "analysis/hooks.hpp"

#include <atomic>
#include <memory>
#include <mutex>

namespace bernoulli::analysis {

namespace {

std::mutex g_mu;
std::shared_ptr<const SolveHooks> g_hooks;  // guarded by g_mu
std::atomic<bool> g_active{false};

std::shared_ptr<const SolveHooks> current() {
  std::lock_guard<std::mutex> lk(g_mu);
  return g_hooks;
}

}  // namespace

void set_solve_hooks(SolveHooks hooks) {
  auto next = std::make_shared<const SolveHooks>(std::move(hooks));
  std::lock_guard<std::mutex> lk(g_mu);
  g_hooks = std::move(next);
  g_active.store(true, std::memory_order_release);
}

void clear_solve_hooks() {
  std::lock_guard<std::mutex> lk(g_mu);
  g_hooks.reset();
  g_active.store(false, std::memory_order_release);
}

bool solve_hooks_active() {
  return g_active.load(std::memory_order_acquire);
}

void notify_solve_pre(const SolveRecord& rec) {
  if (!solve_hooks_active()) return;
  // Grab a shared_ptr so a concurrent clear cannot free the hooks while a
  // rank is mid-callback; invoke without holding the registry lock.
  auto hooks = current();
  if (hooks && hooks->pre) hooks->pre(rec);
}

void notify_solve_post(const SolveRecord& rec) {
  if (!solve_hooks_active()) return;
  auto hooks = current();
  if (hooks && hooks->post) hooks->post(rec);
}

}  // namespace bernoulli::analysis
