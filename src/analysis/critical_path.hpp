// Critical-path analysis over exported span traces ("where did the
// virtual time go?").
//
// The simulated machine (runtime/machine.cpp) already emits everything a
// post-mortem scheduler view needs: one trace track per rank on VIRTUAL
// time, send/recv spans fed from the single comm-booking site, flow
// arrows pairing each cross-rank message's send completion with its recv,
// and collective spans that all end at the same rendezvous timestamp.
// This module rebuilds the per-rank event DAG from that trace — compute
// segments ordered by virtual clock within a rank, send->recv edges
// across ranks, rendezvous edges for collectives — and walks it backwards
// from the last-finishing rank to recover the critical path through one
// Machine::run, plus per-rank compute/comm/idle breakdowns and
// load-imbalance metrics.
//
// Works on both the in-memory trace (critical_path_current) and a
// previously exported bernoulli.trace.v1 file (critical_path_from_file,
// via support/json_reader) — the analysis only ever sees the parsed JSON
// document, so the two paths cannot diverge.
//
// Definitions (all times in virtual microseconds):
//   finish    max end timestamp of any span on the rank's track
//   comm      sum of the machine's PRIMITIVE comm spans: send, recv,
//             barrier, allreduce_sum, allreduce_max. Wrapper spans
//             (alltoallv, exchange, spmv.apply, ...) overlap primitives
//             on the same timeline and are deliberately excluded — they
//             would double-count.
//   idle      recv wait + collective wait (a rank inside recv/collective
//             is blocked on another rank; send latency is charged work)
//   compute   finish - comm (everything the rank did between primitives)
//   slack     total - finish (how much later the rank could have finished
//             without moving the critical path)
//   total     max finish over ranks == the critical path's end
#pragma once

#include <string>
#include <vector>

#include "support/json_reader.hpp"

namespace bernoulli::analysis {

struct RankBreakdown {
  int rank = 0;
  double finish_us = 0.0;
  double compute_us = 0.0;
  double send_us = 0.0;
  double recv_wait_us = 0.0;
  double collective_us = 0.0;
  double comm_us = 0.0;  // send + recv wait + collective
  double idle_us = 0.0;  // recv wait + collective
  double slack_us = 0.0;
  long long sent_messages = 0;  // summed from send-span args; reconciles
  long long sent_bytes = 0;     // exactly with CommStats / comm matrix
};

/// One hop of the critical path, earliest first. kind is "compute" (local
/// progress on `rank`, send overhead included), "recv" (message wait;
/// from_rank is the sender and [t0, t1] spans flow start to arrival), or
/// a collective name ("barrier", "allreduce_sum", "allreduce_max").
struct CriticalStep {
  int rank = 0;
  double t0_us = 0.0;
  double t1_us = 0.0;
  std::string kind;
  int from_rank = -1;  // "recv" steps: the sender
};

struct CriticalPathReport {
  int pid = 0;     // trace process id of the analyzed Machine::run
  int nprocs = 0;  // 0 = no machine run found in the trace
  double total_us = 0.0;
  std::vector<RankBreakdown> ranks;
  std::vector<CriticalStep> steps;
  // Load-imbalance metrics over the rank set.
  double max_over_mean_compute = 0.0;  // 1.0 = perfectly balanced
  double idle_fraction = 0.0;          // sum(idle) / sum(finish)
};

/// Analyzes one Machine::run inside a parsed bernoulli.trace.v1 document.
/// pid = -1 selects the LAST run (machine pids are allocated
/// monotonically, so that is the highest machine pid). Returns an empty
/// report (nprocs == 0) when the trace holds no machine run.
CriticalPathReport critical_path(const support::JsonValue& doc,
                                 int pid = -1);

/// Parses `text` (a bernoulli.trace.v1 document) and analyzes it.
CriticalPathReport critical_path_from_text(const std::string& text,
                                           int pid = -1);

/// Reads and analyzes a previously exported trace file.
CriticalPathReport critical_path_from_file(const std::string& path,
                                           int pid = -1);

/// Analyzes the in-memory trace buffers (call after trace_stop(); the
/// buffers survive until the next trace_start()).
CriticalPathReport critical_path_current(int pid = -1);

/// Human-readable rendering: per-rank table, imbalance metrics, then the
/// path hop by hop.
std::string critical_path_text(const CriticalPathReport& r);

/// JSON object (spliced into bernoulli.run.v1 reports):
///   {"pid": n, "nprocs": n, "total_us": t, "max_over_mean_compute": x,
///    "idle_fraction": x, "ranks": [{...}], "steps": [{...}]}
std::string critical_path_json(const CriticalPathReport& r, int indent = 0);

}  // namespace bernoulli::analysis
