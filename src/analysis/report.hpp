// Self-describing run reports (schema "bernoulli.run.v1") and the
// report-diff machinery behind tools/bernoulli_report.
//
// A run report is the one-file answer to "what did this run do?": it
// aggregates the observability artifacts that previously lived in
// separate bench epilogues — plan EXPLAIN JSON, the counter snapshot,
// histogram renders, the comm matrix, a critical-path summary, the
// cost-model check table, per-rank solve records, and build/config
// metadata — into a single JSON document written through
// support/json_writer and checked to round-trip through
// support/json_reader. Benches emit one with --report=<file>.
//
// Reports are deliberately timestamp-free: two runs of the same binary on
// the same input differ only where the measurement differs, so reports
// diff cleanly.
//
// Document shape:
//   {"schema": "bernoulli.run.v1", "tool": "...",
//    "build": {"compiler": ..., "standard": ..., "assertions": ...},
//    "config": {...},            // tool flags and parameters, as strings
//    "metrics": {"name": 1.5},   // flat numeric metrics; diffable
//    "plans": {"name": <bernoulli.explain.v1>},
//    "model_checks": {"name": <model_check_json>},
//    "comm_checks": {"name": {"predicted_*": n, "measured_*": n}},
//    "roofline": [{"name", "bytes", "flops", "seconds",
//                  "arithmetic_intensity", "achieved_*", "peak_*",
//                  "fraction_of_roof", "exact"}...],
//    "solves": [<SolveRecord>...],
//    "critical_path": <critical_path_json> | null,
//    "comm_matrix": {...}, "histograms": {...}, "counters": {...},
//    "metrics_registry": <bernoulli.metrics.v1>,
//    "profile_registry": <bernoulli.profile.v1> | {}}  // per-level time
//                        // attribution (support/profile.hpp); {} when the
//                        // run never enabled profiling
//
// The run LEDGER (bench/ledger.jsonl) makes runs accumulate: one report
// document per line (JSON forbids raw newlines in strings, so stripping
// '\n' from any valid document is lossless), appended by benches/CI via
// ledger_append or `bernoulli_report append`. `bernoulli_report trend`
// prints a metric's trajectory across entries; `bernoulli_report regress`
// diffs the newest entry against a committed baseline with a tolerance.
//
// Diffing. diff_reports() compares the flat metrics of two reports (the
// other sections are context, not comparison keys). Metric direction is
// inferred from the name: metrics containing "speedup" are
// higher-is-better, everything else (times, ns_per_nnz, error scores) is
// lower-is-better. A metric regresses when it worsens by more than
// `tolerance` relative; the CLI exits nonzero on any regression — and
// also when the reports share NO metrics, so a renamed metric cannot
// silently pass a gate. bernoulli.bench.exec.v1 snapshots
// (BENCH_exec.json) are accepted on either side by deriving the same
// "exec.<case>.<format>.<engine>.ns_per_nnz" / "...speedup_..." metric
// names the engine benches emit, which is what lets CI gate a fresh
// --report run against the committed trajectory.
#pragma once

#include <algorithm>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/critical_path.hpp"
#include "analysis/hooks.hpp"
#include "analysis/model_check.hpp"
#include "support/json_reader.hpp"

namespace bernoulli::analysis {

/// Predicted-vs-measured comm traffic for one phase (the estimate the
/// inspector's schedule implies vs. what CommStats booked).
struct CommCheck {
  long long predicted_messages = 0;
  long long predicted_bytes = 0;
  long long measured_messages = 0;
  long long measured_bytes = 0;
  bool match() const {
    return predicted_messages == measured_messages &&
           predicted_bytes == measured_bytes;
  }
};

/// One engine rung's position against the simulated machine's roofline:
/// the link-time data-movement footprint (bytes, flops — see
/// compiler::PlanFootprint) over the measured seconds, against the
/// CostModel peaks. All derived numbers are computed here so the JSON and
/// the text rendering cannot disagree.
struct RooflineEntry {
  std::string name;               // e.g. "psmsx.csr.linked"
  long long bytes = 0;            // static footprint bytes per run
  long long flops = 0;            // static footprint flops per run
  double seconds = 0.0;           // measured seconds per run
  double peak_bytes_per_s = 0.0;  // CostModel::bytes_per_s
  double peak_flops_per_s = 0.0;  // CostModel::flops_per_s
  bool exact = true;              // footprint proof held (PlanFootprint)

  double arithmetic_intensity() const {
    return bytes > 0 ? static_cast<double>(flops) / static_cast<double>(bytes)
                     : 0.0;
  }
  double achieved_bytes_per_s() const {
    return seconds > 0 ? static_cast<double>(bytes) / seconds : 0.0;
  }
  double achieved_flops_per_s() const {
    return seconds > 0 ? static_cast<double>(flops) / seconds : 0.0;
  }
  /// The model's attainable flop rate at this intensity:
  /// min(peak_flops, AI * peak_bandwidth).
  double roof_flops_per_s() const {
    const double bw_bound = arithmetic_intensity() * peak_bytes_per_s;
    return std::min(peak_flops_per_s, bw_bound);
  }
  double fraction_of_roof() const {
    const double roof = roof_flops_per_s();
    return roof > 0 ? achieved_flops_per_s() / roof : 0.0;
  }
};

/// Accumulates one run's artifacts, then renders/writes the document.
/// json()/write() snapshot the counter/histogram/comm-matrix registries
/// at call time, so build the report AFTER support::obs_end().
class RunReport {
 public:
  explicit RunReport(std::string tool);
  ~RunReport();  // uninstalls the solve hooks if observe_solves() ran

  RunReport(const RunReport&) = delete;
  RunReport& operator=(const RunReport&) = delete;

  /// Tool configuration (flags, parameters); rendered as strings.
  void config(const std::string& key, const std::string& value);
  void config(const std::string& key, long long value);

  /// Flat numeric metric — the diffable surface of the report.
  void metric(const std::string& name, double value);

  /// Attaches a plan's EXPLAIN document (bernoulli.explain.v1 text).
  void add_plan(const std::string& name, std::string explain_json);

  void add_model_check(const std::string& name, const ModelCheckReport& mc);
  void add_comm_check(const std::string& name, const CommCheck& cc);
  void add_roofline(const RooflineEntry& entry);
  void set_critical_path(const CriticalPathReport& cp);

  /// Installs process-global solve hooks (analysis/hooks.hpp) that record
  /// every rank's SolveRecord into this report, thread-safely. Replaced
  /// by the next observe_solves() call; uninstalled by the destructor.
  void observe_solves();

  /// The bernoulli.run.v1 document. Validated: the result of json() is
  /// re-parsed through support/json_reader before being returned/written.
  std::string json(int indent = 2) const;

  /// Writes json() to `path` and logs one line to stderr.
  void write(const std::string& path) const;

 private:
  std::string tool_;
  std::vector<std::pair<std::string, std::string>> config_;   // key, value
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string, std::string>> plans_;    // name, json
  std::vector<std::pair<std::string, std::string>> checks_;   // name, json
  std::vector<std::pair<std::string, CommCheck>> comm_checks_;
  std::vector<RooflineEntry> roofline_;
  std::string critical_path_json_;  // empty = null
  bool observing_ = false;
  mutable std::mutex solves_mu_;
  std::vector<SolveRecord> solves_;
};

// ---- reading / diffing (tools/bernoulli_report) -----------------------

/// Extracts the flat metric map from a parsed report. Understands
/// bernoulli.run.v1 ("metrics" object) and bernoulli.bench.exec.v1
/// (derives exec.* metric names from the cases array). Throws on any
/// other document.
std::map<std::string, double> report_metrics(const support::JsonValue& doc);

struct MetricDiff {
  std::string name;
  double base = 0.0;
  double current = 0.0;
  double rel_change = 0.0;  // signed; positive = worse
  bool higher_is_better = false;
  bool regressed = false;
};

struct DiffResult {
  std::vector<MetricDiff> metrics;  // common metrics, sorted by name
  int compared = 0;
  int regressions = 0;
  /// Zero common metrics is a FAILURE, not a pass — a renamed metric must
  /// not silently disable the gate.
  bool ok() const { return compared > 0 && regressions == 0; }
};

/// Compares `current` against `base`. `metric_filter`, when non-empty,
/// restricts the comparison to metrics whose name contains it.
DiffResult diff_reports(const support::JsonValue& base,
                        const support::JsonValue& current, double tolerance,
                        const std::string& metric_filter = "");

/// `only_changed` suppresses rows within tolerance — with a tolerance set,
/// float timing jitter is noise, and the interesting rows are the ones
/// that moved (the default keeps the historical print-everything shape).
std::string diff_text(const DiffResult& d, double tolerance,
                      bool only_changed = false);

/// Human rendering of a parsed bernoulli.run.v1 (or exec.v1) document.
std::string report_text(const support::JsonValue& doc);

// ---- the run ledger (bench/ledger.jsonl) ------------------------------

/// Appends `report_json` (a complete bernoulli.run.v1 or exec.v1 document)
/// to the ledger as ONE line: the document is validated by parsing, then
/// raw newlines are stripped (lossless for valid JSON) and the compact
/// line is appended. Creates the file if missing.
void ledger_append(const std::string& ledger_path,
                   const std::string& report_json);

/// Parses every non-empty ledger line into a document, oldest first.
/// Throws on unreadable files or malformed lines (a corrupt ledger should
/// fail the gate, not skip entries).
std::vector<support::JsonValue> ledger_read(const std::string& ledger_path);

/// Trajectory of every metric whose name contains `metric_filter` across
/// the ledger entries, oldest to newest, with the relative change from
/// first to last entry per metric.
std::string ledger_trend_text(const std::vector<support::JsonValue>& entries,
                              const std::string& metric_filter);

}  // namespace bernoulli::analysis
