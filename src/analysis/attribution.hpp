// Rendering and diffing for the per-level time-attribution profile
// (`bernoulli.profile.v1`, produced by support/profile.hpp and embedded in
// run reports as `profile_registry`).
//
// Everything here works on the PARSED JSON block, not the live registry, so
// the same code renders a fresh run, a report file, and a ledger entry —
// and `bernoulli_report profile` / `regress` cannot drift from what the
// report embeds. Consumers: `analysis/report.cpp` (report_text), the
// `bernoulli_report profile` subcommand, and the regression-attribution
// note `regress` prints when a gate trips.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "support/json_reader.hpp"

namespace bernoulli::analysis {

/// True when the block is a non-empty `bernoulli.profile.v1` object (a run
/// that never enabled profiling embeds "{}").
bool profile_block_nonempty(const support::JsonValue& profile);

/// Per-level table: self ns, % of the profiled wall, exact work, ns/work,
/// and the drain-kind mix, followed by the distributed-path phases when
/// present. Empty string for an empty block.
std::string profile_table_text(const support::JsonValue& profile);

/// Flattened metric names over one profile block:
///   profile.level<d>.self_ns          per-level estimated self time
///   profile.level<d>.<kind>.self_ns   per-kind split
///   profile.phase.<phase>.ns          distributed-path phases
/// These are the names the bench books into run-report metrics (so the
/// ledger trends them) and the vocabulary `regress` attributes with.
std::vector<std::pair<std::string, double>> profile_flat_metrics(
    const support::JsonValue& profile);

/// Top-N absolute deltas between two profile blocks (`next - base`) over
/// the flattened names, largest first — the "where did the time move"
/// answer. Empty string when either block is empty or nothing moved.
std::string profile_diff_text(const support::JsonValue& base,
                              const support::JsonValue& next,
                              std::size_t top_n);

}  // namespace bernoulli::analysis
