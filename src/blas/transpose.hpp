// Transpose kernels: y = A^T x without materializing A^T, and an explicit
// CSR transposition (which doubles as CSR <-> CCS conversion, since the
// CCS of A is the CSR of A^T).
#pragma once

#include "formats/csr.hpp"

namespace bernoulli::blas {

/// y = A^T * x (y has a.cols() entries, x has a.rows()).
void spmv_transpose(const formats::Csr& a, ConstVectorView x, VectorView y);

/// y += A^T * x.
void spmv_transpose_add(const formats::Csr& a, ConstVectorView x,
                        VectorView y);

/// Explicit A^T in CSR form (linear time, counting sort by column).
formats::Csr transpose(const formats::Csr& a);

}  // namespace bernoulli::blas
