#include "blas/transpose.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace bernoulli::blas {

using formats::Csr;

void spmv_transpose(const Csr& a, ConstVectorView x, VectorView y) {
  BERNOULLI_CHECK(static_cast<index_t>(x.size()) == a.rows());
  BERNOULLI_CHECK(static_cast<index_t>(y.size()) == a.cols());
  std::fill(y.begin(), y.end(), 0.0);
  spmv_transpose_add(a, x, y);
}

void spmv_transpose_add(const Csr& a, ConstVectorView x, VectorView y) {
  auto rowptr = a.rowptr();
  auto colind = a.colind();
  auto vals = a.vals();
  // Scatter form: row i of A contributes x[i] * A(i, j) to y[j] — the same
  // loop the compiler generates for the CCS view of A^T.
  for (index_t i = 0; i < a.rows(); ++i) {
    const value_t xi = x[static_cast<std::size_t>(i)];
    const index_t end = rowptr[static_cast<std::size_t>(i) + 1];
    for (index_t e = rowptr[static_cast<std::size_t>(i)]; e < end; ++e)
      y[static_cast<std::size_t>(colind[static_cast<std::size_t>(e)])] +=
          vals[static_cast<std::size_t>(e)] * xi;
  }
}

Csr transpose(const Csr& a) {
  const index_t m = a.rows(), n = a.cols();
  std::vector<index_t> ptr(static_cast<std::size_t>(n) + 1, 0);
  for (index_t c : a.colind()) ++ptr[static_cast<std::size_t>(c) + 1];
  for (std::size_t j = 1; j < ptr.size(); ++j) ptr[j] += ptr[j - 1];

  std::vector<index_t> ind(static_cast<std::size_t>(a.nnz()));
  std::vector<value_t> vals(static_cast<std::size_t>(a.nnz()));
  std::vector<index_t> next(ptr.begin(), ptr.end() - 1);
  for (index_t i = 0; i < m; ++i) {
    auto cols = a.row_cols(i);
    auto v = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      index_t pos = next[static_cast<std::size_t>(cols[k])]++;
      ind[static_cast<std::size_t>(pos)] = i;
      vals[static_cast<std::size_t>(pos)] = v[k];
    }
  }
  return Csr(n, m, std::move(ptr), std::move(ind), std::move(vals));
}

}  // namespace bernoulli::blas
