// Sparse-matrix times skinny dense matrix (SpMM).
//
// The paper (§6) names "the product of a sparse matrix and a skinny dense
// matrix" alongside SpMV as the core operation of Krylov solvers with
// multiple right-hand sides; this is the kernel the compiler generates for
//   DO i / DO j / DO r:  C(i,r) += A(i,j) * B(j,r)
// with A sparse and B, C dense n x k (k small).
#pragma once

#include "formats/blocksolve.hpp"
#include "formats/csr.hpp"
#include "formats/dense.hpp"

namespace bernoulli::blas {

/// C = A * B with A sparse CSR (m x n), B dense (n x k), C dense (m x k).
void spmm(const formats::Csr& a, const formats::Dense& b, formats::Dense& c);

/// C += A * B.
void spmm_add(const formats::Csr& a, const formats::Dense& b,
              formats::Dense& c);

/// C = A * B with A in BlockSolve storage (original index space).
void spmm(const formats::BsMatrix& a, const formats::Dense& b,
          formats::Dense& c);

}  // namespace bernoulli::blas
