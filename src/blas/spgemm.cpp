#include "blas/spgemm.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace bernoulli::blas {

using formats::Csr;

Csr spgemm(const Csr& a, const Csr& b) {
  BERNOULLI_CHECK(a.cols() == b.rows());
  const index_t m = a.rows(), n = b.cols();

  std::vector<index_t> rowptr{0};
  std::vector<index_t> colind;
  std::vector<value_t> vals;

  // Gustavson: a dense accumulator row + occupancy list, reset lazily.
  std::vector<value_t> acc(static_cast<std::size_t>(n), 0.0);
  std::vector<bool> occupied(static_cast<std::size_t>(n), false);
  std::vector<index_t> touched;

  for (index_t i = 0; i < m; ++i) {
    touched.clear();
    auto acols = a.row_cols(i);
    auto avals = a.row_vals(i);
    for (std::size_t ka = 0; ka < acols.size(); ++ka) {
      const index_t j = acols[ka];
      const value_t av = avals[ka];
      auto bcols = b.row_cols(j);
      auto bvals = b.row_vals(j);
      for (std::size_t kb = 0; kb < bcols.size(); ++kb) {
        const index_t c = bcols[kb];
        if (!occupied[static_cast<std::size_t>(c)]) {
          occupied[static_cast<std::size_t>(c)] = true;
          acc[static_cast<std::size_t>(c)] = 0.0;
          touched.push_back(c);
        }
        acc[static_cast<std::size_t>(c)] += av * bvals[kb];
      }
    }
    std::sort(touched.begin(), touched.end());
    for (index_t c : touched) {
      colind.push_back(c);
      vals.push_back(acc[static_cast<std::size_t>(c)]);
      occupied[static_cast<std::size_t>(c)] = false;
    }
    rowptr.push_back(static_cast<index_t>(colind.size()));
  }
  return Csr(m, n, std::move(rowptr), std::move(colind), std::move(vals));
}

}  // namespace bernoulli::blas
