// Sparse-sparse matrix product (SpGEMM), Gustavson's row-wise algorithm.
//
// The paper's Table-1 discussion motivates extensible sparse BLAS with the
// combinatorial explosion of matrix-matrix product versions (6^2 formats);
// here C = A * B is computed CSR x CSR -> CSR, the kernel every other
// version lowers to through conversions.
#pragma once

#include "formats/csr.hpp"

namespace bernoulli::blas {

/// C = A * B, all CSR. Entries that cancel to exactly 0.0 are kept (they
/// are stored entries, matching the relational semantics where the result
/// structure is the join of the input structures).
formats::Csr spgemm(const formats::Csr& a, const formats::Csr& b);

}  // namespace bernoulli::blas
