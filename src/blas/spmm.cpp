#include "blas/spmm.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace bernoulli::blas {

using formats::BsMatrix;
using formats::Csr;
using formats::Dense;

void spmm(const Csr& a, const Dense& b, Dense& c) {
  BERNOULLI_CHECK(c.rows() == a.rows() && c.cols() == b.cols());
  std::fill(c.data().begin(), c.data().end(), 0.0);
  spmm_add(a, b, c);
}

void spmm_add(const Csr& a, const Dense& b, Dense& c) {
  BERNOULLI_CHECK(a.cols() == b.rows());
  BERNOULLI_CHECK(c.rows() == a.rows() && c.cols() == b.cols());
  const index_t k = b.cols();
  auto rowptr = a.rowptr();
  auto colind = a.colind();
  auto vals = a.vals();
  // Row-major blocks of B stream through the inner loop: one pass over the
  // sparse row amortizes across all k right-hand sides — the skinny-dense
  // payoff vs. k independent SpMVs.
  for (index_t i = 0; i < a.rows(); ++i) {
    value_t* crow = c.data().data() +
                    static_cast<std::size_t>(i) * static_cast<std::size_t>(k);
    const index_t end = rowptr[static_cast<std::size_t>(i) + 1];
    for (index_t e = rowptr[static_cast<std::size_t>(i)]; e < end; ++e) {
      const value_t av = vals[static_cast<std::size_t>(e)];
      const value_t* brow = b.row(colind[static_cast<std::size_t>(e)]).data();
      for (index_t r = 0; r < k; ++r)
        crow[static_cast<std::size_t>(r)] +=
            av * brow[static_cast<std::size_t>(r)];
    }
  }
}

void spmm(const BsMatrix& a, const Dense& b, Dense& c) {
  BERNOULLI_CHECK(a.cols() == b.rows());
  BERNOULLI_CHECK(c.rows() == a.rows() && c.cols() == b.cols());
  // Column-by-column through the BlockSolve SpMV; the dense diagonal
  // blocks could amortize further, but correctness-first is fine here
  // (BS95 SpMM is exercised by tests, benchmarked via SpMV).
  const index_t k = b.cols();
  const auto n = static_cast<std::size_t>(a.rows());
  Vector x(n), y(n);
  for (index_t r = 0; r < k; ++r) {
    for (std::size_t i = 0; i < n; ++i)
      x[i] = b.at(static_cast<index_t>(i), r);
    a.spmv_original(x, y);
    for (std::size_t i = 0; i < n; ++i) c.at(static_cast<index_t>(i), r) = y[i];
  }
}

}  // namespace bernoulli::blas
