#include "mm/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace bernoulli::mm {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

// Reads the next line that is neither blank nor a % comment.
bool next_data_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '%') continue;
    return true;
  }
  return false;
}

}  // namespace

formats::Coo read(std::istream& in) {
  std::string header;
  BERNOULLI_CHECK_MSG(std::getline(in, header), "empty Matrix Market stream");
  std::istringstream hs(header);
  std::string banner, object, fmt, field, sym;
  hs >> banner >> object >> fmt >> field >> sym;
  BERNOULLI_CHECK_MSG(banner == "%%MatrixMarket",
                      "missing %%MatrixMarket banner, got: " << banner);
  BERNOULLI_CHECK_MSG(lower(object) == "matrix",
                      "unsupported object: " << object);
  fmt = lower(fmt);
  field = lower(field);
  sym = lower(sym);
  BERNOULLI_CHECK_MSG(fmt == "coordinate" || fmt == "array",
                      "unsupported format: " << fmt);
  BERNOULLI_CHECK_MSG(field == "real" || field == "pattern" ||
                          field == "integer",
                      "unsupported field: " << field);
  BERNOULLI_CHECK_MSG(sym == "general" || sym == "symmetric",
                      "unsupported symmetry: " << sym);
  const bool symmetric = sym == "symmetric";
  const bool pattern = field == "pattern";

  std::string line;
  BERNOULLI_CHECK_MSG(next_data_line(in, line), "missing size line");
  std::istringstream ss(line);

  if (fmt == "array") {
    BERNOULLI_CHECK_MSG(!symmetric, "symmetric array reading not supported");
    index_t rows = 0, cols = 0;
    ss >> rows >> cols;
    BERNOULLI_CHECK_MSG(rows >= 0 && cols >= 0, "bad array size line");
    formats::TripletBuilder b(rows, cols);
    // Array files are column-major, one value per line.
    for (index_t j = 0; j < cols; ++j) {
      for (index_t i = 0; i < rows; ++i) {
        BERNOULLI_CHECK_MSG(next_data_line(in, line),
                            "array data ended early at (" << i << "," << j << ")");
        value_t v = 0;
        std::istringstream vs(line);
        BERNOULLI_CHECK_MSG(static_cast<bool>(vs >> v), "bad array value: " << line);
        if (v != 0.0) b.add(i, j, v);
      }
    }
    return std::move(b).build();
  }

  index_t rows = 0, cols = 0;
  long long nnz = 0;
  ss >> rows >> cols >> nnz;
  BERNOULLI_CHECK_MSG(rows >= 0 && cols >= 0 && nnz >= 0, "bad size line: " << line);
  formats::TripletBuilder b(rows, cols);
  b.reserve(static_cast<std::size_t>(nnz) * (symmetric ? 2 : 1));
  for (long long k = 0; k < nnz; ++k) {
    BERNOULLI_CHECK_MSG(next_data_line(in, line),
                        "coordinate data ended after " << k << " of " << nnz);
    std::istringstream es(line);
    index_t i = 0, j = 0;
    value_t v = 1.0;
    BERNOULLI_CHECK_MSG(static_cast<bool>(es >> i >> j), "bad entry: " << line);
    if (!pattern) BERNOULLI_CHECK_MSG(static_cast<bool>(es >> v), "missing value: " << line);
    BERNOULLI_CHECK_MSG(i >= 1 && i <= rows && j >= 1 && j <= cols,
                        "entry out of range: " << line);
    b.add(i - 1, j - 1, v);
    if (symmetric && i != j) b.add(j - 1, i - 1, v);
  }
  return std::move(b).build();
}

formats::Coo read_string(const std::string& text) {
  std::istringstream in(text);
  return read(in);
}

formats::Coo read_file(const std::string& path) {
  std::ifstream in(path);
  BERNOULLI_CHECK_MSG(in.good(), "cannot open " << path);
  return read(in);
}

void write(std::ostream& out, const formats::Coo& a, bool symmetric) {
  if (symmetric)
    BERNOULLI_CHECK_MSG(a.is_symmetric(),
                        "matrix is not symmetric; cannot write symmetric file");
  out << "%%MatrixMarket matrix coordinate real "
      << (symmetric ? "symmetric" : "general") << '\n';
  auto rowind = a.rowind();
  auto colind = a.colind();
  auto vals = a.vals();
  index_t count = 0;
  for (index_t k = 0; k < a.nnz(); ++k)
    if (!symmetric || colind[k] <= rowind[k]) ++count;
  out << a.rows() << ' ' << a.cols() << ' ' << count << '\n';
  out.precision(17);
  for (index_t k = 0; k < a.nnz(); ++k) {
    if (symmetric && colind[k] > rowind[k]) continue;
    out << rowind[k] + 1 << ' ' << colind[k] + 1 << ' ' << vals[k] << '\n';
  }
}

std::string write_string(const formats::Coo& a, bool symmetric) {
  std::ostringstream out;
  write(out, a, symmetric);
  return out.str();
}

void write_file(const std::string& path, const formats::Coo& a,
                bool symmetric) {
  std::ofstream out(path);
  BERNOULLI_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  write(out, a, symmetric);
}

}  // namespace bernoulli::mm
