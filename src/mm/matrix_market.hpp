// Matrix Market exchange-format I/O (Boisvert et al., the paper's matrix
// source [8]).
//
// Supports the subset used by sparse linear-algebra suites:
//   %%MatrixMarket matrix coordinate real    {general|symmetric}
//   %%MatrixMarket matrix coordinate pattern {general|symmetric}
//   %%MatrixMarket matrix array      real    general
// Symmetric files store the lower triangle; reading expands it.
#pragma once

#include <iosfwd>
#include <string>

#include "formats/coo.hpp"

namespace bernoulli::mm {

/// Parses a Matrix Market stream into canonical COO. Pattern entries get
/// value 1.0. Throws bernoulli::Error on malformed input.
formats::Coo read(std::istream& in);

/// Convenience: parse from a string (used heavily in tests).
formats::Coo read_string(const std::string& text);

/// Reads the file at `path`.
formats::Coo read_file(const std::string& path);

/// Writes `a` as `matrix coordinate real general` (1-based indices). When
/// `symmetric` is requested the matrix must be symmetric; only the lower
/// triangle is emitted.
void write(std::ostream& out, const formats::Coo& a, bool symmetric = false);

std::string write_string(const formats::Coo& a, bool symmetric = false);

void write_file(const std::string& path, const formats::Coo& a,
                bool symmetric = false);

}  // namespace bernoulli::mm
