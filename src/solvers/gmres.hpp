// Restarted GMRES(m) — the general (unsymmetric) Krylov solver from the
// PETSc-style solver family the paper positions its compiler against
// (Saad [18]). Arnoldi with modified Gram-Schmidt, Givens-rotation least
// squares, restart every m iterations; preconditioning via the same
// Preconditioner hook as CG.
#pragma once

#include "solvers/cg.hpp"

namespace bernoulli::solvers {

struct GmresOptions {
  int restart = 30;          // Krylov basis size m
  int max_iterations = 500;  // total matvecs across restarts
  double tolerance = 1e-10;  // on ||r||_2 / ||b||_2
};

struct GmresResult {
  int iterations = 0;          // matvecs performed
  double residual_norm = 0.0;  // ||b - A x||_2 (recomputed, not recursed)
  bool converged = false;
};

/// Solves A x = b for general (square, possibly unsymmetric) A,
/// overwriting x. Right-preconditioned when `precond` is provided
/// (A M^{-1} u = b, x = M^{-1} u), so the reported residual is the TRUE
/// residual.
GmresResult gmres(const formats::Csr& a, ConstVectorView b, VectorView x,
                  const GmresOptions& opts = {},
                  const Preconditioner& precond = nullptr);

}  // namespace bernoulli::solvers
