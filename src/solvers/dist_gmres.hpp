// Distributed restarted GMRES(m): the same recurrence as solvers::gmres
// with distributed matvecs and allreduce-based inner products, matching
// the sequential solver iterate-for-iterate (same Arnoldi vectors up to
// rounding) — the unsymmetric companion of dist_cg.
#pragma once

#include "solvers/gmres.hpp"
#include "spmd/matvec.hpp"

namespace bernoulli::solvers {

/// Collective over all ranks. All vectors are LOCAL slices in the row
/// distribution used to build `a`. Right-preconditioned with a LOCAL
/// (block-Jacobi) preconditioner when provided.
GmresResult dist_gmres(runtime::Process& p, const spmd::DistSpmv& a,
                       ConstVectorView b_local, VectorView x_local,
                       const GmresOptions& opts = {},
                       const Preconditioner& precond_local = nullptr);

}  // namespace bernoulli::solvers
