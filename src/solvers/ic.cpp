#include "solvers/ic.hpp"

#include <cmath>

#include "support/error.hpp"

namespace bernoulli::solvers {

using formats::Csr;

void solve_lower(const Csr& l, ConstVectorView b, VectorView x) {
  const index_t n = l.rows();
  BERNOULLI_CHECK(l.cols() == n);
  BERNOULLI_CHECK(static_cast<index_t>(b.size()) == n &&
                  static_cast<index_t>(x.size()) == n);
  for (index_t i = 0; i < n; ++i) {
    auto cols = l.row_cols(i);
    auto vals = l.row_vals(i);
    BERNOULLI_CHECK_MSG(!cols.empty() && cols.back() == i,
                        "row " << i << " lacks a trailing diagonal entry");
    value_t sum = b[static_cast<std::size_t>(i)];
    for (std::size_t k = 0; k + 1 < cols.size(); ++k)
      sum -= vals[k] * x[static_cast<std::size_t>(cols[k])];
    x[static_cast<std::size_t>(i)] = sum / vals[cols.size() - 1];
  }
}

void solve_lower_transpose(const Csr& l, ConstVectorView b, VectorView x) {
  const index_t n = l.rows();
  BERNOULLI_CHECK(l.cols() == n);
  BERNOULLI_CHECK(static_cast<index_t>(b.size()) == n &&
                  static_cast<index_t>(x.size()) == n);
  // Backward substitution: process rows last-to-first; once x[i] is known,
  // scatter its contribution to the earlier unknowns (column-sweep of
  // L^T via the rows of L).
  std::copy(b.begin(), b.end(), x.begin());
  for (index_t i = n - 1; i >= 0; --i) {
    auto cols = l.row_cols(i);
    auto vals = l.row_vals(i);
    BERNOULLI_CHECK(!cols.empty() && cols.back() == i);
    x[static_cast<std::size_t>(i)] /= vals[cols.size() - 1];
    const value_t xi = x[static_cast<std::size_t>(i)];
    for (std::size_t k = 0; k + 1 < cols.size(); ++k)
      x[static_cast<std::size_t>(cols[k])] -= vals[k] * xi;
    if (i == 0) break;
  }
}

IncompleteCholesky IncompleteCholesky::factor(const Csr& a) {
  const index_t n = a.rows();
  BERNOULLI_CHECK(a.cols() == n);

  // Build L's pattern: the lower triangle of A, diagonal included (and
  // required). Values computed row by row:
  //   L(i,j) = (A(i,j) - sum_k L(i,k) L(j,k)) / L(j,j)   for j < i
  //   L(i,i) = sqrt(A(i,i) - sum_k L(i,k)^2)
  // with sums restricted to the stored pattern (no fill).
  std::vector<index_t> rowptr{0};
  std::vector<index_t> colind;
  std::vector<value_t> vals;
  for (index_t i = 0; i < n; ++i) {
    auto cols = a.row_cols(i);
    auto av = a.row_vals(i);
    bool has_diag = false;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] > i) break;
      colind.push_back(cols[k]);
      vals.push_back(av[k]);
      if (cols[k] == i) has_diag = true;
    }
    BERNOULLI_CHECK_MSG(has_diag, "IC(0) needs a stored diagonal in row " << i);
    rowptr.push_back(static_cast<index_t>(colind.size()));
  }

  // In-place factorization over the (rowptr, colind, vals) arrays.
  auto row_begin = [&](index_t r) { return rowptr[static_cast<std::size_t>(r)]; };
  auto row_end = [&](index_t r) { return rowptr[static_cast<std::size_t>(r) + 1]; };

  for (index_t i = 0; i < n; ++i) {
    for (index_t e = row_begin(i); e < row_end(i); ++e) {
      const index_t j = colind[static_cast<std::size_t>(e)];
      // Dot product of rows i and j of L over columns < j (both sorted).
      value_t dot = 0.0;
      index_t pi = row_begin(i), pj = row_begin(j);
      while (pi < e && pj < row_end(j)) {
        index_t ci = colind[static_cast<std::size_t>(pi)];
        index_t cj = colind[static_cast<std::size_t>(pj)];
        if (cj >= j) break;
        if (ci < cj) {
          ++pi;
        } else if (cj < ci) {
          ++pj;
        } else {
          dot += vals[static_cast<std::size_t>(pi)] *
                 vals[static_cast<std::size_t>(pj)];
          ++pi;
          ++pj;
        }
      }
      if (j < i) {
        // L(j,j) is the last entry of row j.
        value_t ljj = vals[static_cast<std::size_t>(row_end(j)) - 1];
        vals[static_cast<std::size_t>(e)] =
            (vals[static_cast<std::size_t>(e)] - dot) / ljj;
      } else {  // j == i: the pivot
        value_t pivot = vals[static_cast<std::size_t>(e)] - dot;
        BERNOULLI_CHECK_MSG(pivot > 0.0,
                            "IC(0) breakdown at row " << i << " (pivot "
                                                      << pivot << ")");
        vals[static_cast<std::size_t>(e)] = std::sqrt(pivot);
      }
    }
  }

  IncompleteCholesky out;
  out.l_ = Csr(n, n, std::move(rowptr), std::move(colind), std::move(vals));
  return out;
}

void IncompleteCholesky::apply(ConstVectorView r, VectorView z) const {
  Vector tmp(r.size());
  solve_lower(l_, r, tmp);
  solve_lower_transpose(l_, tmp, z);
}

}  // namespace bernoulli::solvers
