// Conjugate Gradient with diagonal (Jacobi) preconditioning — the paper's
// evaluation driver (§4): "a parallel Conjugate Gradient solver with
// diagonal preconditioning".
//
// Sequential version here; the SPMD version (dist_cg.hpp) runs the same
// recurrence with distributed matvecs and allreduce dot products, so the
// two converge iterate-for-iterate (a test relies on this).
#pragma once

#include <functional>

#include "formats/csr.hpp"

namespace bernoulli::solvers {

struct CgResult {
  int iterations = 0;
  double residual_norm = 0.0;  // ||b - A x||_2 of the returned iterate
  bool converged = false;
};

struct CgOptions {
  int max_iterations = 100;
  double tolerance = 1e-10;  // on ||r||_2 / ||b||_2; <= 0 disables the test

  /// Calibrated cost (seconds) of one iteration's BLAS-1 work, charged to
  /// the virtual clock by dist_cg when >= 0 (manual-compute benchmark
  /// runs). Ignored by the sequential solver.
  double blas1_charge_per_iteration = -1.0;
};

/// Solves A x = b, overwriting x (initial guess taken from x's contents).
/// A must be symmetric positive definite for CG to make sense; the
/// diagonal must be non-zero.
CgResult cg(const formats::Csr& a, ConstVectorView b, VectorView x,
            const CgOptions& opts = {});

/// A preconditioner application: z = M^{-1} r.
using Preconditioner = std::function<void(ConstVectorView r, VectorView z)>;

/// Preconditioned CG with an arbitrary SPD preconditioner (e.g.
/// IncompleteCholesky::apply). cg() is this with Jacobi.
CgResult cg_preconditioned(const formats::Csr& a, ConstVectorView b,
                           VectorView x, const Preconditioner& precond,
                           const CgOptions& opts = {});

/// Diagonal of a square CSR matrix (zeros where no stored diagonal entry).
Vector extract_diagonal(const formats::Csr& a);

// BLAS-1 helpers shared by both CG versions.
value_t dot(ConstVectorView a, ConstVectorView b);
void axpy(value_t alpha, ConstVectorView x, VectorView y);   // y += alpha x
void xpby(ConstVectorView x, value_t beta, VectorView y);    // y = x + beta y

}  // namespace bernoulli::solvers
