#include "solvers/gmres.hpp"

#include <cmath>

#include "support/error.hpp"

namespace bernoulli::solvers {

GmresResult gmres(const formats::Csr& a, ConstVectorView b, VectorView x,
                  const GmresOptions& opts, const Preconditioner& precond) {
  BERNOULLI_CHECK(a.rows() == a.cols());
  const auto n = static_cast<std::size_t>(a.rows());
  BERNOULLI_CHECK(b.size() == n && x.size() == n);
  const int m = opts.restart;
  BERNOULLI_CHECK(m >= 1);

  auto apply_right = [&](ConstVectorView in, VectorView out) {
    // out = A M^{-1} in
    if (precond) {
      Vector tmp(n);
      precond(in, tmp);
      spmv(a, tmp, out);
    } else {
      spmv(a, in, out);
    }
  };

  const value_t bnorm = std::sqrt(dot(b, b));
  const value_t threshold =
      opts.tolerance > 0 ? opts.tolerance * (bnorm > 0 ? bnorm : 1.0) : -1.0;

  GmresResult result;
  Vector r(n), w(n);

  // Krylov basis (m+1 vectors) and the Hessenberg factorization state.
  std::vector<Vector> v(static_cast<std::size_t>(m) + 1, Vector(n));
  std::vector<Vector> h(static_cast<std::size_t>(m) + 1,
                        Vector(static_cast<std::size_t>(m), 0.0));
  Vector cs(static_cast<std::size_t>(m), 0.0);
  Vector sn(static_cast<std::size_t>(m), 0.0);
  Vector g(static_cast<std::size_t>(m) + 1, 0.0);

  while (result.iterations < opts.max_iterations) {
    // r = b - A x (true residual at each restart).
    spmv(a, x, r);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    value_t beta = std::sqrt(dot(r, r));
    result.residual_norm = beta;
    if (threshold >= 0 && beta <= threshold) {
      result.converged = true;
      return result;
    }
    if (beta == 0.0) {
      result.converged = true;
      return result;
    }
    for (std::size_t i = 0; i < n; ++i) v[0][i] = r[i] / beta;
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    int k = 0;  // columns built this cycle
    for (; k < m && result.iterations < opts.max_iterations; ++k) {
      apply_right(v[static_cast<std::size_t>(k)], w);
      ++result.iterations;
      // Modified Gram-Schmidt.
      for (int i = 0; i <= k; ++i) {
        value_t hik = dot(w, v[static_cast<std::size_t>(i)]);
        h[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] = hik;
        axpy(-hik, v[static_cast<std::size_t>(i)], w);
      }
      value_t hkk = std::sqrt(dot(w, w));
      h[static_cast<std::size_t>(k) + 1][static_cast<std::size_t>(k)] = hkk;
      if (hkk != 0.0)
        for (std::size_t i = 0; i < n; ++i)
          v[static_cast<std::size_t>(k) + 1][i] = w[i] / hkk;

      // Apply accumulated Givens rotations to the new column.
      for (int i = 0; i < k; ++i) {
        value_t hi = h[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)];
        value_t hi1 =
            h[static_cast<std::size_t>(i) + 1][static_cast<std::size_t>(k)];
        h[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] =
            cs[static_cast<std::size_t>(i)] * hi +
            sn[static_cast<std::size_t>(i)] * hi1;
        h[static_cast<std::size_t>(i) + 1][static_cast<std::size_t>(k)] =
            -sn[static_cast<std::size_t>(i)] * hi +
            cs[static_cast<std::size_t>(i)] * hi1;
      }
      // New rotation annihilating h[k+1][k].
      value_t hk = h[static_cast<std::size_t>(k)][static_cast<std::size_t>(k)];
      value_t hk1 =
          h[static_cast<std::size_t>(k) + 1][static_cast<std::size_t>(k)];
      value_t denom = std::sqrt(hk * hk + hk1 * hk1);
      BERNOULLI_CHECK_MSG(denom != 0.0, "GMRES breakdown (happy or fatal)");
      cs[static_cast<std::size_t>(k)] = hk / denom;
      sn[static_cast<std::size_t>(k)] = hk1 / denom;
      h[static_cast<std::size_t>(k)][static_cast<std::size_t>(k)] = denom;
      h[static_cast<std::size_t>(k) + 1][static_cast<std::size_t>(k)] = 0.0;
      value_t gk = g[static_cast<std::size_t>(k)];
      g[static_cast<std::size_t>(k)] = cs[static_cast<std::size_t>(k)] * gk;
      g[static_cast<std::size_t>(k) + 1] =
          -sn[static_cast<std::size_t>(k)] * gk;

      // |g[k+1]| is the current residual norm estimate.
      if (threshold >= 0 &&
          std::abs(g[static_cast<std::size_t>(k) + 1]) <= threshold) {
        ++k;
        break;
      }
      if (hkk == 0.0) {  // invariant subspace found
        ++k;
        break;
      }
    }

    // Back-substitute y from the triangular H and update x += M^{-1} V y.
    Vector y(static_cast<std::size_t>(k), 0.0);
    for (int i = k - 1; i >= 0; --i) {
      value_t sum = g[static_cast<std::size_t>(i)];
      for (int j = i + 1; j < k; ++j)
        sum -= h[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] *
               y[static_cast<std::size_t>(j)];
      y[static_cast<std::size_t>(i)] =
          sum / h[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
    }
    Vector update(n, 0.0);
    for (int j = 0; j < k; ++j)
      axpy(y[static_cast<std::size_t>(j)], v[static_cast<std::size_t>(j)],
           update);
    if (precond) {
      Vector tmp(n);
      precond(update, tmp);
      axpy(1.0, tmp, x);
    } else {
      axpy(1.0, update, x);
    }
  }

  spmv(a, x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  result.residual_norm = std::sqrt(dot(r, r));
  result.converged = threshold >= 0 && result.residual_norm <= threshold;
  return result;
}

}  // namespace bernoulli::solvers
