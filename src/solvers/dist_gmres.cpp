#include "solvers/dist_gmres.hpp"

#include <cmath>

#include "support/error.hpp"

namespace bernoulli::solvers {

namespace {
constexpr int kGmresTag = 9351;
}

GmresResult dist_gmres(runtime::Process& p, const spmd::DistSpmv& a,
                       ConstVectorView b_local, VectorView x_local,
                       const GmresOptions& opts,
                       const Preconditioner& precond_local) {
  const auto n = static_cast<std::size_t>(a.local_rows());
  BERNOULLI_CHECK(b_local.size() == n && x_local.size() == n);
  const int m = opts.restart;
  BERNOULLI_CHECK(m >= 1);

  Vector x_full(static_cast<std::size_t>(a.sched.full_size()), 0.0);
  auto matvec = [&](ConstVectorView in, VectorView out) {
    std::copy(in.begin(), in.end(), x_full.begin());
    a.apply(p, x_full, out, kGmresTag);
  };
  auto apply_right = [&](ConstVectorView in, VectorView out) {
    if (precond_local) {
      Vector tmp(n);
      precond_local(in, tmp);
      matvec(tmp, out);
    } else {
      matvec(in, out);
    }
  };
  auto gdot = [&](ConstVectorView u, ConstVectorView v) {
    return p.allreduce_sum(dot(u, v));
  };

  const value_t bnorm = std::sqrt(gdot(b_local, b_local));
  const value_t threshold =
      opts.tolerance > 0 ? opts.tolerance * (bnorm > 0 ? bnorm : 1.0) : -1.0;

  GmresResult result;
  Vector r(n), w(n);
  std::vector<Vector> v(static_cast<std::size_t>(m) + 1, Vector(n));
  std::vector<Vector> h(static_cast<std::size_t>(m) + 1,
                        Vector(static_cast<std::size_t>(m), 0.0));
  Vector cs(static_cast<std::size_t>(m), 0.0);
  Vector sn(static_cast<std::size_t>(m), 0.0);
  Vector g(static_cast<std::size_t>(m) + 1, 0.0);

  while (result.iterations < opts.max_iterations) {
    matvec(x_local, r);
    for (std::size_t i = 0; i < n; ++i) r[i] = b_local[i] - r[i];
    value_t beta = std::sqrt(gdot(r, r));
    result.residual_norm = beta;
    if ((threshold >= 0 && beta <= threshold) || beta == 0.0) {
      result.converged = true;
      return result;
    }
    for (std::size_t i = 0; i < n; ++i) v[0][i] = r[i] / beta;
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    int k = 0;
    for (; k < m && result.iterations < opts.max_iterations; ++k) {
      apply_right(v[static_cast<std::size_t>(k)], w);
      ++result.iterations;
      for (int i = 0; i <= k; ++i) {
        value_t hik = gdot(w, v[static_cast<std::size_t>(i)]);
        h[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] = hik;
        axpy(-hik, v[static_cast<std::size_t>(i)], w);
      }
      value_t hkk = std::sqrt(gdot(w, w));
      h[static_cast<std::size_t>(k) + 1][static_cast<std::size_t>(k)] = hkk;
      if (hkk != 0.0)
        for (std::size_t i = 0; i < n; ++i)
          v[static_cast<std::size_t>(k) + 1][i] = w[i] / hkk;

      for (int i = 0; i < k; ++i) {
        value_t hi = h[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)];
        value_t hi1 =
            h[static_cast<std::size_t>(i) + 1][static_cast<std::size_t>(k)];
        h[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] =
            cs[static_cast<std::size_t>(i)] * hi +
            sn[static_cast<std::size_t>(i)] * hi1;
        h[static_cast<std::size_t>(i) + 1][static_cast<std::size_t>(k)] =
            -sn[static_cast<std::size_t>(i)] * hi +
            cs[static_cast<std::size_t>(i)] * hi1;
      }
      value_t hk = h[static_cast<std::size_t>(k)][static_cast<std::size_t>(k)];
      value_t hk1 =
          h[static_cast<std::size_t>(k) + 1][static_cast<std::size_t>(k)];
      value_t denom = std::sqrt(hk * hk + hk1 * hk1);
      BERNOULLI_CHECK_MSG(denom != 0.0, "GMRES breakdown");
      cs[static_cast<std::size_t>(k)] = hk / denom;
      sn[static_cast<std::size_t>(k)] = hk1 / denom;
      h[static_cast<std::size_t>(k)][static_cast<std::size_t>(k)] = denom;
      h[static_cast<std::size_t>(k) + 1][static_cast<std::size_t>(k)] = 0.0;
      value_t gk = g[static_cast<std::size_t>(k)];
      g[static_cast<std::size_t>(k)] = cs[static_cast<std::size_t>(k)] * gk;
      g[static_cast<std::size_t>(k) + 1] =
          -sn[static_cast<std::size_t>(k)] * gk;

      if (threshold >= 0 &&
          std::abs(g[static_cast<std::size_t>(k) + 1]) <= threshold) {
        ++k;
        break;
      }
      if (hkk == 0.0) {
        ++k;
        break;
      }
    }

    Vector y(static_cast<std::size_t>(k), 0.0);
    for (int i = k - 1; i >= 0; --i) {
      value_t sum = g[static_cast<std::size_t>(i)];
      for (int j = i + 1; j < k; ++j)
        sum -= h[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] *
               y[static_cast<std::size_t>(j)];
      y[static_cast<std::size_t>(i)] =
          sum / h[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
    }
    Vector update(n, 0.0);
    for (int j = 0; j < k; ++j)
      axpy(y[static_cast<std::size_t>(j)], v[static_cast<std::size_t>(j)],
           update);
    if (precond_local) {
      Vector tmp(n);
      precond_local(update, tmp);
      axpy(1.0, tmp, x_local);
    } else {
      axpy(1.0, update, x_local);
    }
  }

  matvec(x_local, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b_local[i] - r[i];
  result.residual_norm = std::sqrt(gdot(r, r));
  result.converged = threshold >= 0 && result.residual_norm <= threshold;
  return result;
}

}  // namespace bernoulli::solvers
