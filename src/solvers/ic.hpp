// Incomplete Cholesky factorization IC(0) and sparse triangular solves —
// the paper's "ongoing work" (§6): extending the generated-kernel set from
// products to "matrix factorizations (full and incomplete) and triangular
// linear system solution".
//
// IC(0) factors a symmetric positive-definite A into L L^T restricted to
// A's lower-triangular sparsity pattern (no fill). Combined with CG it
// gives the classical ICCG solver the paper's introduction places among
// the target applications.
#pragma once

#include "formats/csr.hpp"

namespace bernoulli::solvers {

/// x = L^{-1} b for lower-triangular L stored in CSR with a stored,
/// non-zero diagonal as the LAST entry of each row.
void solve_lower(const formats::Csr& l, ConstVectorView b, VectorView x);

/// x = L^{-T} b for the same L (backward substitution through the
/// transpose without materializing it).
void solve_lower_transpose(const formats::Csr& l, ConstVectorView b,
                           VectorView x);

class IncompleteCholesky {
 public:
  /// Factors SPD `a` on its lower pattern. Throws bernoulli::Error when a
  /// pivot is non-positive (matrix not SPD enough for IC(0)).
  static IncompleteCholesky factor(const formats::Csr& a);

  /// z = (L L^T)^{-1} r — the preconditioner application.
  void apply(ConstVectorView r, VectorView z) const;

  /// The factor L (lower triangular CSR, diagonal last in each row).
  const formats::Csr& lower() const { return l_; }

 private:
  formats::Csr l_;
};

}  // namespace bernoulli::solvers
