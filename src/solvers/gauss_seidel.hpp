// Gauss-Seidel sweeps, sequential and MULTICOLOR.
//
// A GS sweep has loop-carried dependences, so it is not a DOANY loop —
// precisely why BlockSolve colors the clique graph (paper §1): within one
// color no two cliques are adjacent, so all their updates are mutually
// independent and can run in parallel; colors execute in sequence. A
// multicolor sweep in the color-major ordering is EXACTLY a sequential
// sweep of the permuted matrix, which is what the equivalence test
// asserts.
#pragma once

#include "formats/blocksolve.hpp"
#include "formats/csr.hpp"

namespace bernoulli::solvers {

/// One forward Gauss-Seidel sweep on A x = b, updating x in place in row
/// order 0..n-1. Requires non-zero diagonal entries.
void gauss_seidel_sweep(const formats::Csr& a, ConstVectorView b,
                        VectorView x);

/// One multicolor sweep: rows are processed color by color per
/// `color_ptr` (the BsOrdering layout over the PERMUTED matrix); rows
/// within a color may be processed in any order — they are independent
/// when the coloring is proper, which is what enables parallel execution.
/// This implementation processes each color's rows in reverse to
/// demonstrate (and let tests verify) the independence.
void gauss_seidel_multicolor_sweep(const formats::Csr& a_permuted,
                                   std::span<const index_t> color_ptr,
                                   ConstVectorView b, VectorView x);

struct GsResult {
  int sweeps = 0;
  double residual_norm = 0.0;
  bool converged = false;
};

/// Stationary Gauss-Seidel iteration until ||b - A x|| <= tol * ||b||.
GsResult gauss_seidel_solve(const formats::Csr& a, ConstVectorView b,
                            VectorView x, int max_sweeps = 200,
                            double tol = 1e-10);

}  // namespace bernoulli::solvers
