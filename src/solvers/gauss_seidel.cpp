#include "solvers/gauss_seidel.hpp"

#include <cmath>

#include "support/error.hpp"

namespace bernoulli::solvers {

using formats::Csr;

namespace {

// Relaxes one row: x[i] = (b[i] - sum_{j != i} A(i,j) x[j]) / A(i,i).
void relax_row(const Csr& a, ConstVectorView b, VectorView x, index_t i) {
  auto cols = a.row_cols(i);
  auto vals = a.row_vals(i);
  value_t sum = b[static_cast<std::size_t>(i)];
  value_t diag = 0.0;
  for (std::size_t k = 0; k < cols.size(); ++k) {
    if (cols[k] == i) {
      diag = vals[k];
    } else {
      sum -= vals[k] * x[static_cast<std::size_t>(cols[k])];
    }
  }
  BERNOULLI_CHECK_MSG(diag != 0.0, "zero diagonal in row " << i);
  x[static_cast<std::size_t>(i)] = sum / diag;
}

}  // namespace

void gauss_seidel_sweep(const Csr& a, ConstVectorView b, VectorView x) {
  BERNOULLI_CHECK(a.rows() == a.cols());
  BERNOULLI_CHECK(b.size() == x.size() &&
                  static_cast<index_t>(x.size()) == a.rows());
  for (index_t i = 0; i < a.rows(); ++i) relax_row(a, b, x, i);
}

void gauss_seidel_multicolor_sweep(const Csr& a_permuted,
                                   std::span<const index_t> color_ptr,
                                   ConstVectorView b, VectorView x) {
  BERNOULLI_CHECK(a_permuted.rows() == a_permuted.cols());
  BERNOULLI_CHECK(!color_ptr.empty() && color_ptr.front() == 0 &&
                  color_ptr.back() == a_permuted.rows());
  for (std::size_t c = 0; c + 1 < color_ptr.size(); ++c) {
    // Within a color the rows are independent (no row of this color
    // references another row of the same color off its clique's diagonal
    // block... for singleton cliques, none at all); reverse order proves
    // it — the result must match any order.
    for (index_t i = color_ptr[c + 1] - 1; i >= color_ptr[c]; --i) {
      relax_row(a_permuted, b, x, i);
      if (i == color_ptr[c]) break;  // index_t underflow guard at row 0
    }
  }
}

GsResult gauss_seidel_solve(const Csr& a, ConstVectorView b, VectorView x,
                            int max_sweeps, double tol) {
  const auto n = static_cast<std::size_t>(a.rows());
  Vector r(n);
  const value_t bnorm = [&] {
    value_t s = 0;
    for (value_t v : b) s += v * v;
    return std::sqrt(s);
  }();
  const value_t threshold = tol * (bnorm > 0 ? bnorm : 1.0);

  GsResult result;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    gauss_seidel_sweep(a, b, x);
    result.sweeps = sweep + 1;
    spmv(a, x, r);
    value_t rn = 0;
    for (std::size_t i = 0; i < n; ++i) {
      value_t d = b[i] - r[i];
      rn += d * d;
    }
    result.residual_norm = std::sqrt(rn);
    if (result.residual_norm <= threshold) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

}  // namespace bernoulli::solvers
