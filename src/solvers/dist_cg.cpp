#include "solvers/dist_cg.hpp"

#include <chrono>
#include <cmath>

#include "analysis/hooks.hpp"
#include "support/counters.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/profile.hpp"
#include "support/trace.hpp"

namespace bernoulli::solvers {

namespace {

constexpr int kCgTag = 9301;

// The PCG recurrence, generic in the distributed matvec (out = A * in over
// local slices). Both the hand-written DistSpmv path and the compiled
// DistKernel path run exactly this loop, so they match iterate-for-iterate.
template <class MatvecFn>
DistCgResult run_pcg(runtime::Process& p, std::size_t n,
                     const MatvecFn& matvec,
                     const Preconditioner& precond_local,
                     ConstVectorView b_local, VectorView x_local,
                     const CgOptions& opts) {
  BERNOULLI_CHECK(b_local.size() == n && x_local.size() == n);

  // The whole solve is executor-phase work (the inspector ran inside
  // build_dist_spmv / compile_dist_matvec): its allreduces and exchanges
  // are attributed to comm.executor.* / vtime.executor.*.
  support::PhaseScope counter_phase("executor");
  support::TraceSpan solve_span("cg.solve", "solvers");

  Vector r(n), z(n), pv(n), q(n);

  auto gdot = [&](ConstVectorView u, ConstVectorView v) {
    return p.allreduce_sum(dot(u, v));
  };

  // Phase attribution (support/profile.hpp): the matvec — exchange
  // included — is the compute phase; the exchange inside it books its own
  // nested interval, so compute-minus-exchange is the local flops share.
  auto timed_matvec = [&](ConstVectorView in, VectorView out) {
    support::ProfilePhaseScope prof(support::kProfPhaseCompute);
    matvec(in, out);
  };

  // r = b - A x
  timed_matvec(x_local, q);
  for (std::size_t i = 0; i < n; ++i) r[i] = b_local[i] - q[i];
  precond_local(r, z);
  pv = z;
  value_t rz = gdot(r, z);
  const value_t bnorm = std::sqrt(gdot(b_local, b_local));
  const value_t threshold =
      opts.tolerance > 0 ? opts.tolerance * (bnorm > 0 ? bnorm : 1.0) : -1.0;

  DistCgResult result;
  for (int it = 0; it < opts.max_iterations; ++it) {
    support::TraceSpan iter_span("cg.iteration", "solvers");
    iter_span.arg("it", static_cast<long long>(it));
    // Serving metrics per solver iteration: wall latency histogram,
    // iteration rate, and the current residual as a gauge — the admission
    // stats a KernelServer needs from a long-running solve.
    const auto iter_t0 = std::chrono::steady_clock::now();
    support::metric_rate("cg.iterations").add(1);
    result.residual_norm = std::sqrt(gdot(r, r));
    iter_span.arg("residual", result.residual_norm);
    support::metric_gauge("cg.residual").set(result.residual_norm);
    const auto book_iter = [&] {
      support::metric_latency("cg.iteration.latency")
          .record_ns(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - iter_t0)
                         .count());
    };
    if (threshold >= 0 && result.residual_norm <= threshold) {
      result.converged = true;
      book_iter();
      return result;
    }
    timed_matvec(pv, q);
    value_t pq = gdot(pv, q);
    BERNOULLI_CHECK_MSG(pq != 0.0, "CG breakdown: p'Ap == 0");
    value_t alpha = rz / pq;
    axpy(alpha, pv, x_local);
    axpy(-alpha, q, r);
    precond_local(r, z);
    value_t rz_new = gdot(r, z);
    xpby(z, rz_new / rz, pv);
    rz = rz_new;
    if (opts.blas1_charge_per_iteration >= 0)
      p.charge_seconds(opts.blas1_charge_per_iteration);
    result.iterations = it + 1;
    book_iter();
  }
  result.residual_norm = std::sqrt(gdot(r, r));
  result.converged = threshold >= 0 && result.residual_norm <= threshold;
  return result;
}

Preconditioner diagonal_precond(ConstVectorView diag_local) {
  for (value_t d : diag_local) BERNOULLI_CHECK(d != 0.0);
  return [diag_local](ConstVectorView r, VectorView z) {
    for (std::size_t i = 0; i < z.size(); ++i) z[i] = r[i] / diag_local[i];
  };
}

}  // namespace

DistCgResult dist_cg_preconditioned(runtime::Process& p,
                                    const spmd::DistSpmv& a,
                                    const Preconditioner& precond_local,
                                    ConstVectorView b_local,
                                    VectorView x_local,
                                    const CgOptions& opts) {
  const auto n = static_cast<std::size_t>(a.local_rows());
  Vector x_full(static_cast<std::size_t>(a.sched.full_size()), 0.0);
  auto matvec = [&](ConstVectorView in, VectorView out) {
    std::copy(in.begin(), in.end(), x_full.begin());
    a.apply(p, x_full, out, kCgTag);
  };
  return run_pcg(p, n, matvec, precond_local, b_local, x_local, opts);
}

DistCgResult dist_cg(runtime::Process& p, const spmd::DistSpmv& a,
                     ConstVectorView diag_local, ConstVectorView b_local,
                     VectorView x_local, const CgOptions& opts) {
  const auto n = static_cast<std::size_t>(a.local_rows());
  BERNOULLI_CHECK(diag_local.size() == n);
  return dist_cg_preconditioned(p, a, diagonal_precond(diag_local), b_local,
                                x_local, opts);
}

DistCgResult dist_cg_compiled(runtime::Process& p, spmd::DistKernel& a,
                              ConstVectorView diag_local,
                              ConstVectorView b_local, VectorView x_local,
                              const CgOptions& opts) {
  const auto n = static_cast<std::size_t>(a.local_rows());
  BERNOULLI_CHECK(diag_local.size() == n);
  auto matvec = [&](ConstVectorView in, VectorView out) {
    VectorView xo = a.x_owned();
    std::copy(in.begin(), in.end(), xo.begin());
    a.run(p, kCgTag);
    ConstVectorView y = a.y_local();
    std::copy(y.begin(), y.end(), out.begin());
  };

  // Run-report hooks (analysis/hooks.hpp): every rank records its own
  // SolveRecord, with comm/vtime measured as deltas around the solve.
  // One atomic load when nobody is observing.
  const bool hooked = analysis::solve_hooks_active();
  analysis::SolveRecord rec;
  long long messages0 = 0, bytes0 = 0;
  double vtime0 = 0.0;
  if (hooked) {
    rec.solver = "dist_cg_compiled";
    rec.rank = p.rank();
    rec.nprocs = p.nprocs();
    rec.plan_explain_json = a.explain_json();
    messages0 = p.stats().messages;
    bytes0 = p.stats().bytes;
    vtime0 = p.virtual_time();
    analysis::notify_solve_pre(rec);
  }

  DistCgResult result = run_pcg(p, n, matvec, diagonal_precond(diag_local),
                                b_local, x_local, opts);

  if (hooked) {
    rec.iterations = result.iterations;
    rec.residual_norm = result.residual_norm;
    rec.converged = result.converged;
    rec.messages = p.stats().messages - messages0;
    rec.bytes = p.stats().bytes - bytes0;
    rec.vtime_s = p.virtual_time() - vtime0;
    analysis::notify_solve_post(rec);
  }
  return result;
}

}  // namespace bernoulli::solvers
