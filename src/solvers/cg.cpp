#include "solvers/cg.hpp"

#include <cmath>

#include "support/error.hpp"

namespace bernoulli::solvers {

value_t dot(ConstVectorView a, ConstVectorView b) {
  BERNOULLI_CHECK(a.size() == b.size());
  value_t sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

void axpy(value_t alpha, ConstVectorView x, VectorView y) {
  BERNOULLI_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += alpha * x[i];
}

void xpby(ConstVectorView x, value_t beta, VectorView y) {
  BERNOULLI_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = x[i] + beta * y[i];
}

Vector extract_diagonal(const formats::Csr& a) {
  BERNOULLI_CHECK(a.rows() == a.cols());
  Vector d(static_cast<std::size_t>(a.rows()), 0.0);
  for (index_t i = 0; i < a.rows(); ++i)
    d[static_cast<std::size_t>(i)] = a.at(i, i);
  return d;
}

CgResult cg(const formats::Csr& a, ConstVectorView b, VectorView x,
            const CgOptions& opts) {
  Vector diag = extract_diagonal(a);
  for (value_t d : diag)
    BERNOULLI_CHECK_MSG(d != 0.0, "zero diagonal entry; Jacobi needs D != 0");
  return cg_preconditioned(
      a, b, x,
      [&diag](ConstVectorView r, VectorView z) {
        for (std::size_t i = 0; i < z.size(); ++i) z[i] = r[i] / diag[i];
      },
      opts);
}

CgResult cg_preconditioned(const formats::Csr& a, ConstVectorView b,
                           VectorView x, const Preconditioner& precond,
                           const CgOptions& opts) {
  BERNOULLI_CHECK(a.rows() == a.cols());
  const auto n = static_cast<std::size_t>(a.rows());
  BERNOULLI_CHECK(b.size() == n && x.size() == n);

  Vector r(n), z(n), p(n), q(n);
  // r = b - A x
  spmv(a, x, q);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - q[i];
  precond(r, z);
  p = z;
  value_t rz = dot(r, z);
  const value_t bnorm = std::sqrt(dot(b, b));
  const value_t threshold =
      opts.tolerance > 0 ? opts.tolerance * (bnorm > 0 ? bnorm : 1.0) : -1.0;

  CgResult result;
  for (int it = 0; it < opts.max_iterations; ++it) {
    result.residual_norm = std::sqrt(dot(r, r));
    if (threshold >= 0 && result.residual_norm <= threshold) {
      result.converged = true;
      return result;
    }
    spmv(a, p, q);
    value_t pq = dot(p, q);
    BERNOULLI_CHECK_MSG(pq != 0.0, "CG breakdown: p'Ap == 0");
    value_t alpha = rz / pq;
    axpy(alpha, p, x);
    axpy(-alpha, q, r);
    precond(r, z);
    value_t rz_new = dot(r, z);
    xpby(z, rz_new / rz, p);
    rz = rz_new;
    result.iterations = it + 1;
  }
  result.residual_norm = std::sqrt(dot(r, r));
  result.converged = threshold >= 0 && result.residual_norm <= threshold;
  return result;
}

}  // namespace bernoulli::solvers
