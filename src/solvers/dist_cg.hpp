// Distributed diagonally-preconditioned CG — the executor the paper times
// in Table 2. Runs the exact recurrence of solvers::cg with:
//   - the distributed SpMV of the chosen variant (spmd::DistSpmv), and
//   - allreduce-based dot products,
// so it matches the sequential solver iterate-for-iterate regardless of
// the number of ranks (a test depends on this).
#pragma once

#include "solvers/cg.hpp"
#include "spmd/dist_compile.hpp"
#include "spmd/matvec.hpp"

namespace bernoulli::solvers {

struct DistCgResult {
  int iterations = 0;
  double residual_norm = 0.0;  // global ||r||_2
  bool converged = false;
};

/// Collective over all ranks. All vectors are LOCAL slices laid out by the
/// distribution used to build `a` (local offset order): b_local, x_local
/// and diag_local have a.local_rows() entries. x_local holds the initial
/// guess and receives the solution slice.
DistCgResult dist_cg(runtime::Process& p, const spmd::DistSpmv& a,
                     ConstVectorView diag_local, ConstVectorView b_local,
                     VectorView x_local, const CgOptions& opts = {});

/// Distributed PCG with a LOCAL preconditioner: each rank applies
/// `precond_local` to its own residual slice (no communication), the
/// block-Jacobi pattern. With per-rank incomplete Cholesky of the local
/// diagonal block this is the parallel ICCG the BlockSolve library
/// implements (its coloring exists to expose exactly this parallelism).
DistCgResult dist_cg_preconditioned(runtime::Process& p,
                                    const spmd::DistSpmv& a,
                                    const Preconditioner& precond_local,
                                    ConstVectorView b_local,
                                    VectorView x_local,
                                    const CgOptions& opts = {});

/// The same recurrence with the SpMV of a COMPILED distributed kernel
/// (spmd::DistKernel): the per-rank local plan is linked once on the first
/// application and re-run through the cursor engine every iteration —
/// the repeated-execution case plan linking exists for. Matches dist_cg
/// iterate-for-iterate on the same operator.
DistCgResult dist_cg_compiled(runtime::Process& p, spmd::DistKernel& a,
                              ConstVectorView diag_local,
                              ConstVectorView b_local, VectorView x_local,
                              const CgOptions& opts = {});

}  // namespace bernoulli::solvers
