// Distribution relations IND(i, p, i') — the global-to-local index
// translation of the fragmentation equation (paper §3.1, Eq. 15).
//
// Every distribution maps each global index i to a unique (processor p,
// local offset i') pair, 1-1 and onto. The paper's point is that these
// relations come in many formats with very different *structure*:
//   - block / cyclic: closed form, ownership free at compile time;
//   - generalized block (HPF-2): replicated block-boundary table;
//   - indirect (HPF-2 MAP): replicated array, O(1) lookup, O(N) memory;
//   - BlockSolve row-runs: replicated small table of contiguous runs
//     (one per color per processor);
//   - Chaos distributed translation table: the MAP itself is distributed —
//     ownership lookups need communication (src/distrib/chaos.*).
// This header covers the replicated family behind one interface.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace bernoulli::distrib {

struct OwnerLocal {
  int owner = 0;
  index_t local = 0;

  friend bool operator==(const OwnerLocal&, const OwnerLocal&) = default;
};

class Distribution {
 public:
  virtual ~Distribution() = default;

  virtual std::string name() const = 0;
  virtual index_t global_size() const = 0;
  virtual int nprocs() const = 0;

  /// Number of global indices owned by processor p.
  virtual index_t local_size(int p) const = 0;

  /// (owner, local offset) of global index i. Replicated distributions
  /// answer this locally; cost-free at inspector time.
  virtual OwnerLocal owner_local(index_t i) const = 0;

  /// Global index of local offset `local` on processor p.
  virtual index_t to_global(int p, index_t local) const = 0;

  /// All global indices owned by p, in local-offset order.
  std::vector<index_t> owned_indices(int p) const;
};

/// Throws unless the distribution is a 1-1, onto map between global
/// indices and (owner, local) pairs — the runtime consistency check the
/// paper notes can only happen at run time for value-based distributions.
void check_distribution(const Distribution& d);

/// HPF BLOCK: processor p owns the contiguous range [p*B, (p+1)*B) with
/// B = ceil(N/P); the last processor may own less.
class BlockDist final : public Distribution {
 public:
  BlockDist(index_t n, int nprocs);

  std::string name() const override { return "block"; }
  index_t global_size() const override { return n_; }
  int nprocs() const override { return p_; }
  index_t local_size(int p) const override;
  OwnerLocal owner_local(index_t i) const override;
  index_t to_global(int p, index_t local) const override;

  index_t block_size() const { return b_; }

 private:
  index_t n_;
  int p_;
  index_t b_;
};

/// HPF CYCLIC: owner = i mod P, local = i div P.
class CyclicDist final : public Distribution {
 public:
  CyclicDist(index_t n, int nprocs);

  std::string name() const override { return "cyclic"; }
  index_t global_size() const override { return n_; }
  int nprocs() const override { return p_; }
  index_t local_size(int p) const override;
  OwnerLocal owner_local(index_t i) const override;
  index_t to_global(int p, index_t local) const override;

 private:
  index_t n_;
  int p_;
};

/// HPF CYCLIC(b): blocks of b consecutive indices dealt round-robin —
/// generalizes BLOCK (b = ceil(N/P)) and CYCLIC (b = 1).
class BlockCyclicDist final : public Distribution {
 public:
  BlockCyclicDist(index_t n, int nprocs, index_t block);

  std::string name() const override { return "block-cyclic"; }
  index_t global_size() const override { return n_; }
  int nprocs() const override { return p_; }
  index_t local_size(int p) const override;
  OwnerLocal owner_local(index_t i) const override;
  index_t to_global(int p, index_t local) const override;

  index_t block() const { return b_; }

 private:
  index_t n_;
  int p_;
  index_t b_;
};

/// HPF-2 generalized block: one contiguous block per processor with
/// arbitrary (replicated) sizes.
class GeneralizedBlockDist final : public Distribution {
 public:
  /// sizes[p] = rows owned by processor p; must sum to n.
  GeneralizedBlockDist(index_t n, std::vector<index_t> sizes);

  std::string name() const override { return "generalized-block"; }
  index_t global_size() const override { return n_; }
  int nprocs() const override { return static_cast<int>(sizes_.size()); }
  index_t local_size(int p) const override;
  OwnerLocal owner_local(index_t i) const override;
  index_t to_global(int p, index_t local) const override;

 private:
  index_t n_;
  std::vector<index_t> sizes_;
  std::vector<index_t> starts_;  // prefix sums, size P+1
};

/// HPF-2 indirect with a REPLICATED map: MAP(i) = owner of row i. Local
/// offsets are assigned by ascending global index within each owner.
class IndirectDist final : public Distribution {
 public:
  IndirectDist(std::vector<int> map, int nprocs);

  std::string name() const override { return "indirect"; }
  index_t global_size() const override {
    return static_cast<index_t>(map_.size());
  }
  int nprocs() const override { return p_; }
  index_t local_size(int p) const override;
  OwnerLocal owner_local(index_t i) const override;
  index_t to_global(int p, index_t local) const override;

  std::span<const int> map() const { return map_; }

 private:
  int p_;
  std::vector<int> map_;
  std::vector<index_t> local_of_;               // local offset per global i
  std::vector<std::vector<index_t>> owned_;     // per-proc global lists
};

/// BlockSolve-style distribution: each processor owns several contiguous
/// row runs (one per color). The run table is small and replicated — more
/// general than generalized block, far more structured than indirect.
class RowRunsDist final : public Distribution {
 public:
  struct Run {
    index_t start = 0;  // first global index of the run
    index_t len = 0;
    int owner = 0;
  };

  /// Runs must tile [0, n) in ascending start order.
  RowRunsDist(index_t n, int nprocs, std::vector<Run> runs);

  std::string name() const override { return "row-runs"; }
  index_t global_size() const override { return n_; }
  int nprocs() const override { return p_; }
  index_t local_size(int p) const override;
  OwnerLocal owner_local(index_t i) const override;
  index_t to_global(int p, index_t local) const override;

  std::span<const Run> runs() const { return runs_; }

  /// The runs owned by p, each annotated with its local starting offset.
  struct LocalRun {
    index_t start = 0;        // global start
    index_t len = 0;
    index_t local_start = 0;  // local offset of the run's first row
  };
  std::vector<LocalRun> local_runs(int p) const;

 private:
  index_t n_;
  int p_;
  std::vector<Run> runs_;
  std::vector<index_t> run_local_start_;  // local start per run
  std::vector<index_t> sizes_;            // per-proc totals
};

/// Splits the color-major BlockSolve layout across processors: within each
/// color, cliques are dealt to processors in contiguous chunks, giving each
/// processor one run per color — exactly the library's partition (paper
/// §1: "each processor receives several blocks of contiguous rows").
RowRunsDist rowruns_from_color_ptr(std::span<const index_t> color_ptr,
                                   index_t n, int nprocs);

}  // namespace bernoulli::distrib
