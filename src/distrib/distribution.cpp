#include "distrib/distribution.hpp"

#include <algorithm>
#include <numeric>

#include "support/error.hpp"

namespace bernoulli::distrib {

std::vector<index_t> Distribution::owned_indices(int p) const {
  std::vector<index_t> out(static_cast<std::size_t>(local_size(p)));
  for (std::size_t k = 0; k < out.size(); ++k)
    out[k] = to_global(p, static_cast<index_t>(k));
  return out;
}

void check_distribution(const Distribution& d) {
  const index_t n = d.global_size();
  index_t total = 0;
  for (int p = 0; p < d.nprocs(); ++p) total += d.local_size(p);
  BERNOULLI_CHECK_MSG(total == n, d.name() << ": local sizes sum to " << total
                                           << ", expected " << n);
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (index_t i = 0; i < n; ++i) {
    OwnerLocal ol = d.owner_local(i);
    BERNOULLI_CHECK_MSG(ol.owner >= 0 && ol.owner < d.nprocs(),
                        d.name() << ": bad owner for " << i);
    BERNOULLI_CHECK_MSG(ol.local >= 0 && ol.local < d.local_size(ol.owner),
                        d.name() << ": bad local offset for " << i);
    BERNOULLI_CHECK_MSG(d.to_global(ol.owner, ol.local) == i,
                        d.name() << ": round trip failed for " << i);
    BERNOULLI_CHECK(!seen[static_cast<std::size_t>(i)]);
    seen[static_cast<std::size_t>(i)] = true;
  }
}

// ------------------------------------------------------------------ Block

BlockDist::BlockDist(index_t n, int nprocs) : n_(n), p_(nprocs) {
  BERNOULLI_CHECK(n >= 0 && nprocs >= 1);
  b_ = (n + nprocs - 1) / nprocs;
  if (b_ == 0) b_ = 1;
}

index_t BlockDist::local_size(int p) const {
  index_t start = std::min<index_t>(static_cast<index_t>(p) * b_, n_);
  index_t end = std::min<index_t>(start + b_, n_);
  return end - start;
}

OwnerLocal BlockDist::owner_local(index_t i) const {
  BERNOULLI_CHECK(i >= 0 && i < n_);
  return {static_cast<int>(i / b_), i % b_};
}

index_t BlockDist::to_global(int p, index_t local) const {
  return static_cast<index_t>(p) * b_ + local;
}

// ----------------------------------------------------------------- Cyclic

CyclicDist::CyclicDist(index_t n, int nprocs) : n_(n), p_(nprocs) {
  BERNOULLI_CHECK(n >= 0 && nprocs >= 1);
}

index_t CyclicDist::local_size(int p) const {
  return (n_ - p + p_ - 1) / p_;
}

OwnerLocal CyclicDist::owner_local(index_t i) const {
  BERNOULLI_CHECK(i >= 0 && i < n_);
  return {static_cast<int>(i % p_), i / p_};
}

index_t CyclicDist::to_global(int p, index_t local) const {
  return local * p_ + p;
}

// ----------------------------------------------------------- Block-cyclic

BlockCyclicDist::BlockCyclicDist(index_t n, int nprocs, index_t block)
    : n_(n), p_(nprocs), b_(block) {
  BERNOULLI_CHECK(n >= 0 && nprocs >= 1 && block >= 1);
}

index_t BlockCyclicDist::local_size(int p) const {
  // Full rounds deal b*P indices; the remainder is split block by block.
  const index_t round = b_ * p_;
  index_t size = (n_ / round) * b_;
  index_t rem = n_ % round;
  index_t my_start = static_cast<index_t>(p) * b_;
  if (rem > my_start) size += std::min(b_, rem - my_start);
  return size;
}

OwnerLocal BlockCyclicDist::owner_local(index_t i) const {
  BERNOULLI_CHECK(i >= 0 && i < n_);
  const index_t blk = i / b_;           // global block number
  const int owner = static_cast<int>(blk % p_);
  const index_t local_blk = blk / p_;   // how many of my blocks precede
  return {owner, local_blk * b_ + i % b_};
}

index_t BlockCyclicDist::to_global(int p, index_t local) const {
  const index_t local_blk = local / b_;
  const index_t blk = local_blk * p_ + static_cast<index_t>(p);
  return blk * b_ + local % b_;
}

// ------------------------------------------------------ Generalized block

GeneralizedBlockDist::GeneralizedBlockDist(index_t n,
                                           std::vector<index_t> sizes)
    : n_(n), sizes_(std::move(sizes)) {
  BERNOULLI_CHECK(!sizes_.empty());
  starts_.push_back(0);
  for (index_t s : sizes_) {
    BERNOULLI_CHECK(s >= 0);
    starts_.push_back(starts_.back() + s);
  }
  BERNOULLI_CHECK_MSG(starts_.back() == n,
                      "block sizes sum to " << starts_.back() << ", expected "
                                            << n);
}

index_t GeneralizedBlockDist::local_size(int p) const {
  return sizes_[static_cast<std::size_t>(p)];
}

OwnerLocal GeneralizedBlockDist::owner_local(index_t i) const {
  BERNOULLI_CHECK(i >= 0 && i < n_);
  auto it = std::upper_bound(starts_.begin(), starts_.end(), i);
  int p = static_cast<int>(it - starts_.begin()) - 1;
  return {p, i - starts_[static_cast<std::size_t>(p)]};
}

index_t GeneralizedBlockDist::to_global(int p, index_t local) const {
  return starts_[static_cast<std::size_t>(p)] + local;
}

// --------------------------------------------------------------- Indirect

IndirectDist::IndirectDist(std::vector<int> map, int nprocs)
    : p_(nprocs), map_(std::move(map)) {
  BERNOULLI_CHECK(nprocs >= 1);
  owned_.resize(static_cast<std::size_t>(nprocs));
  local_of_.resize(map_.size());
  for (std::size_t i = 0; i < map_.size(); ++i) {
    int p = map_[i];
    BERNOULLI_CHECK_MSG(p >= 0 && p < nprocs, "MAP(" << i << ") = " << p
                                                     << " out of range");
    local_of_[i] = static_cast<index_t>(owned_[static_cast<std::size_t>(p)].size());
    owned_[static_cast<std::size_t>(p)].push_back(static_cast<index_t>(i));
  }
}

index_t IndirectDist::local_size(int p) const {
  return static_cast<index_t>(owned_[static_cast<std::size_t>(p)].size());
}

OwnerLocal IndirectDist::owner_local(index_t i) const {
  BERNOULLI_CHECK(i >= 0 && i < global_size());
  return {map_[static_cast<std::size_t>(i)],
          local_of_[static_cast<std::size_t>(i)]};
}

index_t IndirectDist::to_global(int p, index_t local) const {
  return owned_[static_cast<std::size_t>(p)][static_cast<std::size_t>(local)];
}

// --------------------------------------------------------------- Row runs

RowRunsDist::RowRunsDist(index_t n, int nprocs, std::vector<Run> runs)
    : n_(n), p_(nprocs), runs_(std::move(runs)) {
  BERNOULLI_CHECK(nprocs >= 1);
  sizes_.assign(static_cast<std::size_t>(nprocs), 0);
  index_t pos = 0;
  run_local_start_.reserve(runs_.size());
  for (const Run& r : runs_) {
    BERNOULLI_CHECK_MSG(r.start == pos, "runs must tile [0, n) in order");
    BERNOULLI_CHECK(r.len >= 0);
    BERNOULLI_CHECK(r.owner >= 0 && r.owner < nprocs);
    run_local_start_.push_back(sizes_[static_cast<std::size_t>(r.owner)]);
    sizes_[static_cast<std::size_t>(r.owner)] += r.len;
    pos += r.len;
  }
  BERNOULLI_CHECK_MSG(pos == n, "runs cover " << pos << ", expected " << n);
}

index_t RowRunsDist::local_size(int p) const {
  return sizes_[static_cast<std::size_t>(p)];
}

OwnerLocal RowRunsDist::owner_local(index_t i) const {
  BERNOULLI_CHECK(i >= 0 && i < n_);
  // Binary search over run starts.
  std::size_t lo = 0, hi = runs_.size();
  while (lo + 1 < hi) {
    std::size_t mid = (lo + hi) / 2;
    if (runs_[mid].start <= i)
      lo = mid;
    else
      hi = mid;
  }
  const Run& r = runs_[lo];
  BERNOULLI_CHECK(i >= r.start && i < r.start + r.len);
  return {r.owner, run_local_start_[lo] + (i - r.start)};
}

index_t RowRunsDist::to_global(int p, index_t local) const {
  for (std::size_t k = 0; k < runs_.size(); ++k) {
    if (runs_[k].owner != p) continue;
    if (local < run_local_start_[k] + runs_[k].len)
      return runs_[k].start + (local - run_local_start_[k]);
  }
  BERNOULLI_CHECK_MSG(false, "local offset " << local << " out of range on "
                                             << p);
  __builtin_unreachable();
}

std::vector<RowRunsDist::LocalRun> RowRunsDist::local_runs(int p) const {
  std::vector<LocalRun> out;
  for (std::size_t k = 0; k < runs_.size(); ++k)
    if (runs_[k].owner == p && runs_[k].len > 0)
      out.push_back({runs_[k].start, runs_[k].len, run_local_start_[k]});
  return out;
}

RowRunsDist rowruns_from_color_ptr(std::span<const index_t> color_ptr,
                                   index_t n, int nprocs) {
  BERNOULLI_CHECK(!color_ptr.empty() && color_ptr.front() == 0 &&
                  color_ptr.back() == n);
  std::vector<RowRunsDist::Run> runs;
  for (std::size_t c = 0; c + 1 < color_ptr.size(); ++c) {
    const index_t begin = color_ptr[c], end = color_ptr[c + 1];
    const index_t len = end - begin;
    // Deal the color's rows to processors in contiguous chunks.
    index_t chunk = (len + nprocs - 1) / nprocs;
    index_t pos = begin;
    for (int p = 0; p < nprocs && pos < end; ++p) {
      index_t take = std::min<index_t>(chunk, end - pos);
      runs.push_back({pos, take, p});
      pos += take;
    }
    BERNOULLI_CHECK(pos == end);
  }
  return RowRunsDist(n, nprocs, std::move(runs));
}

}  // namespace bernoulli::distrib
