// Chaos/PARTI-style distributed translation table (paper §1 and §3.1,
// Eq. 8-11; Ponnusamy, Saltz & Choudhary [15]).
//
// The user gives each processor the list of global rows assigned to it.
// The lists are transposed into a translation table that is itself
// distributed BLOCKWISE: processor q = floor(i / B) stores the (owner,
// local offset) of global index i at slot h = i - q*B. Consequences the
// paper measures:
//   - building the table is an all-to-all with volume proportional to the
//     PROBLEM SIZE (every row's entry travels once), and
//   - every ownership query is another all-to-all round trip, even when
//     the underlying communication pattern is nearest-neighbour.
// Contrast with the replicated distributions in distribution.hpp whose
// lookups are local — that contrast is Table 3 / Figure 4.
#pragma once

#include "distrib/distribution.hpp"
#include "runtime/machine.hpp"

namespace bernoulli::distrib {

class ChaosTranslationTable {
 public:
  /// Collective over all ranks: builds the distributed table from each
  /// rank's owned-row list (`my_rows[k]` is the global index stored at
  /// local offset k). All-to-all, volume ~ N.
  ChaosTranslationTable(runtime::Process& p, index_t global_size,
                        std::span<const index_t> my_rows);

  index_t global_size() const { return n_; }
  index_t block() const { return block_; }

  /// Collective over all ranks: resolves (owner, local) for each queried
  /// global index, preserving order. Ranks may query different (even
  /// empty) batches, but every rank must participate in the exchange.
  std::vector<OwnerLocal> query(runtime::Process& p,
                                std::span<const index_t> globals) const;

 private:
  index_t n_ = 0;
  index_t block_ = 1;
  // This rank's slice of the table, keyed by global index. A hash table of
  // translation records, like the PARTI/Chaos ttable the paper measured —
  // per-entry insert/lookup cost is part of what Table 3 observes (a dense
  // array would be possible here but is not what the library did).
  std::unordered_map<index_t, OwnerLocal> slice_;
};

}  // namespace bernoulli::distrib
