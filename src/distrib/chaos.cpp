#include "distrib/chaos.hpp"

#include "support/counters.hpp"
#include "support/error.hpp"
#include "support/trace.hpp"

namespace bernoulli::distrib {

namespace {

// Tag space reserved for the translation table's exchanges.
constexpr int kBuildTag = 9101;
constexpr int kQueryTag = 9102;
constexpr int kReplyTag = 9103;

struct TableEntry {
  index_t global;
  index_t local;
  int owner;
};

struct Reply {
  int owner;
  index_t local;
};

}  // namespace

ChaosTranslationTable::ChaosTranslationTable(runtime::Process& p,
                                             index_t global_size,
                                             std::span<const index_t> my_rows)
    : n_(global_size) {
  support::TraceSpan span("chaos.build", "distrib");
  span.arg("registered", static_cast<long long>(my_rows.size()));
  support::counter("distrib.chaos.builds").add();
  support::counter("distrib.chaos.registered")
      .add(static_cast<long long>(my_rows.size()));
  const int P = p.nprocs();
  block_ = (n_ + P - 1) / P;
  if (block_ == 0) block_ = 1;

  // Route each owned row's entry to the table slice holding it.
  std::vector<std::vector<TableEntry>> out(static_cast<std::size_t>(P));
  p.solo([&] {
    for (std::size_t k = 0; k < my_rows.size(); ++k) {
      index_t i = my_rows[k];
      BERNOULLI_CHECK(i >= 0 && i < n_);
      int q = static_cast<int>(i / block_);
      out[static_cast<std::size_t>(q)].push_back(
          {i, static_cast<index_t>(k), p.rank()});
    }
  });
  auto in = p.alltoallv(out, kBuildTag);

  const index_t lo = static_cast<index_t>(p.rank()) * block_;
  const index_t hi = std::min<index_t>(lo + block_, n_);
  p.solo([&] {
    for (const auto& batch : in) {
      for (const TableEntry& e : batch) {
        BERNOULLI_CHECK(e.global >= lo && e.global < hi);
        auto [it, inserted] =
            slice_.emplace(e.global, OwnerLocal{e.owner, e.local});
        BERNOULLI_CHECK_MSG(inserted,
                            "global index " << e.global << " claimed twice");
      }
    }
  });
}

std::vector<OwnerLocal> ChaosTranslationTable::query(
    runtime::Process& p, std::span<const index_t> globals) const {
  support::TraceSpan span("chaos.query", "distrib");
  span.arg("translated", static_cast<long long>(globals.size()));
  support::counter("distrib.chaos.queries").add();
  support::counter("distrib.chaos.translated")
      .add(static_cast<long long>(globals.size()));
  const int P = p.nprocs();

  // Round 1: scatter the queries to the table slices.
  std::vector<std::vector<index_t>> ask(static_cast<std::size_t>(P));
  // Remember where each query came from so replies can be re-ordered.
  std::vector<std::vector<std::size_t>> origin(static_cast<std::size_t>(P));
  p.solo([&] {
    for (std::size_t k = 0; k < globals.size(); ++k) {
      index_t i = globals[k];
      BERNOULLI_CHECK(i >= 0 && i < n_);
      int q = static_cast<int>(i / block_);
      ask[static_cast<std::size_t>(q)].push_back(i);
      origin[static_cast<std::size_t>(q)].push_back(k);
    }
  });
  auto questions = p.alltoallv(ask, kQueryTag);

  // Answer from the local slice.
  std::vector<std::vector<Reply>> answers(static_cast<std::size_t>(P));
  p.solo([&] {
    for (int q = 0; q < P; ++q) {
      for (index_t i : questions[static_cast<std::size_t>(q)]) {
        auto it = slice_.find(i);
        BERNOULLI_CHECK_MSG(it != slice_.end(),
                            "index " << i << " not present in the table");
        answers[static_cast<std::size_t>(q)].push_back(
            {it->second.owner, it->second.local});
      }
    }
  });

  // Round 2: replies travel back; scatter into the original order.
  auto replies = p.alltoallv(answers, kReplyTag);
  std::vector<OwnerLocal> out(globals.size());
  for (int q = 0; q < P; ++q) {
    const auto& rep = replies[static_cast<std::size_t>(q)];
    const auto& org = origin[static_cast<std::size_t>(q)];
    BERNOULLI_CHECK(rep.size() == org.size());
    for (std::size_t k = 0; k < rep.size(); ++k)
      out[org[k]] = {rep[k].owner, rep[k].local};
  }
  return out;
}

}  // namespace bernoulli::distrib
