// Compile-once, serve-many: a concurrent SpMV server over the engine
// ladder (docs/SERVING.md).
//
// The paper's inspector/executor split exists so one expensive
// compile/inspect amortizes over many executes; the KernelServer turns
// that into the serving story. Each registered matrix compiles to a
// (Plan, Query) pair ONCE; the linked artifacts — LinkedPlan, LinkedMac,
// a pool of LinkedRunners and (optionally, toolchain permitting) a
// specialized dlopen'd kernel — live in a bounded LRU cache keyed by
//
//   (plan fingerprint, storage identity, distribution tag)
//
// where the plan fingerprint (compiler::plan_fingerprint) pins the
// structural half (query shape, join order/methods, format access paths)
// and the storage identity pins the concrete arrays. Requests against a
// cached key pay zero compile/link work: they lease a pooled runner,
// rebind the mac's x/y value spans to the request buffers and run.
//
// Batching: when enabled, concurrent requests against the same cached
// matrix coalesce leader/follower-style into one SpMM-style multi-vector
// sweep (one pass over the sparse rows amortizes across all gathered
// right-hand sides — the src/blas spmm move applied to in-flight
// requests). Per-request results are BITWISE identical to the unbatched
// path: each request's accumulation order (ascending k within a row,
// scale * A * x multiply chain) is exactly the engine's, only interleaved
// across requests. tests/server_test.cpp enforces this differentially
// against serial CompiledKernel execution and blas::spmm.
//
// Observability: every request books the same execute.* group an engine
// run books. Unbatched requests run the engine, which flushes itself; a
// batched sweep REPLAYS the entry's captured per-run FlushDelta k times
// and splits the sweep's wall time across the k requests with an exact
// integer sum — all under the metrics commit lock — so
// execute.latency.sum_ns == execute.wall_ns and the executor.* counters
// reconcile with an unbatched serve of the same traffic. Server-level
// counters (server.cache.hits/misses/evictions, server.requests,
// server.batches, server.batched_requests) and the server.request.latency
// histogram layer on top; see docs/SERVING.md for which layer owns what.
#pragma once

#include <condition_variable>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "compiler/link.hpp"
#include "compiler/loopnest.hpp"
#include "compiler/specialize.hpp"
#include "formats/csr.hpp"

namespace bernoulli::server {

struct ServerOptions {
  /// Bounded LRU capacity, in cached plans. Evictions are safe while the
  /// evicted plan is serving: in-flight requests hold a shared reference
  /// and the entry dies with its last request.
  std::size_t plan_cache_capacity = 8;
  /// Coalesce concurrent requests against one cached matrix into
  /// SpMM-style multi-vector sweeps.
  bool batching = true;
  /// Max requests per sweep; further arrivals form the next sweep.
  int max_batch = 8;
  /// Workers for the batched sweep over support::shared_pool(); 1 = run
  /// on the leader. Row-chunked, so results stay bitwise-deterministic.
  /// Safe to use when clients themselves run on pool threads — nested
  /// run_slots degrades to inline execution instead of deadlocking.
  int sweep_threads = 1;
  /// Additionally emit+compile+dlopen a specialized kernel per cached
  /// plan and serve single requests through it (falls back to the linked
  /// runner when the toolchain or the plan shape refuses). Serialized per
  /// entry: the generated code binds the entry's staging buffers.
  bool use_specialized = false;
};

/// Point-in-time server statistics (per-server, unlike the process-global
/// server.* counters which aggregate across servers).
struct ServerStats {
  long long requests = 0;
  long long cache_hits = 0;
  long long cache_misses = 0;
  long long cache_evictions = 0;
  long long batches = 0;          // multi-request sweeps executed
  long long batched_requests = 0; // requests served by those sweeps
};

class KernelServer {
 public:
  explicit KernelServer(ServerOptions opts = {});
  ~KernelServer();

  KernelServer(const KernelServer&) = delete;
  KernelServer& operator=(const KernelServer&) = delete;

  /// Registers a CSR matrix under `name` and returns its handle. The
  /// matrix is BORROWED — the caller keeps it alive and unmoved while the
  /// server may serve it. Registration compiles the SpMV loop nest once
  /// to derive the cache key (plan fingerprint + storage identity +
  /// `distribution`); the linked artifacts themselves are built lazily by
  /// the first request (a cache miss).
  int add_csr(const std::string& name, const formats::Csr& m,
              const std::string& distribution = "local");

  /// y = A x against the cached plan (y is overwritten). Thread-safe;
  /// callers may issue concurrent requests from any thread, including
  /// pool worker threads. x must have A.cols() elements, y A.rows().
  void spmv(int handle, ConstVectorView x, VectorView y);
  void spmv(const std::string& name, ConstVectorView x, VectorView y);

  /// The cache key registration derived for this handle (tests: two
  /// handles over the same storage+distribution share a key).
  const std::string& key_of(int handle) const;

  ServerStats stats() const;
  std::size_t cache_size() const;
  const ServerOptions& options() const { return opts_; }

 private:
  struct CacheEntry;
  struct Pending;
  struct MatrixRec {
    std::string name;
    const formats::Csr* matrix = nullptr;
    std::string distribution;
    std::string key;
  };

  std::shared_ptr<CacheEntry> get_entry(int handle);
  std::shared_ptr<CacheEntry> build_entry(const MatrixRec& rec);
  void run_single(CacheEntry& e, ConstVectorView x, VectorView y);
  void run_batch(CacheEntry& e, const std::vector<Pending*>& batch);
  void serve_batched(const std::shared_ptr<CacheEntry>& e, ConstVectorView x,
                     VectorView y);
  void commit_batch_observability(CacheEntry& e, int k, long long wall_ns);

  ServerOptions opts_;

  mutable std::mutex cache_mu_;  // guards matrices_, cache_, lru_, stats_
  std::vector<MatrixRec> matrices_;
  struct CacheSlot {
    std::shared_ptr<CacheEntry> entry;
    std::list<std::string>::iterator lru_it;
  };
  std::map<std::string, CacheSlot> cache_;
  std::list<std::string> lru_;  // front = most recently used key
  ServerStats stats_;
};

}  // namespace bernoulli::server
