#include "server/kernel_server.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "support/counters.hpp"
#include "support/error.hpp"
#include "support/histogram.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"

namespace bernoulli::server {

namespace {

long long now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Process-global server counters (one registry across servers, like the
// executor.* family). Per-server ServerStats mirror these so tests on a
// fresh server see deterministic numbers.
struct ServerCounters {
  support::Counter& requests = support::counter("server.requests");
  support::Counter& hits = support::counter("server.cache.hits");
  support::Counter& misses = support::counter("server.cache.misses");
  support::Counter& evictions = support::counter("server.cache.evictions");
  support::Counter& batches = support::counter("server.batches");
  support::Counter& batched = support::counter("server.batched_requests");
};

ServerCounters& server_counters() {
  static ServerCounters c;
  return c;
}

// The canonical SpMV loop nest every registered CSR matrix compiles:
//   DO i = 1, rows; DO j = 1, cols; Y(i) += A(i,j) * X(j)
// Relation order after compile(): 0 = interval I, 1 = target y,
// 2 = A, 3 = x (statement order) — the slots link_mac below relies on.
compiler::LoopNest spmv_nest(index_t rows, index_t cols) {
  compiler::LoopNest nest;
  nest.loops = {{"i", rows}, {"j", cols}};
  nest.body.target = {"y", {"i"}};
  nest.body.factors = {{"A", {"i", "j"}}, {"x", {"j"}}};
  return nest;
}

}  // namespace

/// One request parked on an entry's batch queue. Owned by the requesting
/// thread's stack frame; the leader only touches it between enqueue and
/// the done handshake under batch_mu.
struct KernelServer::Pending {
  ConstVectorView x;
  VectorView y;
  bool done = false;
  std::exception_ptr error;
};

/// Everything one cached plan owns. Heap-allocated and address-stable:
/// the kernel's linked program, the LinkedPlan, the mac and the (optional)
/// specialized kernel all borrow storage inside this struct, so it is
/// built in dependency order (buffers -> bindings -> kernel -> linked
/// artifacts) and never moves afterwards. In-flight requests hold the
/// shared_ptr, which is what makes LRU eviction safe mid-request.
struct KernelServer::CacheEntry {
  std::string key;
  const formats::Csr* matrix = nullptr;

  // Staging buffers the compiled views bind. The unbatched linked path
  // never touches them (it rebinds the mac's spans per request); the
  // specialized kernel captured their addresses at emission, so its path
  // copies through them under spec_mu.
  Vector proto_x;
  Vector proto_y;
  compiler::Bindings bindings;
  compiler::CompiledKernel kernel;

  compiler::LinkedPlan lp;
  compiler::LinkedMac mac0;        // template mac; requests copy + rebind
  std::size_t x_factor = 0;        // mac0.factors index bound to "x"

  // One engine run's observability, captured from the warmup run and
  // replayed k-fold when a batched sweep stands in for k engine runs.
  // SpMV enumeration is structure-only, so the delta is x-independent.
  compiler::LinkedRunner::FlushDelta delta;

  // Runner freelist: each concurrent unbatched request leases a runner
  // (scratch reuse in steady state), growing on demand under pool_mu.
  std::mutex pool_mu;
  std::vector<std::unique_ptr<compiler::LinkedRunner>> free_runners;

  // Leader/follower batcher state (see serve_batched).
  std::mutex batch_mu;
  std::condition_variable batch_cv;
  std::deque<Pending*> queue;
  bool leader_active = false;

  // Optional specialized kernel, serialized per entry: the generated code
  // binds proto_x/proto_y by address.
  std::mutex spec_mu;
  std::unique_ptr<compiler::SpecializedKernel> spec;
};

KernelServer::KernelServer(ServerOptions opts) : opts_(opts) {
  BERNOULLI_CHECK_MSG(opts_.plan_cache_capacity >= 1,
                      "plan cache capacity must be >= 1");
  BERNOULLI_CHECK_MSG(opts_.max_batch >= 1, "max_batch must be >= 1");
  if (opts_.sweep_threads > 1) support::shared_pool(opts_.sweep_threads);
}

KernelServer::~KernelServer() = default;

int KernelServer::add_csr(const std::string& name, const formats::Csr& m,
                          const std::string& distribution) {
  // Compile once to fingerprint the plan structure; the linked artifacts
  // themselves are built lazily by the first request against the key.
  compiler::Bindings b;
  Vector dummy_x(static_cast<std::size_t>(m.cols()), 0.0);
  Vector dummy_y(static_cast<std::size_t>(m.rows()), 0.0);
  b.bind_csr("A", m);
  b.bind_dense_vector("x", ConstVectorView(dummy_x));
  b.bind_dense_vector("y", VectorView(dummy_y));
  const compiler::CompiledKernel k =
      compiler::compile(spmv_nest(m.rows(), m.cols()), b);
  const std::uint64_t fp = compiler::plan_fingerprint(k.plan(), k.query());

  // Cache key = structural fingerprint + storage identity + distribution.
  // Storage identity is the concrete array addresses and shape: two
  // handles over the SAME arrays share a plan; a rebuilt (moved) matrix
  // does not, because its linked cursors would dangle.
  std::ostringstream key;
  key << std::hex << fp << '/' << static_cast<const void*>(m.rowptr().data())
      << ':' << static_cast<const void*>(m.colind().data()) << ':'
      << static_cast<const void*>(m.vals().data()) << '/' << std::dec
      << m.rows() << 'x' << m.cols() << ':' << m.nnz() << '/' << distribution;

  const std::lock_guard<std::mutex> lk(cache_mu_);
  matrices_.push_back({name, &m, distribution, key.str()});
  return static_cast<int>(matrices_.size()) - 1;
}

const std::string& KernelServer::key_of(int handle) const {
  const std::lock_guard<std::mutex> lk(cache_mu_);
  BERNOULLI_CHECK_MSG(
      handle >= 0 && static_cast<std::size_t>(handle) < matrices_.size(),
      "unknown server handle " << handle);
  return matrices_[static_cast<std::size_t>(handle)].key;
}

ServerStats KernelServer::stats() const {
  const std::lock_guard<std::mutex> lk(cache_mu_);
  return stats_;
}

std::size_t KernelServer::cache_size() const {
  const std::lock_guard<std::mutex> lk(cache_mu_);
  return cache_.size();
}

std::shared_ptr<KernelServer::CacheEntry> KernelServer::build_entry(
    const MatrixRec& rec) {
  auto e = std::make_shared<CacheEntry>();
  e->key = rec.key;
  e->matrix = rec.matrix;
  const formats::Csr& m = *rec.matrix;
  e->proto_x.assign(static_cast<std::size_t>(m.cols()), 0.0);
  e->proto_y.assign(static_cast<std::size_t>(m.rows()), 0.0);
  e->bindings.bind_csr("A", m);
  e->bindings.bind_dense_vector("x", ConstVectorView(e->proto_x));
  e->bindings.bind_dense_vector("y", VectorView(e->proto_y));
  // Move-assign into the entry BEFORE linking: the linked plan borrows
  // the kernel's plan/query storage at its final address.
  e->kernel = compiler::compile(spmv_nest(m.rows(), m.cols()), e->bindings);
  e->lp = compiler::link_plan(e->kernel.plan(), e->kernel.query());
  e->mac0 = compiler::link_mac(e->kernel.query(), /*target_rel=*/1,
                               /*factor_rels=*/{2, 3}, /*scale=*/1.0);
  e->x_factor = e->mac0.factors.size();
  for (std::size_t f = 0; f < e->mac0.factors.size(); ++f)
    if (e->mac0.factors[f].view->name() == "x") e->x_factor = f;
  BERNOULLI_CHECK_MSG(e->x_factor < e->mac0.factors.size(),
                      "no dense-vector factor named x in the SpMV mac");

  // Warmup run: pays the engine's first-run scratch allocation off the
  // request path AND captures the per-run FlushDelta the batched path
  // replays. It books observability normally — one extra engine run per
  // cache miss, which the counter-reconciliation tests account for.
  auto runner = std::make_unique<compiler::LinkedRunner>(e->lp);
  runner->set_flush_capture(&e->delta);
  runner->run(e->mac0);
  runner->set_flush_capture(nullptr);
  e->free_runners.push_back(std::move(runner));

  if (opts_.use_specialized) {
    auto spec = std::make_unique<compiler::SpecializedKernel>(e->lp, e->mac0);
    if (spec->ok()) e->spec = std::move(spec);
  }
  return e;
}

std::shared_ptr<KernelServer::CacheEntry> KernelServer::get_entry(int handle) {
  MatrixRec rec;
  {
    const std::lock_guard<std::mutex> lk(cache_mu_);
    BERNOULLI_CHECK_MSG(
        handle >= 0 && static_cast<std::size_t>(handle) < matrices_.size(),
        "unknown server handle " << handle);
    rec = matrices_[static_cast<std::size_t>(handle)];
    auto it = cache_.find(rec.key);
    if (it != cache_.end()) {
      ++stats_.cache_hits;
      server_counters().hits.add(1);
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.entry;
    }
    ++stats_.cache_misses;
    server_counters().misses.add(1);
  }

  // Build outside the lock (compile + link + warmup is the expensive
  // part); two threads missing the same key may both build, the second
  // one's work is dropped in favor of the published entry.
  std::shared_ptr<CacheEntry> built = build_entry(rec);

  const std::lock_guard<std::mutex> lk(cache_mu_);
  auto it = cache_.find(rec.key);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.entry;
  }
  lru_.push_front(rec.key);
  cache_[rec.key] = {built, lru_.begin()};
  while (cache_.size() > opts_.plan_cache_capacity) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    cache_.erase(victim);
    ++stats_.cache_evictions;
    server_counters().evictions.add(1);
  }
  return built;
}

void KernelServer::spmv(const std::string& name, ConstVectorView x,
                        VectorView y) {
  int handle = -1;
  {
    const std::lock_guard<std::mutex> lk(cache_mu_);
    for (std::size_t i = 0; i < matrices_.size(); ++i)
      if (matrices_[i].name == name) handle = static_cast<int>(i);
  }
  BERNOULLI_CHECK_MSG(handle >= 0, "no matrix registered as " << name);
  spmv(handle, x, y);
}

void KernelServer::spmv(int handle, ConstVectorView x, VectorView y) {
  const long long t0 = now_ns();
  std::shared_ptr<CacheEntry> e = get_entry(handle);
  BERNOULLI_CHECK_MSG(
      x.size() == e->proto_x.size() && y.size() == e->proto_y.size(),
      "spmv request shape mismatch: x " << x.size() << " y " << y.size()
      << " vs matrix " << e->proto_y.size() << "x" << e->proto_x.size());
  {
    const std::lock_guard<std::mutex> lk(cache_mu_);
    ++stats_.requests;
  }
  server_counters().requests.add(1);
  if (opts_.batching)
    serve_batched(e, x, y);
  else
    run_single(*e, x, y);
  support::metric_latency("server.request.latency").record_ns(now_ns() - t0);
}

void KernelServer::run_single(CacheEntry& e, ConstVectorView x, VectorView y) {
  if (e.spec) {
    // The specialized kernel captured the staging buffers' addresses at
    // emission, so this path stages through them, serialized per entry.
    const std::lock_guard<std::mutex> lk(e.spec_mu);
    std::copy(x.begin(), x.end(), e.proto_x.begin());
    std::fill(e.proto_y.begin(), e.proto_y.end(), 0.0);
    e.spec->run();
    std::copy(e.proto_y.begin(), e.proto_y.end(), y.begin());
    return;
  }
  // Linked path: lease a pooled runner and rebind the mac's value spans
  // to the request buffers. run(LinkedMac) re-resolves operand slots and
  // re-prepares bulk drains every run, so per-request rebinding is safe.
  std::unique_ptr<compiler::LinkedRunner> runner;
  {
    const std::lock_guard<std::mutex> lk(e.pool_mu);
    if (!e.free_runners.empty()) {
      runner = std::move(e.free_runners.back());
      e.free_runners.pop_back();
    }
  }
  if (!runner) runner = std::make_unique<compiler::LinkedRunner>(e.lp);
  compiler::LinkedMac mac = e.mac0;
  mac.target_data = y;
  mac.factors[e.x_factor].data = x;
  std::fill(y.begin(), y.end(), 0.0);
  try {
    runner->run(mac);
  } catch (...) {
    const std::lock_guard<std::mutex> lk(e.pool_mu);
    e.free_runners.push_back(std::move(runner));
    throw;
  }
  const std::lock_guard<std::mutex> lk(e.pool_mu);
  e.free_runners.push_back(std::move(runner));
}

void KernelServer::serve_batched(const std::shared_ptr<CacheEntry>& e,
                                 ConstVectorView x, VectorView y) {
  Pending p;
  p.x = x;
  p.y = y;
  std::unique_lock<std::mutex> lk(e->batch_mu);
  e->queue.push_back(&p);
  if (e->leader_active) {
    // Follower: the current leader drains the queue (including us) in
    // sweeps. It cannot release leadership while our request is queued —
    // both the exit check and our enqueue run under batch_mu — but the
    // predicate tolerates it by promoting us to leader below.
    e->batch_cv.wait(lk, [&] { return p.done || !e->leader_active; });
    if (p.done) {
      if (p.error) std::rethrow_exception(p.error);
      return;
    }
  }
  // Leader: drain the queue in sweeps of at most max_batch until empty,
  // then hand leadership back. Requests that arrive mid-sweep coalesce
  // into the next one.
  e->leader_active = true;
  if (opts_.max_batch > 1) {
    // Batching window: one yield before the first sweep lets requests
    // racing with ours enqueue and coalesce. Without it, a single-core
    // host drains every request as a batch of one — the leader always
    // finishes before the next client is even scheduled.
    lk.unlock();
    std::this_thread::yield();
    lk.lock();
  }
  while (!e->queue.empty()) {
    std::vector<Pending*> batch;
    while (!e->queue.empty() &&
           static_cast<int>(batch.size()) < opts_.max_batch) {
      batch.push_back(e->queue.front());
      e->queue.pop_front();
    }
    lk.unlock();
    std::exception_ptr err;
    try {
      run_batch(*e, batch);
    } catch (...) {
      err = std::current_exception();
    }
    lk.lock();
    for (Pending* q : batch) {
      q->done = true;
      q->error = err;
    }
    e->batch_cv.notify_all();
  }
  e->leader_active = false;
  lk.unlock();
  e->batch_cv.notify_all();
  if (p.error) std::rethrow_exception(p.error);
}

void KernelServer::run_batch(CacheEntry& e, const std::vector<Pending*>& batch) {
  const int k = static_cast<int>(batch.size());
  if (k == 1) {
    run_single(e, batch[0]->x, batch[0]->y);
    return;
  }
  {
    const std::lock_guard<std::mutex> lk(cache_mu_);
    ++stats_.batches;
    stats_.batched_requests += k;
  }
  server_counters().batches.add(1);
  server_counters().batched.add(k);

  // SpMM-style multi-vector sweep: one pass over the sparse rows serves
  // all k right-hand sides (src/blas spmm's loop order, row-outer /
  // nonzero-middle / rhs-inner). Bitwise contract with the unbatched
  // engine path: per (row, nonzero, request) the multiply chain is
  // exactly the engine sink's — prod = scale; prod *= A; prod *= x;
  // acc += prod — in ascending-nonzero order per row, and double-precision
  // memory round-trips are exact, so a register accumulator vs per-element
  // += cannot differ. tests/server_test.cpp enforces this against both
  // serial CompiledKernel execution and blas::spmm.
  const formats::Csr& m = *e.matrix;
  const auto rowptr = m.rowptr();
  const auto colind = m.colind();
  const auto vals = m.vals();
  const value_t scale = e.mac0.scale;
  std::vector<const value_t*> xs(static_cast<std::size_t>(k));
  std::vector<value_t*> ys(static_cast<std::size_t>(k));
  for (int r = 0; r < k; ++r) {
    const std::size_t ri = static_cast<std::size_t>(r);
    xs[ri] = batch[ri]->x.data();
    ys[ri] = batch[ri]->y.data();
    std::fill(batch[ri]->y.begin(), batch[ri]->y.end(), 0.0);
  }
  const index_t rows = m.rows();
  auto sweep_rows = [&](index_t row_begin, index_t row_end) {
    for (index_t i = row_begin; i < row_end; ++i) {
      for (index_t ee = rowptr[static_cast<std::size_t>(i)];
           ee < rowptr[static_cast<std::size_t>(i) + 1]; ++ee) {
        const value_t av = vals[static_cast<std::size_t>(ee)];
        const index_t col = colind[static_cast<std::size_t>(ee)];
        for (int r = 0; r < k; ++r) {
          value_t prod = scale;
          prod *= av;
          prod *= xs[static_cast<std::size_t>(r)][col];
          ys[static_cast<std::size_t>(r)][i] += prod;
        }
      }
    }
  };

  const long long t0 = now_ns();
  const int nthreads = std::min<int>(std::max(opts_.sweep_threads, 1),
                                     std::max<int>(rows, 1));
  if (nthreads <= 1) {
    sweep_rows(0, rows);
  } else {
    // Row-chunked over the shared pool: disjoint output rows, per-row
    // work independent of scheduling, so results stay deterministic.
    // Safe from pool threads too — run_slots degrades inline there.
    support::shared_pool(nthreads).run_slots(nthreads, [&](int slot) {
      const index_t chunk = (rows + nthreads - 1) / nthreads;
      const index_t begin = std::min<index_t>(rows, slot * chunk);
      const index_t end = std::min<index_t>(rows, begin + chunk);
      sweep_rows(begin, end);
    });
  }
  commit_batch_observability(e, k, now_ns() - t0);
}

void KernelServer::commit_batch_observability(CacheEntry& e, int k,
                                              long long wall_ns) {
  // The sweep stood in for k engine runs; book what those k runs would
  // have booked, as ONE atomic group under the commit lock. Latency
  // samples split the sweep's wall time with an exact integer sum, so
  // execute.latency.sum_ns == execute.wall_ns holds through batching.
  const std::unique_lock<std::mutex> commit = support::metrics_commit_lock();
  const long long base = wall_ns / k;
  const long long rem = wall_ns % k;
  support::LatencyHistogram& lat = support::metric_latency("execute.latency");
  for (int i = 0; i < k; ++i) lat.record_ns(base + (i < rem ? 1 : 0));
  support::metric_rate("execute.wall_ns").add(wall_ns);
  support::time_counter("executor.wall_seconds")
      .add(static_cast<double>(wall_ns) * 1e-9);
  if (e.lp.footprint.exact) {
    support::metric_rate("execute.model_bytes")
        .add(e.lp.footprint.total_bytes() * k);
    support::metric_rate("execute.model_flops").add(e.lp.footprint.flops * k);
  }
  support::counter("executor.runs").add(k);
  const compiler::LinkedRunner::FlushDelta& d = e.delta;
  support::counter("executor.tuples").add(d.tuples * k);
  support::counter("executor.enumerated").add(d.enumerated * k);
  support::counter("executor.merge_steps").add(d.merge_steps * k);
  support::counter("executor.probe_hits").add(d.probe_hits * k);
  support::counter("executor.probe_misses").add(d.probe_misses * k);
  support::counter("executor.fill_ins").add(d.fill_ins * k);
  support::counter("executor.merge_segment_bytes")
      .add(d.merge_segment_bytes * k);
  for (std::size_t lvl = 0; lvl < d.fanout.size(); ++lvl) {
    for (std::size_t b = 0; b < d.fanout[lvl].size(); ++b) {
      const long long n = d.fanout[lvl][b];
      if (n == 0) continue;
      e.lp.levels[lvl].fanout->add(
          b == 0 ? 0 : (1LL << (b - 1)), n * k);
    }
  }
}

}  // namespace bernoulli::server
