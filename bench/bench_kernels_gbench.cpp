// google-benchmark microbenchmarks of the per-format SpMV kernels — the
// code the Bernoulli compiler generates (kernel library) — on a regular
// stencil and an irregular circuit matrix.
#include <benchmark/benchmark.h>

#include "formats/bsr.hpp"
#include "formats/formats.hpp"
#include "workloads/grid.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace bernoulli;

const formats::Coo& regular_matrix() {
  static formats::Coo m = workloads::suite_matrix("sherman1").matrix;
  return m;
}

const formats::Coo& irregular_matrix() {
  static formats::Coo m = workloads::suite_matrix("685_bus").matrix;
  return m;
}

void spmv_bench(benchmark::State& state, const formats::Coo& coo,
                formats::Kind kind) {
  formats::AnyFormat f(kind, coo);
  Vector x(static_cast<std::size_t>(coo.cols()), 1.0);
  Vector y(static_cast<std::size_t>(coo.rows()), 0.0);
  for (auto _ : state) {
    f.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * coo.nnz());
  state.counters["MFLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(coo.nnz()) * static_cast<double>(state.iterations()) / 1e6,
      benchmark::Counter::kIsRate);
}

#define REGISTER_KIND(kind, name)                                         \
  void BM_Regular_##name(benchmark::State& s) {                           \
    spmv_bench(s, regular_matrix(), formats::Kind::kind);                 \
  }                                                                       \
  BENCHMARK(BM_Regular_##name);                                           \
  void BM_Irregular_##name(benchmark::State& s) {                        \
    spmv_bench(s, irregular_matrix(), formats::Kind::kind);               \
  }                                                                       \
  BENCHMARK(BM_Irregular_##name)

REGISTER_KIND(kDia, Diagonal);
REGISTER_KIND(kCoo, Coordinate);
REGISTER_KIND(kCsr, CRS);
REGISTER_KIND(kCcs, CCS);
REGISTER_KIND(kCccs, CCCS);
REGISTER_KIND(kEll, ITPACK);
REGISTER_KIND(kJds, JDiag);

// BSR vs CRS on a 5-dof FEM matrix: the dense-block payoff.
const formats::Coo& dof_matrix() {
  static formats::Coo m = workloads::grid3d_7pt(8, 8, 8, 5, 3).matrix;
  return m;
}

void BM_Dof_CRS(benchmark::State& state) {
  spmv_bench(state, dof_matrix(), formats::Kind::kCsr);
}
BENCHMARK(BM_Dof_CRS);

void BM_Dof_BSR5(benchmark::State& state) {
  const formats::Coo& coo = dof_matrix();
  formats::Bsr bsr = formats::Bsr::from_coo(coo, 5);
  Vector x(static_cast<std::size_t>(coo.cols()), 1.0);
  Vector y(static_cast<std::size_t>(coo.rows()), 0.0);
  for (auto _ : state) {
    formats::spmv(bsr, x, y);
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * coo.nnz());
}
BENCHMARK(BM_Dof_BSR5);

}  // namespace

BENCHMARK_MAIN();
