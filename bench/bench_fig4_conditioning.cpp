// Figure 4: effect of problem conditioning (iteration count) on the
// relative performance of the Indirect-Mixed and Bernoulli-Mixed
// implementations.
//
// The plotted quantity is (k + r_I) / (k + r_B) where k is the CG
// iteration count, and r_I, r_B are the measured inspector overheads (in
// units of one executor iteration) of the Indirect-Mixed and
// Bernoulli-Mixed implementations, for P = 8 and P = 64 (paper Eq. 25).
// The paper reads off the crossovers: iterations needed for Indirect-Mixed
// to come within 10% / 20% of Bernoulli-Mixed.
//
// `--trace=<file>` / `--comm-matrix` record the measurement (reduced to
// P=8 so the trace stays readable) and assert the comm reconciliation
// invariant. `--report=<file>` writes a bernoulli.run.v1 run report with
// r_B / r_I / crossover metrics and the critical path through the last
// machine run.
#include <iostream>

#include "analysis/critical_path.hpp"
#include "analysis/report.hpp"
#include "common.hpp"
#include "support/text_table.hpp"
#include "support/trace_cli.hpp"

int main(int argc, char** argv) {
  using namespace bernoulli;
  using spmd::Variant;

  auto opts = bench::Options::parse(argc, argv);
  support::ObsOptions& obs = opts.obs;

  std::cout << "=== Figure 4: (k + r_I) / (k + r_B) vs iteration count ===\n\n";

  const int iterations = 10;
  const std::vector<int> procs =
      obs.active() ? std::vector<int>{8} : std::vector<int>{8, 64};

  analysis::RunReport report("bench_fig4_conditioning");
  report.config("iterations", static_cast<long long>(iterations));
  support::obs_begin(obs);

  long long commstats_messages = 0;
  long long commstats_bytes = 0;
  std::map<int, std::pair<double, double>> ratios;  // P -> (r_B, r_I)
  for (int P : procs) {
    bench::Problem prob = bench::build_problem(P);
    auto mixed =
        bench::measure_variant_calibrated(prob, P, Variant::kBernoulliMixed, iterations);
    auto indirect =
        bench::measure_variant_calibrated(prob, P, Variant::kIndirectMixed, iterations);
    commstats_messages += mixed.total_messages + indirect.total_messages;
    commstats_bytes += mixed.total_bytes + indirect.total_bytes;
    ratios[P] = {mixed.inspector_ratio, indirect.inspector_ratio};
    std::cerr << "  [P=" << P << " measured: r_B=" << mixed.inspector_ratio
              << " r_I=" << indirect.inspector_ratio << "]\n";
  }

  std::vector<std::string> header{"iterations k"};
  for (int P : procs) header.push_back("ratio (P=" + std::to_string(P) + ")");
  TextTable table(header);
  for (int k = 5; k <= 100; k += 5) {
    table.new_row();
    table.add(k);
    for (int P : procs) {
      auto [rb, ri] = ratios[P];
      table.add((k + ri) / (k + rb), 3);
    }
  }
  std::cout << table.str() << '\n';

  for (int P : procs) {
    auto [rb, ri] = ratios[P];
    auto crossover = [&](double within) {
      // Smallest k with (k + r_I)/(k + r_B) <= 1 + within.
      for (int k = 1; k <= 100000; ++k)
        if ((k + ri) / (k + rb) <= 1.0 + within) return k;
      return -1;
    };
    std::cout << "P=" << P << ": r_B=" << rb << "  r_I=" << ri
              << "  within 20% at k=" << crossover(0.20)
              << ", within 10% at k=" << crossover(0.10) << '\n';
    if (!obs.report_path.empty()) {
      const std::string base = "fig4.P" + std::to_string(P);
      report.metric(base + ".r_B", rb);
      report.metric(base + ".r_I", ri);
      report.metric(base + ".k_within_20pct",
                    static_cast<double>(crossover(0.20)));
      report.metric(base + ".k_within_10pct",
                    static_cast<double>(crossover(0.10)));
    }
  }
  std::cout << "\nExpected shape (paper): ratios well above 1 at small k, "
               "decaying toward 1;\nhigher curve for larger P; paper's "
               "crossovers were k=21/43 (P=8) and k=39/77\n(P=64) for "
               "20%/10%.\n";
  // Aborts nonzero if the trace/matrix/counters disagree with CommStats.
  support::obs_end(obs, commstats_messages, commstats_bytes);
  if (!obs.report_path.empty()) {
    report.set_critical_path(analysis::critical_path_current());
    report.write(obs.report_path);
  }
  opts.finish();
  return 0;
}
