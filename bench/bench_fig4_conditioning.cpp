// Figure 4: effect of problem conditioning (iteration count) on the
// relative performance of the Indirect-Mixed and Bernoulli-Mixed
// implementations.
//
// The plotted quantity is (k + r_I) / (k + r_B) where k is the CG
// iteration count, and r_I, r_B are the measured inspector overheads (in
// units of one executor iteration) of the Indirect-Mixed and
// Bernoulli-Mixed implementations, for P = 8 and P = 64 (paper Eq. 25).
// The paper reads off the crossovers: iterations needed for Indirect-Mixed
// to come within 10% / 20% of Bernoulli-Mixed.
#include <iostream>

#include "common.hpp"
#include "support/text_table.hpp"

int main() {
  using namespace bernoulli;
  using spmd::Variant;

  std::cout << "=== Figure 4: (k + r_I) / (k + r_B) vs iteration count ===\n\n";

  const int iterations = 10;
  std::map<int, std::pair<double, double>> ratios;  // P -> (r_B, r_I)
  for (int P : {8, 64}) {
    bench::Problem prob = bench::build_problem(P);
    auto mixed =
        bench::measure_variant_calibrated(prob, P, Variant::kBernoulliMixed, iterations);
    auto indirect =
        bench::measure_variant_calibrated(prob, P, Variant::kIndirectMixed, iterations);
    ratios[P] = {mixed.inspector_ratio, indirect.inspector_ratio};
    std::cerr << "  [P=" << P << " measured: r_B=" << mixed.inspector_ratio
              << " r_I=" << indirect.inspector_ratio << "]\n";
  }

  TextTable table({"iterations k", "ratio (P=8)", "ratio (P=64)"});
  for (int k = 5; k <= 100; k += 5) {
    table.new_row();
    table.add(k);
    for (int P : {8, 64}) {
      auto [rb, ri] = ratios[P];
      table.add((k + ri) / (k + rb), 3);
    }
  }
  std::cout << table.str() << '\n';

  for (int P : {8, 64}) {
    auto [rb, ri] = ratios[P];
    auto crossover = [&](double within) {
      // Smallest k with (k + r_I)/(k + r_B) <= 1 + within.
      for (int k = 1; k <= 100000; ++k)
        if ((k + ri) / (k + rb) <= 1.0 + within) return k;
      return -1;
    };
    std::cout << "P=" << P << ": r_B=" << rb << "  r_I=" << ri
              << "  within 20% at k=" << crossover(0.20)
              << ", within 10% at k=" << crossover(0.10) << '\n';
  }
  std::cout << "\nExpected shape (paper): ratios well above 1 at small k, "
               "decaying toward 1;\nhigher curve for larger P; paper's "
               "crossovers were k=21/43 (P=8) and k=39/77\n(P=64) for "
               "20%/10%.\n";
  return 0;
}
