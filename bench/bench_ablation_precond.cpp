// Ablation/extension: diagonal (Jacobi) vs incomplete-Cholesky
// preconditioning — the paper's §6 "ongoing work" direction (incomplete
// factorizations and triangular solves), implemented in src/solvers/ic.*.
//
// Reports CG iteration counts and time-to-solution on the paper's grid
// family; IC(0) trades a more expensive application (two triangular
// solves) for far fewer iterations.
//
// `--trace=<file>` / `--comm-matrix` / `--report=<file>` are accepted for
// uniformity with the distributed benches; this driver is sequential, so
// the epilogue reconciles against zero modeled traffic.
#include <functional>
#include <iostream>

#include "common.hpp"
#include "solvers/cg.hpp"
#include "solvers/ic.hpp"
#include "support/rng.hpp"
#include "support/trace_cli.hpp"
#include "support/text_table.hpp"
#include "support/timer.hpp"
#include "workloads/grid.hpp"

int main(int argc, char** argv) {
  auto opts = bernoulli::bench::Options::parse(argc, argv);
  bernoulli::support::ObsOptions& obs = opts.obs;
  bernoulli::support::obs_begin(obs);

  using namespace bernoulli;

  std::cout << "=== Ablation: Jacobi-CG vs ICCG (tolerance 1e-10) ===\n\n";

  TextTable table({"grid", "n", "CG iters", "CG ms", "ICCG iters", "ICCG ms",
                   "iter ratio"});
  for (index_t side : {6, 10, 14, 18}) {
    auto g = workloads::grid3d_7pt(side, side, side, 1, 61);
    formats::Csr a = formats::Csr::from_coo(g.matrix);
    const auto n = static_cast<std::size_t>(a.rows());

    SplitMix64 rng(7);
    Vector x_true(n);
    for (auto& v : x_true) v = rng.next_double(-1.0, 1.0);
    Vector b(n);
    formats::spmv(a, x_true, b);

    solvers::CgOptions opts;
    opts.max_iterations = 2000;
    opts.tolerance = 1e-10;

    Vector x1(n, 0.0);
    WallTimer t1;
    auto jac = solvers::cg(a, b, x1, opts);
    double jac_ms = t1.seconds() * 1e3;

    WallTimer t2;
    auto ic = solvers::IncompleteCholesky::factor(a);
    Vector x2(n, 0.0);
    auto iccg = solvers::cg_preconditioned(
        a, b, x2,
        [&](ConstVectorView r, VectorView z) { ic.apply(r, z); }, opts);
    double ic_ms = t2.seconds() * 1e3;  // includes the factorization

    table.new_row();
    std::ostringstream dims;
    dims << side << "^3";
    table.add(dims.str());
    table.add(static_cast<long long>(n));
    table.add(jac.iterations);
    table.add(jac_ms, 1);
    table.add(iccg.iterations);
    table.add(ic_ms, 1);
    table.add(static_cast<double>(jac.iterations) /
                  static_cast<double>(iccg.iterations),
              2);
  }
  std::cout << table.str()
            << "\n(ICCG time includes the IC(0) factorization; on these "
               "diagonally dominant\nproblems Jacobi is already strong, so "
               "the iteration ratio is the headline.)\n";
  // No machine runs here; the epilogue still validates the (empty) trace
  // and prints/export whatever was requested.
  bernoulli::support::obs_end(obs, 0, 0);
  opts.finish();
  return 0;
}
