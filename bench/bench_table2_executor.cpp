// Table 2: numerical computation times (executor, 10 CG iterations).
//
// Paper setup: parallel CG with diagonal preconditioning on a synthetic
// 3-D 7-point grid problem with 5 degrees of freedom, weak-scaled
// (constant rows per processor), P = 2..64. Compared implementations:
//   BlockSolve        hand-written library code (comm/compute overlap)
//   Bernoulli-Mixed   compiler output from the mixed local/global spec —
//                     paper: 2-4% slower than BlockSolve
//   Bernoulli         compiler output from the fully data-parallel spec —
//                     paper: ~10% slower than Bernoulli-Mixed (redundant
//                     global-to-local indirection on every x access)
#include <iostream>

#include "common.hpp"
#include "support/text_table.hpp"

int main() {
  using namespace bernoulli;
  using spmd::Variant;

  std::cout << "=== Table 2: numerical computation times, 10 CG iterations ==="
            << "\n(virtual seconds on the simulated machine; diff columns"
            << "\n relative to the hand-written BlockSolve baseline)\n\n";

  TextTable table({"P", "rows/proc", "BlockSolve (s)", "Bern-Mixed (s)",
                   "diff", "Bernoulli (s)", "diff"});
  const int iterations = 10;
  for (int P : {2, 4, 8, 16, 32, 64}) {
    bench::Problem prob = bench::build_problem(P);
    auto bs = bench::measure_variant_calibrated(prob, P, Variant::kBlockSolve, iterations);
    auto mixed =
        bench::measure_variant_calibrated(prob, P, Variant::kBernoulliMixed, iterations);
    auto naive =
        bench::measure_variant_calibrated(prob, P, Variant::kBernoulli, iterations);

    auto pct = [](double v, double base) {
      std::ostringstream os;
      os.setf(std::ios::fixed);
      os.precision(1);
      os << (v / base - 1.0) * 100.0 << "%";
      return os.str();
    };
    table.new_row();
    table.add(P);
    table.add(static_cast<long long>(prob.matrix.rows() / P));
    table.add(bs.executor_s, 4);
    table.add(mixed.executor_s, 4);
    table.add(pct(mixed.executor_s, bs.executor_s));
    table.add(naive.executor_s, 4);
    table.add(pct(naive.executor_s, bs.executor_s));
    std::cerr << "  [P=" << P << " done]\n";
  }
  std::cout << table.str()
            << "\nExpected shape (paper): Bernoulli-Mixed within a few "
               "percent of BlockSolve;\nBernoulli ~10% slower than Mixed "
               "(extra indirection); times roughly flat in P\n(weak "
               "scaling).\n";
  return 0;
}
