// Table 2: numerical computation times (executor, 10 CG iterations).
//
// Paper setup: parallel CG with diagonal preconditioning on a synthetic
// 3-D 7-point grid problem with 5 degrees of freedom, weak-scaled
// (constant rows per processor), P = 2..64. Compared implementations:
//   BlockSolve        hand-written library code (comm/compute overlap)
//   Bernoulli-Mixed   compiler output from the mixed local/global spec —
//                     paper: 2-4% slower than BlockSolve
//   Bernoulli         compiler output from the fully data-parallel spec —
//                     paper: ~10% slower than Bernoulli-Mixed (redundant
//                     global-to-local indirection on every x access)
//
// `--report=json` switches to the observability report: an
// estimate-vs-measured communication table per variant (exchange cost
// predicted from the CommSchedule alone vs. runtime::CommStats), plus the
// full counter registry and a reconciliation block proving the
// phase-split comm.* counters sum to the CommStats totals.
//
// `--trace=<file>` / `--comm-matrix` run a reduced traced measurement
// (P=4, all three variants): the trace gets one track per rank on virtual
// time with send->recv flow arrows, and support::obs_end asserts that the
// send-span byte args in the exported JSON, the comm matrix, and the
// comm.<phase>.* counters all equal the CommStats totals exactly.
#include <cstring>
#include <iostream>

#include "common.hpp"
#include "support/counters.hpp"
#include "support/json_writer.hpp"
#include "support/text_table.hpp"
#include "support/trace_cli.hpp"

namespace {

using namespace bernoulli;
using spmd::Variant;

int run_table() {
  std::cout << "=== Table 2: numerical computation times, 10 CG iterations ==="
            << "\n(virtual seconds on the simulated machine; diff columns"
            << "\n relative to the hand-written BlockSolve baseline)\n\n";

  TextTable table({"P", "rows/proc", "BlockSolve (s)", "Bern-Mixed (s)",
                   "diff", "Bernoulli (s)", "diff"});
  const int iterations = 10;
  for (int P : {2, 4, 8, 16, 32, 64}) {
    bench::Problem prob = bench::build_problem(P);
    auto bs = bench::measure_variant_calibrated(prob, P, Variant::kBlockSolve, iterations);
    auto mixed =
        bench::measure_variant_calibrated(prob, P, Variant::kBernoulliMixed, iterations);
    auto naive =
        bench::measure_variant_calibrated(prob, P, Variant::kBernoulli, iterations);

    auto pct = [](double v, double base) {
      std::ostringstream os;
      os.setf(std::ios::fixed);
      os.precision(1);
      os << (v / base - 1.0) * 100.0 << "%";
      return os.str();
    };
    table.new_row();
    table.add(P);
    table.add(static_cast<long long>(prob.matrix.rows() / P));
    table.add(bs.executor_s, 4);
    table.add(mixed.executor_s, 4);
    table.add(pct(mixed.executor_s, bs.executor_s));
    table.add(naive.executor_s, 4);
    table.add(pct(naive.executor_s, bs.executor_s));
    std::cerr << "  [P=" << P << " done]\n";
  }
  std::cout << table.str()
            << "\nExpected shape (paper): Bernoulli-Mixed within a few "
               "percent of BlockSolve;\nBernoulli ~10% slower than Mixed "
               "(extra indirection); times roughly flat in P\n(weak "
               "scaling).\n";
  return 0;
}

int run_report() {
  support::counters_reset();
  const int iterations = 10;

  support::JsonWriter w(2);
  w.begin_object();
  w.key("schema").value("bernoulli.bench.table2.report.v1");
  w.key("iterations").value(iterations);
  w.key("cases").begin_array();

  long long commstats_messages = 0;
  long long commstats_bytes = 0;
  for (int P : {2, 4, 8}) {
    bench::Problem prob = bench::build_problem(P);
    for (Variant v :
         {Variant::kBlockSolve, Variant::kBernoulliMixed, Variant::kBernoulli}) {
      auto t = bench::measure_variant_calibrated(prob, P, v, iterations);
      commstats_messages += t.total_messages;
      commstats_bytes += t.total_bytes;
      w.begin_object();
      w.key("P").value(P);
      w.key("variant").value(spmd::variant_name(v));
      w.key("inspector_s").value(t.inspector_s);
      w.key("executor_s").value(t.executor_s);
      w.key("inspector_bytes").value(t.inspector_bytes);
      w.key("exchange").begin_object();
      w.key("count").value(t.exchanges);
      w.key("predicted_messages").value(t.predicted_exchange_messages);
      w.key("predicted_bytes").value(t.predicted_exchange_bytes);
      w.key("measured_messages_total").value(t.executor_messages);
      w.key("measured_bytes_total").value(t.executor_bytes);
      // The executor run exchanges ghosts (iterations + 1) times and sends
      // nothing else point-to-point, so predicted * count must equal the
      // measured totals exactly.
      w.key("match").value(t.predicted_exchange_messages * t.exchanges ==
                               t.executor_messages &&
                           t.predicted_exchange_bytes * t.exchanges ==
                               t.executor_bytes);
      w.end_object();
      w.end_object();
      std::cerr << "  [P=" << P << " " << spmd::variant_name(v) << " done]\n";
    }
  }
  w.end_array();

  // Reconciliation: the phase-split counters booked by the simulated
  // machine must sum to the CommStats totals gathered from rank reports.
  auto snap = support::counters_snapshot();
  long long counter_messages = 0;
  long long counter_bytes = 0;
  for (const auto& [name, value] : snap.counts) {
    if (name.starts_with("comm.") && name.ends_with(".messages"))
      counter_messages += value;
    if (name.starts_with("comm.") && name.ends_with(".bytes"))
      counter_bytes += value;
  }
  w.key("reconcile").begin_object();
  w.key("commstats_messages").value(commstats_messages);
  w.key("counter_messages").value(counter_messages);
  w.key("commstats_bytes").value(commstats_bytes);
  w.key("counter_bytes").value(counter_bytes);
  const bool ok = commstats_messages == counter_messages &&
                  commstats_bytes == counter_bytes;
  w.key("match").value(ok);
  w.end_object();

  w.key("counters").begin_object();
  for (const auto& [name, value] : snap.counts) w.key(name).value(value);
  w.end_object();
  w.key("vtime_seconds").begin_object();
  for (const auto& [name, value] : snap.seconds) w.key(name).value(value);
  w.end_object();
  w.end_object();

  std::cout << w.str() << "\n";
  if (!ok) {
    std::cerr << "RECONCILIATION FAILED: counter totals != CommStats totals\n";
    return 1;
  }
  return 0;
}

int run_traced(const support::ObsOptions& obs) {
  const int P = 4;
  const int iterations = 10;
  std::cout << "=== Table 2 traced run: P=" << P << ", " << iterations
            << " CG iterations, all variants ===\n";
  support::obs_begin(obs);
  bench::Problem prob = bench::build_problem(P);
  long long commstats_messages = 0;
  long long commstats_bytes = 0;
  for (Variant v :
       {Variant::kBlockSolve, Variant::kBernoulliMixed, Variant::kBernoulli}) {
    auto t = bench::measure_variant_calibrated(prob, P, v, iterations);
    commstats_messages += t.total_messages;
    commstats_bytes += t.total_bytes;
    std::cout << "  " << spmd::variant_name(v) << ": inspector "
              << t.inspector_s << " s, executor " << t.executor_s
              << " s (virtual)\n";
  }
  // Aborts nonzero if the trace/matrix/counters disagree with CommStats.
  support::obs_end(obs, commstats_messages, commstats_bytes);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  support::ObsOptions obs;
  bool report = false;
  for (int i = 1; i < argc; ++i) {
    if (support::obs_parse_flag(argv[i], obs)) continue;
    if (std::strcmp(argv[i], "--report=json") == 0) report = true;
  }
  if (report) return run_report();
  if (obs.active()) return run_traced(obs);
  return run_table();
}
