// Table 2: numerical computation times (executor, 10 CG iterations).
//
// Paper setup: parallel CG with diagonal preconditioning on a synthetic
// 3-D 7-point grid problem with 5 degrees of freedom, weak-scaled
// (constant rows per processor), P = 2..64. Compared implementations:
//   BlockSolve        hand-written library code (comm/compute overlap)
//   Bernoulli-Mixed   compiler output from the mixed local/global spec —
//                     paper: 2-4% slower than BlockSolve
//   Bernoulli         compiler output from the fully data-parallel spec —
//                     paper: ~10% slower than Bernoulli-Mixed (redundant
//                     global-to-local indirection on every x access)
//
// `--report=<file>` writes a bernoulli.run.v1 run report
// (analysis/report.hpp). On the default (variant) axis it runs the
// reduced traced measurement and the report carries per-variant metrics,
// per-variant exchange comm-checks, and the critical path through the
// last machine run; on the --engine axis it carries the exec.* metrics
// (same names tools/bernoulli_report derives from a
// bernoulli.bench.exec.v1 snapshot, so the two diff against each other)
// plus a cost-model check per case.
//
// `--trace=<file>` / `--comm-matrix` run a reduced traced measurement
// (P=4, all three variants): the trace gets one track per rank on virtual
// time with send->recv flow arrows, and support::obs_end asserts that the
// send-span byte args in the exported JSON, the comm matrix, and the
// comm.<phase>.* counters all equal the CommStats totals exactly.
//
// `--engine=interpreted|linked|specialized|kernel|all` switches to the
// sequential EXECUTION-ENGINE comparison: the same compiled SpMV plan on
// the Table-2 matrices (CRS and CCS), run through the tree-walking
// interpreter (execute_interpreted), the linked cursor engine
// (compiler/link.hpp), the runtime-specialized dlopen backend
// (compiler/specialize.hpp; falls back to linked with a note when the
// host has no C toolchain) and the hand-tuned format kernel
// (formats::spmv_add), reported as wall-clock ns per stored entry. Any
// other --engine value fails with a usage message. Extra flags:
//   --small               one-processor problem only (CI smoke)
//   --check               exit 1 unless linked beats interpreted per case;
//                         the specialized engine (when it loads) must also
//                         reproduce the serial linked run bitwise
//   --threads=N           additionally measure the multi-threaded linked
//                         engine (compiler::ParallelRunner) and, for CRS,
//                         a row-chunked threaded format kernel; reported
//                         as linked_tN / kernel_tN engine entries. With
//                         --check the threaded run must also be bitwise
//                         identical to the serial linked run with exactly
//                         matching executor.* counter deltas.
//   --validate-exec-json=FILE   parse FILE with support/json_reader.hpp
//                               and check the v1 schema (no measuring)
//
// `--metrics=<file>` (any axis) writes the serving-metrics registry as
// Prometheus text at exit (bench::Options::finish). With --check the
// engine axis also reconciles the serving metrics: one serial linked run
// books exactly one execute.latency sample whose nanoseconds equal the
// execute.wall_ns rate (same integer, same flush site) and whose model
// bytes/flops equal the link-time PlanFootprint; threaded runs must match
// the serial run on the deterministic subset (sample count, model
// traffic) exactly. On the engine axis --report also carries a roofline
// section: every measured rung's footprint/seconds against the simulated
// machine's CostModel peaks.
//
// Deprecated aliases (warn once, keep working): --report=json prints the
// PR-1 stdout report; --exec-json=FILE writes the PR-3
// bernoulli.bench.exec.v1 snapshot (still how BENCH_exec.json is
// regenerated).
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <thread>

#include "analysis/attribution.hpp"
#include "analysis/critical_path.hpp"
#include "analysis/report.hpp"
#include "common.hpp"
#include "compiler/link.hpp"
#include "compiler/loopnest.hpp"
#include "compiler/specialize.hpp"
#include "formats/bsr.hpp"
#include "formats/ccs.hpp"
#include "formats/sell.hpp"
#include "runtime/machine.hpp"
#include "support/counters.hpp"
#include "support/histogram.hpp"
#include "support/metrics.hpp"
#include "support/profile.hpp"
#include "support/json_reader.hpp"
#include "support/json_writer.hpp"
#include "support/rng.hpp"
#include "support/text_table.hpp"
#include "support/thread_pool.hpp"
#include "support/trace_cli.hpp"

namespace {

using namespace bernoulli;
using spmd::Variant;

int run_table() {
  std::cout << "=== Table 2: numerical computation times, 10 CG iterations ==="
            << "\n(virtual seconds on the simulated machine; diff columns"
            << "\n relative to the hand-written BlockSolve baseline)\n\n";

  TextTable table({"P", "rows/proc", "BlockSolve (s)", "Bern-Mixed (s)",
                   "diff", "Bernoulli (s)", "diff"});
  const int iterations = 10;
  for (int P : {2, 4, 8, 16, 32, 64}) {
    bench::Problem prob = bench::build_problem(P);
    auto bs = bench::measure_variant_calibrated(prob, P, Variant::kBlockSolve, iterations);
    auto mixed =
        bench::measure_variant_calibrated(prob, P, Variant::kBernoulliMixed, iterations);
    auto naive =
        bench::measure_variant_calibrated(prob, P, Variant::kBernoulli, iterations);

    auto pct = [](double v, double base) {
      std::ostringstream os;
      os.setf(std::ios::fixed);
      os.precision(1);
      os << (v / base - 1.0) * 100.0 << "%";
      return os.str();
    };
    table.new_row();
    table.add(P);
    table.add(static_cast<long long>(prob.matrix.rows() / P));
    table.add(bs.executor_s, 4);
    table.add(mixed.executor_s, 4);
    table.add(pct(mixed.executor_s, bs.executor_s));
    table.add(naive.executor_s, 4);
    table.add(pct(naive.executor_s, bs.executor_s));
    std::cerr << "  [P=" << P << " done]\n";
  }
  std::cout << table.str()
            << "\nExpected shape (paper): Bernoulli-Mixed within a few "
               "percent of BlockSolve;\nBernoulli ~10% slower than Mixed "
               "(extra indirection); times roughly flat in P\n(weak "
               "scaling).\n";
  return 0;
}

int run_report() {
  support::counters_reset();
  const int iterations = 10;

  support::JsonWriter w(2);
  w.begin_object();
  w.key("schema").value("bernoulli.bench.table2.report.v1");
  w.key("iterations").value(iterations);
  w.key("cases").begin_array();

  long long commstats_messages = 0;
  long long commstats_bytes = 0;
  for (int P : {2, 4, 8}) {
    bench::Problem prob = bench::build_problem(P);
    for (Variant v :
         {Variant::kBlockSolve, Variant::kBernoulliMixed, Variant::kBernoulli}) {
      auto t = bench::measure_variant_calibrated(prob, P, v, iterations);
      commstats_messages += t.total_messages;
      commstats_bytes += t.total_bytes;
      w.begin_object();
      w.key("P").value(P);
      w.key("variant").value(spmd::variant_name(v));
      w.key("inspector_s").value(t.inspector_s);
      w.key("executor_s").value(t.executor_s);
      w.key("inspector_bytes").value(t.inspector_bytes);
      w.key("exchange").begin_object();
      w.key("count").value(t.exchanges);
      w.key("predicted_messages").value(t.predicted_exchange_messages);
      w.key("predicted_bytes").value(t.predicted_exchange_bytes);
      w.key("measured_messages_total").value(t.executor_messages);
      w.key("measured_bytes_total").value(t.executor_bytes);
      // The executor run exchanges ghosts (iterations + 1) times and sends
      // nothing else point-to-point, so predicted * count must equal the
      // measured totals exactly.
      w.key("match").value(t.predicted_exchange_messages * t.exchanges ==
                               t.executor_messages &&
                           t.predicted_exchange_bytes * t.exchanges ==
                               t.executor_bytes);
      w.end_object();
      w.end_object();
      std::cerr << "  [P=" << P << " " << spmd::variant_name(v) << " done]\n";
    }
  }
  w.end_array();

  // Reconciliation: the phase-split counters booked by the simulated
  // machine must sum to the CommStats totals gathered from rank reports.
  auto snap = support::counters_snapshot();
  long long counter_messages = 0;
  long long counter_bytes = 0;
  for (const auto& [name, value] : snap.counts) {
    if (name.starts_with("comm.") && name.ends_with(".messages"))
      counter_messages += value;
    if (name.starts_with("comm.") && name.ends_with(".bytes"))
      counter_bytes += value;
  }
  w.key("reconcile").begin_object();
  w.key("commstats_messages").value(commstats_messages);
  w.key("counter_messages").value(counter_messages);
  w.key("commstats_bytes").value(commstats_bytes);
  w.key("counter_bytes").value(counter_bytes);
  const bool ok = commstats_messages == counter_messages &&
                  commstats_bytes == counter_bytes;
  w.key("match").value(ok);
  w.end_object();

  w.key("counters").begin_object();
  for (const auto& [name, value] : snap.counts) w.key(name).value(value);
  w.end_object();
  w.key("vtime_seconds").begin_object();
  for (const auto& [name, value] : snap.seconds) w.key(name).value(value);
  w.end_object();
  w.end_object();

  std::cout << w.str() << "\n";
  if (!ok) {
    std::cerr << "RECONCILIATION FAILED: counter totals != CommStats totals\n";
    return 1;
  }
  return 0;
}

int run_traced(const support::ObsOptions& obs) {
  const int P = 4;
  const int iterations = 10;
  std::cout << "=== Table 2 traced run: P=" << P << ", " << iterations
            << " CG iterations, all variants ===\n";
  analysis::RunReport report("bench_table2_executor");
  report.config("axis", "variants");
  report.config("P", static_cast<long long>(P));
  report.config("iterations", static_cast<long long>(iterations));
  if (!obs.report_path.empty()) report.observe_solves();
  support::obs_begin(obs);
  bench::Problem prob = bench::build_problem(P);
  long long commstats_messages = 0;
  long long commstats_bytes = 0;
  for (Variant v :
       {Variant::kBlockSolve, Variant::kBernoulliMixed, Variant::kBernoulli}) {
    auto t = bench::measure_variant_calibrated(prob, P, v, iterations);
    commstats_messages += t.total_messages;
    commstats_bytes += t.total_bytes;
    std::cout << "  " << spmd::variant_name(v) << ": inspector "
              << t.inspector_s << " s, executor " << t.executor_s
              << " s (virtual)\n";
    if (!obs.report_path.empty()) {
      std::string base = std::string("table2.P") + std::to_string(P) + "." +
                         spmd::variant_name(v);
      report.metric(base + ".inspector_s", t.inspector_s);
      report.metric(base + ".executor_s", t.executor_s);
      analysis::CommCheck cc;
      cc.predicted_messages = t.predicted_exchange_messages * t.exchanges;
      cc.predicted_bytes = t.predicted_exchange_bytes * t.exchanges;
      cc.measured_messages = t.executor_messages;
      cc.measured_bytes = t.executor_bytes;
      report.add_comm_check(base + ".exchange", cc);
    }
  }
  // Aborts nonzero if the trace/matrix/counters disagree with CommStats.
  support::obs_end(obs, commstats_messages, commstats_bytes);
  if (!obs.report_path.empty()) {
    // The trace buffers survive trace_stop(); the critical path analyzes
    // the LAST machine run (the timed executor run of the last variant).
    report.set_critical_path(analysis::critical_path_current());
    report.write(obs.report_path);
  }
  return 0;
}

// ---- Execution-engine axis ------------------------------------------

struct EngineCase {
  std::string matrix;
  std::string format;  // "csr" | "ccs" | "bcsr" | "sell"
  index_t rows = 0;
  index_t nnz = 0;
  // Best-of-k wall seconds for one full SpMV, per engine (negative when
  // the engine was not measured).
  double interpreted_s = -1.0;
  double linked_s = -1.0;
  double kernel_s = -1.0;
  // Runtime-specialized dlopen backend (compiler/specialize.hpp).
  // Negative when not requested OR when the kernel could not be built —
  // specialized_note then says why (toolchain missing, shape refused).
  double specialized_s = -1.0;
  std::string specialized_note;
  // Under --check: the specialized run reproduced the serial linked run
  // bitwise with identical executor.* and fanout deltas.
  bool specialized_check_ok = true;
  // Threaded engines (--threads=N; negative when not measured). linked_t
  // is compiler::ParallelRunner on the same LinkedPlan; kernel_t is a
  // row-chunked CRS spmv on the shared pool (CRS only). parallel records
  // whether the legality check let linked_t actually fan out.
  double linked_t_s = -1.0;
  double kernel_t_s = -1.0;
  bool parallel = false;
  // Under --check: threaded linked run reproduced the serial linked run
  // bitwise with identical executor.* and fanout deltas.
  bool thread_check_ok = true;
  // Under --check: the serving-metrics registry reconciled across one
  // serial linked run (latency samples == runs, hist sum == wall_ns rate,
  // model bytes/flops == footprint).
  bool metrics_check_ok = true;
  // Under --check with --profile: the per-level self times the profiler
  // committed for one serial linked run sum to that run's execute.wall_ns
  // within the documented tolerance (docs/OBSERVABILITY.md).
  bool profile_check_ok = true;
  // Link-time data-movement footprint of the SpMV plan (exact for these
  // flat CSR/CCS cases); feeds the report's roofline section and the
  // --check model-traffic reconciliation.
  compiler::PlanFootprint footprint;
  // Planner estimates joined against one measured run (filled whenever the
  // interpreter was measured; feeds the run report's model-check table).
  compiler::Plan plan;
  compiler::RunStats stats;
  bool have_stats = false;
};

double ns_per_nnz(double seconds, index_t nnz) {
  return seconds * 1e9 / static_cast<double>(nnz);
}

// executor.* counter deltas across a run (zero deltas elided), for the
// --threads --check reconciliation against the serial linked engine.
std::map<std::string, long long> exec_delta(
    const support::CountersSnapshot& before,
    const support::CountersSnapshot& after) {
  std::map<std::string, long long> d;
  for (const auto& [name, value] : after.counts) {
    if (name.rfind("executor.", 0) != 0) continue;
    long long delta = value;
    if (auto it = before.counts.find(name); it != before.counts.end())
      delta -= it->second;
    if (delta != 0) d[name] = delta;
  }
  return d;
}

// executor.fanout.* histogram bucket deltas (all-zero histograms elided).
std::map<std::string, std::vector<long long>> fanout_delta(
    const std::map<std::string, std::vector<long long>>& before,
    const std::map<std::string, std::vector<long long>>& after) {
  std::map<std::string, std::vector<long long>> d;
  for (const auto& [name, buckets] : after) {
    if (name.rfind("executor.fanout.", 0) != 0) continue;
    std::vector<long long> delta = buckets;
    if (auto it = before.find(name); it != before.end())
      for (std::size_t i = 0; i < delta.size() && i < it->second.size(); ++i)
        delta[i] -= it->second[i];
    bool any = false;
    for (long long v : delta) any = any || v != 0;
    if (any) d[name] = std::move(delta);
  }
  return d;
}

// Serving-metrics deltas across one run window (support/metrics.hpp), for
// the --check reconciliations: the execute.* registry entries plus the
// executor.runs counter they must agree with.
struct ExecMetricsDelta {
  long long runs = 0;     // executor.runs counter
  long long samples = 0;  // execute.latency histogram count
  long long sum_ns = 0;   // execute.latency histogram sum
  long long wall_ns = 0;  // execute.wall_ns rate
  long long bytes = 0;    // execute.model_bytes rate
  long long flops = 0;    // execute.model_flops rate
};

ExecMetricsDelta exec_metrics_window(const support::CountersSnapshot& c0,
                                     const support::MetricsSnapshot& m0,
                                     const support::CountersSnapshot& c1,
                                     const support::MetricsSnapshot& m1) {
  auto cnt = [](const support::CountersSnapshot& s, const char* k) {
    auto it = s.counts.find(k);
    return it == s.counts.end() ? 0LL : it->second;
  };
  auto rate = [](const support::MetricsSnapshot& s, const char* k) {
    auto it = s.rates.find(k);
    return it == s.rates.end() ? 0LL : it->second;
  };
  auto lat = [](const support::MetricsSnapshot& s) {
    auto it = s.latencies.find("execute.latency");
    return it == s.latencies.end() ? support::LatencySnapshot{} : it->second;
  };
  ExecMetricsDelta d;
  d.runs = cnt(c1, "executor.runs") - cnt(c0, "executor.runs");
  d.samples = lat(m1).count - lat(m0).count;
  d.sum_ns = lat(m1).sum_ns - lat(m0).sum_ns;
  d.wall_ns = rate(m1, "execute.wall_ns") - rate(m0, "execute.wall_ns");
  d.bytes = rate(m1, "execute.model_bytes") - rate(m0, "execute.model_bytes");
  d.flops = rate(m1, "execute.model_flops") - rate(m0, "execute.model_flops");
  return d;
}

// The serial-vs-threaded serving-metrics invariant: the DETERMINISTIC
// subset must match exactly (sample count, model traffic — integer sums
// merged in fixed shard order), and each side's histogram sum must equal
// its own wall_ns rate (the same integer booked at the same flush site).
// The timings themselves legitimately differ between the two runs.
bool deterministic_metrics_match(const ExecMetricsDelta& a,
                                 const ExecMetricsDelta& b) {
  return a.runs == b.runs && a.samples == b.samples && a.bytes == b.bytes &&
         a.flops == b.flops && a.sum_ns == a.wall_ns && b.sum_ns == b.wall_ns;
}

// One storage binding of a benchmark matrix. Exactly one pointer is set;
// scalar_nnz is the LOGICAL nonzero count of the matrix, shared across
// its formats so ns_per_nnz stays comparable (BCSR's block-fill zeros
// and SELL's padding lanes are storage artifacts, not extra matrix
// entries — per-entry times for bcsr honestly absorb the fill work).
struct EngineMatrix {
  std::string format;  // "csr" | "ccs" | "bcsr" | "sell"
  const formats::Csr* csr = nullptr;
  const formats::Ccs* ccs = nullptr;
  const formats::Bsr* bsr = nullptr;
  const formats::Sell* sell = nullptr;
  index_t scalar_nnz = 0;
};

// Measures one (matrix, format) case. Engines run the same accumulation
// y += A x on the same buffers; only the execution mechanism differs.
EngineCase measure_engines(const std::string& label, const EngineMatrix& m,
                           bool want_interpreted, bool want_linked,
                           bool want_kernel, bool want_specialized,
                           int threads, bool check) {
  using namespace bernoulli::compiler;
  const formats::Csr* csr = m.csr;
  const index_t rows = csr      ? csr->rows()
                       : m.ccs  ? m.ccs->rows()
                       : m.bsr  ? m.bsr->rows()
                                : m.sell->rows();
  const index_t cols = csr      ? csr->cols()
                       : m.ccs  ? m.ccs->cols()
                       : m.bsr  ? m.bsr->cols()
                                : m.sell->cols();

  EngineCase out;
  out.matrix = label;
  out.format = m.format;
  out.rows = rows;
  out.nnz = m.scalar_nnz;

  SplitMix64 rng(42);
  Vector x(static_cast<std::size_t>(cols));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  Vector y(static_cast<std::size_t>(rows), 0.0);

  Bindings b;
  if (csr)
    b.bind_csr("A", *csr);
  else if (m.ccs)
    b.bind_ccs("A", *m.ccs);
  else if (m.bsr)
    b.bind_bsr("A", *m.bsr);
  else
    b.bind_sell("A", *m.sell);
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));
  LoopNest nest{{{"i", rows}, {"j", cols}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  CompiledKernel k = compile(nest, b);
  // compile() lays relations out as I=0, target=1, factors in order.
  const index_t target = 1;
  const std::vector<index_t> factors{2, 3};
  out.footprint = link_plan(k.plan(), k.query()).footprint;

  const double budget = 0.05;
  if (want_interpreted) {
    Action act = multiply_accumulate(k.query(), target, factors);
    // One stats-collecting run first: the measured per-level counts feed
    // the cost-model check in the run report.
    execute_interpreted(k.plan(), k.query(), act, &out.stats);
    out.plan = k.plan();
    out.have_stats = true;
    out.interpreted_s = bench::best_seconds(
        [&] { execute_interpreted(k.plan(), k.query(), act); }, budget);
  }
  if (want_linked) {
    LinkedRunner runner(link_plan(k.plan(), k.query()));
    LinkedMac mac = link_mac(k.query(), target, factors);
    runner.run(mac);  // warm the cursor scratch
    if (check) {
      // Serving-metrics reconciliation: one run books exactly one
      // execute.latency sample, its nanoseconds equal the execute.wall_ns
      // rate delta (the same integer, booked at the same flush site), and
      // the model-traffic rates advance by exactly the link-time
      // footprint. The warm run above already registered the metrics.
      auto c0 = support::counters_snapshot();
      auto m0 = support::metrics_snapshot();
      const support::ProfileSnapshot p0 = support::profile_snapshot();
      runner.run(mac);
      const ExecMetricsDelta d =
          exec_metrics_window(c0, m0, support::counters_snapshot(),
                              support::metrics_snapshot());
      out.metrics_check_ok =
          d.runs == 1 && d.samples == d.runs && d.sum_ns == d.wall_ns &&
          (!out.footprint.exact || (d.bytes == out.footprint.total_bytes() &&
                                    d.flops == out.footprint.flops));
      if (!out.metrics_check_ok)
        std::cerr << "  [" << label << " " << out.format
                  << " serving-metrics MISMATCH: runs=" << d.runs
                  << " samples=" << d.samples << " sum_ns=" << d.sum_ns
                  << " wall_ns=" << d.wall_ns << " bytes=" << d.bytes
                  << "/" << out.footprint.total_bytes() << " flops="
                  << d.flops << "/" << out.footprint.flops << "]\n";
      if (support::profiling_enabled()) {
        // Profile reconciliation against the same one-run window: the
        // per-level self times the flush committed must sum to the run's
        // execute.wall_ns within the documented tolerance — the estimate
        // is sampled + extrapolated, so the bound is [25%, 150%] of wall
        // (the estimator clamps each run's total at 100% of its own
        // wall; the upper slack only absorbs snapshot boundary noise).
        const support::ProfileSnapshot p1 = support::profile_snapshot();
        const long long self = p1.total_self_ns() - p0.total_self_ns();
        out.profile_check_ok = self > 0 &&
                               2 * self <= 3 * d.wall_ns &&
                               4 * self >= d.wall_ns;
        if (!out.profile_check_ok)
          std::cerr << "  [" << label << " " << out.format
                    << " profile reconciliation MISMATCH: level self sum "
                    << self << " ns vs wall " << d.wall_ns << " ns]\n";
      }
    }
    out.linked_s = bench::best_seconds([&] { runner.run(mac); }, budget);
  }
  if (want_linked && threads > 1) {
    ParallelRunner runner(link_plan(k.plan(), k.query()), threads);
    LinkedMac mac = link_mac(k.query(), target, factors);
    out.parallel = runner.parallel();
    if (check) {
      // Observability reconciliation: the threaded run must reproduce a
      // serial linked run bitwise — outputs, executor.* counter deltas,
      // executor.fanout.* histogram deltas — before its timing counts.
      LinkedRunner serial(link_plan(k.plan(), k.query()));
      std::fill(y.begin(), y.end(), 0.0);
      auto h0 = support::histograms_snapshot();
      auto c0 = support::counters_snapshot();
      auto m0 = support::metrics_snapshot();
      serial.run(mac);
      auto c1 = support::counters_snapshot();
      auto m1 = support::metrics_snapshot();
      const auto serial_counters = exec_delta(c0, c1);
      const auto serial_fanout = fanout_delta(h0, support::histograms_snapshot());
      const ExecMetricsDelta serial_metrics =
          exec_metrics_window(c0, m0, c1, m1);
      Vector y_serial = y;

      std::fill(y.begin(), y.end(), 0.0);
      h0 = support::histograms_snapshot();
      c0 = support::counters_snapshot();
      m0 = support::metrics_snapshot();
      runner.run(mac);
      c1 = support::counters_snapshot();
      m1 = support::metrics_snapshot();
      out.thread_check_ok =
          serial_counters == exec_delta(c0, c1) &&
          serial_fanout == fanout_delta(h0, support::histograms_snapshot()) &&
          y == y_serial &&
          deterministic_metrics_match(serial_metrics,
                                      exec_metrics_window(c0, m0, c1, m1));
      if (!out.thread_check_ok)
        std::cerr << "  [" << label << " " << out.format << " threads="
                  << threads << " MISMATCH vs serial linked]\n";
    }
    runner.run(mac);  // warm per-worker scratch
    out.linked_t_s = bench::best_seconds([&] { runner.run(mac); }, budget);
  }
  if (want_specialized) {
    // The kernel borrows the linked plan and mac (and their arrays), so
    // both must outlive it in this scope.
    LinkedPlan lp = link_plan(k.plan(), k.query());
    LinkedMac mac = link_mac(k.query(), target, factors);
    SpecializedKernel spec(lp, mac);
    out.specialized_note = spec.note();
    if (!spec.ok()) {
      std::cerr << "  [" << label << " " << out.format
                << " specialized: falling back to linked — " << spec.note()
                << "]\n";
    } else {
      if (check) {
        // Same reconciliation the threaded engine passes: the specialized
        // run must reproduce a serial linked run bitwise — outputs,
        // executor.* counter deltas, executor.fanout.* histogram deltas.
        LinkedRunner serial(link_plan(k.plan(), k.query()));
        std::fill(y.begin(), y.end(), 0.0);
        auto h0 = support::histograms_snapshot();
        auto c0 = support::counters_snapshot();
        auto m0 = support::metrics_snapshot();
        serial.run(mac);
        auto c1 = support::counters_snapshot();
        auto m1 = support::metrics_snapshot();
        const auto serial_counters = exec_delta(c0, c1);
        const auto serial_fanout =
            fanout_delta(h0, support::histograms_snapshot());
        const ExecMetricsDelta serial_metrics =
            exec_metrics_window(c0, m0, c1, m1);
        Vector y_serial = y;

        std::fill(y.begin(), y.end(), 0.0);
        h0 = support::histograms_snapshot();
        c0 = support::counters_snapshot();
        m0 = support::metrics_snapshot();
        spec.run();
        c1 = support::counters_snapshot();
        m1 = support::metrics_snapshot();
        out.specialized_check_ok =
            serial_counters == exec_delta(c0, c1) &&
            serial_fanout == fanout_delta(h0, support::histograms_snapshot()) &&
            y == y_serial &&
            deterministic_metrics_match(serial_metrics,
                                        exec_metrics_window(c0, m0, c1, m1));
        if (!out.specialized_check_ok)
          std::cerr << "  [" << label << " " << out.format
                    << " specialized MISMATCH vs serial linked]\n";
      }
      spec.run();  // warm (first run after dlopen pays page-in costs)
      out.specialized_s = bench::best_seconds([&] { spec.run(); }, budget);
    }
  }
  if (want_kernel) {
    if (csr)
      out.kernel_s = bench::best_seconds(
          [&] { formats::spmv_add(*csr, x, y); }, budget);
    else if (m.ccs)
      out.kernel_s = bench::best_seconds(
          [&] { formats::spmv_add(*m.ccs, x, y); }, budget);
    else if (m.bsr)
      out.kernel_s = bench::best_seconds(
          [&] { formats::spmv_add(*m.bsr, x, y); }, budget);
    else
      out.kernel_s = bench::best_seconds(
          [&] { formats::spmv_add(*m.sell, x, y); }, budget);
  }
  if (want_kernel && threads > 1 && csr) {
    // Row-chunked hand-written CRS kernel on the shared pool: the bound
    // the threaded linked engine chases, built from the same static chunk
    // grid the executor's coordinator uses.
    support::ThreadPool& pool = support::shared_pool(threads);
    const auto rp = csr->rowptr();
    const auto ci = csr->colind();
    const auto av = csr->vals();
    const index_t chunk = (rows + threads - 1) / threads;
    auto run_threaded = [&] {
      pool.run_slots(threads, [&](int slot) {
        const index_t lo = std::min<index_t>(rows, slot * chunk);
        const index_t hi = std::min<index_t>(rows, lo + chunk);
        for (index_t r = lo; r < hi; ++r) {
          value_t acc = 0.0;
          const index_t pe = rp[static_cast<std::size_t>(r) + 1];
          for (index_t p = rp[static_cast<std::size_t>(r)]; p < pe; ++p)
            acc += av[static_cast<std::size_t>(p)] *
                   x[static_cast<std::size_t>(ci[static_cast<std::size_t>(p)])];
          y[static_cast<std::size_t>(r)] += acc;
        }
      });
    };
    run_threaded();  // warm
    out.kernel_t_s = bench::best_seconds(run_threaded, budget);
  }
  return out;
}

// Serial linked seconds of each matrix's CRS case — the baseline the
// blocked/sliced storage speedup metrics divide against.
std::map<std::string, double> crs_linked_baseline(
    const std::vector<EngineCase>& cases) {
  std::map<std::string, double> base;
  for (const EngineCase& c : cases)
    if (c.format == "csr" && c.linked_s > 0) base[c.matrix] = c.linked_s;
  return base;
}

void write_exec_json(const std::vector<EngineCase>& cases,
                     const std::string& path, int threads) {
  const std::map<std::string, double> crs = crs_linked_baseline(cases);
  support::JsonWriter w(2);
  w.begin_object();
  w.key("schema").value("bernoulli.bench.exec.v1");
  w.key("kernel_desc").value("y += A x, best-of-k wall time");
  if (threads > 1) w.key("threads").value(static_cast<long long>(threads));
  w.key("cases").begin_array();
  for (const EngineCase& c : cases) {
    w.begin_object();
    w.key("matrix").value(c.matrix);
    w.key("format").value(c.format);
    w.key("rows").value(static_cast<long long>(c.rows));
    w.key("nnz").value(static_cast<long long>(c.nnz));
    w.key("engines").begin_object();
    auto engine = [&](const std::string& name, double s) {
      if (s < 0) return;
      w.key(name).begin_object();
      w.key("seconds").value(s);
      w.key("ns_per_nnz").value(ns_per_nnz(s, c.nnz));
      w.end_object();
    };
    engine("interpreted", c.interpreted_s);
    engine("linked", c.linked_s);
    engine("specialized", c.specialized_s);
    engine("kernel", c.kernel_s);
    // Threaded engine names carry the thread count (linked_t4, kernel_t4)
    // so snapshots taken at different widths stay distinguishable; the
    // scaling key below is fixed-name so report diffs line up.
    engine("linked_t" + std::to_string(threads), c.linked_t_s);
    engine("kernel_t" + std::to_string(threads), c.kernel_t_s);
    w.end_object();
    if (c.interpreted_s > 0 && c.linked_s > 0)
      w.key("speedup_linked_over_interpreted")
          .value(c.interpreted_s / c.linked_s);
    if (c.kernel_s > 0 && c.linked_s > 0)
      w.key("slowdown_linked_vs_kernel").value(c.linked_s / c.kernel_s);
    if (c.kernel_s > 0 && c.specialized_s > 0)
      w.key("slowdown_specialized_vs_kernel")
          .value(c.specialized_s / c.kernel_s);
    if (c.linked_s > 0 && c.linked_t_s > 0)
      w.key("speedup_linked_threaded_over_serial")
          .value(c.linked_s / c.linked_t_s);
    if (auto it = crs.find(c.matrix); it != crs.end() && c.linked_s > 0) {
      if (c.format == "bcsr")
        w.key("speedup_bcsr_vs_crs_linked").value(it->second / c.linked_s);
      if (c.format == "sell")
        w.key("speedup_sell_vs_crs_linked").value(it->second / c.linked_s);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::ofstream f(path);
  f << w.str() << "\n";
  BERNOULLI_CHECK_MSG(f.good(), "failed writing " << path);
  std::cerr << "wrote " << path << "\n";
}

int run_engines(const std::string& which, bool small, bool check,
                int threads, const std::string& json_path,
                const std::string& report_path) {
  // Validate the engine name FIRST: --check/--threads/--report force
  // extra engines on, so deriving "unknown" from the want_* flags would
  // silently run a default sweep on a typo'd --engine value.
  if (which != "all" && which != "interpreted" && which != "linked" &&
      which != "specialized" && which != "kernel") {
    std::cerr << "unknown --engine value: " << which
              << " (expected interpreted|linked|specialized|kernel|all)\n";
    return 2;
  }
  const bool all = which == "all";
  const bool want_interpreted = all || which == "interpreted" || check ||
                                !report_path.empty();
  const bool want_linked = all || which == "linked" || check;
  const bool want_specialized = all || which == "specialized";
  const bool want_kernel = all || which == "kernel";
  const std::string tsuf = "_t" + std::to_string(threads);

  std::cout << "=== Execution engines: y += A x on the Table-2 matrix "
            << "(ns per stored entry";
  if (threads > 1) std::cout << ", threaded engines at " << threads;
  std::cout << ") ===\n\n";
  std::vector<EngineCase> cases;
  // Blocked/sliced storage axes on a block-structured Table-2 variant:
  // the same grid3d problem at 4 dof per point, so BCSR's 4x4 blocks are
  // the discretization's natural blocks. The CRS case on the same matrix
  // is the baseline the speedup_bcsr_vs_crs_linked /
  // speedup_sell_vs_crs_linked ledger metrics divide against. These run
  // first so the scaling probe below still lands on the largest CRS case.
  {
    bench::Problem prob = bench::build_problem(1, /*dof=*/4);
    const formats::Csr& csr = prob.matrix;
    formats::Coo coo = csr.to_coo();
    formats::Bsr bsr = formats::Bsr::from_coo(coo, 4);
    formats::Sell sell = formats::Sell::from_coo(coo, 8, 32);
    const std::string label = "grid3d_bs4_P1";
    const index_t nnz = csr.nnz();
    for (const EngineMatrix& em :
         {EngineMatrix{"csr", &csr, nullptr, nullptr, nullptr, nnz},
          EngineMatrix{"bcsr", nullptr, nullptr, &bsr, nullptr, nnz},
          EngineMatrix{"sell", nullptr, nullptr, nullptr, &sell, nnz}})
      cases.push_back(measure_engines(label, em, want_interpreted,
                                      want_linked, want_kernel,
                                      want_specialized, threads, check));
    std::cerr << "  [" << label << " done]\n";
  }
  // P=1 is in the full sweep too so a --small run (the CI gate) and the
  // committed BENCH_exec.json snapshot share comparable cases.
  for (int P : (small ? std::vector<int>{1} : std::vector<int>{1, 2, 4})) {
    bench::Problem prob = bench::build_problem(P);
    const formats::Csr& csr = prob.matrix;
    formats::Ccs ccs = formats::Ccs::from_coo(csr.to_coo());
    std::string label = "grid3d_bs_P" + std::to_string(P);
    cases.push_back(measure_engines(
        label, {"csr", &csr, nullptr, nullptr, nullptr, csr.nnz()},
        want_interpreted, want_linked, want_kernel, want_specialized,
        threads, check));
    cases.push_back(measure_engines(
        label, {"ccs", nullptr, &ccs, nullptr, nullptr, ccs.nnz()},
        want_interpreted, want_linked, want_kernel, want_specialized,
        threads, check));
    std::cerr << "  [" << label << " done]\n";
  }

  std::vector<std::string> headers{"matrix", "format", "rows", "nnz",
                                   "interp (ns/nnz)", "linked (ns/nnz)",
                                   "kernel (ns/nnz)"};
  if (want_specialized) {
    headers.push_back("spec (ns/nnz)");
    headers.push_back("spec vs kernel");
  }
  if (threads > 1) {
    headers.push_back("linked" + tsuf);
    headers.push_back("kernel" + tsuf);
    headers.push_back(tsuf.substr(1) + " scaling");
  }
  headers.push_back("linked speedup");
  headers.push_back("vs kernel");
  TextTable table(std::move(headers));
  bool check_ok = true;
  bool thread_check_ok = true;
  bool specialized_check_ok = true;
  bool metrics_check_ok = true;
  bool profile_check_ok = true;
  bool any_specialized = false;
  // Threaded scaling on the LARGEST measured CRS case (the acceptance
  // target: >= 2.5x at 4 threads on the full Table-2 sweep).
  double big_scaling = -1.0;
  for (const EngineCase& c : cases) {
    table.new_row();
    table.add(c.matrix);
    table.add(c.format);
    table.add(static_cast<long long>(c.rows));
    table.add(static_cast<long long>(c.nnz));
    auto cell = [&](double s) {
      if (s < 0)
        table.add("-");
      else
        table.add(ns_per_nnz(s, c.nnz), 2);
    };
    auto ratio = [&](double num, double den, const char* fallback = "-") {
      if (num > 0 && den > 0) {
        std::ostringstream os;
        os.setf(std::ios::fixed);
        os.precision(1);
        os << num / den << "x";
        table.add(os.str());
      } else {
        table.add(fallback);
      }
    };
    cell(c.interpreted_s);
    cell(c.linked_s);
    cell(c.kernel_s);
    if (want_specialized) {
      if (c.specialized_s < 0) {
        table.add("fallback");
        table.add("-");
      } else {
        cell(c.specialized_s);
        ratio(c.specialized_s, c.kernel_s);
      }
    }
    if (threads > 1) {
      cell(c.linked_t_s);
      cell(c.kernel_t_s);
      // Serial-over-threaded: > 1 means the threads helped. Plans the
      // legality check rejected ran the serial fallback — say so instead
      // of printing a meaningless ~1.0x.
      if (!c.parallel && c.linked_t_s > 0)
        table.add("serial");
      else
        ratio(c.linked_s, c.linked_t_s);
      if (c.parallel && c.format == "csr" && c.linked_s > 0 &&
          c.linked_t_s > 0)
        big_scaling = c.linked_s / c.linked_t_s;  // last CRS case = largest
    }
    if (c.interpreted_s > 0 && c.linked_s > 0) {
      std::ostringstream os;
      os.setf(std::ios::fixed);
      os.precision(1);
      os << c.interpreted_s / c.linked_s << "x";
      table.add(os.str());
      if (c.linked_s >= c.interpreted_s) check_ok = false;
    } else {
      table.add("-");
    }
    ratio(c.linked_s, c.kernel_s);
    thread_check_ok = thread_check_ok && c.thread_check_ok;
    specialized_check_ok = specialized_check_ok && c.specialized_check_ok;
    metrics_check_ok = metrics_check_ok && c.metrics_check_ok;
    profile_check_ok = profile_check_ok && c.profile_check_ok;
    any_specialized = any_specialized || c.specialized_s > 0;
  }
  std::cout << table.str()
            << "\nlinked = plan linked once into a cursor program "
               "(compiler/link.hpp), then re-run;\nkernel = hand-written "
               "format spmv_add; interp = tree-walking reference "
               "interpreter.\n";
  if (want_specialized)
    std::cout << "spec = plan emitted as C, compiled to a shared object "
                 "and dlopen'd\n(compiler/specialize.hpp); \"fallback\" = "
                 "kernel unavailable on this host\n(reason printed above), "
                 "the linked engine stands in.\n";
  if (threads > 1)
    std::cout << "linked" << tsuf
              << " = ParallelRunner, outer level chunked over " << threads
              << " pool threads; kernel" << tsuf
              << " = row-chunked CRS spmv\non the same pool (CRS only). "
                 "scaling = serial linked time / threaded linked time.\n";

  if (!json_path.empty()) write_exec_json(cases, json_path, threads);
  if (!report_path.empty()) {
    const std::map<std::string, double> crs_base = crs_linked_baseline(cases);
    analysis::RunReport report("bench_table2_executor");
    report.config("axis", "engines");
    report.config("engine", which);
    report.config("small", small ? "true" : "false");
    if (threads > 1) report.config("threads", static_cast<long long>(threads));
    for (const EngineCase& c : cases) {
      // Metric names match what report_metrics() derives from a
      // bernoulli.bench.exec.v1 snapshot, so this report diffs directly
      // against the committed BENCH_exec.json.
      const std::string base = "exec." + c.matrix + "." + c.format;
      auto engine = [&](const std::string& name, double s) {
        if (s > 0)
          report.metric(base + "." + name + ".ns_per_nnz",
                        ns_per_nnz(s, c.nnz));
      };
      engine("interpreted", c.interpreted_s);
      engine("linked", c.linked_s);
      engine("specialized", c.specialized_s);
      engine("kernel", c.kernel_s);
      engine("linked" + tsuf, c.linked_t_s);
      engine("kernel" + tsuf, c.kernel_t_s);
      if (c.interpreted_s > 0 && c.linked_s > 0)
        report.metric(base + ".speedup_linked_over_interpreted",
                      c.interpreted_s / c.linked_s);
      if (c.kernel_s > 0 && c.linked_s > 0)
        report.metric(base + ".slowdown_linked_vs_kernel",
                      c.linked_s / c.kernel_s);
      if (c.kernel_s > 0 && c.specialized_s > 0)
        report.metric(base + ".slowdown_specialized_vs_kernel",
                      c.specialized_s / c.kernel_s);
      if (c.linked_s > 0 && c.linked_t_s > 0)
        report.metric(base + ".speedup_linked_threaded_over_serial",
                      c.linked_s / c.linked_t_s);
      if (auto it = crs_base.find(c.matrix);
          it != crs_base.end() && c.linked_s > 0) {
        if (c.format == "bcsr")
          report.metric(base + ".speedup_bcsr_vs_crs_linked",
                        it->second / c.linked_s);
        if (c.format == "sell")
          report.metric(base + ".speedup_sell_vs_crs_linked",
                        it->second / c.linked_s);
      }
      if (c.have_stats)
        report.add_model_check(c.matrix + "." + c.format,
                               analysis::model_check(c.plan, c.stats));
      // Roofline: every measured rung positioned against the simulated
      // machine's peaks (runtime::CostModel), with the link-time
      // footprint as the per-run traffic/work model. The same bytes for
      // every rung — they run the same plan on the same data; only the
      // seconds (and hence achieved bandwidth) differ.
      const runtime::CostModel cost;
      auto roof = [&](const std::string& name, double s) {
        if (s <= 0) return;
        analysis::RooflineEntry e;
        e.name = base + "." + name;
        e.bytes = c.footprint.total_bytes();
        e.flops = c.footprint.flops;
        e.seconds = s;
        e.peak_bytes_per_s = cost.bytes_per_s;
        e.peak_flops_per_s = cost.flops_per_s;
        e.exact = c.footprint.exact;
        report.add_roofline(e);
      };
      roof("interpreted", c.interpreted_s);
      roof("linked", c.linked_s);
      roof("specialized", c.specialized_s);
      roof("kernel", c.kernel_s);
      roof("linked" + tsuf, c.linked_t_s);
      roof("kernel" + tsuf, c.kernel_t_s);
    }
    // Under --profile: the flattened per-level attribution joins the
    // diffable metric surface, so `bernoulli_report regress` can point at
    // the level whose self-time moved when an exec.* gate trips.
    if (support::profiling_enabled()) {
      const support::JsonValue prof =
          support::json_parse(support::profile_json());
      for (const auto& [name, v] : analysis::profile_flat_metrics(prof))
        report.metric(name, v);
    }
    report.write(report_path);
  }
  if (check) {
    if (!check_ok) {
      std::cerr << "CHECK FAILED: linked engine slower than the "
                   "interpreter on at least one case\n";
      return 1;
    }
    if (!thread_check_ok) {
      std::cerr << "CHECK FAILED: threaded linked run did not reproduce "
                   "the serial run (outputs/counters/histograms)\n";
      return 1;
    }
    if (!specialized_check_ok) {
      std::cerr << "CHECK FAILED: specialized kernel did not reproduce "
                   "the serial linked run (outputs/counters/histograms)\n";
      return 1;
    }
    if (!metrics_check_ok) {
      std::cerr << "CHECK FAILED: serving metrics did not reconcile "
                   "(execute.latency samples vs executor.runs, histogram "
                   "sum vs execute.wall_ns, model bytes/flops vs the "
                   "link-time footprint)\n";
      return 1;
    }
    if (!profile_check_ok) {
      std::cerr << "CHECK FAILED: profile level self-times do not "
                   "reconcile with execute.wall_ns (per-level attribution "
                   "outside the documented tolerance)\n";
      return 1;
    }
    std::cerr << "check ok: linked faster than interpreted on every case\n";
    std::cerr << "check ok: serving metrics reconcile (latency samples == "
                 "runs, hist sum == wall_ns rate, model traffic == "
                 "footprint)\n";
    if (support::profiling_enabled())
      std::cerr << "check ok: per-level profile self-times sum to "
                   "execute.wall_ns within tolerance on every case\n";
    if (any_specialized)
      std::cerr << "check ok: specialized kernel bitwise-identical to the "
                   "serial linked engine with reconciling counters/"
                   "histograms\n";
    else if (want_specialized)
      std::cerr << "check note: specialized kernel unavailable on this "
                   "host (fell back to linked); nothing to verify\n";
    if (threads > 1)
      std::cerr << "check ok: threaded linked runs bitwise-identical to "
                   "serial with reconciling executor counters/histograms\n";
    // The scaling gate needs real cores; on an undersized host (CI smoke
    // containers are often 1-2 wide) the correctness checks above still
    // ran, so report the scaling and move on.
    const unsigned hw = std::thread::hardware_concurrency();
    if (threads > 1 && !small && big_scaling > 0) {
      if (hw >= static_cast<unsigned>(threads)) {
        if (big_scaling < 2.5) {
          std::cerr << "CHECK FAILED: linked" << tsuf << " only "
                    << big_scaling << "x over serial on the largest CRS "
                    << "case (need >= 2.5x on " << hw << " hw threads)\n";
          return 1;
        }
        std::cerr << "check ok: linked" << tsuf << " " << big_scaling
                  << "x over serial on the largest CRS case\n";
      } else {
        std::cerr << "check skipped: scaling gate needs >= " << threads
                  << " hw threads, host has " << hw << " (measured "
                  << big_scaling << "x)\n";
      }
    }
  }
  return 0;
}

int run_validate_exec_json(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  std::stringstream ss;
  ss << f.rdbuf();
  try {
    support::JsonValue doc = support::json_parse(ss.str());
    BERNOULLI_CHECK_MSG(doc.is_object(), "document is not an object");
    const auto* schema = doc.find("schema");
    BERNOULLI_CHECK_MSG(
        schema && schema->as_string() == "bernoulli.bench.exec.v1",
        "schema is not bernoulli.bench.exec.v1");
    const auto* cases = doc.find("cases");
    BERNOULLI_CHECK_MSG(cases && cases->is_array() && !cases->items.empty(),
                        "cases missing or empty");
    for (const auto& c : cases->items) {
      BERNOULLI_CHECK_MSG(c.find("matrix") && c.find("format") &&
                              c.find("nnz"),
                          "case missing matrix/format/nnz");
      const auto* engines = c.find("engines");
      BERNOULLI_CHECK_MSG(engines && engines->is_object() &&
                              !engines->members.empty(),
                          "case has no engines");
      for (const auto& [name, e] : engines->members) {
        const auto* ns = e.find("ns_per_nnz");
        BERNOULLI_CHECK_MSG(ns && ns->as_number() > 0,
                            "engine " << name << " has no ns_per_nnz");
      }
    }
    std::cout << "ok: " << path << " is a valid bernoulli.bench.exec.v1 "
              << "report with " << cases->items.size() << " cases\n";
  } catch (const std::exception& e) {
    std::cerr << "INVALID " << path << ": " << e.what() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Shared flags (observability, --metrics, --engine/--threads/--small/
  // --check) parse once in bench::Options; this tool's own flags come out
  // of opts.rest.
  auto opts = bench::Options::parse(argc, argv);
  std::string exec_json;
  std::string validate_json;
  for (const std::string& arg : opts.rest) {
    if (arg.rfind("--exec-json=", 0) == 0) {
      support::warn_deprecated_flag("--exec-json",
                                    "--report=<file> (bernoulli.run.v1)");
      exec_json = arg.substr(12);
    }
    if (arg.rfind("--validate-exec-json=", 0) == 0)
      validate_json = arg.substr(21);
  }
  int rc;
  if (!validate_json.empty()) {
    rc = run_validate_exec_json(validate_json);
  } else if (!opts.engine.empty() || !exec_json.empty() || opts.threads > 0) {
    rc = run_engines(opts.engine.empty() ? "all" : opts.engine, opts.small,
                     opts.check, opts.threads, exec_json,
                     opts.obs.report_path);
  } else if (opts.obs.legacy_report_stdout()) {
    // Explicit --report=<file> wins over the deprecated --report=json
    // alias in either flag order; the stdout report only runs when no
    // run-report file was requested.
    rc = run_report();
  } else if (opts.obs.active()) {
    rc = run_traced(opts.obs);
  } else {
    rc = run_table();
  }
  opts.finish();
  return rc;
}
