// Shared machinery for the table/figure benches.
//
// Tables 2, 3 and Figure 4 all measure the same experiment family: the
// paper's synthetic 3-D 7-point-stencil problem with 5 degrees of freedom
// per point, BlockSolve-reordered, distributed BlockSolve-style (one row
// run per color per processor), weak-scaled so the per-processor problem
// size stays constant. This header builds that setup once per processor
// count and measures inspector/executor virtual times per variant.
#pragma once

#include <array>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "distrib/distribution.hpp"
#include "formats/blocksolve.hpp"
#include "formats/csr.hpp"
#include "solvers/dist_cg.hpp"
#include "spmd/matvec.hpp"
#include "support/metrics.hpp"
#include "support/profile.hpp"
#include "support/timer.hpp"
#include "support/trace_cli.hpp"
#include "workloads/bs_order.hpp"
#include "workloads/grid.hpp"

namespace bernoulli::bench {

/// The flags every bench spells identically, parsed in ONE place so a new
/// flag (like --metrics) lands in every tool at once:
///   --trace=<f> --comm-matrix --report=<f>   observability (ObsOptions)
///   --metrics=<f>   Prometheus text exposition of the serving-metrics
///                   registry, written by finish() at the end of the run
///   --profile=<f>   enables per-level time attribution for the whole run
///                   and writes collapsed-stack flamegraph lines
///                   (support/profile.hpp) from finish()
///   --engine=<e> --threads=<n> --small --check   engine-bench knobs
/// Arguments no shared flag claims land in `rest` for tool-specific
/// parsing (e.g. table2's --exec-json=), so parse() never rejects — except
/// a malformed --threads=, which exits 2 like any usage error.
struct Options {
  support::ObsOptions obs;
  std::string metrics_path;  // --metrics=<file>; empty = no exposition
  std::string profile_path;  // --profile=<file>; empty = profiling off
  std::string engine;        // --engine=<name>; empty = tool default
  int threads = 0;           // --threads=<n>; 0 = serial
  bool small = false;        // --small
  bool check = false;        // --check
  std::vector<std::string> rest;  // unclaimed argv entries, in order

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (support::obs_parse_flag(arg, o.obs)) continue;
      if (std::strncmp(arg, "--metrics=", 10) == 0) {
        o.metrics_path = arg + 10;
      } else if (std::strncmp(arg, "--profile=", 10) == 0) {
        o.profile_path = arg + 10;
        support::set_profiling(true);
      } else if (std::strncmp(arg, "--engine=", 9) == 0) {
        o.engine = arg + 9;
      } else if (std::strncmp(arg, "--threads=", 10) == 0) {
        o.threads = std::atoi(arg + 10);
        if (o.threads < 1) {
          std::cerr << "error: " << arg << " (want --threads=<n>, n >= 1)\n";
          std::exit(2);
        }
      } else if (std::strcmp(arg, "--small") == 0) {
        o.small = true;
      } else if (std::strcmp(arg, "--check") == 0) {
        o.check = true;
      } else {
        o.rest.emplace_back(arg);
      }
    }
    return o;
  }

  /// End-of-main epilogue: writes the Prometheus exposition if --metrics
  /// asked for one. Called by each bench main directly (NOT from
  /// obs_end(): benches that skip the observability window still honor
  /// --metrics).
  void finish() const {
    if (!profile_path.empty()) {
      std::ofstream out(profile_path);
      out << support::profile_collapsed();
      if (!out) {
        std::cerr << "error: cannot write --profile file " << profile_path
                  << "\n";
        std::exit(1);
      }
      std::cerr << "profile: " << profile_path << " (collapsed stacks)\n";
    }
    if (metrics_path.empty()) return;
    if (!support::metrics_write_prometheus(metrics_path)) {
      std::cerr << "error: cannot write --metrics file " << metrics_path
                << "\n";
      std::exit(1);
    }
    std::cerr << "metrics: " << metrics_path << " (Prometheus text)\n";
  }
};

/// Weak-scaling grid dimensions: a 12^3 block of points (8640 unknowns at
/// 5 dof) per processor — the paper used a 30^3-per-processor problem
/// (27000 unknowns); we scale down ~3x per processor to fit a single-core
/// host simulating all ranks, and scale the runtime's message cost model
/// so the modeled communication-to-computation balance matches the
/// paper's machine (see runtime::CostModel).
inline std::array<index_t, 3> grid_dims_for(int nprocs) {
  BERNOULLI_CHECK_MSG(
      nprocs >= 1 && nprocs <= 64,
      "weak-scaling configuration defined for 1..64 processors");
  // The grid grows along x only, so a contiguous (color-major) partition
  // gives every rank a slab with a CONSTANT 12x12 cross-section — per-rank
  // boundary, and hence inspector and communication work, stay flat in P,
  // which is the shape the paper's tables show.
  return {static_cast<index_t>(12 * nprocs), 12, 12};
}

struct Problem {
  formats::Csr matrix;           // BlockSolve-permuted matrix, CSR
  distrib::RowRunsDist rows;     // BlockSolve-style distribution
  index_t dof = 5;
};

/// Builds the Table-2/3 problem for `nprocs`: generate the grid matrix,
/// compute the BlockSolve ordering, permute, and distribute color-major.
inline Problem build_problem(int nprocs, index_t dof = 5) {
  auto dims = grid_dims_for(nprocs);
  auto g = workloads::grid3d_7pt(dims[0], dims[1], dims[2], dof,
                                 /*seed=*/97);
  formats::BsOrdering ord = workloads::blocksolve_ordering(g.matrix, dof);
  formats::BsMatrix bs = formats::BsMatrix::build(g.matrix, ord);
  formats::Coo permuted = bs.to_coo_permuted();
  distrib::RowRunsDist rows = distrib::rowruns_from_color_ptr(
      ord.color_ptr, permuted.rows(), nprocs);
  return Problem{formats::Csr::from_coo(permuted), std::move(rows), dof};
}

struct VariantTiming {
  double inspector_s = 0.0;       // max over ranks, virtual seconds
  double executor_s = 0.0;        // max over ranks, `iterations` CG steps
  double per_iteration_s = 0.0;
  double inspector_ratio = 0.0;   // inspector / one executor iteration
  long long inspector_bytes = 0;  // total modeled bytes the inspector moved

  // Communication accounting for estimate-vs-measured reports (filled by
  // measure_variant_calibrated).
  //
  // Predicted: what ONE ghost exchange should cost, derived from the
  // CommSchedules alone (sum over ranks: one message per peer with a
  // non-empty send list, sizeof(value_t) bytes per requested value).
  long long predicted_exchange_messages = 0;
  long long predicted_exchange_bytes = 0;
  int exchanges = 0;  // exchanges in the timed executor run (iters + 1)

  // Measured: runtime::CommStats totals summed over ranks — the timed
  // executor run alone, and every machine run the measurement performed
  // (for reconciling against the comm.* counter registry).
  long long executor_messages = 0;
  long long executor_bytes = 0;
  long long total_messages = 0;
  long long total_bytes = 0;
};

/// Runs the inspector once and `iterations` CG steps for one variant,
/// reporting per-rank-max virtual times. `repeats` re-runs the whole
/// measurement and keeps the fastest (to damp host noise).
inline VariantTiming measure_variant(const Problem& prob, int nprocs,
                                     spmd::Variant variant, int iterations,
                                     int repeats = 5) {
  const formats::Csr& a = prob.matrix;
  Vector diag = solvers::extract_diagonal(a);
  Vector b(static_cast<std::size_t>(a.rows()), 1.0);

  VariantTiming best;
  best.inspector_s = best.executor_s = 1e30;
  for (int rep = 0; rep < repeats; ++rep) {
    runtime::Machine machine(nprocs);
    std::vector<double> insp(static_cast<std::size_t>(nprocs), 0.0);
    std::vector<double> exec(static_cast<std::size_t>(nprocs), 0.0);
    std::vector<long long> insp_bytes(static_cast<std::size_t>(nprocs), 0);
    auto reports = machine.run([&](runtime::Process& p) {
      auto mine = prob.rows.owned_indices(p.rank());
      Vector bl(mine.size()), dl(mine.size()), xl(mine.size(), 0.0);
      for (std::size_t k = 0; k < mine.size(); ++k) {
        bl[k] = b[static_cast<std::size_t>(mine[k])];
        dl[k] = diag[static_cast<std::size_t>(mine[k])];
      }
      p.barrier();
      spmd::DistSpmv dist = [&] {
        support::ProfilePhaseScope prof(support::kProfPhaseInspector);
        return spmd::build_dist_spmv(p, a, prob.rows, variant);
      }();
      insp_bytes[static_cast<std::size_t>(p.rank())] = p.stats().bytes;
      double t1 = p.virtual_time();
      solvers::CgOptions opts;
      opts.max_iterations = iterations;
      opts.tolerance = -1.0;
      (void)solvers::dist_cg(p, dist, dl, bl, xl, opts);
      insp[static_cast<std::size_t>(p.rank())] = dist.inspector_vtime;
      exec[static_cast<std::size_t>(p.rank())] = p.virtual_time() - t1;
    });
    // Per-rank MEAN, not max: the load is balanced by construction, so on
    // a dedicated machine mean ~= max, but the max over many ranks
    // time-shared on one host core is dominated by whichever thread the
    // host scheduler disturbed most. Phases are then minimized over
    // repeats independently (their noise is uncorrelated).
    double isum = 0, esum = 0;
    long long bytes = 0;
    for (int r = 0; r < nprocs; ++r) {
      isum += insp[static_cast<std::size_t>(r)];
      esum += exec[static_cast<std::size_t>(r)];
      bytes += insp_bytes[static_cast<std::size_t>(r)];
      // Every repeat's traffic counts toward the totals, so the caller can
      // hand them to support::obs_end for reconciliation.
      best.total_messages += reports[static_cast<std::size_t>(r)].stats.messages;
      best.total_bytes += reports[static_cast<std::size_t>(r)].stats.bytes;
    }
    best.inspector_s = std::min(best.inspector_s, isum / nprocs);
    best.executor_s = std::min(best.executor_s, esum / nprocs);
    best.inspector_bytes = bytes;
  }
  best.per_iteration_s = best.executor_s / iterations;
  best.inspector_ratio =
      best.per_iteration_s > 0 ? best.inspector_s / best.per_iteration_s : 0;
  return best;
}

/// Best-of-k solo timing (single caller thread, nothing else running).
inline double best_seconds(const std::function<void()>& fn,
                           double budget_s = 0.02, int min_reps = 5) {
  double best = 1e30;
  double spent = 0.0;
  int reps = 0;
  while (reps < min_reps || (spent < budget_s && reps < 500)) {
    WallTimer t;
    fn();
    double s = t.seconds();
    best = std::min(best, s);
    spent += s;
    ++reps;
  }
  return best;
}

/// Calibrated executor measurement for Table 2's small (2-10%) contrasts:
/// kernel costs are timed SOLO per rank (quiet, best-of-k) and charged
/// deterministically through the virtual clock (manual-compute mode), so
/// the reported times are free of host-scheduling noise while still coming
/// from the real kernels on the real data. Communication remains modeled
/// by the runtime. Inspector time is reported from the in-situ build run.
inline VariantTiming measure_variant_calibrated(const Problem& prob,
                                                int nprocs,
                                                spmd::Variant variant,
                                                int iterations) {
  const formats::Csr& a = prob.matrix;
  Vector diag = solvers::extract_diagonal(a);
  Vector b(static_cast<std::size_t>(a.rows()), 1.0);

  // Phase 1: build every rank's executor state (inspector measured in-situ
  // with min-of-k over repeats; its contrasts are order-of-magnitude so
  // CPU-clock noise is tolerable).
  std::vector<spmd::DistSpmv> dists(static_cast<std::size_t>(nprocs));
  double inspector_best = 1e30;
  long long inspector_bytes = 0;
  long long all_messages = 0;
  long long all_bytes = 0;
  for (int rep = 0; rep < 3; ++rep) {
    runtime::Machine machine(nprocs);
    std::vector<double> insp(static_cast<std::size_t>(nprocs), 0.0);
    std::vector<long long> ibytes(static_cast<std::size_t>(nprocs), 0);
    auto reports = machine.run([&](runtime::Process& p) {
      p.barrier();
      spmd::DistSpmv d = [&] {
        support::ProfilePhaseScope prof(support::kProfPhaseInspector);
        return spmd::build_dist_spmv(p, a, prob.rows, variant);
      }();
      insp[static_cast<std::size_t>(p.rank())] = d.inspector_vtime;
      ibytes[static_cast<std::size_t>(p.rank())] = p.stats().bytes;
      if (rep == 0)
        dists[static_cast<std::size_t>(p.rank())] = std::move(d);
    });
    double isum = 0;
    long long btot = 0;
    for (int r = 0; r < nprocs; ++r) {
      isum += insp[static_cast<std::size_t>(r)];
      btot += ibytes[static_cast<std::size_t>(r)];
      all_messages += reports[static_cast<std::size_t>(r)].stats.messages;
      all_bytes += reports[static_cast<std::size_t>(r)].stats.bytes;
    }
    inspector_best = std::min(inspector_best, isum / nprocs);
    inspector_bytes = btot;
  }

  // Phase 2: solo calibration. Each rank's kernel cost is proportional to
  // its entry count, so calibrate per-entry RATES and take the min across
  // ranks (timing noise is strictly additive, and 2-64 independent samples
  // make the min robust against host stalls hitting any one rank's
  // calibration window); each rank is then charged rate * its_size.
  double rate_local = 1e30, rate_nonlocal = 1e30, rate_blas = 1e30;
  for (int r = 0; r < nprocs; ++r) {
    auto& d = dists[static_cast<std::size_t>(r)];
    const auto full = static_cast<std::size_t>(d.sched.full_size());
    const auto n = static_cast<std::size_t>(d.local_rows());
    Vector x_full(full), y(n);
    for (std::size_t i = 0; i < full; ++i)
      x_full[i] = 1.0 + 1e-3 * static_cast<double>(i % 13);
    if (d.a_local.nnz() > 0)
      rate_local = std::min(
          rate_local, best_seconds([&] { d.compute_local(x_full, y); }) /
                          d.a_local.nnz());
    if (d.a_nonlocal.nnz() > 0)
      rate_nonlocal = std::min(
          rate_nonlocal, best_seconds([&] { d.compute_nonlocal(x_full, y); }) /
                             d.a_nonlocal.nnz());
    // One iteration's BLAS-1 work: 3 dots, 2 axpys, 1 xpby, 1 divide.
    Vector u(n, 1.0), v(n, 2.0);
    volatile value_t sink = 0.0;
    rate_blas = std::min(rate_blas, best_seconds([&] {
                           sink = sink + solvers::dot(u, v) +
                                  solvers::dot(u, u) + solvers::dot(v, v);
                           solvers::axpy(0.5, u, v);
                           solvers::axpy(-0.5, u, v);
                           solvers::xpby(u, 0.5, v);
                           for (std::size_t i = 0; i < n; ++i)
                             v[i] = u[i] / 2.0;
                         }) / static_cast<double>(n));
  }
  std::vector<double> blas_charge(static_cast<std::size_t>(nprocs), 0.0);
  for (int r = 0; r < nprocs; ++r) {
    auto& d = dists[static_cast<std::size_t>(r)];
    d.charge.local = rate_local * d.a_local.nnz();
    d.charge.nonlocal = rate_nonlocal * d.a_nonlocal.nnz();
    blas_charge[static_cast<std::size_t>(r)] =
        rate_blas * static_cast<double>(d.local_rows());
  }

  // Phase 3: deterministic timed run.
  VariantTiming out;
  out.inspector_s = inspector_best;
  out.inspector_bytes = inspector_bytes;

  // Predicted cost of one ghost exchange, from the schedules alone.
  for (int r = 0; r < nprocs; ++r) {
    const auto& s = dists[static_cast<std::size_t>(r)].sched;
    for (const auto& list : s.send_local) {
      if (list.empty()) continue;
      ++out.predicted_exchange_messages;
      out.predicted_exchange_bytes +=
          static_cast<long long>(list.size() * sizeof(value_t));
    }
  }
  // dist_cg applies the operator once to form r = b - Ax, then once per
  // iteration.
  out.exchanges = iterations + 1;

  {
    runtime::Machine machine(nprocs);
    std::vector<double> exec(static_cast<std::size_t>(nprocs), 0.0);
    auto reports = machine.run([&](runtime::Process& p) {
      const auto& d = dists[static_cast<std::size_t>(p.rank())];
      auto mine = prob.rows.owned_indices(p.rank());
      Vector bl(mine.size()), dl(mine.size()), xl(mine.size(), 0.0);
      for (std::size_t k = 0; k < mine.size(); ++k) {
        bl[k] = b[static_cast<std::size_t>(mine[k])];
        dl[k] = diag[static_cast<std::size_t>(mine[k])];
      }
      p.barrier();
      p.set_manual_compute(true);
      double t0 = p.virtual_time();
      solvers::CgOptions opts;
      opts.max_iterations = iterations;
      opts.tolerance = -1.0;
      opts.blas1_charge_per_iteration =
          blas_charge[static_cast<std::size_t>(p.rank())];
      (void)solvers::dist_cg(p, d, dl, bl, xl, opts);
      exec[static_cast<std::size_t>(p.rank())] = p.virtual_time() - t0;
      p.set_manual_compute(false);
    });
    double emax = 0;
    for (int r = 0; r < nprocs; ++r) {
      emax = std::max(emax, exec[static_cast<std::size_t>(r)]);
      out.executor_messages +=
          reports[static_cast<std::size_t>(r)].stats.messages;
      out.executor_bytes += reports[static_cast<std::size_t>(r)].stats.bytes;
    }
    out.executor_s = emax;
    all_messages += out.executor_messages;
    all_bytes += out.executor_bytes;
  }
  out.total_messages = all_messages;
  out.total_bytes = all_bytes;
  out.per_iteration_s = out.executor_s / iterations;
  out.inspector_ratio =
      out.per_iteration_s > 0 ? out.inspector_s / out.per_iteration_s : 0;
  return out;
}

}  // namespace bernoulli::bench
