// Table 1: sparse matrix-vector product performance (MFLOPS) across
// storage formats and matrices.
//
// Paper columns: Diagonal, Coordinate, CRS, ITPACK, JDiag, BS95 over the
// eight-matrix suite. The headline is qualitative: NO single format wins
// on every matrix (boxed best values move around) — banded problems favor
// Diagonal, regular stencils favor CRS/ITPACK, skewed row lengths kill
// ITPACK and favor JDiag, block-structured FEM problems favor BS95.
#include <algorithm>
#include <iostream>

#include "formats/blocksolve.hpp"
#include "formats/formats.hpp"
#include "support/text_table.hpp"
#include "support/timer.hpp"
#include "workloads/bs_order.hpp"
#include "workloads/suite.hpp"

#include <functional>
#include <sstream>
namespace {

using namespace bernoulli;

// Best-of-k timing of `fn`, repeated until the measurement is stable.
double best_seconds(const std::function<void()>& fn) {
  double best = 1e30;
  double spent = 0.0;
  int reps = 0;
  while (reps < 3 || (spent < 0.05 && reps < 200)) {
    WallTimer t;
    fn();
    double s = t.seconds();
    best = std::min(best, s);
    spent += s;
    ++reps;
  }
  return best;
}

double mflops(index_t nnz, double seconds) {
  return 2.0 * static_cast<double>(nnz) / seconds / 1e6;
}

}  // namespace

int main() {
  std::cout << "=== Table 1: sparse matrix-vector product (MFLOPS) ===\n"
            << "(synthetic structural analogues of the paper's suite;\n"
            << " * marks the row's best format — the paper's boxed value)\n\n";

  const std::vector<formats::Kind> kinds = {
      formats::Kind::kDia, formats::Kind::kCoo, formats::Kind::kCsr,
      formats::Kind::kEll, formats::Kind::kJds};

  std::vector<std::string> headers{"Name"};
  for (auto k : kinds) headers.push_back(formats::kind_name(k));
  headers.push_back("BS95");
  TextTable table(headers);

  for (const auto& m : workloads::table1_suite()) {
    const auto n = static_cast<std::size_t>(m.matrix.cols());
    Vector x(n, 1.0), y(static_cast<std::size_t>(m.matrix.rows()), 0.0);
    for (std::size_t i = 0; i < n; ++i)
      x[i] = 1.0 + 0.001 * static_cast<double>(i % 97);

    std::vector<double> rates;
    for (auto kind : kinds) {
      formats::AnyFormat f(kind, m.matrix);
      double secs = best_seconds([&] { f.spmv(x, y); });
      rates.push_back(mflops(m.matrix.nnz(), secs));
    }
    {
      auto ord = workloads::blocksolve_ordering(m.matrix, m.dof);
      auto bs = formats::BsMatrix::build(m.matrix, ord);
      // BS95 computes in the permuted space; permute x once outside the
      // timed region, exactly as the library's solver does.
      Vector xp(n), yp(y.size());
      for (std::size_t i = 0; i < n; ++i)
        xp[static_cast<std::size_t>(ord.old_to_new[i])] = x[i];
      double secs = best_seconds([&] { bs.spmv_permuted(xp, yp); });
      rates.push_back(mflops(m.matrix.nnz(), secs));
    }

    std::size_t best =
        static_cast<std::size_t>(std::max_element(rates.begin(), rates.end()) -
                                 rates.begin());
    table.new_row();
    table.add(m.name);
    for (std::size_t k = 0; k < rates.size(); ++k) {
      std::ostringstream cell;
      cell.setf(std::ios::fixed);
      cell.precision(1);
      cell << rates[k] << (k == best ? " *" : "");
      table.add(cell.str());
    }
  }
  std::cout << table.str() << '\n';
  std::cout << "Matrices (paper original -> synthetic analogue):\n";
  for (const auto& m : workloads::table1_suite())
    std::cout << "  " << m.name << ": " << m.provenance
              << "  [n=" << m.matrix.rows() << ", nnz=" << m.matrix.nnz()
              << "]\n";
  return 0;
}
