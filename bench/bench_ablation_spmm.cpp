// Ablation/extension: SpMM vs repeated SpMV (the paper's "product of a
// sparse matrix and a skinny dense matrix", §6).
//
// Sequential side: one fused pass over the sparse structure amortizes
// index traffic over all right-hand sides. Distributed side: ONE ghost
// exchange moves whole block rows, so per-RHS communication (messages and
// modeled time) drops with the block width.
//
// `--trace=<file>` / `--comm-matrix` record the distributed sweep and
// assert the comm reconciliation invariant (support/trace_cli.hpp).
#include <functional>
#include <iostream>

#include "blas/spmm.hpp"
#include "common.hpp"
#include "distrib/distribution.hpp"
#include "spmd/spmm.hpp"
#include "support/text_table.hpp"
#include "support/timer.hpp"
#include "support/trace_cli.hpp"
#include "workloads/grid.hpp"

namespace {

using namespace bernoulli;

double best_seconds(const std::function<void()>& fn) {
  double best = 1e30, spent = 0;
  int reps = 0;
  while (reps < 3 || (spent < 0.05 && reps < 300)) {
    WallTimer t;
    fn();
    double s = t.seconds();
    best = std::min(best, s);
    spent += s;
    ++reps;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = bench::Options::parse(argc, argv);
  support::ObsOptions& obs = opts.obs;

  std::cout << "=== Ablation: SpMM vs k independent SpMVs ===\n\n";

  auto g = workloads::grid3d_7pt(12, 12, 12, 1, 77);
  formats::Csr a = formats::Csr::from_coo(g.matrix);
  const index_t n = a.rows();
  std::cout << "matrix: " << n << " rows, " << a.nnz() << " nnz\n\n";

  std::cout << "--- sequential kernel time per RHS (us) ---\n";
  TextTable seq({"width k", "k x SpMV", "SpMM", "speedup"});
  for (index_t k : {1, 2, 4, 8, 16}) {
    formats::Dense x(n, k), y(n, k);
    for (index_t i = 0; i < n; ++i)
      for (index_t r = 0; r < k; ++r)
        x.at(i, r) = 1.0 + 0.001 * static_cast<double>((i + r) % 31);
    Vector xv(static_cast<std::size_t>(n), 1.0), yv(xv.size());

    double t_spmv = best_seconds([&] {
      for (index_t r = 0; r < k; ++r) formats::spmv(a, xv, yv);
    });
    double t_spmm = best_seconds([&] { blas::spmm(a, x, y); });
    seq.new_row();
    seq.add(static_cast<long long>(k));
    seq.add(t_spmv / k * 1e6, 2);
    seq.add(t_spmm / k * 1e6, 2);
    seq.add(t_spmv / t_spmm, 2);
  }
  std::cout << seq.str() << '\n';

  std::cout << "--- distributed: modeled comm per RHS (P = 8, mixed) ---\n";
  const int P = 8;
  // The sequential half above runs no machine; record from here so the
  // epilogue reconciles against exactly these runs.
  support::obs_begin(obs);
  long long commstats_messages = 0;
  long long commstats_bytes = 0;
  distrib::BlockDist rows(n, P);
  TextTable dist_table({"width k", "msgs/RHS", "virtual us/RHS"});
  for (index_t k : {1, 4, 16}) {
    runtime::Machine machine(P);
    std::vector<double> vt(P, 0.0);
    std::vector<long long> msgs(P, 0);
    auto reports = machine.run([&](runtime::Process& p) {
      spmd::DistSpmv dist = spmd::build_dist_spmv(
          p, a, rows, spmd::Variant::kBernoulliMixed);
      auto mine = rows.owned_indices(p.rank());
      formats::Dense x_full(dist.sched.full_size(), k);
      for (std::size_t i = 0; i < mine.size(); ++i)
        for (index_t r = 0; r < k; ++r)
          x_full.at(static_cast<index_t>(i), r) = 1.0;
      formats::Dense y(static_cast<index_t>(mine.size()), k);
      p.set_manual_compute(true);  // isolate the modeled communication
      long long m0 = p.stats().messages;
      double t0 = p.virtual_time();
      spmd::dist_spmm(p, dist, x_full, y, /*tag=*/4);
      vt[static_cast<std::size_t>(p.rank())] = p.virtual_time() - t0;
      msgs[static_cast<std::size_t>(p.rank())] = p.stats().messages - m0;
      p.set_manual_compute(false);
    });
    double tsum = 0;
    long long msum = 0;
    for (int r = 0; r < P; ++r) {
      tsum += vt[static_cast<std::size_t>(r)];
      msum += msgs[static_cast<std::size_t>(r)];
      commstats_messages += reports[static_cast<std::size_t>(r)].stats.messages;
      commstats_bytes += reports[static_cast<std::size_t>(r)].stats.bytes;
    }
    dist_table.new_row();
    dist_table.add(static_cast<long long>(k));
    dist_table.add(static_cast<double>(msum) / P / k, 2);
    dist_table.add(tsum / P / k * 1e6, 2);
  }
  std::cout << dist_table.str()
            << "\nOne schedule, one exchange: per-RHS messages fall as 1/k; "
               "per-RHS virtual\ntime approaches the pure-bandwidth cost.\n";
  support::obs_end(obs, commstats_messages, commstats_bytes);
  opts.finish();
  return 0;
}
