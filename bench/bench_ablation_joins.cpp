// Ablation: join implementation choice (DESIGN.md design-choice bench).
//
// The planner picks between merge joins and index-nested-loop probing from
// access-method properties (paper §2: "determining how each of the joins
// should be implemented"). This bench runs the same sparse-matrix times
// sparse-vector query with the merge join allowed and forbidden, across
// sparsity levels of x, showing the crossover the cost model navigates:
// merge wins when both sides are comparably sized, probing wins when one
// side is tiny.
//
// `--trace=<file>` / `--comm-matrix` / `--report=<file>` are accepted for
// uniformity with the distributed benches; this driver is sequential, so
// the epilogue reconciles against zero modeled traffic.
#include <functional>
#include <iostream>

#include "common.hpp"
#include "compiler/loopnest.hpp"
#include "formats/formats.hpp"
#include "formats/sparse_vector.hpp"
#include "support/rng.hpp"
#include "support/trace_cli.hpp"
#include "support/text_table.hpp"
#include "support/timer.hpp"
#include "workloads/grid.hpp"

namespace {

using namespace bernoulli;

double best_seconds(const std::function<void()>& fn) {
  double best = 1e30, spent = 0;
  int reps = 0;
  while (reps < 3 || (spent < 0.05 && reps < 300)) {
    WallTimer t;
    fn();
    double s = t.seconds();
    best = std::min(best, s);
    spent += s;
    ++reps;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = bernoulli::bench::Options::parse(argc, argv);
  bernoulli::support::ObsOptions& obs = opts.obs;
  bernoulli::support::obs_begin(obs);

  std::cout << "=== Ablation: merge join vs index-nested-loop probing ===\n"
            << "(y += A x with sparse A (CRS) and sparse x; interpreter\n"
            << " wall time per full query evaluation)\n\n";

  const index_t n = 4000;
  auto grid = workloads::grid2d_5pt(80, 50, 1, 3);  // 4000 rows, 5-pt
  formats::Csr a = formats::Csr::from_coo(grid.matrix);

  TextTable table({"x nnz", "merge plan (ms)", "probe plan (ms)",
                   "planner picks", "speedup(best/other)"});
  SplitMix64 rng(17);
  for (index_t xnnz : {4, 40, 400, 2000, 4000}) {
    std::vector<std::pair<index_t, value_t>> entries;
    for (index_t k = 0; k < xnnz; ++k)
      entries.emplace_back(rng.next_index(n), 1.0);
    formats::SparseVector x(n, std::move(entries));
    Vector y(static_cast<std::size_t>(n), 0.0);

    compiler::LoopNest nest{
        {{"i", n}, {"j", n}},
        {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0},
    };

    auto time_with = [&](bool allow_merge) {
      compiler::Bindings bind;
      bind.bind_csr("A", a);
      bind.bind_sparse_vector("X", x);
      bind.bind_dense_vector("Y", VectorView(y));
      compiler::PlannerOptions opts;
      opts.allow_merge = allow_merge;
      // Force the i-outer order so the ablation isolates the join METHOD
      // at the j level rather than the join order.
      opts.force_order = std::vector<std::string>{"i", "j"};
      auto k = compiler::compile(nest, bind, opts);
      bool merged = false;
      for (const auto& lv : k.plan().levels)
        if (lv.method == compiler::JoinMethod::kMerge) merged = true;
      double secs = best_seconds([&] { k.run(); });
      return std::make_pair(secs, merged);
    };

    auto [t_merge, has_merge] = time_with(true);
    auto [t_probe, probe_merged] = time_with(false);
    (void)probe_merged;

    // What does the cost model pick when free to choose the method?
    compiler::Bindings bind;
    bind.bind_csr("A", a);
    bind.bind_sparse_vector("X", x);
    bind.bind_dense_vector("Y", VectorView(y));
    compiler::PlannerOptions opts;
    opts.force_order = std::vector<std::string>{"i", "j"};
    auto free_kernel = compiler::compile(nest, bind, opts);
    bool picks_merge = false;
    for (const auto& lv : free_kernel.plan().levels)
      if (lv.method == compiler::JoinMethod::kMerge) picks_merge = true;

    table.new_row();
    table.add(static_cast<long long>(xnnz));
    table.add(t_merge * 1e3, 3);
    table.add(t_probe * 1e3, 3);
    table.add(picks_merge ? "merge" : "probe");
    double best = std::min(t_merge, t_probe);
    double other = std::max(t_merge, t_probe);
    table.add(other / best, 2);
  }
  std::cout << table.str()
            << "\n(The 'merge plan' column is only a real merge when the\n"
               "planner found two sorted filters at the j level — with "
               "sparse x it always\ndoes.)\n";
  // No machine runs here; the epilogue still validates the (empty) trace
  // and prints/export whatever was requested.
  bernoulli::support::obs_end(obs, 0, 0);
  opts.finish();
  return 0;
}
