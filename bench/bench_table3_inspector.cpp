// Table 3: inspector overhead, expressed as the ratio of inspector time to
// the time of a single executor iteration.
//
// Paper shape:
//   BlockSolve       ~ half the Bernoulli-Mixed ratio (leanest inspector)
//   Bernoulli-Mixed  small (~2-3x one iteration)
//   Bernoulli        order of magnitude above Mixed (translates EVERY
//                    reference; work ~ problem size)
//   Indirect-Mixed   order of magnitude above Bernoulli-Mixed (building
//                    and querying the Chaos distributed translation table
//                    is all-to-all with volume ~ problem size)
//   Indirect         worst of both
//
// `--trace=<file>` / `--comm-matrix` record the run (reduced to P=4 so the
// trace stays readable) and assert the comm reconciliation invariant; the
// traced inspectors show the Chaos build/query all-to-all phases per rank.
// `--report=<file>` writes a bernoulli.run.v1 run report with the
// per-variant inspector ratios as metrics and the critical path through
// the last machine run.
#include <iostream>
#include <vector>

#include "analysis/critical_path.hpp"
#include "analysis/report.hpp"
#include "common.hpp"
#include "support/text_table.hpp"
#include "support/trace_cli.hpp"

int main(int argc, char** argv) {
  using namespace bernoulli;
  using spmd::Variant;

  auto opts = bench::Options::parse(argc, argv);
  support::ObsOptions& obs = opts.obs;

  std::cout << "=== Table 3: inspector overhead "
            << "(inspector time / one executor iteration) ===\n\n";

  const std::vector<int> procs =
      obs.active() ? std::vector<int>{4} : std::vector<int>{2, 4, 8, 16, 32, 64};
  const int iterations = 10;

  analysis::RunReport report("bench_table3_inspector");
  report.config("iterations", static_cast<long long>(iterations));
  support::obs_begin(obs);

  TextTable table({"P", "BlockSolve", "Bern-Mixed", "Bernoulli",
                   "Indir-Mixed", "Indirect"});
  long long commstats_messages = 0;
  long long commstats_bytes = 0;
  for (int P : procs) {
    bench::Problem prob = bench::build_problem(P);
    table.new_row();
    table.add(P);
    for (Variant v :
         {Variant::kBlockSolve, Variant::kBernoulliMixed, Variant::kBernoulli,
          Variant::kIndirectMixed, Variant::kIndirect}) {
      auto t = bench::measure_variant_calibrated(prob, P, v, iterations);
      commstats_messages += t.total_messages;
      commstats_bytes += t.total_bytes;
      table.add(t.inspector_ratio, 1);
      if (!obs.report_path.empty())
        report.metric(std::string("table3.P") + std::to_string(P) + "." +
                          spmd::variant_name(v) + ".inspector_ratio",
                      t.inspector_ratio);
    }
    std::cerr << "  [P=" << P << " done]\n";
  }
  std::cout << table.str()
            << "\nExpected shape (paper): BlockSolve < Bernoulli-Mixed "
               "(small constants);\nBernoulli and Indirect-Mixed an order "
               "of magnitude above Bernoulli-Mixed;\nIndirect worst.\n";
  // Aborts nonzero if the trace/matrix/counters disagree with CommStats.
  support::obs_end(obs, commstats_messages, commstats_bytes);
  if (!obs.report_path.empty()) {
    report.set_critical_path(analysis::critical_path_current());
    report.write(obs.report_path);
  }
  opts.finish();
  return 0;
}
