// Table 3: inspector overhead, expressed as the ratio of inspector time to
// the time of a single executor iteration.
//
// Paper shape:
//   BlockSolve       ~ half the Bernoulli-Mixed ratio (leanest inspector)
//   Bernoulli-Mixed  small (~2-3x one iteration)
//   Bernoulli        order of magnitude above Mixed (translates EVERY
//                    reference; work ~ problem size)
//   Indirect-Mixed   order of magnitude above Bernoulli-Mixed (building
//                    and querying the Chaos distributed translation table
//                    is all-to-all with volume ~ problem size)
//   Indirect         worst of both
#include <iostream>

#include "common.hpp"
#include "support/text_table.hpp"

int main() {
  using namespace bernoulli;
  using spmd::Variant;

  std::cout << "=== Table 3: inspector overhead "
            << "(inspector time / one executor iteration) ===\n\n";

  TextTable table({"P", "BlockSolve", "Bern-Mixed", "Bernoulli",
                   "Indir-Mixed", "Indirect"});
  const int iterations = 10;
  for (int P : {2, 4, 8, 16, 32, 64}) {
    bench::Problem prob = bench::build_problem(P);
    table.new_row();
    table.add(P);
    for (Variant v :
         {Variant::kBlockSolve, Variant::kBernoulliMixed, Variant::kBernoulli,
          Variant::kIndirectMixed, Variant::kIndirect}) {
      auto t = bench::measure_variant_calibrated(prob, P, v, iterations);
      table.add(t.inspector_ratio, 1);
    }
    std::cerr << "  [P=" << P << " done]\n";
  }
  std::cout << table.str()
            << "\nExpected shape (paper): BlockSolve < Bernoulli-Mixed "
               "(small constants);\nBernoulli and Indirect-Mixed an order "
               "of magnitude above Bernoulli-Mixed;\nIndirect worst.\n";
  return 0;
}
